//! Sampler-equivalence suite: the alias-method fast path must be the *same
//! distribution* as the exact fixed-point Laplace pipeline — not
//! approximately, but bit-for-bit in construction and draw-for-draw in the
//! word stream. Three layers of evidence:
//!
//! 1. **Construction bit-exactness** — alias buckets re-derive the source
//!    PMF weights exactly, for full tables and conditional windows;
//! 2. **Seeded chi-square** — empirical draw frequencies at small bit-widths
//!    match the exact probabilities;
//! 3. **Batch ≡ single** — `fill_batch` consumes the identical word stream
//!    as repeated `draw` calls (proptest over geometry, window, seed, len).
//!
//! Plus a microbench smoke check: on whatever host runs this suite, the
//! alias path must be strictly faster than the CORDIC reference sampler —
//! the entire point of the fast path.

use std::collections::HashMap;
use std::time::Instant;

use proptest::prelude::*;
use ulp_ldp::rng::{
    cached_alias_full, cached_alias_window, AliasTable, CordicLn, FxpLaplace, FxpLaplaceConfig,
    FxpNoisePmf, RandomBits, Taus88,
};

fn paper_cfg() -> FxpLaplaceConfig {
    FxpLaplaceConfig::new(17, 12, 10.0 / 32.0, 20.0).expect("paper configuration")
}

fn sorted(outcomes: &[(i64, u128)]) -> Vec<(i64, u128)> {
    let mut v = outcomes.to_vec();
    v.sort_unstable();
    v
}

#[test]
fn full_table_construction_is_bit_exact() {
    for cfg in [
        paper_cfg(),
        FxpLaplaceConfig::new(12, 16, 1.0, 64.0).expect("valid config"),
        FxpLaplaceConfig::new(14, 14, 0.25, 8.0).expect("valid config"),
    ] {
        let pmf = FxpNoisePmf::closed_form(cfg);
        let table = AliasTable::from_pmf(&pmf).expect("constructible");
        assert!(
            table.verify_exact(),
            "Bu={}: bucket weights must re-derive the PMF exactly",
            cfg.bu()
        );
        let want: Vec<(i64, u128)> = pmf.iter().filter(|&(_, w)| w > 0).collect();
        assert_eq!(
            sorted(table.outcomes()),
            sorted(&want),
            "Bu={}: table outcomes differ from the PMF",
            cfg.bu()
        );
    }
}

#[test]
fn window_table_matches_the_conditional_pmf() {
    let cfg = paper_cfg();
    let pmf = FxpNoisePmf::closed_form(cfg);
    for (lo, hi) in [(-40i64, 25i64), (-754, 754), (0, 0), (-3, 120)] {
        let table = AliasTable::from_pmf_window(&pmf, lo, hi).expect("non-empty window");
        assert!(table.verify_exact(), "window [{lo}, {hi}] not exact");
        let want: Vec<(i64, u128)> = pmf
            .iter()
            .filter(|&(k, w)| k >= lo && k <= hi && w > 0)
            .collect();
        assert_eq!(
            sorted(table.outcomes()),
            sorted(&want),
            "window [{lo}, {hi}]: renormalized support differs"
        );
    }
}

#[test]
fn cached_tables_equal_fresh_construction() {
    let cfg = paper_cfg();
    let pmf = FxpNoisePmf::closed_form(cfg);
    let full = cached_alias_full(cfg).expect("analytic geometry");
    let fresh = AliasTable::from_pmf(&pmf).expect("constructible");
    assert_eq!(full.outcomes(), fresh.outcomes());
    assert_eq!(full.bucket_count(), fresh.bucket_count());
    assert_eq!(full.capacity(), fresh.capacity());
    let win = cached_alias_window(cfg, -5, 9).expect("non-empty window");
    let fresh_w = AliasTable::from_pmf_window(&pmf, -5, 9).expect("non-empty window");
    assert_eq!(win.outcomes(), fresh_w.outcomes());
    assert_eq!(win.capacity(), fresh_w.capacity());
}

/// Chi-square of `n` seeded draws against exact probabilities; cells with
/// expectation below 5 are skipped (standard validity rule).
fn chi_square(table: &AliasTable, n: usize, seed: u64) -> (f64, usize) {
    let mut rng = Taus88::from_seed(seed);
    let mut out = vec![0i64; n];
    table.fill_batch(&mut rng, &mut out);
    let mut counts: HashMap<i64, u64> = HashMap::new();
    for k in out {
        *counts.entry(k).or_insert(0) += 1;
    }
    let total: u128 = table.outcomes().iter().map(|&(_, w)| w).sum();
    let mut chi2 = 0.0;
    let mut df = 0usize;
    for &(k, w) in table.outcomes() {
        let e = n as f64 * w as f64 / total as f64;
        if e < 5.0 {
            continue;
        }
        let o = *counts.get(&k).unwrap_or(&0) as f64;
        chi2 += (o - e) * (o - e) / e;
        df += 1;
    }
    (chi2, df)
}

#[test]
fn seeded_chi_square_accepts_full_table_draws() {
    // Small Bu keeps the outcome count tractable for a per-cell test.
    let cfg = FxpLaplaceConfig::new(8, 10, 1.0, 4.0).expect("valid config");
    let pmf = FxpNoisePmf::closed_form(cfg);
    let table = AliasTable::from_pmf(&pmf).expect("constructible");
    let (chi2, df) = chi_square(&table, 200_000, 0x5A5A);
    assert!(df > 10, "degenerate support: df = {df}");
    // χ²_df has mean df, variance 2df; a 6σ bound keeps the seeded test
    // deterministic-stable while still catching a mis-built table.
    let bound = df as f64 + 6.0 * (2.0 * df as f64).sqrt();
    assert!(chi2 < bound, "chi2 {chi2:.1} vs bound {bound:.1} (df {df})");
}

#[test]
fn seeded_chi_square_accepts_window_table_draws() {
    let cfg = FxpLaplaceConfig::new(9, 11, 1.0, 6.0).expect("valid config");
    let pmf = FxpNoisePmf::closed_form(cfg);
    let table = AliasTable::from_pmf_window(&pmf, -8, 13).expect("non-empty window");
    let (chi2, df) = chi_square(&table, 200_000, 0xC41A);
    assert!(df > 5, "degenerate window: df = {df}");
    let bound = df as f64 + 6.0 * (2.0 * df as f64).sqrt();
    assert!(chi2 < bound, "chi2 {chi2:.1} vs bound {bound:.1} (df {df})");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `fill_batch` must consume the identical word stream as repeated
    /// `draw` calls: same outputs AND the two sources remain in lock-step
    /// afterwards (checked by comparing their next word).
    #[test]
    fn fill_batch_equals_repeated_draws(
        bu in 6u8..=12,
        lambda in 2u8..=16,
        seed in any::<u64>(),
        len in 0usize..600,
        lo in -10i64..=0,
        hi in 0i64..=10,
        use_full in 0u8..=1,
    ) {
        let cfg = FxpLaplaceConfig::new(bu, 12, 1.0, f64::from(lambda)).expect("valid config");
        let pmf = FxpNoisePmf::closed_form(cfg);
        // Windows straddle 0, which always carries mass, so construction
        // cannot fail on an empty conditional support.
        let table = if use_full == 1 {
            AliasTable::from_pmf(&pmf)
        } else {
            AliasTable::from_pmf_window(&pmf, lo, hi)
        }
        .expect("constructible");
        let mut rng_batch = Taus88::from_seed(seed);
        let mut rng_single = Taus88::from_seed(seed);
        let mut batch = vec![0i64; len];
        table.fill_batch(&mut rng_batch, &mut batch);
        let singles: Vec<i64> = (0..len).map(|_| table.draw(&mut rng_single)).collect();
        prop_assert_eq!(batch, singles);
        prop_assert_eq!(rng_batch.next_u32(), rng_single.next_u32());
    }
}

#[test]
fn alias_path_is_strictly_faster_than_cordic_on_this_host() {
    // The fast path's reason to exist; best-of-3 per side keeps shared-CI
    // scheduling noise from flipping what is a many-fold gap.
    let cfg = paper_cfg();
    let table = cached_alias_full(cfg).expect("analytic geometry");
    let cordic = FxpLaplace::cordic(cfg, CordicLn::new(24));
    let n = 200_000usize;
    let mut rng = Taus88::from_seed(0xBE9C);
    let mut out = vec![0i64; n];
    let mut sink = 0i64;
    let mut alias_best = f64::INFINITY;
    let mut cordic_best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        table.fill_batch(&mut rng, &mut out);
        alias_best = alias_best.min(t.elapsed().as_secs_f64());
        sink ^= out[n - 1];
        let t = Instant::now();
        for _ in 0..n {
            sink ^= cordic.sample_index(&mut rng);
        }
        cordic_best = cordic_best.min(t.elapsed().as_secs_f64());
    }
    assert_ne!(sink, i64::MIN, "keep the draws observable");
    assert!(
        alias_best < cordic_best,
        "alias batch ({alias_best:.4}s) must beat CORDIC ({cordic_best:.4}s) for {n} draws"
    );
}
