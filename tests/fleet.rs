//! Fleet subsystem end-to-end and property tests: wire-format round-trips,
//! schedule-independence digests, and population-statistics recovery with
//! fail-safe device exclusion.

use proptest::prelude::*;
use ulp_ldp::datasets::DatasetSpec;
use ulp_ldp::eval::GroundTruth;
use ulp_ldp::fleet::{FleetConfig, FleetDriver, Payload, Report, WireError, FRAME_LEN};

fn arb_report() -> impl Strategy<Value = Report> {
    (
        any::<u32>(),
        any::<u16>(),
        any::<u32>(),
        any::<i32>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(device, query, epoch, value, is_rr, bit)| Report {
            device,
            query,
            epoch,
            payload: if is_rr {
                Payload::RrBit(bit)
            } else {
                Payload::Value(value)
            },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wire_roundtrip_is_identity(report in arb_report()) {
        let frame = report.encode();
        prop_assert_eq!(frame.len(), FRAME_LEN);
        prop_assert_eq!(Report::decode(&frame).unwrap(), report);
    }

    #[test]
    fn truncated_frames_are_typed_errors(report in arb_report(), keep in 0usize..FRAME_LEN) {
        let frame = report.encode();
        prop_assert_eq!(
            Report::decode(&frame[..keep]),
            Err(WireError::Truncated { got: keep })
        );
    }

    #[test]
    fn corrupted_frames_never_decode_silently(
        report in arb_report(),
        byte in 0usize..FRAME_LEN,
        mask in 1u8..=255,
    ) {
        let mut frame = report.encode();
        frame[byte] ^= mask;
        // The 16-bit checksum can collide (p ≈ 2⁻¹⁶); a "successful"
        // decode must at least never resurrect the original report
        // from different bytes.
        if let Ok(decoded) = Report::decode(&frame) {
            prop_assert_ne!(decoded, report);
        }
    }

    #[test]
    fn future_versions_are_rejected(report in arb_report(), version in 3u8..=255) {
        let mut frame = report.encode();
        frame[1] = version;
        prop_assert_eq!(
            Report::decode(&frame),
            Err(WireError::UnsupportedVersion { found: version })
        );
    }
}

fn digest_cfg() -> FleetConfig {
    FleetConfig {
        chunk: 64,
        ..FleetConfig::paper_default(400, 2, 77)
    }
}

/// Child half of the determinism matrix: prints the digest (and ledger
/// digest) of a fixed fleet run under whatever `ULP_PAR_THREADS` /
/// `ULP_FLEET_INGEST_PATH` / `ULP_DEVICE_ENGINE` the parent set.
#[test]
#[ignore = "helper re-executed by digest_identical_across_threads_paths_and_engines"]
fn thread_digest_child() {
    let out = FleetDriver::new(digest_cfg()).unwrap().run().unwrap();
    println!(
        "FLEET_DIGEST={:016x}:{:016x}",
        out.digest(),
        out.ledger_digest
    );
}

/// `ulp_par::threads()` latches once per process, so thread-count variation
/// needs fresh processes: re-exec this test binary filtered to the child
/// helper across a (threads × ingest path × device engine) matrix. Every
/// cell — 1 or 4 workers, columnar or scalar-reference ingest, batch or
/// reference device engine — must produce the same outcome digest *and*
/// the same fleet ledger digest bit for bit.
#[test]
fn digest_identical_across_threads_paths_and_engines() {
    let exe = std::env::current_exe().expect("test binary path");
    let digest_at = |threads: &str, path: &str, engine: &str| -> String {
        let output = std::process::Command::new(&exe)
            .args(["thread_digest_child", "--exact", "--ignored", "--nocapture"])
            .env("ULP_PAR_THREADS", threads)
            .env("ULP_FLEET_INGEST_PATH", path)
            .env("ULP_DEVICE_ENGINE", engine)
            .output()
            .expect("re-exec test binary");
        assert!(
            output.status.success(),
            "child run failed at {threads} threads, {path} path, {engine} engine: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        // libtest may emit the digest on the same line as its own "test …"
        // prefix, so search for the marker rather than a line prefix.
        let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
        let at = stdout
            .find("FLEET_DIGEST=")
            .expect("child printed a digest");
        stdout[at + "FLEET_DIGEST=".len()..]
            .chars()
            .take_while(|c| c.is_ascii_hexdigit() || *c == ':')
            .collect()
    };
    let baseline = digest_at("1", "reference", "reference");
    for (threads, path, engine) in [
        ("1", "columnar", "reference"),
        ("4", "columnar", "reference"),
        ("4", "reference", "reference"),
        ("1", "columnar", "batch"),
        ("4", "columnar", "batch"),
        ("1", "reference", "batch"),
        ("4", "reference", "batch"),
    ] {
        assert_eq!(
            digest_at(threads, path, engine),
            baseline,
            "fleet outcome must be bit-identical at {threads} threads, \
             {path} ingest path, {engine} device engine"
        );
    }
}

#[test]
fn digest_identical_at_1_and_8_shards() {
    let one = FleetDriver::new(FleetConfig {
        shards: 1,
        ..digest_cfg()
    })
    .unwrap()
    .run()
    .unwrap();
    let eight = FleetDriver::new(FleetConfig {
        shards: 8,
        ..digest_cfg()
    })
    .unwrap()
    .run()
    .unwrap();
    assert_eq!(one.canonical_text(), eight.canonical_text());
    assert_eq!(one.digest(), eight.digest());
}

/// 10k devices answer the RR threshold query; the debiased frequency must
/// land within 3 analytic standard errors of the truth, with the
/// health-faulted subset excluded fail-safe (before reporting) and without
/// biasing the estimate relative to the *full* population either.
#[test]
fn rr_frequency_recovered_within_three_se_with_faulted_subset_excluded() {
    let cfg = FleetConfig {
        epochs: 1,
        shards: 4,
        chunk: 512,
        faulty_per_mille: 5,
        ..FleetConfig::paper_default(10_000, 1, 2018)
    };
    let spec = cfg.spec.clone();
    let (seed, threshold, eps_shift) = (cfg.seed, cfg.threshold_code, cfg.eps_shift);
    let out = FleetDriver::new(cfg).unwrap().run().unwrap();

    // ~5‰ of 10k devices wired faulty: all of them (and only them) must be
    // caught by the power-on self-test.
    assert!(
        (20..=90).contains(&out.devices_excluded),
        "expected ≈50 excluded devices, got {}",
        out.devices_excluded
    );
    assert_eq!(out.devices_dropped, 0);
    assert_eq!(out.ingest.rejected, 0);
    assert_eq!(
        out.ingest.accepted,
        2 * (10_000 - out.devices_excluded) as u64
    );
    assert!(out.audit_ok, "fleet privacy ledger must audit clean");

    let est = out.rr_frequency.expect("populated RR estimate");
    let gate = 3.0 * est.stderr;
    assert!(
        (est.value - out.truth_fraction).abs() <= gate,
        "RR frequency {:.4} vs included-population truth {:.4} exceeds 3·SE = {:.4}",
        est.value,
        out.truth_fraction,
        gate
    );

    // Exclusion is value-independent, so the estimate is also unbiased for
    // the full pre-exclusion population.
    let full = GroundTruth::prepare(
        &DatasetSpec {
            entries: 10_000,
            ..spec
        },
        2f64.powi(-i32::from(eps_shift)),
        seed,
    )
    .unwrap();
    let full_truth = full.fraction_at_or_above(threshold);
    assert!(
        (est.value - full_truth).abs() <= gate + 0.01,
        "RR frequency {:.4} vs full-population truth {:.4} exceeds 3·SE + subsample slack",
        est.value,
        full_truth
    );

    // The mean estimator rides along: within its own gate.
    let mean = out.mean.expect("populated mean estimate");
    assert!(
        (mean.value - out.truth_mean).abs() <= 3.0 * mean.stderr + mean.bias_bound,
        "mean {:.3} vs truth {:.3} exceeds 3·SE + bias bound {:.3}",
        mean.value,
        out.truth_mean,
        3.0 * mean.stderr + mean.bias_bound
    );
}
