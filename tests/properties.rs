//! Cross-crate property-based tests: invariants that must hold for *any*
//! valid configuration, not just the paper's operating points.

use proptest::prelude::*;
use ulp_ldp::eval::Adc;
use ulp_ldp::ldp::{
    exact_threshold, worst_case_loss_extremes, LimitMode, PrivacyLoss, QuantizedRange,
    ResamplingMechanism, ThresholdingMechanism,
};
use ulp_ldp::rng::{FxpLaplace, FxpLaplaceConfig, FxpNoisePmf, RandomBits, Taus88};

fn arb_cfg() -> impl Strategy<Value = (FxpLaplaceConfig, QuantizedRange)> {
    // Small-but-diverse configurations keep the exact analysis fast.
    (6u8..=14, 8u8..=16, 1i64..=40, 1u8..=4).prop_map(|(bu, by, span, lam_mult)| {
        let delta = 1.0;
        let lambda = (span * lam_mult as i64) as f64;
        let cfg = FxpLaplaceConfig::new(bu, by, delta, lambda).expect("valid config");
        let range = QuantizedRange::new(0, span, delta).expect("valid range");
        (cfg, range)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn pmf_total_mass_is_exact((cfg, _) in arb_cfg()) {
        let pmf = FxpNoisePmf::closed_form(cfg);
        let sum: u128 = pmf.iter().map(|(_, w)| w).sum();
        prop_assert_eq!(sum, pmf.total_weight());
    }

    #[test]
    fn pmf_closed_form_equals_enumeration((cfg, _) in arb_cfg()) {
        let cf = FxpNoisePmf::closed_form(cfg);
        let en = FxpNoisePmf::by_enumeration(cfg).expect("Bu ≤ 14");
        prop_assert_eq!(cf, en);
    }

    #[test]
    fn naive_loss_is_infinite((cfg, range) in arb_cfg()) {
        let pmf = FxpNoisePmf::closed_form(cfg);
        let loss = worst_case_loss_extremes(&pmf, range, LimitMode::Thresholding, None);
        prop_assert_eq!(loss, PrivacyLoss::Infinite);
    }

    #[test]
    fn exact_threshold_is_sound_and_maximal((cfg, range) in arb_cfg(), mult in 15u8..=40) {
        let multiple = mult as f64 / 10.0;
        let pmf = FxpNoisePmf::closed_form(cfg);
        let eps = range.length() / cfg.lambda();
        for mode in [LimitMode::Resampling, LimitMode::Thresholding] {
            if let Ok(spec) = exact_threshold(cfg, &pmf, range, multiple, mode) {
                let at = worst_case_loss_extremes(&pmf, range, mode, Some(spec.n_th_k));
                prop_assert!(at.is_bounded_by(multiple * eps + 1e-12),
                    "{mode:?}: loss {at:?} at solved threshold {}", spec.n_th_k);
                let beyond = worst_case_loss_extremes(&pmf, range, mode, Some(spec.n_th_k + 1));
                prop_assert!(!beyond.is_bounded_by(multiple * eps),
                    "{mode:?}: threshold {} not maximal", spec.n_th_k);
            }
        }
    }

    #[test]
    fn mechanisms_never_escape_their_window((cfg, range) in arb_cfg(), seed in any::<u64>()) {
        let pmf = FxpNoisePmf::closed_form(cfg);
        let spec = match exact_threshold(cfg, &pmf, range, 2.0, LimitMode::Thresholding) {
            Ok(s) => s,
            Err(_) => return Ok(()),
        };
        let mech = ThresholdingMechanism::new(FxpLaplace::analytic(cfg), range, spec)
            .expect("constructible");
        let mut rng = Taus88::from_seed(seed);
        for _ in 0..200 {
            let x_k = range.min_k() + (rng.bits(16) as i64 % (range.span_k() + 1));
            let y = mech.privatize_index(x_k, &mut rng);
            prop_assert!(y >= range.min_k() - spec.n_th_k);
            prop_assert!(y <= range.max_k() + spec.n_th_k);
        }
    }

    #[test]
    fn resampling_and_thresholding_agree_in_window_interior(
        (cfg, range) in arb_cfg(),
        seed in any::<u64>(),
    ) {
        // For draws that land inside the window, the two mechanisms are the
        // same function of the same noise stream.
        let pmf = FxpNoisePmf::closed_form(cfg);
        let spec = match exact_threshold(cfg, &pmf, range, 2.0, LimitMode::Resampling) {
            Ok(s) => s,
            Err(_) => return Ok(()),
        };
        let r = ResamplingMechanism::new(FxpLaplace::analytic(cfg), range, spec)
            .expect("constructible");
        let t = ThresholdingMechanism::new(FxpLaplace::analytic(cfg), range, spec)
            .expect("constructible");
        let mut rng_r = Taus88::from_seed(seed);
        let mut rng_t = Taus88::from_seed(seed);
        let x_k = range.min_k();
        for _ in 0..100 {
            let (yr, redraws) = r.privatize_index(x_k, &mut rng_r).expect("in-support window");
            let yt = t.privatize_index(x_k, &mut rng_t);
            if redraws == 0 {
                prop_assert_eq!(yr, yt, "same stream, in-window draw must agree");
            } else {
                // Streams diverged; realign by recreating both RNGs.
                rng_r = Taus88::from_seed(seed ^ yr as u64);
                rng_t = Taus88::from_seed(seed ^ yr as u64);
            }
        }
    }

    #[test]
    fn adc_roundtrip_within_half_lsb(min in -1000.0f64..1000.0, width in 1.0f64..500.0, bits in 4u8..=12) {
        let adc = Adc::new(min, min + width, bits);
        for i in 0..20 {
            let x = min + width * (i as f64) / 19.0;
            let err = (adc.decode(adc.encode(x)) - x).abs();
            prop_assert!(err <= adc.lsb() / 2.0 + 1e-9);
        }
    }

    #[test]
    fn loss_is_monotone_in_window_size((cfg, range) in arb_cfg()) {
        // A wider window can only increase worst-case loss (more extreme
        // outputs become possible) — up to exact ties.
        let pmf = FxpNoisePmf::closed_form(cfg);
        let cap = (pmf.support_max_k() - range.span_k() - 1).max(1);
        let t1 = cap / 3;
        let t2 = 2 * cap / 3;
        if t1 < 1 || t2 <= t1 { return Ok(()); }
        {
            let mode = LimitMode::Thresholding;
            let l1 = worst_case_loss_extremes(&pmf, range, mode, Some(t1));
            let l2 = worst_case_loss_extremes(&pmf, range, mode, Some(t2));
            match (l1, l2) {
                (PrivacyLoss::Finite(a), PrivacyLoss::Finite(b)) => {
                    prop_assert!(b >= a - 1e-9, "loss shrank with window: {a} -> {b}")
                }
                (PrivacyLoss::Infinite, PrivacyLoss::Finite(_)) => {
                    prop_assert!(false, "wider window cannot fix infinite loss")
                }
                _ => {}
            }
        }
    }
}
