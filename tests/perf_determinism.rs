//! Determinism and cache-coherence guarantees of the parallel evaluation
//! engine.
//!
//! The engine's contract is that every sweep is **byte-identical at any
//! thread count**: each cell seeds its own RNG stream from the cell
//! coordinates alone, [`ulp_par`] reassembles results in item order, and a
//! worker thread never leaks state into a cell. These tests pin that
//! contract in-process by comparing three executions of the same sweep:
//!
//! * forced-serial (`par_map_with(1, …)`),
//! * forced-wide (`par_map_with(k, …)` for several `k`),
//! * nested-inside-a-pool (a worker's `IN_POOL` guard degrades inner
//!   `par_map` calls to serial — so a sweep run *inside* a single-item
//!   outer pool exercises the serial path of the same public function
//!   whose top-level call takes the parallel path).
//!
//! The cross-*process* leg — `ULP_PAR_THREADS=1` vs `=4` digests over the
//! full artifact set — runs in CI via `bench_perf` (see
//! `.github/workflows/ci.yml` and DESIGN.md §Performance architecture).
//!
//! The caching leg asserts that the memoized PMF/threshold lookups are
//! indistinguishable from fresh construction.

use proptest::prelude::*;
use ulp_ldp::datasets::{all_benchmarks, statlog_heart, Query};
use ulp_ldp::eval::{
    adversary_curves, averaging_attack, campaign_row, pre_detection_loss, rr_curve, utility_row,
    utility_table, CampaignConfig, ExperimentSetup, FaultKind,
};
use ulp_ldp::ldp::{
    exact_threshold, exact_threshold_cached, segment_table_cached, LimitMode, QuantizedRange,
    RandomizedResponse, SegmentTable,
};
use ulp_ldp::rng::{cached_pmf, stream_seed, FxpLaplaceConfig, FxpNoisePmf};

const EPS: f64 = 0.5;
const MULTIPLE: f64 = 2.0;
const SEED: u64 = 2018;

/// Runs `f` inside a 2-wide outer pool on a single item, which forces every
/// inner `par_map` in `f` onto the serial path (the `IN_POOL` guard).
fn forced_serial<R: Send>(f: impl Fn() -> R + Sync) -> R {
    ulp_par::par_map_with(2, &[()], |_| f())
        .into_iter()
        .next()
        .expect("one item in, one result out")
}

#[test]
fn utility_rows_are_thread_count_invariant() {
    let specs: Vec<_> = all_benchmarks().into_iter().take(3).collect();
    let row = |spec: &ulp_ldp::datasets::DatasetSpec| {
        utility_row(spec, Query::Mean, EPS, MULTIPLE, 20, SEED).expect("utility row")
    };
    let serial: Vec<_> = ulp_par::par_map_with(1, &specs, row);
    for k in [2, 3, 8] {
        assert_eq!(serial, ulp_par::par_map_with(k, &specs, row), "width {k}");
    }
    // The public parallel table equals the forced-serial map, cell for cell.
    let table = utility_table(&specs, Query::Mean, EPS, MULTIPLE, 20, SEED).expect("table");
    assert_eq!(serial, table);
}

#[test]
fn utility_row_parallel_kinds_equal_serial_kinds() {
    // Top-level: the four mechanism kinds evaluate in parallel. Inside an
    // outer pool: the same call runs them serially. Same bytes either way.
    let spec = statlog_heart();
    let parallel = utility_row(&spec, Query::Mean, EPS, MULTIPLE, 25, SEED).unwrap();
    let serial = forced_serial(|| utility_row(&spec, Query::Mean, EPS, MULTIPLE, 25, SEED))
        .expect("forced-serial row");
    assert_eq!(parallel, serial);
}

#[test]
fn adversary_curves_equal_serial_attacks() {
    let setup = ExperimentSetup::paper_default(&statlog_heart(), EPS).unwrap();
    let budgets = [None, Some(50.0), Some(10.0)];
    let multiples = [1.5, 2.0, 3.0];
    let checkpoints = [1u64, 10, 100, 1_000];
    let parallel =
        adversary_curves(&setup, 131.0, &budgets, &multiples, &checkpoints, SEED).unwrap();
    let serial: Vec<_> = budgets
        .iter()
        .map(|&b| averaging_attack(&setup, 131.0, b, &multiples, &checkpoints, SEED).unwrap())
        .collect();
    assert_eq!(parallel, serial);
}

#[test]
fn fault_campaign_row_is_thread_count_invariant() {
    let fault = FaultKind::StuckAt {
        bit: 31,
        value: true,
    };
    let cc = CampaignConfig::default();
    let parallel = campaign_row(fault, &cc, 4, 7).unwrap();
    let serial = forced_serial(|| campaign_row(fault, &cc, 4, 7)).expect("forced-serial row");
    assert_eq!(parallel, serial);
}

#[test]
fn pre_detection_loss_is_thread_count_invariant() {
    let fault = FaultKind::Biased { extra_256: 64 };
    let cc = CampaignConfig::default();
    let parallel = pre_detection_loss(fault, &cc, 2, 0xABCD).unwrap();
    let serial =
        forced_serial(|| pre_detection_loss(fault, &cc, 2, 0xABCD)).expect("forced-serial loss");
    assert_eq!(parallel, serial);
}

#[test]
fn rr_curve_is_thread_count_invariant() {
    let rr = RandomizedResponse::new(0.25).unwrap();
    let parallel = rr_curve(rr, 0.68, &[100, 1_000, 5_000], 10, SEED);
    let serial = forced_serial(|| rr_curve(rr, 0.68, &[100, 1_000, 5_000], 10, SEED));
    assert_eq!(parallel, serial);
}

#[test]
fn cached_pmf_equals_fresh_closed_form() {
    let cfg = FxpLaplaceConfig::new(17, 12, 10.0 / 32.0, 20.0).unwrap();
    assert_eq!(*cached_pmf(cfg), FxpNoisePmf::closed_form(cfg));
}

#[test]
fn cached_threshold_equals_fresh_solve() {
    let cfg = FxpLaplaceConfig::new(14, 12, 1.0, 30.0).unwrap();
    let range = QuantizedRange::new(0, 30, 1.0).unwrap();
    let pmf = FxpNoisePmf::closed_form(cfg);
    for mode in [LimitMode::Resampling, LimitMode::Thresholding] {
        let fresh = exact_threshold(cfg, &pmf, range, MULTIPLE, mode).unwrap();
        let cached = exact_threshold_cached(cfg, range, MULTIPLE, mode).unwrap();
        assert_eq!(fresh.n_th_k, cached.n_th_k, "{mode:?}");
        assert_eq!(
            fresh.guaranteed_loss.to_bits(),
            cached.guaranteed_loss.to_bits(),
            "{mode:?}"
        );
    }
}

#[test]
fn cached_segment_table_equals_fresh_build() {
    let cfg = FxpLaplaceConfig::new(14, 12, 1.0, 30.0).unwrap();
    let range = QuantizedRange::new(0, 30, 1.0).unwrap();
    let multiples = [1.5, 2.0, 3.0];
    let pmf = FxpNoisePmf::closed_form(cfg);
    let fresh = SegmentTable::build(cfg, &pmf, range, &multiples, LimitMode::Thresholding).unwrap();
    let cached = segment_table_cached(cfg, range, &multiples, LimitMode::Thresholding).unwrap();
    assert_eq!(fresh, cached);
    // A second lookup must serve the same value again.
    let again = segment_table_cached(cfg, range, &multiples, LimitMode::Thresholding).unwrap();
    assert_eq!(cached, again);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `par_map_with` preserves per-item results and ordering for any
    /// width, even when each item owns a seeded RNG stream (the structure
    /// every evaluation sweep relies on).
    #[test]
    fn par_map_rng_streams_are_width_invariant(master in any::<u64>(), width in 1usize..9) {
        let items: Vec<u64> = (0..23).collect();
        let cell = |&i: &u64| {
            let mut rng = ulp_ldp::rng::Taus88::from_seed(stream_seed(master, &[i]));
            use ulp_ldp::rng::RandomBits;
            (0..50).map(|_| u64::from(rng.next_u32())).sum::<u64>()
        };
        let serial: Vec<u64> = items.iter().map(cell).collect();
        let wide = ulp_par::par_map_with(width, &items, cell);
        prop_assert_eq!(serial, wide);
    }

    /// Per-cell stream seeds depend only on the coordinates, never on
    /// evaluation order.
    #[test]
    fn stream_seed_is_pure(master in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(stream_seed(master, &[a, b]), stream_seed(master, &[a, b]));
        if a != b {
            prop_assert_ne!(stream_seed(master, &[a, b]), stream_seed(master, &[b, a]));
        }
    }
}
