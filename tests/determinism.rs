//! Determinism pins: seeded runs must reproduce bit-identical results
//! across refactors. These values were captured from the current
//! implementation; a change here means the regenerated tables/figures will
//! silently shift — bump the pins *deliberately* if an algorithm change is
//! intended.

use ulp_ldp::datasets::{generate, statlog_heart};
use ulp_ldp::eval::ExperimentSetup;
use ulp_ldp::ldp::{exact_threshold, LimitMode, Mechanism};
use ulp_ldp::rng::{FxpLaplaceConfig, FxpNoisePmf, RandomBits, Taus88};

#[test]
fn taus88_stream_is_pinned() {
    let mut rng = Taus88::from_seed(2018);
    let first: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
    let again: Vec<u32> = {
        let mut rng = Taus88::from_seed(2018);
        (0..4).map(|_| rng.next_u32()).collect()
    };
    assert_eq!(first, again);
    // Cross-session stability: same machine-independent integer stream.
    let mut rng = Taus88::from_seed(2018);
    let a = rng.next_u64();
    let b = rng.next_u64();
    assert_ne!(a, b);
}

#[test]
fn paper_pmf_invariants_are_pinned() {
    // These integers are exact combinatorial facts of the Fig. 4
    // configuration — they cannot drift without an algorithmic change.
    let cfg = FxpLaplaceConfig::new(17, 12, 10.0 / 32.0, 20.0).expect("paper configuration");
    let pmf = FxpNoisePmf::closed_form(cfg);
    assert_eq!(pmf.support_max_k(), 754);
    assert_eq!(pmf.interior_gap_count(), 203);
    assert_eq!(pmf.weight(0), 2042);
    assert_eq!(pmf.tail_weight_ge(754), 1);
}

#[test]
fn exact_thresholds_are_pinned() {
    let cfg = FxpLaplaceConfig::new(17, 12, 10.0 / 32.0, 20.0).expect("paper configuration");
    let pmf = FxpNoisePmf::closed_form(cfg);
    let range = ulp_ldp::ldp::QuantizedRange::new(0, 32, cfg.delta()).expect("valid range");
    let t = exact_threshold(cfg, &pmf, range, 2.0, LimitMode::Thresholding)
        .expect("solvable")
        .n_th_k;
    let r = exact_threshold(cfg, &pmf, range, 2.0, LimitMode::Resampling)
        .expect("solvable")
        .n_th_k;
    assert_eq!((t, r), (419, 418));
}

#[test]
fn seeded_dataset_generation_is_pinned() {
    let data = generate(&statlog_heart(), 2018);
    assert_eq!(data.len(), 270);
    let sum: f64 = data.iter().sum();
    let again: f64 = generate(&statlog_heart(), 2018).iter().sum();
    assert_eq!(sum, again, "generation must be bit-deterministic");
    // Statistics in the expected window.
    let mean = sum / 270.0;
    assert!((mean - 131.3).abs() < 2.0);
}

#[test]
fn seeded_privatization_is_reproducible() {
    let setup = ExperimentSetup::paper_default(&statlog_heart(), 0.5).expect("setup");
    let mech = setup.thresholding(2.0).expect("thresholding");
    let run = || -> Vec<f64> {
        let mut rng = Taus88::from_seed(7);
        (0..32)
            .map(|_| mech.privatize(131.0, &mut rng).expect("thresholding").value)
            .collect()
    };
    assert_eq!(run(), run());
}
