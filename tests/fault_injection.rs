//! Fault injection: how the privacy pipeline behaves when the URNG
//! degrades. The *structural* window bound must survive any bit source;
//! the *distributional* ε bound does not — and the health monitor is what
//! stands between the two.

use ulp_ldp::ldp::{exact_threshold, LimitMode, QuantizedRange, ThresholdingMechanism};
use ulp_ldp::rng::{
    BitHealthMonitor, FxpLaplace, FxpLaplaceConfig, FxpNoisePmf, RandomBits, StuckAtBits, Taus88,
};

fn mechanism() -> (ThresholdingMechanism, QuantizedRange, i64) {
    let cfg = FxpLaplaceConfig::new(17, 12, 10.0 / 32.0, 20.0).expect("paper configuration");
    let pmf = FxpNoisePmf::closed_form(cfg);
    let range = QuantizedRange::new(0, 32, cfg.delta()).expect("valid range");
    let spec = exact_threshold(cfg, &pmf, range, 2.0, LimitMode::Thresholding).expect("solvable");
    let mech =
        ThresholdingMechanism::new(FxpLaplace::analytic(cfg), range, spec).expect("constructible");
    (mech, range, spec.n_th_k)
}

#[test]
fn window_bound_survives_any_bit_source() {
    // Even a massively broken URNG cannot push outputs past the window:
    // the clamp is structural.
    let (mech, range, n_th) = mechanism();
    let mut broken = StuckAtBits::new(Taus88::from_seed(1), 31, true);
    for _ in 0..10_000 {
        let y = mech.privatize_index(range.max_k(), &mut broken);
        assert!(y >= range.min_k() - n_th && y <= range.max_k() + n_th);
    }
}

#[test]
fn stuck_sign_bit_skews_the_output_distribution() {
    // The distributional guarantee, by contrast, is destroyed: a stuck
    // sign bit makes every noise draw one-sided.
    let (mech, _range, _) = mechanism();
    let mut healthy = Taus88::from_seed(2);
    let mut broken = StuckAtBits::new(Taus88::from_seed(2), 31, true);
    let n = 20_000;
    let mean = |rng: &mut dyn RandomBits| -> f64 {
        (0..n)
            .map(|_| mech.privatize_index(16, rng) as f64)
            .sum::<f64>()
            / n as f64
    };
    let m_ok = mean(&mut healthy);
    let m_bad = mean(&mut broken);
    // Healthy noise is symmetric (mean ≈ input); broken noise is
    // one-sided (stuck sign ⇒ every draw negative), shifting the mean by
    // E[mag] = (1 − ln 2)·λ/Δ ≈ 19.6 grid steps.
    assert!((m_ok - 16.0).abs() < 10.0, "healthy mean {m_ok}");
    assert!(m_bad < 16.0 - 15.0, "broken mean {m_bad} not skewed?");
    // And strictly one-sided: no output ever exceeds the input.
    let mut broken2 = StuckAtBits::new(Taus88::from_seed(6), 31, true);
    for _ in 0..5_000 {
        assert!(mech.privatize_index(16, &mut broken2) <= 16);
    }
}

#[test]
fn health_monitor_gates_the_guarantee() {
    // The deployment rule the module docs prescribe: run the URNG through
    // the health monitor; only claim ε-LDP while it reports healthy.
    let mut mon_ok = BitHealthMonitor::new();
    let mut rng_ok = Taus88::from_seed(3);
    let mut mon_bad = BitHealthMonitor::new();
    let mut rng_bad = StuckAtBits::new(Taus88::from_seed(3), 5, false);
    for _ in 0..30_000 {
        mon_ok.observe(rng_ok.next_u32());
        mon_bad.observe(rng_bad.next_u32());
    }
    assert!(mon_ok.healthy(0.02));
    assert!(!mon_bad.healthy(0.02));
    assert_eq!(mon_bad.unhealthy_bits(0.02), vec![5]);
}

#[test]
fn magnitude_lsb_fault_is_subtle_but_detectable() {
    // A stuck *low* magnitude bit barely moves the noise moments — exactly
    // the kind of fault only a per-bit monitor catches.
    let (mech, _, _) = mechanism();
    let mut healthy = Taus88::from_seed(4);
    let mut broken = StuckAtBits::new(Taus88::from_seed(4), 0, true);
    let n = 20_000;
    let sd = |rng: &mut dyn RandomBits| -> f64 {
        let xs: Vec<f64> = (0..n)
            .map(|_| mech.privatize_index(16, rng) as f64)
            .collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64).sqrt()
    };
    let rel = (sd(&mut healthy) / sd(&mut broken) - 1.0).abs();
    assert!(rel < 0.05, "LSB fault should barely move σ: {rel}");
    // …but the monitor still flags it.
    let mut mon = BitHealthMonitor::new();
    let mut rng = StuckAtBits::new(Taus88::from_seed(5), 0, true);
    for _ in 0..30_000 {
        mon.observe(rng.next_u32());
    }
    assert_eq!(mon.unhealthy_bits(0.02), vec![0]);
}
