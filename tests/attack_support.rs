//! Differential support tests: the table-driven fast paths must realize
//! *exactly* the output support the exact integer-count PMF predicts, for
//! random Q-formats and ε — not just at the paper's operating point.
//!
//! This is the defense-side mirror of the `ulp_attack` distinguishers: a
//! support-gap attack succeeds precisely when a sampler's realized support
//! differs from the certified distribution's, so these properties pin the
//! attack surface closed on every tabulated path. (The continuous ziggurat
//! path has no FxP PMF; its grid-rounded alias table is audited by the
//! `ideal-grid-fast` campaign cell instead.)

use proptest::prelude::*;
use ulp_ldp::attack::{pmf_support, table_matches_dist, table_support};
use ulp_ldp::ldp::{
    conditional, exact_threshold, FxpBaseline, LimitMode, Mechanism, QuantizedRange,
    ResamplingMechanism, SamplerPath, ThresholdingMechanism,
};
use ulp_ldp::rng::{
    cached_alias_full, stream_seed, AliasTable, FxpLaplace, FxpLaplaceConfig, FxpNoisePmf, Taus88,
};

fn arb_cfg() -> impl Strategy<Value = (FxpLaplaceConfig, QuantizedRange)> {
    // Small-but-diverse configurations keep the exact analysis fast.
    (6u8..=14, 8u8..=16, 1i64..=40, 1u8..=4).prop_map(|(bu, by, span, lam_mult)| {
        let delta = 1.0;
        let lambda = (span * lam_mult as i64) as f64;
        let cfg = FxpLaplaceConfig::new(bu, by, delta, lambda).expect("valid config");
        let range = QuantizedRange::new(0, span, delta).expect("valid range");
        (cfg, range)
    })
}

/// A deterministic per-configuration RNG stream (proptest shrinks inputs,
/// so the stream must derive from the configuration, not a global counter).
fn cfg_rng(cfg: FxpLaplaceConfig, range: QuantizedRange, tag: u64) -> Taus88 {
    Taus88::from_seed(stream_seed(
        2018,
        &[u64::from(cfg.bu()), range.span_k() as u64, tag],
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn full_alias_table_support_equals_exact_pmf_support((cfg, _) in arb_cfg()) {
        let pmf = FxpNoisePmf::closed_form(cfg);
        let table = cached_alias_full(cfg).expect("tabulable");
        prop_assert!(table.verify_exact(), "alias decomposition must be mass-exact");
        let support = pmf_support(&pmf);
        prop_assert_eq!(&table_support(&table, 0), &support);
        // Sampled draws stay inside the planned support, so the attack's
        // distinguishing regions really are unreachable.
        let mut rng = cfg_rng(cfg, QuantizedRange::new(0, 1, 1.0).unwrap(), 0);
        let mut out = vec![0i64; 512];
        table.fill_batch(&mut rng, &mut out);
        for y in out {
            prop_assert!(support.contains(&y), "draw {y} outside exact support");
        }
    }

    #[test]
    fn resampling_window_tables_match_exact_conditionals(
        (cfg, range) in arb_cfg(),
        mult in 15u8..=40,
    ) {
        let multiple = mult as f64 / 10.0;
        let pmf = FxpNoisePmf::closed_form(cfg);
        let Ok(spec) = exact_threshold(cfg, &pmf, range, multiple, LimitMode::Resampling) else {
            return Ok(()); // target infeasible for this configuration
        };
        let (lo, hi) = (range.min_k() - spec.n_th_k, range.max_k() + spec.n_th_k);
        let mid = (range.min_k() + range.max_k()) / 2;
        for x_k in [range.min_k(), mid, range.max_k()] {
            let Ok(table) = AliasTable::from_pmf_window(&pmf, lo - x_k, hi - x_k) else {
                continue; // window misses the noise support entirely
            };
            let expected =
                conditional(&pmf, range, LimitMode::Resampling, Some(spec.n_th_k), x_k);
            prop_assert!(
                table_matches_dist(&table, x_k, &expected),
                "window table at x_k = {x_k} diverges from the exact conditional"
            );
        }
    }

    #[test]
    fn fast_and_secure_batches_land_in_exact_conditional_support(
        (cfg, range) in arb_cfg(),
        mult in 15u8..=40,
    ) {
        let multiple = mult as f64 / 10.0;
        let pmf = FxpNoisePmf::closed_form(cfg);
        let xs_k = [range.min_k(), (range.min_k() + range.max_k()) / 2, range.max_k()];
        let check = |mech: &dyn Mechanism,
                     mode: LimitMode,
                     n_th_k: Option<i64>,
                     tag: u64|
         -> Result<(), TestCaseError> {
            let mut rng = cfg_rng(cfg, range, tag);
            for x_k in xs_k {
                let input = vec![x_k; 128];
                let mut out = vec![0i64; 128];
                let routed = mech
                    .privatize_index_batch(&input, &mut rng, &mut out)
                    .expect("batch succeeds");
                prop_assert!(routed.is_some(), "{} must take the index batch", mech.name());
                let dist = conditional(&pmf, range, mode, n_th_k, x_k);
                for y in out {
                    prop_assert!(
                        dist.weight(y) > 0,
                        "{}: output {y} at x_k = {x_k} outside the exact support",
                        mech.name()
                    );
                }
            }
            Ok(())
        };

        let naive = FxpBaseline::new(FxpLaplace::analytic(cfg), range)
            .expect("valid baseline")
            .with_sampler_path(SamplerPath::Fast);
        check(&naive, LimitMode::Thresholding, None, 1)?;

        if let Ok(spec) = exact_threshold(cfg, &pmf, range, multiple, LimitMode::Resampling) {
            for path in [SamplerPath::Fast, SamplerPath::Secure] {
                let mech =
                    ResamplingMechanism::new(FxpLaplace::analytic(cfg), range, spec)
                        .expect("valid spec")
                        .with_sampler_path(path);
                check(&mech, LimitMode::Resampling, Some(spec.n_th_k), 2)?;
            }
        }
        if let Ok(spec) = exact_threshold(cfg, &pmf, range, multiple, LimitMode::Thresholding) {
            for path in [SamplerPath::Fast, SamplerPath::Secure] {
                let mech =
                    ThresholdingMechanism::new(FxpLaplace::analytic(cfg), range, spec)
                        .expect("valid spec")
                        .with_sampler_path(path);
                check(&mech, LimitMode::Thresholding, Some(spec.n_th_k), 3)?;
            }
        }
    }
}
