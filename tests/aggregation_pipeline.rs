//! The aggregator side, end to end: categorical collection (binary and
//! k-ary randomized response), numeric collection through the mechanisms,
//! and privacy accounting across a mixed workload.

use ulp_ldp::datasets::{generate, statlog_heart, Query};
use ulp_ldp::eval::ExperimentSetup;
use ulp_ldp::ldp::{
    CompositionLedger, KaryRandomizedResponse, Mechanism, RandomizedResponse, RdpAccountant,
};
use ulp_ldp::rng::Taus88;

#[test]
fn mixed_numeric_and_categorical_collection() {
    // A health study collects blood pressure (numeric, thresholded
    // mechanism) and smoking status (binary RR) from the same cohort, and
    // accounts for the combined loss per participant.
    let spec = statlog_heart();
    let setup = ExperimentSetup::paper_default(&spec, 0.5).expect("setup");
    let mech = setup.thresholding(2.0).expect("thresholding");
    let rr = RandomizedResponse::new(0.25).expect("valid p");
    let cohort = generate(&spec, 11);
    let mut rng = Taus88::from_seed(12);

    let mut released_bp = Vec::new();
    let mut smoker_reports = 0usize;
    let mut ledger = CompositionLedger::new();
    for (i, &bp) in cohort.iter().enumerate() {
        let code = setup.adc.encode(bp) as f64;
        released_bp.push(
            setup.adc.decode(
                mech.privatize(code, &mut rng)
                    .expect("mechanism")
                    .value
                    .round() as i64,
            ),
        );
        let smoker = i % 3 == 0; // ground truth: 1/3 of the cohort
        if rr.privatize(smoker, &mut rng) {
            smoker_reports += 1;
        }
        // Per-participant loss: numeric mechanism + RR, sequentially
        // composed.
        ledger.record(mech.guarantee().bound().expect("bounded"));
        ledger.record(rr.epsilon());
    }

    // Aggregates are useful…
    let true_mean = Query::Mean.exec(&cohort);
    let released_mean = Query::Mean.exec(&released_bp);
    assert!(
        (true_mean - released_mean).abs() < 0.25 * spec.range_length(),
        "mean {released_mean} vs truth {true_mean}"
    );
    let smoker_est = rr.estimate_proportion(smoker_reports as f64 / cohort.len() as f64);
    assert!(
        (smoker_est - 1.0 / 3.0).abs() < 0.2,
        "smoker estimate {smoker_est}"
    );

    // …and the ledger reflects per-participant loss (2 queries each).
    assert_eq!(ledger.queries(), 2 * cohort.len());
    let per_participant = mech.guarantee().bound().unwrap() + rr.epsilon();
    assert!((ledger.total() - per_participant * cohort.len() as f64).abs() < 1e-9);
}

#[test]
fn kary_survey_recovers_category_shares() {
    // A RAPPOR-style survey: which of 5 appliance classes dominates a
    // household's consumption.
    let rr = KaryRandomizedResponse::with_epsilon(5, 1.5).expect("valid k-RR");
    let shares = [0.4f64, 0.25, 0.2, 0.1, 0.05];
    let n = 100_000usize;
    let mut rng = Taus88::from_seed(13);
    let mut counts = [0u64; 5];
    for i in 0..n {
        let f = i as f64 / n as f64;
        let mut acc = 0.0;
        let mut cat = 0;
        for (j, &s) in shares.iter().enumerate() {
            acc += s;
            if f < acc {
                cat = j;
                break;
            }
        }
        counts[rr.privatize(cat, &mut rng)] += 1;
    }
    let est = rr.estimate_frequencies(&counts);
    for (e, t) in est.iter().zip(&shares) {
        assert!((e - t).abs() < 0.02, "estimate {e} vs share {t}");
    }
    // The ranking survives privatization.
    let mut order: Vec<usize> = (0..5).collect();
    order.sort_by(|&a, &b| est[b].partial_cmp(&est[a]).expect("no NaN"));
    assert_eq!(order, vec![0, 1, 2, 3, 4]);
}

#[test]
fn rdp_accounting_for_a_streaming_sensor() {
    // A sensor reporting every minute for a day: RDP accounting gives the
    // aggregator a meaningful (ε, δ) even though pure composition explodes.
    let setup = ExperimentSetup::paper_default(&statlog_heart(), 0.5).expect("setup");
    let spec = ulp_ldp::ldp::exact_threshold(
        setup.cfg,
        &setup.pmf,
        setup.range,
        2.0,
        ulp_ldp::ldp::LimitMode::Thresholding,
    )
    .expect("solvable");
    let d2 = ulp_ldp::ldp::worst_case_renyi(
        &setup.pmf,
        setup.range,
        ulp_ldp::ldp::LimitMode::Thresholding,
        Some(spec.n_th_k),
        2.0,
    )
    .finite()
    .expect("bounded");
    let mut acc = RdpAccountant::new(2.0).expect("valid order");
    let reports_per_day = 24 * 60;
    for _ in 0..reports_per_day {
        acc.record(d2);
    }
    let eps_day = acc.to_approx_dp(1e-9);
    let pure_day = reports_per_day as f64 * spec.guaranteed_loss;
    assert!(eps_day < pure_day, "RDP day-ε {eps_day} vs pure {pure_day}");
}
