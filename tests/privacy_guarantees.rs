//! End-to-end privacy guarantees across a sweep of hardware configurations:
//! the paper's negative result (naive FxP noising has infinite loss) and
//! positive result (solved windows bound the loss) must hold for every
//! configuration, and the *empirical* mechanism behaviour must match the
//! exact analysis it was certified against.

use std::collections::HashMap;

use ulp_ldp::ldp::{
    conditional, exact_threshold, worst_case_loss_extremes, LimitMode, PrivacyLoss, QuantizedRange,
    ResamplingMechanism, ThresholdingMechanism,
};
use ulp_ldp::rng::{FxpLaplace, FxpLaplaceConfig, FxpNoisePmf, Taus88};

fn sweep() -> Vec<(FxpLaplaceConfig, QuantizedRange)> {
    // (Bu, By, Δ, λ, range span) across resolutions and scales.
    [
        (17u8, 12u8, 10.0 / 32.0, 20.0, 32i64),
        (14, 14, 0.25, 8.0, 16),
        (12, 16, 1.0, 64.0, 64),
        (20, 20, 0.5, 50.0, 50),
    ]
    .into_iter()
    .map(|(bu, by, delta, lambda, span)| {
        let cfg = FxpLaplaceConfig::new(bu, by, delta, lambda).expect("valid config");
        let range = QuantizedRange::new(0, span, delta).expect("valid range");
        (cfg, range)
    })
    .collect()
}

#[test]
fn naive_noising_is_never_private() {
    for (cfg, range) in sweep() {
        let pmf = FxpNoisePmf::closed_form(cfg);
        let loss = worst_case_loss_extremes(&pmf, range, LimitMode::Thresholding, None);
        assert_eq!(
            loss,
            PrivacyLoss::Infinite,
            "naive loss must be infinite for Bu={} By={}",
            cfg.bu(),
            cfg.by()
        );
    }
}

#[test]
fn solved_windows_bound_the_loss_everywhere() {
    for (cfg, range) in sweep() {
        let pmf = FxpNoisePmf::closed_form(cfg);
        let eps = range.length() / cfg.lambda();
        for mode in [LimitMode::Resampling, LimitMode::Thresholding] {
            let spec = match exact_threshold(cfg, &pmf, range, 2.0, mode) {
                Ok(s) => s,
                Err(_) => continue, // configuration cannot meet the target
            };
            let loss = worst_case_loss_extremes(&pmf, range, mode, Some(spec.n_th_k));
            assert!(
                loss.is_bounded_by(2.0 * eps + 1e-12),
                "{mode:?} Bu={}: loss {loss:?} > {}",
                cfg.bu(),
                2.0 * eps
            );
        }
    }
}

#[test]
fn empirical_output_frequencies_match_certified_distribution() {
    // The mechanism that was *certified* via ConditionalDist must actually
    // emit outputs with those probabilities — tie the analysis to the
    // implementation.
    let cfg = FxpLaplaceConfig::new(12, 14, 0.5, 8.0).expect("valid config");
    let range = QuantizedRange::new(0, 16, 0.5).expect("valid range");
    let pmf = FxpNoisePmf::closed_form(cfg);
    let spec = exact_threshold(cfg, &pmf, range, 2.0, LimitMode::Thresholding).expect("solvable");
    let mech =
        ThresholdingMechanism::new(FxpLaplace::analytic(cfg), range, spec).expect("constructible");
    let x_k = range.max_k();
    let dist = conditional(&pmf, range, LimitMode::Thresholding, Some(spec.n_th_k), x_k);

    let mut rng = Taus88::from_seed(404);
    let n = 400_000usize;
    let mut hist: HashMap<i64, u64> = HashMap::new();
    for _ in 0..n {
        *hist.entry(mech.privatize_index(x_k, &mut rng)).or_insert(0) += 1;
    }
    // Every emitted output must be in the certified support…
    for &y in hist.keys() {
        assert!(dist.weight(y) > 0, "emitted uncertified output {y}");
    }
    // …and high-probability outputs must appear at the certified rate.
    for (y, w) in dist.iter() {
        let p = w as f64 / dist.norm() as f64;
        if p > 1e-3 {
            let emp = *hist.get(&y).unwrap_or(&0) as f64 / n as f64;
            assert!(
                (emp - p).abs() < 5.0 * (p / n as f64).sqrt() + 1e-4,
                "y={y}: empirical {emp} vs certified {p}"
            );
        }
    }
}

#[test]
fn resampling_empirical_acceptance_matches_analysis() {
    let cfg = FxpLaplaceConfig::new(14, 14, 0.25, 8.0).expect("valid config");
    let range = QuantizedRange::new(0, 16, 0.25).expect("valid range");
    let pmf = FxpNoisePmf::closed_form(cfg);
    let spec = exact_threshold(cfg, &pmf, range, 2.0, LimitMode::Resampling).expect("solvable");
    let mech =
        ResamplingMechanism::new(FxpLaplace::analytic(cfg), range, spec).expect("constructible");
    let x_k = range.min_k();
    let dist = conditional(&pmf, range, LimitMode::Resampling, Some(spec.n_th_k), x_k);
    let accept = dist.norm() as f64 / pmf.total_weight() as f64;

    let mut rng = Taus88::from_seed(405);
    let n = 100_000u32;
    let mut redraws = 0u64;
    for _ in 0..n {
        redraws += mech
            .privatize_index(x_k, &mut rng)
            .expect("in-support window")
            .1 as u64;
    }
    let expected_redraws = 1.0 / accept - 1.0;
    let measured = redraws as f64 / n as f64;
    assert!(
        (measured - expected_redraws).abs() < 0.05 * expected_redraws.max(0.02) + 0.01,
        "measured {measured} vs expected {expected_redraws} redraws/request"
    );
}

#[test]
fn guarantee_survives_any_uniform_source() {
    // The LDP guarantee is a property of the mapping, not the bit source:
    // swapping the URNG family must keep outputs inside the certified
    // support.
    use ulp_ldp::rng::Xorshift64Star;
    let cfg = FxpLaplaceConfig::new(17, 12, 10.0 / 32.0, 20.0).expect("paper configuration");
    let range = QuantizedRange::new(0, 32, cfg.delta()).expect("valid range");
    let pmf = FxpNoisePmf::closed_form(cfg);
    let spec = exact_threshold(cfg, &pmf, range, 2.0, LimitMode::Thresholding).expect("solvable");
    let mech =
        ThresholdingMechanism::new(FxpLaplace::analytic(cfg), range, spec).expect("constructible");
    let mut rng = Xorshift64Star::from_seed(99);
    for _ in 0..20_000 {
        let y = mech.privatize_index(range.max_k(), &mut rng);
        assert!(y >= range.min_k() - spec.n_th_k && y <= range.max_k() + spec.n_th_k);
    }
}

#[test]
fn post_processing_preserves_the_guarantee() {
    // Section II-B: applying any query to DP outputs preserves privacy.
    // Operationally: aggregates computed from certified outputs depend on
    // the input only through the certified channel — check that two
    // adjacent inputs produce overlapping aggregate distributions.
    let cfg = FxpLaplaceConfig::new(17, 12, 10.0 / 32.0, 20.0).expect("paper configuration");
    let range = QuantizedRange::new(0, 32, cfg.delta()).expect("valid range");
    let pmf = FxpNoisePmf::closed_form(cfg);
    let spec = exact_threshold(cfg, &pmf, range, 2.0, LimitMode::Thresholding).expect("solvable");
    let mech =
        ThresholdingMechanism::new(FxpLaplace::analytic(cfg), range, spec).expect("constructible");
    let mut rng = Taus88::from_seed(7);
    let rounded_mean = |x_k: i64, rng: &mut Taus88| -> i64 {
        let s: i64 = (0..64).map(|_| mech.privatize_index(x_k, rng)).sum();
        (s as f64 / 64.0 / 16.0).round() as i64 // coarse post-processing
    };
    let mut a = std::collections::HashSet::new();
    let mut b = std::collections::HashSet::new();
    for _ in 0..200 {
        a.insert(rounded_mean(range.min_k(), &mut rng));
        b.insert(rounded_mean(range.max_k(), &mut rng));
    }
    assert!(
        a.intersection(&b).count() > 0,
        "post-processed aggregates must overlap between adjacent inputs"
    );
}
