//! End-to-end DP-Box device scenarios: the full boot → configure → noise →
//! exhaust → replenish lifecycle, and consistency between the device and
//! the analytical models it embeds.

use ulp_ldp::dpbox::{Command, DpBox, DpBoxConfig, Phase};
use ulp_ldp::eval::Adc;

fn booted(seed: u64, budget_units: Option<i64>, period: u64) -> DpBox {
    let cfg = DpBoxConfig {
        frac_bits: 0,
        seed,
        ..DpBoxConfig::default()
    };
    let mut dev = DpBox::new(cfg).expect("valid config");
    if let Some(b) = budget_units {
        dev.issue(Command::SetEpsilon, b).expect("budget");
    }
    if period > 0 {
        dev.issue(Command::SetSensorRangeUpper, period as i64)
            .expect("period");
    }
    dev.issue(Command::StartNoising, 0).expect("leave init");
    dev
}

fn configure_statlog(dev: &mut DpBox, adc: Adc) {
    dev.issue(Command::SetEpsilon, 1).expect("ε = 0.5");
    dev.issue(Command::SetSensorRangeLower, 0).expect("lower");
    dev.issue(Command::SetSensorRangeUpper, adc.max_code())
        .expect("upper");
    dev.issue(Command::SetThreshold, 0).expect("thresholding");
}

#[test]
fn full_lifecycle_boot_noise_exhaust_replenish() {
    let adc = Adc::new(94.0, 200.0, 8);
    let mut dev = booted(1, Some(30), 100_000);
    configure_statlog(&mut dev, adc);
    assert_eq!(dev.phase(), Phase::Waiting);

    // Noise until the budget runs out.
    let mut fresh = 0u64;
    loop {
        dev.noise_value(adc.encode(131.3)).expect("served");
        if dev.remaining_budget() <= 0.0 {
            break;
        }
        fresh += 1;
        assert!(fresh < 10_000, "budget must eventually exhaust");
    }
    // Cached replies now.
    let before = dev.stats().cached;
    let (y1, _) = dev.noise_value(adc.encode(131.3)).expect("cached");
    let (y2, _) = dev.noise_value(adc.encode(180.0)).expect("cached");
    assert_eq!(y1, y2, "cache replays regardless of the requested value");
    assert_eq!(dev.stats().cached, before + 2);

    // Idle a full replenishment period and noise again.
    for _ in 0..100_000 {
        dev.tick();
    }
    assert!(dev.remaining_budget() > 0.0);
    dev.noise_value(adc.encode(131.3)).expect("fresh again");
    assert_eq!(dev.stats().cached, before + 2, "no more cache hits");
}

#[test]
fn device_threshold_matches_core_solver() {
    // The window the device enforces must be the one the ldp-core exact
    // solver certifies for its induced noise configuration.
    use ulp_ldp::ldp::{exact_threshold, LimitMode, QuantizedRange};
    use ulp_ldp::rng::FxpNoisePmf;

    let adc = Adc::new(94.0, 200.0, 8);
    let mut dev = booted(2, None, 0);
    configure_statlog(&mut dev, adc);
    dev.noise_value(128).expect("first noising builds context");

    let lap_cfg = dev.laplace_config().expect("context built");
    let pmf = FxpNoisePmf::closed_form(lap_cfg);
    let range = QuantizedRange::new(0, adc.max_code(), 1.0).expect("valid range");
    let expected = exact_threshold(lap_cfg, &pmf, range, 3.0, LimitMode::Thresholding)
        .expect("solvable")
        .n_th_k;
    assert_eq!(dev.threshold_k(), Some(expected));
}

#[test]
fn outputs_always_within_certified_window() {
    let adc = Adc::new(94.0, 200.0, 8);
    let mut dev = booted(3, None, 0);
    configure_statlog(&mut dev, adc);
    dev.noise_value(0).expect("context");
    let n_th = dev.threshold_k().expect("threshold solved");
    for code in [0i64, 64, 128, 192, 256] {
        for _ in 0..500 {
            let (y, _) = dev.noise_value(code).expect("served");
            assert!(y >= -n_th && y <= adc.max_code() + n_th, "y={y}");
        }
    }
}

#[test]
fn mode_toggle_changes_latency_profile() {
    let adc = Adc::new(94.0, 200.0, 8);
    // Resampling device (default mode).
    let mut dev = booted(4, None, 0);
    dev.issue(Command::SetEpsilon, 1).expect("ε");
    dev.issue(Command::SetSensorRangeLower, 0).expect("lower");
    dev.issue(Command::SetSensorRangeUpper, adc.max_code())
        .expect("upper");
    let mut saw_extra = 0u64;
    for _ in 0..3_000 {
        let (_, cycles) = dev.noise_value(0).expect("served");
        if cycles > 2 {
            saw_extra += cycles - 2;
        }
    }
    assert_eq!(dev.stats().resamples, saw_extra);
    // Thresholding never exceeds 2 cycles.
    let mut dev_t = booted(5, None, 0);
    configure_statlog(&mut dev_t, adc);
    for _ in 0..1_000 {
        let (_, cycles) = dev_t.noise_value(128).expect("served");
        assert_eq!(cycles, 2);
    }
}

#[test]
fn sensor_swap_reconfigures_cleanly() {
    // One DP-Box serving two sensors back to back (range changes rebuild
    // the noising context).
    let mut dev = booted(6, None, 0);
    let bp = Adc::new(94.0, 200.0, 8);
    configure_statlog(&mut dev, bp);
    let (y1, _) = dev.noise_value(bp.encode(140.0)).expect("bp noised");
    // Switch to an accelerometer with a different range.
    let acc = Adc::new(-1.0, 1.0, 8);
    dev.issue(Command::SetSensorRangeLower, 0).expect("lower");
    dev.issue(Command::SetSensorRangeUpper, acc.max_code())
        .expect("upper");
    let (y2, _) = dev.noise_value(acc.encode(0.1)).expect("acc noised");
    let n_th = dev.threshold_k().expect("rebuilt");
    assert!(y2 >= -n_th && y2 <= acc.max_code() + n_th);
    let _ = y1;
}

#[test]
fn device_noise_spread_matches_pmf_prediction() {
    // σ of the device's noise must match the PMF's implied σ within
    // sampling error (ties the CORDIC datapath to the analytic model).
    use ulp_ldp::rng::FxpNoisePmf;

    let adc = Adc::new(94.0, 200.0, 8);
    let mut dev = booted(7, None, 0);
    configure_statlog(&mut dev, adc);
    dev.noise_value(128).expect("context");
    let lap_cfg = dev.laplace_config().expect("built");
    let pmf = FxpNoisePmf::closed_form(lap_cfg);
    let n_th = dev.threshold_k().expect("threshold");

    // PMF σ under thresholding for mid input (window ±(n_th + 128)).
    let x = 128i64;
    let lo = -n_th - x;
    let hi = (adc.max_code() + n_th) - x;
    let mut mean = 0.0;
    let mut m2 = 0.0;
    let total = pmf.total_weight() as f64;
    for k in -pmf.support_max_k()..=pmf.support_max_k() {
        let kk = k.clamp(lo, hi) as f64;
        let p = pmf.weight(k) as f64 / total;
        mean += kk * p;
        m2 += kk * kk * p;
    }
    let sigma_pred = (m2 - mean * mean).sqrt();

    let n = 20_000;
    let mut sum = 0.0;
    let mut sq = 0.0;
    for _ in 0..n {
        let (y, _) = dev.noise_value(x).expect("served");
        let d = (y - x) as f64;
        sum += d;
        sq += d * d;
    }
    let m = sum / n as f64;
    let sigma_dev = (sq / n as f64 - m * m).sqrt();
    assert!(
        (sigma_dev / sigma_pred - 1.0).abs() < 0.05,
        "device σ {sigma_dev} vs PMF σ {sigma_pred}"
    );
}
