//! Section III-A4's generalization, machine-checked across noise families:
//! *any* finite-precision noise distribution breaks naive LDP the same way,
//! and the same window-limiting machinery repairs any of them.

use ulp_ldp::ldp::{
    exact_threshold_for_bound, worst_case_loss_extremes, LimitMode, PrivacyLoss, QuantizedRange,
};
use ulp_ldp::rng::{FxpGaussian, FxpGaussianConfig};

#[test]
fn fixed_point_gaussian_breaks_exactly_like_laplace() {
    // Gaussian noise sized for (ε, δ)-style use: σ = 2·d on the grid.
    let cfg = FxpGaussianConfig::new(16, 16, 1.0, 64.0).expect("valid config");
    let g = FxpGaussian::new(cfg);
    let range = QuantizedRange::new(0, 32, 1.0).expect("valid range");
    // Bounded support + tail gaps…
    assert!(g.pmf().support_max_k() > 0);
    assert!(g.pmf().interior_gap_count() > 0);
    // …⇒ infinite naive loss.
    let loss = worst_case_loss_extremes(g.pmf(), range, LimitMode::Thresholding, None);
    assert_eq!(loss, PrivacyLoss::Infinite);
}

#[test]
fn window_limiting_repairs_the_gaussian_too() {
    let cfg = FxpGaussianConfig::new(16, 16, 1.0, 64.0).expect("valid config");
    let g = FxpGaussian::new(cfg);
    let range = QuantizedRange::new(0, 32, 1.0).expect("valid range");
    // Target: loss ≤ 1 nat. The distribution-agnostic solver works straight
    // off the Gaussian PMF.
    for mode in [LimitMode::Thresholding, LimitMode::Resampling] {
        let spec = exact_threshold_for_bound(g.pmf(), range, 1.0, mode).expect("solvable");
        assert!(spec.n_th_k > 0, "{mode:?}: nontrivial window expected");
        let loss = worst_case_loss_extremes(g.pmf(), range, mode, Some(spec.n_th_k));
        assert!(
            loss.is_bounded_by(1.0 + 1e-12),
            "{mode:?}: {loss:?} exceeds 1 nat"
        );
    }
}

#[test]
fn gaussian_loss_grows_quadratically_not_linearly() {
    // A Gaussian-specific check: the pointwise loss between adjacent
    // inputs grows with |y| (quadratic exponent difference), unlike the
    // constant Laplace ratio — so Gaussian windows must be tighter relative
    // to their tail reach.
    let cfg = FxpGaussianConfig::new(18, 16, 1.0, 64.0).expect("valid config");
    let g = FxpGaussian::new(cfg);
    let range = QuantizedRange::new(0, 16, 1.0).expect("valid range");
    let spec =
        exact_threshold_for_bound(g.pmf(), range, 1.0, LimitMode::Thresholding).expect("solvable");
    // For Lap with same "reach", the window would stretch much further;
    // here it is limited by the quadratically-growing boundary ratio:
    // ln ratio at boundary ≈ s·(n_th + s/2)/σ² = 1 ⇒ n_th ≈ σ²/s − s/2.
    let predicted = (64.0f64 * 64.0 / 16.0 - 8.0).round() as i64;
    assert!(
        (spec.n_th_k - predicted).abs() <= predicted / 5,
        "window {} vs Gaussian-theory prediction {predicted}",
        spec.n_th_k
    );
}

#[test]
fn fixed_point_staircase_breaks_and_repairs_identically() {
    // Third family (Geng–Viswanath staircase, the paper's "[21]"): the
    // utility-optimal ε-DP noise also loses its guarantee in fixed point —
    // and the same distribution-agnostic solver repairs it.
    use ulp_ldp::rng::{FxpStaircase, FxpStaircaseConfig, IdealStaircase};
    let st = IdealStaircase::optimal(0.5, 10.0).expect("valid staircase");
    let cfg = FxpStaircaseConfig::new(17, 16, 10.0 / 32.0).expect("valid config");
    let fxp = FxpStaircase::new(cfg, st);
    let range = QuantizedRange::new(0, 32, cfg.delta()).expect("valid range");
    // Break…
    let naive = worst_case_loss_extremes(fxp.pmf(), range, LimitMode::Thresholding, None);
    assert_eq!(naive, PrivacyLoss::Infinite);
    // …and repair at a 2ε = 1.0 nat target.
    let spec = exact_threshold_for_bound(fxp.pmf(), range, 1.0, LimitMode::Thresholding)
        .expect("solvable");
    let fixed =
        worst_case_loss_extremes(fxp.pmf(), range, LimitMode::Thresholding, Some(spec.n_th_k));
    assert!(fixed.is_bounded_by(1.0 + 1e-12), "{fixed:?}");
}

#[test]
fn float_laplace_is_vulnerable_as_well() {
    // Section III-A4 cites the floating-point attack: naive f64 Laplace
    // noising also produces input-identifying outputs.
    use ulp_ldp::ldp::float_vuln::distinguishing_fraction;
    let frac = distinguishing_fraction(0.0, 1.0, 20.0, 14).expect("Bu within enumeration range");
    assert!(frac > 0.5, "distinguishing fraction {frac}");
}
