//! Batch-engine equivalence properties: a [`DeviceArray`] lane pinned to a
//! fresh scalar [`DpBox`] stepped in lockstep must be bit-identical —
//! outputs, per-epoch budget state, health-fault latching, and budget
//! exhaustion — across randomized configurations, seeds, and sensor
//! schedules. This is the property backing the fleet driver's batch
//! engine (`ULP_DEVICE_ENGINE=batch`): the column loops are a
//! reorganization of the scalar FSM, not an approximation of it.

use proptest::prelude::*;
use ulp_ldp::dpbox::{
    Command, DeviceArray, DeviceArrayConfig, DpBox, DpBoxConfig, DpBoxError, HealthConfig,
    LaneOutcome, Phase,
};
use ulp_ldp::rng::Taus88;

/// Boots a scalar DP-Box through the exact command sequence the array
/// models (the fleet driver's boot sequence), on the same seed.
///
/// Returns the device still in `HealthFault` phase when the power-on
/// self-test trips (the caller checks the phase — the fleet excludes such
/// devices), and an error when a later boot command fails (the array
/// reports the same as a construction error).
fn scalar_device(cfg: &DeviceArrayConfig, seed: u64) -> Result<DpBox, DpBoxError> {
    let mut dev = DpBox::with_urng(
        DpBoxConfig {
            word_bits: cfg.word_bits,
            frac_bits: cfg.frac_bits,
            bu: cfg.bu,
            cordic_iterations: cfg.cordic_iterations,
            segment_multiples: cfg.segment_multiples.clone(),
            seed: 0,
        },
        Taus88::from_seed(seed),
    )?;
    dev.set_health_config(cfg.health);
    dev.issue(Command::ResetHealth, 0)?;
    if dev.phase() == Phase::HealthFault {
        return Ok(dev);
    }
    dev.issue(Command::SetEpsilon, cfg.budget_raw)?;
    dev.issue(Command::StartNoising, 0)?;
    dev.issue(Command::SetEpsilon, i64::from(cfg.eps_shift))?;
    dev.issue(Command::SetSensorRangeLower, cfg.range_lower)?;
    dev.issue(Command::SetSensorRangeUpper, cfg.range_upper)?;
    dev.issue(Command::SetThreshold, 0)?;
    Ok(dev)
}

/// Randomized array configurations around the fleet operating point:
/// small budgets so exhaustion lands mid-run, and health monitors from
/// paper-realistic (`alpha_exp` 40) down to hair-trigger (`alpha_exp` 4,
/// which trips monitors both at power-on and mid-batch).
fn arb_config() -> impl Strategy<Value = DeviceArrayConfig> {
    (4u8..=40, 1i64..=3, 0u8..=2, (16u8..=18)).prop_map(|(alpha, budget_raw, eps_shift, bu)| {
        DeviceArrayConfig {
            word_bits: 20,
            frac_bits: 0,
            bu,
            cordic_iterations: 24,
            segment_multiples: vec![1.5, 2.0, 2.5, 3.0],
            health: HealthConfig::new(alpha, 64, 4).unwrap(),
            budget_raw,
            eps_shift,
            range_lower: 0,
            range_upper: 256,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every lane, every epoch: the array's outcome equals the scalar
    /// device's, the remaining budget is bit-identical, exclusion matches
    /// the scalar `HealthFault` phase, and once either side stops
    /// reporting the other has stopped too — across random configs,
    /// seeds, and per-epoch sensor codes.
    #[test]
    fn array_lanes_are_bit_identical_to_scalar_devices(
        cfg in arb_config(),
        seeds in proptest::collection::vec(any::<u64>(), 1..6),
        schedule in proptest::collection::vec(
            proptest::collection::vec(0i64..=256, 1..6), 1..10),
    ) {
        let array = match DeviceArray::new(&cfg, &seeds) {
            Ok(a) => a,
            Err(e) => {
                // A lane's monitor tripped while staging its first
                // sample: the scalar boot sequence must fail the same
                // way on the first such seed (lanes boot in index order).
                let scalar_err = seeds.iter().find_map(|&s| scalar_device(&cfg, s).err());
                prop_assert_eq!(
                    format!("{e}"),
                    format!("{}", scalar_err.expect("a scalar boot fails too"))
                );
                return Ok(());
            }
        };

        for (lane, &seed) in seeds.iter().enumerate() {
            let mut dev = scalar_device(&cfg, seed).unwrap();
            prop_assert_eq!(
                dev.phase() == Phase::HealthFault,
                array.is_excluded(lane),
                "lane {} exclusion parity", lane
            );
            if array.is_excluded(lane) {
                continue;
            }
            // Fresh array per lane so the lockstep comparison sees every
            // epoch's outcome for this lane.
            let mut mirror = DeviceArray::new(&cfg, &seeds).unwrap();
            let mut out = Vec::new();
            for (epoch, epoch_codes) in schedule.iter().enumerate() {
                let xs: Vec<i64> = (0..seeds.len())
                    .map(|l| epoch_codes[l % epoch_codes.len()])
                    .collect();
                mirror.step(&xs, &mut out);
                match dev.noise_value(xs[lane]) {
                    Ok((y, _)) => {
                        let ok = matches!(
                            out[lane],
                            LaneOutcome::Fresh { y: ay, .. } | LaneOutcome::Cached { y: ay }
                                if ay == y
                        );
                        prop_assert!(
                            ok,
                            "lane {} epoch {}: scalar {}, array {:?}",
                            lane, epoch, y, out[lane]
                        );
                    }
                    // Health-fault latch or budget exhaustion with no
                    // cached output: the lane must be compacted away.
                    Err(_) => prop_assert_eq!(
                        out[lane], LaneOutcome::Dropped,
                        "lane {} epoch {}: scalar stopped, array did not", lane, epoch
                    ),
                }
                prop_assert_eq!(
                    dev.remaining_budget().to_bits(),
                    mirror.remaining_budget(lane).to_bits(),
                    "lane {} epoch {} remaining budget", lane, epoch
                );
            }
        }
    }
}
