//! Streaming-service determinism: rollup order-invariance (property) and
//! the cross-process service-digest matrix across worker-thread counts
//! and device engines.

use proptest::prelude::*;
use ulp_ldp::fleet::{
    Collector, FleetConfig, FleetDriver, Payload, QueryConfig, QueryKind, Report, Rollup,
    SealedWindow, ServiceConfig,
};
use ulp_ldp::ldp::BudgetLedger;

const NUMERIC: QueryConfig = QueryConfig {
    id: 0,
    kind: QueryKind::Numeric {
        sketch_min_k: -64,
        sketch_max_k: 64,
    },
};
const RR: QueryConfig = QueryConfig {
    id: 1,
    kind: QueryKind::RrBit,
};

/// Drives a real [`ulp_ldp::fleet::FleetService`] through `windows`
/// single-epoch windows — distinct devices and values per epoch, a real
/// per-window ε ledger — and returns the sealed windows.
fn sealed_windows(windows: u32) -> Vec<SealedWindow> {
    let mut service = ulp_ldp::fleet::FleetService::new(
        Collector::new(2, &[NUMERIC, RR]),
        ServiceConfig::new(1, 1 << 12),
        2,
        windows,
    );
    for epoch in 0..windows {
        let mut bytes = Vec::new();
        let mut ledger = BudgetLedger::new();
        let mut charges = Vec::new();
        for d in 0..16u32 {
            let device = epoch * 100 + d;
            Report {
                device,
                query: 0,
                epoch,
                payload: Payload::Value(i32::try_from(device).unwrap() % 7 - 3),
            }
            .encode_into(&mut bytes);
            Report {
                device,
                query: 1,
                epoch,
                payload: Payload::RrBit(device % 3 == 0),
            }
            .encode_into(&mut bytes);
            let charge = 0.25 + f64::from(d) / 64.0;
            ledger
                .record_spend(u64::from(device), u64::from(epoch), charge)
                .expect("distinct devices never double-spend");
            charges.push(charge);
        }
        service.offer((epoch % 2) as usize, &bytes).unwrap();
        assert!(service.seal_due(epoch + 1));
        let sealed = service.seal_active(ledger, charges, 32).unwrap();
        assert!(sealed.seal.is_full());
        assert!(sealed.audit_ok);
    }
    service.sealed_windows().to_vec()
}

/// Deterministic Fisher–Yates driven by a splitmix-style step, so the
/// property samples arbitrary permutations from a plain `u64` seed.
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x243F_6A88_85A3_08D3);
        let j = (seed >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Absorbing the same sealed windows in *any* order must finalize to
    /// byte-identical rollup accumulators, ε-ledger, and digest — the
    /// rollup canonicalizes on window index, not arrival order.
    #[test]
    fn rollup_is_invariant_to_absorption_order(seed in any::<u64>(), windows in 2u32..7) {
        let sealed = sealed_windows(windows);

        let mut baseline = Rollup::new();
        for w in &sealed {
            baseline.absorb(w.clone()).unwrap();
        }
        let baseline = baseline.finalize(1.0);

        let mut shuffled = Rollup::new();
        for &i in &permutation(sealed.len(), seed) {
            shuffled.absorb(sealed[i].clone()).unwrap();
        }
        let shuffled = shuffled.finalize(1.0);

        prop_assert_eq!(shuffled.digest, baseline.digest);
        prop_assert_eq!(&shuffled.totals, &baseline.totals);
        prop_assert_eq!(&shuffled.ledger, &baseline.ledger);
        prop_assert_eq!(shuffled.ledger.total().to_bits(), baseline.ledger.total().to_bits());
        prop_assert_eq!(shuffled.audit_ok, baseline.audit_ok);
        prop_assert_eq!(
            (shuffled.windows, shuffled.epoch_lo, shuffled.epoch_hi),
            (baseline.windows, baseline.epoch_lo, baseline.epoch_hi)
        );
    }

    /// Re-absorbing any window index is a typed error, never a silent
    /// double-count.
    #[test]
    fn duplicate_window_absorption_is_rejected(dup in 0usize..4) {
        let sealed = sealed_windows(4);
        let mut rollup = Rollup::new();
        for w in &sealed {
            rollup.absorb(w.clone()).unwrap();
        }
        prop_assert!(rollup.absorb(sealed[dup].clone()).is_err());
    }
}

fn service_cfg() -> (FleetConfig, ServiceConfig) {
    let fleet = FleetConfig {
        chunk: 64,
        ..FleetConfig::paper_default(400, 4, 77)
    };
    (fleet, ServiceConfig::new(2, 1 << 14))
}

/// Child half of the service determinism matrix: prints the service
/// outcome digest, rollup digest, and fleet ledger digest of a fixed
/// multi-window run under whatever `ULP_PAR_THREADS` /
/// `ULP_DEVICE_ENGINE` the parent set.
#[test]
#[ignore = "helper re-executed by service_digest_identical_across_threads_and_engines"]
fn service_digest_child() {
    let (fleet, svc) = service_cfg();
    let out = FleetDriver::new(fleet).unwrap().run_service(&svc).unwrap();
    println!(
        "SERVICE_DIGEST={:016x}:{:016x}:{:016x}",
        out.digest(),
        out.rollup_digest,
        out.ledger_digest
    );
}

/// `ulp_par::threads()` latches once per process, so the service digest
/// matrix re-execs this test binary filtered to the child helper. Every
/// cell — 1 or 4 workers, batch or reference device engine — must agree
/// on the service outcome digest, the rollup digest, and the ε-ledger
/// digest bit for bit.
#[test]
fn service_digest_identical_across_threads_and_engines() {
    let exe = std::env::current_exe().expect("test binary path");
    let digest_at = |threads: &str, engine: &str| -> String {
        let output = std::process::Command::new(&exe)
            .args([
                "service_digest_child",
                "--exact",
                "--ignored",
                "--nocapture",
            ])
            .env("ULP_PAR_THREADS", threads)
            .env("ULP_DEVICE_ENGINE", engine)
            .output()
            .expect("re-exec test binary");
        assert!(
            output.status.success(),
            "child run failed at {threads} threads, {engine} engine: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
        let at = stdout
            .find("SERVICE_DIGEST=")
            .expect("child printed a digest");
        stdout[at + "SERVICE_DIGEST=".len()..]
            .chars()
            .take_while(|c| c.is_ascii_hexdigit() || *c == ':')
            .collect()
    };
    let baseline = digest_at("1", "reference");
    for (threads, engine) in [("4", "reference"), ("1", "batch"), ("4", "batch")] {
        assert_eq!(
            digest_at(threads, engine),
            baseline,
            "service outcome must be bit-identical at {threads} threads, {engine} engine"
        );
    }
}

/// The service rollup of a windowed run reproduces the batch driver's
/// estimates bit for bit — windowing plus merge loses nothing.
#[test]
fn windowed_rollup_matches_batch_estimates() {
    let (fleet, svc) = service_cfg();
    let batch = FleetDriver::new(fleet.clone()).unwrap().run().unwrap();
    let windowed = FleetDriver::new(fleet).unwrap().run_service(&svc).unwrap();
    assert_eq!(windowed.windows_sealed, 2);
    assert_eq!(windowed.stats.accepted, batch.ingest.accepted);
    assert_eq!(windowed.ledger_digest, batch.ledger_digest);
    let (b, w) = (
        batch.mean.expect("batch mean"),
        windowed.rollup_mean.expect("rollup mean"),
    );
    assert_eq!(w.value.to_bits(), b.value.to_bits());
    assert_eq!(w.stderr.to_bits(), b.stderr.to_bits());
    let (b, w) = (
        batch.rr_frequency.expect("batch RR"),
        windowed.rollup_rr_frequency.expect("rollup RR"),
    );
    assert_eq!(w.value.to_bits(), b.value.to_bits());
}
