//! Chaos-path integration tests: idempotent-ingest fold equivalence under
//! arbitrary duplication + reordering, thread-schedule determinism of a
//! fault-injected fleet run, and the replay-safe retry audit (retries never
//! re-spend privacy budget; malformed senders are quarantined).

use proptest::prelude::*;
use ulp_ldp::fleet::{
    ChaosConfig, Collector, FaultClass, FleetConfig, FleetDriver, IngestStats, Payload,
    QueryConfig, QueryKind, Report, RR_QUERY, VALUE_QUERY,
};

const SKETCH_K: i64 = 64;

fn test_queries() -> [QueryConfig; 2] {
    [
        QueryConfig {
            id: VALUE_QUERY,
            kind: QueryKind::Numeric {
                sketch_min_k: -SKETCH_K,
                sketch_max_k: SKETCH_K,
            },
        },
        QueryConfig {
            id: RR_QUERY,
            kind: QueryKind::RrBit,
        },
    ]
}

/// Reports with unique `(device, query, epoch)` keys, epochs confined to the
/// collector's two-block dedup window so admission is order-insensitive.
fn arb_unique_reports() -> impl Strategy<Value = Vec<Report>> {
    proptest::collection::vec(
        (
            0u32..8,
            0u32..128,
            any::<bool>(),
            -(SKETCH_K as i32)..=SKETCH_K as i32,
            any::<bool>(),
        ),
        1..40,
    )
    .prop_map(|raw| {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for (device, epoch, is_rr, value, bit) in raw {
            let (query, payload) = if is_rr {
                (RR_QUERY, Payload::RrBit(bit))
            } else {
                (VALUE_QUERY, Payload::Value(value))
            };
            if seen.insert((device, query, epoch)) {
                out.push(Report {
                    device,
                    query,
                    epoch,
                    payload,
                });
            }
        }
        out
    })
}

fn ingest_all(reports: &[Report], shards: usize) -> (Collector, IngestStats) {
    let mut collector = Collector::new(shards, &test_queries());
    let bytes: Vec<u8> = reports.iter().flat_map(|r| r.encode()).collect();
    let stats = collector.ingest_frames(&bytes);
    (collector, stats)
}

/// Seeded Fisher–Yates (splitmix64 steps) so shuffles are reproducible from
/// the proptest case alone.
fn shuffle(v: &mut [Report], mut s: u64) {
    for i in (1..v.len()).rev() {
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        v.swap(i, (z % (i as u64 + 1)) as usize);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any interleaving of duplicated + reordered frames must fold to the
    /// exact totals of the clean stream: duplicates are absorbed by the
    /// dedup window, reordering by the order-insensitive accumulators.
    #[test]
    fn duplicated_reordered_streams_fold_to_the_clean_digest(
        clean in arb_unique_reports(),
        copies in proptest::collection::vec(0usize..4, 64),
        shuffle_seed in any::<u64>(),
        shards in 1usize..4,
    ) {
        let mut chaotic = Vec::new();
        let mut extra = 0usize;
        for (i, r) in clean.iter().enumerate() {
            let c = copies[i % copies.len()];
            extra += c;
            for _ in 0..=c {
                chaotic.push(*r);
            }
        }
        shuffle(&mut chaotic, shuffle_seed);
        let (reference, _) = ingest_all(&clean, 1);
        let (folded, stats) = ingest_all(&chaotic, shards);
        prop_assert_eq!(folded.totals(VALUE_QUERY), reference.totals(VALUE_QUERY));
        prop_assert_eq!(folded.totals(RR_QUERY), reference.totals(RR_QUERY));
        prop_assert_eq!(folded.reports_ingested(), clean.len() as u64);
        prop_assert_eq!(folded.frames_rejected(), 0);
        prop_assert_eq!(
            stats.duplicates,
            extra as u64,
            "every extra copy must be counted as a duplicate"
        );
    }
}

fn chaos_cfg() -> FleetConfig {
    FleetConfig {
        chunk: 64,
        chaos: Some(ChaosConfig {
            seed: 0xC4A05,
            drop: FaultClass::bursty(0.10, 4.0),
            duplicate: FaultClass::flat(0.10),
            reorder: FaultClass::flat(0.05),
            corrupt: FaultClass::flat(0.05),
            truncate: FaultClass::flat(0.02),
            delay: FaultClass::flat(0.05),
        }),
        malformed_senders: 2,
        ..FleetConfig::paper_default(400, 2, 77)
    }
}

/// Child half of the chaos determinism matrix: prints the digest (and
/// ledger digest) of a fixed fault-injected fleet run under the parent's
/// `ULP_PAR_THREADS` / `ULP_FLEET_INGEST_PATH` / `ULP_DEVICE_ENGINE`.
#[test]
#[ignore = "helper re-executed by chaos_digest_identical_across_threads_paths_and_engines"]
fn chaos_thread_digest_child() {
    let out = FleetDriver::new(chaos_cfg()).unwrap().run().unwrap();
    println!(
        "CHAOS_FLEET_DIGEST={:016x}:{:016x}",
        out.digest(),
        out.ledger_digest
    );
}

/// The fault pattern is a pure function of `(chaos seed, device, attempt)`,
/// so the full outcome — totals, retries, quarantine, seal — must be
/// bit-identical at any worker-thread count; the columnar ingest path must
/// match the scalar reference path; and the batch device engine must match
/// the reference engine — all even under 10% drop / 10% duplicate / 5%
/// corrupt transport. The ledger digest rides along, pinning per-device
/// ε-spend bit-for-bit across every cell.
#[test]
fn chaos_digest_identical_across_threads_paths_and_engines() {
    let exe = std::env::current_exe().expect("test binary path");
    let digest_at = |threads: &str, path: &str, engine: &str| -> String {
        let output = std::process::Command::new(&exe)
            .args([
                "chaos_thread_digest_child",
                "--exact",
                "--ignored",
                "--nocapture",
            ])
            .env("ULP_PAR_THREADS", threads)
            .env("ULP_FLEET_INGEST_PATH", path)
            .env("ULP_DEVICE_ENGINE", engine)
            .output()
            .expect("re-exec test binary");
        assert!(
            output.status.success(),
            "child run failed at {threads} threads, {path} path, {engine} engine: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
        let at = stdout
            .find("CHAOS_FLEET_DIGEST=")
            .expect("child printed a digest");
        stdout[at + "CHAOS_FLEET_DIGEST=".len()..]
            .chars()
            .take_while(|c| c.is_ascii_hexdigit() || *c == ':')
            .collect()
    };
    let baseline = digest_at("1", "reference", "reference");
    for (threads, path, engine) in [
        ("1", "columnar", "reference"),
        ("4", "columnar", "reference"),
        ("4", "reference", "reference"),
        ("1", "columnar", "batch"),
        ("4", "columnar", "batch"),
        ("4", "reference", "batch"),
    ] {
        assert_eq!(
            digest_at(threads, path, engine),
            baseline,
            "chaotic fleet outcome must be bit-identical at {threads} threads, \
             {path} path, {engine} engine"
        );
    }
}

/// End-to-end replay-safety audit: a lossy run spends exactly the budget of
/// the clean run (bitwise, per device), records zero double-spends, and
/// latches the planted malformed senders without touching the estimates.
#[test]
fn retries_never_respend_budget_and_quarantine_latches() {
    let chaotic = FleetDriver::new(chaos_cfg()).unwrap().run().unwrap();
    let quiet = FleetDriver::new(FleetConfig {
        chaos: None,
        ..chaos_cfg()
    })
    .unwrap()
    .run()
    .unwrap();

    // The transport was genuinely hostile...
    assert!(chaotic.retry_attempts > 0, "chaos must force retries");
    assert!(chaotic.ingest.duplicates > 0, "chaos must duplicate frames");
    assert!(
        chaotic.ingest.corrupt_frames > 0,
        "chaos must corrupt frames"
    );

    // ...yet the privacy spend is bitwise the no-fault spend.
    assert_eq!(chaotic.ledger_digest, quiet.ledger_digest);
    assert_eq!(chaotic.ledger_entries, quiet.ledger_entries);
    assert_eq!(chaotic.ledger_total.to_bits(), quiet.ledger_total.to_bits());
    assert_eq!(chaotic.double_spends, 0);
    assert_eq!(quiet.double_spends, 0);
    assert!(chaotic.audit_ok && quiet.audit_ok);

    // The planted malformed senders (ids above the honest population) are
    // latched in both runs; honest devices never are.
    assert_eq!(chaotic.quarantined, vec![400, 401]);
    assert_eq!(quiet.quarantined, vec![400, 401]);
}
