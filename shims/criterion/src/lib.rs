//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! tiny benchmark harness with the same surface: [`Criterion`] with
//! `bench_function`/`benchmark_group`, [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. It measures median
//! wall-clock time over a fixed number of timed iterations and prints one
//! line per benchmark — no statistics engine, plots, or baselines.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work (re-export of [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by `iter`.
    result_ns: f64,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, storing the median time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-sample calibration: batch until one sample takes
        // at least ~50µs so Instant overhead stays negligible.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            if t.elapsed() >= Duration::from_micros(50) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                t.elapsed().as_secs_f64() * 1e9 / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = samples[samples.len() / 2];
    }
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        result_ns: f64::NAN,
        sample_size: sample_size.max(3),
    };
    f(&mut b);
    if b.result_ns.is_nan() {
        println!("{id:<40} (no iter() call)");
    } else if b.result_ns >= 1e6 {
        println!("{id:<40} {:>12.3} ms/iter", b.result_ns / 1e6);
    } else if b.result_ns >= 1e3 {
        println!("{id:<40} {:>12.3} µs/iter", b.result_ns / 1e3);
    } else {
        println!("{id:<40} {:>12.1} ns/iter", b.result_ns);
    }
}

/// The benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 11 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (a no-op here; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
    }

    #[test]
    fn groups_prefix_names_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(5);
        g.bench_function("inner", |b| b.iter(|| black_box(3u32).wrapping_mul(7)));
        g.finish();
    }
}
