//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal API-compatible implementation: the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`]. The generator behind it is SplitMix64 — not
//! ChaCha, so sequences differ from upstream `rand`, but every consumer in
//! this workspace only relies on the distributional properties, never on
//! exact upstream streams.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Core random-source trait: a stream of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly by [`Rng::gen`].
pub trait Standard {
    /// Draws one uniform value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let v = self.start + (self.end - self.start) * unit_f64(rng);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace stand-in for `rand::rngs::StdRng`: SplitMix64.
    ///
    /// Deterministic per seed; statistically well distributed for the
    /// simulation workloads here, but NOT cryptographic and NOT
    /// stream-compatible with upstream `rand`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood; public domain).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(2.5f64..3.5);
            assert!((2.5..3.5).contains(&f));
            let g = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&g));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let u = rng.gen_range(0usize..=3);
            assert!(u <= 3);
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }

    #[test]
    fn unit_f64_stays_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
