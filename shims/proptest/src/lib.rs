//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! minimal property-testing engine with the same surface syntax as the real
//! `proptest`: the [`proptest!`] macro, [`Strategy`](strategy::Strategy)
//! with `prop_map`/`prop_flat_map`, range and tuple strategies, `any::<T>()`,
//! `collection::vec`, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream (all acceptable for this workspace's tests):
//!
//! * **No shrinking.** A failing case reports its values (via the assertion
//!   message), test name, case index, and seed; reproduction is
//!   deterministic because case seeds are derived from the test name.
//! * Generation is driven by SplitMix64, not upstream's PRNG, so generated
//!   sequences differ from real `proptest` runs.

#![forbid(unsafe_code)]

/// Deterministic per-case random source used by strategies.
pub mod test_runner {
    /// The PRNG handed to strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a case seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform value in `[0, span)` (`span > 0`).
        pub fn below(&mut self, span: u128) -> u128 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// An assertion failed; the test fails.
        Fail(String),
    }

    /// Stable 64-bit FNV-1a hash of the test name, for seeding.
    pub fn name_seed(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `cases` accepted cases of `body`, skipping rejected ones.
    ///
    /// # Panics
    ///
    /// Panics (failing the test) on the first [`TestCaseError::Fail`].
    pub fn run(
        name: &str,
        cases: u32,
        mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let base = name_seed(name);
        let mut accepted = 0u32;
        let mut attempt = 0u64;
        let max_attempts = cases as u64 * 16 + 64;
        while accepted < cases && attempt < max_attempts {
            let seed = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = TestRng::new(seed);
            attempt += 1;
            match body(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest case failed: {name} (case {attempt}, seed {seed:#x}): {msg}")
                }
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree: `generate` directly
    /// yields a value (no shrinking).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// from it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + (self.end - self.start) * rng.unit_f64();
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + (hi - lo) * rng.unit_f64()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical full-domain strategy (see [`any`]).
    pub trait Arbitrary: Sized {
        /// Generates one uniform value of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T` (`any::<u64>()`, …).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }

    /// A type-erased union arm: a weight and a boxed generator.
    type UnionArm<T> = (u32, Box<dyn Fn(&mut TestRng) -> T>);

    /// Weighted choice among strategies sharing a value type; built by
    /// [`prop_oneof!`](crate::prop_oneof). Arms are type-erased so they
    /// may be heterogeneous strategy types, as in upstream proptest.
    pub struct Union<T> {
        arms: Vec<UnionArm<T>>,
    }

    impl<T> Union<T> {
        /// An empty union; generation panics until an arm is added.
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Union { arms: Vec::new() }
        }

        /// Adds an arm picked with probability `weight / total_weight`.
        pub fn arm<S: Strategy<Value = T> + 'static>(mut self, weight: u32, strat: S) -> Self {
            assert!(weight > 0, "prop_oneof arm weight must be positive");
            self.arms
                .push((weight, Box::new(move |rng| strat.generate(rng))));
            self
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof needs at least one arm");
            let mut pick = rng.below(u128::from(total)) as u64;
            for (w, gen) in &self.arms {
                if pick < u64::from(*w) {
                    return gen(rng);
                }
                pick -= u64::from(*w);
            }
            unreachable!("weighted pick exceeded total weight")
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use core::ops::Range;

    /// A length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    /// Strategy for vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u128 + 1;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration (`ProptestConfig::with_cases`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Everything tests usually import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Weighted (`3 => strat`) or uniform (`strat`) choice among strategies
/// with a common value type: `prop_oneof![2 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.arm($weight, $strat))+
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.arm(1, $strat))+
    };
}

/// Defines property tests: `proptest! { #[test] fn p(x in strat) { … } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident ($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::test_runner::run(
                    stringify!($name),
                    config.cases,
                    |__proptest_rng| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        let ($($pat,)+) = ($(
                            $crate::strategy::Strategy::generate(&($strat), __proptest_rng),
                        )+);
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{:?}` != `{:?}`", __l, __r
                );
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: `{:?}` != `{:?}`: {}",
                            __l, __r, ::std::format!($($fmt)+),
                        ),
                    ));
                }
            }
        }
    };
}

/// `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` == `{:?}`", __l, __r);
            }
        }
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in 3u8..=9, b in -4i64..4, f in 0.25f64..0.75) {
            prop_assert!((3..=9).contains(&a));
            prop_assert!((-4..4).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn flat_map_chains_dependent_values(pair in (1u8..=10).prop_flat_map(|n| (Just(n), 0u8..=n))) {
            let (n, k) = pair;
            prop_assert!(k <= n, "k = {k} > n = {n}");
        }

        #[test]
        fn vec_lengths_in_range(v in collection::vec(0u64..100, 3..6)) {
            prop_assert!(v.len() >= 3 && v.len() < 6);
            prop_assert!(v.iter().all(|x| *x < 100));
        }

        #[test]
        fn assume_skips_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_draws_from_every_arm(v in collection::vec(
            prop_oneof![3 => Just(0u8), 1 => 10u8..20, 1 => (20u8..30).prop_map(|x| x)],
            64..65,
        )) {
            prop_assert!(v.iter().all(|&x| x == 0 || (10..30).contains(&x)));
            // 64 draws with weights 3:1:1 — overwhelmingly likely to hit
            // both the constant arm and a ranged arm.
            prop_assert!(v.contains(&0));
            prop_assert!(v.iter().any(|&x| x != 0));
        }
    }

    #[test]
    fn failing_property_panics() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run("always_fails", 4, |_| {
                Err(crate::test_runner::TestCaseError::Fail("nope".into()))
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn seeds_are_stable_per_name() {
        assert_eq!(
            crate::test_runner::name_seed("x"),
            crate::test_runner::name_seed("x")
        );
        assert_ne!(
            crate::test_runner::name_seed("x"),
            crate::test_runner::name_seed("y")
        );
    }
}
