//! The structural leg of the ε-LDP guarantee: in thresholding mode the
//! released value can never leave `[min_k − n_th, max_k + n_th]`, no matter
//! what the bit source does. This property must hold with the health
//! monitor *disabled* and the URNG replaced by every fault wrapper the
//! crate ships — stuck-at, biased, lag-correlated, mid-mission onset, and
//! even fully adversarial scripted words — because the window clamp is
//! combinational hardware downstream of the noise datapath.
//!
//! (Resampling mode is excluded by design: under a stuck sign bit it can
//! redraw forever, which is exactly why the fail-safe pipeline exists. The
//! structural claim the paper makes is about the thresholding clamp.)

use proptest::prelude::*;
use ulp_rng::{
    BiasedBits, CorrelatedBits, OnsetBits, RandomBits, ScriptedBits, StuckAtBits, Taus88,
};

use dp_box::{Command, DpBox, DpBoxConfig, DpBoxError, Phase};

/// Every fault wrapper in `ulp-rng`, boxed behind the object-safe trait so
/// one strategy covers them all.
fn arb_bit_source() -> impl Strategy<Value = Box<dyn RandomBits>> {
    (0u8..=5, any::<u64>(), 0u8..=31, any::<bool>(), 1u8..=8).prop_map(
        |(kind, seed, bit, value, lag)| -> Box<dyn RandomBits> {
            match kind {
                0 => Box::new(Taus88::from_seed(seed)),
                1 => Box::new(StuckAtBits::new(Taus88::from_seed(seed), bit, value)),
                2 => Box::new(BiasedBits::new(
                    Taus88::from_seed(seed),
                    bit.wrapping_mul(8),
                )),
                3 => Box::new(CorrelatedBits::new(
                    Taus88::from_seed(seed),
                    lag,
                    bit.wrapping_mul(8),
                )),
                4 => Box::new(OnsetBits::new(
                    Taus88::from_seed(seed),
                    StuckAtBits::new(Taus88::from_seed(!seed), bit, value),
                    u64::from(lag) * 16,
                    None,
                )),
                // Adversarial: arbitrary repeating words, including the
                // all-ones/all-zeros extremes that force the deepest tails.
                _ => Box::new(ScriptedBits::new(vec![
                    seed as u32,
                    (seed >> 32) as u32,
                    if value { u32::MAX } else { 0 },
                ])),
            }
        },
    )
}

proptest! {
    // Each case pays an exact PMF + segment-table solve, so the case count
    // and λ = span·Δ·2^n_m are kept modest to bound suite runtime.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn thresholded_outputs_never_leave_the_window(
        source in arb_bit_source(),
        n_m in 0i64..=2,
        span in 64i64..=256,
        x_frac in 0u8..=16,
    ) {
        let mut dev = DpBox::with_urng(DpBoxConfig::default(), source)
            .expect("valid default configuration");
        // The claim under test is structural, so the distributional guard
        // is deliberately removed: outputs must stay in the window even
        // when the device keeps noising on a degraded source.
        dev.disable_health();
        dev.issue(Command::StartNoising, 0).expect("leave init");
        dev.issue(Command::SetEpsilon, n_m).expect("ε");
        dev.issue(Command::SetSensorRangeLower, 0).expect("lower");
        dev.issue(Command::SetSensorRangeUpper, span).expect("upper");
        dev.issue(Command::SetThreshold, 0).expect("thresholding");
        let x = span * i64::from(x_frac) / 16;
        for _ in 0..64 {
            let (y, cycles) = match dev.noise_value(x) {
                Ok(out) => out,
                Err(DpBoxError::Privacy(_)) => return Ok(()), // unsolvable config
                Err(e) => panic!("unexpected error: {e}"),
            };
            let n_th = dev.threshold_k().expect("threshold built");
            prop_assert!(cycles == 2, "thresholding is always 2 cycles");
            prop_assert!(
                y >= -n_th && y <= span + n_th,
                "y = {y} escaped [{}, {}]", -n_th, span + n_th
            );
            prop_assert_eq!(dev.phase(), Phase::Waiting);
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn health_disabled_device_matches_seeded_taus88_stream(seed in any::<u64>()) {
        // Monitoring is observation-only: enabling or disabling it must not
        // change a single released value on the same URNG stream.
        let build = |monitor: bool| {
            let cfg = DpBoxConfig { seed, ..DpBoxConfig::default() };
            let mut dev = DpBox::new(cfg).expect("valid");
            if !monitor {
                dev.disable_health();
            }
            dev.issue(Command::StartNoising, 0).expect("leave init");
            dev.issue(Command::SetEpsilon, 1).expect("ε");
            dev.issue(Command::SetSensorRangeLower, 0).expect("lower");
            dev.issue(Command::SetSensorRangeUpper, 320).expect("upper");
            dev.issue(Command::SetThreshold, 0).expect("thresholding");
            dev
        };
        let mut with = build(true);
        let mut without = build(false);
        for _ in 0..32 {
            prop_assert_eq!(
                with.noise_value(160).expect("healthy"),
                without.noise_value(160).expect("healthy")
            );
        }
    }
}
