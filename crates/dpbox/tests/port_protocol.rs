//! Port-protocol conformance tests: the DP-Box must behave like the
//! hardware interface of Section IV-A under adversarial/hostile command
//! sequences, because on microcontrollers without process isolation *no*
//! software is trusted.

use dp_box::{Command, DpBox, DpBoxConfig, DpBoxError, Phase, TraceEvent};
use ulp_rng::{StuckAtBits, Taus88};

fn fresh() -> DpBox {
    let cfg = DpBoxConfig {
        seed: 0xBEEF,
        ..DpBoxConfig::default()
    };
    DpBox::new(cfg).expect("valid default configuration")
}

/// A device on a URNG whose bit 13 sticks at 1 after `onset_words` words,
/// configured for thresholding over [0, 320] and traced.
fn faulting(onset_words: u64) -> DpBox<ulp_rng::OnsetBits<Taus88, StuckAtBits<Taus88>>> {
    let urng = ulp_rng::OnsetBits::new(
        Taus88::from_seed(0xBEEF),
        StuckAtBits::new(Taus88::from_seed(0xF00D), 13, true),
        onset_words,
        None,
    );
    let mut dev =
        DpBox::with_urng(DpBoxConfig::default(), urng).expect("valid default configuration");
    dev.enable_trace(4096);
    dev.issue(Command::StartNoising, 0).expect("leave init");
    dev.issue(Command::SetEpsilon, 1).expect("ε");
    dev.issue(Command::SetSensorRangeLower, 0).expect("lower");
    dev.issue(Command::SetSensorRangeUpper, 320).expect("upper");
    dev.issue(Command::SetThreshold, 0).expect("thresholding");
    dev
}

/// Drives `dev` until the health monitor trips, returning served outputs.
fn drive_until_fault(dev: &mut DpBox<ulp_rng::OnsetBits<Taus88, StuckAtBits<Taus88>>>) -> Vec<i64> {
    let mut served = Vec::new();
    for _ in 0..10_000 {
        match dev.noise_value(160) {
            Ok((y, _)) => served.push(y),
            Err(DpBoxError::UrngHealthFault(_)) => return served,
            Err(e) => panic!("unexpected error before fault: {e}"),
        }
        if dev.phase() == Phase::HealthFault {
            return served;
        }
    }
    panic!("stuck-at fault must trip the monitor");
}

#[test]
fn budget_cannot_be_changed_after_initialization() {
    let mut dev = fresh();
    dev.issue(Command::SetEpsilon, 64).expect("budget in init");
    dev.issue(Command::StartNoising, 0).expect("leave init");
    assert_eq!(dev.phase(), Phase::Waiting);
    // SetEpsilon now means "privacy level", not "budget": malicious
    // software cannot replenish or enlarge the budget.
    dev.issue(Command::SetEpsilon, 0).expect("ε = 1 in waiting");
    assert!(
        (dev.remaining_budget() - 2.0).abs() < 1e-9,
        "budget untouched"
    );
    // And there is no command path back to the initialization phase.
    for cmd in [
        Command::StartNoising,
        Command::SetEpsilon,
        Command::SetThreshold,
        Command::DoNothing,
    ] {
        let _ = dev.issue(cmd, 1);
        assert_ne!(dev.phase(), Phase::Initialization);
    }
}

#[test]
fn replenishment_period_is_frozen_after_init() {
    let mut dev = fresh();
    dev.issue(Command::SetEpsilon, 32).expect("budget");
    dev.issue(Command::SetSensorRangeUpper, 500)
        .expect("period");
    dev.issue(Command::StartNoising, 0).expect("leave init");
    // In waiting, SetSensorRangeUpper is the sensor range again.
    dev.issue(Command::SetEpsilon, 1).expect("ε");
    dev.issue(Command::SetSensorRangeLower, 0).expect("lower");
    dev.issue(Command::SetSensorRangeUpper, 320)
        .expect("upper = range");
    dev.issue(Command::SetThreshold, 0).expect("thresholding");
    // Exhaust and verify the 500-cycle period still replenishes.
    while dev.remaining_budget() > 0.0 {
        dev.noise_value(160).expect("served");
    }
    for _ in 0..500 {
        dev.tick();
    }
    assert!(dev.remaining_budget() > 0.0, "original period must apply");
}

#[test]
fn undecodable_command_bits_are_rejected_at_the_decoder() {
    // All 3-bit encodings are now assigned (0b111 = ResetHealth); anything
    // wider than the physical 3-bit port must still be rejected.
    assert_eq!(Command::try_from(0b111), Ok(Command::ResetHealth));
    assert!(Command::try_from(0b1000).is_err());
    assert!(Command::try_from(0xFF).is_err());
}

#[test]
fn health_trip_enters_alarm_phase_and_stops_fresh_output() {
    let mut dev = faulting(64);
    let served = drive_until_fault(&mut dev);
    assert!(!served.is_empty(), "healthy prefix must serve outputs");
    assert_eq!(dev.phase(), Phase::HealthFault);
    assert!(dev.health_alarm().is_some());
    assert!(dev.stats().health_alarms >= 1);
    // Every parameter-setting command is refused with the health fault.
    for cmd in [
        Command::SetEpsilon,
        Command::SetSensorValue,
        Command::SetSensorRangeUpper,
        Command::SetSensorRangeLower,
        Command::SetThreshold,
    ] {
        assert!(
            matches!(dev.issue(cmd, 1), Err(DpBoxError::UrngHealthFault(_))),
            "{cmd:?} must be refused while faulted"
        );
    }
    // The alarm is visible in the trace stream…
    let trace = dev.trace().expect("tracing enabled");
    assert!(
        trace
            .events()
            .any(|e| matches!(e, TraceEvent::HealthAlarm { .. })),
        "HealthAlarm event must be traced"
    );
    assert!(
        trace.events().any(|e| matches!(
            e,
            TraceEvent::PhaseChange {
                to: Phase::HealthFault,
                ..
            }
        )),
        "PhaseChange into HealthFault must be traced"
    );
    // …and in the VCD waveform.
    let vcd = dev.export_vcd().expect("tracing enabled");
    assert!(vcd.contains("health_alarm"), "health wire declared");
    assert!(vcd.contains("1h"), "health alarm level asserted");
    assert!(vcd.contains("b11 p"), "phase wire shows the fault code");
}

#[test]
fn faulted_device_serves_only_cached_outputs() {
    let mut dev = faulting(64);
    let served = drive_until_fault(&mut dev);
    let last_released = *served.last().expect("at least one healthy output");
    assert_eq!(dev.phase(), Phase::HealthFault);
    // StartNoising is served combinationally from the cache — the same
    // already-released value, never fresh noise.
    let noisings_before = dev.stats().noisings;
    for _ in 0..5 {
        dev.issue(Command::StartNoising, 0).expect("cache service");
        assert!(dev.ready());
        assert_eq!(dev.output(), Some(last_released));
    }
    assert_eq!(dev.stats().noisings, noisings_before, "no fresh noisings");
    assert_eq!(dev.stats().cached, 5);
    assert_eq!(
        dev.phase(),
        Phase::HealthFault,
        "cache service clears nothing"
    );
}

#[test]
fn do_nothing_does_not_clear_a_health_alarm() {
    let mut dev = faulting(64);
    drive_until_fault(&mut dev);
    assert_eq!(dev.phase(), Phase::HealthFault);
    for _ in 0..100 {
        dev.issue(Command::DoNothing, 0).expect("idle accepted");
        dev.tick();
    }
    assert_eq!(dev.phase(), Phase::HealthFault, "idling must not recover");
    assert!(dev.health_alarm().is_some());
}

#[test]
fn explicit_reset_clears_the_alarm_after_a_passing_retest() {
    // The fault recovers before the retest (a transient glitch), so the
    // reset-and-retest passes and fresh noising resumes.
    let urng = ulp_rng::OnsetBits::new(
        Taus88::from_seed(0xBEEF),
        StuckAtBits::new(Taus88::from_seed(0xF00D), 13, true),
        64,
        Some(256),
    );
    let mut dev =
        DpBox::with_urng(DpBoxConfig::default(), urng).expect("valid default configuration");
    dev.enable_trace(4096);
    dev.issue(Command::StartNoising, 0).expect("leave init");
    dev.issue(Command::SetEpsilon, 1).expect("ε");
    dev.issue(Command::SetSensorRangeLower, 0).expect("lower");
    dev.issue(Command::SetSensorRangeUpper, 320).expect("upper");
    dev.issue(Command::SetThreshold, 0).expect("thresholding");
    loop {
        match dev.noise_value(160) {
            Ok(_) if dev.phase() == Phase::HealthFault => break,
            Ok(_) => continue,
            Err(DpBoxError::UrngHealthFault(_)) => break,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(dev.phase(), Phase::HealthFault);
    // Each retest draws fresh words; the first attempts may still overlap
    // the fault window and must stay latched, but once the source has
    // recovered a retest passes and re-arms the device.
    let mut recovered = false;
    for _ in 0..10 {
        dev.issue(Command::ResetHealth, 0).expect("reset accepted");
        if dev.phase() == Phase::Waiting {
            recovered = true;
            break;
        }
        assert_eq!(
            dev.phase(),
            Phase::HealthFault,
            "failed retest stays latched"
        );
    }
    assert!(recovered, "retest must pass after the source recovers");
    assert!(dev.health_alarm().is_none());
    let (y, cycles) = dev.noise_value(160).expect("fresh noising resumed");
    assert_eq!(cycles, 2);
    let n_th = dev.threshold_k().expect("threshold built");
    assert!(y >= -n_th && y <= 320 + n_th);
    // The recovery is visible in the trace and clears the VCD alarm level.
    let trace = dev.trace().expect("tracing enabled");
    assert!(trace
        .events()
        .any(|e| matches!(e, TraceEvent::HealthReset { passed: true, .. })));
    let vcd = dev.export_vcd().expect("tracing enabled");
    assert!(vcd.contains("0h"), "alarm level cleared after passed reset");
}

#[test]
fn reset_on_a_still_faulty_urng_stays_latched() {
    let mut dev = faulting(64); // fault persists forever
    drive_until_fault(&mut dev);
    let alarms_before = dev.stats().health_alarms;
    dev.issue(Command::ResetHealth, 0).expect("reset accepted");
    assert_eq!(
        dev.phase(),
        Phase::HealthFault,
        "failed retest must re-latch the fault"
    );
    assert!(dev.health_alarm().is_some());
    assert!(dev.stats().health_alarms > alarms_before);
    assert!(matches!(
        dev.issue(Command::SetSensorValue, 160),
        Err(DpBoxError::UrngHealthFault(_))
    ));
    let trace = dev.trace().expect("tracing enabled");
    assert!(trace
        .events()
        .any(|e| matches!(e, TraceEvent::HealthReset { passed: false, .. })));
}

#[test]
fn out_of_range_operands_do_not_corrupt_state() {
    let mut dev = fresh();
    dev.issue(Command::StartNoising, 0).expect("leave init");
    let too_big = 1i64 << 40;
    assert!(matches!(
        dev.issue(Command::SetSensorValue, too_big),
        Err(DpBoxError::ValueOutOfRange { .. })
    ));
    // The device still works normally afterwards.
    dev.issue(Command::SetEpsilon, 1).expect("ε");
    dev.issue(Command::SetSensorRangeLower, 0).expect("lower");
    dev.issue(Command::SetSensorRangeUpper, 320).expect("upper");
    dev.issue(Command::SetThreshold, 0).expect("mode");
    dev.noise_value(100).expect("noising still works");
}

#[test]
fn ready_flag_contract() {
    let mut dev = fresh();
    dev.issue(Command::StartNoising, 0).expect("leave init");
    dev.issue(Command::SetEpsilon, 1).expect("ε");
    dev.issue(Command::SetSensorRangeLower, 0).expect("lower");
    dev.issue(Command::SetSensorRangeUpper, 320).expect("upper");
    dev.issue(Command::SetThreshold, 0).expect("mode");
    dev.issue(Command::SetSensorValue, 160).expect("x");
    assert!(!dev.ready(), "no output before noising");
    dev.issue(Command::StartNoising, 0).expect("start");
    assert!(!dev.ready(), "not ready at start");
    dev.tick(); // load
    assert!(!dev.ready(), "not ready after load cycle");
    dev.tick(); // noise
    assert!(dev.ready(), "ready after the noise cycle");
    assert!(dev.output().is_some());
    // Output holds (DoNothing keeps the device idle).
    let y = dev.output();
    dev.issue(Command::DoNothing, 0).expect("idle");
    dev.tick();
    assert_eq!(dev.output(), y);
}

#[test]
fn repeated_noising_without_reconfiguration() {
    // "the sensor value, the sensor range, and the privacy level do not
    // have to change between noising" — StartNoising may be re-issued
    // directly.
    let mut dev = fresh();
    dev.issue(Command::StartNoising, 0).expect("leave init");
    dev.issue(Command::SetEpsilon, 1).expect("ε");
    dev.issue(Command::SetSensorRangeLower, 0).expect("lower");
    dev.issue(Command::SetSensorRangeUpper, 320).expect("upper");
    dev.issue(Command::SetThreshold, 0).expect("mode");
    dev.issue(Command::SetSensorValue, 160).expect("x");
    let mut outputs = Vec::new();
    for _ in 0..50 {
        dev.issue(Command::StartNoising, 0).expect("restart");
        while !dev.ready() {
            dev.tick();
        }
        outputs.push(dev.output().expect("noised"));
    }
    // Fresh noise each time: outputs are not all identical.
    assert!(outputs.windows(2).any(|w| w[0] != w[1]));
}

#[test]
fn per_reading_epsilon_changes_take_effect() {
    // ε can change per reading (Set Epsilon before each Start Noising).
    let spread = |n_m: i64, dev: &mut DpBox| -> f64 {
        dev.issue(Command::SetEpsilon, n_m).expect("ε");
        let xs: Vec<f64> = (0..400)
            .map(|_| (dev.noise_value(160).expect("served").0 - 160) as f64)
            .collect();
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
    };
    let mut dev = fresh();
    dev.issue(Command::StartNoising, 0).expect("leave init");
    dev.issue(Command::SetSensorRangeLower, 0).expect("lower");
    dev.issue(Command::SetSensorRangeUpper, 320).expect("upper");
    dev.issue(Command::SetThreshold, 0).expect("mode");
    let tight = spread(0, &mut dev); // ε = 1
    let loose = spread(2, &mut dev); // ε = 0.25
    assert!(loose > tight, "ε=0.25 σ={loose} must exceed ε=1 σ={tight}");
}
