//! Port-protocol conformance tests: the DP-Box must behave like the
//! hardware interface of Section IV-A under adversarial/hostile command
//! sequences, because on microcontrollers without process isolation *no*
//! software is trusted.

use dp_box::{Command, DpBox, DpBoxConfig, DpBoxError, Phase};

fn fresh() -> DpBox {
    let cfg = DpBoxConfig {
        seed: 0xBEEF,
        ..DpBoxConfig::default()
    };
    DpBox::new(cfg).expect("valid default configuration")
}

#[test]
fn budget_cannot_be_changed_after_initialization() {
    let mut dev = fresh();
    dev.issue(Command::SetEpsilon, 64).expect("budget in init");
    dev.issue(Command::StartNoising, 0).expect("leave init");
    assert_eq!(dev.phase(), Phase::Waiting);
    // SetEpsilon now means "privacy level", not "budget": malicious
    // software cannot replenish or enlarge the budget.
    dev.issue(Command::SetEpsilon, 0).expect("ε = 1 in waiting");
    assert!((dev.remaining_budget() - 2.0).abs() < 1e-9, "budget untouched");
    // And there is no command path back to the initialization phase.
    for cmd in [
        Command::StartNoising,
        Command::SetEpsilon,
        Command::SetThreshold,
        Command::DoNothing,
    ] {
        let _ = dev.issue(cmd, 1);
        assert_ne!(dev.phase(), Phase::Initialization);
    }
}

#[test]
fn replenishment_period_is_frozen_after_init() {
    let mut dev = fresh();
    dev.issue(Command::SetEpsilon, 32).expect("budget");
    dev.issue(Command::SetSensorRangeUpper, 500).expect("period");
    dev.issue(Command::StartNoising, 0).expect("leave init");
    // In waiting, SetSensorRangeUpper is the sensor range again.
    dev.issue(Command::SetEpsilon, 1).expect("ε");
    dev.issue(Command::SetSensorRangeLower, 0).expect("lower");
    dev.issue(Command::SetSensorRangeUpper, 320).expect("upper = range");
    dev.issue(Command::SetThreshold, 0).expect("thresholding");
    // Exhaust and verify the 500-cycle period still replenishes.
    while dev.remaining_budget() > 0.0 {
        dev.noise_value(160).expect("served");
    }
    for _ in 0..500 {
        dev.tick();
    }
    assert!(dev.remaining_budget() > 0.0, "original period must apply");
}

#[test]
fn undecodable_command_bits_are_rejected_at_the_decoder() {
    assert!(Command::try_from(0b111).is_err());
}

#[test]
fn out_of_range_operands_do_not_corrupt_state() {
    let mut dev = fresh();
    dev.issue(Command::StartNoising, 0).expect("leave init");
    let too_big = 1i64 << 40;
    assert!(matches!(
        dev.issue(Command::SetSensorValue, too_big),
        Err(DpBoxError::ValueOutOfRange { .. })
    ));
    // The device still works normally afterwards.
    dev.issue(Command::SetEpsilon, 1).expect("ε");
    dev.issue(Command::SetSensorRangeLower, 0).expect("lower");
    dev.issue(Command::SetSensorRangeUpper, 320).expect("upper");
    dev.issue(Command::SetThreshold, 0).expect("mode");
    dev.noise_value(100).expect("noising still works");
}

#[test]
fn ready_flag_contract() {
    let mut dev = fresh();
    dev.issue(Command::StartNoising, 0).expect("leave init");
    dev.issue(Command::SetEpsilon, 1).expect("ε");
    dev.issue(Command::SetSensorRangeLower, 0).expect("lower");
    dev.issue(Command::SetSensorRangeUpper, 320).expect("upper");
    dev.issue(Command::SetThreshold, 0).expect("mode");
    dev.issue(Command::SetSensorValue, 160).expect("x");
    assert!(!dev.ready(), "no output before noising");
    dev.issue(Command::StartNoising, 0).expect("start");
    assert!(!dev.ready(), "not ready at start");
    dev.tick(); // load
    assert!(!dev.ready(), "not ready after load cycle");
    dev.tick(); // noise
    assert!(dev.ready(), "ready after the noise cycle");
    assert!(dev.output().is_some());
    // Output holds (DoNothing keeps the device idle).
    let y = dev.output();
    dev.issue(Command::DoNothing, 0).expect("idle");
    dev.tick();
    assert_eq!(dev.output(), y);
}

#[test]
fn repeated_noising_without_reconfiguration() {
    // "the sensor value, the sensor range, and the privacy level do not
    // have to change between noising" — StartNoising may be re-issued
    // directly.
    let mut dev = fresh();
    dev.issue(Command::StartNoising, 0).expect("leave init");
    dev.issue(Command::SetEpsilon, 1).expect("ε");
    dev.issue(Command::SetSensorRangeLower, 0).expect("lower");
    dev.issue(Command::SetSensorRangeUpper, 320).expect("upper");
    dev.issue(Command::SetThreshold, 0).expect("mode");
    dev.issue(Command::SetSensorValue, 160).expect("x");
    let mut outputs = Vec::new();
    for _ in 0..50 {
        dev.issue(Command::StartNoising, 0).expect("restart");
        while !dev.ready() {
            dev.tick();
        }
        outputs.push(dev.output().expect("noised"));
    }
    // Fresh noise each time: outputs are not all identical.
    assert!(outputs.windows(2).any(|w| w[0] != w[1]));
}

#[test]
fn per_reading_epsilon_changes_take_effect() {
    // ε can change per reading (Set Epsilon before each Start Noising).
    let spread = |n_m: i64, dev: &mut DpBox| -> f64 {
        dev.issue(Command::SetEpsilon, n_m).expect("ε");
        let xs: Vec<f64> = (0..400)
            .map(|_| (dev.noise_value(160).expect("served").0 - 160) as f64)
            .collect();
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
    };
    let mut dev = fresh();
    dev.issue(Command::StartNoising, 0).expect("leave init");
    dev.issue(Command::SetSensorRangeLower, 0).expect("lower");
    dev.issue(Command::SetSensorRangeUpper, 320).expect("upper");
    dev.issue(Command::SetThreshold, 0).expect("mode");
    let tight = spread(0, &mut dev); // ε = 1
    let loose = spread(2, &mut dev); // ε = 0.25
    assert!(loose > tight, "ε=0.25 σ={loose} must exceed ε=1 σ={tight}");
}
