//! Session-level accounting: trace, stats, VCD, and energy model agree
//! about what one device session did.

use dp_box::{trace_to_vcd, Command, DpBox, DpBoxConfig, EnergyModel, Implementation, TraceEvent};

fn run_session(seed: u64, requests: usize) -> DpBox {
    let cfg = DpBoxConfig {
        seed,
        ..DpBoxConfig::default()
    };
    let mut dev = DpBox::new(cfg).expect("valid config");
    dev.enable_trace(1 << 15);
    dev.issue(Command::SetEpsilon, 96).expect("budget 3 nats");
    dev.issue(Command::StartNoising, 0).expect("leave init");
    dev.issue(Command::SetEpsilon, 1).expect("ε");
    dev.issue(Command::SetSensorRangeLower, 0).expect("lower");
    dev.issue(Command::SetSensorRangeUpper, 320).expect("upper");
    dev.issue(Command::SetThreshold, 0).expect("thresholding");
    for _ in 0..requests {
        dev.noise_value(160).expect("served");
    }
    dev
}

#[test]
fn trace_stats_and_energy_agree() {
    let dev = run_session(0xACC7, 40);
    let stats = dev.stats();
    let trace = dev.trace().expect("enabled");

    // Trace outputs = stats outputs.
    let outputs = trace
        .events()
        .filter(|e| matches!(e, TraceEvent::Output { .. }))
        .count() as u64;
    assert_eq!(outputs, stats.noisings + stats.cached);

    // Budget charges in the trace sum to the stats' charged total.
    let charged: f64 = trace
        .events()
        .filter_map(|e| match e {
            TraceEvent::BudgetCharge { charge, .. } => Some(*charge),
            _ => None,
        })
        .sum();
    // stats has no charged field; reconstruct from remaining: budget 3.0.
    assert!((3.0 - dev.remaining_budget() - charged).abs() < 1e-9);

    // The energy model prices the same counters for all implementations,
    // with the hardware orders of magnitude cheaper.
    let m = EnergyModel::paper_65nm();
    let hw = m.session_energy(Implementation::HardwareDpBox, &stats);
    let sw = m.session_energy(Implementation::SoftwareFixedPoint, &stats);
    assert!(hw > 0.0);
    assert!(sw / hw > 100.0, "session benefit {}", sw / hw);
}

#[test]
fn vcd_reflects_the_session() {
    let dev = run_session(0xACC8, 10);
    let vcd = dev.export_vcd().expect("tracing enabled");
    // Header plus one `1r` ready pulse per output.
    let ready_pulses = vcd.lines().filter(|l| *l == "1r").count() as u64;
    let stats = dev.stats();
    assert_eq!(ready_pulses, stats.noisings + stats.cached);
    // The standalone renderer produces the same document.
    let direct = trace_to_vcd(dev.trace().expect("enabled"), "dp_box");
    assert_eq!(vcd, direct);
}

#[test]
fn two_sessions_same_seed_are_identical() {
    let a = run_session(7, 25);
    let b = run_session(7, 25);
    assert_eq!(a.stats(), b.stats());
    assert_eq!(a.export_vcd(), b.export_vcd());
    let c = run_session(8, 25);
    assert_ne!(
        a.export_vcd(),
        c.export_vcd(),
        "different seeds must differ"
    );
}
