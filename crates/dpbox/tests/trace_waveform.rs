//! Waveform-style assertions on the DP-Box event trace: the observable
//! event sequence must match the FSM contract.

use dp_box::{Command, DpBox, DpBoxConfig, Phase, TraceEvent};

fn traced_device() -> DpBox {
    let cfg = DpBoxConfig {
        seed: 0xCAFE,
        ..DpBoxConfig::default()
    };
    let mut dev = DpBox::new(cfg).expect("valid config");
    dev.enable_trace(4096);
    dev
}

#[test]
fn one_noising_produces_the_canonical_sequence() {
    let mut dev = traced_device();
    dev.issue(Command::StartNoising, 0).expect("leave init");
    dev.issue(Command::SetEpsilon, 1).expect("ε");
    dev.issue(Command::SetSensorRangeLower, 0).expect("lower");
    dev.issue(Command::SetSensorRangeUpper, 320).expect("upper");
    dev.issue(Command::SetThreshold, 0).expect("thresholding");
    dev.noise_value(160).expect("noised");

    let trace = dev.trace().expect("enabled");
    // Commands recorded in order.
    let cmds: Vec<Command> = trace
        .events()
        .filter_map(|e| match e {
            TraceEvent::Command { cmd, .. } => Some(*cmd),
            _ => None,
        })
        .collect();
    assert_eq!(
        cmds,
        vec![
            Command::StartNoising,
            Command::SetEpsilon,
            Command::SetSensorRangeLower,
            Command::SetSensorRangeUpper,
            Command::SetThreshold,
            Command::SetSensorValue,
            Command::StartNoising,
        ]
    );
    // Phase walk: Init → Waiting, Waiting → Noising, Noising → Waiting.
    let phases: Vec<(Phase, Phase)> = trace
        .events()
        .filter_map(|e| match e {
            TraceEvent::PhaseChange { from, to, .. } => Some((*from, *to)),
            _ => None,
        })
        .collect();
    assert_eq!(
        phases,
        vec![
            (Phase::Initialization, Phase::Waiting),
            (Phase::Waiting, Phase::Noising),
            (Phase::Noising, Phase::Waiting),
        ]
    );
    // Exactly one output, not from cache, with a budget charge just before.
    let outputs: Vec<bool> = trace
        .events()
        .filter_map(|e| match e {
            TraceEvent::Output { from_cache, .. } => Some(*from_cache),
            _ => None,
        })
        .collect();
    assert_eq!(outputs, vec![false]);
    assert_eq!(
        trace
            .events()
            .filter(|e| matches!(e, TraceEvent::BudgetCharge { .. }))
            .count(),
        1
    );
}

#[test]
fn resample_events_match_stat_counter() {
    let mut dev = traced_device();
    dev.issue(Command::StartNoising, 0).expect("leave init");
    dev.issue(Command::SetEpsilon, 1).expect("ε");
    dev.issue(Command::SetSensorRangeLower, 0).expect("lower");
    dev.issue(Command::SetSensorRangeUpper, 320).expect("upper");
    // Default resampling mode.
    for _ in 0..500 {
        dev.noise_value(0).expect("noised");
    }
    let traced = dev
        .trace()
        .expect("enabled")
        .events()
        .filter(|e| matches!(e, TraceEvent::Resample { .. }))
        .count() as u64;
    assert_eq!(traced, dev.stats().resamples);
}

#[test]
fn cache_replays_are_flagged() {
    let cfg = DpBoxConfig {
        seed: 0xCAFE,
        ..DpBoxConfig::default()
    };
    let mut dev = DpBox::new(cfg).expect("valid config");
    dev.enable_trace(1 << 14);
    dev.issue(Command::SetEpsilon, 48).expect("budget 1.5 nats");
    dev.issue(Command::StartNoising, 0).expect("leave init");
    dev.issue(Command::SetEpsilon, 1).expect("ε");
    dev.issue(Command::SetSensorRangeLower, 0).expect("lower");
    dev.issue(Command::SetSensorRangeUpper, 320).expect("upper");
    dev.issue(Command::SetThreshold, 0).expect("thresholding");
    for _ in 0..20 {
        dev.noise_value(160).expect("served");
    }
    let flags: Vec<bool> = dev
        .trace()
        .expect("enabled")
        .events()
        .filter_map(|e| match e {
            TraceEvent::Output { from_cache, .. } => Some(*from_cache),
            _ => None,
        })
        .collect();
    // Fresh first, cached after exhaustion — monotone flag sequence.
    let first_cached = flags.iter().position(|&c| c).expect("exhaustion expected");
    assert!(flags[first_cached..].iter().all(|&c| c));
    assert!(flags[..first_cached].iter().all(|&c| !c));
    // Cached outputs carry no budget charge.
    let charges = dev
        .trace()
        .expect("enabled")
        .events()
        .filter(|e| matches!(e, TraceEvent::BudgetCharge { .. }))
        .count();
    assert_eq!(charges, first_cached);
}

#[test]
fn replenish_event_is_stamped() {
    let cfg = DpBoxConfig {
        seed: 1,
        ..DpBoxConfig::default()
    };
    let mut dev = DpBox::new(cfg).expect("valid config");
    dev.enable_trace(64);
    dev.issue(Command::SetEpsilon, 32).expect("budget");
    dev.issue(Command::SetSensorRangeUpper, 100)
        .expect("period");
    dev.issue(Command::StartNoising, 0).expect("leave init");
    for _ in 0..250 {
        dev.tick();
    }
    let replenishes: Vec<u64> = dev
        .trace()
        .expect("enabled")
        .events()
        .filter_map(|e| match e {
            TraceEvent::Replenish { cycle } => Some(*cycle),
            _ => None,
        })
        .collect();
    assert_eq!(replenishes, vec![100, 200]);
}

#[test]
fn disabled_trace_costs_nothing_and_returns_none() {
    let mut dev = DpBox::new(DpBoxConfig::default()).expect("valid config");
    assert!(dev.trace().is_none());
    dev.issue(Command::StartNoising, 0).expect("leave init");
    assert!(dev.trace().is_none());
}
