//! Cycle-stamped event tracing — the simulator's waveform dump.
//!
//! Hardware teams debug privacy logic with waveforms; the software model
//! offers the equivalent: an optional bounded trace of command, phase,
//! datapath, and budget events, each stamped with the cycle it occurred in.

use std::collections::VecDeque;

use ldp_core::LimitMode;
use ulp_rng::HealthAlarm as UrngHealthAlarm;

use crate::command::Command;
use crate::device::Phase;

/// One traced event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A command was accepted on the command port.
    Command {
        /// Cycle stamp.
        cycle: u64,
        /// The command.
        cmd: Command,
        /// The input-port operand.
        input: i64,
    },
    /// The FSM changed phase.
    PhaseChange {
        /// Cycle stamp.
        cycle: u64,
        /// Previous phase.
        from: Phase,
        /// New phase.
        to: Phase,
    },
    /// The limiting mode was toggled.
    ModeToggled {
        /// Cycle stamp.
        cycle: u64,
        /// Mode now active.
        mode: LimitMode,
    },
    /// A staged noise draw was rejected and redrawn (resampling).
    Resample {
        /// Cycle stamp.
        cycle: u64,
    },
    /// A noised output was released.
    Output {
        /// Cycle stamp.
        cycle: u64,
        /// The released raw value.
        value: i64,
        /// Whether it came from the cache (budget exhausted).
        from_cache: bool,
    },
    /// The budget was charged.
    BudgetCharge {
        /// Cycle stamp.
        cycle: u64,
        /// Loss charged, in nats.
        charge: f64,
        /// Remaining budget after the charge.
        remaining: f64,
    },
    /// The replenishment timer fired.
    Replenish {
        /// Cycle stamp.
        cycle: u64,
    },
    /// The URNG health monitor tripped; the device enters `HealthFault`.
    HealthAlarm {
        /// Cycle stamp.
        cycle: u64,
        /// The continuous-test alarm that latched.
        alarm: UrngHealthAlarm,
    },
    /// An explicit reset-and-retest (`ResetHealth`) was performed.
    HealthReset {
        /// Cycle stamp.
        cycle: u64,
        /// Whether the startup retest passed (`false` latches a new alarm).
        passed: bool,
    },
}

impl TraceEvent {
    /// The cycle this event was stamped with.
    pub fn cycle(&self) -> u64 {
        match self {
            TraceEvent::Command { cycle, .. }
            | TraceEvent::PhaseChange { cycle, .. }
            | TraceEvent::ModeToggled { cycle, .. }
            | TraceEvent::Resample { cycle }
            | TraceEvent::Output { cycle, .. }
            | TraceEvent::BudgetCharge { cycle, .. }
            | TraceEvent::Replenish { cycle }
            | TraceEvent::HealthAlarm { cycle, .. }
            | TraceEvent::HealthReset { cycle, .. } => *cycle,
        }
    }
}

/// A bounded event trace (oldest events are dropped at capacity).
///
/// # Examples
///
/// ```
/// use dp_box::{Trace, TraceEvent};
///
/// let mut trace = Trace::bounded(2);
/// trace.push(TraceEvent::Resample { cycle: 1 });
/// trace.push(TraceEvent::Resample { cycle: 2 });
/// trace.push(TraceEvent::Resample { cycle: 3 });
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.events().next().unwrap().cycle(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
}

impl Trace {
    /// Creates a trace holding at most `capacity` events.
    pub fn bounded(capacity: usize) -> Self {
        Trace {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
        }
    }

    /// Appends an event, evicting the oldest beyond capacity.
    pub fn push(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Drops all retained events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Events of a given cycle (for waveform-style inspection).
    pub fn at_cycle(&self, cycle: u64) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.cycle() == cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_eviction_keeps_newest() {
        let mut t = Trace::bounded(3);
        for c in 0..10 {
            t.push(TraceEvent::Resample { cycle: c });
        }
        let cycles: Vec<u64> = t.events().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![7, 8, 9]);
    }

    #[test]
    fn zero_capacity_discards_everything() {
        let mut t = Trace::bounded(0);
        t.push(TraceEvent::Resample { cycle: 1 });
        assert!(t.is_empty());
    }

    #[test]
    fn at_cycle_filters() {
        let mut t = Trace::bounded(10);
        t.push(TraceEvent::Resample { cycle: 5 });
        t.push(TraceEvent::Replenish { cycle: 5 });
        t.push(TraceEvent::Resample { cycle: 6 });
        assert_eq!(t.at_cycle(5).count(), 2);
        assert_eq!(t.at_cycle(6).count(), 1);
        assert_eq!(t.at_cycle(7).count(), 0);
    }

    #[test]
    fn clear_empties() {
        let mut t = Trace::bounded(4);
        t.push(TraceEvent::Replenish { cycle: 1 });
        t.clear();
        assert!(t.is_empty());
    }
}
