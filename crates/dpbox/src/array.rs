//! Struct-of-arrays batch engine: N DP-Box devices advanced in lockstep.
//!
//! [`DeviceArray`] holds the registers of many devices as parallel columns
//! (staged sample, remaining budget, cached output, health alarm) next to
//! per-lane URNG and health-monitor state, and advances every lane one
//! reporting epoch per [`DeviceArray::step`] in tight per-column loops.
//! Lanes that diverge from the common path — power-on self-test failure,
//! runtime health trip, budget halt — are compacted out of the active set
//! so the hot loop stays branch-light.
//!
//! # Bit-exactness contract
//!
//! The batch engine is **not** an approximation of [`DpBox`]: every lane
//! reproduces, bit-for-bit, the trace a scalar `DpBox` produces when booted
//! through the fleet command sequence
//!
//! ```text
//! set_health_config(health)
//! ResetHealth                      // power-on self-test (startup words)
//! SetEpsilon(budget_raw)           // initialization overload: budget
//! StartNoising                     // freeze budget, stage first sample
//! SetEpsilon(eps_shift)            // per-report ε = 2^-n_m
//! SetSensorRangeLower(range_lower)
//! SetSensorRangeUpper(range_upper)
//! SetThreshold                     // resampling → thresholding
//! ```
//!
//! and then issued one `noise_value(x)` per epoch. Equivalence holds
//! because every URNG word is drawn in the same order through the same
//! continuous health tests (the power-on test itself runs through the
//! exact-equivalent [`UrngHealth::startup_batched`] fast path), the CORDIC
//! logarithm is a pure function (memoized per `(Bu, iterations)` instead of
//! recomputed per draw), and the per-epoch dataflow mirrors
//! `DpBox::tick`'s cycle-2 branch structure line for line: budget check
//! before staged-sample consumption, cached serves restage, health trips
//! void the staged sample and surface as a drop at the *next* epoch.
//!
//! Only [`LimitMode::Thresholding`] is modelled — the fleet operating
//! point. Resampling-mode devices loop a data-dependent number of cycles
//! per output, which breaks lockstep; they stay on the scalar [`DpBox`].

use std::sync::{Arc, Mutex};

use ldp_core::{LimitMode, QuantizedRange, SegmentTable};
use ulp_fixed::{Fx, QFormat};
use ulp_obs::{full_enabled, Counter, Histogram};
use ulp_rng::{
    CordicLn, FxpLaplaceConfig, HealthAlarm, HealthConfig, RandomBits, Taus88, UrngHealth,
};

use crate::device::LOG_FRAC;
use crate::error::DpBoxError;

/// Batch epochs advanced across all `DeviceArray`s, process-wide
/// (full metrics level only).
static BATCH_STEPS: Counter = Counter::new("dpbox.batch.steps");
/// Lanes compacted out of the active set (fault latch or budget halt),
/// process-wide (full metrics level only).
static LANE_DIVERGENCES: Counter = Counter::new("dpbox.batch.lane_divergences");
/// Active-lane count observed at each step (full metrics level only).
static ACTIVE_LANES: Histogram = Histogram::new("dpbox.batch.active_lanes", "lanes");

/// Magnitude widths up to this get a memoized CORDIC `-ln u` table
/// (2^16 entries · 8 bytes = 512 KiB at the cap).
const MAX_MEMO_MAG_BITS: u8 = 16;

/// One memoized CORDIC log table, keyed `(mag_bits, iterations)`.
type LnTableEntry = ((u8, u8), Arc<Vec<i64>>);

/// Process-wide memo of CORDIC log tables. A linear scan is fine: one
/// entry per device configuration in play.
static LN_TABLES: Mutex<Vec<LnTableEntry>> = Mutex::new(Vec::new());

/// `-ln(m · 2^-mag_bits)` at [`LOG_FRAC`] fraction bits, exactly as
/// `DpBox::stage_sample` computes it for magnitude word `m`.
fn cordic_neg_ln(cordic: &CordicLn, mag_bits: u8, m: u64) -> i64 {
    let in_fmt =
        QFormat::new((mag_bits + 2).min(63), mag_bits).expect("Bu ≤ 53 keeps the format valid");
    let u = Fx::from_raw(m as i64, in_fmt).expect("m fits the word");
    let out_fmt = QFormat::new(40, LOG_FRAC).expect("valid log format");
    -cordic.ln(u, out_fmt).expect("u > 0 by construction").raw()
}

/// The shared `-ln u` table for `(mag_bits, iterations)`, built on first
/// use. The CORDIC is a pure function of its inputs, so table lookup and
/// per-draw evaluation are interchangeable bit-for-bit.
fn ln_table(mag_bits: u8, iterations: u8) -> Arc<Vec<i64>> {
    let mut tables = LN_TABLES.lock().expect("ln-table lock");
    if let Some((_, t)) = tables.iter().find(|(k, _)| *k == (mag_bits, iterations)) {
        return Arc::clone(t);
    }
    let cordic = CordicLn::new(iterations);
    let table: Vec<i64> = (1..=(1u64 << mag_bits))
        .map(|m| cordic_neg_ln(&cordic, mag_bits, m))
        .collect();
    let table = Arc::new(table);
    tables.push(((mag_bits, iterations), Arc::clone(&table)));
    table
}

/// Static configuration of a [`DeviceArray`] — the union of the DP-Box
/// synthesis parameters and the boot-sequence operands every lane is
/// configured with (see the module docs for the exact command sequence).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceArrayConfig {
    /// Datapath word width in bits.
    pub word_bits: u8,
    /// Fraction bits of the datapath grid (`Δ = 2^-frac_bits`).
    pub frac_bits: u8,
    /// URNG output width `Bu` (1 sign bit + `Bu−1` magnitude bits).
    pub bu: u8,
    /// CORDIC iterations of the logarithm array.
    pub cordic_iterations: u8,
    /// Loss multiples defining the budget segments.
    pub segment_multiples: Vec<f64>,
    /// Continuous health-test configuration (power-on self-test included).
    pub health: HealthConfig,
    /// Per-device privacy budget in raw grid units of nats
    /// (the initialization-phase `SetEpsilon` overload operand).
    pub budget_raw: i64,
    /// Privacy shift `n_m` (per-report ε = 2^−n_m).
    pub eps_shift: u8,
    /// Sensor range lower bound, raw grid units.
    pub range_lower: i64,
    /// Sensor range upper bound, raw grid units.
    pub range_upper: i64,
}

/// What one lane produced for one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LaneOutcome {
    /// A fresh noised output: the budget was charged `charge` nats.
    Fresh {
        /// The released raw output word.
        y: i64,
        /// The ε charge recorded against the lane's budget.
        charge: f64,
    },
    /// The budget is exhausted: the cached output was replayed for free.
    Cached {
        /// The replayed raw output word.
        y: i64,
    },
    /// The lane stopped reporting: a latched health alarm or a budget halt
    /// with nothing cached — `DpBox::noise_value`'s two error paths.
    Dropped,
}

/// N DP-Box devices in thresholding mode, advanced one epoch at a time.
///
/// Construction boots every lane (power-on self-test + command sequence);
/// lanes whose self-test trips are excluded up front and never drawn from
/// again, exactly like a scalar device abandoned in [`crate::Phase::HealthFault`].
#[derive(Debug, Clone)]
pub struct DeviceArray {
    // Shared derived context (identical for every lane).
    mag_bits: u8,
    eps_shift: u32,
    d_raw: i128,
    min_raw: i64,
    max_raw: i64,
    range_min: i64,
    range_max: i64,
    n_th_k: i64,
    table: SegmentTable,
    ln: Option<Arc<Vec<i64>>>,
    cordic: CordicLn,
    // Per-lane register columns.
    rng: Vec<Taus88>,
    health: Vec<UrngHealth>,
    /// Staged magnitude word `m` (1-based); 0 = no staged sample.
    staged_m: Vec<u64>,
    staged_neg: Vec<bool>,
    remaining: Vec<f64>,
    cache: Vec<i64>,
    cache_valid: Vec<bool>,
    fault: Vec<Option<HealthAlarm>>,
    excluded: Vec<bool>,
    /// Compacted index list of lanes still on the common path.
    active: Vec<u32>,
}

impl DeviceArray {
    /// Boots `seeds.len()` lanes: per lane, a Tausworthe URNG from the
    /// seed, the power-on self-test, and the fleet boot sequence. Lanes
    /// failing the self-test are [excluded](DeviceArray::is_excluded).
    ///
    /// # Errors
    ///
    /// Configuration errors mirror [`crate::DpBox`]'s validation of the
    /// same boot sequence ([`DpBoxError::InvalidConfig`] /
    /// [`DpBoxError::ValueOutOfRange`] / solver errors).
    /// [`DpBoxError::UrngHealthFault`] if a lane's monitor trips while
    /// staging its first sample — the scalar boot sequence fails on its
    /// next command there, so the array reports it as a boot failure too.
    pub fn new(cfg: &DeviceArrayConfig, seeds: &[u64]) -> Result<Self, DpBoxError> {
        // Synthesis-time validation (`DpBox::with_urng`).
        let fmt = QFormat::new(cfg.word_bits, cfg.frac_bits)
            .map_err(|_| DpBoxError::InvalidConfig("bad datapath format"))?;
        if cfg.bu < 3 || cfg.bu > 53 {
            return Err(DpBoxError::InvalidConfig("Bu must be in 3..=53"));
        }
        if cfg.segment_multiples.is_empty()
            || cfg.segment_multiples.windows(2).any(|w| w[0] >= w[1])
            || cfg.segment_multiples.iter().any(|&m| m <= 1.0)
        {
            return Err(DpBoxError::InvalidConfig(
                "segment multiples must be ascending and > 1",
            ));
        }
        // Boot-operand validation, in command order.
        if !fmt.contains_raw(cfg.budget_raw) {
            return Err(DpBoxError::ValueOutOfRange {
                value: cfg.budget_raw,
                bits: cfg.word_bits,
            });
        }
        if cfg.budget_raw <= 0 {
            return Err(DpBoxError::InvalidConfig("budget must be positive"));
        }
        if i64::from(cfg.eps_shift) > i64::from(cfg.word_bits) {
            return Err(DpBoxError::InvalidConfig("ε shift n_m out of range"));
        }
        for value in [cfg.range_lower, cfg.range_upper] {
            if !fmt.contains_raw(value) {
                return Err(DpBoxError::ValueOutOfRange {
                    value,
                    bits: cfg.word_bits,
                });
            }
        }
        if cfg.range_lower >= cfg.range_upper {
            return Err(DpBoxError::InvalidConfig("range lower must be below upper"));
        }
        // Derived noising context (`DpBox::rebuild_ctx_if_needed`).
        let delta = fmt.delta();
        let d = (cfg.range_upper - cfg.range_lower) as f64 * delta;
        let lambda = d * 2f64.powi(i32::from(cfg.eps_shift));
        let lap_cfg = FxpLaplaceConfig::new(cfg.bu - 1, cfg.word_bits, delta, lambda)
            .map_err(DpBoxError::Rng)?;
        let range = QuantizedRange::new(cfg.range_lower, cfg.range_upper, delta)
            .map_err(DpBoxError::Privacy)?;
        let table = ldp_core::segment_table_cached(
            lap_cfg,
            range,
            &cfg.segment_multiples,
            LimitMode::Thresholding,
        )
        .map_err(DpBoxError::Privacy)?;
        let n_th_k = table.outermost().0;
        let mag_bits = cfg.bu - 1;
        let budget = cfg.budget_raw as f64 * delta;

        let lanes = seeds.len();
        let mut arr = DeviceArray {
            mag_bits,
            eps_shift: u32::from(cfg.eps_shift),
            d_raw: i128::from(cfg.range_upper - cfg.range_lower),
            min_raw: fmt.min_raw(),
            max_raw: fmt.max_raw(),
            range_min: range.min_k(),
            range_max: range.max_k(),
            n_th_k,
            table,
            ln: (mag_bits <= MAX_MEMO_MAG_BITS).then(|| ln_table(mag_bits, cfg.cordic_iterations)),
            cordic: CordicLn::new(cfg.cordic_iterations),
            rng: Vec::with_capacity(lanes),
            health: Vec::with_capacity(lanes),
            staged_m: vec![0; lanes],
            staged_neg: vec![false; lanes],
            remaining: vec![budget; lanes],
            cache: vec![0; lanes],
            cache_valid: vec![false; lanes],
            fault: vec![None; lanes],
            excluded: vec![false; lanes],
            active: Vec::with_capacity(lanes),
        };
        // Boot lane by lane in index order — the order the scalar engine
        // boots devices in, so a boot-staging trip fails at the same lane.
        let mut scratch = Vec::new();
        for (lane, &seed) in seeds.iter().enumerate() {
            let mut rng = Taus88::from_seed(seed);
            let mut health = UrngHealth::new(cfg.health);
            let passed = health.startup_batched(&mut rng, &mut scratch).is_ok();
            arr.rng.push(rng);
            arr.health.push(health);
            if !passed {
                // Power-on self-test trip: the scalar driver abandons the
                // device here, before any further draw.
                arr.excluded[lane] = true;
                continue;
            }
            // `StartNoising` (init): freeze the budget, stage a sample.
            arr.restage(lane);
            if let Some(alarm) = arr.fault[lane] {
                // The boot staging tripped the monitor: the scalar boot's
                // next command is rejected with this alarm.
                return Err(DpBoxError::UrngHealthFault(alarm));
            }
            arr.active.push(lane as u32);
        }
        Ok(arr)
    }

    /// Number of lanes (booted devices), including excluded ones.
    pub fn lanes(&self) -> usize {
        self.staged_m.len()
    }

    /// Lanes still on the common path.
    pub fn active_lanes(&self) -> usize {
        self.active.len()
    }

    /// Whether the lane's power-on self-test tripped (it never reported).
    pub fn is_excluded(&self, lane: usize) -> bool {
        self.excluded[lane]
    }

    /// The lane's latched health alarm, if any.
    pub fn health_alarm(&self, lane: usize) -> Option<HealthAlarm> {
        self.fault[lane]
    }

    /// Remaining privacy budget of the lane, nats.
    pub fn remaining_budget(&self, lane: usize) -> f64 {
        self.remaining[lane]
    }

    /// The lane's cached (last released) output, if any.
    pub fn cached_output(&self, lane: usize) -> Option<i64> {
        self.cache_valid[lane].then(|| self.cache[lane])
    }

    /// The thresholding window bound `n_th` (grid units) every lane runs
    /// with.
    pub fn n_th_k(&self) -> i64 {
        self.n_th_k
    }

    /// Draws one URNG word through the lane's continuous health tests —
    /// `DpBox::draw_word`. A trip latches the alarm and voids the staged
    /// sample; the word is still returned.
    #[inline]
    fn draw(&mut self, lane: usize) -> u32 {
        let w = self.rng[lane].next_u32();
        if self.fault[lane].is_none() {
            if let Err(alarm) = self.health[lane].observe(w) {
                self.fault[lane] = Some(alarm);
                self.staged_m[lane] = 0;
            }
        }
        w
    }

    /// Draws and stages one Laplace sample — `DpBox::stage_sample`, minus
    /// the CORDIC evaluation, which is deferred to consumption (the log is
    /// a pure function of the staged magnitude, so deferral is invisible).
    fn restage(&mut self, lane: usize) {
        let negative = self.draw(lane) >> 31 == 1;
        let m = if self.mag_bits <= 32 {
            u64::from(self.draw(lane)) >> (32 - u32::from(self.mag_bits))
        } else {
            let hi = u64::from(self.draw(lane));
            let lo = u64::from(self.draw(lane));
            ((hi << 32) | lo) >> (64 - u32::from(self.mag_bits))
        } + 1;
        if self.fault[lane].is_some() {
            // The draw tripped the monitor: the sample is uncertified.
            return;
        }
        self.staged_neg[lane] = negative;
        self.staged_m[lane] = m;
    }

    /// The staged sample's signed noise index — `DpBox::staged_noise_k`.
    #[inline]
    fn noise_k(&self, negative: bool, m: u64) -> i64 {
        let neg_ln_raw = match &self.ln {
            Some(t) => t[(m - 1) as usize],
            None => cordic_neg_ln(&self.cordic, self.mag_bits, m),
        };
        let prod = self.d_raw * i128::from(neg_ln_raw);
        let half = 1i128 << (LOG_FRAC - 1);
        let mag = ((prod + half) >> LOG_FRAC) << self.eps_shift;
        let mag = mag.clamp(0, self.max_raw as i128) as i64;
        if negative {
            -mag
        } else {
            mag
        }
    }

    /// Advances every active lane one reporting epoch: the equivalent of
    /// issuing `noise_value(xs[lane])` on a scalar device per lane.
    ///
    /// `out` is resized to [`DeviceArray::lanes`] and every entry
    /// overwritten: active lanes get their epoch outcome; excluded and
    /// previously-diverged lanes read [`LaneOutcome::Dropped`] (a scalar
    /// device in those states rejects the request). Lanes that return
    /// `Dropped` are compacted out of the active set.
    pub fn step(&mut self, xs: &[i64], out: &mut Vec<LaneOutcome>) {
        assert_eq!(xs.len(), self.lanes(), "one sensor value per lane");
        if full_enabled() {
            BATCH_STEPS.inc();
            ACTIVE_LANES.record(self.active.len() as u64);
        }
        out.clear();
        out.resize(self.lanes(), LaneOutcome::Dropped);
        let mut divergences = 0u64;
        let mut i = 0;
        while i < self.active.len() {
            let lane = self.active[i] as usize;
            // `SetSensorValue` in the fault phase is rejected: the drop
            // from a restage trip surfaces at the next epoch — here.
            if self.fault[lane].is_some() {
                self.active.swap_remove(i);
                divergences += 1;
                continue;
            }
            // `tick` cycle 2: budget gate before sample consumption.
            if self.remaining[lane] <= 0.0 {
                if self.cache_valid[lane] {
                    out[lane] = LaneOutcome::Cached {
                        y: self.cache[lane],
                    };
                    // `finish(cached, true)` restages on re-entering
                    // waiting; a trip here drops the lane next epoch.
                    self.restage(lane);
                    i += 1;
                } else {
                    // Halt with nothing cached: `BudgetExhausted`.
                    self.active.swap_remove(i);
                    divergences += 1;
                }
                continue;
            }
            // Consume the staged sample (staging inline if a previous trip
            // was reset away — unreachable in fleet use, but mirrored).
            if self.staged_m[lane] == 0 {
                self.restage(lane);
                if self.staged_m[lane] == 0 {
                    // Tripped mid-draw: the request is abandoned unserved.
                    self.active.swap_remove(i);
                    divergences += 1;
                    continue;
                }
            }
            let m = self.staged_m[lane];
            self.staged_m[lane] = 0;
            let k = self.noise_k(self.staged_neg[lane], m);
            let x = xs[lane];
            let tmp = x.saturating_add(k).clamp(self.min_raw, self.max_raw);
            let (lo, hi) = (self.range_min - self.n_th_k, self.range_max + self.n_th_k);
            let in_window = tmp >= lo && tmp <= hi;
            let y = if in_window { tmp } else { tmp.clamp(lo, hi) };
            let overshoot = if y < self.range_min {
                self.range_min - y
            } else if y > self.range_max {
                y - self.range_max
            } else {
                0
            };
            let charge = self.table.charge_for_overshoot(overshoot);
            self.remaining[lane] -= charge;
            self.cache[lane] = y;
            self.cache_valid[lane] = true;
            out[lane] = LaneOutcome::Fresh { y, charge };
            // `finish(y, false)`: restage immediately on re-entering
            // waiting.
            self.restage(lane);
            i += 1;
        }
        if divergences > 0 && full_enabled() {
            LANE_DIVERGENCES.add(divergences);
        }
    }

    /// Advances every lane through `epochs` consecutive reporting epochs
    /// with the same per-lane sensor values, returning one outcome column
    /// per epoch (each column indexed by lane, as [`DeviceArray::step`]
    /// fills it).
    ///
    /// This is the multi-epoch form the fleet drivers consume: windowed
    /// services step an array window-by-window and slice the returned
    /// columns by epoch, so the column layout — not the caller's loop —
    /// defines the epoch axis.
    pub fn step_epochs(&mut self, xs: &[i64], epochs: usize) -> Vec<Vec<LaneOutcome>> {
        let mut matrix = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut col = Vec::new();
            self.step(xs, &mut col);
            matrix.push(col);
        }
        matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Command, DpBox, DpBoxConfig, DpBoxError, Phase};

    fn fleet_array_config() -> DeviceArrayConfig {
        DeviceArrayConfig {
            word_bits: 20,
            frac_bits: 0,
            bu: 17,
            cordic_iterations: 24,
            segment_multiples: vec![1.5, 2.0, 2.5, 3.0],
            health: HealthConfig::new(40, 64, 4).unwrap(),
            budget_raw: 2,
            eps_shift: 1,
            range_lower: 0,
            range_upper: 256,
        }
    }

    /// A scalar DP-Box booted through the exact command sequence the array
    /// models, on the same seed.
    fn scalar_device(cfg: &DeviceArrayConfig, seed: u64) -> Result<DpBox, DpBoxError> {
        let mut dev = DpBox::with_urng(
            DpBoxConfig {
                word_bits: cfg.word_bits,
                frac_bits: cfg.frac_bits,
                bu: cfg.bu,
                cordic_iterations: cfg.cordic_iterations,
                segment_multiples: cfg.segment_multiples.clone(),
                seed: 0,
            },
            Taus88::from_seed(seed),
        )?;
        dev.set_health_config(cfg.health);
        dev.issue(Command::ResetHealth, 0)?;
        if dev.phase() == Phase::HealthFault {
            return Ok(dev); // excluded: caller checks the phase
        }
        dev.issue(Command::SetEpsilon, cfg.budget_raw)?;
        dev.issue(Command::StartNoising, 0)?;
        dev.issue(Command::SetEpsilon, i64::from(cfg.eps_shift))?;
        dev.issue(Command::SetSensorRangeLower, cfg.range_lower)?;
        dev.issue(Command::SetSensorRangeUpper, cfg.range_upper)?;
        dev.issue(Command::SetThreshold, 0)?;
        Ok(dev)
    }

    #[test]
    fn lanes_match_scalar_devices_through_budget_exhaustion() {
        let cfg = fleet_array_config();
        let seeds: Vec<u64> = (0..16).map(|i| 0x5EED + i * 7919).collect();
        let mut array = DeviceArray::new(&cfg, &seeds).unwrap();
        let xs: Vec<i64> = (0..16).map(|i| (i * 16) as i64).collect();
        let mut out = Vec::new();
        // budget_raw = 2 nats at ~0.5 nats/report: a handful of fresh
        // epochs, then cached serves — both paths exercised.
        for _epoch in 0..12 {
            array.step(&xs, &mut out);
        }
        for (lane, &seed) in seeds.iter().enumerate() {
            let mut dev = scalar_device(&cfg, seed).unwrap();
            assert_eq!(
                dev.phase() == Phase::HealthFault,
                array.is_excluded(lane),
                "lane {lane} exclusion"
            );
            if array.is_excluded(lane) {
                continue;
            }
            let mut array_clone = DeviceArray::new(&cfg, &seeds).unwrap();
            for epoch in 0..12 {
                array_clone.step(&xs, &mut out);
                match dev.noise_value(xs[lane]) {
                    Ok((y, _)) => {
                        let matches = matches!(
                            out[lane],
                            LaneOutcome::Fresh { y: ay, .. } | LaneOutcome::Cached { y: ay }
                                if ay == y
                        );
                        assert!(
                            matches,
                            "lane {lane} epoch {epoch}: scalar {y}, array {:?}",
                            out[lane]
                        );
                    }
                    Err(_) => {
                        assert_eq!(out[lane], LaneOutcome::Dropped, "lane {lane} epoch {epoch}");
                        break;
                    }
                }
                assert_eq!(
                    dev.remaining_budget().to_bits(),
                    array_clone.remaining_budget(lane).to_bits(),
                    "lane {lane} epoch {epoch} budget"
                );
            }
        }
    }

    #[test]
    fn fresh_then_cached_charges_once() {
        let cfg = DeviceArrayConfig {
            budget_raw: 1,
            ..fleet_array_config()
        };
        let mut array = DeviceArray::new(&cfg, &[42]).unwrap();
        assert!(!array.is_excluded(0));
        let mut out = Vec::new();
        array.step(&[100], &mut out);
        let LaneOutcome::Fresh { y: y0, charge } = out[0] else {
            panic!("first epoch must be fresh, got {:?}", out[0]);
        };
        assert!(charge > 0.0);
        // ~0.5 nats/report against a 1-nat budget: fresh until the budget
        // crosses zero, cached (same y, no charge) from then on.
        let mut last_fresh_y = Some(y0);
        for _ in 0..8 {
            array.step(&[100], &mut out);
            match out[0] {
                LaneOutcome::Fresh { y, .. } => {
                    last_fresh_y = Some(y);
                    assert!(array.remaining_budget(0) < 1.0);
                }
                LaneOutcome::Cached { y } => {
                    assert!(
                        array.remaining_budget(0) <= 0.0,
                        "cached only after spend-down"
                    );
                    assert_eq!(Some(y), last_fresh_y, "cache replays the last fresh output");
                    assert_eq!(array.cached_output(0), Some(y));
                }
                LaneOutcome::Dropped => panic!("healthy lane must not drop"),
            }
        }
        assert!(array.remaining_budget(0) <= 0.0, "budget spent by epoch 9");
        array.step(&[100], &mut out);
        assert!(matches!(out[0], LaneOutcome::Cached { .. }));
        assert_eq!(array.active_lanes(), 1, "cached lanes stay active");
    }

    #[test]
    fn aggressive_health_config_excludes_and_diverges_lanes() {
        // α = 4: trips are common on a healthy Tausworthe, so both the
        // startup-exclusion and the mid-stream divergence paths fire
        // across a modest seed sweep — and each must match the scalar FSM.
        let cfg = DeviceArrayConfig {
            health: HealthConfig::new(4, 64, 4).unwrap(),
            budget_raw: 1 << 18,
            ..fleet_array_config()
        };
        let seeds: Vec<u64> = (0..64).collect();
        let array = match DeviceArray::new(&cfg, &seeds) {
            Ok(a) => a,
            Err(DpBoxError::UrngHealthFault(_)) => {
                // A lane tripped while staging its boot sample; the scalar
                // boot fails there too. Covered by the proptest suite.
                return;
            }
            Err(e) => panic!("unexpected boot error: {e}"),
        };
        let mut excluded = 0;
        for (lane, &seed) in seeds.iter().enumerate() {
            let dev = scalar_device(&cfg, seed).unwrap();
            assert_eq!(dev.phase() == Phase::HealthFault, array.is_excluded(lane));
            excluded += usize::from(array.is_excluded(lane));
        }
        assert!(excluded > 0, "α = 3 must exclude some lanes at startup");
    }

    #[test]
    fn config_validation_mirrors_the_scalar_device() {
        let good = fleet_array_config();
        assert!(DeviceArray::new(&good, &[1]).is_ok());
        for (mutate, what) in [
            (
                Box::new(|c: &mut DeviceArrayConfig| c.bu = 2)
                    as Box<dyn Fn(&mut DeviceArrayConfig)>,
                "Bu",
            ),
            (
                Box::new(|c: &mut DeviceArrayConfig| c.budget_raw = 0),
                "budget",
            ),
            (
                Box::new(|c: &mut DeviceArrayConfig| c.segment_multiples = vec![]),
                "multiples",
            ),
            (
                Box::new(|c: &mut DeviceArrayConfig| c.eps_shift = 21),
                "shift",
            ),
            (
                Box::new(|c: &mut DeviceArrayConfig| {
                    c.range_lower = 10;
                    c.range_upper = 10;
                }),
                "range",
            ),
            (
                Box::new(|c: &mut DeviceArrayConfig| c.budget_raw = 1 << 30),
                "budget word",
            ),
        ] {
            let mut cfg = fleet_array_config();
            mutate(&mut cfg);
            assert!(
                DeviceArray::new(&cfg, &[1]).is_err(),
                "bad {what} must be rejected"
            );
        }
    }
}
