//! The DP-Box's 3-bit command port (Section IV-A).

use core::fmt;

/// A command on the DP-Box's 3-bit command port.
///
/// Several commands are overloaded during the initialization phase (before
/// the first [`Command::StartNoising`]): `SetEpsilon` sets the privacy
/// budget and `SetSensorRangeUpper` sets the replenishment period.
///
/// # Examples
///
/// ```
/// use dp_box::Command;
///
/// let cmd = Command::try_from(0b001u8)?;
/// assert_eq!(cmd, Command::SetEpsilon);
/// assert_eq!(u8::from(Command::DoNothing), 0b110);
/// # Ok::<(), dp_box::DecodeCommandError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    /// Begin noising with the loaded parameters; in the initialization
    /// phase, finalize configuration and transition to waiting.
    StartNoising,
    /// Set the privacy level `ε = 2^-n_m` for subsequent readings (the
    /// input port carries `n_m`); in the initialization phase, set the
    /// budget.
    SetEpsilon,
    /// Load the sensor value to be noised.
    SetSensorValue,
    /// Set the sensor range's upper limit; in the initialization phase, set
    /// the replenishment period.
    SetSensorRangeUpper,
    /// Set the sensor range's lower limit.
    SetSensorRangeLower,
    /// Toggle between resampling and thresholding.
    SetThreshold,
    /// Hold the DP-Box idle (without it, noising would immediately restart).
    DoNothing,
    /// Clear a latched URNG health alarm and rerun the startup health test.
    /// Recovery from a [`HealthFault`](crate::Phase::HealthFault) is
    /// deliberate: only this command (never `DoNothing` or a timeout)
    /// re-arms fresh noising, and only if the retest passes.
    ResetHealth,
}

/// Error decoding a 3-bit command word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeCommandError(
    /// The unassigned encoding that was received.
    pub u8,
);

impl fmt::Display for DecodeCommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unassigned DP-Box command encoding {:#05b}", self.0)
    }
}

impl std::error::Error for DecodeCommandError {}

impl From<Command> for u8 {
    fn from(c: Command) -> u8 {
        match c {
            Command::StartNoising => 0b000,
            Command::SetEpsilon => 0b001,
            Command::SetSensorValue => 0b010,
            Command::SetSensorRangeUpper => 0b011,
            Command::SetSensorRangeLower => 0b100,
            Command::SetThreshold => 0b101,
            Command::DoNothing => 0b110,
            Command::ResetHealth => 0b111,
        }
    }
}

impl TryFrom<u8> for Command {
    type Error = DecodeCommandError;

    fn try_from(bits: u8) -> Result<Self, Self::Error> {
        match bits {
            0b000 => Ok(Command::StartNoising),
            0b001 => Ok(Command::SetEpsilon),
            0b010 => Ok(Command::SetSensorValue),
            0b011 => Ok(Command::SetSensorRangeUpper),
            0b100 => Ok(Command::SetSensorRangeLower),
            0b101 => Ok(Command::SetThreshold),
            0b110 => Ok(Command::DoNothing),
            0b111 => Ok(Command::ResetHealth),
            other => Err(DecodeCommandError(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_commands() {
        for bits in 0u8..=0b111 {
            let cmd = Command::try_from(bits).unwrap();
            assert_eq!(u8::from(cmd), bits);
        }
    }

    #[test]
    fn wider_than_three_bit_encodings_are_rejected() {
        assert_eq!(Command::try_from(0b1000), Err(DecodeCommandError(0b1000)));
        assert_eq!(Command::try_from(0xFF), Err(DecodeCommandError(0xFF)));
    }

    #[test]
    fn decode_error_displays_encoding() {
        let e = DecodeCommandError(0b1000);
        assert!(e.to_string().contains("0b1000"));
    }
}
