//! The DP-Box device model: a cycle-level simulation of the hardware module
//! of Section IV.
//!
//! The device exposes the paper's port-level interface — a 3-bit command
//! port, a signed input port, a signed output port, and a ready bit — and
//! reproduces its timing contract (Section V): noised output in 2 cycles
//! (one to load registers, one to noise), thresholding free, +1 cycle per
//! resample. Internally the noise pipeline is the real datapath: Tausworthe
//! URNG → CORDIC logarithm → shift-and-multiply scaling (`ε = 2^-n_m`, so
//! scaling by `1/ε` is a left shift, Eq. 19).
//!
//! One noise sample is precomputed while the device waits (Section IV-C2),
//! which is what makes 2-cycle noising possible once a request arrives.
//!
//! # Modelling notes (deviations documented in DESIGN.md)
//!
//! * The paper's Eq. 17 extracts sign and magnitude from a single uniform
//!   (`u < 0.5` vs `u ≥ 0.5`); we implement the equivalent sign-bit +
//!   `(Bu−1)`-bit magnitude split so the output distribution is *exactly*
//!   the [`ulp_rng::FxpNoisePmf`] model with `Bu_eff = Bu − 1`.
//! * The window thresholds and budget segments are solved at configuration
//!   time by the exact solver in [`ldp_core::threshold`]; in silicon these
//!   would be ROM constants synthesized for the supported (ε, range)
//!   combinations.

use ldp_core::{
    AuditMismatch, BudgetLedger, CompositionLedger, LimitMode, QuantizedRange, SegmentTable,
};
use ulp_fixed::QFormat;
use ulp_obs::{Counter, Histogram};
use ulp_rng::{
    CordicLn, FxpLaplaceConfig, HealthAlarm, HealthConfig, RandomBits, Taus88, UrngHealth,
};

use crate::command::Command;
use crate::error::DpBoxError;
use crate::trace::{Trace, TraceEvent};

/// Commands accepted across all DP-Box instances in this process.
static COMMANDS: Counter = Counter::new("dpbox.commands.accepted");
/// Commands rejected (wrong phase, bad operand, health fault, busy).
static COMMANDS_REJECTED: Counter = Counter::new("dpbox.commands.rejected");
/// Health-fault phase entries — recorded even at metrics level `off`:
/// a voided ε certification must never be invisible.
static FAULT_TRANSITIONS: Counter = Counter::new("dpbox.phase.health_faults");
/// Requests served from the cache after exhaustion or during a fault.
static CACHE_SERVES: Counter = Counter::new("dpbox.outputs.cached");
/// Cycles from `StartNoising` to a fresh output (2 + resamples).
static NOISING_CYCLES: Histogram = Histogram::new("dpbox.noising.cycles", "cycles");

/// Static (synthesis-time) configuration of a DP-Box instance.
#[derive(Debug, Clone, PartialEq)]
pub struct DpBoxConfig {
    /// Datapath word width in bits (the paper synthesizes 20).
    pub word_bits: u8,
    /// Fraction bits of the datapath grid (`Δ = 2^-frac_bits`).
    pub frac_bits: u8,
    /// URNG output width `Bu` (1 sign bit + `Bu−1` magnitude bits).
    pub bu: u8,
    /// CORDIC iterations of the single-cycle logarithm array.
    pub cordic_iterations: u8,
    /// Loss multiples defining the budget segments (Fig. 8).
    pub segment_multiples: Vec<f64>,
    /// URNG seed (a hardware TRNG would provide this at power-up).
    pub seed: u64,
}

impl Default for DpBoxConfig {
    /// The synthesized configuration from Section V: 20-bit datapath,
    /// 17-bit URNG, Fig. 8-style segments.
    fn default() -> Self {
        DpBoxConfig {
            word_bits: 20,
            frac_bits: 5,
            bu: 17,
            cordic_iterations: 24,
            segment_multiples: vec![1.5, 2.0, 2.5, 3.0],
            seed: 0x15CA_2018,
        }
    }
}

/// Operating phase of the DP-Box FSM (Section IV-C, extended with the
/// fail-safe health-fault state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Boot-time configuration: budget and replenishment period settable.
    Initialization,
    /// Waiting for a noise request; a fresh Laplace sample is staged.
    Waiting,
    /// Actively noising a sensor value.
    Noising,
    /// The URNG health monitor tripped: the distributional ε guarantee is
    /// void, so the device serves only cached outputs until an explicit
    /// [`Command::ResetHealth`] retest passes.
    HealthFault,
}

/// Counters exposed for the evaluation harness.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DpBoxStats {
    /// Fresh noised outputs produced.
    pub noisings: u64,
    /// Requests served from the cache after budget exhaustion.
    pub cached: u64,
    /// Total extra resampling cycles across all noisings.
    pub resamples: u64,
    /// Cycles spent in the noising phase (the energy-relevant activity).
    pub busy_cycles: u64,
    /// URNG health alarms latched (trips plus failed retests).
    pub health_alarms: u64,
}

#[derive(Debug, Clone)]
struct NoisingCtx {
    lap_cfg: FxpLaplaceConfig,
    range: QuantizedRange,
    table: SegmentTable,
    n_th_k: i64,
}

/// A staged noise sample: sign and the CORDIC `-ln u` magnitude at
/// [`LOG_FRAC`] fraction bits.
#[derive(Debug, Clone, Copy)]
struct StagedSample {
    negative: bool,
    /// `-ln(u)` as a fixed-point word with `LOG_FRAC` fraction bits.
    neg_ln_raw: i64,
}

/// Fraction bits of the CORDIC logarithm output inside the pipeline
/// (shared with the batch engine in [`crate::array`]).
pub(crate) const LOG_FRAC: u8 = 24;

/// The DP-Box hardware module.
///
/// Generic over the URNG bit source `R` (defaulting to the paper's
/// [`Taus88`]) so fault-injection campaigns can substitute degraded
/// sources via [`DpBox::with_urng`]. Every word the noise pipeline draws
/// is fed through the continuous health tests ([`UrngHealth`]); a trip
/// moves the FSM to [`Phase::HealthFault`], from which only cached outputs
/// are served until an explicit [`Command::ResetHealth`] retest passes.
///
/// # Examples
///
/// Drive the port-level interface directly:
///
/// ```
/// use dp_box::{Command, DpBox, DpBoxConfig};
///
/// let mut dev = DpBox::new(DpBoxConfig::default())?;
/// // Leave initialization (no budget → unlimited).
/// dev.issue(Command::StartNoising, 0)?;
///
/// // ε = 2^-1, sensor range [0, 320] grid units (= [0, 10.0] at Δ = 1/32).
/// dev.issue(Command::SetEpsilon, 1)?;
/// dev.issue(Command::SetSensorRangeLower, 0)?;
/// dev.issue(Command::SetSensorRangeUpper, 320)?;
/// dev.issue(Command::SetSensorValue, 160)?;
/// dev.issue(Command::StartNoising, 0)?;
/// while !dev.ready() {
///     dev.tick();
/// }
/// let noised = dev.output().expect("noised output");
/// # let _ = noised;
/// # Ok::<(), dp_box::DpBoxError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DpBox<R = Taus88> {
    cfg: DpBoxConfig,
    fmt: QFormat,
    phase: Phase,
    urng: R,
    health: Option<UrngHealth>,
    cordic: CordicLn,
    // Configuration registers (initialization phase).
    budget: Option<f64>,
    replenish_period: u64,
    // Operating registers.
    eps_shift: Option<u8>,
    x_raw: Option<i64>,
    r_u: Option<i64>,
    r_l: Option<i64>,
    mode: LimitMode,
    // Derived noising context, rebuilt when parameters change.
    ctx: Option<NoisingCtx>,
    dirty: bool,
    // Runtime state.
    staged: Option<StagedSample>,
    remaining: f64,
    cache: Option<i64>,
    cycles: u64,
    since_replenish: u64,
    noising_subcycle: u8,
    output: Option<i64>,
    ready: bool,
    fault: Option<HealthAlarm>,
    stats: DpBoxStats,
    trace: Option<Trace>,
    // Auditable privacy accounting: every fresh-output charge is appended
    // to both records, so `audit()` can cross-check them at any time.
    ledger: BudgetLedger,
    accountant: CompositionLedger,
}

impl DpBox {
    /// Creates a DP-Box in the initialization phase, with the paper's
    /// Tausworthe URNG seeded from the configuration.
    ///
    /// # Errors
    ///
    /// [`DpBoxError::InvalidConfig`] for invalid word widths or segment
    /// multiples.
    pub fn new(cfg: DpBoxConfig) -> Result<Self, DpBoxError> {
        let urng = Taus88::from_seed(cfg.seed);
        DpBox::with_urng(cfg, urng)
    }
}

impl<R: RandomBits> DpBox<R> {
    /// Creates a DP-Box in the initialization phase running on a caller
    /// supplied URNG — the hook fault-injection campaigns use to substitute
    /// degraded bit sources (the configuration's `seed` is ignored).
    ///
    /// # Errors
    ///
    /// [`DpBoxError::InvalidConfig`] for invalid word widths or segment
    /// multiples.
    pub fn with_urng(cfg: DpBoxConfig, urng: R) -> Result<Self, DpBoxError> {
        let fmt = QFormat::new(cfg.word_bits, cfg.frac_bits)
            .map_err(|_| DpBoxError::InvalidConfig("bad datapath format"))?;
        if cfg.bu < 3 || cfg.bu > 53 {
            return Err(DpBoxError::InvalidConfig("Bu must be in 3..=53"));
        }
        if cfg.segment_multiples.is_empty()
            || cfg.segment_multiples.windows(2).any(|w| w[0] >= w[1])
            || cfg.segment_multiples.iter().any(|&m| m <= 1.0)
        {
            return Err(DpBoxError::InvalidConfig(
                "segment multiples must be ascending and > 1",
            ));
        }
        let cordic = CordicLn::new(cfg.cordic_iterations);
        Ok(DpBox {
            fmt,
            phase: Phase::Initialization,
            urng,
            health: Some(UrngHealth::default()),
            cordic,
            budget: None,
            replenish_period: 0,
            eps_shift: None,
            x_raw: None,
            r_u: None,
            r_l: None,
            mode: LimitMode::Resampling,
            ctx: None,
            dirty: true,
            staged: None,
            remaining: f64::INFINITY,
            cache: None,
            cycles: 0,
            since_replenish: 0,
            noising_subcycle: 0,
            output: None,
            ready: false,
            fault: None,
            stats: DpBoxStats::default(),
            trace: None,
            ledger: BudgetLedger::new(),
            accountant: CompositionLedger::new(),
            cfg,
        })
    }

    /// The current FSM phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The datapath format (word width / fraction bits).
    pub fn format(&self) -> QFormat {
        self.fmt
    }

    /// Total elapsed clock cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Whether a noised output is available on the output port.
    pub fn ready(&self) -> bool {
        self.ready
    }

    /// The output port: the latest noised value (raw datapath word).
    pub fn output(&self) -> Option<i64> {
        if self.ready {
            self.output
        } else {
            None
        }
    }

    /// The latest noised value in physical units.
    pub fn output_value(&self) -> Option<f64> {
        self.output().map(|raw| raw as f64 * self.fmt.delta())
    }

    /// Remaining privacy budget (infinite if never configured).
    pub fn remaining_budget(&self) -> f64 {
        self.remaining
    }

    /// Activity counters.
    pub fn stats(&self) -> DpBoxStats {
        self.stats
    }

    /// The append-only record of every ε charge this device has made
    /// (cached replays and replenishments never touch it).
    pub fn ledger(&self) -> &BudgetLedger {
        &self.ledger
    }

    /// The independent sequential-composition accountant fed in lockstep
    /// with the ledger.
    pub fn accountant(&self) -> &CompositionLedger {
        &self.accountant
    }

    /// Cross-checks the ledger against the composition accountant (see
    /// [`BudgetLedger::audit`]): per-query charges and totals must match
    /// bitwise.
    ///
    /// # Errors
    ///
    /// The first [`AuditMismatch`] found.
    pub fn audit(&self) -> Result<(), AuditMismatch> {
        self.ledger.audit(&self.accountant)
    }

    /// The active limiting mode.
    pub fn mode(&self) -> LimitMode {
        self.mode
    }

    /// The URNG health monitor, if enabled.
    pub fn health(&self) -> Option<&UrngHealth> {
        self.health.as_ref()
    }

    /// The latched health alarm, if a continuous test has tripped.
    pub fn health_alarm(&self) -> Option<HealthAlarm> {
        self.fault
    }

    /// Replaces the health monitor with a fresh one built from `cfg`.
    ///
    /// Takes effect immediately but does *not* clear a latched
    /// [`Phase::HealthFault`] — recovery always goes through
    /// [`Command::ResetHealth`].
    pub fn set_health_config(&mut self, cfg: HealthConfig) {
        self.health = Some(UrngHealth::new(cfg));
    }

    /// Disables URNG health monitoring entirely.
    ///
    /// Intended for structural-bound experiments only: without the monitor
    /// the device keeps noising on arbitrarily degraded URNGs and the
    /// distributional ε guarantee is uncertified.
    pub fn disable_health(&mut self) {
        self.health = None;
    }

    /// Enables the cycle-stamped event trace (the simulator's waveform
    /// dump), keeping at most `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::bounded(capacity));
    }

    /// The event trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Renders the captured trace as a VCD waveform document (see
    /// [`crate::trace_to_vcd`]); `None` if tracing is disabled.
    pub fn export_vcd(&self) -> Option<String> {
        self.trace
            .as_ref()
            .map(|t| crate::vcd::trace_to_vcd(t, "dp_box"))
    }

    fn record(&mut self, event: TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.push(event);
        }
    }

    fn record_phase(&mut self, from: Phase, to: Phase) {
        let cycle = self.cycles;
        self.record(TraceEvent::PhaseChange { cycle, from, to });
    }

    /// The window threshold (grid units) of the current configuration, if
    /// parameters have been loaded.
    pub fn threshold_k(&self) -> Option<i64> {
        self.ctx.as_ref().map(|c| c.n_th_k)
    }

    /// The fixed-point Laplace RNG configuration the current parameters
    /// induce (for external privacy analysis of this device instance).
    pub fn laplace_config(&self) -> Option<FxpLaplaceConfig> {
        self.ctx.as_ref().map(|c| c.lap_cfg)
    }

    /// Sends one command with its input-port operand.
    ///
    /// # Errors
    ///
    /// [`DpBoxError::Busy`] while noising; [`DpBoxError::ValueOutOfRange`]
    /// if the operand does not fit the datapath word;
    /// [`DpBoxError::MissingParameters`] when `StartNoising` arrives before
    /// ε, range, and sensor value are all loaded; solver errors propagate as
    /// [`DpBoxError::Privacy`]; [`DpBoxError::UrngHealthFault`] for any
    /// command other than `DoNothing`/`ResetHealth` (or a cache-serving
    /// `StartNoising`) while a health alarm is latched.
    pub fn issue(&mut self, cmd: Command, input: i64) -> Result<(), DpBoxError> {
        if self.phase == Phase::Noising && cmd != Command::DoNothing {
            return Err(DpBoxError::Busy);
        }
        let before = self.phase;
        let result = match self.phase {
            Phase::Initialization => self.issue_init(cmd, input),
            Phase::Waiting => self.issue_waiting(cmd, input),
            Phase::Noising => Ok(()), // DoNothing only, already filtered
            Phase::HealthFault => self.issue_faulted(cmd),
        };
        if result.is_ok() {
            COMMANDS.inc();
            let cycle = self.cycles;
            self.record(TraceEvent::Command { cycle, cmd, input });
            if self.phase != before {
                self.record_phase(before, self.phase);
            }
        } else {
            COMMANDS_REJECTED.inc();
        }
        result
    }

    fn check_word(&self, input: i64) -> Result<i64, DpBoxError> {
        if self.fmt.contains_raw(input) {
            Ok(input)
        } else {
            Err(DpBoxError::ValueOutOfRange {
                value: input,
                bits: self.cfg.word_bits,
            })
        }
    }

    fn issue_init(&mut self, cmd: Command, input: i64) -> Result<(), DpBoxError> {
        match cmd {
            Command::SetEpsilon => {
                // Initialization overload: budget, in grid units of nats.
                let raw = self.check_word(input)?;
                if raw <= 0 {
                    return Err(DpBoxError::InvalidConfig("budget must be positive"));
                }
                self.budget = Some(raw as f64 * self.fmt.delta());
                Ok(())
            }
            Command::SetSensorRangeUpper => {
                // Initialization overload: replenishment period in cycles.
                if input < 0 {
                    return Err(DpBoxError::InvalidConfig(
                        "replenishment period must be non-negative",
                    ));
                }
                self.replenish_period = input as u64;
                Ok(())
            }
            Command::StartNoising => {
                // Budget and period are now frozen until power cycle.
                self.remaining = self.budget.unwrap_or(f64::INFINITY);
                self.phase = Phase::Waiting;
                self.stage_sample();
                Ok(())
            }
            Command::SetThreshold => {
                self.toggle_mode();
                Ok(())
            }
            Command::DoNothing => Ok(()),
            Command::ResetHealth => {
                self.reset_health();
                Ok(())
            }
            Command::SetSensorValue | Command::SetSensorRangeLower => Err(DpBoxError::WrongPhase(
                "sensor parameters are loaded after initialization",
            )),
        }
    }

    fn issue_waiting(&mut self, cmd: Command, input: i64) -> Result<(), DpBoxError> {
        match cmd {
            Command::SetEpsilon => {
                if !(0..=(self.cfg.word_bits as i64)).contains(&input) {
                    return Err(DpBoxError::InvalidConfig("ε shift n_m out of range"));
                }
                self.eps_shift = Some(input as u8);
                self.dirty = true;
                Ok(())
            }
            Command::SetSensorValue => {
                self.x_raw = Some(self.check_word(input)?);
                Ok(())
            }
            Command::SetSensorRangeUpper => {
                self.r_u = Some(self.check_word(input)?);
                self.dirty = true;
                Ok(())
            }
            Command::SetSensorRangeLower => {
                self.r_l = Some(self.check_word(input)?);
                self.dirty = true;
                Ok(())
            }
            Command::SetThreshold => {
                self.toggle_mode();
                Ok(())
            }
            Command::StartNoising => {
                self.rebuild_ctx_if_needed()?;
                if self.x_raw.is_none() {
                    return Err(DpBoxError::MissingParameters("sensor value"));
                }
                self.phase = Phase::Noising;
                self.noising_subcycle = 0;
                self.ready = false;
                Ok(())
            }
            Command::DoNothing => Ok(()),
            Command::ResetHealth => {
                self.reset_health();
                Ok(())
            }
        }
    }

    /// Command handling while a health alarm is latched: the fail-safe
    /// contract is "no fresh noised output until an explicit reset".
    fn issue_faulted(&mut self, cmd: Command) -> Result<(), DpBoxError> {
        let alarm = self
            .fault
            .expect("HealthFault phase implies a latched alarm");
        match cmd {
            // Holding the device idle must NOT clear the alarm.
            Command::DoNothing => Ok(()),
            Command::ResetHealth => {
                self.reset_health();
                Ok(())
            }
            // A noise request is served from the cache if one exists —
            // replaying an already-released output leaks nothing new —
            // and refused otherwise.
            Command::StartNoising => {
                if let Some(cached) = self.cache {
                    self.output = Some(cached);
                    self.ready = true;
                    self.stats.cached += 1;
                    CACHE_SERVES.inc();
                    let cycle = self.cycles;
                    self.record(TraceEvent::Output {
                        cycle,
                        value: cached,
                        from_cache: true,
                    });
                    Ok(())
                } else {
                    Err(DpBoxError::UrngHealthFault(alarm))
                }
            }
            _ => Err(DpBoxError::UrngHealthFault(alarm)),
        }
    }

    /// The `ResetHealth` command path: clear the monitor, rerun the startup
    /// test on fresh URNG words, and only then re-arm fresh noising.
    fn reset_health(&mut self) {
        let cycle = self.cycles;
        let passed = match self.health.as_mut() {
            Some(h) => {
                h.reset();
                h.startup(&mut self.urng).is_ok()
            }
            None => true,
        };
        self.record(TraceEvent::HealthReset { cycle, passed });
        if passed {
            self.fault = None;
            if self.phase == Phase::HealthFault {
                self.record_phase(Phase::HealthFault, Phase::Waiting);
                self.phase = Phase::Waiting;
                self.ready = false;
                self.output = None;
                // Re-stage the sample the waiting phase keeps ready (this
                // can itself trip and re-enter the fault phase).
                self.stage_sample();
            }
        } else {
            let alarm = self
                .health
                .as_ref()
                .and_then(|h| h.alarm().copied())
                .expect("failed retest latches an alarm");
            self.trip(alarm);
        }
    }

    fn toggle_mode(&mut self) {
        self.mode = match self.mode {
            LimitMode::Resampling => LimitMode::Thresholding,
            LimitMode::Thresholding => LimitMode::Resampling,
        };
        let cycle = self.cycles;
        let mode = self.mode;
        self.record(TraceEvent::ModeToggled { cycle, mode });
        self.dirty = true;
    }

    fn rebuild_ctx_if_needed(&mut self) -> Result<(), DpBoxError> {
        if !self.dirty && self.ctx.is_some() {
            return Ok(());
        }
        let eps_shift = self
            .eps_shift
            .ok_or(DpBoxError::MissingParameters("epsilon"))?;
        let r_u = self
            .r_u
            .ok_or(DpBoxError::MissingParameters("range upper"))?;
        let r_l = self
            .r_l
            .ok_or(DpBoxError::MissingParameters("range lower"))?;
        if r_l >= r_u {
            return Err(DpBoxError::InvalidConfig("range lower must be below upper"));
        }
        let delta = self.fmt.delta();
        let d = (r_u - r_l) as f64 * delta;
        // λ = d / ε = d · 2^n_m (Eq. 16 + 19).
        let lambda = d * 2f64.powi(eps_shift as i32);
        let lap_cfg = FxpLaplaceConfig::new(self.cfg.bu - 1, self.cfg.word_bits, delta, lambda)
            .map_err(DpBoxError::Rng)?;
        let range = QuantizedRange::new(r_l, r_u, delta).map_err(DpBoxError::Privacy)?;
        // The table is a pure function of (config, range, multiples, mode);
        // the memoized build makes repeated device construction — e.g. one
        // DP-Box per fault-campaign trial — O(1) after the first solve.
        let table =
            ldp_core::segment_table_cached(lap_cfg, range, &self.cfg.segment_multiples, self.mode)
                .map_err(DpBoxError::Privacy)?;
        let n_th_k = table.outermost().0;
        self.ctx = Some(NoisingCtx {
            lap_cfg,
            range,
            table,
            n_th_k,
        });
        self.dirty = false;
        Ok(())
    }

    /// Latches a health alarm: record it, stamp the FSM into the fail-safe
    /// phase, and void any staged (now uncertified) sample. The last
    /// *released* output is deliberately left intact — it becomes the cache
    /// the fault phase serves.
    fn trip(&mut self, alarm: HealthAlarm) {
        self.fault = Some(alarm);
        self.stats.health_alarms += 1;
        FAULT_TRANSITIONS.record_always(1);
        let cycle = self.cycles;
        self.record(TraceEvent::HealthAlarm { cycle, alarm });
        if self.phase != Phase::HealthFault {
            self.record_phase(self.phase, Phase::HealthFault);
            self.phase = Phase::HealthFault;
        }
        self.staged = None;
    }

    /// Draws one URNG word through the continuous health tests. A trip
    /// latches the fault phase; the word is still returned (the hardware
    /// pipeline has already consumed it) but its consumer's result is
    /// discarded by the early-outs on [`Phase::HealthFault`].
    fn draw_word(&mut self) -> u32 {
        let w = self.urng.next_u32();
        if let Some(h) = self.health.as_mut() {
            if !h.is_alarmed() {
                if let Err(alarm) = h.observe(w) {
                    self.trip(alarm);
                }
            }
        }
        w
    }

    /// Draws and stages one Laplace sample (sign + CORDIC `-ln u`), the
    /// work the waiting phase does ahead of time.
    ///
    /// The word-consumption pattern matches the pre-health pipeline
    /// bit-for-bit: one word for the sign (MSB), then one or two words for
    /// the `Bu−1` magnitude bits (high bits first), so seeded streams
    /// reproduce historical outputs exactly.
    fn stage_sample(&mut self) {
        let negative = self.draw_word() >> 31 == 1;
        let mag_bits = self.cfg.bu - 1;
        let m = if mag_bits <= 32 {
            u64::from(self.draw_word()) >> (32 - u32::from(mag_bits))
        } else {
            let hi = u64::from(self.draw_word());
            let lo = u64::from(self.draw_word());
            ((hi << 32) | lo) >> (64 - u32::from(mag_bits))
        } + 1;
        if self.phase == Phase::HealthFault {
            // The draw tripped the monitor: the sample is uncertified.
            return;
        }
        // u = m · 2^-(Bu-1) as a fixed-point word.
        let in_fmt =
            QFormat::new((mag_bits + 2).min(63), mag_bits).expect("Bu ≤ 53 keeps the format valid");
        let u = ulp_fixed::Fx::from_raw(m as i64, in_fmt).expect("m fits the word");
        let out_fmt = QFormat::new(40, LOG_FRAC).expect("valid log format");
        let ln_u = self
            .cordic
            .ln(u, out_fmt)
            .expect("u > 0 by construction")
            .raw();
        self.staged = Some(StagedSample {
            negative,
            neg_ln_raw: -ln_u,
        });
    }

    /// Converts the staged sample to a signed noise index on the datapath
    /// grid: `k = sign · ((d_raw · (-ln u)) >> LOG_FRAC) << n_m`, saturating
    /// to the output word.
    fn staged_noise_k(&self, staged: StagedSample) -> i64 {
        let d_raw = (self.r_u.unwrap_or(0) - self.r_l.unwrap_or(0)) as i128;
        let eps_shift = self.eps_shift.unwrap_or(0) as u32;
        let prod = d_raw * staged.neg_ln_raw as i128;
        // Round the LOG_FRAC-bit fraction away (hardware rounder), then
        // apply the ε shift.
        let half = 1i128 << (LOG_FRAC - 1);
        let mag = ((prod + half) >> LOG_FRAC) << eps_shift;
        let max = self.fmt.max_raw() as i128;
        let mag = mag.clamp(0, max) as i64;
        if staged.negative {
            -mag
        } else {
            mag
        }
    }

    /// Advances the clock by one cycle.
    pub fn tick(&mut self) {
        self.cycles += 1;
        // Budget replenishment timer runs in every phase after init.
        if self.phase != Phase::Initialization && self.replenish_period > 0 {
            self.since_replenish += 1;
            if self.since_replenish >= self.replenish_period {
                self.since_replenish = 0;
                if let Some(b) = self.budget {
                    self.remaining = b;
                    let cycle = self.cycles;
                    self.record(TraceEvent::Replenish { cycle });
                }
            }
        }
        if self.phase != Phase::Noising {
            return;
        }
        self.stats.busy_cycles += 1;
        self.noising_subcycle = self.noising_subcycle.saturating_add(1);
        if self.noising_subcycle == 1 {
            // Cycle 1: operand registers load.
            return;
        }
        // Cycle 2 onward: noising / resampling.
        let (range_min, range_max, n_th_k) = {
            let ctx = self.ctx.as_ref().expect("ctx built at StartNoising");
            (ctx.range.min_k(), ctx.range.max_k(), ctx.n_th_k)
        };
        if self.remaining <= 0.0 {
            if let Some(cached) = self.cache {
                self.finish(cached, true);
            } else {
                // "Halt": no output, return to waiting.
                self.record_phase(Phase::Noising, Phase::Waiting);
                self.phase = Phase::Waiting;
                self.ready = false;
                self.output = None;
            }
            return;
        }
        let staged = match self.staged.take() {
            Some(s) => s,
            None => {
                self.stage_sample();
                match self.staged.take() {
                    Some(s) => s,
                    // The health monitor tripped mid-draw: the FSM is in
                    // HealthFault and this request is abandoned unserved.
                    None => return,
                }
            }
        };
        let x = self.x_raw.expect("validated at StartNoising");
        let k = self.staged_noise_k(staged);
        let tmp = x
            .saturating_add(k)
            .clamp(self.fmt.min_raw(), self.fmt.max_raw());
        let (lo, hi) = (range_min - n_th_k, range_max + n_th_k);
        let in_window = tmp >= lo && tmp <= hi;
        match self.mode {
            LimitMode::Resampling if !in_window => {
                // Stage a new sample; next tick retries (+1 cycle each).
                self.stats.resamples += 1;
                let cycle = self.cycles;
                self.record(TraceEvent::Resample { cycle });
                self.stage_sample();
            }
            _ => {
                let y = if in_window { tmp } else { tmp.clamp(lo, hi) };
                let overshoot = if y < range_min {
                    range_min - y
                } else if y > range_max {
                    y - range_max
                } else {
                    0
                };
                let charge = self
                    .ctx
                    .as_ref()
                    .expect("ctx built at StartNoising")
                    .table
                    .charge_for_overshoot(overshoot);
                self.remaining -= charge;
                self.ledger.record(charge);
                self.accountant.record(charge);
                let cycle = self.cycles;
                let remaining = self.remaining;
                self.record(TraceEvent::BudgetCharge {
                    cycle,
                    charge,
                    remaining,
                });
                self.finish(y, false);
            }
        }
    }

    fn finish(&mut self, y: i64, from_cache: bool) {
        self.output = Some(y);
        self.ready = true;
        self.cache = Some(y);
        let cycle = self.cycles;
        self.record(TraceEvent::Output {
            cycle,
            value: y,
            from_cache,
        });
        self.record_phase(self.phase, Phase::Waiting);
        self.phase = Phase::Waiting;
        if from_cache {
            self.stats.cached += 1;
            CACHE_SERVES.inc();
        } else {
            self.stats.noisings += 1;
            NOISING_CYCLES.record(u64::from(self.noising_subcycle));
        }
        // Stage the next sample immediately on re-entering waiting.
        self.stage_sample();
    }

    /// Convenience driver: loads a sensor value, starts noising, and ticks
    /// until the output is ready. Returns `(noised_raw, cycles_taken)`.
    ///
    /// # Errors
    ///
    /// Propagates [`DpBox::issue`] errors; returns
    /// [`DpBoxError::BudgetExhausted`] when the device halts with no cached
    /// output, and [`DpBoxError::UrngHealthFault`] when the health monitor
    /// trips before this request could be served.
    pub fn noise_value(&mut self, x_raw: i64) -> Result<(i64, u64), DpBoxError> {
        self.issue(Command::SetSensorValue, x_raw)?;
        let start = self.cycles;
        self.issue(Command::StartNoising, 0)?;
        while self.phase == Phase::Noising {
            self.tick();
        }
        let taken = self.cycles - start;
        match self.output() {
            Some(y) => Ok((y, taken)),
            None => match self.fault {
                Some(alarm) => Err(DpBoxError::UrngHealthFault(alarm)),
                None => Err(DpBoxError::BudgetExhausted),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn configured_box(mode_toggles: u8) -> DpBox {
        let mut dev = DpBox::new(DpBoxConfig::default()).unwrap();
        dev.issue(Command::StartNoising, 0).unwrap(); // leave init
        dev.issue(Command::SetEpsilon, 1).unwrap(); // ε = 0.5
        dev.issue(Command::SetSensorRangeLower, 0).unwrap();
        dev.issue(Command::SetSensorRangeUpper, 320).unwrap(); // d = 10.0
        for _ in 0..mode_toggles {
            dev.issue(Command::SetThreshold, 0).unwrap();
        }
        dev
    }

    #[test]
    fn boots_in_initialization_phase() {
        let dev = DpBox::new(DpBoxConfig::default()).unwrap();
        assert_eq!(dev.phase(), Phase::Initialization);
        assert!(!dev.ready());
        assert_eq!(dev.output(), None);
    }

    #[test]
    fn config_validation() {
        let cfg = DpBoxConfig {
            segment_multiples: vec![],
            ..DpBoxConfig::default()
        };
        assert!(DpBox::new(cfg).is_err());
        let cfg = DpBoxConfig {
            segment_multiples: vec![2.0, 1.5],
            ..DpBoxConfig::default()
        };
        assert!(DpBox::new(cfg).is_err());
        let cfg = DpBoxConfig {
            bu: 2,
            ..DpBoxConfig::default()
        };
        assert!(DpBox::new(cfg).is_err());
        let cfg = DpBoxConfig {
            frac_bits: 25,
            ..DpBoxConfig::default()
        };
        assert!(DpBox::new(cfg).is_err());
    }

    #[test]
    fn init_phase_rejects_sensor_parameters() {
        let mut dev = DpBox::new(DpBoxConfig::default()).unwrap();
        assert!(matches!(
            dev.issue(Command::SetSensorValue, 5),
            Err(DpBoxError::WrongPhase(_))
        ));
    }

    #[test]
    fn two_cycle_noising_with_thresholding() {
        let mut dev = configured_box(1); // toggled once → thresholding
        assert_eq!(dev.mode(), LimitMode::Thresholding);
        for _ in 0..20 {
            let (_, cycles) = dev.noise_value(160).unwrap();
            assert_eq!(cycles, 2, "thresholding must take exactly 2 cycles");
        }
    }

    #[test]
    fn resampling_adds_cycles_only_when_out_of_window() {
        let mut dev = configured_box(0); // default resampling
        assert_eq!(dev.mode(), LimitMode::Resampling);
        let mut total_extra = 0u64;
        let n = 500;
        for _ in 0..n {
            let (_, cycles) = dev.noise_value(160).unwrap();
            assert!(cycles >= 2);
            total_extra += cycles - 2;
        }
        // Paper Fig. 11: resampling adds well under one cycle on average.
        assert!(
            (total_extra as f64 / n as f64) < 1.0,
            "average extra cycles {}",
            total_extra as f64 / n as f64
        );
        assert_eq!(dev.stats().resamples, total_extra);
    }

    #[test]
    fn output_stays_in_window() {
        let mut dev = configured_box(1);
        let n_th = dev.threshold_k();
        // Threshold is built lazily at first StartNoising.
        let (_, _) = dev.noise_value(0).unwrap();
        let n_th = n_th.or(dev.threshold_k()).unwrap();
        for _ in 0..2_000 {
            let (y, _) = dev.noise_value(0).unwrap();
            assert!(y >= -n_th && y <= 320 + n_th, "y = {y} outside window");
        }
    }

    #[test]
    fn busy_device_rejects_commands() {
        let mut dev = configured_box(1);
        dev.issue(Command::SetSensorValue, 100).unwrap();
        dev.issue(Command::StartNoising, 0).unwrap();
        assert_eq!(dev.phase(), Phase::Noising);
        assert!(matches!(
            dev.issue(Command::SetEpsilon, 2),
            Err(DpBoxError::Busy)
        ));
        // DoNothing is always accepted.
        dev.issue(Command::DoNothing, 0).unwrap();
    }

    #[test]
    fn missing_parameters_are_reported() {
        let mut dev = DpBox::new(DpBoxConfig::default()).unwrap();
        dev.issue(Command::StartNoising, 0).unwrap();
        dev.issue(Command::SetSensorValue, 10).unwrap(); // x alone is fine
        let err = dev.issue(Command::StartNoising, 0).unwrap_err();
        assert!(matches!(err, DpBoxError::MissingParameters(_)));
    }

    #[test]
    fn budget_exhaustion_serves_cache() {
        let cfg = DpBoxConfig {
            seed: 7,
            ..DpBoxConfig::default()
        };
        let mut dev = DpBox::new(cfg).unwrap();
        // Budget: 3.0 nats = 96 grid units at Δ = 1/32.
        dev.issue(Command::SetEpsilon, 96).unwrap();
        dev.issue(Command::StartNoising, 0).unwrap();
        dev.issue(Command::SetEpsilon, 1).unwrap();
        dev.issue(Command::SetSensorRangeLower, 0).unwrap();
        dev.issue(Command::SetSensorRangeUpper, 320).unwrap();
        dev.issue(Command::SetThreshold, 0).unwrap(); // thresholding
        let mut outputs = Vec::new();
        for _ in 0..40 {
            outputs.push(dev.noise_value(160).unwrap().0);
        }
        let stats = dev.stats();
        assert!(stats.cached > 0, "budget should run out within 40 requests");
        assert!(stats.noisings > 0);
        // All cached replies equal the last fresh output.
        let last_fresh: Vec<i64> = outputs[..stats.noisings as usize].to_vec();
        for &y in &outputs[stats.noisings as usize..] {
            assert_eq!(y, *last_fresh.last().unwrap());
        }
    }

    #[test]
    fn replenishment_restores_budget() {
        let cfg = DpBoxConfig {
            seed: 9,
            ..DpBoxConfig::default()
        };
        let mut dev = DpBox::new(cfg).unwrap();
        dev.issue(Command::SetEpsilon, 64).unwrap(); // budget 2.0 nats
        dev.issue(Command::SetSensorRangeUpper, 1_000).unwrap(); // period
        dev.issue(Command::StartNoising, 0).unwrap();
        dev.issue(Command::SetEpsilon, 1).unwrap();
        dev.issue(Command::SetSensorRangeLower, 0).unwrap();
        dev.issue(Command::SetSensorRangeUpper, 320).unwrap();
        dev.issue(Command::SetThreshold, 0).unwrap();
        // Exhaust the budget.
        while dev.remaining_budget() > 0.0 {
            dev.noise_value(160).unwrap();
        }
        let cached_before = dev.stats().cached;
        dev.noise_value(160).unwrap();
        assert_eq!(dev.stats().cached, cached_before + 1);
        // Idle for a full replenishment period.
        for _ in 0..1_000 {
            dev.tick();
        }
        assert!(dev.remaining_budget() > 0.0, "budget must replenish");
        dev.noise_value(160).unwrap();
        assert_eq!(dev.stats().cached, cached_before + 1, "fresh noise again");
    }

    #[test]
    fn epsilon_shift_scales_noise() {
        // Larger n_m → smaller ε → more noise.
        let spread = |n_m: i64, seed: u64| -> f64 {
            let cfg = DpBoxConfig {
                seed,
                ..DpBoxConfig::default()
            };
            let mut dev = DpBox::new(cfg).unwrap();
            dev.issue(Command::StartNoising, 0).unwrap();
            dev.issue(Command::SetEpsilon, n_m).unwrap();
            dev.issue(Command::SetSensorRangeLower, 0).unwrap();
            dev.issue(Command::SetSensorRangeUpper, 320).unwrap();
            dev.issue(Command::SetThreshold, 0).unwrap();
            let n = 800;
            let xs: Vec<f64> = (0..n)
                .map(|_| dev.noise_value(160).unwrap().0 as f64 - 160.0)
                .collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64).sqrt()
        };
        let tight = spread(0, 11); // ε = 1
        let loose = spread(2, 12); // ε = 0.25
        assert!(
            loose > 1.5 * tight,
            "ε=0.25 spread {loose} vs ε=1 spread {tight}"
        );
    }

    #[test]
    fn ledger_audits_against_accountant() {
        let cfg = DpBoxConfig {
            seed: 7,
            ..DpBoxConfig::default()
        };
        let mut dev = DpBox::new(cfg).unwrap();
        dev.issue(Command::SetEpsilon, 96).unwrap(); // budget 3.0 nats
        dev.issue(Command::StartNoising, 0).unwrap();
        dev.issue(Command::SetEpsilon, 1).unwrap();
        dev.issue(Command::SetSensorRangeLower, 0).unwrap();
        dev.issue(Command::SetSensorRangeUpper, 320).unwrap();
        dev.issue(Command::SetThreshold, 0).unwrap();
        for _ in 0..40 {
            dev.noise_value(160).unwrap();
        }
        let stats = dev.stats();
        assert!(stats.cached > 0, "budget should exhaust within 40 requests");
        // Only fresh outputs are charged; cached replays are free.
        assert_eq!(dev.ledger().len() as u64, stats.noisings);
        dev.audit().expect("ledger matches accountant");
        assert_eq!(
            dev.ledger().total().to_bits(),
            dev.accountant().total().to_bits()
        );
        assert!(dev.ledger().total() > 0.0, "charges were made");
    }

    #[test]
    fn output_value_converts_units() {
        let mut dev = configured_box(1);
        let (raw, _) = dev.noise_value(160).unwrap();
        let v = dev.output_value().unwrap();
        assert!((v - raw as f64 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn noise_distribution_matches_fxp_model() {
        // The hardware pipeline (CORDIC + shift scaling) must land within a
        // step of the analytic FxP model almost always: compare standard
        // deviations against the ideal Laplace.
        let mut dev = configured_box(1);
        let n = 4_000;
        let xs: Vec<f64> = (0..n)
            .map(|_| (dev.noise_value(160).unwrap().0 - 160) as f64 / 32.0)
            .collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let sd = (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64).sqrt();
        // Thresholded Lap(20) loses some tail mass, so σ < √2·λ = 28.3 but
        // must stay in its vicinity.
        assert!(sd > 15.0 && sd < 30.0, "σ = {sd}");
    }
}
