//! Error types for the DP-Box device model.

use core::fmt;

use ldp_core::LdpError;
use ulp_rng::{HealthAlarm, RngError};

/// Error raised by the DP-Box port interface or configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum DpBoxError {
    /// A synthesis-time configuration parameter is invalid.
    InvalidConfig(&'static str),
    /// The command is not valid in the current phase.
    WrongPhase(&'static str),
    /// The device is in the noising phase; only `DoNothing` is accepted.
    Busy,
    /// An input-port operand does not fit the datapath word.
    ValueOutOfRange {
        /// The rejected operand.
        value: i64,
        /// The datapath width.
        bits: u8,
    },
    /// `StartNoising` was issued before a required parameter was loaded.
    MissingParameters(&'static str),
    /// The privacy budget is spent and no cached output exists.
    BudgetExhausted,
    /// The URNG health monitor has tripped: the distributional ε guarantee
    /// can no longer be certified, so the device refuses to emit fresh
    /// noised outputs until an explicit `ResetHealth` retest passes.
    UrngHealthFault(HealthAlarm),
    /// A privacy-analysis error (threshold/segment solving).
    Privacy(LdpError),
    /// An RNG-substrate error.
    Rng(RngError),
}

impl fmt::Display for DpBoxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpBoxError::InvalidConfig(msg) => write!(f, "invalid DP-Box configuration: {msg}"),
            DpBoxError::WrongPhase(msg) => write!(f, "command not valid in this phase: {msg}"),
            DpBoxError::Busy => write!(f, "device is noising; only DoNothing is accepted"),
            DpBoxError::ValueOutOfRange { value, bits } => {
                write!(f, "operand {value} does not fit a {bits}-bit word")
            }
            DpBoxError::MissingParameters(what) => {
                write!(f, "start-noising issued before loading {what}")
            }
            DpBoxError::BudgetExhausted => {
                write!(f, "privacy budget exhausted with no cached output")
            }
            DpBoxError::UrngHealthFault(alarm) => {
                write!(f, "fresh noising refused: {alarm}")
            }
            DpBoxError::Privacy(e) => write!(f, "privacy analysis error: {e}"),
            DpBoxError::Rng(e) => write!(f, "rng error: {e}"),
        }
    }
}

impl std::error::Error for DpBoxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DpBoxError::Privacy(e) => Some(e),
            DpBoxError::Rng(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LdpError> for DpBoxError {
    fn from(e: LdpError) -> Self {
        DpBoxError::Privacy(e)
    }
}

impl From<RngError> for DpBoxError {
    fn from(e: RngError) -> Self {
        DpBoxError::Rng(e)
    }
}
