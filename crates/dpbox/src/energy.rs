//! Latency and energy model (Sections III-D and V).
//!
//! The paper synthesizes DP-Box in 65 nm at 16 MHz and compares against
//! software noising on an MSP430-class microcontroller:
//!
//! * hardware: 10431 gates, 158.3 µW, 58.66 ns critical path; noising in 2
//!   cycles, conservatively accounted as 4 (one memory write + one read on
//!   the host side);
//! * software, 20-bit fixed point: 4043 cycles;
//! * software, half-precision float: 1436 cycles;
//! * reported energy benefits: 894× and 318× respectively.
//!
//! We model energy as `cycles × cycle_time × active_power`. The MSP430
//! active power is not stated in the paper; 140 µW at 16 MHz is the unique
//! value consistent with *both* published ratios (894× and 318×), so the
//! model uses it and the tests pin the two ratios.

/// Implementation style being costed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Implementation {
    /// The DP-Box hardware module.
    HardwareDpBox,
    /// Software noising with 20-bit fixed-point arithmetic.
    SoftwareFixedPoint,
    /// Software noising with half-precision floating point.
    SoftwareHalfFloat,
}

/// A latency/energy cost model for one noising operation.
///
/// # Examples
///
/// ```
/// use dp_box::{EnergyModel, Implementation};
///
/// let model = EnergyModel::paper_65nm();
/// let hw = model.energy_per_noising(Implementation::HardwareDpBox, 0);
/// let sw = model.energy_per_noising(Implementation::SoftwareFixedPoint, 0);
/// // The paper's headline: ~894× energy advantage.
/// assert!((sw / hw / 894.0 - 1.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Clock frequency in Hz (both sides run at 16 MHz in the paper).
    pub clock_hz: f64,
    /// DP-Box active power in watts.
    pub dpbox_power_w: f64,
    /// Microcontroller active power in watts.
    pub mcu_power_w: f64,
    /// Host-visible DP-Box cycles per noising (conservative 4 in the paper).
    pub hw_cycles: u64,
    /// Software fixed-point cycles per noising.
    pub sw_fxp_cycles: u64,
    /// Software half-float cycles per noising.
    pub sw_half_cycles: u64,
    /// Gate count of the synthesized module (for area reporting).
    pub gate_count: u64,
}

impl EnergyModel {
    /// The 65 nm / 16 MHz operating point of Section V.
    pub fn paper_65nm() -> Self {
        EnergyModel {
            clock_hz: 16.0e6,
            dpbox_power_w: 158.3e-6,
            mcu_power_w: 140.0e-6,
            hw_cycles: 4,
            sw_fxp_cycles: 4043,
            sw_half_cycles: 1436,
            gate_count: 10_431,
        }
    }

    /// The relaxed-timing variant mentioned in Section V (30 ns critical
    /// path, 9621 gates, 252 µW).
    pub fn paper_65nm_relaxed() -> Self {
        EnergyModel {
            dpbox_power_w: 252.0e-6,
            gate_count: 9_621,
            ..Self::paper_65nm()
        }
    }

    /// Cycles one noising takes, including `resamples` extra cycles for the
    /// hardware (software implementations pay the full sampling cost per
    /// redraw).
    pub fn cycles_per_noising(&self, imp: Implementation, resamples: u64) -> u64 {
        match imp {
            Implementation::HardwareDpBox => self.hw_cycles + resamples,
            Implementation::SoftwareFixedPoint => self.sw_fxp_cycles * (1 + resamples),
            Implementation::SoftwareHalfFloat => self.sw_half_cycles * (1 + resamples),
        }
    }

    /// Latency of one noising in seconds.
    pub fn latency_per_noising(&self, imp: Implementation, resamples: u64) -> f64 {
        self.cycles_per_noising(imp, resamples) as f64 / self.clock_hz
    }

    /// Energy of one noising in joules.
    pub fn energy_per_noising(&self, imp: Implementation, resamples: u64) -> f64 {
        let power = match imp {
            Implementation::HardwareDpBox => self.dpbox_power_w,
            _ => self.mcu_power_w,
        };
        self.latency_per_noising(imp, resamples) * power
    }

    /// Energy ratio of a software implementation to the hardware DP-Box
    /// (the paper's "energy benefit").
    pub fn energy_benefit(&self, sw: Implementation) -> f64 {
        self.energy_per_noising(sw, 0) / self.energy_per_noising(Implementation::HardwareDpBox, 0)
    }

    /// Total session energy (joules) for a device's activity counters, per
    /// implementation: each fresh noising at its base cost, each resample
    /// at its *marginal* cost (one cycle in hardware, a full re-run in
    /// software), and each cached reply at one memory-read's worth (a
    /// single hardware cycle).
    pub fn session_energy(&self, imp: Implementation, stats: &crate::DpBoxStats) -> f64 {
        let base = self.energy_per_noising(imp, 0);
        let marginal_resample = self.energy_per_noising(imp, 1) - base;
        let cached_read = self.dpbox_power_w / self.clock_hz; // one cycle of the module
        stats.noisings as f64 * base
            + stats.resamples as f64 * marginal_resample
            + stats.cached as f64 * cached_read
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::paper_65nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_894x_fixed_point_benefit() {
        let m = EnergyModel::paper_65nm();
        let benefit = m.energy_benefit(Implementation::SoftwareFixedPoint);
        assert!(
            (benefit / 894.0 - 1.0).abs() < 0.01,
            "fixed-point benefit {benefit}"
        );
    }

    #[test]
    fn reproduces_318x_half_float_benefit() {
        let m = EnergyModel::paper_65nm();
        let benefit = m.energy_benefit(Implementation::SoftwareHalfFloat);
        assert!(
            (benefit / 318.0 - 1.0).abs() < 0.01,
            "half-float benefit {benefit}"
        );
    }

    #[test]
    fn hardware_latency_is_microseconds_scale() {
        let m = EnergyModel::paper_65nm();
        let l = m.latency_per_noising(Implementation::HardwareDpBox, 0);
        assert!((l - 4.0 / 16.0e6).abs() < 1e-12);
    }

    #[test]
    fn resamples_add_single_cycles_in_hardware_only() {
        let m = EnergyModel::paper_65nm();
        let hw0 = m.cycles_per_noising(Implementation::HardwareDpBox, 0);
        let hw3 = m.cycles_per_noising(Implementation::HardwareDpBox, 3);
        assert_eq!(hw3 - hw0, 3);
        let sw0 = m.cycles_per_noising(Implementation::SoftwareFixedPoint, 0);
        let sw1 = m.cycles_per_noising(Implementation::SoftwareFixedPoint, 1);
        assert_eq!(sw1, 2 * sw0, "software repeats the full sampling routine");
    }

    #[test]
    fn session_energy_accounts_all_activity() {
        let m = EnergyModel::paper_65nm();
        let stats = crate::DpBoxStats {
            noisings: 100,
            cached: 10,
            resamples: 5,
            busy_cycles: 0,
            health_alarms: 0,
        };
        let hw = m.session_energy(Implementation::HardwareDpBox, &stats);
        // 100 noisings × 4 cycles + 5 resample cycles + 10 read cycles,
        // all at the DP-Box power.
        let cycles = 100.0 * 4.0 + 5.0 + 10.0;
        let want = cycles / m.clock_hz * m.dpbox_power_w;
        assert!((hw / want - 1.0).abs() < 1e-12, "hw {hw} vs {want}");
        // Software pays the full routine per resample — much more energy.
        let sw = m.session_energy(Implementation::SoftwareFixedPoint, &stats);
        assert!(sw > 500.0 * hw);
    }

    #[test]
    fn relaxed_variant_trades_power_for_area() {
        let tight = EnergyModel::paper_65nm();
        let relaxed = EnergyModel::paper_65nm_relaxed();
        assert!(relaxed.gate_count < tight.gate_count);
        assert!(relaxed.dpbox_power_w > tight.dpbox_power_w);
    }
}
