//! DP-Box: a cycle-level simulator of the ISCA'18 hardware module for local
//! differential privacy on ultra-low-power systems.
//!
//! The DP-Box sits between a sensor and untrusted software, releasing only
//! noised readings. This crate models it at the port level:
//!
//! * [`Command`] — the 3-bit command port (Section IV-A), with
//!   initialization-phase overloads for budget and replenishment period;
//! * [`DpBox`] — the device FSM (initialization → waiting → noising,
//!   Section IV-C) with the real noise datapath: Tausworthe URNG →
//!   single-cycle CORDIC logarithm → shift-based `ε = 2^-n_m` scaling
//!   (Eq. 16–19), resampling/thresholding window enforcement, embedded
//!   budget control with output caching and timed replenishment;
//! * [`EnergyModel`] — the latency/energy cost model of Sections III-D
//!   and V, reproducing the paper's 894×/318× energy benefits over
//!   software noising.
//!
//! # Quickstart
//!
//! ```
//! use dp_box::{Command, DpBox, DpBoxConfig};
//!
//! let mut dev = DpBox::new(DpBoxConfig::default())?;
//! dev.issue(Command::StartNoising, 0)?;          // leave initialization
//! dev.issue(Command::SetEpsilon, 1)?;            // ε = 2^-1
//! dev.issue(Command::SetSensorRangeLower, 0)?;
//! dev.issue(Command::SetSensorRangeUpper, 320)?; // [0, 10.0] at Δ = 1/32
//! dev.issue(Command::SetThreshold, 0)?;          // toggle to thresholding
//!
//! let (noised, cycles) = dev.noise_value(160)?;
//! assert_eq!(cycles, 2); // load + noise, as synthesized
//! # let _ = noised;
//! # Ok::<(), dp_box::DpBoxError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
mod command;
mod device;
mod energy;
mod error;
mod trace;
mod vcd;

pub use array::{DeviceArray, DeviceArrayConfig, LaneOutcome};
pub use command::{Command, DecodeCommandError};
pub use device::{DpBox, DpBoxConfig, DpBoxStats, Phase};
pub use energy::{EnergyModel, Implementation};
pub use error::DpBoxError;
pub use trace::{Trace, TraceEvent};
pub use vcd::trace_to_vcd;
// Health-monitoring vocabulary, re-exported so device users can configure
// the monitor and inspect alarms without depending on `ulp-rng` directly.
pub use ulp_rng::{HealthAlarm, HealthConfig, HealthTest, UrngHealth};
