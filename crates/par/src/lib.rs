//! Offline-safe scoped data parallelism for the DP-Box evaluation suite.
//!
//! The regeneration binaries sweep (dataset × mechanism × ε × rep) grids
//! whose cells are mutually independent once each cell derives its own
//! seeded RNG stream. This crate provides the minimal `rayon`-style surface
//! those sweeps need — [`par_map`] and [`par_for_each`] over a slice — built
//! on `std::thread::scope` with a chunked work-stealing index counter, so it
//! works in the offline build environment with **no external dependencies**.
//!
//! # Determinism contract
//!
//! `par_map(items, f)` returns *exactly* the vector `items.iter().map(f)`
//! would: results are written back by item index, and `f` receives only the
//! item (no worker identity, no scheduling information). As long as `f` is a
//! pure function of its input — in this workspace, every evaluation cell
//! seeds a fresh [`Taus88`](https://docs.rs/) stream from data it owns — the
//! output is byte-identical for **any** thread count, including the serial
//! fallback. The workspace test suite asserts this for every rewired sweep.
//!
//! # Thread-count policy
//!
//! The pool width comes from, in priority order:
//!
//! 1. the `ULP_PAR_THREADS` environment variable (a positive integer;
//!    `1` forces the serial path, useful for determinism A/B runs),
//! 2. [`std::thread::available_parallelism`],
//! 3. a serial fallback of `1` if neither is available.
//!
//! A set-but-malformed `ULP_PAR_THREADS` (`0`, `"all"`, an empty string…)
//! is **rejected, never silently defaulted**: [`try_threads`] returns the
//! typed [`EnvError`] for binaries that want to report it, and [`threads`]
//! panics with the same message. The variable is read once per process.
//! Nested `par_map` calls from inside a worker run serially (no thread
//! explosion): the outermost sweep owns the pool.
//!
//! # Examples
//!
//! ```
//! let squares = ulp_par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! // Any explicit width gives the same bytes.
//! assert_eq!(squares, ulp_par::par_map_with(3, &[1u64, 2, 3, 4], |&x| x * x));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

pub use ulp_obs::EnvError;

/// Environment variable overriding the worker count (`1` = serial).
pub const THREADS_ENV: &str = "ULP_PAR_THREADS";

thread_local! {
    // Set while executing inside a worker; nested calls degrade to serial.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Parses a raw `ULP_PAR_THREADS` value: `None` (unset) selects the
/// machine default; a positive integer is honored; anything else is a
/// typed [`EnvError`].
///
/// # Errors
///
/// [`EnvError`] for a set value that is not a positive integer.
pub fn parse_threads(raw: Option<&str>) -> Result<usize, EnvError> {
    match raw {
        None => Ok(default_threads()),
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(EnvError {
                var: THREADS_ENV,
                value: v.to_owned(),
                expected: "a positive integer (1 = serial)",
            }),
        },
    }
}

/// The worker count [`threads`] would use, as a `Result`: binaries call
/// this at startup so a malformed `ULP_PAR_THREADS` is reported as a
/// proper error instead of a panic mid-sweep.
///
/// # Errors
///
/// [`EnvError`] for a set-but-malformed `ULP_PAR_THREADS`.
pub fn try_threads() -> Result<usize, EnvError> {
    match std::env::var(THREADS_ENV) {
        Ok(v) => parse_threads(Some(&v)),
        Err(std::env::VarError::NotPresent) => parse_threads(None),
        Err(std::env::VarError::NotUnicode(os)) => Err(EnvError {
            var: THREADS_ENV,
            value: os.to_string_lossy().into_owned(),
            expected: "a positive integer (1 = serial)",
        }),
    }
}

/// The worker count used by [`par_map`] / [`par_for_each`]: the
/// `ULP_PAR_THREADS` override if set to a positive integer, otherwise the
/// machine's available parallelism. Read once per process.
///
/// # Panics
///
/// Panics on a set-but-malformed `ULP_PAR_THREADS` — a misspelled
/// thread-count override must never be silently replaced by a different
/// pool width. Binaries that prefer an error value call [`try_threads`]
/// first.
pub fn threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| try_threads().unwrap_or_else(|e| panic!("{e}")))
}

/// Whether the calling thread is itself a pool worker (nested sweeps run
/// serially).
pub fn in_pool() -> bool {
    IN_POOL.with(Cell::get)
}

/// Maps `f` over `items` on up to [`threads`] workers, returning results in
/// item order — byte-identical to `items.iter().map(f).collect()` for any
/// thread count.
///
/// # Panics
///
/// A panic in `f` is propagated to the caller after the scope unwinds.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(threads(), items, f)
}

/// [`par_map`] with an explicit worker count (`1` runs inline with no
/// spawned threads). The result is independent of `threads`.
///
/// # Panics
///
/// A panic in `f` is propagated to the caller after the scope unwinds.
pub fn par_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.clamp(1, items.len().max(1));
    if workers == 1 || in_pool() {
        return items.iter().map(f).collect();
    }
    // Chunked work stealing: workers claim `chunk` contiguous indices at a
    // time from a shared counter, so imbalanced cells (e.g. dataset sizes
    // spanning 300 → 20k entries) do not serialize on the slowest worker.
    let chunk = (items.len() / (workers * 4)).max(1);
    let next = AtomicUsize::new(0);
    let f = &f;
    let mut labelled: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    IN_POOL.with(|flag| flag.set(true));
                    let mut local = Vec::new();
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + chunk).min(items.len());
                        for (i, item) in items.iter().enumerate().take(end).skip(start) {
                            local.push((i, f(item)));
                        }
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => labelled.extend(part),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    // Restore item order: each index was produced exactly once.
    labelled.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(labelled.len(), items.len());
    labelled.into_iter().map(|(_, r)| r).collect()
}

/// Runs `f` for every item on up to [`threads`] workers. Side effects must
/// be confined to the item (`f` only gets `&T`); use [`par_map`] to collect
/// results.
///
/// # Panics
///
/// A panic in `f` is propagated to the caller after the scope unwinds.
pub fn par_for_each<T, F>(items: &[T], f: F)
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    par_map_with(threads(), items, |t| f(t));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_for_every_width() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 0xA5).collect();
        for w in [1usize, 2, 3, 4, 7, 16, 300] {
            let par = par_map_with(w, &items, |&x| x.wrapping_mul(x) ^ 0xA5);
            assert_eq!(par, serial, "width {w}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        let empty: Vec<u32> = vec![];
        assert!(par_map_with(8, &empty, |&x| x).is_empty());
        assert_eq!(par_map_with(8, &[42u32], |&x| x + 1), vec![43]);
    }

    #[test]
    fn nested_calls_degrade_to_serial() {
        let outer: Vec<usize> = (0..8).collect();
        let nested = par_map_with(4, &outer, |&i| {
            assert!(in_pool(), "worker must be flagged as in-pool");
            // A nested sweep must not spawn (and must still be correct).
            par_map_with(4, &[1usize, 2, 3], |&x| x * i)
                .iter()
                .sum::<usize>()
        });
        let expected: Vec<usize> = outer.iter().map(|&i| 6 * i).collect();
        assert_eq!(nested, expected);
    }

    #[test]
    fn uneven_work_is_balanced_and_ordered() {
        // Heavily skewed per-item cost: correctness must not depend on which
        // worker claims which chunk.
        let items: Vec<u64> = (0..64).collect();
        let f = |&x: &u64| -> u64 {
            let mut acc = x;
            for _ in 0..(x % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        assert_eq!(
            par_map_with(5, &items, f),
            items.iter().map(f).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..32).collect();
        par_map_with(4, &items, |&x| {
            assert!(x != 17, "deliberate");
            x
        });
    }

    #[test]
    fn for_each_visits_every_item() {
        use std::sync::atomic::AtomicU64;
        let items: Vec<u64> = (1..=100).collect();
        let sum = AtomicU64::new(0);
        par_for_each(&items, |&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn threads_is_at_least_one() {
        assert!(threads() >= 1);
    }

    #[test]
    fn parse_threads_accepts_positive_integers() {
        assert_eq!(parse_threads(Some("1")).unwrap(), 1);
        assert_eq!(parse_threads(Some(" 8 ")).unwrap(), 8);
        assert!(parse_threads(None).unwrap() >= 1);
    }

    #[test]
    fn parse_threads_rejects_garbage_instead_of_defaulting() {
        for bad in ["0", "-2", "all", "", "4x", "1.5"] {
            let err = parse_threads(Some(bad)).unwrap_err();
            assert_eq!(err.var, THREADS_ENV, "{bad:?}");
            assert_eq!(err.value, bad);
        }
    }
}
