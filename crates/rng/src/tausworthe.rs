//! The combined Tausworthe generator (Taus88) used by the DP-Box.
//!
//! The paper's uniform random numbers come from "a Tausworthe random number
//! generator" (Section IV-B, citing the fixed-point RNG literature). Taus88
//! is L'Ecuyer's three-component maximally equidistributed combined LFSR
//! with period ≈ 2^88 — small state, shift/xor only, which is why it is the
//! standard choice for ULP hardware.

use ulp_obs::Counter;

use crate::source::{RandomBits, SplitMix64};

/// Uniform words drawn from Taus88 generators, process-wide.
static WORDS_DRAWN: Counter = Counter::new("rng.taus88.words_drawn");

/// L'Ecuyer's three-component combined Tausworthe generator (period ≈ 2^88).
///
/// # Examples
///
/// ```
/// use ulp_rng::{RandomBits, Taus88};
///
/// let mut rng = Taus88::from_seed(2018);
/// let a = rng.next_u32();
/// let b = rng.next_u32();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Taus88 {
    s1: u32,
    s2: u32,
    s3: u32,
}

impl Taus88 {
    /// Creates a generator from explicit component states.
    ///
    /// States below the per-component minima (2, 8, 16) would land in the
    /// degenerate all-zero LFSR cycle and are bumped up automatically, as
    /// hardware seeding logic does.
    pub fn from_state(s1: u32, s2: u32, s3: u32) -> Self {
        Taus88 {
            s1: s1.max(2),
            s2: s2.max(8),
            s3: s3.max(16),
        }
    }

    /// Creates a generator by expanding a 64-bit seed with SplitMix64.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self::from_state(
            (sm.next() >> 32) as u32,
            (sm.next() >> 32) as u32,
            (sm.next() >> 32) as u32,
        )
    }

    #[inline]
    fn step(&mut self) -> u32 {
        // L'Ecuyer (1996), "Maximally equidistributed combined Tausworthe
        // generators", Table 1 parameters.
        let b1 = ((self.s1 << 13) ^ self.s1) >> 19;
        self.s1 = ((self.s1 & 0xFFFF_FFFE) << 12) ^ b1;
        let b2 = ((self.s2 << 2) ^ self.s2) >> 25;
        self.s2 = ((self.s2 & 0xFFFF_FFF8) << 4) ^ b2;
        let b3 = ((self.s3 << 3) ^ self.s3) >> 11;
        self.s3 = ((self.s3 & 0xFFFF_FFF0) << 17) ^ b3;
        self.s1 ^ self.s2 ^ self.s3
    }
}

impl Taus88 {
    /// Fills `out` with the next words **without** counting them against
    /// the process-wide `rng.taus88.words_drawn` counter.
    ///
    /// This exists for batched consumers (the vectorized health startup)
    /// that pre-fill a buffer speculatively and only afterwards know how
    /// many words were really "drawn" by the scalar-equivalent computation;
    /// they account via [`Taus88::note_words_drawn`] once the count is
    /// final, keeping the counter bit-identical to the scalar path.
    pub(crate) fn fill_u32_uncounted(&mut self, out: &mut [u32]) {
        let (mut s1, mut s2, mut s3) = (self.s1, self.s2, self.s3);
        for w in out.iter_mut() {
            let b1 = ((s1 << 13) ^ s1) >> 19;
            s1 = ((s1 & 0xFFFF_FFFE) << 12) ^ b1;
            let b2 = ((s2 << 2) ^ s2) >> 25;
            s2 = ((s2 & 0xFFFF_FFF8) << 4) ^ b2;
            let b3 = ((s3 << 3) ^ s3) >> 11;
            s3 = ((s3 & 0xFFFF_FFF0) << 17) ^ b3;
            *w = s1 ^ s2 ^ s3;
        }
        (self.s1, self.s2, self.s3) = (s1, s2, s3);
    }

    /// Credits `n` words to the process-wide draw counter (see
    /// [`Taus88::fill_u32_uncounted`]).
    pub(crate) fn note_words_drawn(n: u64) {
        WORDS_DRAWN.add(n);
    }
}

impl RandomBits for Taus88 {
    fn next_u32(&mut self) -> u32 {
        WORDS_DRAWN.inc();
        self.step()
    }

    fn fill_u32(&mut self, out: &mut [u32]) {
        WORDS_DRAWN.add(out.len() as u64);
        // Same word sequence as repeated `next_u32`; the local copies let
        // the compiler keep the LFSR state in registers across the chunk.
        let (mut s1, mut s2, mut s3) = (self.s1, self.s2, self.s3);
        for w in out.iter_mut() {
            let b1 = ((s1 << 13) ^ s1) >> 19;
            s1 = ((s1 & 0xFFFF_FFFE) << 12) ^ b1;
            let b2 = ((s2 << 2) ^ s2) >> 25;
            s2 = ((s2 & 0xFFFF_FFF8) << 4) ^ b2;
            let b3 = ((s3 << 3) ^ s3) >> 11;
            s3 = ((s3 & 0xFFFF_FFF0) << 17) ^ b3;
            *w = s1 ^ s2 ^ s3;
        }
        (self.s1, self.s2, self.s3) = (s1, s2, s3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Taus88::from_seed(99);
        let mut b = Taus88::from_seed(99);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Taus88::from_seed(1);
        let mut b = Taus88::from_seed(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "seeds 1 and 2 produced {same}/64 equal words");
    }

    #[test]
    fn degenerate_states_are_repaired() {
        let mut rng = Taus88::from_state(0, 0, 0);
        // Must not get stuck at zero.
        let outputs: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert!(outputs.iter().any(|&w| w != 0));
    }

    #[test]
    fn mean_of_outputs_is_near_half_range() {
        let mut rng = Taus88::from_seed(7);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.next_u32() as f64).sum::<f64>() / n as f64;
        let expected = (u32::MAX as f64) / 2.0;
        assert!(
            (mean - expected).abs() / expected < 0.01,
            "mean {mean} too far from {expected}"
        );
    }

    #[test]
    fn bit_balance_per_position() {
        let mut rng = Taus88::from_seed(11);
        let n = 50_000;
        let mut ones = [0u32; 32];
        for _ in 0..n {
            let w = rng.next_u32();
            for (i, count) in ones.iter_mut().enumerate() {
                *count += (w >> i) & 1;
            }
        }
        for (i, &count) in ones.iter().enumerate() {
            let frac = count as f64 / n as f64;
            assert!(
                (frac - 0.5).abs() < 0.02,
                "bit {i} is biased: p(1) = {frac}"
            );
        }
    }

    #[test]
    fn serial_correlation_is_low() {
        let mut rng = Taus88::from_seed(13);
        let n = 50_000;
        let xs: Vec<f64> = (0..n)
            .map(|_| rng.next_u32() as f64 / u32::MAX as f64 - 0.5)
            .collect();
        let var: f64 = xs.iter().map(|x| x * x).sum::<f64>() / n as f64;
        let cov: f64 = xs.windows(2).map(|w| w[0] * w[1]).sum::<f64>() / (n - 1) as f64;
        assert!(
            (cov / var).abs() < 0.02,
            "lag-1 autocorrelation too high: {}",
            cov / var
        );
    }
}
