//! Xorshift64* — an alternative lightweight URNG.
//!
//! Included as a second hardware-plausible uniform source so experiments can
//! check that the privacy results do not depend on the specific LFSR family
//! (the LDP guarantee must hold for *any* uniform source; utility should be
//! indistinguishable between Taus88 and xorshift).

use crate::source::RandomBits;

/// Marsaglia's xorshift64* generator (period 2^64 − 1).
///
/// # Examples
///
/// ```
/// use ulp_rng::{RandomBits, Xorshift64Star};
///
/// let mut rng = Xorshift64Star::from_seed(1);
/// assert_ne!(rng.next_u64(), rng.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xorshift64Star {
    state: u64,
}

impl Xorshift64Star {
    /// Creates a generator from a seed; a zero seed (the degenerate fixed
    /// point) is replaced by a fixed non-zero constant.
    pub fn from_seed(seed: u64) -> Self {
        Xorshift64Star {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }
}

impl RandomBits for Xorshift64Star {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_repaired() {
        let mut rng = Xorshift64Star::from_seed(0);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Xorshift64Star::from_seed(5);
        let mut b = Xorshift64Star::from_seed(5);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn mean_is_near_half_range() {
        let mut rng = Xorshift64Star::from_seed(3);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.next_u32() as f64).sum::<f64>() / n as f64;
        let expected = (u32::MAX as f64) / 2.0;
        assert!((mean - expected).abs() / expected < 0.01);
    }
}
