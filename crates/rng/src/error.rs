//! Error types for the RNG substrate.

use core::fmt;

use ulp_fixed::FixedError;

/// Error produced by samplers and function generators in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RngError {
    /// The logarithm (or another domain-restricted function) was applied to
    /// a non-positive input.
    NonPositive,
    /// An invalid sampler configuration (word widths, scale) was supplied.
    InvalidConfig(&'static str),
    /// A domain-restricted function (survival, inverse survival) was called
    /// outside its documented domain.
    OutOfDomain(&'static str),
    /// An underlying fixed-point operation failed.
    Fixed(FixedError),
}

impl fmt::Display for RngError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RngError::NonPositive => write!(f, "input must be strictly positive"),
            RngError::InvalidConfig(msg) => write!(f, "invalid sampler configuration: {msg}"),
            RngError::OutOfDomain(msg) => write!(f, "argument outside function domain: {msg}"),
            RngError::Fixed(e) => write!(f, "fixed-point error: {e}"),
        }
    }
}

impl std::error::Error for RngError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RngError::Fixed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FixedError> for RngError {
    fn from(e: FixedError) -> Self {
        RngError::Fixed(e)
    }
}
