//! Ziggurat sampling for the standard exponential — the O(1) fast path
//! behind the *ideal* (continuous, `f64`) Laplace mechanism.
//!
//! Marsaglia & Tsang's 256-layer exponential ziggurat: the density is
//! covered by 255 equal-area horizontal rectangles plus an equal-area tail
//! region. A draw takes one uniform word; with probability ≈ 98.9% the word
//! lands strictly inside a rectangle and is accepted immediately (one
//! table compare, one multiply). The remaining ≈ 1.1% fall in a wedge or
//! the tail and pay an `exp`/`ln` — so the *expected* cost is a couple of
//! nanoseconds, an order of magnitude below inversion sampling's
//! unconditional `ln` per draw.
//!
//! The algorithm is exact for the continuous exponential up to the 32-bit
//! granularity of the per-layer uniform (the same granularity the classic
//! implementation and `rand`'s historical ziggurat use); the workspace's
//! *exactness* guarantees concern the fixed-point mechanisms, whose fast
//! path is the integer-exact [`crate::AliasTable`], not this sampler.

use std::sync::OnceLock;

use crate::source::RandomBits;

/// Right edge of the rectangular region; the tail `x > R` is sampled by
/// inversion (`R − ln u`).
const R: f64 = 7.697_117_470_131_487;
/// Area of each of the 256 equal-area pieces.
const V: f64 = 3.949_659_822_581_572e-3;
/// 2^32 as f64.
const M32: f64 = 4_294_967_296.0;

struct Tables {
    /// Acceptance thresholds: accept layer `i`'s word outright if below.
    ke: [u32; 256],
    /// Per-layer scale: `x = word · we[i]`.
    we: [f64; 256],
    /// Layer ordinates `exp(−x_i)` for the wedge test.
    fe: [f64; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut ke = [0u32; 256];
        let mut we = [0f64; 256];
        let mut fe = [0f64; 256];
        let mut de = R;
        let mut te = R;
        let q = V / (-de).exp();
        ke[0] = ((de / q) * M32) as u32;
        ke[1] = 0;
        we[0] = q / M32;
        we[255] = de / M32;
        fe[0] = 1.0;
        fe[255] = (-de).exp();
        for i in (1..=254).rev() {
            de = -(V / de + (-de).exp()).ln();
            ke[i + 1] = ((de / te) * M32) as u32;
            te = de;
            fe[i] = (-de).exp();
            we[i] = de / M32;
        }
        Tables { ke, we, fe }
    })
}

/// A uniform in `(0, 1)` from one 32-bit word (never exactly 0 or 1, so
/// `ln` stays finite).
#[inline]
fn uni<Rng: RandomBits + ?Sized>(rng: &mut Rng) -> f64 {
    (f64::from(rng.next_u32()) + 0.5) * (1.0 / M32)
}

/// The 256-layer exponential ziggurat (`Exp(1)`; scale at the call site).
///
/// # Examples
///
/// ```
/// use ulp_rng::{Taus88, ZigguratExp};
///
/// let zig = ZigguratExp::new();
/// let mut rng = Taus88::from_seed(7);
/// let x = zig.sample(&mut rng);
/// assert!(x >= 0.0 && x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ZigguratExp;

impl ZigguratExp {
    /// Creates the sampler (tables are process-wide and built once).
    pub fn new() -> Self {
        ZigguratExp
    }

    /// One `Exp(1)` draw. Consumes one `u32` word ≈ 98.9% of the time.
    #[inline]
    pub fn sample<Rng: RandomBits + ?Sized>(self, rng: &mut Rng) -> f64 {
        let t = tables();
        loop {
            let jz = rng.next_u32();
            let iz = (jz & 255) as usize;
            let x = f64::from(jz) * t.we[iz];
            if jz < t.ke[iz] {
                return x;
            }
            if iz == 0 {
                // Tail region: exponential beyond R by inversion.
                return R - uni(rng).ln();
            }
            // Wedge between the rectangle and the density.
            if t.fe[iz] + uni(rng) * (t.fe[iz - 1] - t.fe[iz]) < (-x).exp() {
                return x;
            }
        }
    }

    /// Resolves the non-immediate cases of one ziggurat round — the wedge
    /// and tail regions, ≈ 1.1% of draws — drawing further words
    /// individually. `#[cold]` keeps the hot accept path branch-lean.
    #[cold]
    fn finish_mag<Rng: RandomBits + ?Sized>(self, rng: &mut Rng, iz: usize, x: f64) -> f64 {
        if iz == 0 {
            // Tail region: exponential beyond R by inversion.
            return R - uni(rng).ln();
        }
        let t = tables();
        // Wedge between the rectangle and the density.
        if t.fe[iz] + uni(rng) * (t.fe[iz - 1] - t.fe[iz]) < (-x).exp() {
            return x;
        }
        // Rare second round.
        self.sample(rng)
    }

    /// One `Lap(0, lambda)` draw: a scaled exponential magnitude with a
    /// sign bit, consuming one `u64` word for sign + magnitude uniform.
    #[inline]
    pub fn sample_laplace<Rng: RandomBits + ?Sized>(self, rng: &mut Rng, lambda: f64) -> f64 {
        let t = tables();
        let w = rng.next_u64();
        let sign = w & 1 == 1;
        let jz = (w >> 32) as u32;
        let iz = (jz & 255) as usize;
        let x = f64::from(jz) * t.we[iz];
        let mag = if jz < t.ke[iz] {
            x
        } else {
            self.finish_mag(rng, iz, x)
        };
        if sign {
            -lambda * mag
        } else {
            lambda * mag
        }
    }

    /// Fills `out` with `Lap(0, lambda)` draws, pulling URNG words in bulk:
    /// one virtual [`RandomBits::fill_u32`] per 256-draw chunk instead of a
    /// virtual `next_u64` per draw — the virtual dispatch, not the ziggurat
    /// arithmetic, dominates per-draw sampling behind a `&mut dyn` source
    /// the compiler cannot devirtualize. Each chunk prefetches one ziggurat
    /// word per draw plus densely packed sign words (32 signs per word, so
    /// ≈ 1.03 words per draw instead of 2); the rare wedge/tail cases
    /// (≈ 1.1%) draw their extra words individually, exactly like
    /// [`ZigguratExp::sample_laplace`].
    pub fn fill_laplace(self, rng: &mut dyn RandomBits, lambda: f64, out: &mut [f64]) {
        const CHUNK: usize = 256;
        let t = tables();
        let mut words = [0u32; CHUNK + CHUNK / 32];
        let mut miss_idx = [0u16; CHUNK];
        let mut start = 0usize;
        while start < out.len() {
            let n = (out.len() - start).min(CHUNK);
            let sign_words = n.div_ceil(32);
            let w = &mut words[..sign_words + n];
            rng.fill_u32(w);
            let (signs, mags) = w.split_at(sign_words);
            // Pass 1 — the ≈ 98.9% immediate-accept path, call-free so it
            // pipelines: signed rectangle draws plus a branchless record of
            // the wedge/tail indices.
            let mut misses = 0usize;
            for (i, (slot, &jz)) in out[start..start + n].iter_mut().zip(mags).enumerate() {
                let sign = (signs[i >> 5] >> (i & 31)) & 1 == 1;
                let iz = (jz & 255) as usize;
                let x = f64::from(jz) * t.we[iz];
                *slot = if sign { -lambda * x } else { lambda * x };
                miss_idx[misses] = i as u16;
                misses += usize::from(jz >= t.ke[iz]);
            }
            // Pass 2 — resolve the recorded misses, drawing extra words
            // individually (same resolution as `sample_laplace`).
            for &i in &miss_idx[..misses] {
                let i = usize::from(i);
                let jz = mags[i];
                let iz = (jz & 255) as usize;
                let x = f64::from(jz) * t.we[iz];
                let mag = self.finish_mag(rng, iz, x);
                let sign = (signs[i >> 5] >> (i & 31)) & 1 == 1;
                out[start + i] = if sign { -lambda * mag } else { lambda * mag };
            }
            start += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tausworthe::Taus88;

    #[test]
    fn table_construction_is_sane() {
        let t = tables();
        // Layer abscissas grow toward index 255 (x_255 = R); ordinates
        // exp(−x_i) shrink correspondingly. Index 0 is the special
        // tail-area entry (we[0] = q/2^32 with q > R).
        for i in 1..255 {
            assert!(t.we[i] < t.we[i + 1], "x must increase with layer index");
            assert!(t.fe[i] > t.fe[i + 1], "f(x) must decrease with layer index");
        }
        assert!((t.we[255] * M32 - R).abs() < 1e-12);
        assert_eq!(t.fe[0], 1.0);
    }

    #[test]
    fn moments_match_exp1() {
        let zig = ZigguratExp::new();
        let mut rng = Taus88::from_seed(0x2166);
        let n = 1_000_000;
        let (mut sum, mut sum2, mut tail) = (0.0f64, 0.0f64, 0u32);
        for _ in 0..n {
            let x = zig.sample(&mut rng);
            assert!(x >= 0.0);
            sum += x;
            sum2 += x * x;
            if x > 1.0 {
                tail += 1;
            }
        }
        let mean = sum / f64::from(n);
        let var = sum2 / f64::from(n) - mean * mean;
        assert!((mean - 1.0).abs() < 5e-3, "mean {mean}");
        assert!((var - 1.0).abs() < 1.5e-2, "var {var}");
        // P(X > 1) = e^{-1} ≈ 0.3679.
        let p = f64::from(tail) / f64::from(n);
        assert!((p - (-1.0f64).exp()).abs() < 2e-3, "tail prob {p}");
    }

    #[test]
    fn histogram_matches_exp1_density() {
        // Chi-square over 40 bins of width 0.25 covering [0, 10].
        let zig = ZigguratExp::new();
        let mut rng = Taus88::from_seed(0xB1A5);
        let n = 500_000usize;
        let width = 0.25;
        let mut counts = [0u64; 40];
        for _ in 0..n {
            let x = zig.sample(&mut rng);
            let b = (x / width) as usize;
            if b < counts.len() {
                counts[b] += 1;
            }
        }
        let mut chi2 = 0.0;
        let mut df = 0usize;
        for (b, &c) in counts.iter().enumerate() {
            let lo = b as f64 * width;
            let e = n as f64 * ((-lo).exp() - (-(lo + width)).exp());
            if e < 5.0 {
                continue;
            }
            chi2 += (c as f64 - e) * (c as f64 - e) / e;
            df += 1;
        }
        assert!(df > 20, "degenerate binning: df = {df}");
        let bound = df as f64 + 6.0 * (2.0 * df as f64).sqrt();
        assert!(chi2 < bound, "chi2 {chi2:.1} vs bound {bound:.1} (df {df})");
    }

    #[test]
    fn bulk_fill_matches_the_laplace_law() {
        // The bulk path draws its words in a different order than repeated
        // `sample_laplace` calls (pairwise from a prefetched buffer), so it
        // is checked against the *law*, not the single-draw stream.
        let zig = ZigguratExp::new();
        let mut rng = Taus88::from_seed(0xF111);
        let lambda = 2.25;
        let mut buf = vec![0.0f64; 400_000];
        zig.fill_laplace(&mut rng, lambda, &mut buf);
        let n = buf.len() as f64;
        let mean = buf.iter().sum::<f64>() / n;
        let abs_mean = buf.iter().map(|x| x.abs()).sum::<f64>() / n;
        let neg = buf.iter().filter(|&&x| x < 0.0).count() as f64 / n;
        assert!(mean.abs() < 0.05 * lambda, "mean {mean}");
        assert!((abs_mean / lambda - 1.0).abs() < 0.01, "E|x| {abs_mean}");
        assert!((neg - 0.5).abs() < 0.005, "negative fraction {neg}");
        // Odd lengths and tiny buffers exercise the chunk boundary.
        for len in [0usize, 1, 2, 255, 256, 257, 511] {
            let mut small = vec![0.0f64; len];
            zig.fill_laplace(&mut rng, lambda, &mut small);
            assert!(small.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn laplace_draws_are_symmetric_and_scaled() {
        let zig = ZigguratExp::new();
        let mut rng = Taus88::from_seed(0x1A91);
        let lambda = 3.5;
        let n = 400_000;
        let (mut sum, mut abs_sum, mut neg) = (0.0f64, 0.0f64, 0u32);
        for _ in 0..n {
            let x = zig.sample_laplace(&mut rng, lambda);
            sum += x;
            abs_sum += x.abs();
            if x < 0.0 {
                neg += 1;
            }
        }
        let mean = sum / f64::from(n);
        // E|Lap(λ)| = λ; mean 0; sign balanced.
        assert!(mean.abs() < 0.05 * lambda, "mean {mean}");
        assert!(
            (abs_sum / f64::from(n) / lambda - 1.0).abs() < 0.01,
            "E|x| {}",
            abs_sum / f64::from(n)
        );
        let frac = f64::from(neg) / f64::from(n);
        assert!((frac - 0.5).abs() < 0.005, "negative fraction {frac}");
    }
}
