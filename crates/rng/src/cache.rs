//! Process-wide memoization of exact noise PMFs and alias tables.
//!
//! The exact [`FxpNoisePmf`] is the trust anchor of every privacy-loss
//! computation in this workspace: the evaluation sweeps re-derive it for the
//! same [`FxpLaplaceConfig`] in every (dataset × mechanism × ε × rep) cell.
//! Because the PMF is a *pure function* of its configuration, caching is
//! semantically invisible — [`cached_pmf`] returns a value structurally
//! equal to a fresh [`FxpNoisePmf::closed_form`] (asserted by the workspace
//! cache-coherence tests) and never changes any downstream byte. The same
//! argument covers [`cached_alias_full`] / [`cached_alias_window`]: an
//! [`AliasTable`] is a pure function of the PMF (itself pure in the config)
//! and the window bounds.
//!
//! # Key and invalidation
//!
//! The key is the full configuration — `(Bu, By, Δ, λ)` with the `f64`
//! fields compared by **bit pattern** (`f64::to_bits`), so two
//! configurations share an entry iff they are bit-identical. Entries are
//! immutable (`Arc`-shared) and never invalidated: a PMF can only become
//! stale if its config changes, and a changed config is a different key.
//!
//! # Locking
//!
//! All maps live behind `RwLock`s: after warm-up every access is a read
//! lock, so parallel sweep cells never serialize on the cache. Writers
//! build outside the lock and insert with `entry().or_insert()` — a racing
//! duplicate build is discarded, and both callers observe the same `Arc`.
//!
//! A panic while holding a lock poisons it; since every cached value is
//! immutable once inserted (`Arc`-shared, never mutated in place), a
//! poisoned map is still structurally sound, so the accessors recover the
//! guard with [`std::sync::PoisonError::into_inner`] instead of wedging
//! every subsequent sweep cell. Each recovery is counted
//! (`rng.cache.poison_recoveries`, recorded at every metrics level).

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

use ulp_obs::Counter;

use crate::alias::AliasTable;
use crate::error::RngError;
use crate::fxp::FxpLaplaceConfig;
use crate::pmf::FxpNoisePmf;

static PMF_HITS: Counter = Counter::new("rng.cache.pmf.hits");
static PMF_MISSES: Counter = Counter::new("rng.cache.pmf.misses");
static ALIAS_HITS: Counter = Counter::new("rng.cache.alias.hits");
static ALIAS_MISSES: Counter = Counter::new("rng.cache.alias.misses");
static GRID_HITS: Counter = Counter::new("rng.cache.grid.hits");
static GRID_MISSES: Counter = Counter::new("rng.cache.grid.misses");
static POISON_RECOVERIES: Counter = Counter::new("rng.cache.poison_recoveries");

/// Read-locks a cache map, recovering (and counting) a poisoned lock.
fn read_lock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| {
        POISON_RECOVERIES.record_always(1);
        e.into_inner()
    })
}

/// Write-locks a cache map, recovering (and counting) a poisoned lock.
fn write_lock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| {
        POISON_RECOVERIES.record_always(1);
        e.into_inner()
    })
}

/// Bit-exact cache key for a [`FxpLaplaceConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PmfKey {
    bu: u8,
    by: u8,
    delta_bits: u64,
    lambda_bits: u64,
    enumerated: bool,
}

impl PmfKey {
    fn new(cfg: FxpLaplaceConfig, enumerated: bool) -> Self {
        PmfKey {
            bu: cfg.bu(),
            by: cfg.by(),
            delta_bits: cfg.delta().to_bits(),
            lambda_bits: cfg.lambda().to_bits(),
            enumerated,
        }
    }
}

/// Cache key for an alias table: the PMF key plus the (optional) window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct AliasKey {
    pmf: PmfKey,
    window: Option<(i64, i64)>,
}

type PmfMap = RwLock<HashMap<PmfKey, Arc<FxpNoisePmf>>>;
type AliasMap = RwLock<HashMap<AliasKey, Arc<AliasTable>>>;
/// Rounded-continuous-Laplace tables, keyed by the scale's bit pattern.
type GridMap = RwLock<HashMap<u64, Arc<AliasTable>>>;

fn cache() -> &'static PmfMap {
    static CACHE: OnceLock<PmfMap> = OnceLock::new();
    CACHE.get_or_init(|| RwLock::new(HashMap::new()))
}

fn alias_cache() -> &'static AliasMap {
    static CACHE: OnceLock<AliasMap> = OnceLock::new();
    CACHE.get_or_init(|| RwLock::new(HashMap::new()))
}

fn grid_cache() -> &'static GridMap {
    static CACHE: OnceLock<GridMap> = OnceLock::new();
    CACHE.get_or_init(|| RwLock::new(HashMap::new()))
}

/// The closed-form (Eq. 11) PMF for `cfg`, memoized process-wide.
///
/// Structurally equal to `FxpNoisePmf::closed_form(cfg)`; the `Arc` lets
/// concurrent evaluation cells share one copy.
pub fn cached_pmf(cfg: FxpLaplaceConfig) -> Arc<FxpNoisePmf> {
    let key = PmfKey::new(cfg, false);
    if let Some(hit) = read_lock(cache()).get(&key) {
        PMF_HITS.inc();
        return Arc::clone(hit);
    }
    PMF_MISSES.inc();
    // Build outside the lock: closed_form is O(support) exp() calls and
    // concurrent workers frequently miss on the same key at startup.
    let pmf = Arc::new(FxpNoisePmf::closed_form(cfg));
    Arc::clone(write_lock(cache()).entry(key).or_insert(pmf))
}

/// The exhaustively enumerated PMF for `cfg`, memoized process-wide — one
/// `O(2^Bu)` enumeration is shared by every subsequent solve at any ε.
///
/// # Errors
///
/// [`RngError::InvalidConfig`] if `Bu > 26` (see
/// [`FxpNoisePmf::by_enumeration`]).
pub fn cached_enumerated_pmf(cfg: FxpLaplaceConfig) -> Result<Arc<FxpNoisePmf>, RngError> {
    let key = PmfKey::new(cfg, true);
    if let Some(hit) = read_lock(cache()).get(&key) {
        PMF_HITS.inc();
        return Ok(Arc::clone(hit));
    }
    PMF_MISSES.inc();
    let pmf = Arc::new(FxpNoisePmf::by_enumeration(cfg)?);
    Ok(Arc::clone(write_lock(cache()).entry(key).or_insert(pmf)))
}

/// The alias table over the full signed support of `cfg`'s exact PMF,
/// memoized process-wide.
///
/// Structurally equal to `AliasTable::from_pmf(&cached_pmf(cfg))`.
///
/// # Errors
///
/// Propagates [`AliasTable::from_pmf`] construction errors (only
/// reachable for pathological widths). Errors are not cached.
pub fn cached_alias_full(cfg: FxpLaplaceConfig) -> Result<Arc<AliasTable>, RngError> {
    cached_alias(cfg, None)
}

/// The alias table for the conditional law of `cfg`'s exact PMF restricted
/// to `lo ..= hi`, memoized process-wide.
///
/// # Errors
///
/// [`RngError::InvalidConfig`] if the window carries no probability mass.
/// Errors are not cached.
pub fn cached_alias_window(
    cfg: FxpLaplaceConfig,
    lo: i64,
    hi: i64,
) -> Result<Arc<AliasTable>, RngError> {
    cached_alias(cfg, Some((lo, hi)))
}

fn cached_alias(
    cfg: FxpLaplaceConfig,
    window: Option<(i64, i64)>,
) -> Result<Arc<AliasTable>, RngError> {
    let key = AliasKey {
        pmf: PmfKey::new(cfg, false),
        window,
    };
    if let Some(hit) = read_lock(alias_cache()).get(&key) {
        ALIAS_HITS.inc();
        return Ok(Arc::clone(hit));
    }
    ALIAS_MISSES.inc();
    let pmf = cached_pmf(cfg);
    let table = Arc::new(match window {
        None => AliasTable::from_pmf(&pmf)?,
        Some((lo, hi)) => AliasTable::from_pmf_window(&pmf, lo, hi)?,
    });
    Ok(Arc::clone(
        write_lock(alias_cache()).entry(key).or_insert(table),
    ))
}

/// The rounded-continuous-Laplace grid table for scale `lambda`
/// ([`AliasTable::laplace_grid`]), memoized process-wide by the scale's
/// bit pattern.
///
/// # Errors
///
/// Propagates [`AliasTable::laplace_grid`] construction errors (scale not
/// positive/finite, or too wide to tabulate). Errors are not cached.
pub fn cached_alias_laplace_grid(lambda: f64) -> Result<Arc<AliasTable>, RngError> {
    let key = lambda.to_bits();
    if let Some(hit) = read_lock(grid_cache()).get(&key) {
        GRID_HITS.inc();
        return Ok(Arc::clone(hit));
    }
    GRID_MISSES.inc();
    let table = Arc::new(AliasTable::laplace_grid(lambda)?);
    Ok(Arc::clone(
        write_lock(grid_cache()).entry(key).or_insert(table),
    ))
}

/// Number of distinct PMFs currently memoized (diagnostics/tests).
pub fn pmf_cache_len() -> usize {
    read_lock(cache()).len()
}

/// Number of distinct alias tables currently memoized (diagnostics/tests).
pub fn alias_cache_len() -> usize {
    read_lock(alias_cache()).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(lambda: f64) -> FxpLaplaceConfig {
        FxpLaplaceConfig::new(12, 12, 0.3125, lambda).unwrap()
    }

    #[test]
    fn cached_pmf_equals_fresh_closed_form() {
        let c = cfg(20.0);
        let cached = cached_pmf(c);
        assert_eq!(*cached, FxpNoisePmf::closed_form(c));
    }

    #[test]
    fn repeated_lookups_share_one_allocation() {
        let c = cfg(21.0);
        let a = cached_pmf(c);
        let b = cached_pmf(c);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn distinct_configs_get_distinct_entries() {
        let a = cached_pmf(cfg(22.0));
        let b = cached_pmf(cfg(23.0));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(*a, *b);
    }

    #[test]
    fn enumerated_cache_matches_fresh_enumeration() {
        let c = cfg(24.0);
        let cached = cached_enumerated_pmf(c).unwrap();
        assert_eq!(*cached, FxpNoisePmf::by_enumeration(c).unwrap());
        // Closed-form and enumerated entries do not collide.
        assert_eq!(*cached, *cached_pmf(c));
        let again = cached_enumerated_pmf(c).unwrap();
        assert!(Arc::ptr_eq(&cached, &again));
    }

    #[test]
    fn enumeration_width_limit_is_preserved() {
        let wide = FxpLaplaceConfig::new(30, 12, 0.25, 50.0).unwrap();
        assert!(cached_enumerated_pmf(wide).is_err());
    }

    #[test]
    fn cache_len_grows_monotonically() {
        let before = pmf_cache_len();
        let _ = cached_pmf(cfg(123.456));
        assert!(pmf_cache_len() >= before);
    }

    #[test]
    fn cached_alias_equals_fresh_build() {
        let c = cfg(25.0);
        let pmf = cached_pmf(c);
        let full = cached_alias_full(c).unwrap();
        assert_eq!(*full, AliasTable::from_pmf(&pmf).unwrap());
        assert!(Arc::ptr_eq(&full, &cached_alias_full(c).unwrap()));

        let win = cached_alias_window(c, -5, 40).unwrap();
        assert_eq!(*win, AliasTable::from_pmf_window(&pmf, -5, 40).unwrap());
        assert!(Arc::ptr_eq(&win, &cached_alias_window(c, -5, 40).unwrap()));
        // Full and windowed entries do not collide.
        assert!(!Arc::ptr_eq(&full, &win));
    }

    #[test]
    fn alias_window_errors_are_not_cached() {
        let c = cfg(26.0);
        let before = alias_cache_len();
        let far = cached_pmf(c).support_max_k() + 10;
        assert!(cached_alias_window(c, far, far + 1).is_err());
        assert_eq!(alias_cache_len(), before);
    }
}
