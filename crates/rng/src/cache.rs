//! Process-wide memoization of exact noise PMFs.
//!
//! The exact [`FxpNoisePmf`] is the trust anchor of every privacy-loss
//! computation in this workspace: the evaluation sweeps re-derive it for the
//! same [`FxpLaplaceConfig`] in every (dataset × mechanism × ε × rep) cell.
//! Because the PMF is a *pure function* of its configuration, caching is
//! semantically invisible — [`cached_pmf`] returns a value structurally
//! equal to a fresh [`FxpNoisePmf::closed_form`] (asserted by the workspace
//! cache-coherence tests) and never changes any downstream byte.
//!
//! # Key and invalidation
//!
//! The key is the full configuration — `(Bu, By, Δ, λ)` with the `f64`
//! fields compared by **bit pattern** (`f64::to_bits`), so two
//! configurations share an entry iff they are bit-identical. Entries are
//! immutable (`Arc`-shared) and never invalidated: a PMF can only become
//! stale if its config changes, and a changed config is a different key.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::error::RngError;
use crate::fxp::FxpLaplaceConfig;
use crate::pmf::FxpNoisePmf;

/// Bit-exact cache key for a [`FxpLaplaceConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PmfKey {
    bu: u8,
    by: u8,
    delta_bits: u64,
    lambda_bits: u64,
    enumerated: bool,
}

impl PmfKey {
    fn new(cfg: FxpLaplaceConfig, enumerated: bool) -> Self {
        PmfKey {
            bu: cfg.bu(),
            by: cfg.by(),
            delta_bits: cfg.delta().to_bits(),
            lambda_bits: cfg.lambda().to_bits(),
            enumerated,
        }
    }
}

type PmfMap = Mutex<HashMap<PmfKey, Arc<FxpNoisePmf>>>;

fn cache() -> &'static PmfMap {
    static CACHE: OnceLock<PmfMap> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The closed-form (Eq. 11) PMF for `cfg`, memoized process-wide.
///
/// Structurally equal to `FxpNoisePmf::closed_form(cfg)`; the `Arc` lets
/// concurrent evaluation cells share one copy.
pub fn cached_pmf(cfg: FxpLaplaceConfig) -> Arc<FxpNoisePmf> {
    let key = PmfKey::new(cfg, false);
    if let Some(hit) = cache().lock().expect("pmf cache poisoned").get(&key) {
        return Arc::clone(hit);
    }
    // Build outside the lock: closed_form is O(support) exp() calls and
    // concurrent workers frequently miss on the same key at startup.
    let pmf = Arc::new(FxpNoisePmf::closed_form(cfg));
    Arc::clone(
        cache()
            .lock()
            .expect("pmf cache poisoned")
            .entry(key)
            .or_insert(pmf),
    )
}

/// The exhaustively enumerated PMF for `cfg`, memoized process-wide — one
/// `O(2^Bu)` enumeration is shared by every subsequent solve at any ε.
///
/// # Errors
///
/// [`RngError::InvalidConfig`] if `Bu > 26` (see
/// [`FxpNoisePmf::by_enumeration`]).
pub fn cached_enumerated_pmf(cfg: FxpLaplaceConfig) -> Result<Arc<FxpNoisePmf>, RngError> {
    let key = PmfKey::new(cfg, true);
    if let Some(hit) = cache().lock().expect("pmf cache poisoned").get(&key) {
        return Ok(Arc::clone(hit));
    }
    let pmf = Arc::new(FxpNoisePmf::by_enumeration(cfg)?);
    Ok(Arc::clone(
        cache()
            .lock()
            .expect("pmf cache poisoned")
            .entry(key)
            .or_insert(pmf),
    ))
}

/// Number of distinct PMFs currently memoized (diagnostics/tests).
pub fn pmf_cache_len() -> usize {
    cache().lock().expect("pmf cache poisoned").len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(lambda: f64) -> FxpLaplaceConfig {
        FxpLaplaceConfig::new(12, 12, 0.3125, lambda).unwrap()
    }

    #[test]
    fn cached_pmf_equals_fresh_closed_form() {
        let c = cfg(20.0);
        let cached = cached_pmf(c);
        assert_eq!(*cached, FxpNoisePmf::closed_form(c));
    }

    #[test]
    fn repeated_lookups_share_one_allocation() {
        let c = cfg(21.0);
        let a = cached_pmf(c);
        let b = cached_pmf(c);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn distinct_configs_get_distinct_entries() {
        let a = cached_pmf(cfg(22.0));
        let b = cached_pmf(cfg(23.0));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(*a, *b);
    }

    #[test]
    fn enumerated_cache_matches_fresh_enumeration() {
        let c = cfg(24.0);
        let cached = cached_enumerated_pmf(c).unwrap();
        assert_eq!(*cached, FxpNoisePmf::by_enumeration(c).unwrap());
        // Closed-form and enumerated entries do not collide.
        assert_eq!(*cached, *cached_pmf(c));
        let again = cached_enumerated_pmf(c).unwrap();
        assert!(Arc::ptr_eq(&cached, &again));
    }

    #[test]
    fn enumeration_width_limit_is_preserved() {
        let wide = FxpLaplaceConfig::new(30, 12, 0.25, 50.0).unwrap();
        assert!(cached_enumerated_pmf(wide).is_err());
    }

    #[test]
    fn cache_len_grows_monotonically() {
        let before = pmf_cache_len();
        let _ = cached_pmf(cfg(123.456));
        assert!(pmf_cache_len() >= before);
    }
}
