//! Gaussian samplers — the generalization of Section III-A4.
//!
//! The paper argues the infinite-loss problem is not Laplace-specific:
//! *any* DP noise distribution (Laplace, Gaussian, staircase) realized on
//! finite-precision hardware has bounded support and quantized tail
//! probabilities. This module provides an inversion-method Gaussian in both
//! ideal (`f64`) and fixed-point flavours; its exact PMF plugs into the
//! same loss analysis via [`crate::FxpNoisePmf::from_magnitude_counts`],
//! and the workspace tests show the same break-and-fix story holds.

use crate::error::RngError;
use crate::pmf::FxpNoisePmf;
use crate::source::RandomBits;

/// Standard normal CDF `Φ(x)`, via the Abramowitz–Stegun 7.1.26 erf
/// approximation (|error| < 1.5e-7 — far below any grid resolution used
/// here).
pub fn normal_cdf(x: f64) -> f64 {
    let z = x / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.327_591_1 * z.abs());
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf_abs = 1.0 - poly * (-z * z).exp();
    let erf = if z >= 0.0 { erf_abs } else { -erf_abs };
    0.5 * (1.0 + erf)
}

/// Standard normal inverse CDF `Φ⁻¹(p)` for `p ∈ (0, 1)`, Acklam's rational
/// approximation refined by one Halley step against [`normal_cdf`].
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
pub fn normal_icdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "icdf domain is (0,1), got {p}");
    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// An inversion-method ideal Gaussian sampler `N(0, σ²)`.
///
/// # Examples
///
/// ```
/// use ulp_rng::{IdealGaussian, Taus88};
///
/// let g = IdealGaussian::new(2.0)?;
/// let mut rng = Taus88::from_seed(1);
/// assert!(g.sample(&mut rng).is_finite());
/// # Ok::<(), ulp_rng::RngError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdealGaussian {
    sigma: f64,
}

impl IdealGaussian {
    /// Creates a sampler with standard deviation `σ`.
    ///
    /// # Errors
    ///
    /// [`RngError::InvalidConfig`] unless `σ` is finite and positive.
    pub fn new(sigma: f64) -> Result<Self, RngError> {
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(RngError::InvalidConfig("σ must be finite and positive"));
        }
        Ok(IdealGaussian { sigma })
    }

    /// The standard deviation `σ`.
    pub fn sigma(self) -> f64 {
        self.sigma
    }

    /// Draws one sample by inversion on a 53-bit uniform.
    pub fn sample<R: RandomBits + ?Sized>(self, rng: &mut R) -> f64 {
        let m = rng.bits(53) + 1;
        // u ∈ (0, 1); shift by half a grid step to stay inside the open
        // interval at both ends.
        let u = (m as f64 - 0.5) * 2f64.powi(-53);
        self.sigma * normal_icdf(u)
    }
}

/// Configuration of the fixed-point Gaussian RNG: same structure as the
/// Laplace one (`Bu`-bit magnitude uniform, `By`-bit output, grid `Δ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FxpGaussianConfig {
    bu: u8,
    by: u8,
    delta: f64,
    sigma: f64,
}

impl FxpGaussianConfig {
    /// Creates a configuration (same bounds as the Laplace config).
    ///
    /// # Errors
    ///
    /// [`RngError::InvalidConfig`] for out-of-range word widths or
    /// non-positive `Δ`/`σ`.
    pub fn new(bu: u8, by: u8, delta: f64, sigma: f64) -> Result<Self, RngError> {
        if !(1..=26).contains(&bu) {
            return Err(RngError::InvalidConfig(
                "Bu must be in 1..=26 (PMF is built by enumeration)",
            ));
        }
        if !(2..=62).contains(&by) {
            return Err(RngError::InvalidConfig("By must be in 2..=62"));
        }
        if !(delta.is_finite() && delta > 0.0) {
            return Err(RngError::InvalidConfig("Δ must be finite and positive"));
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(RngError::InvalidConfig("σ must be finite and positive"));
        }
        Ok(FxpGaussianConfig {
            bu,
            by,
            delta,
            sigma,
        })
    }

    /// URNG magnitude width `Bu`.
    pub fn bu(self) -> u8 {
        self.bu
    }

    /// Output word width `By`.
    pub fn by(self) -> u8 {
        self.by
    }

    /// Grid step `Δ`.
    pub fn delta(self) -> f64 {
        self.delta
    }

    /// Standard deviation `σ`.
    pub fn sigma(self) -> f64 {
        self.sigma
    }

    /// Largest representable magnitude index.
    pub fn max_output_k(self) -> i64 {
        (1i64 << (self.by - 1)) - 1
    }

    /// The magnitude map: uniform index `m ∈ [1, 2^Bu]` to grid index, via
    /// the half-normal ICDF `σ·Φ⁻¹(1 − u/2)`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn magnitude_index(self, m: u64) -> i64 {
        assert!(
            m >= 1 && m <= (1u64 << self.bu),
            "uniform index out of range"
        );
        let u = m as f64 * 2f64.powi(-(self.bu as i32));
        let mag = if u >= 1.0 {
            0.0
        } else {
            self.sigma * normal_icdf(1.0 - u / 2.0)
        };
        ((mag / self.delta).round() as i64).min(self.max_output_k())
    }
}

/// The fixed-point Gaussian RNG (sign bit + ICDF magnitude path).
///
/// # Examples
///
/// ```
/// use ulp_rng::{FxpGaussian, FxpGaussianConfig, Taus88};
///
/// let cfg = FxpGaussianConfig::new(16, 12, 0.25, 8.0)?;
/// let g = FxpGaussian::new(cfg);
/// let mut rng = Taus88::from_seed(7);
/// let k = g.sample_index(&mut rng);
/// // Bounded support — the same nonideality as the Laplace RNG.
/// assert!(k.abs() <= g.pmf().support_max_k());
/// # Ok::<(), ulp_rng::RngError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FxpGaussian {
    cfg: FxpGaussianConfig,
    pmf: FxpNoisePmf,
}

impl FxpGaussian {
    /// Creates the sampler and builds its exact PMF by enumeration.
    pub fn new(cfg: FxpGaussianConfig) -> Self {
        let mut counts = vec![0u64; (cfg.max_output_k() + 1) as usize];
        let mut top = 0usize;
        for m in 1..=(1u64 << cfg.bu) {
            let k = cfg.magnitude_index(m) as usize;
            counts[k] += 1;
            top = top.max(k);
        }
        counts.truncate(top + 1);
        FxpGaussian {
            cfg,
            pmf: FxpNoisePmf::from_magnitude_counts(cfg.bu(), counts),
        }
    }

    /// The configuration.
    pub fn config(&self) -> FxpGaussianConfig {
        self.cfg
    }

    /// The exact output PMF (shared analysis machinery with the Laplace
    /// sampler).
    pub fn pmf(&self) -> &FxpNoisePmf {
        &self.pmf
    }

    /// Draws one signed magnitude index.
    pub fn sample_index<R: RandomBits + ?Sized>(&self, rng: &mut R) -> i64 {
        let negative = rng.bit();
        let m = rng.bits(self.cfg.bu) + 1;
        let k = self.cfg.magnitude_index(m);
        if negative {
            -k
        } else {
            k
        }
    }

    /// Draws one noise value `kΔ`.
    pub fn sample<R: RandomBits + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_index(rng) as f64 * self.cfg.delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tausworthe::Taus88;

    #[test]
    fn icdf_cdf_roundtrip() {
        for &p in &[1e-6, 0.01, 0.2, 0.5, 0.8, 0.99, 1.0 - 1e-6] {
            let x = normal_icdf(p);
            assert!((normal_cdf(x) - p).abs() < 2e-7, "p={p}: x={x}");
        }
    }

    #[test]
    fn icdf_known_values() {
        // Accuracy is limited by the A-S erf approximation (~1.5e-7).
        assert!(normal_icdf(0.5).abs() < 1e-6);
        assert!((normal_icdf(0.975) - 1.959_964).abs() < 1e-4);
        assert!((normal_icdf(0.025) + 1.959_964).abs() < 1e-4);
    }

    #[test]
    fn ideal_gaussian_moments() {
        let g = IdealGaussian::new(3.0).unwrap();
        let mut rng = Taus88::from_seed(5);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var / 9.0 - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn fxp_gaussian_support_is_bounded() {
        let cfg = FxpGaussianConfig::new(16, 14, 0.25, 8.0).unwrap();
        let g = FxpGaussian::new(cfg);
        // Deepest uniform: magnitude σ·Φ⁻¹(1 − 2^-17) ≈ σ·4.2.
        let expected_max = (8.0 * normal_icdf(1.0 - 2f64.powi(-17)) / 0.25).round() as i64;
        assert_eq!(g.pmf().support_max_k(), expected_max);
    }

    #[test]
    fn fxp_gaussian_pmf_matches_sampler() {
        let cfg = FxpGaussianConfig::new(12, 12, 0.5, 4.0).unwrap();
        let g = FxpGaussian::new(cfg);
        let mut rng = Taus88::from_seed(8);
        let n = 300_000;
        let mut hist = std::collections::HashMap::new();
        for _ in 0..n {
            *hist.entry(g.sample_index(&mut rng)).or_insert(0u64) += 1;
        }
        for k in -8i64..=8 {
            let p = g.pmf().prob(k);
            let emp = *hist.get(&k).unwrap_or(&0) as f64 / n as f64;
            assert!(
                (emp - p).abs() < 5.0 * (p / n as f64).sqrt() + 1e-4,
                "k={k}: emp {emp} vs pmf {p}"
            );
        }
    }

    #[test]
    fn fxp_gaussian_tracks_ideal_density_in_body() {
        let cfg = FxpGaussianConfig::new(16, 14, 0.25, 8.0).unwrap();
        let g = FxpGaussian::new(cfg);
        for k in [0i64, 8, 16, 32, 64] {
            let x = k as f64 * 0.25;
            let ideal =
                0.25 * (-x * x / (2.0 * 64.0)).exp() / (8.0 * (2.0 * std::f64::consts::PI).sqrt());
            let got = g.pmf().prob(k);
            assert!(
                (got - ideal).abs() / ideal < 0.03,
                "k={k}: got {got}, ideal {ideal}"
            );
        }
    }

    #[test]
    fn gaussian_tail_has_gaps_like_laplace() {
        // The paper's generalization: any finite-precision RNG shows the
        // same tail pathology.
        let cfg = FxpGaussianConfig::new(16, 14, 0.1, 4.0).unwrap();
        let g = FxpGaussian::new(cfg);
        assert!(g.pmf().interior_gap_count() > 0);
    }

    #[test]
    fn config_validation() {
        assert!(FxpGaussianConfig::new(0, 12, 0.5, 1.0).is_err());
        assert!(FxpGaussianConfig::new(27, 12, 0.5, 1.0).is_err());
        assert!(FxpGaussianConfig::new(16, 1, 0.5, 1.0).is_err());
        assert!(FxpGaussianConfig::new(16, 12, 0.0, 1.0).is_err());
        assert!(FxpGaussianConfig::new(16, 12, 0.5, -1.0).is_err());
    }

    #[test]
    fn ideal_gaussian_validation() {
        assert!(IdealGaussian::new(0.0).is_err());
        assert!(IdealGaussian::new(f64::NAN).is_err());
    }
}
