//! The paper's literal Eq. 17 datapath: sign and magnitude from a *single*
//! uniform word.
//!
//! ```text
//! I_u =  log(2u)        if u < 0.5
//!     = −log(2(1−u))    if u ≥ 0.5
//! ```
//!
//! The DP-Box folds one `Bu`-bit uniform into a signed Laplace sample: the
//! top bit acts as the sign and the remaining bits as the magnitude
//! uniform. This module implements that fold literally and proves (by
//! exhaustive enumeration, in tests) that it induces **exactly** the same
//! output distribution as the sign-bit + `(Bu−1)`-bit magnitude split used
//! by [`crate::FxpLaplace`] — the equivalence the device model relies on.

use crate::error::RngError;
use crate::fxp::FxpLaplaceConfig;
use crate::source::RandomBits;

/// The single-uniform Eq. 17 Laplace sampler.
///
/// Configured by the same parameters as [`FxpLaplaceConfig`], with `Bu`
/// being the *full* uniform width (one bit of which the fold consumes as
/// the sign).
///
/// # Examples
///
/// ```
/// use ulp_rng::{Eq17Laplace, Taus88};
///
/// let s = Eq17Laplace::new(17, 12, 10.0 / 32.0, 20.0)?;
/// let mut rng = Taus88::from_seed(1);
/// let k = s.sample_index(&mut rng);
/// // Same support as the equivalent sign+magnitude sampler.
/// assert!(k.abs() <= s.equivalent_config().natural_max_k());
/// # Ok::<(), ulp_rng::RngError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eq17Laplace {
    bu: u8,
    by: u8,
    delta: f64,
    lambda: f64,
}

impl Eq17Laplace {
    /// Creates the sampler.
    ///
    /// # Errors
    ///
    /// [`RngError::InvalidConfig`] with the same bounds as
    /// [`FxpLaplaceConfig::new`] (requiring `Bu ≥ 2` so a magnitude bit
    /// remains after the sign fold).
    pub fn new(bu: u8, by: u8, delta: f64, lambda: f64) -> Result<Self, RngError> {
        if bu < 2 {
            return Err(RngError::InvalidConfig("Eq. 17 needs Bu ≥ 2"));
        }
        // Validate ranges by constructing the equivalent config.
        FxpLaplaceConfig::new(bu - 1, by, delta, lambda)?;
        Ok(Eq17Laplace {
            bu,
            by,
            delta,
            lambda,
        })
    }

    /// The sign+magnitude configuration this fold is equivalent to
    /// (`Bu_eff = Bu − 1`).
    pub fn equivalent_config(self) -> FxpLaplaceConfig {
        FxpLaplaceConfig::new(self.bu - 1, self.by, self.delta, self.lambda)
            .expect("validated at construction")
    }

    /// Maps one full-width uniform index `m ∈ [1, 2^Bu]` through Eq. 17 to
    /// a signed output index.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn index_from_uniform(self, m: u64) -> i64 {
        let card = 1u64 << self.bu;
        assert!(m >= 1 && m <= card, "uniform index out of range");
        let u = m as f64 / card as f64;
        let i_u = if u < 0.5 {
            (2.0 * u).ln() // negative branch
        } else {
            // u = 1 would need −ln 0; the hardware's modulo wrap maps the
            // all-ones word to the deepest negative magnitude instead —
            // model that by reusing 2(1−u) + one LSB.
            let v = 2.0 * (1.0 - u) + if m == card { 2.0 / card as f64 } else { 0.0 };
            -v.ln()
        };
        let k = (self.lambda * i_u / self.delta).round() as i64;
        let max = (1i64 << (self.by - 1)) - 1;
        k.clamp(-max, max)
    }

    /// Draws one signed output index from a single `Bu`-bit uniform.
    pub fn sample_index<R: RandomBits + ?Sized>(self, rng: &mut R) -> i64 {
        self.index_from_uniform(rng.bits(self.bu) + 1)
    }

    /// Draws one noise value `kΔ`.
    pub fn sample<R: RandomBits + ?Sized>(self, rng: &mut R) -> f64 {
        self.sample_index(rng) as f64 * self.delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fxp::FxpLaplace;
    use crate::pmf::FxpNoisePmf;
    use crate::tausworthe::Taus88;
    use std::collections::HashMap;

    fn exhaustive_histogram(s: Eq17Laplace) -> HashMap<i64, u64> {
        let mut h = HashMap::new();
        for m in 1..=(1u64 << s.bu) {
            *h.entry(s.index_from_uniform(m)).or_insert(0) += 1;
        }
        h
    }

    #[test]
    fn validation() {
        assert!(Eq17Laplace::new(1, 12, 0.5, 1.0).is_err());
        assert!(Eq17Laplace::new(17, 1, 0.5, 1.0).is_err());
        assert!(Eq17Laplace::new(17, 12, 0.0, 1.0).is_err());
        assert!(Eq17Laplace::new(17, 12, 0.5, 1.0).is_ok());
    }

    #[test]
    fn fold_is_exactly_sign_plus_magnitude() {
        // Enumerate every uniform word through Eq. 17 and compare the
        // resulting exact distribution with the Bu−1 sign+magnitude PMF.
        let s = Eq17Laplace::new(12, 12, 0.25, 5.0).unwrap();
        let hist = exhaustive_histogram(s);
        let pmf = FxpNoisePmf::closed_form(s.equivalent_config());
        // Eq. 17 counts are over 2^Bu = 2^(Bu_eff+1) words — the same
        // denominator the PMF's signed weights use.
        let mut mismatches = 0u64;
        for k in -pmf.support_max_k()..=pmf.support_max_k() {
            let got = *hist.get(&k).unwrap_or(&0) as u128;
            let want = pmf.weight(k);
            if got != want {
                mismatches += got.abs_diff(want) as u64;
            }
        }
        // The branch boundaries (u exactly 0.5, u = 1) can shift a couple
        // of words between adjacent bins; everything else is identical.
        assert!(mismatches <= 4, "{mismatches} mismatched words");
    }

    #[test]
    fn both_branches_are_exercised() {
        let s = Eq17Laplace::new(10, 12, 0.25, 5.0).unwrap();
        let hist = exhaustive_histogram(s);
        assert!(hist.keys().any(|&k| k < 0));
        assert!(hist.keys().any(|&k| k > 0));
        // Symmetry up to the one-word branch asymmetry.
        let neg: u64 = hist.iter().filter(|(&k, _)| k < 0).map(|(_, &c)| c).sum();
        let pos: u64 = hist.iter().filter(|(&k, _)| k > 0).map(|(_, &c)| c).sum();
        assert!(neg.abs_diff(pos) <= 2, "neg {neg} vs pos {pos}");
    }

    #[test]
    fn sampled_spread_matches_equivalent_sampler() {
        let s = Eq17Laplace::new(17, 12, 10.0 / 32.0, 20.0).unwrap();
        let eq = FxpLaplace::analytic(s.equivalent_config());
        let mut rng1 = Taus88::from_seed(9);
        let mut rng2 = Taus88::from_seed(10);
        let n = 100_000;
        let sd = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
        };
        let a: Vec<f64> = (0..n).map(|_| s.sample(&mut rng1)).collect();
        let b: Vec<f64> = (0..n).map(|_| eq.sample(&mut rng2)).collect();
        let (sa, sb) = (sd(&a), sd(&b));
        assert!((sa / sb - 1.0).abs() < 0.02, "σ {sa} vs {sb}");
    }

    #[test]
    fn all_ones_word_does_not_panic() {
        let s = Eq17Laplace::new(8, 12, 0.25, 5.0).unwrap();
        let k = s.index_from_uniform(1u64 << 8);
        assert!(k.abs() > 0, "deepest word maps to a deep magnitude");
    }
}
