//! Continuous health tests for URNG bit streams (NIST SP 800-90B style).
//!
//! The DP-Box's distributional ε bound requires the Tausworthe URNG to
//! actually be uniform, and hardware RNGs fail in the field — stuck-at
//! bits, bias, correlated stages. This module provides the online monitor
//! a fail-safe privacy pipeline gates its guarantee on:
//!
//! * a per-bit-position **Repetition Count Test** (RCT) that trips when any
//!   of the 32 bit lanes repeats the same value too many words in a row
//!   (catches stuck-at and near-stuck faults within ~`alpha_exp` words);
//! * a windowed **Adaptive Proportion Test** (APT) over the total
//!   ones-count of each window (catches broad bias);
//! * a windowed **lag-correlation test** comparing each word against the
//!   words `1..=max_lag` draws earlier (catches correlated stages that are
//!   marginally uniform and therefore invisible to RCT/APT).
//!
//! Cutoffs are derived from a configured per-decision false-positive target
//! `α = 2^-alpha_exp`: the RCT cutoff is the NIST `1 + ⌈−log₂ α⌉` (at one
//! bit of entropy per bit), and the windowed tests use the Hoeffding bound
//! `P(|ones − n/2| ≥ t) ≤ 2·exp(−2t²/n)`, solved for `t` at `α`. At the
//! defaults (`α = 2^-40`, 1024-word windows) a healthy source produces an
//! expected ≈1e-4 false alarms per 10⁷ words — effectively none — while a
//! stuck bit is caught in ~41 words and gross bias or correlation within
//! one window.
//!
//! # Examples
//!
//! ```
//! use ulp_rng::{RandomBits, StuckAtBits, Taus88, UrngHealth};
//!
//! let mut health = UrngHealth::default();
//! let mut faulty = StuckAtBits::new(Taus88::from_seed(7), 13, true);
//! let mut tripped = None;
//! for _ in 0..100 {
//!     if let Err(alarm) = health.observe(faulty.next_u32()) {
//!         tripped = Some(alarm);
//!         break;
//!     }
//! }
//! let alarm = tripped.expect("stuck bit must trip the RCT quickly");
//! assert!(alarm.word_index < 64);
//! ```

use ulp_obs::Counter;

use crate::error::RngError;
use crate::source::RandomBits;
use crate::tausworthe::Taus88;

/// Words that passed every online health test.
static VERDICTS_OK: Counter = Counter::new("rng.health.verdicts_ok");
/// Newly latched health alarms — recorded at every metrics level, because a
/// tripped URNG is exactly the event operators must never miss.
static ALARMS: Counter = Counter::new("rng.health.alarms");

/// Configuration for [`UrngHealth`]: false-positive target and window sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    alpha_exp: u8,
    apt_window: u32,
    max_lag: u8,
}

impl HealthConfig {
    /// Creates a configuration.
    ///
    /// * `alpha_exp` — per-decision false-positive target `α = 2^-alpha_exp`
    ///   (must be in `4..=60`).
    /// * `apt_window` — words per adaptive-proportion / lag-correlation
    ///   window (must be in `64..=1_048_576`).
    /// * `max_lag` — correlation lags `1..=max_lag` to monitor (at most 8;
    ///   0 disables the lag test).
    pub fn new(alpha_exp: u8, apt_window: u32, max_lag: u8) -> Result<Self, RngError> {
        if !(4..=60).contains(&alpha_exp) {
            return Err(RngError::InvalidConfig("alpha_exp must be in 4..=60"));
        }
        if !(64..=1_048_576).contains(&apt_window) {
            return Err(RngError::InvalidConfig(
                "apt_window must be in 64..=1048576 words",
            ));
        }
        if max_lag > 8 {
            return Err(RngError::InvalidConfig("max_lag must be at most 8"));
        }
        Ok(HealthConfig {
            alpha_exp,
            apt_window,
            max_lag,
        })
    }

    /// False-positive exponent: each test decision trips a healthy source
    /// with probability at most `2^-alpha_exp`.
    pub fn alpha_exp(&self) -> u8 {
        self.alpha_exp
    }

    /// Words per APT / lag-correlation window.
    pub fn apt_window(&self) -> u32 {
        self.apt_window
    }

    /// Highest correlation lag monitored (0 = lag test disabled).
    pub fn max_lag(&self) -> u8 {
        self.max_lag
    }

    /// Repetition-count cutoff: a run of this many identical values in one
    /// bit lane trips the alarm (NIST SP 800-90B `C = 1 + ⌈−log₂ α / H⌉`
    /// at `H = 1` bit per bit).
    pub fn rct_cutoff(&self) -> u32 {
        1 + u32::from(self.alpha_exp)
    }

    /// Deviation cutoff for a balance test over `n_bits` fair bits: trips
    /// when `|ones − n/2| ≥ t` with `t = ⌈√(n·(alpha_exp+1)·ln2 / 2)⌉`
    /// (Hoeffding bound solved at `α = 2^-alpha_exp`).
    pub fn balance_cutoff(&self, n_bits: u64) -> u64 {
        let t = (n_bits as f64 * (f64::from(self.alpha_exp) + 1.0) * core::f64::consts::LN_2 / 2.0)
            .sqrt();
        t.ceil() as u64
    }

    /// Words a startup / reset-and-retest pass must draw before the source
    /// is declared healthy: one full window (which also covers many RCT
    /// cutoffs' worth of words).
    pub fn startup_words(&self) -> u32 {
        self.apt_window
    }
}

impl Default for HealthConfig {
    /// `α = 2^-40`, 1024-word windows, lags 1..=4.
    fn default() -> Self {
        HealthConfig {
            alpha_exp: 40,
            apt_window: 1024,
            max_lag: 4,
        }
    }
}

/// Which continuous test tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthTest {
    /// One bit lane repeated the same value `run` words in a row.
    RepetitionCount {
        /// Bit position (0 = LSB, 31 = MSB) of the offending lane.
        bit: u8,
        /// Length of the repeated run when the cutoff was reached.
        run: u32,
    },
    /// The window's total ones-count strayed too far from `n/2`.
    AdaptiveProportion {
        /// Ones observed in the window.
        ones: u64,
        /// Total bits in the window.
        window_bits: u64,
    },
    /// Bits agreed with the word `lag` draws earlier too often (or too
    /// rarely) over the window.
    LagCorrelation {
        /// The offending lag, in words.
        lag: u8,
        /// Bitwise agreements observed at this lag in the window.
        agreements: u64,
        /// Bit pairs compared at this lag in the window.
        window_bits: u64,
    },
}

impl core::fmt::Display for HealthTest {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HealthTest::RepetitionCount { bit, run } => {
                write!(f, "repetition count: bit {bit} repeated {run} words")
            }
            HealthTest::AdaptiveProportion { ones, window_bits } => {
                write!(f, "adaptive proportion: {ones} ones in {window_bits} bits")
            }
            HealthTest::LagCorrelation {
                lag,
                agreements,
                window_bits,
            } => write!(
                f,
                "lag-{lag} correlation: {agreements} agreements in {window_bits} bit pairs"
            ),
        }
    }
}

/// An alarm raised by [`UrngHealth`]: which test tripped, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthAlarm {
    /// The test that tripped.
    pub test: HealthTest,
    /// Zero-based index of the word whose observation raised the alarm
    /// (i.e. `word_index + 1` words had been consumed).
    pub word_index: u64,
}

impl core::fmt::Display for HealthAlarm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "URNG health alarm at word {}: {}",
            self.word_index, self.test
        )
    }
}

/// Online health monitor over a stream of 32-bit URNG words.
///
/// Feed every word the consumer draws through [`observe`](Self::observe);
/// once a test trips, the monitor latches the alarm and refuses further
/// words until [`reset`](Self::reset) — recovery must be deliberate, not
/// automatic.
#[derive(Debug, Clone)]
pub struct UrngHealth {
    cfg: HealthConfig,
    rct_cutoff: u32,
    apt_cutoff: u64,
    /// Current run length of identical values, per bit lane, packed eight
    /// byte lanes per word (`bit`'s run lives in byte `bit % 8` of
    /// `runs8[bit / 8]`). A healthy run never reaches the cutoff
    /// (≤ `1 + 60`), so a byte lane cannot overflow and the whole
    /// repetition-count update is four branchless lane-parallel adds
    /// instead of a 32-iteration loop — this is the hot path of every
    /// monitored URNG draw.
    runs8: [u64; 4],
    /// Per-byte-lane `0x80 − rct_cutoff`: adding it to a packed run makes
    /// the lane's MSB the "run reached the cutoff" flag.
    rct_add: u64,
    last: u32,
    /// The previous `max_lag` words as a shift register: `prev[l]` is the
    /// word drawn `l + 1` observations ago.
    prev: [u32; 8],
    /// Words into the current APT/lag window.
    window_pos: u32,
    /// Ones in the current window.
    ones: u64,
    /// Bitwise agreements per lag (index `lag - 1`) in the current window.
    agreements: [u64; 8],
    /// Bit pairs compared per lag (index `lag - 1`) in the current window.
    lag_pairs: [u64; 8],
    /// Total words observed since construction or the last reset.
    words: u64,
    alarm: Option<HealthAlarm>,
}

/// Per-byte-lane `0x01` (the lane-parallel "+1").
const LANE_LSB: u64 = 0x0101_0101_0101_0101;
/// Per-byte-lane MSB (the lane-parallel carry/flag bit).
const LANE_MSB: u64 = 0x8080_8080_8080_8080;

/// Expands the low 8 bits of `b` into byte lanes: lane `j` is `0xFF` when
/// bit `j` is set and `0x00` otherwise.
#[inline]
fn byte_mask(b: u64) -> u64 {
    let spread = b.wrapping_mul(LANE_LSB) & 0x8040_2010_0804_0201;
    let msb = spread.wrapping_add(!LANE_MSB) & LANE_MSB;
    (msb >> 7).wrapping_mul(0xFF)
}

impl UrngHealth {
    /// Creates a monitor with the given configuration.
    pub fn new(cfg: HealthConfig) -> Self {
        UrngHealth {
            cfg,
            rct_cutoff: cfg.rct_cutoff(),
            apt_cutoff: cfg.balance_cutoff(u64::from(cfg.apt_window) * 32),
            runs8: [0; 4],
            // `rct_cutoff ≤ 61 < 0x80`, so the flag offset fits a byte lane.
            rct_add: LANE_LSB * (0x80 - u64::from(cfg.rct_cutoff())),
            last: 0,
            prev: [0; 8],
            window_pos: 0,
            ones: 0,
            agreements: [0; 8],
            lag_pairs: [0; 8],
            words: 0,
            alarm: None,
        }
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Words observed since construction or the last [`reset`](Self::reset).
    pub fn words(&self) -> u64 {
        self.words
    }

    /// The latched alarm, if any test has tripped.
    pub fn alarm(&self) -> Option<&HealthAlarm> {
        self.alarm.as_ref()
    }

    /// Whether an alarm is latched.
    pub fn is_alarmed(&self) -> bool {
        self.alarm.is_some()
    }

    /// Clears all test state and the latched alarm. The next window starts
    /// fresh; callers should follow with [`startup`](Self::startup) to
    /// retest before trusting the source again.
    pub fn reset(&mut self) {
        let cfg = self.cfg;
        *self = UrngHealth::new(cfg);
    }

    /// Feeds one word. Returns the (newly or previously latched) alarm if
    /// the stream is considered unhealthy; the offending word is counted.
    pub fn observe(&mut self, word: u32) -> Result<(), HealthAlarm> {
        if let Some(alarm) = self.alarm {
            return Err(alarm);
        }
        let index = self.words;

        // Repetition count, per bit lane, lane-parallel: where the bit
        // repeated the packed run survives and gains one, elsewhere it
        // restarts at one. A lane whose new run reaches the cutoff sets
        // its flag MSB; the first flagged lane (lowest bit position, as in
        // the per-bit formulation) names the alarm. On the first word
        // every lane starts a run of one.
        if index == 0 {
            self.runs8 = [LANE_LSB; 4];
        } else {
            let same = u64::from(!(word ^ self.last));
            let mut trip: Option<u8> = None;
            for (g, runs) in self.runs8.iter_mut().enumerate() {
                let next = (*runs & byte_mask((same >> (8 * g)) & 0xFF)) + LANE_LSB;
                *runs = next;
                let hit = next.wrapping_add(self.rct_add) & LANE_MSB;
                if hit != 0 && trip.is_none() {
                    trip = Some(g as u8 * 8 + (hit.trailing_zeros() / 8) as u8);
                }
            }
            if let Some(bit) = trip {
                // A run below the cutoff gains at most one per word, so the
                // tripping run is exactly the cutoff.
                let alarm = HealthAlarm {
                    test: HealthTest::RepetitionCount {
                        bit,
                        run: self.rct_cutoff,
                    },
                    word_index: index,
                };
                self.words += 1;
                self.alarm = Some(alarm);
                ALARMS.record_always(1);
                return Err(alarm);
            }
        }
        self.last = word;

        // Window accumulators: ones count and lagged agreements against the
        // shift register of the last `max_lag` words.
        self.ones += u64::from(word.count_ones());
        let max_lag = usize::from(self.cfg.max_lag);
        let lags = max_lag.min(usize::try_from(index).unwrap_or(max_lag));
        for (slot, &prev) in self.prev.iter().enumerate().take(lags) {
            self.agreements[slot] += u64::from((!(word ^ prev)).count_ones());
            self.lag_pairs[slot] += 32;
        }
        if max_lag > 0 {
            for l in (1..max_lag).rev() {
                self.prev[l] = self.prev[l - 1];
            }
            self.prev[0] = word;
        }
        self.words += 1;
        self.window_pos += 1;

        if self.window_pos == self.cfg.apt_window {
            if let Err(alarm) = self.close_window(index) {
                self.alarm = Some(alarm);
                ALARMS.record_always(1);
                return Err(alarm);
            }
        }
        VERDICTS_OK.inc();
        Ok(())
    }

    /// Draws and observes one startup pass ([`HealthConfig::startup_words`]
    /// words) from `src`, as the reset-and-retest command path requires.
    pub fn startup<R: RandomBits + ?Sized>(&mut self, src: &mut R) -> Result<(), HealthAlarm> {
        for _ in 0..self.cfg.startup_words() {
            self.observe(src.next_u32())?;
        }
        Ok(())
    }

    /// Batched startup pass over a [`Taus88`] source: draws and evaluates
    /// one full window ([`HealthConfig::startup_words`] words) in tight
    /// whole-buffer loops instead of `observe`-per-word, reproducing the
    /// scalar [`startup`](Self::startup) **bit-for-bit** — same verdict,
    /// same latched alarm, same monitor state, same RNG position, same
    /// `rng.taus88.words_drawn` / `rng.health.verdicts_ok` counter deltas.
    ///
    /// The equivalence argument: the window is pre-filled speculatively
    /// (uncounted), then screened for any possible repetition-count trip
    /// with an exact sliding-window AND over the same-bit transition masks
    /// — a lane reaches the cutoff iff `rct_cutoff − 1` consecutive
    /// transitions keep it constant, so the screen has neither false
    /// positives nor false negatives. A screen hit rewinds the generator to
    /// a snapshot and replays the scalar path (which stops mid-window at
    /// the exact tripping word). A clean screen means every word survives
    /// the RCT, so the window accumulators (ones, per-lag agreements) are
    /// plain popcount sums and the APT/lag verdict is evaluated once at
    /// window close, exactly as `observe` would on the final word; the
    /// post-window register state (`runs8`, `last`, lag shift register) is
    /// reconstructed in closed form.
    ///
    /// `scratch` is reused across calls to keep per-device startup
    /// allocation-free in batch simulations.
    ///
    /// Falls back to the scalar path when the monitor is mid-stream or
    /// already latched (the fast path assumes a fresh window).
    pub fn startup_batched(
        &mut self,
        src: &mut Taus88,
        scratch: &mut Vec<u32>,
    ) -> Result<(), HealthAlarm> {
        let w = self.cfg.startup_words() as usize;
        if self.words != 0 || self.alarm.is_some() || self.cfg.apt_window as usize != w {
            return self.startup(src);
        }
        let snapshot = src.clone();
        // `scratch` holds the window's words followed by a workspace for
        // the transition masks, so steady-state startups allocate nothing.
        scratch.clear();
        scratch.resize(2 * w - 1, 0);
        let (words_buf, trans) = scratch.split_at_mut(w);
        src.fill_u32_uncounted(words_buf);

        // Window accumulators first (the RCT screen below consumes the
        // transition masks in place).
        let ones: u64 = words_buf.iter().map(|&x| u64::from(x.count_ones())).sum();
        let max_lag = usize::from(self.cfg.max_lag);
        let mut agreements = [0u64; 8];
        let mut lag_pairs = [0u64; 8];
        for slot in 0..max_lag {
            let lag = slot + 1;
            agreements[slot] = words_buf[lag..]
                .iter()
                .zip(words_buf.iter())
                .map(|(&a, &b)| u64::from((!(a ^ b)).count_ones()))
                .sum();
            lag_pairs[slot] = (w - lag) as u64 * 32;
        }

        // Exact RCT screen: `trans[i] = !(w[i+1] ^ w[i])` has bit `b` set
        // iff lane `b` kept its value across that transition; a lane trips
        // iff some `m = rct_cutoff − 1` consecutive transitions all keep
        // it. Sliding-window AND by doubling (AND is idempotent, so the
        // two covering sub-windows may overlap).
        let m = (self.rct_cutoff - 1) as usize;
        let rct_possible = m <= w.saturating_sub(1) && {
            for (i, t) in trans.iter_mut().enumerate() {
                *t = !(words_buf[i + 1] ^ words_buf[i]);
            }
            let mut len = w - 1;
            let mut span = 1usize;
            while span * 2 <= m {
                for i in 0..len - span {
                    trans[i] &= trans[i + span];
                }
                len -= span;
                span *= 2;
            }
            let rem = m - span;
            (0..len - rem).any(|i| trans[i] & trans[i + rem] != 0)
        };
        if rct_possible {
            // Somewhere in the window a lane reaches the cutoff: rewind and
            // let the scalar path reproduce the exact trip word, counter
            // accounting, and RNG position.
            *src = snapshot;
            return self.startup(src);
        }

        // No RCT trip anywhere in the window, so the per-word loop is
        // unconditional: reconstruct its final register state directly.
        // `runs8` is 1 + the trailing run of constant transitions per lane.
        self.runs8 = [LANE_LSB; 4];
        let mut alive: u32 = !0;
        for pair in words_buf.windows(2).rev() {
            alive &= !(pair[1] ^ pair[0]);
            if alive == 0 {
                break;
            }
            for (g, runs) in self.runs8.iter_mut().enumerate() {
                *runs += byte_mask((u64::from(alive) >> (8 * g)) & 0xFF) & LANE_LSB;
            }
        }
        self.last = words_buf[w - 1];
        for slot in 0..max_lag {
            self.prev[slot] = words_buf[w - 1 - slot];
        }
        self.ones = ones;
        self.agreements = agreements;
        self.lag_pairs = lag_pairs;
        self.words = w as u64;
        self.window_pos = self.cfg.apt_window;
        Taus88::note_words_drawn(w as u64);

        // Window close on the final word, exactly as `observe` would run it.
        match self.close_window(w as u64 - 1) {
            Ok(()) => {
                VERDICTS_OK.add(w as u64);
                Ok(())
            }
            Err(alarm) => {
                // The final word's verdict is the alarm, so it is not
                // counted as OK; accumulators stay un-reset, as on the
                // scalar trip path.
                self.alarm = Some(alarm);
                ALARMS.record_always(1);
                VERDICTS_OK.add(w as u64 - 1);
                Err(alarm)
            }
        }
    }

    /// Evaluates the windowed tests and resets the window accumulators.
    fn close_window(&mut self, index: u64) -> Result<(), HealthAlarm> {
        let window_bits = u64::from(self.cfg.apt_window) * 32;
        let deviation = self.ones.abs_diff(window_bits / 2);
        if deviation >= self.apt_cutoff {
            return Err(HealthAlarm {
                test: HealthTest::AdaptiveProportion {
                    ones: self.ones,
                    window_bits,
                },
                word_index: index,
            });
        }
        for lag in 1..=usize::from(self.cfg.max_lag) {
            let pairs = self.lag_pairs[lag - 1];
            if pairs == 0 {
                continue;
            }
            let agreements = self.agreements[lag - 1];
            // Cutoff from the actual pair count: the first window compares
            // slightly fewer pairs than later ones.
            if agreements.abs_diff(pairs / 2) >= self.cfg.balance_cutoff(pairs) {
                return Err(HealthAlarm {
                    test: HealthTest::LagCorrelation {
                        lag: lag as u8,
                        agreements,
                        window_bits: pairs,
                    },
                    word_index: index,
                });
            }
        }
        self.ones = 0;
        self.agreements = [0; 8];
        self.lag_pairs = [0; 8];
        self.window_pos = 0;
        Ok(())
    }
}

impl Default for UrngHealth {
    fn default() -> Self {
        UrngHealth::new(HealthConfig::default())
    }
}

/// An offline URNG diagnostic: counts ones per bit position over a window
/// and flags positions whose frequency leaves `[0.5 − tol, 0.5 + tol]`.
///
/// This is the naive precursor of [`UrngHealth`] — useful for post-hoc
/// characterization of a captured stream, but with no principled cutoff and
/// no latching; the continuous tests above are what the fail-safe device
/// pipeline gates on.
#[derive(Debug, Clone)]
pub struct BitHealthMonitor {
    ones: [u64; 32],
    samples: u64,
}

impl BitHealthMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        BitHealthMonitor {
            ones: [0; 32],
            samples: 0,
        }
    }

    /// Feeds one 32-bit word.
    pub fn observe(&mut self, word: u32) {
        self.samples += 1;
        for (i, count) in self.ones.iter_mut().enumerate() {
            *count += u64::from((word >> i) & 1);
        }
    }

    /// Number of observed words.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Bit positions whose ones-frequency is outside `0.5 ± tol`.
    pub fn unhealthy_bits(&self, tol: f64) -> Vec<u8> {
        if self.samples == 0 {
            return Vec::new();
        }
        (0..32u8)
            .filter(|&i| {
                let f = self.ones[i as usize] as f64 / self.samples as f64;
                (f - 0.5).abs() > tol
            })
            .collect()
    }

    /// Whether every bit position looks fair at tolerance `tol`.
    pub fn healthy(&self, tol: f64) -> bool {
        self.unhealthy_bits(tol).is_empty()
    }
}

impl Default for BitHealthMonitor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{BiasedBits, CorrelatedBits, StuckAtBits};
    use crate::tausworthe::Taus88;

    fn feed_until_alarm<R: RandomBits>(
        health: &mut UrngHealth,
        src: &mut R,
        max_words: u64,
    ) -> Option<HealthAlarm> {
        for _ in 0..max_words {
            if let Err(alarm) = health.observe(src.next_u32()) {
                return Some(alarm);
            }
        }
        None
    }

    #[test]
    fn default_cutoffs_match_the_nist_formulas() {
        let cfg = HealthConfig::default();
        assert_eq!(cfg.rct_cutoff(), 41);
        // t = ceil(sqrt(32768 * 41 * ln2 / 2)) = ceil(sqrt(465 k)) = 683.
        assert_eq!(cfg.balance_cutoff(32 * 1024), 683);
    }

    #[test]
    fn cutoffs_grow_with_stricter_alpha() {
        let loose = HealthConfig::new(10, 1024, 4).unwrap();
        let strict = HealthConfig::new(50, 1024, 4).unwrap();
        assert!(strict.rct_cutoff() > loose.rct_cutoff());
        assert!(strict.balance_cutoff(32_768) > loose.balance_cutoff(32_768));
    }

    #[test]
    fn config_rejects_out_of_range_parameters() {
        assert!(HealthConfig::new(3, 1024, 4).is_err());
        assert!(HealthConfig::new(61, 1024, 4).is_err());
        assert!(HealthConfig::new(40, 32, 4).is_err());
        assert!(HealthConfig::new(40, 1024, 9).is_err());
        assert!(HealthConfig::new(40, 1024, 0).is_ok());
    }

    #[test]
    fn healthy_taus88_raises_no_alarm_over_a_million_words() {
        let mut health = UrngHealth::default();
        let mut rng = Taus88::from_seed(2018);
        assert_eq!(feed_until_alarm(&mut health, &mut rng, 1_000_000), None);
        assert_eq!(health.words(), 1_000_000);
        assert!(!health.is_alarmed());
    }

    #[test]
    fn stuck_bit_trips_repetition_count_fast() {
        let mut health = UrngHealth::default();
        let mut src = StuckAtBits::new(Taus88::from_seed(5), 17, true);
        let alarm = feed_until_alarm(&mut health, &mut src, 10_000).expect("must trip");
        match alarm.test {
            HealthTest::RepetitionCount { bit, run } => {
                assert_eq!(bit, 17);
                assert_eq!(run, HealthConfig::default().rct_cutoff());
            }
            other => panic!("expected RCT trip, got {other:?}"),
        }
        // Cutoff is 41; the run can only start at word 0.
        assert!(
            alarm.word_index < 64,
            "latency {} too high",
            alarm.word_index
        );
    }

    #[test]
    fn broad_bias_trips_adaptive_proportion_within_one_window() {
        let mut health = UrngHealth::default();
        let mut src = BiasedBits::new(Taus88::from_seed(6), 64);
        let alarm = feed_until_alarm(&mut health, &mut src, 100_000).expect("must trip");
        // Strong bias also produces long same-value runs, so either windowed
        // APT or per-lane RCT may fire first; both are correct detections.
        assert!(
            alarm.word_index < 2 * u64::from(HealthConfig::default().apt_window()),
            "latency {} too high",
            alarm.word_index
        );
    }

    #[test]
    fn mild_bias_trips_apt_not_rct() {
        let mut health = UrngHealth::default();
        let mut src = BiasedBits::new(Taus88::from_seed(7), 16);
        let alarm = feed_until_alarm(&mut health, &mut src, 100_000).expect("must trip");
        assert!(
            matches!(alarm.test, HealthTest::AdaptiveProportion { .. }),
            "expected APT trip, got {:?}",
            alarm.test
        );
    }

    #[test]
    fn lag_correlated_source_trips_the_lag_test() {
        // Marginally uniform, so RCT and APT stay quiet — only the lag test
        // can see this fault.
        let mut health = UrngHealth::default();
        let mut src = CorrelatedBits::new(Taus88::from_seed(8), 2, 128);
        let alarm = feed_until_alarm(&mut health, &mut src, 100_000).expect("must trip");
        match alarm.test {
            HealthTest::LagCorrelation { lag, .. } => assert_eq!(lag, 2),
            other => panic!("expected lag trip, got {other:?}"),
        }
    }

    #[test]
    fn alarm_latches_until_reset() {
        let mut health = UrngHealth::default();
        let mut src = StuckAtBits::new(Taus88::from_seed(9), 0, false);
        let alarm = feed_until_alarm(&mut health, &mut src, 10_000).expect("must trip");
        // Further observations are refused with the same alarm, even for
        // perfectly healthy words.
        let err = health.observe(0x5555_AAAA).unwrap_err();
        assert_eq!(err, alarm);
        assert!(health.is_alarmed());

        health.reset();
        assert!(!health.is_alarmed());
        assert_eq!(health.words(), 0);
        let mut good = Taus88::from_seed(10);
        assert!(health.startup(&mut good).is_ok());
        assert_eq!(
            health.words(),
            u64::from(HealthConfig::default().startup_words())
        );
    }

    #[test]
    fn startup_on_a_faulty_source_fails() {
        let mut health = UrngHealth::default();
        let mut src = StuckAtBits::new(Taus88::from_seed(11), 4, true);
        assert!(health.startup(&mut src).is_err());
        assert!(health.is_alarmed());
    }

    #[test]
    fn alternating_words_do_not_trip_rct() {
        // Each lane flips every word: runs never exceed one, and ones stay
        // perfectly balanced. (The lag-2 test would catch this periodicity;
        // with lags enabled it trips as LagCorrelation, which is correct —
        // here we isolate the RCT by disabling lags.)
        let cfg = HealthConfig::new(40, 1024, 0).unwrap();
        let mut health = UrngHealth::new(cfg);
        for i in 0..10_000u32 {
            let word = if i % 2 == 0 { 0xAAAA_AAAA } else { 0x5555_5555 };
            assert!(health.observe(word).is_ok());
        }
    }

    #[test]
    fn constant_word_trips_every_lane_candidate() {
        let mut health = UrngHealth::default();
        let mut alarm = None;
        for _ in 0..100 {
            if let Err(a) = health.observe(0xDEAD_BEEF) {
                alarm = Some(a);
                break;
            }
        }
        let alarm = alarm.expect("constant stream must trip");
        assert!(matches!(alarm.test, HealthTest::RepetitionCount { .. }));
        assert_eq!(
            alarm.word_index,
            u64::from(HealthConfig::default().rct_cutoff()) - 1
        );
    }

    /// Per-bit scalar formulation of the monitor, kept verbatim as the
    /// reference the lane-parallel implementation must match word-for-word.
    struct ScalarHealth {
        cfg: HealthConfig,
        rct_cutoff: u32,
        apt_cutoff: u64,
        runs: [u32; 32],
        last: u32,
        history: [u32; 8],
        window_pos: u32,
        ones: u64,
        agreements: [u64; 8],
        lag_pairs: [u64; 8],
        words: u64,
        alarm: Option<HealthAlarm>,
    }

    impl ScalarHealth {
        fn new(cfg: HealthConfig) -> Self {
            ScalarHealth {
                cfg,
                rct_cutoff: cfg.rct_cutoff(),
                apt_cutoff: cfg.balance_cutoff(u64::from(cfg.apt_window) * 32),
                runs: [0; 32],
                last: 0,
                history: [0; 8],
                window_pos: 0,
                ones: 0,
                agreements: [0; 8],
                lag_pairs: [0; 8],
                words: 0,
                alarm: None,
            }
        }

        fn observe(&mut self, word: u32) -> Result<(), HealthAlarm> {
            if let Some(alarm) = self.alarm {
                return Err(alarm);
            }
            let index = self.words;
            if index == 0 {
                self.runs = [1; 32];
            } else {
                let same = !(word ^ self.last);
                for (bit, run) in self.runs.iter_mut().enumerate() {
                    if (same >> bit) & 1 == 1 {
                        *run += 1;
                        if *run >= self.rct_cutoff {
                            let alarm = HealthAlarm {
                                test: HealthTest::RepetitionCount {
                                    bit: bit as u8,
                                    run: *run,
                                },
                                word_index: index,
                            };
                            self.words += 1;
                            self.alarm = Some(alarm);
                            return Err(alarm);
                        }
                    } else {
                        *run = 1;
                    }
                }
            }
            self.last = word;
            self.ones += u64::from(word.count_ones());
            let max_lag = u64::from(self.cfg.max_lag);
            for lag in 1..=max_lag {
                if index >= lag {
                    let prev = self.history[((index - lag) % max_lag) as usize];
                    let slot = (lag - 1) as usize;
                    self.agreements[slot] += u64::from((!(word ^ prev)).count_ones());
                    self.lag_pairs[slot] += 32;
                }
            }
            if max_lag > 0 {
                self.history[(index % max_lag) as usize] = word;
            }
            self.words += 1;
            self.window_pos += 1;
            if self.window_pos == self.cfg.apt_window {
                if let Err(alarm) = self.close_window(index) {
                    self.alarm = Some(alarm);
                    return Err(alarm);
                }
            }
            Ok(())
        }

        fn close_window(&mut self, index: u64) -> Result<(), HealthAlarm> {
            let window_bits = u64::from(self.cfg.apt_window) * 32;
            let deviation = self.ones.abs_diff(window_bits / 2);
            if deviation >= self.apt_cutoff {
                return Err(HealthAlarm {
                    test: HealthTest::AdaptiveProportion {
                        ones: self.ones,
                        window_bits,
                    },
                    word_index: index,
                });
            }
            for lag in 1..=usize::from(self.cfg.max_lag) {
                let pairs = self.lag_pairs[lag - 1];
                if pairs == 0 {
                    continue;
                }
                let agreements = self.agreements[lag - 1];
                if agreements.abs_diff(pairs / 2) >= self.cfg.balance_cutoff(pairs) {
                    return Err(HealthAlarm {
                        test: HealthTest::LagCorrelation {
                            lag: lag as u8,
                            agreements,
                            window_bits: pairs,
                        },
                        word_index: index,
                    });
                }
            }
            self.ones = 0;
            self.agreements = [0; 8];
            self.lag_pairs = [0; 8];
            self.window_pos = 0;
            Ok(())
        }
    }

    #[test]
    fn lane_parallel_observe_matches_the_scalar_reference() {
        let configs = [
            HealthConfig::new(40, 64, 4).unwrap(),
            HealthConfig::new(4, 64, 8).unwrap(),
            HealthConfig::new(60, 128, 1).unwrap(),
            HealthConfig::new(20, 64, 0).unwrap(),
        ];
        // Streams covering the healthy path, every RCT trip shape, lag
        // correlation, broad bias, and pathological periodic words.
        let streams: Vec<Vec<u32>> = vec![
            Vec::new(),
            (0..4096).map(|_| 0xDEAD_BEEF).collect(),
            {
                let mut rng = Taus88::from_seed(11);
                (0..4096).map(|_| rng.next_u32()).collect()
            },
            {
                let mut src = StuckAtBits::new(Taus88::from_seed(13), 31, false);
                (0..4096).map(|_| src.next_u32()).collect()
            },
            {
                let mut src = StuckAtBits::new(Taus88::from_seed(17), 0, true);
                (0..4096).map(|_| src.next_u32()).collect()
            },
            {
                let mut src = CorrelatedBits::new(Taus88::from_seed(19), 2, 128);
                (0..4096).map(|_| src.next_u32()).collect()
            },
            {
                let mut src = BiasedBits::new(Taus88::from_seed(23), 48);
                (0..4096).map(|_| src.next_u32()).collect()
            },
            (0..4096u32)
                .map(|i| if i % 2 == 0 { 0xAAAA_AAAA } else { 0x5555_5555 })
                .collect(),
        ];
        for cfg in configs {
            for stream in &streams {
                let mut fast = UrngHealth::new(cfg);
                let mut scalar = ScalarHealth::new(cfg);
                for (i, &word) in stream.iter().enumerate() {
                    assert_eq!(
                        fast.observe(word),
                        scalar.observe(word),
                        "divergence at word {i} (cfg alpha_exp {})",
                        cfg.alpha_exp
                    );
                }
                assert_eq!(fast.words(), scalar.words);
                assert_eq!(fast.alarm().copied(), scalar.alarm);
            }
        }
    }

    /// Runs scalar `startup` and `startup_batched` from identical
    /// (monitor, generator) pairs and asserts bitwise-equivalent results:
    /// verdict, alarm, word count, generator position, and — by feeding
    /// two more full windows through `observe` — the entire reconstructed
    /// register state (runs, lag shift register, window accumulators).
    fn assert_startup_equivalence(cfg: HealthConfig, rng: &Taus88) -> Result<(), HealthAlarm> {
        let (mut scalar_h, mut batched_h) = (UrngHealth::new(cfg), UrngHealth::new(cfg));
        let (mut scalar_rng, mut batched_rng) = (rng.clone(), rng.clone());
        let mut scratch = Vec::new();
        let scalar = scalar_h.startup(&mut scalar_rng);
        let batched = batched_h.startup_batched(&mut batched_rng, &mut scratch);
        assert_eq!(scalar, batched);
        assert_eq!(scalar_h.words(), batched_h.words());
        assert_eq!(scalar_h.alarm(), batched_h.alarm());
        assert_eq!(
            scalar_rng, batched_rng,
            "generator positions diverged after startup"
        );
        let mut probe = Taus88::from_seed(0x9E37_79B9);
        for i in 0..2 * cfg.apt_window() {
            let word = probe.next_u32();
            assert_eq!(
                scalar_h.observe(word),
                batched_h.observe(word),
                "post-startup observe diverged at word {i}"
            );
        }
        assert_eq!(scalar_h.words(), batched_h.words());
        batched
    }

    #[test]
    fn batched_startup_matches_the_scalar_startup() {
        // Low alpha_exp makes healthy Taus88 windows trip the repetition
        // count often (exercising the rewind-and-replay path); alpha 40 is
        // the always-clean fleet operating point.
        let configs = [
            HealthConfig::new(4, 64, 4).unwrap(),
            HealthConfig::new(6, 64, 8).unwrap(),
            HealthConfig::new(8, 128, 2).unwrap(),
            HealthConfig::new(12, 64, 0).unwrap(),
            HealthConfig::new(40, 64, 4).unwrap(),
            HealthConfig::new(60, 64, 1).unwrap(),
        ];
        let mut rct_trips = 0u32;
        let mut clean = 0u32;
        for cfg in configs {
            for seed in 0..200u64 {
                match assert_startup_equivalence(cfg, &Taus88::from_seed(seed)) {
                    Ok(()) => clean += 1,
                    Err(a) => {
                        if let HealthTest::RepetitionCount { .. } = a.test {
                            rct_trips += 1;
                        }
                    }
                }
            }
        }
        assert!(rct_trips > 50, "sweep exercised only {rct_trips} RCT trips");
        assert!(clean > 50, "sweep exercised only {clean} clean startups");
    }

    #[test]
    fn batched_startup_window_trip_matches_the_scalar_startup() {
        // A window-close trip on a *healthy* Taus88 is a designed-rare
        // false positive (p ≈ 2^-alpha_exp per window), so the seed is
        // pinned by offline search: at alpha_exp 12 this window survives
        // every repetition-count check and then trips at window close,
        // covering the batched path's closed-form trip-state construction.
        let cfg = HealthConfig::new(12, 64, 4).unwrap();
        let alarm = assert_startup_equivalence(cfg, &Taus88::from_seed(WINDOW_TRIP_SEED))
            .expect_err("pinned seed must trip at window close");
        assert!(
            !matches!(alarm.test, HealthTest::RepetitionCount { .. }),
            "pinned seed tripped RCT ({alarm}), not a windowed test"
        );
    }

    /// Found by scanning seeds for a windowed (APT / lag-correlation) trip
    /// at `HealthConfig::new(12, 64, 4)`; see the test above.
    const WINDOW_TRIP_SEED: u64 = 28816;

    #[test]
    fn batched_startup_mid_stream_falls_back_to_scalar() {
        let cfg = HealthConfig::new(40, 64, 4).unwrap();
        let (mut scalar_h, mut batched_h) = (UrngHealth::new(cfg), UrngHealth::new(cfg));
        let (mut scalar_rng, mut batched_rng) = (Taus88::from_seed(3), Taus88::from_seed(3));
        // One word observed out-of-band: the fast path's fresh-window
        // precondition fails and it must delegate to the scalar loop.
        assert!(scalar_h.observe(0x1234_5678).is_ok());
        assert!(batched_h.observe(0x1234_5678).is_ok());
        let mut scratch = Vec::new();
        assert_eq!(
            scalar_h.startup(&mut scalar_rng),
            batched_h.startup_batched(&mut batched_rng, &mut scratch)
        );
        assert_eq!(scalar_rng, batched_rng);
        assert_eq!(scalar_h.words(), batched_h.words());
    }

    #[test]
    fn health_monitor_passes_a_good_urng() {
        let mut rng = Taus88::from_seed(2);
        let mut mon = BitHealthMonitor::new();
        for _ in 0..50_000 {
            mon.observe(rng.next_u32());
        }
        assert!(
            mon.healthy(0.02),
            "bad bits: {:?}",
            mon.unhealthy_bits(0.02)
        );
    }

    #[test]
    fn health_monitor_catches_a_stuck_bit() {
        let mut rng = StuckAtBits::new(Taus88::from_seed(3), 13, true);
        let mut mon = BitHealthMonitor::new();
        for _ in 0..50_000 {
            mon.observe(rng.next_u32());
        }
        assert_eq!(mon.unhealthy_bits(0.02), vec![13]);
    }

    #[test]
    fn health_monitor_catches_broad_bias() {
        let mut rng = BiasedBits::new(Taus88::from_seed(4), 64);
        let mut mon = BitHealthMonitor::new();
        for _ in 0..50_000 {
            mon.observe(rng.next_u32());
        }
        assert!(
            mon.unhealthy_bits(0.02).len() > 16,
            "bias should show on most bits: {:?}",
            mon.unhealthy_bits(0.02)
        );
    }

    #[test]
    fn empty_monitor_is_vacuously_healthy() {
        assert!(BitHealthMonitor::new().healthy(0.01));
    }
}
