//! The fixed-point Laplace RNG of Section III-A2 (Fig. 3).
//!
//! The hardware pipeline is: a `Bu`-bit uniform word `u = m·2^-Bu`
//! (`m ∈ {1, …, 2^Bu}`), mapped through the half-ICDF `-λ·ln u`, rounded to
//! the nearest output grid point `kΔ` (a `By`-bit signed word), and given a
//! random sign. Because `u ≥ 2^-Bu`, the largest magnitude the unit can emit
//! is `λ·Bu·ln 2` — the bounded support that breaks the naive Laplace
//! mechanism's privacy guarantee.

use ulp_fixed::{Fx, QFormat};

use crate::cordic::CordicLn;
use crate::error::RngError;
use crate::source::RandomBits;

/// Static configuration of a fixed-point Laplace RNG.
///
/// `Bu` is the uniform generator's output width, `By` the signed output word
/// width, `Δ` the output quantization step, and `λ` the Laplace scale
/// (`λ = d/ε` for the local-DP mechanism over a sensor range of length `d`).
///
/// # Examples
///
/// ```
/// use ulp_rng::FxpLaplaceConfig;
///
/// // The paper's Fig. 4 setting: Bu=17, By=12, Δ=10/2^5, Lap(20).
/// let cfg = FxpLaplaceConfig::new(17, 12, 10.0 / 32.0, 20.0)?;
/// assert_eq!(cfg.max_output_k(), 2047);
/// // Largest generatable magnitude ≈ λ·Bu·ln2 ≈ 235.7, on the Δ grid.
/// assert_eq!(cfg.max_magnitude(), 754.0 * 10.0 / 32.0);
/// # Ok::<(), ulp_rng::RngError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FxpLaplaceConfig {
    bu: u8,
    by: u8,
    delta: f64,
    lambda: f64,
}

impl FxpLaplaceConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// [`RngError::InvalidConfig`] unless `1 ≤ Bu ≤ 52` (so `2^Bu` counts
    /// stay exact in `f64`/`u64` arithmetic), `2 ≤ By ≤ 62`, and `Δ`, `λ`
    /// are finite and positive.
    pub fn new(bu: u8, by: u8, delta: f64, lambda: f64) -> Result<Self, RngError> {
        if !(1..=52).contains(&bu) {
            return Err(RngError::InvalidConfig("Bu must be in 1..=52"));
        }
        if !(2..=62).contains(&by) {
            return Err(RngError::InvalidConfig("By must be in 2..=62"));
        }
        if !(delta.is_finite() && delta > 0.0) {
            return Err(RngError::InvalidConfig("Δ must be finite and positive"));
        }
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(RngError::InvalidConfig("λ must be finite and positive"));
        }
        Ok(FxpLaplaceConfig {
            bu,
            by,
            delta,
            lambda,
        })
    }

    /// URNG output width `Bu`.
    pub fn bu(self) -> u8 {
        self.bu
    }

    /// Output word width `By` (signed).
    pub fn by(self) -> u8 {
        self.by
    }

    /// Output quantization step `Δ`.
    pub fn delta(self) -> f64 {
        self.delta
    }

    /// Laplace scale `λ`.
    pub fn lambda(self) -> f64 {
        self.lambda
    }

    /// Number of distinct URNG outputs, `2^Bu`.
    pub fn urng_cardinality(self) -> u64 {
        1u64 << self.bu
    }

    /// Largest representable magnitude index in the `By`-bit signed output
    /// word: `2^(By-1) - 1` (sign-magnitude generation yields a symmetric
    /// range).
    pub fn max_output_k(self) -> i64 {
        (1i64 << (self.by - 1)) - 1
    }

    /// The magnitude index produced by the rarest uniform (`m = 1`), before
    /// output-word saturation: `round(λ·Bu·ln2 / Δ)`.
    pub fn natural_max_k(self) -> i64 {
        (self.lambda * self.bu as f64 * std::f64::consts::LN_2 / self.delta).round() as i64
    }

    /// Largest magnitude index actually emitted.
    pub fn support_max_k(self) -> i64 {
        self.natural_max_k().min(self.max_output_k())
    }

    /// Largest magnitude value the RNG can emit, `support_max_k() · Δ`
    /// (`L` in the paper's Fig. 4 discussion; ≈ `λ·Bu·ln2` when the output
    /// word is wide enough).
    pub fn max_magnitude(self) -> f64 {
        self.support_max_k() as f64 * self.delta
    }

    /// Whether the `By`-bit output word clips the URNG-limited range
    /// (`natural_max_k > max_output_k`).
    pub fn saturates(self) -> bool {
        self.natural_max_k() > self.max_output_k()
    }

    /// The deterministic magnitude map of the inversion datapath: URNG index
    /// `m ∈ [1, 2^Bu]` to output magnitude index `k` (before saturation the
    /// value is `round(λ·(Bu·ln2 − ln m)/Δ)`).
    ///
    /// # Panics
    ///
    /// Panics if `m` is outside `[1, 2^Bu]`.
    pub fn magnitude_index(self, m: u64) -> i64 {
        assert!(
            m >= 1 && m <= self.urng_cardinality(),
            "URNG index m={m} out of range [1, 2^{}]",
            self.bu
        );
        let neg_ln_u = self.bu as f64 * std::f64::consts::LN_2 - (m as f64).ln();
        let k = (self.lambda * neg_ln_u / self.delta).round() as i64;
        k.min(self.max_output_k())
    }
}

/// Which datapath computes the logarithm inside the sampler.
#[derive(Debug, Clone)]
pub enum LogPath {
    /// Double-precision `ln` — the exact mathematical model of Section
    /// III-A2, used for analysis (its distribution matches
    /// [`crate::FxpNoisePmf`] exactly).
    Analytic,
    /// Fixed-point CORDIC `ln` — the hardware datapath of Section IV-B.
    Cordic(CordicLn),
}

/// The fixed-point Laplace RNG (Fig. 3): URNG → ICDF → rounder → sign.
///
/// # Examples
///
/// ```
/// use ulp_rng::{FxpLaplace, FxpLaplaceConfig, Taus88};
///
/// let cfg = FxpLaplaceConfig::new(17, 12, 10.0 / 32.0, 20.0)?;
/// let sampler = FxpLaplace::analytic(cfg);
/// let mut rng = Taus88::from_seed(2018);
/// let n = sampler.sample(&mut rng);
/// // Bounded support — this is the nonideality the paper exploits.
/// assert!(n.abs() <= cfg.max_magnitude());
/// # Ok::<(), ulp_rng::RngError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FxpLaplace {
    cfg: FxpLaplaceConfig,
    path: LogPath,
}

impl FxpLaplace {
    /// Creates a sampler using double-precision `ln` (the analysis model).
    pub fn analytic(cfg: FxpLaplaceConfig) -> Self {
        FxpLaplace {
            cfg,
            path: LogPath::Analytic,
        }
    }

    /// Creates a sampler whose logarithm runs through the fixed-point
    /// CORDIC datapath.
    pub fn cordic(cfg: FxpLaplaceConfig, unit: CordicLn) -> Self {
        FxpLaplace {
            cfg,
            path: LogPath::Cordic(unit),
        }
    }

    /// The sampler's configuration.
    pub fn config(&self) -> FxpLaplaceConfig {
        self.cfg
    }

    /// Whether the logarithm runs through the analytic (double-precision)
    /// datapath, whose output distribution is exactly [`crate::FxpNoisePmf`].
    /// Table-driven fast paths are only valid for analytic samplers; the
    /// CORDIC datapath may flip boundary magnitudes and must be simulated
    /// draw by draw.
    pub fn is_analytic(&self) -> bool {
        matches!(self.path, LogPath::Analytic)
    }

    /// Maps a URNG index `m ∈ [1, 2^Bu]` to a magnitude index through the
    /// configured log datapath.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn magnitude_index(&self, m: u64) -> i64 {
        match &self.path {
            LogPath::Analytic => self.cfg.magnitude_index(m),
            LogPath::Cordic(unit) => {
                assert!(
                    m >= 1 && m <= self.cfg.urng_cardinality(),
                    "URNG index m={m} out of range"
                );
                // u = m · 2^-Bu as a fixed-point word with Bu fraction bits.
                let in_fmt = QFormat::new((self.cfg.bu + 2).min(63), self.cfg.bu)
                    .expect("Bu+2 ≤ 54 is a valid format");
                let u = Fx::from_raw(m as i64, in_fmt).expect("m fits Bu+2 bits");
                // -ln u ≤ Bu·ln2 < 37: 24 fraction bits with 7+ integer bits.
                let out_fmt = QFormat::new(32, 24).expect("valid format");
                let ln_u = unit.ln(u, out_fmt).expect("u > 0 by construction").to_f64();
                let k = (self.cfg.lambda * (-ln_u) / self.cfg.delta).round() as i64;
                k.clamp(0, self.cfg.max_output_k())
            }
        }
    }

    /// Draws one signed magnitude index `k` (so the noise value is `kΔ`).
    pub fn sample_index<R: RandomBits + ?Sized>(&self, rng: &mut R) -> i64 {
        let negative = rng.bit();
        let m = rng.bits(self.cfg.bu) + 1;
        let k = self.magnitude_index(m);
        if negative {
            -k
        } else {
            k
        }
    }

    /// Draws one noise value `n = kΔ`.
    pub fn sample<R: RandomBits + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_index(rng) as f64 * self.cfg.delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ScriptedBits;
    use crate::tausworthe::Taus88;

    fn paper_cfg() -> FxpLaplaceConfig {
        // Fig. 4: Bu=17, By=12, Δ=10/2^5, Lap(20).
        FxpLaplaceConfig::new(17, 12, 10.0 / 32.0, 20.0).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(FxpLaplaceConfig::new(0, 12, 0.1, 1.0).is_err());
        assert!(FxpLaplaceConfig::new(53, 12, 0.1, 1.0).is_err());
        assert!(FxpLaplaceConfig::new(17, 1, 0.1, 1.0).is_err());
        assert!(FxpLaplaceConfig::new(17, 63, 0.1, 1.0).is_err());
        assert!(FxpLaplaceConfig::new(17, 12, 0.0, 1.0).is_err());
        assert!(FxpLaplaceConfig::new(17, 12, 0.1, -1.0).is_err());
        assert!(FxpLaplaceConfig::new(17, 12, 0.1, 1.0).is_ok());
    }

    #[test]
    fn paper_setting_has_expected_bounds() {
        let cfg = paper_cfg();
        // L = λ·Bu·ln2 = 20·17·ln2 ≈ 235.67; k_nat = round(235.67/0.3125).
        assert_eq!(cfg.natural_max_k(), 754);
        assert_eq!(cfg.max_output_k(), 2047);
        assert!(!cfg.saturates());
        assert_eq!(cfg.support_max_k(), 754);
    }

    #[test]
    fn extreme_uniform_maps_to_max_magnitude() {
        let cfg = paper_cfg();
        assert_eq!(cfg.magnitude_index(1), cfg.natural_max_k());
        // The most likely uniform (m = 2^Bu, u = 1) maps to zero noise.
        assert_eq!(cfg.magnitude_index(cfg.urng_cardinality()), 0);
    }

    #[test]
    fn magnitude_is_monotone_in_m() {
        let cfg = FxpLaplaceConfig::new(10, 12, 0.25, 5.0).unwrap();
        let mut prev = i64::MAX;
        for m in 1..=cfg.urng_cardinality() {
            let k = cfg.magnitude_index(m);
            assert!(k <= prev, "magnitude must decrease as m grows");
            prev = k;
        }
    }

    #[test]
    fn narrow_output_word_saturates() {
        // By=6 → max_output_k = 31 while natural max is much larger.
        let cfg = FxpLaplaceConfig::new(17, 6, 10.0 / 32.0, 20.0).unwrap();
        assert!(cfg.saturates());
        assert_eq!(cfg.magnitude_index(1), 31);
    }

    #[test]
    fn sample_respects_support_bound() {
        let cfg = paper_cfg();
        let s = FxpLaplace::analytic(cfg);
        let mut rng = Taus88::from_seed(5);
        for _ in 0..10_000 {
            let k = s.sample_index(&mut rng);
            assert!(k.abs() <= cfg.support_max_k());
        }
    }

    #[test]
    fn scripted_bits_hit_the_deepest_tail() {
        let cfg = paper_cfg();
        let s = FxpLaplace::analytic(cfg);
        // First word: sign bit (MSB=0 → positive). Second: Bu bits all zero
        // → m = 1 → deepest tail.
        let mut src = ScriptedBits::new(vec![0x0000_0000, 0x0000_0000]);
        let k = s.sample_index(&mut src);
        assert_eq!(k, cfg.natural_max_k());
    }

    #[test]
    fn sign_bit_controls_sign() {
        let cfg = paper_cfg();
        let s = FxpLaplace::analytic(cfg);
        let mut src = ScriptedBits::new(vec![0x8000_0000, 0x0000_0000]);
        let k = s.sample_index(&mut src);
        assert_eq!(k, -cfg.natural_max_k());
    }

    #[test]
    fn cordic_path_matches_analytic_almost_everywhere() {
        let cfg = FxpLaplaceConfig::new(12, 12, 0.25, 5.0).unwrap();
        let analytic = FxpLaplace::analytic(cfg);
        let hw = FxpLaplace::cordic(cfg, CordicLn::new(32));
        let mut disagreements = 0u64;
        for m in 1..=cfg.urng_cardinality() {
            let ka = analytic.magnitude_index(m);
            let kh = hw.magnitude_index(m);
            assert!(
                (ka - kh).abs() <= 1,
                "m={m}: analytic {ka} vs cordic {kh} differ by more than 1 step"
            );
            if ka != kh {
                disagreements += 1;
            }
        }
        // Boundary flips only: a tiny fraction of the 4096 inputs.
        assert!(
            disagreements < cfg.urng_cardinality() / 100,
            "{disagreements} CORDIC/analytic disagreements"
        );
    }

    #[test]
    fn empirical_distribution_tracks_ideal_in_the_body() {
        let cfg = paper_cfg();
        let s = FxpLaplace::analytic(cfg);
        let mut rng = Taus88::from_seed(1);
        let n = 200_000;
        let within_one_lambda = (0..n)
            .map(|_| s.sample(&mut rng))
            .filter(|x| x.abs() <= 20.0)
            .count();
        // Ideal Lap(20): P(|X| ≤ λ) = 1 − e^-1 ≈ 0.632.
        let frac = within_one_lambda as f64 / n as f64;
        assert!((frac - 0.632).abs() < 0.01, "got {frac}");
    }
}
