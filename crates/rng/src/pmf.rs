//! The exact probability mass function of the fixed-point Laplace RNG
//! (paper Eq. 11).
//!
//! Every probability is an integer count of URNG outcomes over the
//! denominator `2^(Bu+1)` (the `+1` is the sign bit), so privacy-loss ratios
//! computed from this module are *exact integer ratios* — no floating-point
//! smoothing can hide a zero-probability gap. This is what lets the test
//! suite machine-check the paper's central claim (naive FxP noising has
//! infinite privacy loss) and the fix (thresholding/resampling bound it).

use crate::error::RngError;
use crate::fxp::FxpLaplaceConfig;

/// Exact PMF of the fixed-point Laplace RNG output `n = kΔ`.
///
/// Probabilities are stored as exact counts: `Pr[n = kΔ] = weight(k) /
/// 2^(Bu+1)`.
///
/// # Examples
///
/// ```
/// use ulp_rng::{FxpLaplaceConfig, FxpNoisePmf};
///
/// let cfg = FxpLaplaceConfig::new(17, 12, 10.0 / 32.0, 20.0)?;
/// let pmf = FxpNoisePmf::closed_form(cfg);
/// // Total mass is exactly one.
/// assert_eq!(pmf.total_weight(), 1u128 << 18);
/// // The support is bounded — the first nonideality of Fig. 4(b).
/// assert!(pmf.weight(pmf.support_max_k() + 1) == 0);
/// # Ok::<(), ulp_rng::RngError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FxpNoisePmf {
    bu: u8,
    support_max_k: i64,
    /// `counts[k]` = number of URNG indices `m` mapping to magnitude `k`.
    counts: Vec<u64>,
    /// Suffix sums of `counts` for O(1) tail queries.
    suffix: Vec<u64>,
    /// `Σ k·counts[k]`, precomputed so `mean_magnitude_k` is O(1).
    weighted_magnitude_sum: u128,
}

impl FxpNoisePmf {
    /// Builds the PMF from the closed-form interval counts of Eq. (11):
    /// with `A(t) = 2^Bu · exp(−tΔ/λ)`, the number of uniforms mapping to
    /// magnitude `k ≥ 1` is `⌊A(k−½)⌋ − ⌊A(k+½)⌋`, and the top magnitude
    /// absorbs `⌊A(k_top−½)⌋` (which also models `By`-word saturation).
    pub fn closed_form(cfg: FxpLaplaceConfig) -> Self {
        let two_bu = cfg.urng_cardinality() as f64;
        let rate = cfg.delta() / cfg.lambda();
        let a = |t: f64| -> f64 { two_bu * (-t * rate).exp() };
        let top = cfg.support_max_k();
        let mut counts = vec![0u64; (top + 1) as usize];
        if top == 0 {
            counts[0] = cfg.urng_cardinality();
        } else {
            counts[0] = cfg.urng_cardinality() - a(0.5).floor() as u64;
            for k in 1..top {
                let hi = a(k as f64 - 0.5).floor() as u64;
                let lo = a(k as f64 + 0.5).floor() as u64;
                counts[k as usize] = hi - lo;
            }
            counts[top as usize] = a(top as f64 - 0.5).floor() as u64;
        }
        Self::from_counts(cfg.bu(), counts)
    }

    /// Builds the PMF by exhaustively enumerating every URNG outcome through
    /// the configured magnitude map — exact with respect to the sampler by
    /// construction.
    ///
    /// # Errors
    ///
    /// [`RngError::InvalidConfig`] if `Bu > 26` (enumeration would exceed
    /// 2^26 evaluations; use [`FxpNoisePmf::closed_form`] instead).
    pub fn by_enumeration(cfg: FxpLaplaceConfig) -> Result<Self, RngError> {
        if cfg.bu() > 26 {
            return Err(RngError::InvalidConfig(
                "enumeration is only supported for Bu ≤ 26",
            ));
        }
        let mut counts = vec![0u64; (cfg.support_max_k() + 1) as usize];
        for m in 1..=cfg.urng_cardinality() {
            let k = cfg.magnitude_index(m);
            counts[k as usize] += 1;
        }
        Ok(Self::from_counts(cfg.bu(), counts))
    }

    /// Builds a PMF from raw magnitude counts — the generic entry point for
    /// *other* symmetric sign-magnitude fixed-point RNGs (e.g. the Gaussian
    /// sampler), so their outputs plug into the same privacy-loss analysis.
    ///
    /// `counts[k]` is the number of the `2^bu` magnitude-uniform outcomes
    /// that map to magnitude index `k`; a separate sign bit is assumed, so
    /// probabilities are `counts[k] / 2^(bu+1)` per signed output (doubled
    /// at zero).
    ///
    /// # Panics
    ///
    /// Panics if the counts do not sum to `2^bu` or are empty.
    pub fn from_magnitude_counts(bu: u8, counts: Vec<u64>) -> Self {
        assert!(!counts.is_empty(), "counts must be nonempty");
        assert_eq!(
            counts.iter().sum::<u64>(),
            1u64 << bu,
            "counts must partition the 2^Bu uniform outcomes"
        );
        Self::from_counts(bu, counts)
    }

    fn from_counts(bu: u8, counts: Vec<u64>) -> Self {
        debug_assert_eq!(
            counts.iter().sum::<u64>(),
            1u64 << bu,
            "counts must partition the URNG range"
        );
        let mut suffix = vec![0u64; counts.len() + 1];
        let mut weighted_magnitude_sum: u128 = 0;
        for k in (0..counts.len()).rev() {
            suffix[k] = suffix[k + 1] + counts[k];
            weighted_magnitude_sum += k as u128 * counts[k] as u128;
        }
        FxpNoisePmf {
            bu,
            support_max_k: counts.len() as i64 - 1,
            counts,
            suffix,
            weighted_magnitude_sum,
        }
    }

    /// URNG width `Bu` this PMF was built for.
    pub fn bu(&self) -> u8 {
        self.bu
    }

    /// Largest magnitude index with (possibly zero) allocated mass.
    pub fn support_max_k(&self) -> i64 {
        self.support_max_k
    }

    /// The denominator all weights are expressed over, `2^(Bu+1)`.
    pub fn total_weight(&self) -> u128 {
        1u128 << (self.bu + 1)
    }

    /// Exact weight of the signed output `kΔ`, in units of `2^-(Bu+1)`:
    /// `Pr[n = kΔ] = weight(k) / 2^(Bu+1)`. Zero outside the support *and*
    /// in interior gaps (magnitudes no uniform maps to — the second
    /// nonideality of Fig. 4(b)).
    pub fn weight(&self, k: i64) -> u128 {
        let mag = k.unsigned_abs() as usize;
        if mag >= self.counts.len() {
            0
        } else if k == 0 {
            // Both signs collapse onto zero.
            2 * self.counts[0] as u128
        } else {
            self.counts[mag] as u128
        }
    }

    /// `Pr[n = kΔ]` as `f64`.
    pub fn prob(&self, k: i64) -> f64 {
        self.weight(k) as f64 / self.total_weight() as f64
    }

    /// Exact weight of the one-sided tail `Pr[n ≥ kΔ]` (for `k ≥ 1`) in
    /// units of `2^-(Bu+1)`: the quantity `⌊m₁(k)⌋ / 2^(Bu+1)` used in the
    /// paper's thresholding analysis (Eq. 14).
    ///
    /// # Panics
    ///
    /// Panics if `k < 1`; two-sided or signed-negative tails are composed by
    /// the caller from symmetry.
    pub fn tail_weight_ge(&self, k: i64) -> u128 {
        assert!(k >= 1, "tail_weight_ge requires k ≥ 1, got {k}");
        let mag = k as usize;
        if mag >= self.suffix.len() {
            0
        } else {
            self.suffix[mag] as u128
        }
    }

    /// `Pr[n ≥ kΔ]` as `f64` (for `k ≥ 1`).
    pub fn tail_prob_ge(&self, k: i64) -> f64 {
        self.tail_weight_ge(k) as f64 / self.total_weight() as f64
    }

    /// Iterates over `(k, weight)` for all signed outputs with the convention
    /// of [`FxpNoisePmf::weight`], from `-support_max_k` to `+support_max_k`.
    pub fn iter(&self) -> impl Iterator<Item = (i64, u128)> + '_ {
        (-self.support_max_k..=self.support_max_k).map(move |k| (k, self.weight(k)))
    }

    /// Number of interior magnitudes `1 ≤ k ≤ support_max_k` with zero
    /// probability — grid points the hardware can *never* emit even though
    /// the ideal distribution assigns them positive density.
    pub fn interior_gap_count(&self) -> usize {
        self.counts[1..].iter().filter(|&&c| c == 0).count()
    }

    /// Mean of the |n| magnitude distribution, in grid units (for energy /
    /// resampling-rate analysis). O(1): the weighted sum is precomputed when
    /// the PMF is built.
    pub fn mean_magnitude_k(&self) -> f64 {
        let total = 1u64 << self.bu;
        self.weighted_magnitude_sum as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fxp::FxpLaplace;
    use crate::tausworthe::Taus88;

    fn paper_cfg() -> FxpLaplaceConfig {
        FxpLaplaceConfig::new(17, 12, 10.0 / 32.0, 20.0).unwrap()
    }

    #[test]
    fn closed_form_matches_enumeration_exactly() {
        for (bu, by, delta, lambda) in [
            (10u8, 12u8, 0.25, 5.0),
            (12, 12, 0.3125, 20.0),
            (14, 10, 1.0, 8.0),
            (8, 6, 0.5, 3.0), // saturating case
            (17, 12, 10.0 / 32.0, 20.0),
        ] {
            let cfg = FxpLaplaceConfig::new(bu, by, delta, lambda).unwrap();
            let cf = FxpNoisePmf::closed_form(cfg);
            let en = FxpNoisePmf::by_enumeration(cfg).unwrap();
            assert_eq!(
                cf, en,
                "closed form diverged for Bu={bu} By={by} Δ={delta} λ={lambda}"
            );
        }
    }

    #[test]
    fn weights_sum_to_total() {
        let pmf = FxpNoisePmf::closed_form(paper_cfg());
        let sum: u128 = pmf.iter().map(|(_, w)| w).sum();
        assert_eq!(sum, pmf.total_weight());
    }

    #[test]
    fn pmf_is_symmetric() {
        let pmf = FxpNoisePmf::closed_form(paper_cfg());
        for k in 1..=pmf.support_max_k() {
            assert_eq!(pmf.weight(k), pmf.weight(-k));
        }
    }

    #[test]
    fn support_is_bounded() {
        let cfg = paper_cfg();
        let pmf = FxpNoisePmf::closed_form(cfg);
        assert_eq!(pmf.support_max_k(), 754);
        assert_eq!(pmf.weight(755), 0);
        assert_eq!(pmf.weight(-755), 0);
        assert!(pmf.weight(754) > 0);
    }

    #[test]
    fn tail_gaps_exist_in_paper_setting() {
        // Fig. 4(b): near the tail the hardware cannot realize every grid
        // point — some interior magnitudes have zero probability.
        let pmf = FxpNoisePmf::closed_form(paper_cfg());
        assert!(
            pmf.interior_gap_count() > 0,
            "expected zero-probability gaps in the tail"
        );
    }

    #[test]
    fn no_gaps_in_high_probability_body() {
        let pmf = FxpNoisePmf::closed_form(paper_cfg());
        // Body: |n| ≤ 2λ = 40 → k ≤ 128. Every grid point reachable.
        for k in 0..=128 {
            assert!(pmf.weight(k) > 0, "unexpected gap at k={k}");
        }
    }

    #[test]
    fn probabilities_are_multiples_of_resolution() {
        // Fig. 4(b): FxP probabilities are discrete multiples of 2^-(Bu+1).
        let pmf = FxpNoisePmf::closed_form(paper_cfg());
        let p = pmf.prob(400);
        let unit = 1.0 / pmf.total_weight() as f64;
        let multiple = p / unit;
        assert!((multiple - multiple.round()).abs() < 1e-9);
    }

    #[test]
    fn tail_weight_matches_direct_sum() {
        let pmf = FxpNoisePmf::closed_form(paper_cfg());
        for k in [1i64, 10, 100, 500, 754, 755, 10_000] {
            let direct: u128 = (k..=pmf.support_max_k().max(k))
                .map(|j| pmf.weight(j))
                .sum();
            assert_eq!(pmf.tail_weight_ge(k), direct, "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "tail_weight_ge requires k ≥ 1")]
    fn tail_weight_rejects_nonpositive_k() {
        let pmf = FxpNoisePmf::closed_form(paper_cfg());
        pmf.tail_weight_ge(0);
    }

    #[test]
    fn pmf_tracks_ideal_laplace_in_body() {
        let cfg = paper_cfg();
        let pmf = FxpNoisePmf::closed_form(cfg);
        // In the body, Pr[n = kΔ] ≈ Δ · LaplacePdf(kΔ).
        for k in [0i64, 10, 50, 100, 200] {
            let x = k as f64 * cfg.delta();
            let ideal = cfg.delta() * (-x.abs() / cfg.lambda()).exp() / (2.0 * cfg.lambda());
            let got = pmf.prob(k);
            let rel = (got - ideal).abs() / ideal;
            assert!(rel < 0.02, "k={k}: got {got}, ideal {ideal}");
        }
    }

    #[test]
    fn sampler_frequencies_match_pmf() {
        let cfg = FxpLaplaceConfig::new(10, 12, 0.25, 5.0).unwrap();
        let pmf = FxpNoisePmf::by_enumeration(cfg).unwrap();
        let s = FxpLaplace::analytic(cfg);
        let mut rng = Taus88::from_seed(77);
        let n = 400_000usize;
        let mut hist = std::collections::HashMap::new();
        for _ in 0..n {
            *hist.entry(s.sample_index(&mut rng)).or_insert(0u64) += 1;
        }
        // Compare empirical frequency with exact probability on the body.
        for k in -20i64..=20 {
            let p = pmf.prob(k);
            let emp = *hist.get(&k).unwrap_or(&0) as f64 / n as f64;
            if p > 1e-3 {
                assert!(
                    (emp - p).abs() < 4.0 * (p / n as f64).sqrt() + 1e-4,
                    "k={k}: empirical {emp}, exact {p}"
                );
            }
        }
    }

    #[test]
    fn saturating_config_piles_mass_at_top() {
        let cfg = FxpLaplaceConfig::new(17, 6, 10.0 / 32.0, 20.0).unwrap();
        assert!(cfg.saturates());
        let pmf = FxpNoisePmf::closed_form(cfg);
        assert_eq!(pmf.support_max_k(), 31);
        // Saturated top bin carries the whole tail: much heavier than its
        // unsaturated neighbour.
        assert!(pmf.weight(31) > 10 * pmf.weight(30));
    }

    #[test]
    fn tiny_lambda_degenerates_to_zero() {
        let cfg = FxpLaplaceConfig::new(8, 4, 100.0, 0.001).unwrap();
        let pmf = FxpNoisePmf::closed_form(cfg);
        assert_eq!(pmf.support_max_k(), 0);
        assert_eq!(pmf.weight(0), pmf.total_weight());
    }

    #[test]
    fn mean_magnitude_is_near_lambda_over_delta() {
        // E|Lap(λ)| = λ; in grid units λ/Δ = 64.
        let pmf = FxpNoisePmf::closed_form(paper_cfg());
        let got = pmf.mean_magnitude_k();
        assert!((got - 64.0).abs() < 1.0, "mean magnitude {got}");
    }
}
