//! O(1) table-driven exact sampling via the Walker/Vose alias method.
//!
//! The privacy analysis already computes the *exact* integer PMF of the
//! fixed-point Laplace RNG ([`FxpNoisePmf`], paper Eq. 11). The alias method
//! turns any finite integer-weighted PMF into a table of `n2 = 2^b` buckets,
//! each holding a cut point and two outcomes, such that one uniform word
//! (bucket index ‖ intra-bucket offset) selects an outcome with *exactly*
//! the source probabilities — no CORDIC `ln`, no rejection loop, one table
//! lookup per draw.
//!
//! Construction is done entirely in integer arithmetic (`u128`
//! intermediates), so the table's implied PMF equals the source PMF
//! bit-for-bit; [`AliasTable::verify_exact`] re-derives the per-outcome
//! weights from the finished buckets and checks this identity, and the
//! workspace equivalence tests assert it for full and conditional
//! (windowed) tables.
//!
//! Windowed tables ([`AliasTable::from_pmf_window`]) build the table from
//! the *unnormalized* in-window weights, which is automatically the
//! renormalized conditional law — resampling-to-a-window therefore folds
//! into the table and needs zero rejections.

use std::collections::HashMap;

use ulp_obs::Counter;

use crate::error::RngError;
use crate::pmf::FxpNoisePmf;
use crate::source::RandomBits;

/// One alias bucket: offsets below `cut` yield `self_k`, the rest `alias_k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Bucket {
    cut: u64,
    self_k: i64,
    alias_k: i64,
}

/// A Walker/Vose alias table for O(1) exact draws from a finite integer PMF.
///
/// # Examples
///
/// ```
/// use ulp_rng::{AliasTable, FxpLaplaceConfig, FxpNoisePmf, Taus88};
///
/// let cfg = FxpLaplaceConfig::new(10, 12, 0.25, 5.0)?;
/// let pmf = FxpNoisePmf::closed_form(cfg);
/// let table = AliasTable::from_pmf(&pmf)?;
/// assert!(table.verify_exact());
///
/// let mut rng = Taus88::from_seed(2018);
/// let k = table.draw(&mut rng);
/// assert!(k.abs() <= pmf.support_max_k());
/// # Ok::<(), ulp_rng::RngError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AliasTable {
    buckets: Vec<Bucket>,
    /// log2 of the bucket count.
    bucket_bits: u32,
    /// Bits drawn for the intra-bucket offset (`2^cap_bits >= capacity`).
    cap_bits: u32,
    /// Mask selecting the low `cap_bits` of a draw word.
    cap_mask: u64,
    /// Per-bucket capacity = total source weight.
    capacity: u64,
    /// Power-of-two capacity means offset draws never reject.
    cap_is_pow2: bool,
    /// Total bits consumed per accepted draw (0 = degenerate, no draw).
    word_bits: u32,
    /// The positive-weight source outcomes, for verification.
    outcomes: Vec<(i64, u128)>,
}

impl AliasTable {
    /// Builds a table from explicit `(outcome, weight)` pairs. Zero-weight
    /// entries are dropped; the implied probability of outcome `k` is
    /// `weight(k) / Σ weights`, exactly.
    ///
    /// # Errors
    ///
    /// [`RngError::InvalidConfig`] if no outcome has positive weight, the
    /// total weight exceeds `u64::MAX`, or the combined bucket + offset
    /// width exceeds 64 bits.
    pub fn from_weights(outcomes: &[(i64, u128)]) -> Result<Self, RngError> {
        let outcomes: Vec<(i64, u128)> = outcomes.iter().copied().filter(|&(_, w)| w > 0).collect();
        if outcomes.is_empty() {
            return Err(RngError::InvalidConfig(
                "alias table needs at least one positive-weight outcome",
            ));
        }
        let total: u128 = outcomes.iter().map(|&(_, w)| w).sum();
        if total > u64::MAX as u128 {
            return Err(RngError::InvalidConfig(
                "alias table total weight exceeds u64",
            ));
        }
        let capacity = total as u64;

        let n = outcomes.len();
        let n2 = n.next_power_of_two();
        let bucket_bits = n2.trailing_zeros();
        let cap_bits = if capacity <= 1 {
            0
        } else {
            64 - (capacity - 1).leading_zeros()
        };
        let cap_is_pow2 = capacity.is_power_of_two();
        let word_bits = if n == 1 { 0 } else { bucket_bits + cap_bits };
        if word_bits > 64 {
            return Err(RngError::InvalidConfig(
                "alias table bucket + offset width exceeds 64 bits",
            ));
        }
        let cap_mask = if cap_bits == 0 {
            0
        } else {
            (1u64 << (cap_bits - 1) << 1).wrapping_sub(1)
        };

        // Vose worklists over scaled weights s_i = w_i · n2; each of the n2
        // buckets has capacity `total` and Σ s_i = total · n2, so the split
        // is exact — every bucket ends exactly full, no rounding slack.
        let mut scaled: Vec<u128> = outcomes.iter().map(|&(_, w)| w * n2 as u128).collect();
        scaled.resize(n2, 0);
        let mut ks: Vec<i64> = outcomes.iter().map(|&(k, _)| k).collect();
        ks.resize(n2, outcomes[0].0);

        let cap = capacity as u128;
        let mut small: Vec<usize> = Vec::with_capacity(n2);
        let mut large: Vec<usize> = Vec::with_capacity(n2);
        for (i, &s) in scaled.iter().enumerate() {
            if s < cap {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        let mut buckets = vec![
            Bucket {
                cut: capacity,
                self_k: 0,
                alias_k: 0,
            };
            n2
        ];
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = *large.last().expect("checked non-empty");
            buckets[s] = Bucket {
                cut: scaled[s] as u64,
                self_k: ks[s],
                alias_k: ks[l],
            };
            scaled[l] -= cap - scaled[s];
            if scaled[l] < cap {
                large.pop();
                small.push(l);
            }
        }
        for &i in large.iter().chain(small.iter()) {
            debug_assert_eq!(scaled[i], cap, "exact integer split leaves full buckets");
            buckets[i] = Bucket {
                cut: capacity,
                self_k: ks[i],
                alias_k: ks[i],
            };
        }

        // All public constructors (from_pmf, from_pmf_window, laplace_grid,
        // from_f64_weights) funnel through here, so this counts every build.
        static BUILDS: Counter = Counter::new("rng.alias.builds");
        BUILDS.inc();

        Ok(AliasTable {
            buckets,
            bucket_bits,
            cap_bits,
            cap_mask,
            capacity,
            cap_is_pow2,
            word_bits,
            outcomes,
        })
    }

    /// Builds a table over the full signed support of an exact noise PMF.
    ///
    /// The total weight is `2^(Bu+1)` — a power of two — so draws consume
    /// exactly one word and never reject.
    ///
    /// # Errors
    ///
    /// Propagates [`AliasTable::from_weights`] errors (a valid
    /// [`FxpNoisePmf`] cannot trigger them in practice).
    pub fn from_pmf(pmf: &FxpNoisePmf) -> Result<Self, RngError> {
        let outcomes: Vec<(i64, u128)> = pmf.iter().filter(|&(_, w)| w > 0).collect();
        Self::from_weights(&outcomes)
    }

    /// Builds a table over the conditional law of the PMF restricted to
    /// `lo ..= hi` (inclusive, signed grid indices).
    ///
    /// The table is built from the unnormalized in-window weights, which *is*
    /// the renormalized conditional distribution — exactly what resampling
    /// converges to, with zero rejections.
    ///
    /// # Errors
    ///
    /// [`RngError::InvalidConfig`] if the window carries no probability mass.
    pub fn from_pmf_window(pmf: &FxpNoisePmf, lo: i64, hi: i64) -> Result<Self, RngError> {
        let outcomes: Vec<(i64, u128)> = (lo..=hi)
            .map(|k| (k, pmf.weight(k)))
            .filter(|&(_, w)| w > 0)
            .collect();
        if outcomes.is_empty() {
            return Err(RngError::InvalidConfig(
                "conditional window carries no probability mass",
            ));
        }
        Self::from_weights(&outcomes)
    }

    /// Builds a table for the *rounded* continuous Laplace: the law of
    /// `round(L)` for `L ~ Lap(lambda)` on the integer grid, i.e.
    /// `P(j) = F(j+1/2) − F(j−1/2)`.
    ///
    /// Weights are quantized to a total of exactly `2^48` (the mode absorbs
    /// the sub-ULP rounding residual), so draws are rejection-free and
    /// consume exactly one `u64`. Relative quantization error is `O(2^-48)`
    /// per outcome — below the fidelity of any `f64` continuous sampler —
    /// and the truncated tail mass is below the quantization step.
    ///
    /// # Errors
    ///
    /// [`RngError::InvalidConfig`] if `lambda` is not finite and positive,
    /// or exceeds 1024 (wider scales would need more than 2^16 buckets at
    /// this mass resolution; callers fall back to a streaming sampler).
    pub fn laplace_grid(lambda: f64) -> Result<Self, RngError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(RngError::InvalidConfig(
                "laplace_grid needs a positive finite scale",
            ));
        }
        if lambda > 1024.0 {
            return Err(RngError::InvalidConfig(
                "laplace_grid scale too wide to tabulate",
            ));
        }
        const MASS_BITS: u32 = 48;
        let mass = (1u128 << MASS_BITS) as f64;
        // Entries beyond ~(48·ln2)·λ quantize to zero weight anyway; 34λ
        // leaves headroom without over-building.
        let half = ((lambda * 34.0).ceil() as i64).max(1);
        // P(round(L) = j): 1 − exp(−1/(2λ)) at the mode,
        // exp(−|j|/λ)·sinh(1/(2λ)) elsewhere (both sides sum to 1 with the
        // geometric tails).
        let w_mode = -(-0.5 / lambda).exp_m1();
        let w_off = (0.5 / lambda).sinh();
        let mut outcomes: Vec<(i64, u128)> = Vec::with_capacity(2 * half as usize + 1);
        let mut total: u128 = 0;
        for j in -half..=half {
            let w = if j == 0 {
                w_mode
            } else {
                (-(j.abs() as f64) / lambda).exp() * w_off
            };
            let q = (w * mass).round() as u128;
            if q > 0 {
                outcomes.push((j, q));
                total += q;
            }
        }
        // Pin the total to exactly 2^48 by absorbing the rounding residual
        // (|residual| ≤ support size ≪ mode weight) into the mode, keeping
        // the table rejection-free.
        let mode = outcomes
            .iter_mut()
            .find(|&&mut (j, _)| j == 0)
            .expect("mode weight is always positive");
        let adjusted = mode.1 as i128 + ((1i128 << MASS_BITS) - total as i128);
        if adjusted <= 0 {
            // Unreachable for correctly-summed weights (the residual is sub-
            // ULP); fail loudly rather than build a skewed table.
            return Err(RngError::InvalidConfig(
                "laplace_grid rounding residual exceeds the mode weight",
            ));
        }
        mode.1 = adjusted as u128;
        Self::from_weights(&outcomes)
    }

    /// Builds a table from floating-point weights by quantizing them to
    /// integers at ~2^52 total mass.
    ///
    /// Unlike the integer constructors this is **not** bit-exact with
    /// respect to the real-valued distribution: relative quantization error
    /// is O(2^-52) per outcome. Use it only where the source distribution is
    /// itself irrational (e.g. the two-sided-geometric discrete mechanism).
    ///
    /// # Errors
    ///
    /// [`RngError::InvalidConfig`] if any weight is negative or non-finite,
    /// or no outcome survives quantization.
    pub fn from_f64_weights(outcomes: &[(i64, f64)]) -> Result<Self, RngError> {
        if outcomes.iter().any(|&(_, w)| !w.is_finite() || w < 0.0) {
            return Err(RngError::InvalidConfig(
                "alias weights must be finite and non-negative",
            ));
        }
        let sum: f64 = outcomes.iter().map(|&(_, w)| w).sum();
        if !(sum.is_finite() && sum > 0.0) {
            return Err(RngError::InvalidConfig(
                "alias weights must have positive finite total",
            ));
        }
        let scale = (1u64 << 52) as f64 / sum;
        let quantized: Vec<(i64, u128)> = outcomes
            .iter()
            .map(|&(k, w)| (k, (w * scale).round() as u128))
            .collect();
        Self::from_weights(&quantized)
    }

    /// Number of alias buckets (a power of two).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Per-bucket capacity = total source weight.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bits consumed per accepted draw (0 for a single-outcome table).
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Whether draws are rejection-free (power-of-two total weight).
    pub fn is_rejection_free(&self) -> bool {
        self.cap_is_pow2
    }

    /// The positive-weight `(outcome, weight)` pairs the table was built
    /// from, in construction order.
    pub fn outcomes(&self) -> &[(i64, u128)] {
        &self.outcomes
    }

    #[inline]
    fn decode(&self, word: u64) -> Option<i64> {
        let r = word & self.cap_mask;
        if r >= self.capacity {
            return None;
        }
        let b = &self.buckets[(word >> self.cap_bits) as usize];
        Some(if r < b.cut { b.self_k } else { b.alias_k })
    }

    /// Draws one outcome. Consumes one `u32` word when
    /// [`AliasTable::word_bits`] ≤ 32 (else one `u64`) per attempt; with a
    /// power-of-two total weight the first attempt always succeeds.
    #[inline]
    pub fn draw<R: RandomBits + ?Sized>(&self, rng: &mut R) -> i64 {
        if self.word_bits == 0 {
            return self.buckets[0].self_k;
        }
        loop {
            let word = if self.word_bits <= 32 {
                (rng.next_u32() as u64) >> (32 - self.word_bits)
            } else {
                rng.next_u64() >> (64 - self.word_bits)
            };
            if let Some(k) = self.decode(word) {
                return k;
            }
        }
    }

    /// Fills `out` with draws, buffering the underlying word generation
    /// (one [`RandomBits::fill_u32`] call per chunk instead of one virtual
    /// call per draw).
    ///
    /// The word stream consumed is **identical** to calling
    /// [`AliasTable::draw`] `out.len()` times on the same source, so batched
    /// and one-at-a-time sampling produce the same outputs for the same
    /// seed (asserted by the workspace equivalence proptests).
    pub fn fill_batch<R: RandomBits + ?Sized>(&self, rng: &mut R, out: &mut [i64]) {
        if self.word_bits == 0 {
            out.fill(self.buckets[0].self_k);
            return;
        }
        if self.word_bits <= 32 && self.cap_is_pow2 {
            // Rejection-free narrow path: exactly one u32 per draw, so the
            // chunk size is known in advance and no word is ever discarded.
            let mut buf = [0u32; 512];
            let shift = 32 - self.word_bits;
            let mut filled = 0;
            while filled < out.len() {
                let n = (out.len() - filled).min(buf.len());
                rng.fill_u32(&mut buf[..n]);
                for (slot, &w) in out[filled..filled + n].iter_mut().zip(buf[..n].iter()) {
                    let word = (w as u64) >> shift;
                    let b = &self.buckets[(word >> self.cap_bits) as usize];
                    *slot = if word & self.cap_mask < b.cut {
                        b.self_k
                    } else {
                        b.alias_k
                    };
                }
                filled += n;
            }
        } else if self.cap_is_pow2 {
            // Rejection-free wide path: exactly one u64 — two u32 words,
            // high word first, matching `RandomBits::next_u64` — per draw.
            let mut buf = [0u32; 512];
            let shift = 64 - self.word_bits;
            let mut filled = 0;
            while filled < out.len() {
                let n = (out.len() - filled).min(buf.len() / 2);
                rng.fill_u32(&mut buf[..2 * n]);
                for (slot, pair) in out[filled..filled + n]
                    .iter_mut()
                    .zip(buf[..2 * n].chunks_exact(2))
                {
                    let word = (((pair[0] as u64) << 32) | pair[1] as u64) >> shift;
                    let b = &self.buckets[(word >> self.cap_bits) as usize];
                    *slot = if word & self.cap_mask < b.cut {
                        b.self_k
                    } else {
                        b.alias_k
                    };
                }
                filled += n;
            }
        } else {
            // Rejecting path: per-draw word count is data-dependent, so
            // draw one at a time to keep the stream identical to `draw`.
            for slot in out.iter_mut() {
                *slot = self.draw(rng);
            }
        }
    }

    /// Re-derives each outcome's total weight from the finished buckets and
    /// checks it equals the source weight exactly (both scaled by the bucket
    /// count). This is the constructive proof that the table samples the
    /// source PMF bit-for-bit.
    pub fn verify_exact(&self) -> bool {
        let mut rebuilt: HashMap<i64, u128> = HashMap::new();
        for b in &self.buckets {
            *rebuilt.entry(b.self_k).or_insert(0) += b.cut as u128;
            *rebuilt.entry(b.alias_k).or_insert(0) += (self.capacity - b.cut) as u128;
        }
        let n2 = self.buckets.len() as u128;
        let mut matched = 0usize;
        for &(k, w) in &self.outcomes {
            if rebuilt.get(&k).copied().unwrap_or(0) != w * n2 {
                return false;
            }
            matched += 1;
        }
        // No mass may leak onto outcomes outside the source support.
        rebuilt.retain(|_, &mut v| v > 0);
        matched == rebuilt.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fxp::FxpLaplaceConfig;
    use crate::source::ScriptedBits;
    use crate::tausworthe::Taus88;

    fn small_pmf() -> FxpNoisePmf {
        let cfg = FxpLaplaceConfig::new(10, 12, 0.25, 5.0).unwrap();
        FxpNoisePmf::closed_form(cfg)
    }

    #[test]
    fn full_pmf_table_is_exact_and_rejection_free() {
        let pmf = small_pmf();
        let t = AliasTable::from_pmf(&pmf).unwrap();
        assert!(t.verify_exact());
        assert!(t.is_rejection_free(), "2^(Bu+1) total weight is pow2");
        assert!(t.word_bits() <= 32);
    }

    #[test]
    fn window_table_is_exact_conditional() {
        let pmf = small_pmf();
        let t = AliasTable::from_pmf_window(&pmf, -10, 25).unwrap();
        assert!(t.verify_exact());
        let total: u128 = (-10..=25).map(|k| pmf.weight(k)).sum();
        assert_eq!(t.capacity() as u128, total);
    }

    #[test]
    fn empty_window_is_rejected() {
        let pmf = small_pmf();
        let far = pmf.support_max_k() + 100;
        assert!(AliasTable::from_pmf_window(&pmf, far, far + 5).is_err());
        assert!(AliasTable::from_weights(&[(3, 0)]).is_err());
    }

    #[test]
    fn single_outcome_is_degenerate_and_free() {
        let t = AliasTable::from_weights(&[(42, 7)]).unwrap();
        assert_eq!(t.word_bits(), 0);
        // Draw must not consume randomness.
        let mut src = ScriptedBits::new(vec![0xDEAD_BEEF]);
        assert_eq!(t.draw(&mut src), 42);
        assert_eq!(src.next_u32(), 0xDEAD_BEEF);
        let mut out = [0i64; 5];
        t.fill_batch(&mut src, &mut out);
        assert_eq!(out, [42; 5]);
    }

    #[test]
    fn two_outcome_draws_follow_the_cut() {
        // weights 3:1 over outcomes {0, 1}: capacity 4 (pow2), 2 buckets.
        let t = AliasTable::from_weights(&[(0, 3), (1, 1)]).unwrap();
        assert!(t.verify_exact());
        let mut rng = Taus88::from_seed(9);
        let n = 200_000;
        let ones = (0..n).filter(|_| t.draw(&mut rng) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "P(1) = {frac}");
    }

    #[test]
    fn non_pow2_capacity_rejects_and_stays_exact() {
        // Total weight 5: draws need 3 offset bits with rejection of r ≥ 5.
        let t = AliasTable::from_weights(&[(-1, 2), (0, 2), (1, 1)]).unwrap();
        assert!(!t.is_rejection_free());
        assert!(t.verify_exact());
        let mut rng = Taus88::from_seed(10);
        let n = 250_000;
        let mut hist = HashMap::new();
        for _ in 0..n {
            *hist.entry(t.draw(&mut rng)).or_insert(0u64) += 1;
        }
        for (k, expect) in [(-1, 0.4), (0, 0.4), (1, 0.2)] {
            let emp = *hist.get(&k).unwrap_or(&0) as f64 / n as f64;
            assert!((emp - expect).abs() < 0.01, "k={k}: {emp} vs {expect}");
        }
    }

    #[test]
    fn fill_batch_matches_repeated_draws() {
        let pmf = small_pmf();
        for t in [
            AliasTable::from_pmf(&pmf).unwrap(),
            AliasTable::from_pmf_window(&pmf, -7, 19).unwrap(),
            AliasTable::from_weights(&[(-1, 2), (0, 2), (1, 1)]).unwrap(),
        ] {
            let mut a = Taus88::from_seed(77);
            let mut b = a.clone();
            let mut batched = vec![0i64; 1111];
            t.fill_batch(&mut a, &mut batched);
            let singles: Vec<i64> = (0..1111).map(|_| t.draw(&mut b)).collect();
            assert_eq!(batched, singles);
            // Both generators must have consumed the same word count.
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn draw_frequencies_match_pmf() {
        let pmf = small_pmf();
        let t = AliasTable::from_pmf(&pmf).unwrap();
        let mut rng = Taus88::from_seed(31);
        let n = 400_000usize;
        let mut hist = HashMap::new();
        for _ in 0..n {
            *hist.entry(t.draw(&mut rng)).or_insert(0u64) += 1;
        }
        for k in -20i64..=20 {
            let p = pmf.prob(k);
            if p > 1e-3 {
                let emp = *hist.get(&k).unwrap_or(&0) as f64 / n as f64;
                assert!(
                    (emp - p).abs() < 4.0 * (p / n as f64).sqrt() + 1e-4,
                    "k={k}: empirical {emp}, exact {p}"
                );
            }
        }
    }

    #[test]
    fn f64_weights_quantize_to_a_valid_table() {
        let alpha: f64 = 0.8;
        let outcomes: Vec<(i64, f64)> = (-30i64..=30)
            .map(|k| (k, alpha.powi(k.abs() as i32)))
            .collect();
        let t = AliasTable::from_f64_weights(&outcomes).unwrap();
        assert!(
            t.verify_exact(),
            "quantized table still exact w.r.t. itself"
        );
        assert!(AliasTable::from_f64_weights(&[(0, f64::NAN)]).is_err());
        assert!(AliasTable::from_f64_weights(&[(0, -1.0)]).is_err());
        assert!(AliasTable::from_f64_weights(&[(0, 0.0)]).is_err());
    }

    #[test]
    fn wide_table_uses_u64_words() {
        // Capacity 2^40 forces word_bits > 32.
        let t = AliasTable::from_weights(&[(0, 1u128 << 39), (1, 1u128 << 39)]).unwrap();
        assert!(t.word_bits() > 32);
        let mut a = Taus88::from_seed(5);
        let mut b = a.clone();
        // One draw consumes one u64 = two u32 words.
        let _ = t.draw(&mut a);
        let _ = b.next_u64();
        assert_eq!(a.next_u32(), b.next_u32());
    }
}
