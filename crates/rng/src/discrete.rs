//! Discrete Laplace (two-sided geometric) sampling — the extension baseline.
//!
//! The paper's fix keeps the *continuous* Laplace ICDF datapath and repairs
//! its tail. The modern alternative (used by OpenDP and by Google's DP
//! libraries) is to target a **discrete** distribution in the first place:
//! the two-sided geometric with `Pr[K = k] ∝ α^|k|`, `α = exp(-Δ/λ)`, which
//! is exactly sampleable from uniform bits and gives ε-DP on the integer
//! grid directly. We include it as an ablation baseline: how close does the
//! paper's thresholded FxP Laplace get to a mechanism designed for finite
//! precision?

use crate::error::RngError;
use crate::source::RandomBits;

/// A two-sided geometric ("discrete Laplace") sampler on grid indices,
/// `Pr[K = k] = (1-α)/(1+α) · α^|k|` with `α = exp(-Δ/λ)`.
///
/// Sampling is inversion on a 64-bit uniform against the closed-form CDF —
/// no transcendental evaluation at sample time, mirroring how a hardware
/// implementation would use a small comparison network. The sampler is
/// truncated at `max_k` (mass beyond is redrawn), making the output word
/// width explicit like the FxP samplers.
///
/// # Examples
///
/// ```
/// use ulp_rng::{DiscreteLaplace, Taus88};
///
/// // λ/Δ = 64: same effective scale as the paper's Fig. 4 FxP RNG.
/// let dl = DiscreteLaplace::new(64.0, 2047)?;
/// let mut rng = Taus88::from_seed(3);
/// let k = dl.sample_index(&mut rng);
/// assert!(k.abs() <= 2047);
/// # Ok::<(), ulp_rng::RngError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscreteLaplace {
    /// Scale in grid units, `t = λ/Δ`.
    scale_k: f64,
    /// Decay per step, `α = exp(-1/t)`.
    alpha: f64,
    max_k: i64,
}

impl DiscreteLaplace {
    /// Creates a sampler with scale `scale_k = λ/Δ` grid steps, truncated to
    /// `|k| ≤ max_k` by rejection.
    ///
    /// # Errors
    ///
    /// [`RngError::InvalidConfig`] if `scale_k` is not finite/positive or
    /// `max_k < 1`.
    pub fn new(scale_k: f64, max_k: i64) -> Result<Self, RngError> {
        if !(scale_k.is_finite() && scale_k > 0.0) {
            return Err(RngError::InvalidConfig("scale must be finite and positive"));
        }
        if max_k < 1 {
            return Err(RngError::InvalidConfig("max_k must be at least 1"));
        }
        Ok(DiscreteLaplace {
            scale_k,
            alpha: (-1.0 / scale_k).exp(),
            max_k,
        })
    }

    /// The decay factor `α = exp(-Δ/λ)`.
    pub fn alpha(self) -> f64 {
        self.alpha
    }

    /// Truncation bound.
    pub fn max_k(self) -> i64 {
        self.max_k
    }

    /// Exact PMF on the *untruncated* lattice.
    pub fn pmf(self, k: i64) -> f64 {
        (1.0 - self.alpha) / (1.0 + self.alpha) * self.alpha.powi(k.unsigned_abs() as i32)
    }

    /// The per-step log-likelihood ratio `ln(Pr[k]/Pr[k+1]) = 1/scale_k`,
    /// i.e. the ε consumed per unit of sensitivity measured in grid steps.
    pub fn eps_per_step(self) -> f64 {
        1.0 / self.scale_k
    }

    /// Draws a signed grid index, rejecting values beyond `max_k`.
    pub fn sample_index<R: RandomBits + ?Sized>(self, rng: &mut R) -> i64 {
        loop {
            let negative = rng.bit();
            // Geometric magnitude by inversion: smallest k with
            // CDF(k) ≥ u where Pr[|K| = 0] = (1-α)/(1+α) and each further
            // step multiplies by α. Equivalent closed form below.
            let u = (rng.bits(53) + 1) as f64 * 2f64.powi(-53);
            // Magnitude via the folded distribution: |K| = 0 w.p. p0,
            // else 1 + Geom(α). Sample the fold directly:
            let p0 = (1.0 - self.alpha) / (1.0 + self.alpha);
            let k = if u <= p0 {
                0
            } else {
                // Remaining mass is α·p0·α^(k-1)·2 over signs; invert the
                // geometric tail: k = ceil(ln((1-u)/ (1-p0)) / ln α) … do it
                // numerically robustly with logs.
                let rest = (u - p0) / (1.0 - p0);
                1 + ((1.0 - rest).ln() / self.alpha.ln()).floor() as i64
            };
            if k <= self.max_k {
                return if negative && k != 0 { -k } else { k };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tausworthe::Taus88;

    #[test]
    fn validates_config() {
        assert!(DiscreteLaplace::new(0.0, 10).is_err());
        assert!(DiscreteLaplace::new(f64::INFINITY, 10).is_err());
        assert!(DiscreteLaplace::new(10.0, 0).is_err());
        assert!(DiscreteLaplace::new(10.0, 1).is_ok());
    }

    #[test]
    fn pmf_sums_to_one() {
        let dl = DiscreteLaplace::new(8.0, 1_000).unwrap();
        let sum: f64 = (-200..=200).map(|k| dl.pmf(k)).sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn pmf_ratio_is_exactly_eps_per_step() {
        let dl = DiscreteLaplace::new(64.0, 2047).unwrap();
        for k in [0i64, 1, 10, 100] {
            let ratio = (dl.pmf(k) / dl.pmf(k + 1)).ln();
            assert!((ratio - dl.eps_per_step()).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_respect_truncation() {
        let dl = DiscreteLaplace::new(20.0, 15).unwrap();
        let mut rng = Taus88::from_seed(9);
        for _ in 0..20_000 {
            assert!(dl.sample_index(&mut rng).abs() <= 15);
        }
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let dl = DiscreteLaplace::new(5.0, 10_000).unwrap();
        let mut rng = Taus88::from_seed(21);
        let n = 300_000;
        let mut hist = std::collections::HashMap::new();
        for _ in 0..n {
            *hist.entry(dl.sample_index(&mut rng)).or_insert(0u64) += 1;
        }
        for k in -5i64..=5 {
            let p = dl.pmf(k);
            let emp = *hist.get(&k).unwrap_or(&0) as f64 / n as f64;
            assert!(
                (emp - p).abs() < 5.0 * (p / n as f64).sqrt() + 1e-4,
                "k={k}: emp {emp}, pmf {p}"
            );
        }
    }

    #[test]
    fn symmetry_of_samples() {
        let dl = DiscreteLaplace::new(10.0, 1000).unwrap();
        let mut rng = Taus88::from_seed(33);
        let n = 200_000;
        let mean: f64 = (0..n)
            .map(|_| dl.sample_index(&mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.2, "mean {mean}");
    }
}
