//! Hyperbolic CORDIC exponential (rotation mode).
//!
//! The logarithm unit covers the sampling datapath; the exponential is its
//! counterpart for on-chip *analysis* constants — threshold formulas like
//! Eq. 13/15 evaluate `e^{±nε}` terms, and a DP-Box variant that derives
//! its window from run-time (ε, range) settings needs exactly this block.
//!
//! Rotation-mode hyperbolic CORDIC drives the angle register to zero while
//! accumulating `cosh z` and `sinh z`; their sum is `e^z`. Convergence
//! covers `|z| ≲ 1.118`, so the argument is range-reduced with
//! `e^z = 2^q · e^r`, `r = z − q·ln 2`.

use ulp_fixed::{Fx, QFormat, Rounding};

use crate::error::RngError;

/// Internal guard precision (fraction bits).
const GUARD_FRAC: u8 = 44;

/// Gain of the hyperbolic CORDIC iteration product,
/// `K = Π √(1 − 2^-2i)` (with the 4/13/40 repeats).
fn hyperbolic_gain(iterations: u8) -> f64 {
    let mut k = 1.0f64;
    for i in 1..=iterations as i32 {
        let repeats = if i == 4 || i == 13 || i == 40 { 2 } else { 1 };
        for _ in 0..repeats {
            k *= (1.0 - 2f64.powi(-2 * i)).sqrt();
        }
    }
    k
}

/// A fixed-point exponential unit.
///
/// # Examples
///
/// ```
/// use ulp_fixed::{Fx, QFormat, Rounding};
/// use ulp_rng::CordicExp;
///
/// let unit = CordicExp::new(24);
/// let fmt = QFormat::new(32, 20)?;
/// let z = Fx::from_f64(1.37, fmt, Rounding::NearestTiesAway)?;
/// let e = unit.exp(z, fmt)?;
/// assert!((e.to_f64() - 1.37f64.exp()).abs() < 1e-3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CordicExp {
    iterations: u8,
    /// `atanh(2^-i)` table at `GUARD_FRAC` fraction bits.
    atanh_table: Vec<i64>,
    /// `1/K` pre-scaled at `GUARD_FRAC` fraction bits.
    inv_gain: i64,
    /// `ln 2` at `GUARD_FRAC` fraction bits.
    ln2: i64,
}

impl CordicExp {
    /// Creates an exponential unit (`iterations` clamped to `1..=40`).
    pub fn new(iterations: u8) -> Self {
        let iterations = iterations.clamp(1, 40);
        let scale = 2f64.powi(GUARD_FRAC as i32);
        let atanh_table = (1..=iterations as i32)
            .map(|i| {
                let t = 2f64.powi(-i);
                (0.5 * ((1.0 + t) / (1.0 - t)).ln() * scale).round() as i64
            })
            .collect();
        CordicExp {
            iterations,
            atanh_table,
            inv_gain: ((1.0 / hyperbolic_gain(iterations)) * scale).round() as i64,
            ln2: (std::f64::consts::LN_2 * scale).round() as i64,
        }
    }

    /// Number of base iterations.
    pub fn iterations(&self) -> u8 {
        self.iterations
    }

    /// Computes `e^z` into `out` format.
    ///
    /// # Errors
    ///
    /// A fixed-point error if the result does not fit `out` (e.g. `e^20`
    /// into a narrow word).
    pub fn exp(&self, z: Fx, out: QFormat) -> Result<Fx, RngError> {
        // Range-reduce onto |r| < ln2 ≤ CORDIC convergence: z = q·ln2 + r.
        let guard = QFormat::new(63, GUARD_FRAC).expect("guard format is valid");
        let z_wide = z
            .resize(guard, Rounding::NearestTiesAway)
            .map_err(RngError::Fixed)?;
        let q = z_wide.raw().div_euclid(self.ln2);
        let r = z_wide.raw().rem_euclid(self.ln2); // r ∈ [0, ln2)
        let er = self.exp_small(r); // e^r ∈ [1, 2), GUARD_FRAC bits
                                    // Result = e^r · 2^q: shift with rounding.
        let raw = if q >= 0 {
            let q = u32::try_from(q)
                .map_err(|_| RngError::Fixed(ulp_fixed::FixedError::Overflow { format: out }))?;
            er.checked_shl(q)
                .filter(|v| (v >> q) == er)
                .ok_or(RngError::Fixed(ulp_fixed::FixedError::Overflow {
                    format: out,
                }))?
        } else {
            let s = (-q) as u32;
            if s >= 63 {
                0
            } else {
                let half = 1i64 << (s - 1);
                (er + half) >> s
            }
        };
        let wide = Fx::from_raw(raw, guard).map_err(RngError::Fixed)?;
        wide.resize(out, Rounding::NearestTiesAway)
            .map_err(RngError::Fixed)
    }

    /// Rotation-mode CORDIC for `e^r`, `r ∈ [0, ln 2)` at `GUARD_FRAC`
    /// fraction bits.
    fn exp_small(&self, r_raw: i64) -> i64 {
        // Seed x = 1/K, y = 0: the rotations then end at x = cosh r,
        // y = sinh r (the iteration gain K cancels the seed).
        let mut x = self.inv_gain;
        let mut y = 0i64;
        let mut zr = r_raw;
        for i in 1..=self.iterations as u32 {
            let repeats = if i == 4 || i == 13 || i == 40 { 2 } else { 1 };
            for _ in 0..repeats {
                let a = self.atanh_table[(i - 1) as usize];
                let dx = y >> i;
                let dy = x >> i;
                if zr >= 0 {
                    x += dx;
                    y += dy;
                    zr -= a;
                } else {
                    x -= dx;
                    y -= dy;
                    zr += a;
                }
            }
        }
        // x ends at cosh r and y at sinh r (the 1/K seed cancels the
        // iteration gain); their sum is e^r. Both are < 2^46, no overflow.
        x + y
    }

    /// Convenience: `e^x` through the fixed-point datapath as `f64`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CordicExp::exp`].
    pub fn exp_f64(&self, x: f64, in_fmt: QFormat, out_fmt: QFormat) -> Result<f64, RngError> {
        let fx = Fx::from_f64(x, in_fmt, Rounding::NearestTiesAway).map_err(RngError::Fixed)?;
        Ok(self.exp(fx, out_fmt)?.to_f64())
    }
}

impl Default for CordicExp {
    fn default() -> Self {
        CordicExp::new(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(t: u8, f: u8) -> QFormat {
        QFormat::new(t, f).unwrap()
    }

    #[test]
    fn exp_of_zero_is_one() {
        let unit = CordicExp::new(32);
        let fmt = q(32, 20);
        let r = unit.exp(Fx::zero(fmt), fmt).unwrap();
        assert!((r.to_f64() - 1.0).abs() < 1e-5, "e^0 = {}", r.to_f64());
    }

    #[test]
    fn exp_matches_f64_across_range() {
        let unit = CordicExp::new(36);
        let in_fmt = q(48, 30);
        let out_fmt = q(48, 24);
        for &x in &[-8.0, -2.5, -0.7, -0.1, 0.0, 0.3, 0.69, 1.0, 2.0, 5.0, 10.0] {
            let got = unit.exp_f64(x, in_fmt, out_fmt).unwrap();
            let want = x.exp();
            // Tolerance: CORDIC truncation plus one output-grid ulp (which
            // dominates for small results).
            let tol = 1e-5 * want + out_fmt.delta();
            assert!((got - want).abs() < tol, "e^{x}: got {got}, want {want}");
        }
    }

    #[test]
    fn exp_ln_roundtrip() {
        use crate::cordic::CordicLn;
        let e = CordicExp::new(36);
        let l = CordicLn::new(36);
        let fmt = q(48, 30);
        for &x in &[0.5f64, 1.0, 3.7, 42.0] {
            let up = e.exp_f64(x.ln(), fmt, fmt).unwrap();
            assert!((up - x).abs() / x < 1e-5, "exp(ln {x}) = {up}");
            let down = l.ln_f64(x.exp().min(1e8), fmt, fmt);
            if x.exp() < 1e8 {
                assert!((down.unwrap() - x).abs() < 1e-4, "ln(exp {x})");
            }
        }
    }

    #[test]
    fn overflow_is_reported() {
        let unit = CordicExp::new(24);
        let in_fmt = q(32, 16);
        let tiny_out = q(8, 4); // max value < 8
        let x = Fx::from_f64(5.0, in_fmt, Rounding::Floor).unwrap();
        assert!(unit.exp(x, tiny_out).is_err());
    }

    #[test]
    fn deep_negative_arguments_round_to_zero() {
        let unit = CordicExp::new(24);
        let fmt = q(32, 16);
        let x = Fx::from_f64(-30.0, fmt, Rounding::Floor).unwrap();
        let r = unit.exp(x, fmt).unwrap();
        assert_eq!(r.raw(), 0);
    }

    #[test]
    fn precision_scales_with_iterations() {
        let coarse = CordicExp::new(10);
        let fine = CordicExp::new(34);
        let fmt = q(48, 30);
        let x = 0.37;
        let ec = (coarse.exp_f64(x, fmt, fmt).unwrap() - x.exp()).abs();
        let ef = (fine.exp_f64(x, fmt, fmt).unwrap() - x.exp()).abs();
        assert!(ef <= ec);
    }
}
