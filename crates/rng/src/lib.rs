//! Hardware random-number substrate for the DP-Box reproduction.
//!
//! This crate models the noise-generation datapath of an ultra-low-power
//! local-differential-privacy unit (ISCA'18 "Guaranteeing Local Differential
//! Privacy on Ultra-low-power Systems"), layer by layer:
//!
//! * [`RandomBits`] — raw uniform bit sources: the [`Taus88`] combined
//!   Tausworthe generator the paper uses, an [`Xorshift64Star`] alternative,
//!   [`SplitMix64`] for seeding, and [`ScriptedBits`] for forcing samplers
//!   down specific paths in tests.
//! * [`CordicLn`] — the fixed-point hyperbolic-CORDIC natural logarithm that
//!   evaluates the Laplace inverse CDF in hardware.
//! * [`IdealLaplace`] / [`IdealExponential`] — continuous double-precision
//!   inversion samplers (the mathematical reference the paper compares
//!   against).
//! * [`FxpLaplace`] — the fixed-point Laplace RNG of Fig. 3: `Bu`-bit
//!   uniform → ICDF → round to `kΔ` on a `By`-bit word → random sign. Its
//!   support is **bounded** and its tail has **zero-probability gaps**; these
//!   are the nonidealities that break naive local DP.
//! * [`FxpNoisePmf`] — the *exact* output distribution (paper Eq. 11) as
//!   integer outcome counts over `2^(Bu+1)`, enabling machine-checked
//!   privacy-loss analysis with no floating-point smoothing.
//! * [`DiscreteLaplace`] — a two-sided-geometric baseline (the OpenDP-style
//!   discrete mechanism) used by the ablation experiments.
//! * [`AliasTable`] — Walker/Vose alias tables built from the exact PMF (or
//!   any conditional window of it) for O(1) table-driven draws that match
//!   the source distribution bit-for-bit — the simulation fast path.
//!
//! # Quickstart
//!
//! ```
//! use ulp_rng::{FxpLaplace, FxpLaplaceConfig, FxpNoisePmf, Taus88};
//!
//! // The paper's Fig. 4 configuration: Bu=17, By=12, Δ=10/2^5, Lap(20).
//! let cfg = FxpLaplaceConfig::new(17, 12, 10.0 / 32.0, 20.0)?;
//! let sampler = FxpLaplace::analytic(cfg);
//! let mut urng = Taus88::from_seed(2018);
//!
//! let noise = sampler.sample(&mut urng);
//! assert!(noise.abs() <= cfg.max_magnitude()); // bounded support!
//!
//! // The exact PMF exposes the tail gaps that ruin the DP guarantee.
//! let pmf = FxpNoisePmf::closed_form(cfg);
//! assert!(pmf.interior_gap_count() > 0);
//! # Ok::<(), ulp_rng::RngError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alias;
mod cache;
mod cordic;
mod cordic_exp;
mod discrete;
mod eq17;
mod error;
mod fault;
mod fxp;
mod gaussian;
mod health;
mod laplace;
mod pmf;
mod source;
mod staircase;
mod tausworthe;
mod xorshift;
mod ziggurat;

pub use alias::AliasTable;
pub use cache::{
    alias_cache_len, cached_alias_full, cached_alias_laplace_grid, cached_alias_window,
    cached_enumerated_pmf, cached_pmf, pmf_cache_len,
};
pub use cordic::CordicLn;
pub use cordic_exp::CordicExp;
pub use discrete::DiscreteLaplace;
pub use eq17::Eq17Laplace;
pub use error::RngError;
pub use fault::{BiasedBits, CorrelatedBits, OnsetBits, StuckAtBits};
pub use fxp::{FxpLaplace, FxpLaplaceConfig, LogPath};
pub use gaussian::{normal_cdf, normal_icdf, FxpGaussian, FxpGaussianConfig, IdealGaussian};
pub use health::{BitHealthMonitor, HealthAlarm, HealthConfig, HealthTest, UrngHealth};
pub use laplace::{IdealExponential, IdealLaplace};
pub use pmf::FxpNoisePmf;
pub use source::{stream_seed, RandomBits, ScriptedBits, SplitMix64};
pub use staircase::{FxpStaircase, FxpStaircaseConfig, IdealStaircase};
pub use tausworthe::Taus88;
pub use xorshift::Xorshift64Star;
pub use ziggurat::ZigguratExp;
