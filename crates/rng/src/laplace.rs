//! Ideal (continuous, double-precision) Laplace sampling via inversion.
//!
//! This models the *mathematical* Laplace mechanism the paper compares
//! against ("Ideal Local DP" columns in Tables II–V): inversion sampling at
//! `f64` precision with a 53-bit uniform. It is the reference distribution;
//! the point of the paper is that real ULP hardware cannot realize it.

use crate::source::RandomBits;

/// An inversion-method sampler for the zero-mean Laplace distribution
/// `Lap(λ)` with density `f(x) = exp(-|x|/λ) / (2λ)`.
///
/// # Examples
///
/// ```
/// use ulp_rng::{IdealLaplace, Taus88};
///
/// let lap = IdealLaplace::new(20.0)?;
/// let mut rng = Taus88::from_seed(1);
/// let n = lap.sample(&mut rng);
/// assert!(n.is_finite());
/// # Ok::<(), ulp_rng::RngError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdealLaplace {
    lambda: f64,
}

impl IdealLaplace {
    /// Creates a sampler with scale `λ`.
    ///
    /// # Errors
    ///
    /// [`crate::RngError::InvalidConfig`] if `λ` is not finite and positive.
    pub fn new(lambda: f64) -> Result<Self, crate::RngError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(crate::RngError::InvalidConfig(
                "Laplace scale must be finite and positive",
            ));
        }
        Ok(IdealLaplace { lambda })
    }

    /// The scale parameter `λ`.
    pub fn lambda(self) -> f64 {
        self.lambda
    }

    /// Draws one sample using two independent uniforms (sign + magnitude),
    /// matching the paper's Eq. (8): `n = λ·sgn(u1 − 0.5)·log(u2)`.
    pub fn sample<R: RandomBits + ?Sized>(self, rng: &mut R) -> f64 {
        let sign = if rng.bit() { 1.0 } else { -1.0 };
        // u2 ∈ (0, 1]: 53 uniform bits, +1 so ln never sees zero.
        let m = rng.bits(53) + 1;
        let u2 = m as f64 * 2f64.powi(-53);
        sign * (-self.lambda * u2.ln())
    }

    /// Probability density at `x`.
    pub fn pdf(self, x: f64) -> f64 {
        (-x.abs() / self.lambda).exp() / (2.0 * self.lambda)
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(self, x: f64) -> f64 {
        if x < 0.0 {
            0.5 * (x / self.lambda).exp()
        } else {
            1.0 - 0.5 * (-x / self.lambda).exp()
        }
    }

    /// Inverse CDF (quantile) for `p ∈ (0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    pub fn icdf(self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "icdf domain is (0,1), got {p}");
        if p < 0.5 {
            self.lambda * (2.0 * p).ln()
        } else {
            -self.lambda * (2.0 * (1.0 - p)).ln()
        }
    }
}

/// An inversion-method exponential sampler, `Exp(λ)` with mean `λ`.
///
/// The magnitude half of a Laplace variate; exposed separately because the
/// resampling analysis works with one-sided tails.
///
/// # Examples
///
/// ```
/// use ulp_rng::{IdealExponential, Taus88};
///
/// let exp = IdealExponential::new(5.0)?;
/// let mut rng = Taus88::from_seed(2);
/// assert!(exp.sample(&mut rng) >= 0.0);
/// # Ok::<(), ulp_rng::RngError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdealExponential {
    lambda: f64,
}

impl IdealExponential {
    /// Creates a sampler with mean `λ`.
    ///
    /// # Errors
    ///
    /// [`crate::RngError::InvalidConfig`] if `λ` is not finite and positive.
    pub fn new(lambda: f64) -> Result<Self, crate::RngError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(crate::RngError::InvalidConfig(
                "exponential mean must be finite and positive",
            ));
        }
        Ok(IdealExponential { lambda })
    }

    /// Draws one sample.
    pub fn sample<R: RandomBits + ?Sized>(self, rng: &mut R) -> f64 {
        let m = rng.bits(53) + 1;
        let u = m as f64 * 2f64.powi(-53);
        -self.lambda * u.ln()
    }

    /// The mean `λ`.
    pub fn lambda(self) -> f64 {
        self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tausworthe::Taus88;

    #[test]
    fn rejects_bad_scale() {
        assert!(IdealLaplace::new(0.0).is_err());
        assert!(IdealLaplace::new(-1.0).is_err());
        assert!(IdealLaplace::new(f64::NAN).is_err());
        assert!(IdealExponential::new(0.0).is_err());
    }

    #[test]
    fn sample_moments_match_theory() {
        let lap = IdealLaplace::new(20.0).unwrap();
        let mut rng = Taus88::from_seed(42);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| lap.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        // Lap(λ): mean 0, variance 2λ².
        assert!(mean.abs() < 0.5, "mean {mean}");
        assert!((var / 800.0 - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn cdf_icdf_roundtrip() {
        let lap = IdealLaplace::new(3.0).unwrap();
        for &p in &[0.01, 0.1, 0.4, 0.5, 0.6, 0.9, 0.99] {
            let x = lap.icdf(p);
            assert!((lap.cdf(x) - p).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn cdf_is_monotone_and_symmetric() {
        let lap = IdealLaplace::new(2.0).unwrap();
        assert!((lap.cdf(0.0) - 0.5).abs() < 1e-15);
        for &x in &[0.5, 1.0, 5.0] {
            assert!((lap.cdf(-x) + lap.cdf(x) - 1.0).abs() < 1e-12);
            assert!(lap.cdf(x) > lap.cdf(x - 0.1));
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        let lap = IdealLaplace::new(1.5).unwrap();
        let (a, b, steps) = (-40.0, 40.0, 100_000);
        let h = (b - a) / steps as f64;
        let integral: f64 = (0..steps)
            .map(|i| lap.pdf(a + (i as f64 + 0.5) * h) * h)
            .sum();
        assert!((integral - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empirical_cdf_matches_analytic() {
        let lap = IdealLaplace::new(10.0).unwrap();
        let mut rng = Taus88::from_seed(7);
        let n = 100_000;
        let mut xs: Vec<f64> = (0..n).map(|_| lap.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Kolmogorov-Smirnov style check at a few quantiles.
        for &q in &[0.05, 0.25, 0.5, 0.75, 0.95] {
            let idx = (q * n as f64) as usize;
            let emp = xs[idx];
            let want = lap.icdf(q);
            assert!(
                (lap.cdf(emp) - q).abs() < 0.01,
                "quantile {q}: sample {emp}, expected near {want}"
            );
        }
    }

    #[test]
    fn exponential_is_positive_with_mean_lambda() {
        let e = IdealExponential::new(4.0).unwrap();
        let mut rng = Taus88::from_seed(3);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| e.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| x >= 0.0));
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean / 4.0 - 1.0).abs() < 0.03, "mean {mean}");
    }
}
