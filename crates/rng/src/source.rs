//! The [`RandomBits`] trait: a raw source of uniform bits.
//!
//! Hardware RNGs are bit generators; everything else (uniform fractions,
//! Laplace noise) is built by post-processing. Keeping the bit source as a
//! small object-safe trait lets the samplers run on the Tausworthe generator
//! the paper uses, on an xorshift alternative, or on scripted sources in
//! tests.

/// A deterministic source of uniformly distributed bits.
///
/// Implementors must produce bits that are uniform and independent across
/// calls for the statistical guarantees of the samplers in this crate to
/// hold; scripted test sources intentionally violate this.
///
/// # Examples
///
/// ```
/// use ulp_rng::{RandomBits, Taus88};
///
/// let mut rng = Taus88::from_seed(42);
/// let word = rng.next_u32();
/// let nibble = rng.bits(4);
/// assert!(nibble < 16);
/// # let _ = word;
/// ```
pub trait RandomBits {
    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Returns `n` uniformly distributed bits in the low positions
    /// (`0 < n <= 64`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or greater than 64.
    fn bits(&mut self, n: u8) -> u64 {
        assert!((1..=64).contains(&n), "bits: n must be in 1..=64, got {n}");
        if n <= 32 {
            (self.next_u32() as u64) >> (32 - n as u32)
        } else {
            self.next_u64() >> (64 - n as u32)
        }
    }

    /// Returns one uniformly distributed bit.
    fn bit(&mut self) -> bool {
        self.bits(1) == 1
    }

    /// Fills `out` with consecutive `next_u32` words.
    ///
    /// Semantically identical to calling [`RandomBits::next_u32`]
    /// `out.len()` times; batch samplers use it so one virtual dispatch
    /// amortizes over a whole chunk of words. Generators may override it
    /// with a tight monomorphic loop but must preserve the word sequence.
    fn fill_u32(&mut self, out: &mut [u32]) {
        for w in out.iter_mut() {
            *w = self.next_u32();
        }
    }
}

impl<R: RandomBits + ?Sized> RandomBits for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_u32(&mut self, out: &mut [u32]) {
        (**self).fill_u32(out)
    }
}

impl<R: RandomBits + ?Sized> RandomBits for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_u32(&mut self, out: &mut [u32]) {
        (**self).fill_u32(out)
    }
}

/// A scripted bit source replaying a fixed sequence of 32-bit words.
///
/// Intended for tests that need to force a sampler down a specific path
/// (e.g. the deepest tail of the Laplace ICDF). Wraps around when the
/// sequence is exhausted.
///
/// # Examples
///
/// ```
/// use ulp_rng::{RandomBits, ScriptedBits};
///
/// let mut src = ScriptedBits::new(vec![0xFFFF_FFFF, 0]);
/// assert_eq!(src.next_u32(), 0xFFFF_FFFF);
/// assert_eq!(src.next_u32(), 0);
/// assert_eq!(src.next_u32(), 0xFFFF_FFFF); // wraps
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptedBits {
    words: Vec<u32>,
    pos: usize,
}

impl ScriptedBits {
    /// Creates a source replaying `words` cyclically.
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty.
    pub fn new(words: Vec<u32>) -> Self {
        assert!(!words.is_empty(), "ScriptedBits requires at least one word");
        ScriptedBits { words, pos: 0 }
    }
}

impl RandomBits for ScriptedBits {
    fn next_u32(&mut self) -> u32 {
        let w = self.words[self.pos];
        self.pos = (self.pos + 1) % self.words.len();
        w
    }
}

/// SplitMix64: the seed expander used to initialize the other generators.
///
/// A tiny, well-distributed generator (Steele et al.) whose only job here is
/// turning one `u64` seed into several independent-looking state words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a seed expander from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    #[allow(clippy::should_implement_trait)] // seed expander, not an Iterator
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RandomBits for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

/// Derives an independent per-cell seed from a master seed and a tag path.
///
/// The parallel evaluation sweeps give every (dataset × mechanism × ε × rep)
/// cell its own RNG stream seeded from data the cell owns, so the cell's
/// output is a pure function of `(master, path)` and parallel execution is
/// byte-identical to serial. Each path element is folded through a full
/// SplitMix64 round, so `stream_seed(s, &[a, b]) != stream_seed(s, &[a + b])`
/// and sibling streams are decorrelated.
///
/// # Examples
///
/// ```
/// use ulp_rng::stream_seed;
///
/// let a = stream_seed(2018, &[3, 0]);
/// let b = stream_seed(2018, &[3, 1]);
/// assert_ne!(a, b);
/// assert_eq!(a, stream_seed(2018, &[3, 0])); // deterministic
/// ```
pub fn stream_seed(master: u64, path: &[u64]) -> u64 {
    let mut acc = SplitMix64::new(master).next();
    for &tag in path {
        // Mix the tag in through a fresh SplitMix64 round keyed on both the
        // accumulator and the tag, so path elements do not commute.
        acc = SplitMix64::new(acc ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_seeds_are_deterministic_and_order_sensitive() {
        assert_eq!(stream_seed(7, &[1, 2]), stream_seed(7, &[1, 2]));
        assert_ne!(stream_seed(7, &[1, 2]), stream_seed(7, &[2, 1]));
        assert_ne!(stream_seed(7, &[1, 2]), stream_seed(7, &[3]));
        assert_ne!(stream_seed(7, &[]), stream_seed(8, &[]));
    }

    #[test]
    fn sibling_streams_do_not_collide() {
        let mut seen = std::collections::HashSet::new();
        for rep in 0..64u64 {
            for kind in 0..4u64 {
                assert!(seen.insert(stream_seed(2018, &[kind, rep])));
            }
        }
    }

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // SplitMix64 C implementation.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next();
        let second = sm.next();
        assert_ne!(first, second);
        // Determinism.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next(), first);
        assert_eq!(sm2.next(), second);
    }

    #[test]
    fn bits_extracts_high_entropy_bits() {
        let mut src = ScriptedBits::new(vec![0xABCD_EF01]);
        // Top 8 bits of 0xABCDEF01 = 0xAB.
        assert_eq!(src.bits(8), 0xAB);
    }

    #[test]
    fn bits_full_width_works() {
        let mut src = ScriptedBits::new(vec![0xDEAD_BEEF, 0x0123_4567]);
        assert_eq!(src.bits(64), 0xDEAD_BEEF_0123_4567);
        assert_eq!(src.bits(32), 0xDEAD_BEEF);
    }

    #[test]
    #[should_panic(expected = "bits: n must be in 1..=64")]
    fn bits_zero_panics() {
        let mut src = ScriptedBits::new(vec![0]);
        src.bits(0);
    }

    #[test]
    fn bit_reads_msb() {
        let mut src = ScriptedBits::new(vec![0x8000_0000, 0]);
        assert!(src.bit());
        assert!(!src.bit());
    }

    #[test]
    fn scripted_wraps_around() {
        let mut src = ScriptedBits::new(vec![7]);
        assert_eq!(src.next_u32(), 7);
        assert_eq!(src.next_u32(), 7);
    }
}
