//! The staircase mechanism (Geng–Viswanath) — the third noise family the
//! paper names in its generalization (Section III-A4).
//!
//! The staircase distribution is the utility-optimal ε-DP noise for ℓ₁
//! error: a geometrically decaying stack of two-level steps of period `d`
//! (the sensitivity). Like Laplace and Gaussian, its ideal form guarantees
//! ε-DP — and like them, its fixed-point realization has bounded support
//! and quantized tail probabilities, so naive FxP staircase noising is not
//! private either. Both facts are machine-checked by the workspace tests.
//!
//! The survival function of `|X|` is piecewise linear with the clean
//! property `S(k·d) = e^{-kε}`, which gives closed-form inversion — the
//! hardware-friendliest of the three families (no transcendental
//! evaluation in the datapath at all).

use crate::error::RngError;
use crate::pmf::FxpNoisePmf;
use crate::source::RandomBits;

/// The continuous staircase distribution with privacy parameter `ε`,
/// period (sensitivity) `d`, and step-split `γ ∈ (0, 1)`.
///
/// Density for `x ≥ 0`, with `b = e^{-ε}` and
/// `a = (1-b) / (2d(γ + b(1-γ)))`:
/// `f(x) = a·b^k` on `[kd, (k+γ)d)` and `a·b^{k+1}` on `[(k+γ)d, (k+1)d)`,
/// mirrored for `x < 0`.
///
/// # Examples
///
/// ```
/// use ulp_rng::{IdealStaircase, Taus88};
///
/// let st = IdealStaircase::new(0.5, 10.0, 0.5)?;
/// let mut rng = Taus88::from_seed(1);
/// let x = st.sample(&mut rng);
/// assert!(x.is_finite());
/// // ε-DP ratio property of the density:
/// assert!((st.pdf(3.0) / st.pdf(3.0 + 10.0) - (0.5f64).exp()).abs() < 1e-12);
/// # Ok::<(), ulp_rng::RngError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdealStaircase {
    eps: f64,
    d: f64,
    gamma: f64,
}

impl IdealStaircase {
    /// Creates a staircase distribution.
    ///
    /// # Errors
    ///
    /// [`RngError::InvalidConfig`] unless `ε > 0`, `d > 0`, and
    /// `0 < γ < 1` (all finite).
    pub fn new(eps: f64, d: f64, gamma: f64) -> Result<Self, RngError> {
        if !(eps.is_finite() && eps > 0.0) {
            return Err(RngError::InvalidConfig("ε must be finite and positive"));
        }
        if !(d.is_finite() && d > 0.0) {
            return Err(RngError::InvalidConfig("d must be finite and positive"));
        }
        if !(gamma.is_finite() && gamma > 0.0 && gamma < 1.0) {
            return Err(RngError::InvalidConfig("γ must be in (0, 1)"));
        }
        Ok(IdealStaircase { eps, d, gamma })
    }

    /// The utility-optimal split for ℓ₁ error, `γ* = 1/(1 + e^{ε/2})`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`IdealStaircase::new`].
    pub fn optimal(eps: f64, d: f64) -> Result<Self, RngError> {
        if !(eps.is_finite() && eps > 0.0) {
            return Err(RngError::InvalidConfig("ε must be finite and positive"));
        }
        Self::new(eps, d, 1.0 / (1.0 + (eps / 2.0).exp()))
    }

    /// The privacy parameter ε.
    pub fn eps(self) -> f64 {
        self.eps
    }

    /// The period (sensitivity) `d`.
    pub fn d(self) -> f64 {
        self.d
    }

    /// The step split `γ`.
    pub fn gamma(self) -> f64 {
        self.gamma
    }

    fn b(self) -> f64 {
        (-self.eps).exp()
    }

    /// The density normalizer `a(γ)`.
    pub fn a(self) -> f64 {
        let b = self.b();
        (1.0 - b) / (2.0 * self.d * (self.gamma + b * (1.0 - self.gamma)))
    }

    /// Probability density at `x`.
    pub fn pdf(self, x: f64) -> f64 {
        let t = x.abs();
        let k = (t / self.d).floor();
        let frac = t - k * self.d;
        let base = self.a() * self.b().powf(k);
        if frac < self.gamma * self.d {
            base
        } else {
            base * self.b()
        }
    }

    /// Survival of the magnitude, `S(x) = Pr[|X| ≥ x]` for `x ≥ 0`, with
    /// the closed form `S(kd) = e^{-kε}`.
    ///
    /// # Errors
    ///
    /// [`RngError::OutOfDomain`] if `x < 0` or `x` is NaN.
    pub fn survival(self, x: f64) -> Result<f64, RngError> {
        if x < 0.0 || x.is_nan() {
            return Err(RngError::OutOfDomain("survival is defined for x ≥ 0"));
        }
        let b = self.b();
        let k = (x / self.d).floor();
        let t = x - k * self.d;
        let rem = if t < self.gamma * self.d {
            (self.gamma * self.d - t) + b * (1.0 - self.gamma) * self.d
        } else {
            b * (self.d - t)
        };
        let c = self.gamma + b * (1.0 - self.gamma);
        Ok(2.0 * self.a() * b.powf(k) * (rem + b * self.d * c / (1.0 - b)))
    }

    /// Inverse of [`IdealStaircase::survival`]: the magnitude `x` with
    /// `S(x) = u`, for `u ∈ (0, 1]`. Piecewise linear — no transcendentals
    /// beyond one logarithm for the period index.
    ///
    /// # Errors
    ///
    /// [`RngError::OutOfDomain`] if `u` is outside `(0, 1]` or NaN.
    pub fn survival_inverse(self, u: f64) -> Result<f64, RngError> {
        if !(u > 0.0 && u <= 1.0) {
            return Err(RngError::OutOfDomain("survival inverse domain is (0,1]"));
        }
        let b = self.b();
        // Period: u ∈ (b^{k+1}, b^k].
        let k = (u.ln() / b.ln()).floor().max(0.0);
        let k = if b.powf(k) < u { k - 1.0 } else { k };
        let s = u / b.powf(k); // ∈ (b, 1]
        let rem = (s - b) / (2.0 * self.a() * self.d) * self.d; // rem in value units
        let boundary = b * (1.0 - self.gamma) * self.d;
        let t = if rem > boundary {
            self.gamma * self.d + boundary - rem
        } else {
            self.d - rem / b
        };
        Ok(k * self.d + t.clamp(0.0, self.d))
    }

    /// Draws one sample (sign + magnitude by inversion).
    pub fn sample<R: RandomBits + ?Sized>(self, rng: &mut R) -> f64 {
        let sign = if rng.bit() { -1.0 } else { 1.0 };
        let m = rng.bits(53) + 1;
        let u = m as f64 * 2f64.powi(-53);
        let mag = self
            .survival_inverse(u)
            .expect("m + 1 over 2^53 is always in (0, 1]");
        sign * mag
    }
}

/// Configuration of the fixed-point staircase RNG.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FxpStaircaseConfig {
    bu: u8,
    by: u8,
    delta: f64,
}

impl FxpStaircaseConfig {
    /// Creates a configuration (`Bu`-bit magnitude uniform, `By`-bit
    /// output word, grid step `Δ`).
    ///
    /// # Errors
    ///
    /// [`RngError::InvalidConfig`] for out-of-range widths or non-positive
    /// `Δ`.
    pub fn new(bu: u8, by: u8, delta: f64) -> Result<Self, RngError> {
        if !(1..=52).contains(&bu) {
            return Err(RngError::InvalidConfig("Bu must be in 1..=52"));
        }
        if !(2..=62).contains(&by) {
            return Err(RngError::InvalidConfig("By must be in 2..=62"));
        }
        if !(delta.is_finite() && delta > 0.0) {
            return Err(RngError::InvalidConfig("Δ must be finite and positive"));
        }
        Ok(FxpStaircaseConfig { bu, by, delta })
    }

    /// URNG magnitude width.
    pub fn bu(self) -> u8 {
        self.bu
    }

    /// Output word width.
    pub fn by(self) -> u8 {
        self.by
    }

    /// Grid step.
    pub fn delta(self) -> f64 {
        self.delta
    }

    /// Largest representable magnitude index.
    pub fn max_output_k(self) -> i64 {
        (1i64 << (self.by - 1)) - 1
    }
}

/// The fixed-point staircase RNG: `Bu`-bit uniform → piecewise-linear
/// inverse survival → round to `kΔ` → sign.
///
/// # Examples
///
/// ```
/// use ulp_rng::{FxpStaircase, FxpStaircaseConfig, IdealStaircase, Taus88};
///
/// let st = IdealStaircase::optimal(0.5, 10.0)?;
/// let cfg = FxpStaircaseConfig::new(17, 14, 10.0 / 32.0)?;
/// let fxp = FxpStaircase::new(cfg, st);
/// let mut rng = Taus88::from_seed(2);
/// let k = fxp.sample_index(&mut rng);
/// assert!(k.abs() <= fxp.pmf().support_max_k()); // bounded, like Laplace
/// # Ok::<(), ulp_rng::RngError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FxpStaircase {
    cfg: FxpStaircaseConfig,
    dist: IdealStaircase,
    pmf: FxpNoisePmf,
}

impl FxpStaircase {
    /// Creates the sampler and derives its exact PMF from the survival
    /// function: the number of uniforms mapping to magnitude `k` is
    /// `⌊2^Bu·S((k-½)Δ)⌋ − ⌊2^Bu·S((k+½)Δ)⌋` — the same interval-count
    /// structure as the Laplace Eq. 11.
    pub fn new(cfg: FxpStaircaseConfig, dist: IdealStaircase) -> Self {
        let two_bu = (1u64 << cfg.bu()) as f64;
        let s = |x: f64| -> f64 {
            if x <= 0.0 {
                1.0
            } else {
                dist.survival(x).expect("x > 0 is in the survival domain")
            }
        };
        // Support top: deepest magnitude reachable from u = 2^-Bu.
        let top_val = dist
            .survival_inverse(1.0 / two_bu)
            .expect("2^-Bu is in (0, 1] for Bu in 1..=52");
        let top = ((top_val / cfg.delta()).round() as i64).min(cfg.max_output_k());
        let mut counts = vec![0u64; (top + 1) as usize];
        if top == 0 {
            counts[0] = 1u64 << cfg.bu();
        } else {
            counts[0] = (1u64 << cfg.bu()) - (two_bu * s(0.5 * cfg.delta())).floor() as u64;
            for k in 1..top {
                let hi = (two_bu * s((k as f64 - 0.5) * cfg.delta())).floor() as u64;
                let lo = (two_bu * s((k as f64 + 0.5) * cfg.delta())).floor() as u64;
                counts[k as usize] = hi.saturating_sub(lo);
            }
            counts[top as usize] = (two_bu * s((top as f64 - 0.5) * cfg.delta())).floor() as u64;
            // Repair any floor-rounding drift so the counts partition 2^Bu
            // exactly (drift can only be ±1 on the top bin).
            let sum: u64 = counts.iter().sum();
            let want = 1u64 << cfg.bu();
            let top_idx = top as usize;
            if sum > want {
                counts[top_idx] -= sum - want;
            } else {
                counts[top_idx] += want - sum;
            }
        }
        FxpStaircase {
            cfg,
            dist,
            pmf: FxpNoisePmf::from_magnitude_counts(cfg.bu(), counts),
        }
    }

    /// The configuration.
    pub fn config(&self) -> FxpStaircaseConfig {
        self.cfg
    }

    /// The underlying continuous distribution.
    pub fn distribution(&self) -> IdealStaircase {
        self.dist
    }

    /// The exact output PMF.
    pub fn pmf(&self) -> &FxpNoisePmf {
        &self.pmf
    }

    /// Maps a uniform index to a magnitude index (the hardware datapath).
    ///
    /// # Panics
    ///
    /// Panics if `m` is outside `[1, 2^Bu]`.
    pub fn magnitude_index(&self, m: u64) -> i64 {
        assert!(
            m >= 1 && m <= (1u64 << self.cfg.bu()),
            "uniform index out of range"
        );
        let u = m as f64 * 2f64.powi(-(self.cfg.bu() as i32));
        let mag = self
            .dist
            .survival_inverse(u)
            .expect("m in [1, 2^Bu] keeps u in (0, 1]");
        ((mag / self.cfg.delta()).round() as i64).min(self.cfg.max_output_k())
    }

    /// Draws one signed magnitude index.
    pub fn sample_index<R: RandomBits + ?Sized>(&self, rng: &mut R) -> i64 {
        let negative = rng.bit();
        let m = rng.bits(self.cfg.bu()) + 1;
        let k = self.magnitude_index(m);
        if negative {
            -k
        } else {
            k
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tausworthe::Taus88;

    fn dist() -> IdealStaircase {
        IdealStaircase::new(0.5, 10.0, 0.5).unwrap()
    }

    #[test]
    fn validation() {
        assert!(IdealStaircase::new(0.0, 1.0, 0.5).is_err());
        assert!(IdealStaircase::new(1.0, 0.0, 0.5).is_err());
        assert!(IdealStaircase::new(1.0, 1.0, 0.0).is_err());
        assert!(IdealStaircase::new(1.0, 1.0, 1.0).is_err());
        assert!(FxpStaircaseConfig::new(0, 12, 0.5).is_err());
        assert!(FxpStaircaseConfig::new(17, 12, -1.0).is_err());
    }

    #[test]
    fn pdf_integrates_to_one() {
        let st = dist();
        let (hi, steps) = (200.0, 400_000);
        let h = 2.0 * hi / steps as f64;
        let integral: f64 = (0..steps)
            .map(|i| st.pdf(-hi + (i as f64 + 0.5) * h) * h)
            .sum();
        // The truncated tail holds exactly S(hi) mass — a consistency check
        // between the density and the survival function.
        let want = 1.0 - st.survival(hi).unwrap();
        assert!(
            (integral - want).abs() < 1e-6,
            "integral {integral} vs {want}"
        );
    }

    #[test]
    fn dp_ratio_property_holds_pointwise() {
        // f(x)/f(x+d) = e^ε exactly, everywhere.
        let st = dist();
        for x in [0.0, 1.0, 4.9, 5.1, 7.3, 23.0] {
            let ratio = (st.pdf(x) / st.pdf(x + 10.0)).ln();
            assert!((ratio - 0.5).abs() < 1e-12, "x={x}: {ratio}");
        }
    }

    #[test]
    fn survival_at_period_boundaries_is_geometric() {
        let st = dist();
        for k in 0..8 {
            let s = st.survival(k as f64 * 10.0).unwrap();
            let want = (-0.5 * k as f64).exp();
            assert!((s - want).abs() < 1e-12, "k={k}: {s} vs {want}");
        }
        assert!((st.survival(0.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn survival_domain_violations_are_typed_errors() {
        // Regression: these used to be `assert!`s, so a caller handing in a
        // negative magnitude or an out-of-range uniform crashed the process
        // instead of getting a recoverable error.
        let st = dist();
        assert!((st.survival(0.0).unwrap() - 1.0).abs() < 1e-12);
        for bad in [-1.0, -f64::MIN_POSITIVE, f64::NEG_INFINITY, f64::NAN] {
            assert!(
                matches!(st.survival(bad), Err(RngError::OutOfDomain(_))),
                "survival({bad}) should be out of domain"
            );
        }
        assert!((st.survival_inverse(1.0).unwrap()).abs() < 1e-12);
        assert!(st.survival_inverse(1e-300).unwrap().is_finite());
        for bad in [0.0, -0.5, 1.0 + 1e-9, 2.0, f64::INFINITY, f64::NAN] {
            assert!(
                matches!(st.survival_inverse(bad), Err(RngError::OutOfDomain(_))),
                "survival_inverse({bad}) should be out of domain"
            );
        }
    }

    #[test]
    fn survival_inverse_roundtrips() {
        let st = dist();
        for &u in &[1.0, 0.9, 0.7, 0.5, 0.25, 0.1, 1e-3, 1e-6] {
            let x = st.survival_inverse(u).unwrap();
            let back = st.survival(x).unwrap();
            assert!((back - u).abs() < 1e-9, "u={u}: x={x}, S(x)={back}");
        }
    }

    #[test]
    fn ideal_sample_magnitude_distribution() {
        let st = dist();
        let mut rng = Taus88::from_seed(3);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| st.sample(&mut rng)).collect();
        // Median of |X|: S(x) = 0.5.
        let med_want = st.survival_inverse(0.5).unwrap();
        let mut mags: Vec<f64> = xs.iter().map(|x| x.abs()).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = mags[n / 2];
        assert!((med - med_want).abs() < 0.3, "median {med} vs {med_want}");
        // Symmetry.
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn fxp_pmf_mass_is_exact() {
        let cfg = FxpStaircaseConfig::new(14, 14, 10.0 / 32.0).unwrap();
        let fxp = FxpStaircase::new(cfg, dist());
        let total: u128 = fxp.pmf().iter().map(|(_, w)| w).sum();
        assert_eq!(total, fxp.pmf().total_weight());
    }

    #[test]
    fn fxp_pmf_matches_enumerated_sampler() {
        let cfg = FxpStaircaseConfig::new(12, 14, 0.5).unwrap();
        let st = IdealStaircase::new(1.0, 4.0, 0.5).unwrap();
        let fxp = FxpStaircase::new(cfg, st);
        // Enumerate the sampler's deterministic magnitude map and compare
        // with the survival-derived counts.
        let mut counts = vec![0u64; (fxp.pmf().support_max_k() + 1) as usize];
        for m in 1..=(1u64 << cfg.bu()) {
            counts[fxp.magnitude_index(m) as usize] += 1;
        }
        let mut mismatch = 0u64;
        for (k, &c) in counts.iter().enumerate() {
            let w = fxp.pmf().weight(k as i64);
            let w = if k == 0 { w / 2 } else { w };
            mismatch += (c as i64 - w as i64).unsigned_abs();
        }
        // Boundary-rounding disagreements only: a vanishing fraction.
        assert!(
            mismatch <= (1u64 << cfg.bu()) / 500,
            "{mismatch} count mismatches"
        );
    }

    #[test]
    fn fxp_support_is_bounded_with_tail_gaps() {
        let cfg = FxpStaircaseConfig::new(17, 16, 10.0 / 64.0).unwrap();
        let fxp = FxpStaircase::new(cfg, dist());
        // Bounded support: ~ d·Bu·ε⁻¹·ln2 periods deep.
        assert!(fxp.pmf().support_max_k() > 0);
        assert!(fxp.pmf().interior_gap_count() > 0, "expected tail gaps");
    }

    #[test]
    fn optimal_gamma_formula() {
        let st = IdealStaircase::optimal(2.0, 1.0).unwrap();
        assert!((st.gamma() - 1.0 / (1.0 + 1.0f64.exp())).abs() < 1e-12);
    }

    #[test]
    fn sampler_respects_support() {
        let cfg = FxpStaircaseConfig::new(14, 14, 0.25).unwrap();
        let fxp = FxpStaircase::new(cfg, dist());
        let mut rng = Taus88::from_seed(6);
        for _ in 0..20_000 {
            let k = fxp.sample_index(&mut rng);
            assert!(k.abs() <= fxp.pmf().support_max_k());
        }
    }
}
