//! Hyperbolic CORDIC natural logarithm in fixed point.
//!
//! The DP-Box computes `log` with "a CORDIC logarithm function" paying "a
//! higher area penalty" so "the entire logarithm computation can be
//! completed in a single cycle" (Section IV-B) — i.e. the iterations are
//! unrolled combinationally. This module models that datapath bit-exactly in
//! integer arithmetic: shift-and-add iterations against a precomputed
//! `atanh(2^-i)` table, no floating point in the evaluation path.
//!
//! The identity used is `ln w = 2·atanh((w-1)/(w+1))`, computed by the
//! hyperbolic *vectoring* mode, after normalizing the input to `w ∈ [1, 2)`
//! with a leading-one detector so the atanh argument stays within the CORDIC
//! convergence region. Iterations 4, 13, 40, … are repeated per the standard
//! hyperbolic-convergence schedule.

use ulp_fixed::{Fx, QFormat, Rounding};

use crate::error::RngError;

/// Internal guard precision for the CORDIC datapath (fraction bits).
const GUARD_FRAC: u8 = 44;

/// A fixed-point natural-logarithm unit.
///
/// # Examples
///
/// ```
/// use ulp_fixed::{Fx, QFormat, Rounding};
/// use ulp_rng::CordicLn;
///
/// let unit = CordicLn::new(32);
/// let fmt = QFormat::new(32, 20)?;
/// let x = Fx::from_f64(0.37, fmt, Rounding::NearestTiesAway)?;
/// let ln = unit.ln(x, fmt)?;
/// assert!((ln.to_f64() - 0.37f64.ln()).abs() < 1e-4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CordicLn {
    iterations: u8,
    /// `atanh(2^-i)` for `i = 1..=iterations`, at `GUARD_FRAC` fraction bits.
    atanh_table: Vec<i64>,
    /// `ln 2` at `GUARD_FRAC` fraction bits.
    ln2: i64,
}

impl CordicLn {
    /// Creates a logarithm unit with the given number of base iterations
    /// (clamped to `1..=40`; ~`iterations` result bits of precision).
    ///
    /// The table entries model the ROM constants synthesized into the
    /// combinational CORDIC array.
    pub fn new(iterations: u8) -> Self {
        let iterations = iterations.clamp(1, 40);
        let scale = 2f64.powi(GUARD_FRAC as i32);
        let atanh_table = (1..=iterations as i32)
            .map(|i| {
                let t = 2f64.powi(-i);
                (0.5 * ((1.0 + t) / (1.0 - t)).ln() * scale).round() as i64
            })
            .collect();
        let ln2 = (std::f64::consts::LN_2 * scale).round() as i64;
        CordicLn {
            iterations,
            atanh_table,
            ln2,
        }
    }

    /// Number of base CORDIC iterations (excluding convergence repeats).
    pub fn iterations(&self) -> u8 {
        self.iterations
    }

    /// Computes `ln x` into `out` format.
    ///
    /// # Errors
    ///
    /// [`RngError::NonPositive`] if `x <= 0`; a fixed-point error if the
    /// result does not fit `out` (e.g. `ln` of a tiny input into a narrow
    /// format).
    pub fn ln(&self, x: Fx, out: QFormat) -> Result<Fx, RngError> {
        if x.raw() <= 0 {
            return Err(RngError::NonPositive);
        }
        // Normalize raw so its leading one sits at GUARD_FRAC: value
        // w = raw_norm * 2^-GUARD_FRAC ∈ [1, 2), and
        // x = w * 2^e  with  e = msb(raw) - frac_bits.
        let msb = 63 - x.raw().leading_zeros() as i32;
        let e = msb - x.format().frac_bits() as i32;
        let shift = GUARD_FRAC as i32 - msb;
        let w = if shift >= 0 {
            // Input has at most 63 significant bits; after placing the MSB
            // at bit GUARD_FRAC=44 the word still fits i64 (w < 2^45).
            x.raw() << shift
        } else {
            // Round the discarded low bits to nearest (hardware rounder).
            let s = (-shift) as u32;
            let half = 1i64 << (s - 1);
            (x.raw() + half) >> s
        };

        let ln_w = self.ln_normalized(w);
        let total = ln_w + e as i64 * self.ln2;
        let guard = QFormat::new(63, GUARD_FRAC).expect("guard format is valid");
        let wide = Fx::from_raw(total, guard).map_err(RngError::Fixed)?;
        wide.resize(out, Rounding::NearestTiesAway)
            .map_err(RngError::Fixed)
    }

    /// Hyperbolic vectoring CORDIC: returns `ln w` at `GUARD_FRAC` fraction
    /// bits for `w = w_raw * 2^-GUARD_FRAC ∈ [1, 2)`.
    fn ln_normalized(&self, w_raw: i64) -> i64 {
        let one = 1i64 << GUARD_FRAC;
        let mut x = w_raw + one; // w + 1 ∈ [2, 3)
        let mut y = w_raw - one; // w - 1 ∈ [0, 1)
        let mut z = 0i64;
        for i in 1..=self.iterations as u32 {
            // Standard hyperbolic schedule: repeat iterations 4, 13, 40.
            let repeats = if i == 4 || i == 13 || i == 40 { 2 } else { 1 };
            for _ in 0..repeats {
                let dx = y >> i;
                let dy = x >> i;
                let a = self.atanh_table[(i - 1) as usize];
                if y >= 0 {
                    x -= dx;
                    y -= dy;
                    z += a;
                } else {
                    x += dx;
                    y += dy;
                    z -= a;
                }
            }
        }
        2 * z
    }

    /// Convenience wrapper: `ln` of a real value through the fixed-point
    /// datapath, reported as `f64` (used by analysis code and tests).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CordicLn::ln`].
    pub fn ln_f64(&self, x: f64, in_fmt: QFormat, out_fmt: QFormat) -> Result<f64, RngError> {
        let fx = Fx::from_f64(x, in_fmt, Rounding::NearestTiesAway).map_err(RngError::Fixed)?;
        Ok(self.ln(fx, out_fmt)?.to_f64())
    }
}

impl Default for CordicLn {
    /// A 32-iteration unit, enough for 20-bit datapaths with margin.
    fn default() -> Self {
        CordicLn::new(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(t: u8, f: u8) -> QFormat {
        QFormat::new(t, f).unwrap()
    }

    #[test]
    fn ln_of_one_is_zero() {
        let unit = CordicLn::new(32);
        let fmt = q(32, 16);
        let one = Fx::from_f64(1.0, fmt, Rounding::Floor).unwrap();
        let r = unit.ln(one, fmt).unwrap();
        assert!(r.to_f64().abs() < 1e-4, "ln(1) = {}", r.to_f64());
    }

    #[test]
    fn ln_matches_f64_across_range() {
        let unit = CordicLn::new(36);
        let in_fmt = q(48, 30);
        let out_fmt = q(48, 30);
        for &x in &[
            0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.999, 1.0, 1.5, 2.0, 7.3, 100.0, 65535.0,
        ] {
            let got = unit.ln_f64(x, in_fmt, out_fmt).unwrap();
            let want = x.ln();
            assert!((got - want).abs() < 1e-6, "ln({x}): got {got}, want {want}");
        }
    }

    #[test]
    fn ln_of_power_of_two_is_multiple_of_ln2() {
        let unit = CordicLn::new(36);
        let fmt = q(48, 24);
        for e in [-10i32, -3, 1, 5, 12] {
            let x = 2f64.powi(e);
            let got = unit.ln_f64(x, fmt, fmt).unwrap();
            let want = e as f64 * std::f64::consts::LN_2;
            assert!(
                (got - want).abs() < 1e-5,
                "ln(2^{e}): got {got}, want {want}"
            );
        }
    }

    #[test]
    fn rejects_non_positive_input() {
        let unit = CordicLn::new(16);
        let fmt = q(16, 8);
        assert_eq!(unit.ln(Fx::zero(fmt), fmt), Err(RngError::NonPositive));
        let neg = Fx::from_f64(-1.0, fmt, Rounding::Floor).unwrap();
        assert_eq!(unit.ln(neg, fmt), Err(RngError::NonPositive));
    }

    #[test]
    fn smallest_urng_value_has_correct_log() {
        // u = 2^-17 (the Bu=17 extreme): -ln u = 17 ln 2 ≈ 11.78.
        let unit = CordicLn::new(36);
        let in_fmt = q(40, 20);
        let out_fmt = q(40, 20);
        let got = unit.ln_f64(2f64.powi(-17), in_fmt, out_fmt).unwrap();
        let want = -17.0 * std::f64::consts::LN_2;
        assert!((got - want).abs() < 1e-4, "got {got}, want {want}");
    }

    #[test]
    fn precision_scales_with_iterations() {
        let coarse = CordicLn::new(8);
        let fine = CordicLn::new(32);
        let fmt = q(48, 30);
        let x = 1.37;
        let err_coarse = (coarse.ln_f64(x, fmt, fmt).unwrap() - x.ln()).abs();
        let err_fine = (fine.ln_f64(x, fmt, fmt).unwrap() - x.ln()).abs();
        assert!(err_fine <= err_coarse);
        assert!(err_fine < 1e-6);
    }

    #[test]
    fn narrow_output_rounds_to_grid() {
        let unit = CordicLn::new(32);
        let in_fmt = q(32, 16);
        let out = q(12, 4); // Δ = 1/16
        let got = unit.ln_f64(10.0, in_fmt, out).unwrap();
        let want = 10f64.ln();
        assert!((got - want).abs() <= out.delta() / 2.0 + 1e-9);
        // Result is on the coarse grid.
        assert_eq!(got, (got * 16.0).round() / 16.0);
    }

    #[test]
    fn iterations_clamped_to_valid_range() {
        assert_eq!(CordicLn::new(0).iterations(), 1);
        assert_eq!(CordicLn::new(255).iterations(), 40);
    }
}
