//! Fault-injection wrappers for uniform bit sources.
//!
//! The DP-Box's guarantee has two legs: the *structural* window bound
//! (holds for any bit source whatsoever) and the *distributional* ε bound
//! (requires the URNG to actually be uniform). Hardware RNGs fail —
//! stuck-at bits, bias, correlated stages — and a privacy module that
//! silently keeps "working" under a degraded URNG is a real deployment
//! hazard. These wrappers inject such faults so tests can check both that
//! the structural leg survives and that health monitoring would catch the
//! distributional failure.

use crate::source::RandomBits;

/// A bit source with one output bit stuck at a constant value.
///
/// # Examples
///
/// ```
/// use ulp_rng::{RandomBits, StuckAtBits, Taus88};
///
/// // Bit 31 (the MSB every `bit()` call reads) stuck at 1.
/// let mut faulty = StuckAtBits::new(Taus88::from_seed(1), 31, true);
/// for _ in 0..100 {
///     assert!(faulty.bit(), "stuck MSB forces every coin flip");
/// }
/// ```
#[derive(Debug, Clone)]
pub struct StuckAtBits<R> {
    inner: R,
    bit: u8,
    value: bool,
}

impl<R: RandomBits> StuckAtBits<R> {
    /// Wraps `inner`, forcing output bit `bit` (0 = LSB, 31 = MSB of each
    /// 32-bit word) to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `bit > 31`.
    pub fn new(inner: R, bit: u8, value: bool) -> Self {
        assert!(bit <= 31, "bit index must be within a 32-bit word");
        StuckAtBits { inner, bit, value }
    }
}

impl<R: RandomBits> RandomBits for StuckAtBits<R> {
    fn next_u32(&mut self) -> u32 {
        let w = self.inner.next_u32();
        if self.value {
            w | (1 << self.bit)
        } else {
            w & !(1 << self.bit)
        }
    }
}

/// A bit source whose bits are biased toward 1 with probability `p`
/// (independently per bit), modelling a degraded entropy source.
#[derive(Debug, Clone)]
pub struct BiasedBits<R> {
    inner: R,
    /// Threshold in 1/256ths: each output bit is OR'd in with prob ≈ extra.
    extra_256: u8,
}

impl<R: RandomBits> BiasedBits<R> {
    /// Wraps `inner`, adding a bias toward 1: each bit is independently
    /// forced to 1 with probability `extra_256 / 256` (on top of the fair
    /// coin).
    pub fn new(inner: R, extra_256: u8) -> Self {
        BiasedBits { inner, extra_256 }
    }
}

impl<R: RandomBits> RandomBits for BiasedBits<R> {
    fn next_u32(&mut self) -> u32 {
        let base = self.inner.next_u32();
        // Build a mask where each bit is 1 with prob extra/256, from 8
        // auxiliary words (one per bit of the threshold comparison) — cheap
        // approximation: compare per-bit bytes drawn pairwise.
        let mut force = 0u32;
        if self.extra_256 > 0 {
            for _ in 0..2 {
                // Each AND of two uniform words has p(1) = 1/4 per bit;
                // accumulate until the closest power-of-two-ish approximation
                // of the requested bias is reached.
                force |= self.inner.next_u32() & self.inner.next_u32();
                if self.extra_256 <= 64 {
                    force &= self.inner.next_u32();
                }
                if self.extra_256 <= 16 {
                    force &= self.inner.next_u32();
                }
            }
        }
        base | force
    }
}

/// A simple URNG health monitor: counts ones per bit position over a
/// window and flags positions whose frequency leaves `[0.5 − tol, 0.5 +
/// tol]` — the kind of online test (cf. NIST SP 800-90B continuous health
/// tests) a privacy module should gate its guarantee on.
#[derive(Debug, Clone)]
pub struct BitHealthMonitor {
    ones: [u64; 32],
    samples: u64,
}

impl BitHealthMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        BitHealthMonitor {
            ones: [0; 32],
            samples: 0,
        }
    }

    /// Feeds one 32-bit word.
    pub fn observe(&mut self, word: u32) {
        self.samples += 1;
        for (i, count) in self.ones.iter_mut().enumerate() {
            *count += u64::from((word >> i) & 1);
        }
    }

    /// Number of observed words.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Bit positions whose ones-frequency is outside `0.5 ± tol`.
    pub fn unhealthy_bits(&self, tol: f64) -> Vec<u8> {
        if self.samples == 0 {
            return Vec::new();
        }
        (0..32u8)
            .filter(|&i| {
                let f = self.ones[i as usize] as f64 / self.samples as f64;
                (f - 0.5).abs() > tol
            })
            .collect()
    }

    /// Whether every bit position looks fair at tolerance `tol`.
    pub fn healthy(&self, tol: f64) -> bool {
        self.unhealthy_bits(tol).is_empty()
    }
}

impl Default for BitHealthMonitor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tausworthe::Taus88;

    #[test]
    fn stuck_bit_is_stuck() {
        let mut s = StuckAtBits::new(Taus88::from_seed(1), 7, false);
        for _ in 0..1_000 {
            assert_eq!(s.next_u32() & (1 << 7), 0);
        }
        let mut s = StuckAtBits::new(Taus88::from_seed(1), 0, true);
        for _ in 0..1_000 {
            assert_eq!(s.next_u32() & 1, 1);
        }
    }

    #[test]
    fn health_monitor_passes_a_good_urng() {
        let mut rng = Taus88::from_seed(2);
        let mut mon = BitHealthMonitor::new();
        for _ in 0..50_000 {
            mon.observe(rng.next_u32());
        }
        assert!(mon.healthy(0.02), "bad bits: {:?}", mon.unhealthy_bits(0.02));
    }

    #[test]
    fn health_monitor_catches_a_stuck_bit() {
        let mut rng = StuckAtBits::new(Taus88::from_seed(3), 13, true);
        let mut mon = BitHealthMonitor::new();
        for _ in 0..50_000 {
            mon.observe(rng.next_u32());
        }
        assert_eq!(mon.unhealthy_bits(0.02), vec![13]);
    }

    #[test]
    fn health_monitor_catches_broad_bias() {
        let mut rng = BiasedBits::new(Taus88::from_seed(4), 64);
        let mut mon = BitHealthMonitor::new();
        for _ in 0..50_000 {
            mon.observe(rng.next_u32());
        }
        assert!(
            mon.unhealthy_bits(0.02).len() > 16,
            "bias should show on most bits: {:?}",
            mon.unhealthy_bits(0.02)
        );
    }

    #[test]
    fn empty_monitor_is_vacuously_healthy() {
        assert!(BitHealthMonitor::new().healthy(0.01));
    }
}
