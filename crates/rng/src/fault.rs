//! Fault-injection wrappers for uniform bit sources.
//!
//! The DP-Box's guarantee has two legs: the *structural* window bound
//! (holds for any bit source whatsoever) and the *distributional* ε bound
//! (requires the URNG to actually be uniform). Hardware RNGs fail —
//! stuck-at bits, bias, correlated stages — and a privacy module that
//! silently keeps "working" under a degraded URNG is a real deployment
//! hazard. These wrappers inject such faults so tests can check both that
//! the structural leg survives and that the continuous health tests in
//! [`crate::health`] catch the distributional failure.

use crate::source::RandomBits;

/// A bit source with one output bit stuck at a constant value.
///
/// # Examples
///
/// ```
/// use ulp_rng::{RandomBits, StuckAtBits, Taus88};
///
/// // Bit 31 (the MSB every `bit()` call reads) stuck at 1.
/// let mut faulty = StuckAtBits::new(Taus88::from_seed(1), 31, true);
/// for _ in 0..100 {
///     assert!(faulty.bit(), "stuck MSB forces every coin flip");
/// }
/// ```
#[derive(Debug, Clone)]
pub struct StuckAtBits<R> {
    inner: R,
    bit: u8,
    value: bool,
}

impl<R: RandomBits> StuckAtBits<R> {
    /// Wraps `inner`, forcing output bit `bit` (0 = LSB, 31 = MSB of each
    /// 32-bit word) to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `bit > 31`.
    pub fn new(inner: R, bit: u8, value: bool) -> Self {
        assert!(bit <= 31, "bit index must be within a 32-bit word");
        StuckAtBits { inner, bit, value }
    }
}

impl<R: RandomBits> RandomBits for StuckAtBits<R> {
    fn next_u32(&mut self) -> u32 {
        let w = self.inner.next_u32();
        if self.value {
            w | (1 << self.bit)
        } else {
            w & !(1 << self.bit)
        }
    }
}

/// A bit source whose bits are biased toward 1 with probability `p`
/// (independently per bit), modelling a degraded entropy source.
#[derive(Debug, Clone)]
pub struct BiasedBits<R> {
    inner: R,
    /// Threshold in 1/256ths: each output bit is OR'd in with prob ≈ extra.
    extra_256: u8,
}

impl<R: RandomBits> BiasedBits<R> {
    /// Wraps `inner`, adding a bias toward 1: each bit is independently
    /// forced to 1 with probability `extra_256 / 256` (on top of the fair
    /// coin).
    pub fn new(inner: R, extra_256: u8) -> Self {
        BiasedBits { inner, extra_256 }
    }
}

impl<R: RandomBits> RandomBits for BiasedBits<R> {
    fn next_u32(&mut self) -> u32 {
        let base = self.inner.next_u32();
        // Build a mask where each bit is 1 with prob extra/256, from 8
        // auxiliary words (one per bit of the threshold comparison) — cheap
        // approximation: compare per-bit bytes drawn pairwise.
        let mut force = 0u32;
        if self.extra_256 > 0 {
            for _ in 0..2 {
                // Each AND of two uniform words has p(1) = 1/4 per bit;
                // accumulate until the closest power-of-two-ish approximation
                // of the requested bias is reached.
                force |= self.inner.next_u32() & self.inner.next_u32();
                if self.extra_256 <= 64 {
                    force &= self.inner.next_u32();
                }
                if self.extra_256 <= 16 {
                    force &= self.inner.next_u32();
                }
            }
        }
        base | force
    }
}

/// A bit source whose output is lag-`k` correlated: each output bit equals
/// the corresponding bit of the word emitted `lag` draws earlier with
/// probability `1/2 + rho_256/512`, and is fresh otherwise.
///
/// The marginal distribution of every bit stays exactly uniform (the
/// lagged bit and the fresh bit are both fair coins), so per-position
/// frequency tests and the adaptive proportion test cannot see this fault
/// — only a lag-correlation test can. This models a real failure mode of
/// multi-stage hardware generators whose stages couple.
///
/// # Examples
///
/// ```
/// use ulp_rng::{CorrelatedBits, RandomBits, Taus88};
///
/// // Lag-1 correlation with ρ = 128/256 = 0.5: successive words agree on
/// // roughly 75% of their bits instead of 50%.
/// let mut src = CorrelatedBits::new(Taus88::from_seed(1), 1, 128);
/// let mut agree = 0u32;
/// let mut prev = src.next_u32();
/// for _ in 0..1_000 {
///     let w = src.next_u32();
///     agree += (!(w ^ prev)).count_ones();
///     prev = w;
/// }
/// assert!(agree > 22_000, "expected ~24k/32k agreements, got {agree}");
/// ```
#[derive(Debug, Clone)]
pub struct CorrelatedBits<R> {
    inner: R,
    lag: u8,
    rho_256: u8,
    /// Last `lag` emitted words, indexed by `emitted % lag`.
    ring: [u32; 8],
    emitted: u64,
}

impl<R: RandomBits> CorrelatedBits<R> {
    /// Wraps `inner`, correlating each output word with the output `lag`
    /// draws earlier: every bit independently copies the lagged bit with
    /// probability `rho_256 / 256` and takes a fresh uniform bit otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `lag` is zero or greater than 8.
    pub fn new(inner: R, lag: u8, rho_256: u8) -> Self {
        assert!((1..=8).contains(&lag), "lag must be in 1..=8, got {lag}");
        CorrelatedBits {
            inner,
            lag,
            rho_256,
            ring: [0; 8],
            emitted: 0,
        }
    }

    /// The correlation lag, in words.
    pub fn lag(&self) -> u8 {
        self.lag
    }

    /// The copy probability numerator (`ρ = rho_256 / 256`).
    pub fn rho_256(&self) -> u8 {
        self.rho_256
    }

    /// A mask whose bits are independently 1 with probability exactly
    /// `rho_256 / 256`, built by a bit-sliced `byte < rho_256` comparison
    /// across eight auxiliary words (MSB-first).
    fn copy_mask(&mut self) -> u32 {
        let mut lt = 0u32;
        let mut eq = u32::MAX;
        for j in (0..8).rev() {
            let a = self.inner.next_u32();
            let r = if (self.rho_256 >> j) & 1 == 1 {
                u32::MAX
            } else {
                0
            };
            lt |= eq & !a & r;
            eq &= !(a ^ r);
        }
        lt
    }
}

impl<R: RandomBits> RandomBits for CorrelatedBits<R> {
    fn next_u32(&mut self) -> u32 {
        let fresh = self.inner.next_u32();
        let out = if self.emitted < u64::from(self.lag) || self.rho_256 == 0 {
            fresh
        } else {
            let lagged =
                self.ring[((self.emitted - u64::from(self.lag)) % u64::from(self.lag)) as usize];
            let copy = self.copy_mask();
            (lagged & copy) | (fresh & !copy)
        };
        self.ring[(self.emitted % u64::from(self.lag)) as usize] = out;
        self.emitted += 1;
        out
    }
}

/// A bit source that switches from one source to another after a set number
/// of draws — modelling a URNG that degrades mid-mission (and optionally
/// recovers), for measuring detection latency from fault onset.
///
/// # Examples
///
/// ```
/// use ulp_rng::{OnsetBits, RandomBits, ScriptedBits, Taus88};
///
/// // Healthy for 10 words, then a constant stream.
/// let mut src = OnsetBits::new(
///     Taus88::from_seed(1),
///     ScriptedBits::new(vec![0xFFFF_FFFF]),
///     10,
///     None,
/// );
/// for _ in 0..10 {
///     src.next_u32();
/// }
/// assert_eq!(src.next_u32(), 0xFFFF_FFFF);
/// ```
#[derive(Debug, Clone)]
pub struct OnsetBits<A, B> {
    healthy: A,
    faulty: B,
    onset: u64,
    recovery: Option<u64>,
    drawn: u64,
}

impl<A: RandomBits, B: RandomBits> OnsetBits<A, B> {
    /// Wraps two sources: draws `0..onset` come from `healthy`, draws
    /// `onset..` from `faulty`. If `recovery` is `Some(r)` (with `r >
    /// onset`), draws from `r` onward come from `healthy` again.
    ///
    /// # Panics
    ///
    /// Panics if `recovery` is not after `onset`.
    pub fn new(healthy: A, faulty: B, onset: u64, recovery: Option<u64>) -> Self {
        if let Some(r) = recovery {
            assert!(r > onset, "recovery must come after onset");
        }
        OnsetBits {
            healthy,
            faulty,
            onset,
            recovery,
            drawn: 0,
        }
    }

    /// Words drawn so far.
    pub fn drawn(&self) -> u64 {
        self.drawn
    }

    /// The draw index at which the fault switches on.
    pub fn onset(&self) -> u64 {
        self.onset
    }
}

impl<A: RandomBits, B: RandomBits> RandomBits for OnsetBits<A, B> {
    fn next_u32(&mut self) -> u32 {
        let i = self.drawn;
        self.drawn += 1;
        let faulted = i >= self.onset && self.recovery.is_none_or(|r| i < r);
        if faulted {
            self.faulty.next_u32()
        } else {
            self.healthy.next_u32()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tausworthe::Taus88;

    #[test]
    fn stuck_bit_is_stuck() {
        let mut s = StuckAtBits::new(Taus88::from_seed(1), 7, false);
        for _ in 0..1_000 {
            assert_eq!(s.next_u32() & (1 << 7), 0);
        }
        let mut s = StuckAtBits::new(Taus88::from_seed(1), 0, true);
        for _ in 0..1_000 {
            assert_eq!(s.next_u32() & 1, 1);
        }
    }

    #[test]
    fn correlated_bits_marginal_frequency_stays_fair() {
        // Copying a fair lagged bit keeps every position marginally uniform.
        // Note the tolerance: lag-1 correlation at ρ inflates the variance of
        // the empirical frequency by (1+ρ)/(1−ρ), so the band must be wider
        // than for an i.i.d. source.
        let mut src = CorrelatedBits::new(Taus88::from_seed(21), 1, 128);
        let mut ones = [0u64; 32];
        let n = 50_000u64;
        for _ in 0..n {
            let w = src.next_u32();
            for (i, count) in ones.iter_mut().enumerate() {
                *count += u64::from((w >> i) & 1);
            }
        }
        for (i, &count) in ones.iter().enumerate() {
            let f = count as f64 / n as f64;
            assert!((f - 0.5).abs() < 0.025, "bit {i} frequency {f}");
        }
    }

    #[test]
    fn correlated_bits_agreement_matches_rho() {
        // Agreement probability at the configured lag is (1 + ρ)/2.
        for rho in [64u8, 128, 255] {
            let mut src = CorrelatedBits::new(Taus88::from_seed(22), 3, rho);
            let mut prev = [0u32; 3];
            let mut agree = 0u64;
            let mut pairs = 0u64;
            for i in 0..30_000u64 {
                let w = src.next_u32();
                if i >= 3 {
                    agree += u64::from((!(w ^ prev[(i % 3) as usize])).count_ones());
                    pairs += 32;
                }
                prev[(i % 3) as usize] = w;
            }
            let expected = 0.5 + f64::from(rho) / 512.0;
            let observed = agree as f64 / pairs as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "rho {rho}: expected {expected}, observed {observed}"
            );
        }
    }

    #[test]
    fn correlated_bits_rho_zero_is_transparent() {
        let mut plain = Taus88::from_seed(23);
        let mut wrapped = CorrelatedBits::new(Taus88::from_seed(23), 2, 0);
        for _ in 0..1_000 {
            assert_eq!(plain.next_u32(), wrapped.next_u32());
        }
    }

    #[test]
    fn onset_bits_switches_and_recovers() {
        let healthy = crate::source::ScriptedBits::new(vec![0x1111_1111]);
        let faulty = crate::source::ScriptedBits::new(vec![0xFFFF_FFFF]);
        let mut src = OnsetBits::new(healthy, faulty, 3, Some(5));
        let words: Vec<u32> = (0..7).map(|_| src.next_u32()).collect();
        assert_eq!(
            words,
            vec![
                0x1111_1111,
                0x1111_1111,
                0x1111_1111,
                0xFFFF_FFFF,
                0xFFFF_FFFF,
                0x1111_1111,
                0x1111_1111,
            ]
        );
        assert_eq!(src.drawn(), 7);
    }
}
