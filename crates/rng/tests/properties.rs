//! Property-based tests for the RNG substrate.

use proptest::prelude::*;
use ulp_fixed::{Fx, QFormat, Rounding};
use ulp_rng::{
    CordicLn, CorrelatedBits, DiscreteLaplace, FxpGaussian, FxpGaussianConfig, FxpLaplace,
    FxpLaplaceConfig, FxpNoisePmf, HealthConfig, IdealLaplace, OnsetBits, RandomBits, ScriptedBits,
    StuckAtBits, Taus88, UrngHealth, Xorshift64Star,
};

fn arb_laplace_cfg() -> impl Strategy<Value = FxpLaplaceConfig> {
    (4u8..=16, 4u8..=16, 1u32..=8, 1u32..=64).prop_map(|(bu, by, delta_q, lam_q)| {
        let delta = delta_q as f64 / 4.0;
        let lambda = lam_q as f64;
        FxpLaplaceConfig::new(bu, by, delta, lambda).expect("valid config")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pmf_mass_conserved(cfg in arb_laplace_cfg()) {
        let pmf = FxpNoisePmf::closed_form(cfg);
        let total: u128 = pmf.iter().map(|(_, w)| w).sum();
        prop_assert_eq!(total, pmf.total_weight());
    }

    #[test]
    fn pmf_symmetric_and_decreasing_envelope(cfg in arb_laplace_cfg()) {
        let pmf = FxpNoisePmf::closed_form(cfg);
        // Symmetry is exact.
        for k in 1..=pmf.support_max_k() {
            prop_assert_eq!(pmf.weight(k), pmf.weight(-k));
        }
        // Tail weights are nonincreasing by construction.
        let mut prev = pmf.total_weight();
        for k in 1..=pmf.support_max_k() {
            let t = pmf.tail_weight_ge(k);
            prop_assert!(t <= prev);
            prev = t;
        }
    }

    #[test]
    fn magnitude_map_is_monotone(cfg in arb_laplace_cfg()) {
        let mut prev = i64::MAX;
        for m in 1..=cfg.urng_cardinality().min(1 << 12) {
            let k = cfg.magnitude_index(m);
            prop_assert!(k <= prev);
            prev = k;
        }
    }

    #[test]
    fn sampler_stays_in_support(cfg in arb_laplace_cfg(), seed in any::<u64>()) {
        let pmf = FxpNoisePmf::closed_form(cfg);
        let s = FxpLaplace::analytic(cfg);
        let mut rng = Taus88::from_seed(seed);
        for _ in 0..256 {
            let k = s.sample_index(&mut rng);
            prop_assert!(k.abs() <= pmf.support_max_k());
            prop_assert!(pmf.weight(k) > 0, "sampled zero-probability index {k}");
        }
    }

    #[test]
    fn scripted_worst_case_is_support_max(cfg in arb_laplace_cfg()) {
        // All-zero uniform bits force m = 1: the deepest tail value.
        let s = FxpLaplace::analytic(cfg);
        let mut src = ScriptedBits::new(vec![0, 0, 0]);
        let k = s.sample_index(&mut src);
        prop_assert_eq!(k.abs(), cfg.support_max_k());
    }

    #[test]
    fn cordic_ln_accuracy(raw in 1i64..=(1 << 20)) {
        let fmt = QFormat::new(32, 20).expect("valid");
        let unit = CordicLn::new(32);
        let x = Fx::from_raw(raw, fmt).expect("in range");
        let got = unit.ln(x, fmt).expect("positive").to_f64();
        let want = x.to_f64().ln();
        prop_assert!((got - want).abs() < 2e-5, "ln({}) = {got}, want {want}", x.to_f64());
    }

    #[test]
    fn ideal_laplace_cdf_monotone(lambda in 0.5f64..100.0, a in -50.0f64..50.0, b in -50.0f64..50.0) {
        let lap = IdealLaplace::new(lambda).expect("valid scale");
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(lap.cdf(lo) <= lap.cdf(hi) + 1e-15);
    }

    #[test]
    fn discrete_laplace_ratio_is_constant(scale in 2.0f64..128.0, k in 0i64..200) {
        let dl = DiscreteLaplace::new(scale, 100_000).expect("valid");
        let ratio = (dl.pmf(k) / dl.pmf(k + 1)).ln();
        prop_assert!((ratio - dl.eps_per_step()).abs() < 1e-9);
    }

    #[test]
    fn gaussian_pmf_mass_conserved(bu in 6u8..=14, sigma_q in 4u32..=64) {
        let cfg = FxpGaussianConfig::new(bu, 16, 1.0, sigma_q as f64).expect("valid");
        let g = FxpGaussian::new(cfg);
        let total: u128 = g.pmf().iter().map(|(_, w)| w).sum();
        prop_assert_eq!(total, g.pmf().total_weight());
    }

    #[test]
    fn gaussian_sampler_stays_in_support(bu in 6u8..=12, seed in any::<u64>()) {
        let cfg = FxpGaussianConfig::new(bu, 14, 0.5, 8.0).expect("valid");
        let g = FxpGaussian::new(cfg);
        let mut rng = Xorshift64Star::from_seed(seed);
        for _ in 0..128 {
            let k = g.sample_index(&mut rng);
            prop_assert!(k.abs() <= g.pmf().support_max_k());
        }
    }

    #[test]
    fn urng_streams_are_deterministic(seed in any::<u64>()) {
        let mut a = Taus88::from_seed(seed);
        let mut b = Taus88::from_seed(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u32(), b.next_u32());
        }
        let mut c = Xorshift64Star::from_seed(seed);
        let mut d = Xorshift64Star::from_seed(seed);
        for _ in 0..32 {
            prop_assert_eq!(c.next_u64(), d.next_u64());
        }
    }

    #[test]
    fn bits_are_in_range(n in 1u8..=64, seed in any::<u64>()) {
        let mut rng = Taus88::from_seed(seed);
        let v = rng.bits(n);
        if n < 64 {
            prop_assert!(v < (1u64 << n));
        }
    }

    #[test]
    fn correlated_bits_lag_agreement_tracks_rho(
        seed in any::<u64>(),
        lag in 1u8..=8,
        rho in 32u8..=224,
    ) {
        // Agreement at the configured lag is (1 + ρ)/2 for any lag and ρ.
        let mut src = CorrelatedBits::new(Taus88::from_seed(seed), lag, rho);
        let mut ring = [0u32; 8];
        let mut agree = 0u64;
        let mut pairs = 0u64;
        for i in 0..20_000u64 {
            let w = src.next_u32();
            if i >= u64::from(lag) {
                let prev = ring[((i - u64::from(lag)) % u64::from(lag)) as usize];
                agree += u64::from((!(w ^ prev)).count_ones());
                pairs += 32;
            }
            ring[(i % u64::from(lag)) as usize] = w;
        }
        let expected = 0.5 + f64::from(rho) / 512.0;
        let observed = agree as f64 / pairs as f64;
        prop_assert!(
            (observed - expected).abs() < 0.02,
            "lag {lag} rho {rho}: expected {expected}, observed {observed}"
        );
    }

    #[test]
    fn correlated_bits_identity_at_rho_zero(seed in any::<u64>(), lag in 1u8..=8) {
        let mut plain = Taus88::from_seed(seed);
        let mut wrapped = CorrelatedBits::new(Taus88::from_seed(seed), lag, 0);
        for _ in 0..64 {
            prop_assert_eq!(plain.next_u32(), wrapped.next_u32());
        }
    }

    #[test]
    fn onset_bits_is_healthy_before_onset(seed in any::<u64>(), onset in 1u64..=256) {
        let mut plain = Taus88::from_seed(seed);
        let mut staged = OnsetBits::new(
            Taus88::from_seed(seed),
            ScriptedBits::new(vec![0]),
            onset,
            None,
        );
        for _ in 0..onset {
            prop_assert_eq!(plain.next_u32(), staged.next_u32());
        }
        prop_assert_eq!(staged.next_u32(), 0);
    }

    #[test]
    fn health_tests_pass_healthy_sources_at_modest_alpha(seed in any::<u64>()) {
        // Even at a loose α = 2^-32 (trippier than the 2^-40 default — the
        // expected number of chance RCT runs over 16k words × 32 lanes is
        // ~1e-4 per case), a healthy Taus88 must not alarm.
        let cfg = HealthConfig::new(32, 1024, 4).expect("valid");
        let mut health = UrngHealth::new(cfg);
        let mut rng = Taus88::from_seed(seed);
        for _ in 0..16_384 {
            let word = rng.next_u32();
            prop_assert!(health.observe(word).is_ok(), "false alarm: {:?}", health.alarm());
        }
    }

    #[test]
    fn health_detects_any_stuck_bit(seed in any::<u64>(), bit in 0u8..=31, value in any::<bool>()) {
        let mut health = UrngHealth::default();
        let mut src = StuckAtBits::new(Taus88::from_seed(seed), bit, value);
        let mut tripped = None;
        for _ in 0..4_096 {
            if let Err(alarm) = health.observe(src.next_u32()) {
                tripped = Some(alarm);
                break;
            }
        }
        let alarm = tripped.expect("stuck bit must trip within a few cutoffs");
        prop_assert!(
            alarm.word_index < 2 * u64::from(health.config().rct_cutoff()),
            "latency {} words", alarm.word_index
        );
    }

    #[test]
    fn rounding_to_narrower_format_loses_at_most_half_step(
        raw in -(1i64 << 20)..(1i64 << 20),
        drop in 1u8..=6,
    ) {
        let wide = QFormat::new(32, 16).expect("valid");
        let narrow = QFormat::new(32, 16 - drop).expect("valid");
        let v = Fx::from_raw(raw, wide).expect("in range");
        let r = v.resize(narrow, Rounding::NearestTiesAway).expect("fits");
        prop_assert!((r.to_f64() - v.to_f64()).abs() <= narrow.delta() / 2.0);
    }
}
