//! Property-based tests for `ulp-fixed`.

use proptest::prelude::*;
use ulp_fixed::{Fx, QFormat, Rounding};

fn arb_format() -> impl Strategy<Value = QFormat> {
    (1u8..=63).prop_flat_map(|total| {
        (0u8..=total).prop_map(move |frac| QFormat::new(total, frac).unwrap())
    })
}

fn arb_fx(fmt: QFormat) -> impl Strategy<Value = Fx> {
    (fmt.min_raw()..=fmt.max_raw()).prop_map(move |raw| Fx::from_raw(raw, fmt).unwrap())
}

fn arb_pair() -> impl Strategy<Value = (Fx, Fx)> {
    arb_format().prop_flat_map(|fmt| (arb_fx(fmt), arb_fx(fmt)))
}

proptest! {
    #[test]
    fn raw_roundtrip(fmt in arb_format(), raw in any::<i64>()) {
        let raw = raw.rem_euclid(fmt.cardinality() as i64) + fmt.min_raw();
        let v = Fx::from_raw(raw, fmt).unwrap();
        prop_assert_eq!(v.raw(), raw);
        prop_assert_eq!(v.format(), fmt);
    }

    #[test]
    fn f64_roundtrip_is_identity_on_grid((a, _) in arb_pair()) {
        // Only formats whose raw values fit f64 exactly are lossless.
        prop_assume!(a.format().total_bits() <= 52);
        let back = Fx::from_f64(a.to_f64(), a.format(), Rounding::NearestTiesAway).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn add_commutes((a, b) in arb_pair()) {
        prop_assert_eq!(a.checked_add(b).ok(), b.checked_add(a).ok());
    }

    #[test]
    fn add_sub_inverse((a, b) in arb_pair()) {
        if let Ok(sum) = a.checked_add(b) {
            prop_assert_eq!(sum.checked_sub(b).unwrap(), a);
        }
    }

    #[test]
    fn saturating_add_stays_in_range((a, b) in arb_pair()) {
        let s = a.saturating_add(b);
        prop_assert!(s.raw() >= a.format().min_raw());
        prop_assert!(s.raw() <= a.format().max_raw());
    }

    #[test]
    fn wrapping_add_matches_checked_when_no_overflow((a, b) in arb_pair()) {
        if let Ok(sum) = a.checked_add(b) {
            prop_assert_eq!(a.wrapping_add(b), sum);
        }
    }

    #[test]
    fn wrapping_add_stays_in_range((a, b) in arb_pair()) {
        let s = a.wrapping_add(b);
        prop_assert!(a.format().contains_raw(s.raw()));
    }

    #[test]
    fn mul_commutes((a, b) in arb_pair()) {
        prop_assert_eq!(
            a.checked_mul(b, Rounding::NearestTiesEven).ok(),
            b.checked_mul(a, Rounding::NearestTiesEven).ok()
        );
    }

    #[test]
    fn mul_error_at_most_half_ulp((a, b) in arb_pair()) {
        prop_assume!(a.format().total_bits() <= 26); // keep exact in f64
        if let Ok(p) = a.checked_mul(b, Rounding::NearestTiesAway) {
            let exact = a.to_f64() * b.to_f64();
            prop_assert!((p.to_f64() - exact).abs() <= a.format().delta() / 2.0 + 1e-12);
        }
    }

    #[test]
    fn div_then_mul_close((a, b) in arb_pair()) {
        prop_assume!(a.format().total_bits() <= 26);
        prop_assume!(!b.is_zero());
        if let Ok(q) = a.checked_div(b, Rounding::NearestTiesAway) {
            let exact = a.to_f64() / b.to_f64();
            prop_assert!((q.to_f64() - exact).abs() <= a.format().delta() / 2.0 + 1e-12);
        }
    }

    #[test]
    fn resize_widen_is_exact(fmt in arb_format(), raw in any::<i64>()) {
        prop_assume!(fmt.total_bits() <= 40);
        let raw = raw.rem_euclid(fmt.cardinality() as i64) + fmt.min_raw();
        let v = Fx::from_raw(raw, fmt).unwrap();
        let wide = QFormat::new(fmt.total_bits() + 10, fmt.frac_bits() + 5).unwrap();
        let w = v.resize(wide, Rounding::Floor).unwrap();
        prop_assert_eq!(w.to_f64(), v.to_f64());
        // And shrinking back recovers the original value.
        let back = w.resize(fmt, Rounding::NearestTiesAway).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn resize_narrow_error_bounded((a, _) in arb_pair()) {
        let fmt = a.format();
        prop_assume!(fmt.frac_bits() >= 2 && fmt.total_bits() <= 40);
        let narrow = QFormat::new(fmt.total_bits(), fmt.frac_bits() - 2).unwrap();
        let n = a.resize(narrow, Rounding::NearestTiesAway).unwrap();
        prop_assert!((n.to_f64() - a.to_f64()).abs() <= narrow.delta() / 2.0);
    }

    #[test]
    fn ordering_agrees_with_f64((a, b) in arb_pair()) {
        prop_assume!(a.format().total_bits() <= 52);
        let by_fx = a.partial_cmp(&b).unwrap();
        let by_f64 = a.to_f64().partial_cmp(&b.to_f64()).unwrap();
        prop_assert_eq!(by_fx, by_f64);
    }

    #[test]
    fn shr_divides_by_power_of_two((a, _) in arb_pair(), n in 0u32..8) {
        let shifted = a.shr(n);
        prop_assert_eq!(shifted.raw(), a.raw() >> n);
    }

    #[test]
    fn clamp_is_idempotent((a, b) in arb_pair()) {
        let (lo, hi) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        let c = a.clamp(lo, hi);
        prop_assert_eq!(c.clamp(lo, hi), c);
        prop_assert!(c >= lo && c <= hi);
    }

    #[test]
    fn from_f64_saturating_never_fails_on_finite(fmt in arb_format(), x in -1e18f64..1e18) {
        let v = Fx::from_f64_saturating(x, fmt, Rounding::NearestTiesAway).unwrap();
        prop_assert!(fmt.contains_raw(v.raw()));
    }

    #[test]
    fn from_f64_rounding_modes_bracket(
        total in 40u8..=52,
        frac in 0u8..=16,
        x in -1e6f64..1e6,
    ) {
        let fmt = QFormat::new(total, frac).unwrap();
        if let (Ok(fl), Ok(ce)) = (
            Fx::from_f64(x, fmt, Rounding::Floor),
            Fx::from_f64(x, fmt, Rounding::Ceil),
        ) {
            prop_assert!(fl.to_f64() <= x + 1e-9);
            prop_assert!(ce.to_f64() >= x - 1e-9);
            prop_assert!(ce.raw() - fl.raw() <= 1);
        }
    }
}
