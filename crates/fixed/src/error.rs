//! Error types for fixed-point construction and arithmetic.

use core::fmt;

use crate::format::QFormat;

/// Error produced by fallible fixed-point operations.
///
/// # Examples
///
/// ```
/// use ulp_fixed::{Fx, QFormat, FixedError, Rounding};
///
/// let fmt = QFormat::new(8, 4)?;
/// let err = Fx::from_f64(1.0e9, fmt, Rounding::NearestTiesAway).unwrap_err();
/// assert!(matches!(err, FixedError::Overflow { .. }));
/// # Ok::<(), FixedError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FixedError {
    /// The exact result is not representable in the target format.
    Overflow {
        /// Format the result was supposed to fit in.
        format: QFormat,
    },
    /// A binary operation was attempted on operands with different formats.
    ///
    /// Hardware datapaths have a single wire width; mixing formats is a
    /// modelling bug, so it is reported rather than silently coerced.
    FormatMismatch {
        /// Format of the left-hand operand.
        lhs: QFormat,
        /// Format of the right-hand operand.
        rhs: QFormat,
    },
    /// A [`QFormat`] was requested with zero width or more than 63 bits.
    InvalidFormat {
        /// Requested total width in bits.
        total_bits: u8,
        /// Requested fractional bits.
        frac_bits: u8,
    },
    /// A conversion from `f64` was attempted on a NaN or infinite input.
    NotFinite,
    /// Division by zero.
    DivisionByZero,
}

impl fmt::Display for FixedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixedError::Overflow { format } => {
                write!(f, "result does not fit in fixed-point format {format}")
            }
            FixedError::FormatMismatch { lhs, rhs } => {
                write!(f, "operand formats differ: {lhs} vs {rhs}")
            }
            FixedError::InvalidFormat {
                total_bits,
                frac_bits,
            } => write!(
                f,
                "invalid fixed-point format: {total_bits} total bits, {frac_bits} fractional bits"
            ),
            FixedError::NotFinite => write!(f, "input value is NaN or infinite"),
            FixedError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for FixedError {}
