//! Parsing fixed-point values from text.
//!
//! `FromStr` cannot carry a target format, so parsing is an inherent
//! constructor: [`Fx::parse`] takes the decimal text, the format, and the
//! rounding mode. Exact decimal fractions are parsed without going through
//! `f64` when possible, so e.g. `"0.1"` quantizes by the stated rounding
//! mode rather than by double rounding.

use crate::error::FixedError;
use crate::format::QFormat;
use crate::round::Rounding;
use crate::value::Fx;

impl Fx {
    /// Parses a decimal string (`"-12.375"`, `"7"`, `"+0.5"`) into the
    /// given format.
    ///
    /// The value is computed as an exact scaled integer where the digits
    /// fit 128-bit arithmetic (up to ~36 significant digits), avoiding the
    /// double-rounding a detour through `f64` would introduce.
    ///
    /// # Errors
    ///
    /// [`FixedError::NotFinite`] for malformed input;
    /// [`FixedError::Overflow`] if the value does not fit the format.
    ///
    /// # Examples
    ///
    /// ```
    /// use ulp_fixed::{Fx, QFormat, Rounding};
    ///
    /// let fmt = QFormat::new(16, 8)?;
    /// let v = Fx::parse("-12.375", fmt, Rounding::NearestTiesAway)?;
    /// assert_eq!(v.to_f64(), -12.375);
    /// # Ok::<(), ulp_fixed::FixedError>(())
    /// ```
    pub fn parse(text: &str, fmt: QFormat, rounding: Rounding) -> Result<Self, FixedError> {
        let text = text.trim();
        let (negative, digits) = match text.as_bytes().first() {
            Some(b'-') => (true, &text[1..]),
            Some(b'+') => (false, &text[1..]),
            Some(_) => (false, text),
            None => return Err(FixedError::NotFinite),
        };
        let (int_part, frac_part) = match digits.split_once('.') {
            Some((i, f)) => (i, f),
            None => (digits, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return Err(FixedError::NotFinite);
        }
        if !int_part.bytes().all(|b| b.is_ascii_digit())
            || !frac_part.bytes().all(|b| b.is_ascii_digit())
        {
            return Err(FixedError::NotFinite);
        }
        // Exact path: value = (int_digits·10^n + frac_digits) / 10^n;
        // raw = value·2^f rounded. Compute numerator·2^f / 10^n in i128.
        if int_part.len() + frac_part.len() <= 30 {
            let mut mantissa: i128 = 0;
            for b in int_part.bytes().chain(frac_part.bytes()) {
                mantissa = mantissa * 10 + (b - b'0') as i128;
            }
            if negative {
                mantissa = -mantissa;
            }
            let den = 10i128.pow(frac_part.len() as u32);
            let shifted = mantissa.checked_shl(fmt.frac_bits() as u32);
            if let Some(num) = shifted {
                let q = num.div_euclid(den);
                let r = num.rem_euclid(den);
                let half2 = 2 * r; // compare 2r vs den to find the half point
                let raw = match rounding {
                    Rounding::Floor => q,
                    Rounding::Ceil => {
                        if r == 0 {
                            q
                        } else {
                            q + 1
                        }
                    }
                    Rounding::TowardZero => {
                        if num < 0 && r != 0 {
                            q + 1
                        } else {
                            q
                        }
                    }
                    Rounding::NearestTiesAway => {
                        if half2 > den || (half2 == den && num >= 0) {
                            q + 1
                        } else {
                            q
                        }
                    }
                    Rounding::NearestTiesEven => {
                        if half2 > den || (half2 == den && q % 2 != 0) {
                            q + 1
                        } else {
                            q
                        }
                    }
                };
                let raw = i64::try_from(raw).map_err(|_| FixedError::Overflow { format: fmt })?;
                return Fx::from_raw(raw, fmt);
            }
        }
        // Fallback for very long digit strings: f64 (documented loss).
        let v: f64 = text.parse().map_err(|_| FixedError::NotFinite)?;
        Fx::from_f64(v, fmt, rounding)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(t: u8, fr: u8) -> QFormat {
        QFormat::new(t, fr).unwrap()
    }

    #[test]
    fn parses_integers_and_fractions() {
        let fmt = q(16, 8);
        assert_eq!(Fx::parse("3", fmt, Rounding::Floor).unwrap().to_f64(), 3.0);
        assert_eq!(
            Fx::parse("-12.375", fmt, Rounding::Floor).unwrap().to_f64(),
            -12.375
        );
        assert_eq!(
            Fx::parse("+0.5", fmt, Rounding::Floor).unwrap().to_f64(),
            0.5
        );
        assert_eq!(
            Fx::parse(" 7.25 ", fmt, Rounding::Floor).unwrap().to_f64(),
            7.25
        );
    }

    #[test]
    fn rounds_inexact_decimals_by_mode() {
        // 0.1 at 4 fraction bits: 0.1·16 = 1.6 → floor 1, ceil 2, nearest 2.
        let fmt = q(16, 4);
        assert_eq!(Fx::parse("0.1", fmt, Rounding::Floor).unwrap().raw(), 1);
        assert_eq!(Fx::parse("0.1", fmt, Rounding::Ceil).unwrap().raw(), 2);
        assert_eq!(
            Fx::parse("0.1", fmt, Rounding::NearestTiesAway)
                .unwrap()
                .raw(),
            2
        );
        // Negative: -0.1·16 = -1.6 → floor -2, toward-zero -1.
        assert_eq!(Fx::parse("-0.1", fmt, Rounding::Floor).unwrap().raw(), -2);
        assert_eq!(
            Fx::parse("-0.1", fmt, Rounding::TowardZero).unwrap().raw(),
            -1
        );
    }

    #[test]
    fn exact_ties_respect_tie_mode() {
        // 0.125 at 2 fraction bits: 0.5 raw → tie.
        let fmt = q(16, 2);
        assert_eq!(
            Fx::parse("0.125", fmt, Rounding::NearestTiesAway)
                .unwrap()
                .raw(),
            1
        );
        assert_eq!(
            Fx::parse("0.125", fmt, Rounding::NearestTiesEven)
                .unwrap()
                .raw(),
            0
        );
    }

    #[test]
    fn rejects_malformed_input() {
        let fmt = q(16, 8);
        for bad in ["", "-", "1.2.3", "abc", "0x10", "1e5", "."] {
            assert!(
                Fx::parse(bad, fmt, Rounding::Floor).is_err(),
                "{bad:?} should fail"
            );
        }
    }

    #[test]
    fn overflow_is_reported() {
        let fmt = q(8, 4);
        assert!(matches!(
            Fx::parse("100", fmt, Rounding::Floor),
            Err(FixedError::Overflow { .. })
        ));
    }

    #[test]
    fn roundtrips_display_output() {
        let fmt = q(20, 10);
        for raw in [-512_000i64, -3, 0, 7, 511_999] {
            let v = Fx::from_raw(raw, fmt).unwrap();
            let back = Fx::parse(&v.to_string(), fmt, Rounding::NearestTiesEven).unwrap();
            assert_eq!(back, v, "roundtrip failed for {v}");
        }
    }
}
