//! Hardware-style integer formatting for fixed-point words.
//!
//! RTL debug output shows fixed-point signals as their raw two's-complement
//! words; these impls render [`Fx`] the same way — the raw word masked to
//! the format's width — under the `{:x}`, `{:X}`, `{:o}`, and `{:b}`
//! specifiers (C-NUM-FMT).

use core::fmt;

use crate::value::Fx;

fn masked_raw(v: &Fx) -> u64 {
    let width = v.format().total_bits() as u32;
    if width >= 64 {
        v.raw() as u64
    } else {
        (v.raw() as u64) & ((1u64 << width) - 1)
    }
}

impl fmt::LowerHex for Fx {
    /// The raw word in two's complement, masked to the format width.
    ///
    /// ```
    /// use ulp_fixed::{Fx, QFormat};
    ///
    /// let fmt = QFormat::new(8, 4)?;
    /// let v = Fx::from_raw(-1, fmt)?;
    /// assert_eq!(format!("{v:x}"), "ff");
    /// # Ok::<(), ulp_fixed::FixedError>(())
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&masked_raw(self), f)
    }
}

impl fmt::UpperHex for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&masked_raw(self), f)
    }
}

impl fmt::Octal for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&masked_raw(self), f)
    }
}

impl fmt::Binary for Fx {
    /// The raw word in two's complement binary, masked to the format width.
    ///
    /// ```
    /// use ulp_fixed::{Fx, QFormat};
    ///
    /// let fmt = QFormat::new(6, 2)?;
    /// let v = Fx::from_raw(-3, fmt)?;
    /// assert_eq!(format!("{v:06b}"), "111101");
    /// # Ok::<(), ulp_fixed::FixedError>(())
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&masked_raw(self), f)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Fx, QFormat};

    fn q(t: u8, fr: u8) -> QFormat {
        QFormat::new(t, fr).unwrap()
    }

    #[test]
    fn hex_shows_twos_complement() {
        let v = Fx::from_raw(-1, q(20, 5)).unwrap();
        assert_eq!(format!("{v:x}"), "fffff");
        assert_eq!(format!("{v:X}"), "FFFFF");
    }

    #[test]
    fn binary_masks_to_width() {
        let v = Fx::from_raw(-8, q(4, 0)).unwrap();
        assert_eq!(format!("{v:b}"), "1000");
        let p = Fx::from_raw(5, q(4, 0)).unwrap();
        assert_eq!(format!("{p:04b}"), "0101");
    }

    #[test]
    fn octal_of_positive() {
        let v = Fx::from_raw(9, q(8, 0)).unwrap();
        assert_eq!(format!("{v:o}"), "11");
    }

    #[test]
    fn widest_format_masks_to_63_bits() {
        let v = Fx::from_raw(-1, q(63, 0)).unwrap();
        assert_eq!(format!("{v:x}"), "7fffffffffffffff");
    }
}
