//! The fixed-point value type [`Fx`].

use core::cmp::Ordering;
use core::fmt;

use crate::error::FixedError;
use crate::format::QFormat;
use crate::round::Rounding;

/// A signed fixed-point number: a raw two's-complement word plus its
/// [`QFormat`] interpretation.
///
/// `Fx` models a value flowing through a hardware datapath, so unlike the
/// compile-time-format crates on crates.io the format is carried at runtime
/// — the simulators in this workspace sweep word widths (`Bu`, `By` in the
/// paper) as experiment parameters.
///
/// Binary operations require both operands to share a format and report
/// [`FixedError::FormatMismatch`] otherwise; use [`Fx::resize`] for explicit
/// width/precision changes, mirroring explicit wire-width adapters in RTL.
///
/// # Examples
///
/// ```
/// use ulp_fixed::{Fx, QFormat, Rounding};
///
/// let fmt = QFormat::new(16, 8)?;
/// let a = Fx::from_f64(1.5, fmt, Rounding::NearestTiesAway)?;
/// let b = Fx::from_f64(2.25, fmt, Rounding::NearestTiesAway)?;
/// let sum = a.checked_add(b)?;
/// assert_eq!(sum.to_f64(), 3.75);
/// # Ok::<(), ulp_fixed::FixedError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fx {
    raw: i64,
    fmt: QFormat,
}

impl Fx {
    /// Constructs a value from a raw word already in `fmt`.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::Overflow`] if `raw` does not fit `fmt`'s word.
    pub fn from_raw(raw: i64, fmt: QFormat) -> Result<Self, FixedError> {
        if fmt.contains_raw(raw) {
            Ok(Fx { raw, fmt })
        } else {
            Err(FixedError::Overflow { format: fmt })
        }
    }

    /// Quantizes a real value onto `fmt`'s grid with the given rounding mode.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::NotFinite`] for NaN/infinite input and
    /// [`FixedError::Overflow`] if the rounded value exceeds the format's
    /// range.
    pub fn from_f64(x: f64, fmt: QFormat, rounding: Rounding) -> Result<Self, FixedError> {
        if !x.is_finite() {
            return Err(FixedError::NotFinite);
        }
        let scaled = x / fmt.delta();
        // Guard against f64 -> i64 cast UB territory before rounding.
        if scaled.abs() >= 2f64.powi(63) {
            return Err(FixedError::Overflow { format: fmt });
        }
        Self::from_raw(rounding.apply(scaled), fmt)
    }

    /// Quantizes a real value, saturating to the format bounds on overflow.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::NotFinite`] for NaN/infinite input.
    pub fn from_f64_saturating(
        x: f64,
        fmt: QFormat,
        rounding: Rounding,
    ) -> Result<Self, FixedError> {
        if !x.is_finite() {
            return Err(FixedError::NotFinite);
        }
        let scaled = x / fmt.delta();
        let raw = if scaled.abs() >= 2f64.powi(63) {
            if scaled > 0.0 {
                fmt.max_raw()
            } else {
                fmt.min_raw()
            }
        } else {
            rounding.apply(scaled).clamp(fmt.min_raw(), fmt.max_raw())
        };
        Ok(Fx { raw, fmt })
    }

    /// The zero value in `fmt`.
    #[inline]
    pub fn zero(fmt: QFormat) -> Self {
        Fx { raw: 0, fmt }
    }

    /// The smallest representable value in `fmt`.
    #[inline]
    pub fn min_of(fmt: QFormat) -> Self {
        Fx {
            raw: fmt.min_raw(),
            fmt,
        }
    }

    /// The largest representable value in `fmt`.
    #[inline]
    pub fn max_of(fmt: QFormat) -> Self {
        Fx {
            raw: fmt.max_raw(),
            fmt,
        }
    }

    /// The underlying two's-complement word.
    #[inline]
    pub fn raw(self) -> i64 {
        self.raw
    }

    /// The format this value is interpreted in.
    #[inline]
    pub fn format(self) -> QFormat {
        self.fmt
    }

    /// The exact real value `raw * 2^-frac_bits`.
    ///
    /// Exact for formats up to 53 significant bits; beyond that the nearest
    /// `f64` is returned.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.raw as f64 * self.fmt.delta()
    }

    /// Whether this value is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.raw == 0
    }

    /// Whether this value is strictly negative.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.raw < 0
    }

    /// Re-quantizes into another format.
    ///
    /// Fractional bits are added exactly (left shift) or removed with the
    /// given rounding mode (modelling a truncating/rounding wire adapter).
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::Overflow`] if the value does not fit `target`.
    pub fn resize(self, target: QFormat, rounding: Rounding) -> Result<Self, FixedError> {
        let src_f = self.fmt.frac_bits() as i32;
        let dst_f = target.frac_bits() as i32;
        let raw = if dst_f >= src_f {
            let shift = (dst_f - src_f) as u32;
            self.raw
                .checked_shl(shift)
                .filter(|r| (r >> shift) == self.raw)
                .ok_or(FixedError::Overflow { format: target })?
        } else {
            let shift = src_f - dst_f;
            // Round raw / 2^shift; do it in f64-free integer arithmetic.
            let div = 1i64 << shift;
            let q = self.raw.div_euclid(div);
            let r = self.raw.rem_euclid(div);
            let half = div / 2;
            match rounding {
                Rounding::Floor => q,
                Rounding::Ceil => {
                    if r == 0 {
                        q
                    } else {
                        q + 1
                    }
                }
                Rounding::TowardZero => {
                    if self.raw < 0 && r != 0 {
                        q + 1
                    } else {
                        q
                    }
                }
                Rounding::NearestTiesAway => {
                    if r > half || (r == half && self.raw >= 0) {
                        q + 1
                    } else {
                        q
                    }
                }
                Rounding::NearestTiesEven => {
                    if r > half || (r == half && q % 2 != 0) {
                        q + 1
                    } else {
                        q
                    }
                }
            }
        };
        Self::from_raw(raw, target)
    }

    /// Re-quantizes into another format, saturating on overflow.
    pub fn resize_saturating(self, target: QFormat, rounding: Rounding) -> Self {
        match self.resize(target, rounding) {
            Ok(v) => v,
            Err(_) => {
                if self.raw >= 0 {
                    Fx::max_of(target)
                } else {
                    Fx::min_of(target)
                }
            }
        }
    }

    fn require_same_format(self, other: Fx) -> Result<(), FixedError> {
        if self.fmt == other.fmt {
            Ok(())
        } else {
            Err(FixedError::FormatMismatch {
                lhs: self.fmt,
                rhs: other.fmt,
            })
        }
    }

    /// Adds two values of the same format.
    ///
    /// # Errors
    ///
    /// [`FixedError::FormatMismatch`] if formats differ;
    /// [`FixedError::Overflow`] if the exact sum does not fit.
    pub fn checked_add(self, other: Fx) -> Result<Self, FixedError> {
        self.require_same_format(other)?;
        let raw = self.raw + other.raw; // i64 cannot overflow: both < 2^62
        Self::from_raw(raw, self.fmt)
    }

    /// Subtracts `other` from `self` (same format).
    ///
    /// # Errors
    ///
    /// [`FixedError::FormatMismatch`] if formats differ;
    /// [`FixedError::Overflow`] if the exact difference does not fit.
    pub fn checked_sub(self, other: Fx) -> Result<Self, FixedError> {
        self.require_same_format(other)?;
        Self::from_raw(self.raw - other.raw, self.fmt)
    }

    /// Multiplies two values of the same format, rounding the `2f`-bit
    /// product back to `f` fractional bits.
    ///
    /// # Errors
    ///
    /// [`FixedError::FormatMismatch`] if formats differ;
    /// [`FixedError::Overflow`] if the rounded product does not fit.
    pub fn checked_mul(self, other: Fx, rounding: Rounding) -> Result<Self, FixedError> {
        self.require_same_format(other)?;
        let wide = self.raw as i128 * other.raw as i128;
        let raw = round_shift_right(wide, self.fmt.frac_bits() as u32, rounding);
        let raw = i64::try_from(raw).map_err(|_| FixedError::Overflow { format: self.fmt })?;
        Self::from_raw(raw, self.fmt)
    }

    /// Divides `self` by `other` (same format), rounding to `f` fractional
    /// bits.
    ///
    /// # Errors
    ///
    /// [`FixedError::FormatMismatch`] if formats differ;
    /// [`FixedError::DivisionByZero`] if `other` is zero;
    /// [`FixedError::Overflow`] if the quotient does not fit.
    pub fn checked_div(self, other: Fx, rounding: Rounding) -> Result<Self, FixedError> {
        self.require_same_format(other)?;
        if other.raw == 0 {
            return Err(FixedError::DivisionByZero);
        }
        // (a * 2^f) / b, rounded. Work at double precision then round.
        let num = (self.raw as i128) << (self.fmt.frac_bits() as u32 + 1);
        let den = other.raw as i128;
        let doubled = num / den; // quotient at f+1 fractional bits
        let raw = round_shift_right(doubled, 1, rounding);
        let raw = i64::try_from(raw).map_err(|_| FixedError::Overflow { format: self.fmt })?;
        Self::from_raw(raw, self.fmt)
    }

    /// Adds, saturating to the format bounds instead of failing.
    ///
    /// # Panics
    ///
    /// Panics if the formats differ (a modelling bug, not a data condition).
    pub fn saturating_add(self, other: Fx) -> Self {
        assert_eq!(self.fmt, other.fmt, "saturating_add: format mismatch");
        let raw = (self.raw + other.raw).clamp(self.fmt.min_raw(), self.fmt.max_raw());
        Fx { raw, fmt: self.fmt }
    }

    /// Subtracts, saturating to the format bounds instead of failing.
    ///
    /// # Panics
    ///
    /// Panics if the formats differ.
    pub fn saturating_sub(self, other: Fx) -> Self {
        assert_eq!(self.fmt, other.fmt, "saturating_sub: format mismatch");
        let raw = (self.raw - other.raw).clamp(self.fmt.min_raw(), self.fmt.max_raw());
        Fx { raw, fmt: self.fmt }
    }

    /// Adds with two's-complement wraparound, exactly like an unguarded
    /// hardware adder of `total_bits` width.
    pub fn wrapping_add(self, other: Fx) -> Self {
        assert_eq!(self.fmt, other.fmt, "wrapping_add: format mismatch");
        let width = self.fmt.total_bits() as u32;
        let mask = (1i128 << width) - 1;
        let sum = (self.raw as i128 + other.raw as i128) & mask;
        // Sign-extend back from `width` bits.
        let sign = 1i128 << (width - 1);
        let raw = ((sum ^ sign) - sign) as i64;
        Fx { raw, fmt: self.fmt }
    }

    /// Negates the value.
    ///
    /// # Errors
    ///
    /// [`FixedError::Overflow`] when negating the most negative word.
    pub fn checked_neg(self) -> Result<Self, FixedError> {
        Self::from_raw(-self.raw, self.fmt)
    }

    /// Absolute value.
    ///
    /// # Errors
    ///
    /// [`FixedError::Overflow`] for the most negative word.
    pub fn checked_abs(self) -> Result<Self, FixedError> {
        Self::from_raw(self.raw.abs(), self.fmt)
    }

    /// Arithmetic right shift by `n` bits (divide by `2^n`, toward -∞),
    /// the hardware scaling used when ε is a power of two (paper Eq. 19).
    #[allow(clippy::should_implement_trait)] // deliberate: models the hardware shifter, not ops::Shr
    pub fn shr(self, n: u32) -> Self {
        Fx {
            raw: self.raw >> n.min(63),
            fmt: self.fmt,
        }
    }

    /// Left shift by `n` bits (multiply by `2^n`).
    ///
    /// # Errors
    ///
    /// [`FixedError::Overflow`] if the shifted value does not fit.
    pub fn checked_shl(self, n: u32) -> Result<Self, FixedError> {
        let raw = self
            .raw
            .checked_shl(n)
            .filter(|r| (r >> n) == self.raw)
            .ok_or(FixedError::Overflow { format: self.fmt })?;
        Self::from_raw(raw, self.fmt)
    }

    /// Absolute difference `|self − other|`, saturating to the format's
    /// maximum when the true difference exceeds the word (which
    /// `checked_sub` + `checked_abs` would reject near the word edges).
    ///
    /// # Panics
    ///
    /// Panics if the formats differ.
    pub fn abs_diff(self, other: Fx) -> Self {
        assert_eq!(self.fmt, other.fmt, "abs_diff: format mismatch");
        let d = self.raw.abs_diff(other.raw);
        Fx {
            raw: d.min(self.fmt.max_raw() as u64) as i64,
            fmt: self.fmt,
        }
    }

    /// The sign of the value: −1, 0, or +1 in the same format's integer
    /// grid (saturating to the grid if the format is a pure fraction).
    pub fn signum_raw(self) -> i64 {
        self.raw.signum()
    }

    /// The smaller of two values.
    ///
    /// # Panics
    ///
    /// Panics if the formats differ.
    pub fn min(self, other: Fx) -> Self {
        assert_eq!(self.fmt, other.fmt, "min: format mismatch");
        if self.raw <= other.raw {
            self
        } else {
            other
        }
    }

    /// The larger of two values.
    ///
    /// # Panics
    ///
    /// Panics if the formats differ.
    pub fn max(self, other: Fx) -> Self {
        assert_eq!(self.fmt, other.fmt, "max: format mismatch");
        if self.raw >= other.raw {
            self
        } else {
            other
        }
    }

    /// Clamps the value into `[lo, hi]` (all three must share a format).
    ///
    /// # Panics
    ///
    /// Panics if formats differ or `lo > hi`.
    pub fn clamp(self, lo: Fx, hi: Fx) -> Self {
        assert_eq!(self.fmt, lo.fmt, "clamp: format mismatch");
        assert_eq!(self.fmt, hi.fmt, "clamp: format mismatch");
        assert!(lo.raw <= hi.raw, "clamp: lo > hi");
        Fx {
            raw: self.raw.clamp(lo.raw, hi.raw),
            fmt: self.fmt,
        }
    }
}

/// Rounds `wide >> shift` according to `rounding`.
fn round_shift_right(wide: i128, shift: u32, rounding: Rounding) -> i128 {
    if shift == 0 {
        return wide;
    }
    let div = 1i128 << shift;
    let q = wide.div_euclid(div);
    let r = wide.rem_euclid(div);
    let half = div / 2;
    match rounding {
        Rounding::Floor => q,
        Rounding::Ceil => {
            if r == 0 {
                q
            } else {
                q + 1
            }
        }
        Rounding::TowardZero => {
            if wide < 0 && r != 0 {
                q + 1
            } else {
                q
            }
        }
        Rounding::NearestTiesAway => {
            if r > half || (r == half && wide >= 0) {
                q + 1
            } else {
                q
            }
        }
        Rounding::NearestTiesEven => {
            if r > half || (r == half && q % 2 != 0) {
                q + 1
            } else {
                q
            }
        }
    }
}

impl PartialOrd for Fx {
    /// Values of different formats are unordered (`None`).
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        if self.fmt == other.fmt {
            Some(self.raw.cmp(&other.raw))
        } else {
            None
        }
    }
}

impl fmt::Display for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(t: u8, fr: u8) -> QFormat {
        QFormat::new(t, fr).unwrap()
    }

    #[test]
    fn from_raw_validates_range() {
        let fmt = q(8, 4);
        assert!(Fx::from_raw(127, fmt).is_ok());
        assert!(Fx::from_raw(128, fmt).is_err());
        assert!(Fx::from_raw(-128, fmt).is_ok());
        assert!(Fx::from_raw(-129, fmt).is_err());
    }

    #[test]
    fn from_f64_roundtrips_grid_points() {
        let fmt = q(16, 8);
        for raw in [-32768i64, -1, 0, 1, 255, 32767] {
            let v = Fx::from_raw(raw, fmt).unwrap();
            let back = Fx::from_f64(v.to_f64(), fmt, Rounding::NearestTiesAway).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn from_f64_rejects_nan_and_inf() {
        let fmt = q(16, 8);
        assert_eq!(
            Fx::from_f64(f64::NAN, fmt, Rounding::Floor),
            Err(FixedError::NotFinite)
        );
        assert_eq!(
            Fx::from_f64(f64::INFINITY, fmt, Rounding::Floor),
            Err(FixedError::NotFinite)
        );
    }

    #[test]
    fn from_f64_saturating_clamps() {
        let fmt = q(8, 0);
        let hi = Fx::from_f64_saturating(1e9, fmt, Rounding::Floor).unwrap();
        assert_eq!(hi.raw(), 127);
        let lo = Fx::from_f64_saturating(-1e9, fmt, Rounding::Floor).unwrap();
        assert_eq!(lo.raw(), -128);
    }

    #[test]
    fn add_sub_are_exact() {
        let fmt = q(16, 8);
        let a = Fx::from_f64(1.5, fmt, Rounding::Floor).unwrap();
        let b = Fx::from_f64(-0.25, fmt, Rounding::Floor).unwrap();
        assert_eq!(a.checked_add(b).unwrap().to_f64(), 1.25);
        assert_eq!(a.checked_sub(b).unwrap().to_f64(), 1.75);
    }

    #[test]
    fn add_detects_overflow() {
        let fmt = q(8, 0);
        let max = Fx::max_of(fmt);
        let one = Fx::from_raw(1, fmt).unwrap();
        assert!(matches!(
            max.checked_add(one),
            Err(FixedError::Overflow { .. })
        ));
    }

    #[test]
    fn mixed_formats_are_rejected() {
        let a = Fx::zero(q(8, 0));
        let b = Fx::zero(q(8, 1));
        assert!(matches!(
            a.checked_add(b),
            Err(FixedError::FormatMismatch { .. })
        ));
        assert_eq!(a.partial_cmp(&b), None);
    }

    #[test]
    fn mul_rounds_product() {
        let fmt = q(16, 8);
        let a = Fx::from_f64(1.5, fmt, Rounding::Floor).unwrap();
        let b = Fx::from_f64(2.5, fmt, Rounding::Floor).unwrap();
        let p = a.checked_mul(b, Rounding::NearestTiesAway).unwrap();
        assert_eq!(p.to_f64(), 3.75);
    }

    #[test]
    fn mul_of_small_values_rounds_to_grid() {
        let fmt = q(16, 8);
        let eps = Fx::from_raw(1, fmt).unwrap(); // 2^-8
                                                 // eps * eps = 2^-16, rounds to 0 at 8 fractional bits (ties-even).
        let p = eps.checked_mul(eps, Rounding::NearestTiesEven).unwrap();
        assert!(p.is_zero());
    }

    #[test]
    fn div_computes_rounded_quotient() {
        let fmt = q(16, 8);
        let a = Fx::from_f64(1.0, fmt, Rounding::Floor).unwrap();
        let b = Fx::from_f64(3.0, fmt, Rounding::Floor).unwrap();
        let d = a.checked_div(b, Rounding::NearestTiesAway).unwrap();
        assert!((d.to_f64() - 1.0 / 3.0).abs() <= fmt.delta());
    }

    #[test]
    fn div_by_zero_is_reported() {
        let fmt = q(16, 8);
        let a = Fx::from_f64(1.0, fmt, Rounding::Floor).unwrap();
        assert_eq!(
            a.checked_div(Fx::zero(fmt), Rounding::Floor),
            Err(FixedError::DivisionByZero)
        );
    }

    #[test]
    fn saturating_ops_clamp_to_bounds() {
        let fmt = q(8, 0);
        let max = Fx::max_of(fmt);
        let one = Fx::from_raw(1, fmt).unwrap();
        assert_eq!(max.saturating_add(one), max);
        let min = Fx::min_of(fmt);
        assert_eq!(min.saturating_sub(one), min);
    }

    #[test]
    fn wrapping_add_wraps_like_hardware() {
        let fmt = q(8, 0);
        let max = Fx::max_of(fmt); // 127
        let one = Fx::from_raw(1, fmt).unwrap();
        assert_eq!(max.wrapping_add(one).raw(), -128);
        let min = Fx::min_of(fmt);
        let neg1 = Fx::from_raw(-1, fmt).unwrap();
        assert_eq!(min.wrapping_add(neg1).raw(), 127);
    }

    #[test]
    fn neg_and_abs_handle_most_negative() {
        let fmt = q(8, 0);
        let min = Fx::min_of(fmt);
        assert!(min.checked_neg().is_err());
        assert!(min.checked_abs().is_err());
        let v = Fx::from_raw(-5, fmt).unwrap();
        assert_eq!(v.checked_abs().unwrap().raw(), 5);
    }

    #[test]
    fn resize_adds_fraction_exactly() {
        let a = Fx::from_f64(1.25, q(8, 2), Rounding::Floor).unwrap();
        let b = a.resize(q(16, 8), Rounding::Floor).unwrap();
        assert_eq!(b.to_f64(), 1.25);
    }

    #[test]
    fn resize_drops_fraction_with_rounding() {
        let a = Fx::from_f64(1.75, q(16, 8), Rounding::Floor).unwrap();
        assert_eq!(
            a.resize(q(8, 0), Rounding::NearestTiesAway).unwrap().raw(),
            2
        );
        assert_eq!(a.resize(q(8, 0), Rounding::Floor).unwrap().raw(), 1);
        assert_eq!(a.resize(q(8, 0), Rounding::TowardZero).unwrap().raw(), 1);
        let neg = Fx::from_f64(-1.75, q(16, 8), Rounding::Floor).unwrap();
        assert_eq!(neg.resize(q(8, 0), Rounding::TowardZero).unwrap().raw(), -1);
        assert_eq!(neg.resize(q(8, 0), Rounding::Floor).unwrap().raw(), -2);
    }

    #[test]
    fn resize_saturating_clamps() {
        let a = Fx::from_f64(100.0, q(16, 4), Rounding::Floor).unwrap();
        let b = a.resize_saturating(q(4, 0), Rounding::Floor);
        assert_eq!(b, Fx::max_of(q(4, 0)));
    }

    #[test]
    fn shr_scales_by_power_of_two() {
        let fmt = q(16, 8);
        let a = Fx::from_f64(5.0, fmt, Rounding::Floor).unwrap();
        assert_eq!(a.shr(2).to_f64(), 1.25);
    }

    #[test]
    fn shl_detects_overflow() {
        let fmt = q(8, 0);
        let a = Fx::from_raw(64, fmt).unwrap();
        assert!(a.checked_shl(1).is_err());
        let b = Fx::from_raw(3, fmt).unwrap();
        assert_eq!(b.checked_shl(2).unwrap().raw(), 12);
    }

    #[test]
    fn abs_diff_saturates_at_word_edges() {
        let fmt = q(8, 0);
        let a = Fx::from_raw(-100, fmt).unwrap();
        let b = Fx::from_raw(100, fmt).unwrap();
        // True difference 200 > max_raw 127 → saturates.
        assert_eq!(a.abs_diff(b).raw(), 127);
        let c = Fx::from_raw(5, fmt).unwrap();
        let d = Fx::from_raw(-3, fmt).unwrap();
        assert_eq!(c.abs_diff(d).raw(), 8);
        assert_eq!(d.abs_diff(c).raw(), 8);
    }

    #[test]
    fn min_max_and_signum() {
        let fmt = q(8, 2);
        let a = Fx::from_raw(-4, fmt).unwrap();
        let b = Fx::from_raw(9, fmt).unwrap();
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.signum_raw(), -1);
        assert_eq!(b.signum_raw(), 1);
        assert_eq!(Fx::zero(fmt).signum_raw(), 0);
    }

    #[test]
    fn clamp_respects_bounds() {
        let fmt = q(8, 0);
        let lo = Fx::from_raw(-10, fmt).unwrap();
        let hi = Fx::from_raw(10, fmt).unwrap();
        assert_eq!(Fx::from_raw(50, fmt).unwrap().clamp(lo, hi), hi);
        assert_eq!(Fx::from_raw(-50, fmt).unwrap().clamp(lo, hi), lo);
        let mid = Fx::from_raw(3, fmt).unwrap();
        assert_eq!(mid.clamp(lo, hi), mid);
    }

    #[test]
    fn ordering_matches_real_value() {
        let fmt = q(8, 2);
        let a = Fx::from_f64(-1.0, fmt, Rounding::Floor).unwrap();
        let b = Fx::from_f64(1.5, fmt, Rounding::Floor).unwrap();
        assert!(a < b);
    }

    #[test]
    fn display_shows_real_value() {
        let fmt = q(8, 2);
        let a = Fx::from_f64(1.25, fmt, Rounding::Floor).unwrap();
        assert_eq!(a.to_string(), "1.25");
    }
}
