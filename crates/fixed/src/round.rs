//! Rounding modes used when quantizing real values onto a fixed-point grid.

/// How a real value is mapped to the nearest representable grid point.
///
/// The paper's RNG hardware "rounds to the nearest value `kΔ`"
/// (Section III-A2); [`Rounding::NearestTiesAway`] models the usual
/// add-half-and-truncate hardware rounder. The other modes are provided for
/// modelling alternative datapaths and for conversion plumbing.
///
/// # Examples
///
/// ```
/// use ulp_fixed::Rounding;
///
/// assert_eq!(Rounding::NearestTiesAway.apply(2.5), 3);
/// assert_eq!(Rounding::NearestTiesEven.apply(2.5), 2);
/// assert_eq!(Rounding::Floor.apply(-0.1), -1);
/// assert_eq!(Rounding::TowardZero.apply(-0.9), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Rounding {
    /// Round to nearest; ties away from zero (`f64::round` semantics).
    #[default]
    NearestTiesAway,
    /// Round to nearest; ties to the even integer (IEEE default).
    NearestTiesEven,
    /// Round toward negative infinity.
    Floor,
    /// Round toward positive infinity.
    Ceil,
    /// Round toward zero (truncation).
    TowardZero,
}

impl Rounding {
    /// Rounds a finite `f64` to an integer according to this mode.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `x` is NaN. For non-finite inputs the
    /// result is unspecified; callers validate finiteness first.
    #[inline]
    pub fn apply(self, x: f64) -> i64 {
        debug_assert!(!x.is_nan(), "rounding NaN");
        let r = match self {
            Rounding::NearestTiesAway => x.round(),
            Rounding::NearestTiesEven => {
                let r = x.round();
                // `round` ties away; fix up exact halves toward even.
                if (x - x.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
                    r - (r - x).signum()
                } else {
                    r
                }
            }
            Rounding::Floor => x.floor(),
            Rounding::Ceil => x.ceil(),
            Rounding::TowardZero => x.trunc(),
        };
        r as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ties_away_matches_hardware_rounder() {
        assert_eq!(Rounding::NearestTiesAway.apply(0.5), 1);
        assert_eq!(Rounding::NearestTiesAway.apply(-0.5), -1);
        assert_eq!(Rounding::NearestTiesAway.apply(1.49), 1);
        assert_eq!(Rounding::NearestTiesAway.apply(1.51), 2);
    }

    #[test]
    fn ties_even_breaks_ties_to_even() {
        assert_eq!(Rounding::NearestTiesEven.apply(0.5), 0);
        assert_eq!(Rounding::NearestTiesEven.apply(1.5), 2);
        assert_eq!(Rounding::NearestTiesEven.apply(2.5), 2);
        assert_eq!(Rounding::NearestTiesEven.apply(-1.5), -2);
        assert_eq!(Rounding::NearestTiesEven.apply(-2.5), -2);
        // Non-ties behave like plain nearest.
        assert_eq!(Rounding::NearestTiesEven.apply(2.51), 3);
    }

    #[test]
    fn floor_and_ceil_are_directed() {
        assert_eq!(Rounding::Floor.apply(1.9), 1);
        assert_eq!(Rounding::Floor.apply(-1.1), -2);
        assert_eq!(Rounding::Ceil.apply(1.1), 2);
        assert_eq!(Rounding::Ceil.apply(-1.9), -1);
    }

    #[test]
    fn toward_zero_truncates() {
        assert_eq!(Rounding::TowardZero.apply(1.99), 1);
        assert_eq!(Rounding::TowardZero.apply(-1.99), -1);
    }

    #[test]
    fn integers_are_fixed_points_of_every_mode() {
        for mode in [
            Rounding::NearestTiesAway,
            Rounding::NearestTiesEven,
            Rounding::Floor,
            Rounding::Ceil,
            Rounding::TowardZero,
        ] {
            for v in [-3.0, -1.0, 0.0, 1.0, 7.0] {
                assert_eq!(mode.apply(v) as f64, v, "{mode:?} moved integer {v}");
            }
        }
    }

    #[test]
    fn default_is_ties_away() {
        assert_eq!(Rounding::default(), Rounding::NearestTiesAway);
    }
}
