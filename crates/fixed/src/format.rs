//! Q-format descriptors for signed two's-complement fixed-point numbers.

use core::fmt;

use crate::error::FixedError;

/// A signed two's-complement fixed-point format.
///
/// A `QFormat` with `total_bits = w` and `frac_bits = f` stores values as a
/// `w`-bit signed integer `raw`, interpreted as `raw * 2^-f`. The integer
/// part (including the sign bit) therefore has `w - f` bits. Following the
/// hardware convention, `frac_bits` may equal `total_bits` (pure fraction,
/// sign in the top fractional position) but may not exceed it.
///
/// The representable range is `[-2^(w-1), 2^(w-1) - 1] * 2^-f`, i.e. the
/// range is asymmetric exactly like the underlying two's-complement word.
///
/// # Examples
///
/// ```
/// use ulp_fixed::QFormat;
///
/// // The paper's DP-Box uses a 20-bit datapath.
/// let fmt = QFormat::new(20, 10)?;
/// assert_eq!(fmt.delta(), 2f64.powi(-10));
/// assert_eq!(fmt.max_value(), (2f64.powi(19) - 1.0) * 2f64.powi(-10));
/// # Ok::<(), ulp_fixed::FixedError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QFormat {
    total_bits: u8,
    frac_bits: u8,
}

impl QFormat {
    /// Creates a format with `total_bits` total width and `frac_bits`
    /// fractional bits.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::InvalidFormat`] if `total_bits` is zero or
    /// greater than 63 (raw values must fit an `i64` with headroom for
    /// detection of overflow), or if `frac_bits > total_bits`.
    pub fn new(total_bits: u8, frac_bits: u8) -> Result<Self, FixedError> {
        if total_bits == 0 || total_bits > 63 || frac_bits > total_bits {
            return Err(FixedError::InvalidFormat {
                total_bits,
                frac_bits,
            });
        }
        Ok(QFormat {
            total_bits,
            frac_bits,
        })
    }

    /// Total word width in bits, including the sign bit.
    #[inline]
    pub fn total_bits(self) -> u8 {
        self.total_bits
    }

    /// Number of fractional bits.
    #[inline]
    pub fn frac_bits(self) -> u8 {
        self.frac_bits
    }

    /// Number of integer bits, including the sign bit.
    #[inline]
    pub fn int_bits(self) -> u8 {
        self.total_bits - self.frac_bits
    }

    /// The quantization step `Δ = 2^-frac_bits`: the value of one LSB.
    #[inline]
    pub fn delta(self) -> f64 {
        (self.frac_bits as i32)
            .checked_neg()
            .map_or(1.0, |e| 2f64.powi(e))
    }

    /// Smallest representable raw word, `-2^(total_bits-1)`.
    #[inline]
    pub fn min_raw(self) -> i64 {
        -(1i64 << (self.total_bits - 1))
    }

    /// Largest representable raw word, `2^(total_bits-1) - 1`.
    #[inline]
    pub fn max_raw(self) -> i64 {
        (1i64 << (self.total_bits - 1)) - 1
    }

    /// Smallest representable real value.
    #[inline]
    pub fn min_value(self) -> f64 {
        self.min_raw() as f64 * self.delta()
    }

    /// Largest representable real value.
    #[inline]
    pub fn max_value(self) -> f64 {
        self.max_raw() as f64 * self.delta()
    }

    /// Whether `raw` fits in this format's word.
    #[inline]
    pub fn contains_raw(self, raw: i64) -> bool {
        raw >= self.min_raw() && raw <= self.max_raw()
    }

    /// Number of distinct representable values, `2^total_bits`.
    #[inline]
    pub fn cardinality(self) -> u64 {
        1u64 << self.total_bits
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Hardware-style Qm.n notation: m integer bits (excl. sign), n frac.
        write!(
            f,
            "Q{}.{}",
            self.int_bits().saturating_sub(1),
            self.frac_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_zero_width() {
        assert!(QFormat::new(0, 0).is_err());
    }

    #[test]
    fn new_rejects_too_wide() {
        assert!(QFormat::new(64, 0).is_err());
        assert!(QFormat::new(63, 0).is_ok());
    }

    #[test]
    fn new_rejects_frac_exceeding_total() {
        assert!(QFormat::new(8, 9).is_err());
        assert!(QFormat::new(8, 8).is_ok());
    }

    #[test]
    fn raw_bounds_are_twos_complement() {
        let f = QFormat::new(8, 0).unwrap();
        assert_eq!(f.min_raw(), -128);
        assert_eq!(f.max_raw(), 127);
        assert_eq!(f.cardinality(), 256);
    }

    #[test]
    fn delta_matches_frac_bits() {
        let f = QFormat::new(20, 10).unwrap();
        assert_eq!(f.delta(), 1.0 / 1024.0);
        let pure_int = QFormat::new(16, 0).unwrap();
        assert_eq!(pure_int.delta(), 1.0);
    }

    #[test]
    fn value_bounds_scale_by_delta() {
        let f = QFormat::new(4, 2).unwrap();
        // raw in [-8, 7], delta 0.25 -> [-2.0, 1.75]
        assert_eq!(f.min_value(), -2.0);
        assert_eq!(f.max_value(), 1.75);
    }

    #[test]
    fn contains_raw_checks_bounds() {
        let f = QFormat::new(4, 0).unwrap();
        assert!(f.contains_raw(-8));
        assert!(f.contains_raw(7));
        assert!(!f.contains_raw(8));
        assert!(!f.contains_raw(-9));
    }

    #[test]
    fn display_uses_q_notation() {
        let f = QFormat::new(20, 10).unwrap();
        assert_eq!(f.to_string(), "Q9.10");
    }

    #[test]
    fn int_bits_complements_frac_bits() {
        let f = QFormat::new(13, 5).unwrap();
        assert_eq!(f.int_bits(), 8);
    }
}
