//! Runtime Q-format signed fixed-point arithmetic for modelling
//! ultra-low-power (ULP) hardware datapaths.
//!
//! Ultra-low-power processors and sensor controllers use fixed-point
//! arithmetic — not floating point — for cost, area, energy, and latency
//! reasons. This crate is the numeric substrate of the DP-Box reproduction:
//! every value that flows through the simulated hardware (uniform random
//! words, CORDIC logarithms, Laplace noise samples, sensor readings) is an
//! [`Fx`] carrying its [`QFormat`] at runtime, so experiments can sweep word
//! widths the way the paper sweeps `Bu` and `By`.
//!
//! # Quickstart
//!
//! ```
//! use ulp_fixed::{Fx, QFormat, Rounding};
//!
//! // The paper's DP-Box uses a 20-bit fixed-point datapath.
//! let fmt = QFormat::new(20, 10)?;
//! let reading = Fx::from_f64(131.5, fmt, Rounding::NearestTiesAway)?;
//! let noise = Fx::from_f64(-12.25, fmt, Rounding::NearestTiesAway)?;
//! let noised = reading.checked_add(noise)?;
//! assert!((noised.to_f64() - 119.25).abs() < fmt.delta());
//! # Ok::<(), ulp_fixed::FixedError>(())
//! ```
//!
//! # Design notes
//!
//! * Formats are runtime data ([`QFormat`]), not type parameters: the
//!   simulators sweep widths as experiment parameters.
//! * Binary operations on mismatched formats are errors, not coercions —
//!   hardware wires have one width; silent widening would hide modelling
//!   bugs.
//! * Checked, saturating, and wrapping arithmetic are all provided; they
//!   model guarded, clamping, and unguarded adders respectively.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod fmt_impls;
mod format;
mod parse;
mod round;
mod value;

pub use error::FixedError;
pub use format::QFormat;
pub use round::Rounding;
pub use value::Fx;
