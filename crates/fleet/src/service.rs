//! The streaming aggregation service: bounded ingest queues with typed
//! backpressure, epoch-window sealing under a watermark policy, live
//! snapshot queries, and multi-epoch rollups.
//!
//! [`FleetService`] wraps a [`Collector`] with the machinery a
//! long-running deployment needs and the batch driver does not:
//!
//! * **Bounded per-lane ingest queues.** Producers (device uplinks, one
//!   lane per simulation chunk in the driver) stage wire bytes with
//!   [`FleetService::offer`]. A lane whose queue is at capacity gets a
//!   typed [`Busy`] rejection *before* anything is admitted — the whole
//!   batch is refused and the sender retries, so an **admitted** report is
//!   never silently dropped. Capacity is a soft bound: a drained (empty)
//!   lane accepts any single batch, so a retry after a drain always
//!   succeeds and the queue depth is bounded by `queue_frames` plus one
//!   batch.
//! * **Window lifecycle under a watermark.** The epoch axis is split into
//!   fixed-width windows ([`crate::window`]). A window stays open for
//!   `watermark_lag` delivery rounds past its last epoch — delayed frames
//!   arriving within the grace land normally — then seals: queues are
//!   drained, the window's accumulators are folded out of the collector,
//!   coverage is graded, and the collector's watermark floor advances.
//!   Frames for a sealed window that arrive later surface as the typed,
//!   counted `late` outcome ([`crate::collector::IngestStats::late`]) —
//!   never as silent absorption into the wrong window.
//! * **Sender state outlives windows.** Dedup windows, strike counts, and
//!   quarantine latches live in the collector's shard state and are
//!   deliberately *not* reset at a seal: a device quarantined in epoch `k`
//!   stays quarantined in epoch `k+1`, and replays older than the
//!   128-epoch dedup horizon stay `Stale` across window boundaries.
//! * **Live snapshot queries.** [`FleetService::snapshot`] serves debiased
//!   [`Estimate`]s from every *sealed* window while the next window is
//!   still accumulating — reads never touch in-flight accumulators.
//! * **Rollups.** Every sealed window joins an order-canonicalized
//!   [`Rollup`]; [`FleetService::rollup`] folds them with the ledger audit
//!   preserved bitwise across the merge.
//!
//! Everything the service does is a pure function of the byte streams
//! offered to it and the round clock — no wall time, no thread schedule —
//! so a simulated-clock run is byte-identical at any thread count.

use ldp_core::{BudgetLedger, CompositionLedger, LdpError};
use ulp_obs::{parse_env, EnvError, Gauge, Histogram};

use crate::collector::{Collector, EpochSeal, IngestStats, QueryConfig};
use crate::estimator::{Estimate, NoiseModel};
use crate::window::{query_roles, window_spans, Rollup, SealedWindow, Window, WindowStateError};
use crate::wire::FRAME_LEN;

/// Frames currently staged across all ingest lanes.
static QUEUE_DEPTH: Gauge = Gauge::new("fleet.service.queue_depth");
/// Windows opened but not yet sealed (1 in steady state).
static OPEN_WINDOWS: Gauge = Gauge::new("fleet.service.open_windows");
/// Batches refused with [`Busy`] — recorded at every metrics level:
/// backpressure is load-shedding the operator must see.
static BACKPRESSURE: ulp_obs::Counter = ulp_obs::Counter::new("fleet.service.busy_rejections");
/// Frames drained per [`FleetService::drain`] call.
static DRAIN_FRAMES: Histogram = Histogram::new("fleet.service.drain_frames", "frames");
/// Wall-clock of each window seal (drain + fold + grade).
static SEAL_NS: Histogram = Histogram::new("fleet.service.seal_ns", "ns");

/// Environment variable overriding the service window width (epochs).
pub const SERVICE_WINDOW_ENV: &str = "ULP_SERVICE_WINDOW_EPOCHS";
/// Environment variable overriding the per-lane queue capacity (frames).
pub const SERVICE_QUEUE_ENV: &str = "ULP_SERVICE_QUEUE_FRAMES";

/// Streaming-service parameters.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Epochs per window (≥ 1).
    pub window_epochs: u32,
    /// Per-lane ingest queue capacity, in frames (≥ 1). A soft bound:
    /// an empty lane admits any single batch.
    pub queue_frames: usize,
    /// Delivery rounds past a window's last epoch before it seals —
    /// the watermark grace for delayed frames.
    pub watermark_lag: u32,
    /// Per-window coverage threshold below which a seal is graded
    /// [`crate::collector::SealStatus::Degraded`].
    pub quorum: f64,
}

impl ServiceConfig {
    /// A service sealing every `window_epochs` epochs with the given
    /// per-lane queue capacity, no watermark grace, and a 0.9 quorum.
    ///
    /// # Panics
    ///
    /// Panics if `window_epochs` or `queue_frames` is zero.
    pub fn new(window_epochs: u32, queue_frames: usize) -> ServiceConfig {
        assert!(window_epochs > 0, "window must cover at least one epoch");
        assert!(queue_frames > 0, "queue capacity must be positive");
        ServiceConfig {
            window_epochs,
            queue_frames,
            watermark_lag: 0,
            quorum: 0.9,
        }
    }

    /// Sets the watermark grace (rounds past a window's end before seal).
    pub fn with_watermark_lag(mut self, lag: u32) -> ServiceConfig {
        self.watermark_lag = lag;
        self
    }

    /// Sets the per-window seal quorum.
    ///
    /// # Panics
    ///
    /// Panics unless `quorum` is finite and in `[0, 1]`.
    pub fn with_quorum(mut self, quorum: f64) -> ServiceConfig {
        assert!(
            quorum.is_finite() && (0.0..=1.0).contains(&quorum),
            "quorum must be in [0, 1], got {quorum}"
        );
        self.quorum = quorum;
        self
    }

    /// Applies the strict `ULP_SERVICE_*` environment overrides to this
    /// configuration: [`SERVICE_WINDOW_ENV`] (a positive integer of
    /// epochs) and [`SERVICE_QUEUE_ENV`] (a positive integer of frames).
    ///
    /// # Errors
    ///
    /// [`EnvError`] on a set-but-malformed value (including `0`) — never
    /// a silent fallback to the built-in default.
    pub fn with_env_overrides(mut self) -> Result<ServiceConfig, EnvError> {
        if let Some(w) = parse_env(SERVICE_WINDOW_ENV, "positive integer of epochs", |s| {
            s.parse::<u32>().ok().filter(|&w| w > 0)
        })? {
            self.window_epochs = w;
        }
        if let Some(q) = parse_env(SERVICE_QUEUE_ENV, "positive integer of frames", |s| {
            s.parse::<usize>().ok().filter(|&q| q > 0)
        })? {
            self.queue_frames = q;
        }
        Ok(self)
    }
}

/// Typed backpressure: the lane's queue is full, nothing from the offered
/// batch was admitted, and the sender should retry after the service has
/// drained — in the simulated clock, `retry_after` rounds from now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Busy {
    /// Rounds until a retry can expect admission (after the next drain).
    pub retry_after: u32,
}

impl core::fmt::Display for Busy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "ingest queue full, retry after {} round(s)",
            self.retry_after
        )
    }
}

impl std::error::Error for Busy {}

/// Debiased estimates served from one sealed window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowEstimates {
    /// Window index.
    pub index: u32,
    /// Population-mean estimate (codes), if the window saw ≥ 2 values.
    pub mean: Option<Estimate>,
    /// Population-variance estimate (codes²).
    pub variance: Option<Estimate>,
    /// Report-distribution median (codes).
    pub median: Option<Estimate>,
    /// Debiased above-threshold fraction from the window's RR bits.
    pub rr_frequency: Option<Estimate>,
}

/// A live snapshot: per-window estimates from every sealed window, taken
/// while later windows may still be accumulating.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSnapshot {
    /// Windows sealed at snapshot time.
    pub windows_sealed: usize,
    /// Estimates per sealed window, ascending index.
    pub windows: Vec<WindowEstimates>,
}

/// The streaming aggregation service. See the module docs for the model.
#[derive(Debug)]
pub struct FleetService {
    collector: Collector,
    cfg: ServiceConfig,
    queries: Vec<QueryConfig>,
    /// Lifecycle records, indexed by window index.
    windows: Vec<Window>,
    /// Index of the window currently accepting reports.
    active: usize,
    /// Per-lane staged wire bytes.
    lanes: Vec<Vec<u8>>,
    /// Per-lane staged frame counts.
    lane_frames: Vec<usize>,
    /// Cumulative ingest stats over the service lifetime.
    stats: IngestStats,
    /// `stats` snapshot at the last seal (per-window deltas subtract it).
    window_base: IngestStats,
    sealed: Vec<SealedWindow>,
    rollup: Rollup,
    backpressure_rejections: u64,
    /// Highest staged frame count any single drain saw.
    max_drain_frames: usize,
    /// Nanoseconds each seal took (drain + fold + grade), per window.
    seal_ns: Vec<u64>,
}

impl FleetService {
    /// Wraps a *fresh* collector (nothing ingested yet) with `lanes`
    /// producer queues, splitting `[0, epochs)` into
    /// `cfg.window_epochs`-wide windows. Window 0 opens immediately.
    ///
    /// # Panics
    ///
    /// Panics if the collector has already ingested frames, if `lanes` is
    /// zero, or if `epochs` is zero.
    pub fn new(collector: Collector, cfg: ServiceConfig, lanes: usize, epochs: u32) -> Self {
        assert!(
            collector.reports_ingested() == 0 && collector.frames_rejected() == 0,
            "service needs a fresh collector"
        );
        assert!(lanes > 0, "need at least one ingest lane");
        let spans = window_spans(epochs, cfg.window_epochs);
        let windows: Vec<Window> = spans
            .iter()
            .enumerate()
            .map(|(i, &(lo, hi))| Window::open(i as u32, lo, hi))
            .collect();
        OPEN_WINDOWS.set(1);
        let queries = collector.queries().to_vec();
        FleetService {
            collector,
            cfg,
            queries,
            windows,
            active: 0,
            lanes: vec![Vec::new(); lanes],
            lane_frames: vec![0; lanes],
            stats: IngestStats::default(),
            window_base: IngestStats::default(),
            sealed: Vec::new(),
            rollup: Rollup::new(),
            backpressure_rejections: 0,
            max_drain_frames: 0,
            seal_ns: Vec::new(),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The window currently accepting reports, if any remain.
    pub fn active_window(&self) -> Option<&Window> {
        self.windows.get(self.active)
    }

    /// Every window's lifecycle record, by index.
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// Every sealed window so far, ascending index.
    pub fn sealed_windows(&self) -> &[SealedWindow] {
        &self.sealed
    }

    /// Cumulative ingest stats over the service lifetime.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Batches refused with [`Busy`] so far.
    pub fn backpressure_rejections(&self) -> u64 {
        self.backpressure_rejections
    }

    /// Highest staged frame count any single [`FleetService::drain`] saw.
    pub fn max_drain_frames(&self) -> usize {
        self.max_drain_frames
    }

    /// Nanoseconds each seal took so far (drain + fold + grade), one
    /// entry per sealed window. Wall-clock observability only — never
    /// part of any digest.
    pub fn seal_ns(&self) -> &[u64] {
        &self.seal_ns
    }

    /// The wrapped collector (quarantine listings, window floor, …).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Stages `bytes` (concatenated wire frames) on `lane`, or refuses
    /// the whole batch with a typed [`Busy`] if the lane is at capacity.
    /// Admission is all-or-nothing: once `offer` returns `Ok`, the batch
    /// WILL be folded by a later [`FleetService::drain`] — backpressure
    /// happens only at this boundary, never after admission.
    ///
    /// # Errors
    ///
    /// [`Busy`] when the lane already holds `queue_frames` or more staged
    /// frames. An empty lane always admits (so retry-after-drain always
    /// makes progress).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range lane.
    pub fn offer(&mut self, lane: usize, bytes: &[u8]) -> Result<(), Busy> {
        assert!(lane < self.lanes.len(), "lane {lane} out of range");
        if bytes.is_empty() {
            return Ok(());
        }
        let frames = bytes.len().div_ceil(FRAME_LEN);
        if self.lane_frames[lane] > 0 && self.lane_frames[lane] + frames > self.cfg.queue_frames {
            self.backpressure_rejections += 1;
            BACKPRESSURE.record_always(1);
            return Err(Busy { retry_after: 1 });
        }
        self.lanes[lane].extend_from_slice(bytes);
        self.lane_frames[lane] += frames;
        QUEUE_DEPTH.add(frames as i64);
        Ok(())
    }

    /// Drains every lane (in lane order) through the collector as one
    /// concatenated batch and routes the fold into the active window.
    /// Returns the batch's ingest stats (all-zero when nothing staged).
    pub fn drain(&mut self) -> IngestStats {
        let staged: usize = self.lane_frames.iter().sum();
        if staged == 0 {
            return IngestStats::default();
        }
        self.max_drain_frames = self.max_drain_frames.max(staged);
        DRAIN_FRAMES.record(staged as u64);
        let mut batch = Vec::with_capacity(self.lanes.iter().map(Vec::len).sum());
        for lane in &mut self.lanes {
            batch.extend_from_slice(lane);
            lane.clear();
        }
        self.lane_frames.iter_mut().for_each(|n| *n = 0);
        QUEUE_DEPTH.set(0);
        let delta = self.collector.ingest_frames(&batch);
        self.stats.absorb(delta);
        if delta.accepted > 0 {
            if let Some(w) = self.windows.get_mut(self.active) {
                // Cannot fail: the active window is Open or Accumulating
                // by construction (seals advance `active` atomically).
                w.mark_accumulating().expect("active window accepts");
            }
        }
        delta
    }

    /// Whether the active window's watermark has passed after
    /// `completed_rounds` delivery rounds: the window seals once the
    /// clock reaches its last epoch plus the configured grace.
    pub fn seal_due(&self, completed_rounds: u32) -> bool {
        match self.windows.get(self.active) {
            Some(w) => completed_rounds >= w.epoch_hi() + self.cfg.watermark_lag,
            None => false,
        }
    }

    /// Seals the active window: drains the queues, folds its accumulators
    /// out of the collector, attaches its privacy ledger (audited bitwise
    /// against an accountant over `charges`), grades coverage against
    /// `expected`, advances the collector's watermark floor (so later
    /// frames for this window surface as `late`), absorbs the window into
    /// the rollup, and opens the next window.
    ///
    /// `ledger` and `charges` are the window's share of the fleet privacy
    /// ledger in canonical order — the driver splits device spends by
    /// epoch window.
    ///
    /// # Errors
    ///
    /// [`WindowStateError`] if no window remains to seal.
    pub fn seal_active(
        &mut self,
        ledger: BudgetLedger,
        charges: Vec<f64>,
        expected: u64,
    ) -> Result<&SealedWindow, WindowStateError> {
        let t0 = std::time::Instant::now();
        if self.active >= self.windows.len() {
            return Err(WindowStateError {
                window: self.windows.len() as u32,
                from: "Compacted",
                to: "Sealing",
            });
        }
        // Flush staged bytes so nothing admitted for this window is lost
        // (drain before the phase transition: it may mark Accumulating).
        self.drain();
        let window = &mut self.windows[self.active];
        window.begin_seal()?;
        let totals = self.collector.take_window_totals();
        let mut delta = self.stats;
        let base = self.window_base;
        delta.accepted -= base.accepted;
        delta.rejected -= base.rejected;
        delta.duplicates -= base.duplicates;
        delta.stale -= base.stale;
        delta.late -= base.late;
        delta.corrupt_frames -= base.corrupt_frames;
        delta.resyncs -= base.resyncs;
        delta.quarantine_dropped -= base.quarantine_dropped;
        delta.quarantine_latched -= base.quarantine_latched;
        self.window_base = self.stats;
        let seal = EpochSeal::evaluate(expected, delta.accepted, self.cfg.quorum);
        let mut accountant = CompositionLedger::new();
        for &c in &charges {
            accountant.record(c);
        }
        let audit_ok = ledger.audit(&accountant).is_ok();
        window.seal(seal.status)?;
        let sealed = SealedWindow {
            index: window.index(),
            epoch_lo: window.epoch_lo(),
            epoch_hi: window.epoch_hi(),
            totals,
            ledger,
            charges,
            seal,
            stats: delta,
            audit_ok,
        };
        self.collector.advance_window_floor(sealed.epoch_hi);
        self.rollup
            .absorb(sealed.clone())
            .expect("window indices are unique");
        window.compact().expect("freshly sealed window compacts");
        self.sealed.push(sealed);
        self.active += 1;
        OPEN_WINDOWS.set(i64::from(self.active < self.windows.len()));
        let ns = t0.elapsed().as_nanos() as u64;
        SEAL_NS.record(ns);
        self.seal_ns.push(ns);
        Ok(self.sealed.last().expect("just pushed"))
    }

    /// Serves a live snapshot: debiased estimates from every *sealed*
    /// window, never touching the still-accumulating collector state.
    ///
    /// # Errors
    ///
    /// Propagates RR-mechanism construction failure from the model.
    pub fn snapshot(&self, model: &NoiseModel) -> Result<ServiceSnapshot, LdpError> {
        let (numeric, rr) = query_roles(&self.queries);
        let mut windows = Vec::with_capacity(self.sealed.len());
        for w in &self.sealed {
            let values = numeric.map(|q| &w.totals[q]);
            let bits = rr.map(|q| &w.totals[q]);
            windows.push(WindowEstimates {
                index: w.index,
                mean: values.and_then(|t| model.mean(t)),
                variance: values.and_then(|t| model.variance(t)),
                median: values.and_then(|t| model.median(t)),
                rr_frequency: match bits {
                    Some(t) => model.rr_frequency(t)?,
                    None => None,
                },
            });
        }
        Ok(ServiceSnapshot {
            windows_sealed: self.sealed.len(),
            windows,
        })
    }

    /// The order-canonicalized rollup over every sealed window so far.
    pub fn rollup(&self) -> &Rollup {
        &self.rollup
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{QueryKind, SealStatus};
    use crate::window::WindowPhase;
    use crate::wire::{Payload, Report};

    const NUMERIC: QueryConfig = QueryConfig {
        id: 0,
        kind: QueryKind::Numeric {
            sketch_min_k: -64,
            sketch_max_k: 64,
        },
    };
    const RR: QueryConfig = QueryConfig {
        id: 1,
        kind: QueryKind::RrBit,
    };

    fn frames(reports: &[Report]) -> Vec<u8> {
        let mut out = Vec::new();
        for r in reports {
            r.encode_into(&mut out);
        }
        out
    }

    fn value_at(device: u32, epoch: u32, v: i32) -> Report {
        Report {
            device,
            query: 0,
            epoch,
            payload: Payload::Value(v),
        }
    }

    fn service(queue_frames: usize, epochs: u32) -> FleetService {
        FleetService::new(
            Collector::new(2, &[NUMERIC, RR]),
            ServiceConfig::new(2, queue_frames),
            2,
            epochs,
        )
    }

    #[test]
    fn offer_is_all_or_nothing_under_backpressure() {
        let mut s = service(4, 8);
        let batch_a = frames(&[value_at(1, 0, 3), value_at(2, 0, 4), value_at(3, 0, 5)]);
        let batch_b = frames(&[value_at(4, 0, 3), value_at(5, 0, 4), value_at(6, 0, 5)]);
        s.offer(0, &batch_a).unwrap();
        // A second batch would exceed the 4-frame lane cap: typed refusal,
        // nothing admitted.
        let err = s.offer(0, &batch_b).unwrap_err();
        assert_eq!(err, Busy { retry_after: 1 });
        assert_eq!(s.backpressure_rejections(), 1);
        // The other lane is empty and admits.
        s.offer(1, &batch_b).unwrap();
        // After a drain the refused batch's retry makes progress, and a
        // redelivery of already-folded reports dedups instead of
        // double-counting.
        let drained = s.drain();
        assert_eq!(drained.accepted, 6);
        s.offer(0, &batch_b).unwrap();
        let drained = s.drain();
        assert_eq!((drained.accepted, drained.duplicates), (0, 3));
        assert_eq!(s.stats().accepted, 6);
    }

    #[test]
    fn empty_lane_admits_oversized_batches() {
        let mut s = service(1, 8);
        let batch = frames(&[value_at(1, 0, 1), value_at(2, 0, 2)]);
        // Two frames exceed the 1-frame cap, but the lane is empty: the
        // soft bound admits so progress is always possible.
        s.offer(0, &batch).unwrap();
        assert_eq!(s.offer(0, &batch), Err(Busy { retry_after: 1 }));
    }

    #[test]
    fn windows_seal_and_late_frames_are_typed() {
        let mut s = service(1024, 4); // windows [0,2) and [2,4)
        s.offer(0, &frames(&[value_at(1, 0, 3), value_at(1, 1, 4)]))
            .unwrap();
        assert!(!s.seal_due(1), "window 0 covers epochs 0..2");
        assert!(s.seal_due(2));
        let sealed = s.seal_active(BudgetLedger::new(), Vec::new(), 2).unwrap();
        assert_eq!(sealed.index, 0);
        assert_eq!(sealed.stats.accepted, 2);
        assert!(sealed.seal.is_full());
        assert_eq!(s.windows()[0].phase(), WindowPhase::Compacted);
        // A frame for sealed window 0 arriving now is a late arrival —
        // typed and counted, never folded.
        s.offer(0, &frames(&[value_at(1, 1, 9), value_at(2, 2, 5)]))
            .unwrap();
        let delta = s.drain();
        assert_eq!((delta.accepted, delta.late, delta.rejected), (1, 1, 1));
        let sealed = s.seal_active(BudgetLedger::new(), Vec::new(), 2).unwrap();
        assert_eq!(sealed.index, 1);
        assert_eq!(sealed.stats.late, 1);
        assert_eq!(sealed.stats.accepted, 1);
        let SealStatus::Degraded { coverage } = sealed.seal.status else {
            panic!("1 of 2 expected must degrade");
        };
        assert_eq!(coverage, 0.5);
        // No window remains: sealing again is a typed lifecycle error.
        assert!(s.seal_active(BudgetLedger::new(), Vec::new(), 0).is_err());
    }

    #[test]
    fn quarantine_latches_survive_window_boundaries() {
        let mut s = service(1024, 4);
        let unknown_query = |epoch: u32| Report {
            device: 7,
            query: 9,
            epoch,
            payload: Payload::Value(1),
        };
        // Three attributable violations in window 0 latch device 7.
        s.offer(
            0,
            &frames(&[unknown_query(0), unknown_query(0), unknown_query(1)]),
        )
        .unwrap();
        let delta = s.drain();
        assert_eq!(delta.quarantine_latched, 1);
        s.seal_active(BudgetLedger::new(), Vec::new(), 0).unwrap();
        // In the NEXT window its valid reports are still dropped: the
        // latch crossed the boundary.
        s.offer(0, &frames(&[value_at(7, 2, 3), value_at(8, 2, 4)]))
            .unwrap();
        let delta = s.drain();
        assert_eq!(delta.quarantine_dropped, 1);
        assert_eq!(delta.accepted, 1);
        assert_eq!(s.collector().quarantined_devices(), vec![7]);
    }

    #[test]
    fn dedup_state_survives_window_boundaries() {
        let mut s = service(1024, 4);
        s.offer(0, &frames(&[value_at(3, 1, 5)])).unwrap();
        s.drain();
        s.seal_active(BudgetLedger::new(), Vec::new(), 1).unwrap();
        // Replaying window 0's report inside window 1 with a window-1
        // epoch duplicate would be late; replaying the same epoch is
        // late too (floor passed). A *fresh* window-1 epoch for the same
        // device is deduped against its own stream state only.
        s.offer(0, &frames(&[value_at(3, 2, 6), value_at(3, 2, 6)]))
            .unwrap();
        let delta = s.drain();
        assert_eq!((delta.accepted, delta.duplicates), (1, 1));
    }

    #[test]
    fn snapshot_serves_sealed_windows_only() {
        let mut s = service(1024, 4);
        let model = NoiseModel::for_device(17, 20, 1, 0, 256, &[1.5, 2.0, 2.5, 3.0]).unwrap();
        let mut reports = Vec::new();
        for d in 0..40u32 {
            for e in 0..2u32 {
                reports.push(value_at(d, e, (d % 16) as i32));
                reports.push(Report {
                    device: d,
                    query: 1,
                    epoch: e,
                    payload: Payload::RrBit(d % 3 == 0),
                });
            }
        }
        s.offer(0, &frames(&reports)).unwrap();
        s.drain();
        // Nothing sealed yet: the snapshot is empty even though the
        // collector holds 160 reports.
        let snap = s.snapshot(&model).unwrap();
        assert_eq!(snap.windows_sealed, 0);
        s.seal_active(BudgetLedger::new(), Vec::new(), 160).unwrap();
        let snap = s.snapshot(&model).unwrap();
        assert_eq!(snap.windows_sealed, 1);
        let w = &snap.windows[0];
        assert_eq!(w.index, 0);
        let mean = w.mean.as_ref().expect("80 values give a mean");
        assert!(mean.value.is_finite() && mean.stderr > 0.0);
        assert!(w.rr_frequency.is_some());
    }

    #[test]
    fn env_overrides_parse_strictly() {
        // `parse_env` reads the real environment; exercise the underlying
        // validators through a scrubbed config instead of mutating env.
        let cfg = ServiceConfig::new(2, 64)
            .with_watermark_lag(3)
            .with_quorum(0.8);
        assert_eq!(cfg.window_epochs, 2);
        assert_eq!(cfg.queue_frames, 64);
        assert_eq!(cfg.watermark_lag, 3);
        assert_eq!(cfg.quorum, 0.8);
    }
}
