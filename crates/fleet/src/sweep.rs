//! The fleet accuracy sweep: estimates vs ground truth across populations.
//!
//! Runs the full simulated fleet at increasing population sizes and lines
//! each debiased estimate up against the included-population ground truth,
//! together with its *gate*: the mean, frequency, and count estimators
//! carry analytic standard errors and deterministic bias envelopes, so
//! `|estimate − truth| ≤ 3·SE + bias_bound` is a checkable soundness claim,
//! not a vibe. Variance and median are reported for inspection but not
//! gated (their envelopes are loose / not claimed — see
//! [`NoiseModel`](crate::NoiseModel)).

use ldp_eval::TextTable;

use crate::driver::{FleetConfig, FleetDriver, FleetError};
use crate::estimator::Estimate;

/// One estimator's showing in a sweep row.
#[derive(Debug, Clone, Copy)]
pub struct GateResult {
    /// The estimate (value, SE, bias envelope).
    pub estimate: Estimate,
    /// The matching ground truth.
    pub truth: f64,
    /// `|estimate − truth|`.
    pub abs_err: f64,
    /// Whether the error is within `3·SE + bias_bound`.
    pub within_gate: bool,
}

impl GateResult {
    /// Lines an estimate up against its ground truth and evaluates the
    /// `3·SE + bias_bound` gate.
    pub fn new(estimate: Estimate, truth: f64) -> Self {
        let abs_err = (estimate.value - truth).abs();
        GateResult {
            estimate,
            truth,
            abs_err,
            within_gate: abs_err <= 3.0 * estimate.stderr + estimate.bias_bound,
        }
    }
}

/// One population size's fleet-vs-truth comparison.
#[derive(Debug, Clone)]
pub struct FleetSweepRow {
    /// Population simulated.
    pub devices: usize,
    /// Devices the power-on self-test excluded.
    pub excluded: usize,
    /// Reports the collector accepted.
    pub reports: u64,
    /// Mean estimator vs truth (gated).
    pub mean: GateResult,
    /// RR frequency estimator vs truth (gated).
    pub frequency: GateResult,
    /// RR count estimator vs truth (gated).
    pub count: GateResult,
    /// Variance estimate and truth (reported, not gated).
    pub variance: Option<(Estimate, f64)>,
    /// Median estimate and truth (reported, not gated).
    pub median: Option<(Estimate, f64)>,
    /// Whether the fleet ledger audited clean.
    pub audit_ok: bool,
}

impl FleetSweepRow {
    /// Whether every gated estimator landed within its bound and the
    /// ledger audit passed.
    pub fn all_gates_pass(&self) -> bool {
        self.mean.within_gate
            && self.frequency.within_gate
            && self.count.within_gate
            && self.audit_ok
    }
}

/// Runs the fleet at each population in `populations` (sharing every other
/// configuration field of `base`) and compares estimates to ground truth.
///
/// # Errors
///
/// [`FleetError`] from driver construction or a run; a fleet whose
/// estimators return no estimate (e.g. the entire population excluded)
/// surfaces as [`FleetError::Config`].
pub fn fleet_sweep(
    base: &FleetConfig,
    populations: &[usize],
) -> Result<Vec<FleetSweepRow>, FleetError> {
    let mut rows = Vec::with_capacity(populations.len());
    for &devices in populations {
        let cfg = FleetConfig {
            devices,
            ..base.clone()
        };
        let out = FleetDriver::new(cfg)?.run()?;
        let (mean, freq, cnt) = match (out.mean, out.rr_frequency, out.rr_count) {
            (Some(m), Some(f), Some(c)) => (m, f, c),
            _ => {
                return Err(FleetError::Config(
                    "population too small or fully excluded: no estimates",
                ))
            }
        };
        rows.push(FleetSweepRow {
            devices,
            excluded: out.devices_excluded,
            reports: out.ingest.accepted,
            mean: GateResult::new(mean, out.truth_mean),
            frequency: GateResult::new(freq, out.truth_fraction),
            count: GateResult::new(cnt, out.truth_fraction * cnt.n as f64),
            variance: out.variance.map(|v| (v, out.truth_variance)),
            median: out.median.map(|m| (m, out.truth_median)),
            audit_ok: out.audit_ok,
        });
    }
    Ok(rows)
}

/// Renders sweep rows as a text table (the `bench_fleet` report body).
pub fn render_sweep(rows: &[FleetSweepRow]) -> TextTable {
    let mut table = TextTable::new(vec![
        "devices",
        "excluded",
        "reports",
        "stat",
        "estimate",
        "truth",
        "|err|",
        "3*SE+bias",
        "gate",
    ]);
    for row in rows {
        let mut stat = |name: &str, g: &GateResult, gated: bool| {
            table.row(vec![
                row.devices.to_string(),
                row.excluded.to_string(),
                row.reports.to_string(),
                name.to_string(),
                format!("{:.4}", g.estimate.value),
                format!("{:.4}", g.truth),
                format!("{:.4}", g.abs_err),
                format!("{:.4}", 3.0 * g.estimate.stderr + g.estimate.bias_bound),
                if !gated {
                    "-".to_string()
                } else if g.within_gate {
                    "pass".to_string()
                } else {
                    "FAIL".to_string()
                },
            ]);
        };
        stat("mean", &row.mean, true);
        stat("frequency", &row.frequency, true);
        stat("count", &row.count, true);
        if let Some((est, truth)) = row.variance {
            stat("variance", &GateResult::new(est, truth), false);
        }
        if let Some((est, truth)) = row.median {
            stat("median", &GateResult::new(est, truth), false);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_gates_pass_at_modest_populations() {
        let base = FleetConfig {
            chunk: 256,
            ..FleetConfig::paper_default(0, 2, 424)
        };
        let rows = fleet_sweep(&base, &[500, 2000]).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(
                row.all_gates_pass(),
                "gates failed at n = {}: mean err {:.3} (bound {:.3}), freq err {:.4} (bound {:.4})",
                row.devices,
                row.mean.abs_err,
                3.0 * row.mean.estimate.stderr + row.mean.estimate.bias_bound,
                row.frequency.abs_err,
                3.0 * row.frequency.estimate.stderr + row.frequency.estimate.bias_bound,
            );
        }
        // SE shrinks with population.
        assert!(rows[1].mean.estimate.stderr < rows[0].mean.estimate.stderr);
    }

    #[test]
    fn render_produces_one_block_per_statistic() {
        let base = FleetConfig {
            chunk: 128,
            ..FleetConfig::paper_default(0, 1, 5)
        };
        let rows = fleet_sweep(&base, &[300]).unwrap();
        let table = render_sweep(&rows);
        assert_eq!(table.len(), 5); // mean, frequency, count, variance, median
        let text = table.to_string();
        assert!(text.contains("mean") && text.contains("median"));
    }
}
