//! Debiased population estimators with analytic standard errors.
//!
//! The collector accumulates raw moments of *noised, window-clamped*
//! reports. These estimators invert the DP-Box datapath back to population
//! statistics, using the sampler's **exact** output PMF
//! ([`ulp_rng::FxpNoisePmf`]) rather than the ideal-Laplace approximation:
//!
//! * **mean** — the fixed-point noise is symmetric, so the report mean is
//!   unbiased up to window clamping; the clamp bias is bounded exactly from
//!   the PMF's tail exceedances and reported as an envelope.
//! * **variance** — the report variance is inflated by the noise variance;
//!   the estimator subtracts the *clamped*-noise variance (at λ = 512 codes
//!   the thresholding window removes a non-trivial share of the unclamped
//!   2λ², so subtracting the textbook value would over-correct).
//! * **median** — read exactly off the [`GridSketch`](crate::GridSketch);
//!   this targets the median of the *report* distribution (symmetric noise
//!   preserves the center of symmetric populations but is not debiased in
//!   general, so no bias envelope is claimed).
//! * **RR frequency / count** — the standard randomized-response inversion
//!   with its exact plug-in standard error.
//!
//! Every estimator returns an [`Estimate`] carrying the analytic standard
//! error and, where one is proven, a deterministic bias envelope, so
//! downstream gates can assert `|estimate − truth| ≤ z·SE + bias_bound`.

use ldp_core::{
    segment_table_cached, LdpError, LimitMode, QuantizedRange, RandomizedResponse, SegmentTable,
};
use ulp_rng::{cached_pmf, FxpLaplaceConfig, FxpNoisePmf};

use crate::collector::QueryTotals;

/// A point estimate with its analytic uncertainty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The estimated statistic, in datapath grid units (codes) unless the
    /// estimator documents otherwise (RR frequency is a proportion).
    pub value: f64,
    /// Analytic standard error of `value`.
    pub stderr: f64,
    /// Number of reports the estimate is built from.
    pub n: u64,
    /// Deterministic bound on the estimator's systematic bias (`0` when
    /// the estimator is exactly unbiased; clamp/quantization envelopes
    /// otherwise). `|value − truth|` is expected within
    /// `z·stderr + bias_bound`.
    pub bias_bound: f64,
}

/// The collector-side mirror of one device's noising datapath: the exact
/// noise PMF, the thresholding window, and precomputed tail sums.
///
/// Built from the same parameters the [`dp_box::DpBox`] device derives its
/// context from, so the estimators' corrections are consistent with the
/// device's own privacy accounting.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    pmf: FxpNoisePmf,
    /// Sampler configuration the PMF and segment table were built from.
    lap_cfg: FxpLaplaceConfig,
    /// PMF of a zero-threshold DP-Box over a one-step binary grid at the
    /// same ε — the mechanism behind the RR threshold bits.
    rr_pmf: FxpNoisePmf,
    table: SegmentTable,
    min_k: i64,
    max_k: i64,
    /// Outermost threshold: reports live in `[min_k − n_th, max_k + n_th]`.
    n_th_k: i64,
    /// Noise scale λ in codes.
    lambda: f64,
    /// Unclamped noise variance `E[K²]`, in codes².
    var_k: f64,
    /// Suffix weight sums over magnitudes: `suffix_w[m] = Σ_{mag ≥ m} w(mag)`
    /// (index 0 unused; signed one-sided weights).
    suffix_w: Vec<u128>,
    /// `suffix_m1[m] = Σ_{mag ≥ m} mag·w(mag)`.
    suffix_m1: Vec<u128>,
    /// `suffix_m2[m] = Σ_{mag ≥ m} mag²·w(mag)`.
    suffix_m2: Vec<u128>,
    /// Worst-case mean clamp bias `max_x |E[clamped noise | x]|`.
    max_clamp_bias: f64,
    /// Quantization slack between the device's shift-after-round datapath
    /// (plus CORDIC log error) and the PMF's round-after-scale model.
    grid_slack: f64,
    /// Clamped-noise variance at the range midpoint (the value subtracted
    /// by [`NoiseModel::variance`]).
    noise_var_mid: f64,
    /// `max_x |var(c|x) − noise_var_mid|` across the sensor range.
    var_envelope: f64,
}

impl NoiseModel {
    /// Builds the noise model for a device configured with URNG width `bu`,
    /// output word width `word_bits`, privacy shift `eps_shift`
    /// (ε = 2^−eps_shift), integer sensor range `[min_k, max_k]` in codes
    /// (`frac_bits = 0`), and thresholding-mode segment `multiples`.
    ///
    /// Mirrors `DpBox::rebuild_ctx_if_needed`: λ = (max_k − min_k)·2^eps_shift,
    /// the sampler PMF uses `bu − 1` magnitude bits (one URNG bit is the
    /// sign), and the window bound is the outermost segment threshold.
    ///
    /// # Errors
    ///
    /// Propagates [`LdpError`] from the range/config validation or the
    /// threshold solver.
    pub fn for_device(
        bu: u8,
        word_bits: u8,
        eps_shift: u8,
        min_k: i64,
        max_k: i64,
        multiples: &[f64],
    ) -> Result<NoiseModel, LdpError> {
        let range = QuantizedRange::new(min_k, max_k, 1.0)?;
        let lambda = (max_k - min_k) as f64 * 2f64.powi(i32::from(eps_shift));
        let lap_cfg = FxpLaplaceConfig::new(bu - 1, word_bits, 1.0, lambda)?;
        let table = segment_table_cached(lap_cfg, range, multiples, LimitMode::Thresholding)?;
        let n_th_k = table.outermost().0;
        let pmf = (*cached_pmf(lap_cfg)).clone();
        // The RR bit is what a zero-threshold DP-Box over a one-step binary
        // grid releases: d = 1 grid unit, so λ_rr = 2^eps_shift.
        let rr_cfg =
            FxpLaplaceConfig::new(bu - 1, word_bits, 1.0, 2f64.powi(i32::from(eps_shift)))?;
        let rr_pmf = (*cached_pmf(rr_cfg)).clone();

        let support = pmf.support_max_k();
        let len = support as usize + 2;
        let (mut suffix_w, mut suffix_m1, mut suffix_m2) =
            (vec![0u128; len], vec![0u128; len], vec![0u128; len]);
        for mag in (1..=support).rev() {
            let m = mag as usize;
            let w = pmf.weight(mag);
            suffix_w[m] = suffix_w[m + 1] + w;
            suffix_m1[m] = suffix_m1[m + 1] + w * mag as u128;
            suffix_m2[m] = suffix_m2[m + 1] + w * (mag * mag) as u128;
        }
        // E[K²] = 2·Σ_{mag≥1} mag²·w(mag) / total (weight(k) is already the
        // signed convention, and suffix sums are one-sided).
        let total = pmf.total_weight() as f64;
        let var_k = 2.0 * suffix_m2[1] as f64 / total;

        // The device rounds the λ/2^eps_shift-scale product *before* the ε
        // shift (`staged_noise_k`), so its grid is 2^eps_shift codes coarse
        // while the PMF models rounding after the full scale: the two
        // disagree by at most 2^(eps_shift−1) + 1/2 codes per draw, plus
        // one code of headroom for the CORDIC log's finite iterations.
        let grid_slack = 2f64.powi(i32::from(eps_shift) - 1) + 1.5;

        let mut model = NoiseModel {
            pmf,
            lap_cfg,
            rr_pmf,
            table,
            min_k,
            max_k,
            n_th_k,
            lambda,
            var_k,
            suffix_w,
            suffix_m1,
            suffix_m2,
            max_clamp_bias: 0.0,
            grid_slack,
            noise_var_mid: 0.0,
            var_envelope: 0.0,
        };
        // Clamp bias/variance envelopes: scan every sensor code (the range
        // is a few hundred codes, and each probe is O(1) off the suffix
        // sums). The bias is monotone in x, but scanning is cheap and makes
        // no monotonicity assumption.
        let mid = (min_k + max_k) / 2;
        model.noise_var_mid = model.clamped_noise_var(mid);
        let (mut max_bias, mut max_var_dev) = (0.0f64, 0.0f64);
        for x in min_k..=max_k {
            max_bias = max_bias.max(model.clamp_bias(x).abs());
            max_var_dev = max_var_dev.max((model.clamped_noise_var(x) - model.noise_var_mid).abs());
        }
        model.max_clamp_bias = max_bias;
        model.var_envelope = max_var_dev;
        Ok(model)
    }

    /// The exact sampler output PMF this model is built on.
    pub fn pmf(&self) -> &FxpNoisePmf {
        &self.pmf
    }

    /// The budget-control segment table (shared with the device context).
    pub fn table(&self) -> &SegmentTable {
        &self.table
    }

    /// The sampler configuration ([`FxpLaplaceConfig`]) the model mirrors,
    /// for building a device-equivalent sampler on the collector side.
    pub fn lap_config(&self) -> FxpLaplaceConfig {
        self.lap_cfg
    }

    /// Outermost threshold `n_th` in codes: reports are clamped to
    /// `[min_k − n_th, max_k + n_th]`.
    pub fn n_th_k(&self) -> i64 {
        self.n_th_k
    }

    /// Lower edge of the report window, `min_k − n_th`.
    pub fn window_lo(&self) -> i64 {
        self.min_k - self.n_th_k
    }

    /// Upper edge of the report window, `max_k + n_th`.
    pub fn window_hi(&self) -> i64 {
        self.max_k + self.n_th_k
    }

    /// Unclamped noise variance `E[K²]` in codes² (reference value; the
    /// variance estimator subtracts the clamped-window variance instead).
    pub fn unclamped_noise_var(&self) -> f64 {
        self.var_k
    }

    /// The randomized-response mechanism for the threshold-bit query: a
    /// zero-threshold DP-Box over a one-step binary grid at this model's ε,
    /// flipping the bit with probability `Pr[noise ≥ 1·Δ]` under
    /// λ_rr = 2^eps_shift (the paper's Section VI-E construction).
    ///
    /// # Errors
    ///
    /// Propagates the [`RandomizedResponse`] validation error (the binary
    /// grid's flip probability stays inside `(0, ½)` for every valid
    /// eps_shift, so this is unreachable in practice).
    pub fn rr(&self) -> Result<RandomizedResponse, LdpError> {
        RandomizedResponse::from_zero_threshold_pmf(&self.rr_pmf)
    }

    /// One-sided exceedance `E[(K − t)⁺] = Σ_{mag > t} (mag − t)·p(mag)`
    /// for an integer offset `t ≥ 0`.
    fn exceedance(&self, t: i64) -> f64 {
        debug_assert!(t >= 0);
        let m = (t + 1) as usize;
        if m >= self.suffix_w.len() {
            return 0.0;
        }
        (self.suffix_m1[m] as f64 - t as f64 * self.suffix_w[m] as f64)
            / self.pmf.total_weight() as f64
    }

    /// One-sided second-moment deficit
    /// `Σ_{mag > t} (mag² − t²)·p(mag)` for an integer offset `t ≥ 0`.
    fn exceedance2(&self, t: i64) -> f64 {
        debug_assert!(t >= 0);
        let m = (t + 1) as usize;
        if m >= self.suffix_w.len() {
            return 0.0;
        }
        (self.suffix_m2[m] as f64 - (t * t) as f64 * self.suffix_w[m] as f64)
            / self.pmf.total_weight() as f64
    }

    /// Mean of the window-clamped noise for a sensor value at code `x`:
    /// `E[clamp(K, lo−x, hi−x)] = exceed(x−lo) − exceed(hi−x)`.
    pub fn clamp_bias(&self, x: i64) -> f64 {
        let (t_lo, t_hi) = (x - self.window_lo(), self.window_hi() - x);
        self.exceedance(t_lo) - self.exceedance(t_hi)
    }

    /// Variance of the window-clamped noise for a sensor value at code `x`.
    pub fn clamped_noise_var(&self, x: i64) -> f64 {
        let (t_lo, t_hi) = (x - self.window_lo(), self.window_hi() - x);
        let second = self.var_k - self.exceedance2(t_lo) - self.exceedance2(t_hi);
        let mean = self.exceedance(t_lo) - self.exceedance(t_hi);
        second - mean * mean
    }

    /// Deterministic bias envelope for the mean estimator: the worst-case
    /// clamp bias over the sensor range plus the datapath grid slack.
    pub fn mean_bias_bound(&self) -> f64 {
        self.max_clamp_bias + self.grid_slack
    }

    /// Population mean estimate (codes): the report mean, which symmetric
    /// noise leaves unbiased up to [`NoiseModel::mean_bias_bound`].
    ///
    /// Returns `None` for fewer than 2 reports (no sample variance).
    pub fn mean(&self, t: &QueryTotals) -> Option<Estimate> {
        if t.count < 2 {
            return None;
        }
        let n = t.count as f64;
        let mean = t.sum as f64 / n;
        // Sample variance of the reports: the mean's SE needs the *noised*
        // spread, which the raw second moment gives directly.
        let s2 = (t.sum2 as f64 - n * mean * mean) / (n - 1.0);
        Some(Estimate {
            value: mean,
            stderr: (s2.max(0.0) / n).sqrt(),
            n: t.count,
            bias_bound: self.mean_bias_bound(),
        })
    }

    /// Population variance estimate (codes²): the report variance minus
    /// the clamped-noise variance at the range midpoint.
    ///
    /// The envelope covers (a) the x-dependence of the clamped-noise
    /// variance across the range, (b) the covariance between the sensor
    /// value and its clamp bias, and (c) the grid slack's second-moment
    /// effect. It is an honest but loose bound — the fleet sweep reports
    /// variance against ground truth without gating on it.
    ///
    /// Returns `None` for fewer than 2 reports.
    pub fn variance(&self, t: &QueryTotals) -> Option<Estimate> {
        if t.count < 2 {
            return None;
        }
        let n = t.count as f64;
        let mean = t.sum as f64 / n;
        let m2 = (t.sum2 as f64 / n - mean * mean).max(0.0);
        let value = m2 * n / (n - 1.0) - self.noise_var_mid;
        // SE of a sample variance: √((m4 − m2²)/n) from the reports' own
        // central fourth moment.
        let m4 = t.sum4 as f64 / n - 4.0 * mean * (t.sum3 as f64 / n)
            + 6.0 * mean * mean * (t.sum2 as f64 / n)
            - 3.0 * mean.powi(4);
        let var_of_s2 = ((m4 - m2 * m2) / n).max(0.0);
        let span = (self.max_k - self.min_k) as f64;
        let bias = self.var_envelope
            + span * self.max_clamp_bias
            + self.max_clamp_bias * self.max_clamp_bias
            + 2.0 * self.pmf.mean_magnitude_k() * self.grid_slack
            + self.grid_slack * self.grid_slack;
        Some(Estimate {
            value,
            stderr: var_of_s2.sqrt(),
            n: t.count,
            bias_bound: bias,
        })
    }

    /// Report-distribution median (codes), read exactly off the sketch.
    ///
    /// `stderr` is the asymptotic order-statistic error `1/(2·f̂·√n)` with
    /// the density `f̂` estimated from the sketch mass within `±w` codes of
    /// the median (`w` scales with the noise spread). Targets the median
    /// of the *noised* distribution — no debiasing envelope is claimed, so
    /// `bias_bound` is 0 and callers must not gate this against the
    /// pre-noise population median.
    pub fn median(&self, t: &QueryTotals) -> Option<Estimate> {
        let sketch = t.sketch.as_ref()?;
        let med = sketch.quantile(0.5)?;
        let w = (self.lambda / 8.0).ceil().max(1.0) as i64;
        let density = sketch.mass_within(med, w) / (2 * w + 1) as f64;
        let n = sketch.total() as f64;
        let stderr = if density > 0.0 {
            1.0 / (2.0 * density * n.sqrt())
        } else {
            f64::INFINITY
        };
        Some(Estimate {
            value: med as f64,
            stderr,
            n: sketch.total(),
            bias_bound: 0.0,
        })
    }

    /// Population-count estimate: scales the debiased RR frequency by the
    /// responding population `n` (the count of devices whose sensor value
    /// met the threshold). Exactly unbiased.
    pub fn rr_count(&self, t: &QueryTotals) -> Result<Option<Estimate>, LdpError> {
        Ok(self.rr_frequency(t)?.map(|e| Estimate {
            value: e.value * e.n as f64,
            stderr: e.stderr * e.n as f64,
            ..e
        }))
    }

    /// Debiased randomized-response frequency: the fraction of devices
    /// whose true bit was 1, inverted through the RR flip probability.
    /// Exactly unbiased (before the `[0, 1]` clamp); `stderr` is the
    /// plug-in binomial standard error.
    ///
    /// # Errors
    ///
    /// Propagates [`NoiseModel::rr`] validation.
    pub fn rr_frequency(&self, t: &QueryTotals) -> Result<Option<Estimate>, LdpError> {
        if t.count == 0 {
            return Ok(None);
        }
        let rr = self.rr()?;
        let observed = t.ones as f64 / t.count as f64;
        let pi = rr.estimate_proportion(observed);
        Ok(Some(Estimate {
            value: pi,
            stderr: rr.estimate_stderr(pi, t.count as usize),
            n: t.count,
            bias_bound: 0.0,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::QueryTotals;

    fn model() -> NoiseModel {
        NoiseModel::for_device(17, 20, 1, 0, 256, &[1.5, 2.0, 2.5, 3.0]).unwrap()
    }

    #[test]
    fn exceedance_matches_direct_pmf_sum() {
        let m = model();
        for t in [0i64, 1, 100, 2000, m.pmf().support_max_k() + 5] {
            let direct: f64 = (1..=m.pmf().support_max_k())
                .filter(|&k| k > t)
                .map(|k| (k - t) as f64 * m.pmf().prob(k))
                .sum();
            assert!(
                (m.exceedance(t) - direct).abs() < 1e-9,
                "exceedance({t}): {} vs {direct}",
                m.exceedance(t)
            );
        }
    }

    #[test]
    fn unclamped_variance_matches_pmf_second_moment() {
        let m = model();
        let direct: f64 = m
            .pmf()
            .iter()
            .map(|(k, w)| (k * k) as f64 * w as f64 / m.pmf().total_weight() as f64)
            .sum();
        assert!((m.unclamped_noise_var() - direct).abs() < 1e-6);
    }

    #[test]
    fn clamped_variance_is_below_unclamped_and_positive() {
        let m = model();
        for x in [0i64, 64, 128, 200, 256] {
            let v = m.clamped_noise_var(x);
            assert!(v > 0.0);
            assert!(v <= m.unclamped_noise_var() + 1e-9);
        }
        // A window many λ wide clamps almost nothing at the midpoint.
        assert!(m.clamped_noise_var(128) / m.unclamped_noise_var() > 0.5);
    }

    #[test]
    fn clamp_bias_is_odd_symmetric_about_the_midpoint() {
        let m = model();
        for d in [0i64, 10, 100, 128] {
            let lo = m.clamp_bias(128 - d);
            let hi = m.clamp_bias(128 + d);
            assert!(
                (lo + hi).abs() < 1e-12,
                "bias({}) = {lo}, bias({}) = {hi}",
                128 - d,
                128 + d
            );
        }
        // Near the bottom edge the negative tail is clamped harder, so
        // the bias pushes up.
        assert!(m.clamp_bias(0) >= 0.0);
        assert!(m.clamp_bias(256) <= 0.0);
    }

    #[test]
    fn mean_estimator_recovers_a_noiseless_stream() {
        let m = model();
        let mut t = QueryTotals::default();
        // 1000 "reports" at exactly code 100 and 1000 at 140 (no noise):
        // mean 120, spread 20.
        for v in [100i64, 140] {
            for _ in 0..1000 {
                t.count += 1;
                t.sum += v as i128;
                t.sum2 += (v * v) as i128;
                t.sum3 += (v * v * v) as i128;
                t.sum4 += (v * v * v * v) as i128;
            }
        }
        let est = m.mean(&t).unwrap();
        assert_eq!(est.n, 2000);
        assert!((est.value - 120.0).abs() < 1e-9);
        // s = 20.005… (Bessel), SE = s/√2000.
        assert!((est.stderr - 20.0 / (2000f64).sqrt()).abs() < 0.01);
        assert!(est.bias_bound > 0.0 && est.bias_bound < 30.0);
    }

    #[test]
    fn rr_frequency_inverts_the_flip_probability() {
        let m = model();
        let rr = m.rr().unwrap();
        let p = rr.flip_prob();
        // Forge tallies at exactly the expected observed rate for π = 0.3.
        let n = 100_000u64;
        let observed = 0.3 * (1.0 - p) + 0.7 * p;
        let t = QueryTotals {
            count: n,
            ones: (observed * n as f64).round() as u64,
            ..QueryTotals::default()
        };
        let est = m.rr_frequency(&t).unwrap().unwrap();
        assert!((est.value - 0.3).abs() < 1e-4);
        assert!(est.stderr > 0.0 && est.stderr < 0.1);
        let count = m.rr_count(&t).unwrap().unwrap();
        assert!((count.value - 0.3 * n as f64).abs() < 20.0);
        assert!((count.stderr - est.stderr * n as f64).abs() < 1e-9);
    }

    #[test]
    fn median_reads_off_the_sketch() {
        let m = model();
        let mut t = QueryTotals::new_numeric(m.window_lo(), m.window_hi());
        for k in 0..1001i64 {
            t.absorb_value(k - 500 + 128);
        }
        let est = m.median(&t).unwrap();
        assert_eq!(est.value, 128.0);
        assert!(est.stderr.is_finite() && est.stderr > 0.0);
    }
}
