//! Seeded, deterministic lossy-transport fault injection.
//!
//! The chaos transport sits between a reporting device and the collector
//! and misbehaves on purpose: it drops, duplicates (by eating acks),
//! reorders, bit-flips, truncates, and delays frames, each fault class at
//! its own configured rate and in **correlated bursts** — real radio links
//! fail in fades, not as i.i.d. coin flips.
//!
//! # Fault model
//!
//! Each `(device, class)` pair owns an independent two-state
//! Gilbert–Elliott chain: in the *good* state faults are off; in the *bad*
//! state the class fires. Transition probabilities are chosen so the
//! stationary bad-state probability equals the configured `rate` and the
//! mean bad-burst length equals `burst`. One transmission attempt steps
//! every chain once; the first firing class in the fixed priority order
//! `drop > corrupt > truncate > delay > ack-loss > reorder` decides the
//! attempt's fate:
//!
//! | class    | delivered?                  | acked? |
//! |----------|-----------------------------|--------|
//! | drop     | no                          | no     |
//! | corrupt  | yes, with bit flips         | no     |
//! | truncate | yes, first `L` bytes only   | no     |
//! | delay    | yes, `1..=3` rounds late    | no¹    |
//! | ack-loss | yes, intact                 | no     |
//! | reorder  | yes, displaced in its round | yes    |
//! | none     | yes, intact                 | yes    |
//!
//! ¹ the sender's retry timer expires before the late ack arrives, so a
//! delayed delivery behaves like an ack loss on the sending side — the
//! retransmission then lands *next to* the delayed original, which is
//! exactly the duplicated-and-reordered input the collector's dedup window
//! must fold away.
//!
//! # Determinism
//!
//! Every chain is seeded by [`ulp_rng::stream_seed`] from
//! `(chaos seed, device id, class index)`, and fault details (flip masks,
//! truncation lengths, delays) come from a per-device detail stream that
//! advances only on that device's own faults. The fault pattern is
//! therefore a pure function of `(chaos seed, device id, attempt index)` —
//! independent of thread count, chunk partition, and every other device —
//! which is what lets a chaos campaign assert byte-identical outcomes
//! across schedules.

use ulp_obs::Counter;
use ulp_rng::{stream_seed, RandomBits, Taus88};

use crate::wire::FRAME_LEN;

/// Frames eaten whole by the transport.
static DROPPED: Counter = Counter::new("fleet.chaos.dropped");
/// Frames delivered with injected bit flips.
static CORRUPTED: Counter = Counter::new("fleet.chaos.corrupted");
/// Frames delivered with their tail cut off.
static TRUNCATED: Counter = Counter::new("fleet.chaos.truncated");
/// Frames delivered one or more rounds late.
static DELAYED: Counter = Counter::new("fleet.chaos.delayed");
/// Intact deliveries whose ack was eaten (forcing a retransmission).
static ACK_LOST: Counter = Counter::new("fleet.chaos.ack_lost");
/// Frames displaced within their delivery round.
static REORDERED: Counter = Counter::new("fleet.chaos.reordered");

/// The longest delivery delay the transport injects, in rounds.
pub const MAX_DELAY_ROUNDS: u32 = 3;

/// One fault class's behavior: stationary fault probability and mean
/// burst length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultClass {
    /// Stationary probability that an attempt hits this fault, in
    /// `[0, 0.5]`.
    pub rate: f64,
    /// Mean length of a fault burst, in attempts (`>= 1`; `1` ≈ i.i.d.).
    pub burst: f64,
}

impl FaultClass {
    /// A disabled class.
    pub const OFF: FaultClass = FaultClass {
        rate: 0.0,
        burst: 1.0,
    };

    /// An uncorrelated (burst length 1) class at `rate`.
    pub fn flat(rate: f64) -> FaultClass {
        FaultClass { rate, burst: 1.0 }
    }

    /// A bursty class: faults arrive in runs averaging `burst` attempts.
    pub fn bursty(rate: f64, burst: f64) -> FaultClass {
        FaultClass { rate, burst }
    }

    fn validate(&self, name: &'static str) -> Result<(), ChaosConfigError> {
        if !(self.rate.is_finite() && (0.0..=0.5).contains(&self.rate)) {
            return Err(ChaosConfigError {
                class: name,
                field: "rate",
                expected: "a finite value in [0, 0.5]",
            });
        }
        if !(self.burst.is_finite() && self.burst >= 1.0) {
            return Err(ChaosConfigError {
                class: name,
                field: "burst",
                expected: "a finite value >= 1",
            });
        }
        Ok(())
    }
}

/// A rejected [`ChaosConfig`] field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfigError {
    /// The fault class at fault.
    pub class: &'static str,
    /// The offending field.
    pub field: &'static str,
    /// What would have been accepted.
    pub expected: &'static str,
}

impl core::fmt::Display for ChaosConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "chaos config: {}.{} must be {}",
            self.class, self.field, self.expected
        )
    }
}

impl std::error::Error for ChaosConfigError {}

/// The transport's full fault profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed every per-device chain and detail stream derives from.
    pub seed: u64,
    /// Frame loss.
    pub drop: FaultClass,
    /// Ack loss (intact delivery, sender retries anyway).
    pub duplicate: FaultClass,
    /// In-round displacement.
    pub reorder: FaultClass,
    /// In-flight bit flips.
    pub corrupt: FaultClass,
    /// In-flight tail truncation.
    pub truncate: FaultClass,
    /// Late delivery (`1..=`[`MAX_DELAY_ROUNDS`] rounds).
    pub delay: FaultClass,
}

impl ChaosConfig {
    /// A transport that never misbehaves (every class off).
    pub fn quiet(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            drop: FaultClass::OFF,
            duplicate: FaultClass::OFF,
            reorder: FaultClass::OFF,
            corrupt: FaultClass::OFF,
            truncate: FaultClass::OFF,
            delay: FaultClass::OFF,
        }
    }

    /// Validates every class.
    ///
    /// # Errors
    ///
    /// [`ChaosConfigError`] naming the first out-of-range field.
    pub fn validate(&self) -> Result<(), ChaosConfigError> {
        self.drop.validate("drop")?;
        self.duplicate.validate("duplicate")?;
        self.reorder.validate("reorder")?;
        self.corrupt.validate("corrupt")?;
        self.truncate.validate("truncate")?;
        self.delay.validate("delay")?;
        Ok(())
    }

    /// Whether every class is off (the transport is a perfect wire).
    pub fn is_quiet(&self) -> bool {
        [
            self.drop,
            self.duplicate,
            self.reorder,
            self.corrupt,
            self.truncate,
            self.delay,
        ]
        .iter()
        .all(|c| c.rate == 0.0)
    }
}

/// Which fault decided an attempt's fate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Frame eaten whole.
    Drop,
    /// Bit flips injected in flight.
    Corrupt,
    /// Tail cut off in flight.
    Truncate,
    /// Delivered late.
    Delay,
    /// Delivered intact, ack eaten.
    AckLoss,
    /// Delivered intact, displaced within its round.
    Reorder,
}

/// What the collector receives from one attempt, if anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The bytes that arrive (possibly corrupted or shorter than
    /// [`FRAME_LEN`]).
    pub bytes: Vec<u8>,
    /// Rounds after the send round the bytes arrive (0 = same round).
    pub delay_rounds: u32,
    /// Whether the frame lands displaced within its arrival round.
    pub displaced: bool,
}

/// Outcome of one transmission attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attempt {
    /// What arrives at the collector (`None` for a dropped frame).
    pub delivery: Option<Delivery>,
    /// Whether the sender sees an ack in time (no ⇒ it will retry).
    pub acked: bool,
    /// The fault that fired, if any.
    pub fault: Option<FaultKind>,
}

/// A two-state Gilbert–Elliott burst chain. `p(good→bad)` and
/// `p(bad→good)` are fixed so the stationary bad probability is `rate`
/// and the mean bad-run length is `burst`.
#[derive(Debug, Clone)]
struct GilbertElliott {
    bad: bool,
    /// `p(good→bad)` as a u32 threshold (fire if `draw < threshold`).
    enter: u32,
    /// `p(bad→good)` as a u32 threshold.
    leave: u32,
    rng: Taus88,
}

fn prob_to_threshold(p: f64) -> u32 {
    // Round-to-nearest keeps tiny rates representable; 2^32 saturates.
    let scaled = (p * 4_294_967_296.0).round();
    if scaled >= 4_294_967_295.0 {
        u32::MAX
    } else {
        scaled as u32
    }
}

impl GilbertElliott {
    fn new(class: FaultClass, seed: u64) -> GilbertElliott {
        // Stationary P(bad) = enter / (enter + leave) = rate with
        // leave = 1/burst and enter = rate / (burst · (1 − rate)).
        // rate ≤ 0.5 and burst ≥ 1 keep enter ≤ 1.
        let leave = 1.0 / class.burst;
        let enter = if class.rate == 0.0 {
            0.0
        } else {
            class.rate / (class.burst * (1.0 - class.rate))
        };
        let mut rng = Taus88::from_seed(seed);
        // Start from the stationary distribution so early attempts see the
        // configured rate, not a warm-up transient.
        let bad = class.rate > 0.0
            && u64::from(rng.next_u32()) < u64::from(prob_to_threshold(class.rate));
        GilbertElliott {
            bad,
            enter: prob_to_threshold(enter),
            leave: prob_to_threshold(leave),
            rng,
        }
    }

    /// Advances one attempt; returns whether the chain is (now) bad.
    fn step(&mut self) -> bool {
        let draw = self.rng.next_u32();
        let threshold = if self.bad { self.leave } else { self.enter };
        if u64::from(draw) < u64::from(threshold) {
            self.bad = !self.bad;
        }
        self.bad
    }
}

// Class indices for stream seeding (7 = the detail stream).
const CLASS_DROP: u64 = 0;
const CLASS_DUPLICATE: u64 = 1;
const CLASS_REORDER: u64 = 2;
const CLASS_CORRUPT: u64 = 3;
const CLASS_TRUNCATE: u64 = 4;
const CLASS_DELAY: u64 = 5;
const CLASS_DETAIL: u64 = 7;

/// The chaos transport as seen by one device: its six burst chains plus
/// the detail stream that draws flip masks, cut lengths, and delays.
#[derive(Debug, Clone)]
pub struct DeviceChaos {
    drop: GilbertElliott,
    corrupt: GilbertElliott,
    truncate: GilbertElliott,
    delay: GilbertElliott,
    ack_loss: GilbertElliott,
    reorder: GilbertElliott,
    detail: Taus88,
}

impl DeviceChaos {
    /// Builds the transport state for `device` under `cfg`. The result is
    /// a pure function of `(cfg.seed, device)`.
    pub fn new(cfg: &ChaosConfig, device: u32) -> DeviceChaos {
        let chain = |class: FaultClass, idx: u64| {
            GilbertElliott::new(class, stream_seed(cfg.seed, &[u64::from(device), idx]))
        };
        DeviceChaos {
            drop: chain(cfg.drop, CLASS_DROP),
            corrupt: chain(cfg.corrupt, CLASS_CORRUPT),
            truncate: chain(cfg.truncate, CLASS_TRUNCATE),
            delay: chain(cfg.delay, CLASS_DELAY),
            ack_loss: chain(cfg.duplicate, CLASS_DUPLICATE),
            reorder: chain(cfg.reorder, CLASS_REORDER),
            detail: Taus88::from_seed(stream_seed(cfg.seed, &[u64::from(device), CLASS_DETAIL])),
        }
    }

    /// Passes one frame through the transport, advancing every chain by
    /// one attempt.
    pub fn attempt(&mut self, frame: &[u8; FRAME_LEN]) -> Attempt {
        // Every chain steps every attempt — fault priority must not
        // distort the other classes' burst processes.
        let drop = self.drop.step();
        let corrupt = self.corrupt.step();
        let truncate = self.truncate.step();
        let delay = self.delay.step();
        let ack_loss = self.ack_loss.step();
        let reorder = self.reorder.step();

        if drop {
            DROPPED.inc();
            return Attempt {
                delivery: None,
                acked: false,
                fault: Some(FaultKind::Drop),
            };
        }
        if corrupt {
            CORRUPTED.inc();
            // 1–3 bit flips at detail-drawn positions.
            let mut bytes = frame.to_vec();
            let flips = 1 + (self.detail.next_u32() % 3) as usize;
            for _ in 0..flips {
                let at = (self.detail.next_u32() as usize) % FRAME_LEN;
                let bit = self.detail.next_u32() % 8;
                bytes[at] ^= 1 << bit;
            }
            return Attempt {
                delivery: Some(Delivery {
                    bytes,
                    delay_rounds: 0,
                    displaced: false,
                }),
                acked: false,
                fault: Some(FaultKind::Corrupt),
            };
        }
        if truncate {
            TRUNCATED.inc();
            let keep = 1 + (self.detail.next_u32() as usize) % (FRAME_LEN - 1);
            return Attempt {
                delivery: Some(Delivery {
                    bytes: frame[..keep].to_vec(),
                    delay_rounds: 0,
                    displaced: false,
                }),
                acked: false,
                fault: Some(FaultKind::Truncate),
            };
        }
        if delay {
            DELAYED.inc();
            let rounds = 1 + self.detail.next_u32() % MAX_DELAY_ROUNDS;
            return Attempt {
                delivery: Some(Delivery {
                    bytes: frame.to_vec(),
                    delay_rounds: rounds,
                    displaced: false,
                }),
                acked: false,
                fault: Some(FaultKind::Delay),
            };
        }
        if ack_loss {
            ACK_LOST.inc();
            return Attempt {
                delivery: Some(Delivery {
                    bytes: frame.to_vec(),
                    delay_rounds: 0,
                    displaced: false,
                }),
                acked: false,
                fault: Some(FaultKind::AckLoss),
            };
        }
        if reorder {
            REORDERED.inc();
            return Attempt {
                delivery: Some(Delivery {
                    bytes: frame.to_vec(),
                    delay_rounds: 0,
                    displaced: true,
                }),
                acked: true,
                fault: Some(FaultKind::Reorder),
            };
        }
        Attempt {
            delivery: Some(Delivery {
                bytes: frame.to_vec(),
                delay_rounds: 0,
                displaced: false,
            }),
            acked: true,
            fault: None,
        }
    }
}

/// Environment variable overriding a chaos campaign's master seed.
pub const CHAOS_SEED_ENV: &str = "ULP_CHAOS_SEED";

/// Reads [`CHAOS_SEED_ENV`]: `Ok(None)` if unset, the parsed seed if a
/// valid `u64`, and a typed error otherwise — a misspelled seed must never
/// silently fall back to a default campaign.
///
/// # Errors
///
/// [`ulp_obs::EnvError`] for a set-but-malformed value.
pub fn chaos_seed_from_env() -> Result<Option<u64>, ulp_obs::EnvError> {
    match std::env::var(CHAOS_SEED_ENV) {
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(os)) => Err(ulp_obs::EnvError {
            var: CHAOS_SEED_ENV,
            value: os.to_string_lossy().into_owned(),
            expected: "an unsigned 64-bit integer",
        }),
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(seed) => Ok(Some(seed)),
            Err(_) => Err(ulp_obs::EnvError {
                var: CHAOS_SEED_ENV,
                value: v,
                expected: "an unsigned 64-bit integer",
            }),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{Payload, Report};

    fn frame() -> [u8; FRAME_LEN] {
        Report {
            device: 1,
            query: 0,
            epoch: 0,
            payload: Payload::Value(42),
        }
        .encode()
    }

    #[test]
    fn quiet_transport_is_a_perfect_wire() {
        let cfg = ChaosConfig::quiet(9);
        assert!(cfg.is_quiet());
        let mut chaos = DeviceChaos::new(&cfg, 3);
        for _ in 0..100 {
            let a = chaos.attempt(&frame());
            assert!(a.acked && a.fault.is_none());
            assert_eq!(a.delivery.unwrap().bytes, frame().to_vec());
        }
    }

    #[test]
    fn fault_pattern_is_a_pure_function_of_seed_and_device() {
        let cfg = ChaosConfig {
            drop: FaultClass::bursty(0.1, 4.0),
            corrupt: FaultClass::flat(0.05),
            duplicate: FaultClass::bursty(0.1, 2.0),
            delay: FaultClass::flat(0.05),
            ..ChaosConfig::quiet(1234)
        };
        let run = || -> Vec<Attempt> {
            let mut chaos = DeviceChaos::new(&cfg, 77);
            (0..500).map(|_| chaos.attempt(&frame())).collect()
        };
        assert_eq!(run(), run());
        // A different device sees an *independent* pattern.
        let mut other = DeviceChaos::new(&cfg, 78);
        let other_run: Vec<Attempt> = (0..500).map(|_| other.attempt(&frame())).collect();
        assert_ne!(run(), other_run);
    }

    #[test]
    fn stationary_rate_is_respected_per_class() {
        // Aggregate over many devices so chain independence averages out.
        let cfg = ChaosConfig {
            drop: FaultClass::bursty(0.2, 4.0),
            ..ChaosConfig::quiet(5)
        };
        let mut dropped = 0u64;
        let mut total = 0u64;
        for device in 0..200u32 {
            let mut chaos = DeviceChaos::new(&cfg, device);
            for _ in 0..200 {
                total += 1;
                if chaos.attempt(&frame()).fault == Some(FaultKind::Drop) {
                    dropped += 1;
                }
            }
        }
        let observed = dropped as f64 / total as f64;
        assert!(
            (observed - 0.2).abs() < 0.02,
            "drop rate {observed:.3} too far from configured 0.2"
        );
    }

    #[test]
    fn bursts_have_the_configured_mean_length() {
        let cfg = ChaosConfig {
            drop: FaultClass::bursty(0.2, 5.0),
            ..ChaosConfig::quiet(11)
        };
        let mut runs = Vec::new();
        for device in 0..100u32 {
            let mut chaos = DeviceChaos::new(&cfg, device);
            let mut current = 0u64;
            for _ in 0..500 {
                if chaos.attempt(&frame()).fault == Some(FaultKind::Drop) {
                    current += 1;
                } else if current > 0 {
                    runs.push(current);
                    current = 0;
                }
            }
        }
        let mean = runs.iter().sum::<u64>() as f64 / runs.len() as f64;
        assert!(
            (mean - 5.0).abs() < 1.0,
            "mean burst {mean:.2} too far from configured 5"
        );
    }

    #[test]
    fn corrupted_deliveries_differ_and_truncated_ones_are_short() {
        let cfg = ChaosConfig {
            corrupt: FaultClass::flat(0.5),
            truncate: FaultClass::flat(0.5),
            ..ChaosConfig::quiet(21)
        };
        let mut chaos = DeviceChaos::new(&cfg, 1);
        let (mut corrupted, mut truncated) = (0, 0);
        for _ in 0..400 {
            let a = chaos.attempt(&frame());
            match a.fault {
                Some(FaultKind::Corrupt) => {
                    corrupted += 1;
                    let d = a.delivery.unwrap();
                    assert_eq!(d.bytes.len(), FRAME_LEN);
                    assert_ne!(d.bytes, frame().to_vec());
                }
                Some(FaultKind::Truncate) => {
                    truncated += 1;
                    let d = a.delivery.unwrap();
                    assert!((1..FRAME_LEN).contains(&d.bytes.len()));
                }
                _ => {}
            }
        }
        assert!(corrupted > 50 && truncated > 20);
    }

    #[test]
    fn delays_are_bounded_and_unacked() {
        let cfg = ChaosConfig {
            delay: FaultClass::flat(0.5),
            ..ChaosConfig::quiet(31)
        };
        let mut chaos = DeviceChaos::new(&cfg, 1);
        let mut seen = 0;
        for _ in 0..200 {
            let a = chaos.attempt(&frame());
            if a.fault == Some(FaultKind::Delay) {
                seen += 1;
                assert!(!a.acked);
                let d = a.delivery.unwrap();
                assert!((1..=MAX_DELAY_ROUNDS).contains(&d.delay_rounds));
                assert_eq!(d.bytes, frame().to_vec());
            }
        }
        assert!(seen > 50);
    }

    #[test]
    fn config_validation_rejects_out_of_range_classes() {
        let mut cfg = ChaosConfig::quiet(1);
        cfg.corrupt = FaultClass::flat(0.75);
        let err = cfg.validate().unwrap_err();
        assert_eq!((err.class, err.field), ("corrupt", "rate"));
        cfg.corrupt = FaultClass::OFF;
        cfg.delay = FaultClass::bursty(0.1, 0.5);
        let err = cfg.validate().unwrap_err();
        assert_eq!((err.class, err.field), ("delay", "burst"));
        cfg.delay = FaultClass::OFF;
        cfg.validate().unwrap();
    }

    #[test]
    fn chaos_seed_env_parses_strictly() {
        assert_eq!(super::CHAOS_SEED_ENV, "ULP_CHAOS_SEED");
        // Parsing logic is exercised via the inner match on strings.
        for (raw, ok) in [("42", true), (" 7 ", true), ("-1", false), ("abc", false)] {
            assert_eq!(raw.trim().parse::<u64>().is_ok(), ok, "{raw:?}");
        }
    }
}
