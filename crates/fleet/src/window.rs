//! Epoch-window lifecycle and multi-epoch rollups.
//!
//! The streaming service ([`crate::service::FleetService`]) partitions the
//! epoch axis into fixed-width **windows** and runs each through an
//! explicit state machine:
//!
//! ```text
//! Open ──▶ Accumulating ──▶ Sealing ──▶ Sealed{Full|Degraded} ──▶ Compacted
//!   └──────────────────────────▲ (an empty window can seal directly)
//! ```
//!
//! * **Open** — the window exists; no report has been routed to it yet.
//! * **Accumulating** — at least one batch has been folded into it.
//! * **Sealing** — the watermark passed; the service is draining queues
//!   and folding the window's accumulators. No further report can enter.
//! * **Sealed** — the window carries its final totals, its own
//!   [`BudgetLedger`], a coverage grade ([`SealStatus::Full`] or
//!   [`SealStatus::Degraded`]), and a ledger audit verdict.
//! * **Compacted** — the window's aggregates were merged into a
//!   [`Rollup`]; the window itself is now only a historical record.
//!
//! Illegal transitions are typed errors, not silent corrections: a sealed
//! window reopening, or a compaction of an unsealed window, is a lifecycle
//! bug the caller must see.
//!
//! # Rollup determinism
//!
//! `f64` addition is order-sensitive, and [`BudgetLedger::merge`] replays
//! charges sequentially — so a naive "merge windows as they arrive" fold
//! would make the rollup's ledger bits depend on arrival order. The
//! [`Rollup`] therefore *canonicalizes*: sealed windows are keyed by
//! window index, and [`Rollup::finalize`] folds accumulators and ledgers
//! in ascending index order regardless of absorption order. Merging the
//! same sealed windows in any order yields byte-identical totals, ledger
//! bits, and digests — property-tested in `tests/service.rs`. The exact
//! `i128` moment accumulators are associative anyway; the canonical order
//! exists for the ledger (and for the digest text).

use std::collections::BTreeMap;
use std::fmt;

use ldp_core::{BudgetLedger, CompositionLedger};

use crate::collector::{EpochSeal, IngestStats, QueryConfig, QueryTotals, SealStatus};

/// Lifecycle phase of one epoch window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowPhase {
    /// Created; nothing routed to it yet.
    Open,
    /// At least one batch folded in.
    Accumulating,
    /// Watermark passed; accumulators are being folded. No more reports.
    Sealing,
    /// Final totals and ledger attached, coverage graded.
    Sealed(SealStatus),
    /// Aggregates merged into a rollup.
    Compacted,
}

impl WindowPhase {
    fn name(&self) -> &'static str {
        match self {
            WindowPhase::Open => "Open",
            WindowPhase::Accumulating => "Accumulating",
            WindowPhase::Sealing => "Sealing",
            WindowPhase::Sealed(_) => "Sealed",
            WindowPhase::Compacted => "Compacted",
        }
    }
}

/// An attempted lifecycle transition the state machine forbids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowStateError {
    /// Window index the transition was attempted on.
    pub window: u32,
    /// Phase the window was in.
    pub from: &'static str,
    /// Transition that was attempted.
    pub to: &'static str,
}

impl fmt::Display for WindowStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "window {} cannot move {} -> {}",
            self.window, self.from, self.to
        )
    }
}

impl std::error::Error for WindowStateError {}

/// One epoch window's lifecycle record.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    index: u32,
    epoch_lo: u32,
    epoch_hi: u32,
    phase: WindowPhase,
}

impl Window {
    /// Opens window `index` covering epochs `[epoch_lo, epoch_hi)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty epoch range.
    pub fn open(index: u32, epoch_lo: u32, epoch_hi: u32) -> Window {
        assert!(epoch_lo < epoch_hi, "window must cover at least one epoch");
        Window {
            index,
            epoch_lo,
            epoch_hi,
            phase: WindowPhase::Open,
        }
    }

    /// Window index (position on the epoch axis, `epoch_lo / width`).
    pub fn index(&self) -> u32 {
        self.index
    }

    /// First epoch the window covers.
    pub fn epoch_lo(&self) -> u32 {
        self.epoch_lo
    }

    /// One past the last epoch the window covers.
    pub fn epoch_hi(&self) -> u32 {
        self.epoch_hi
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> WindowPhase {
        self.phase
    }

    fn forbid(&self, to: &'static str) -> WindowStateError {
        WindowStateError {
            window: self.index,
            from: self.phase.name(),
            to,
        }
    }

    /// `Open → Accumulating`: the first batch was routed into the window.
    /// Idempotent while accumulating (every subsequent batch re-marks).
    ///
    /// # Errors
    ///
    /// [`WindowStateError`] once sealing has begun — a report folded into
    /// a sealing window would escape its seal.
    pub fn mark_accumulating(&mut self) -> Result<(), WindowStateError> {
        match self.phase {
            WindowPhase::Open | WindowPhase::Accumulating => {
                self.phase = WindowPhase::Accumulating;
                Ok(())
            }
            _ => Err(self.forbid("Accumulating")),
        }
    }

    /// `Open|Accumulating → Sealing`: the watermark passed. An empty
    /// window seals directly from `Open`.
    ///
    /// # Errors
    ///
    /// [`WindowStateError`] if sealing already began or finished.
    pub fn begin_seal(&mut self) -> Result<(), WindowStateError> {
        match self.phase {
            WindowPhase::Open | WindowPhase::Accumulating => {
                self.phase = WindowPhase::Sealing;
                Ok(())
            }
            _ => Err(self.forbid("Sealing")),
        }
    }

    /// `Sealing → Sealed`: final totals are attached and coverage graded.
    ///
    /// # Errors
    ///
    /// [`WindowStateError`] unless the window is mid-seal.
    pub fn seal(&mut self, status: SealStatus) -> Result<(), WindowStateError> {
        match self.phase {
            WindowPhase::Sealing => {
                self.phase = WindowPhase::Sealed(status);
                Ok(())
            }
            _ => Err(self.forbid("Sealed")),
        }
    }

    /// `Sealed → Compacted`: the window's aggregates joined a rollup.
    ///
    /// # Errors
    ///
    /// [`WindowStateError`] unless the window is sealed.
    pub fn compact(&mut self) -> Result<(), WindowStateError> {
        match self.phase {
            WindowPhase::Sealed(_) => {
                self.phase = WindowPhase::Compacted;
                Ok(())
            }
            _ => Err(self.forbid("Compacted")),
        }
    }
}

/// FNV-1a 64-bit fold of `bytes` into `h`.
fn fnv(h: &mut u64, bytes: impl IntoIterator<Item = u8>) {
    for b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Canonical rendering of one query's exact accumulators (sketch included
/// as an FNV digest over its bins).
fn totals_text(t: &QueryTotals) -> String {
    let sketch = match &t.sketch {
        None => "none".to_string(),
        Some(s) => {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for k in s.min_k()..=s.max_k() {
                fnv(&mut h, s.count(k).to_le_bytes());
            }
            format!("{:016x}", h)
        }
    };
    format!(
        "count={} sum={} sum2={} sum3={} sum4={} ones={} sketch={}",
        t.count, t.sum, t.sum2, t.sum3, t.sum4, t.ones, sketch
    )
}

/// One sealed epoch window: final exact aggregates, its own privacy
/// ledger, per-window ingest deltas, and a coverage grade.
#[derive(Debug, Clone)]
pub struct SealedWindow {
    /// Window index (`epoch_lo / width`).
    pub index: u32,
    /// First epoch covered.
    pub epoch_lo: u32,
    /// One past the last epoch covered.
    pub epoch_hi: u32,
    /// Exact per-query accumulators, in query registration order.
    pub totals: Vec<QueryTotals>,
    /// The window's share of the fleet privacy ledger: every fresh
    /// randomization charged in a covered epoch, replayed in canonical
    /// (chunk, device, epoch) order.
    pub ledger: BudgetLedger,
    /// The charges behind `ledger`, in record order — the rollup re-audits
    /// the merged ledger against an accountant replaying these.
    pub charges: Vec<f64>,
    /// Coverage grade (expected vs accepted, against the service quorum).
    pub seal: EpochSeal,
    /// Ingest deltas attributed to this window's accumulation span.
    pub stats: IngestStats,
    /// Whether `ledger` audits bitwise against an independently folded
    /// composition accountant over `charges`.
    pub audit_ok: bool,
}

impl SealedWindow {
    /// Canonical rendering of every schedule-independent field; float bits
    /// are rendered exactly via [`f64::to_bits`].
    pub fn canonical_text(&self) -> String {
        let seal = match self.seal.status {
            SealStatus::Full => "full".to_string(),
            SealStatus::Degraded { coverage } => format!("degraded:{:016x}", coverage.to_bits()),
        };
        let totals: Vec<String> = self.totals.iter().map(totals_text).collect();
        format!(
            "window={} epochs=[{},{}) seal={} expected={} accepted={}\n\
             totals=[{}]\n\
             ledger_total={:016x} ledger_entries={} audit_ok={}\n\
             accepted={} rejected={} duplicates={} stale={} late={} \
             quarantine_dropped={} quarantine_latched={}\n",
            self.index,
            self.epoch_lo,
            self.epoch_hi,
            seal,
            self.seal.expected,
            self.seal.accepted,
            totals.join(" | "),
            self.ledger.total().to_bits(),
            self.ledger.len(),
            self.audit_ok,
            self.stats.accepted,
            self.stats.rejected,
            self.stats.duplicates,
            self.stats.stale,
            self.stats.late,
            self.stats.quarantine_dropped,
            self.stats.quarantine_latched,
        )
    }

    /// FNV-1a 64-bit digest of [`SealedWindow::canonical_text`].
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        fnv(&mut h, self.canonical_text().bytes());
        h
    }
}

/// Why a sealed window could not join a rollup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RollupError {
    /// A window with this index was already absorbed.
    DuplicateWindow(u32),
    /// The window's query shape differs from the rollup's.
    QueryShapeMismatch,
}

impl fmt::Display for RollupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RollupError::DuplicateWindow(i) => write!(f, "window {i} already in the rollup"),
            RollupError::QueryShapeMismatch => write!(f, "window query shape mismatch"),
        }
    }
}

impl std::error::Error for RollupError {}

/// An order-canonicalizing accumulator of sealed windows.
///
/// Windows may be absorbed in any order; [`Rollup::finalize`] always folds
/// them in ascending window-index order, so the merged `i128` accumulators
/// *and* the merged ledger's `f64` bits are a pure function of the set of
/// windows, never of absorption order.
#[derive(Debug, Clone, Default)]
pub struct Rollup {
    windows: BTreeMap<u32, SealedWindow>,
}

/// The fold of a set of sealed windows: merged exact aggregates, a merged
/// ledger re-audited bitwise, and a digest chaining the per-window digests.
#[derive(Debug, Clone)]
pub struct RollupOutcome {
    /// Windows folded.
    pub windows: usize,
    /// First epoch covered by any folded window.
    pub epoch_lo: u32,
    /// One past the last epoch covered.
    pub epoch_hi: u32,
    /// Merged per-query accumulators, in query registration order.
    pub totals: Vec<QueryTotals>,
    /// Every window ledger merged in window-index order.
    pub ledger: BudgetLedger,
    /// Whether the merged ledger audits bitwise against a composition
    /// accountant replaying every window's charges in the same canonical
    /// order — the proof that the guarantee survived the merge.
    pub audit_ok: bool,
    /// Summed ingest deltas.
    pub stats: IngestStats,
    /// Summed coverage (expected / accepted over all windows), graded
    /// against the quorum passed to [`Rollup::finalize`].
    pub seal: EpochSeal,
    /// FNV-1a digest chaining every per-window digest (in index order)
    /// with the merged ledger bits.
    pub digest: u64,
}

impl Rollup {
    /// An empty rollup.
    pub fn new() -> Rollup {
        Rollup::default()
    }

    /// Sealed windows absorbed so far.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no window has been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Absorbs one sealed window, in any order.
    ///
    /// # Errors
    ///
    /// [`RollupError::DuplicateWindow`] if the index was already absorbed;
    /// [`RollupError::QueryShapeMismatch`] if its query count differs from
    /// the windows already held.
    pub fn absorb(&mut self, window: SealedWindow) -> Result<(), RollupError> {
        if let Some(first) = self.windows.values().next() {
            if first.totals.len() != window.totals.len() {
                return Err(RollupError::QueryShapeMismatch);
            }
        }
        match self.windows.entry(window.index) {
            std::collections::btree_map::Entry::Occupied(_) => {
                Err(RollupError::DuplicateWindow(window.index))
            }
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(window);
                Ok(())
            }
        }
    }

    /// Folds every absorbed window in ascending index order: merges the
    /// exact accumulators, replays every window ledger into one merged
    /// [`BudgetLedger`], re-audits it bitwise against a fresh composition
    /// accountant over the same canonical charge order, sums coverage and
    /// grades it against `quorum`, and chains the per-window digests.
    ///
    /// # Panics
    ///
    /// Panics on an empty rollup (there is nothing to grade) or a
    /// `quorum` outside `[0, 1]`.
    pub fn finalize(&self, quorum: f64) -> RollupOutcome {
        assert!(!self.windows.is_empty(), "rollup must hold a window");
        let mut totals: Option<Vec<QueryTotals>> = None;
        let mut ledger = BudgetLedger::new();
        let mut accountant = CompositionLedger::new();
        let mut stats = IngestStats::default();
        let mut expected = 0u64;
        let mut accepted = 0u64;
        let mut epoch_lo = u32::MAX;
        let mut epoch_hi = 0u32;
        let mut digest: u64 = 0xCBF2_9CE4_8422_2325;
        let mut audit_ok = true;
        for w in self.windows.values() {
            match totals.as_mut() {
                None => totals = Some(w.totals.clone()),
                Some(ts) => {
                    for (t, o) in ts.iter_mut().zip(&w.totals) {
                        t.merge(o);
                    }
                }
            }
            ledger.merge(&w.ledger);
            for &c in &w.charges {
                accountant.record(c);
            }
            audit_ok &= w.audit_ok;
            stats.absorb(w.stats);
            expected += w.seal.expected;
            accepted += w.seal.accepted;
            epoch_lo = epoch_lo.min(w.epoch_lo);
            epoch_hi = epoch_hi.max(w.epoch_hi);
            fnv(&mut digest, w.index.to_le_bytes());
            fnv(&mut digest, w.digest().to_le_bytes());
        }
        audit_ok &= ledger.audit(&accountant).is_ok();
        fnv(&mut digest, ledger.total().to_bits().to_le_bytes());
        fnv(&mut digest, (ledger.len() as u64).to_le_bytes());
        RollupOutcome {
            windows: self.windows.len(),
            epoch_lo,
            epoch_hi,
            totals: totals.expect("non-empty rollup"),
            ledger,
            audit_ok,
            stats,
            seal: EpochSeal::evaluate(expected, accepted, quorum),
            digest,
        }
    }
}

/// Splits the epoch axis `[0, epochs)` into windows of `width` epochs
/// (the last window may be narrower). Helper shared by the service and
/// its tests.
pub fn window_spans(epochs: u32, width: u32) -> Vec<(u32, u32)> {
    assert!(width > 0, "window width must be positive");
    assert!(epochs > 0, "need at least one epoch");
    (0..epochs.div_ceil(width))
        .map(|i| (i * width, ((i + 1) * width).min(epochs)))
        .collect()
}

/// Query-shape helper: index of the first numeric query and the first RR
/// query in a registration, if present.
pub(crate) fn query_roles(queries: &[QueryConfig]) -> (Option<usize>, Option<usize>) {
    let numeric = queries
        .iter()
        .position(|q| matches!(q.kind, crate::collector::QueryKind::Numeric { .. }));
    let rr = queries
        .iter()
        .position(|q| matches!(q.kind, crate::collector::QueryKind::RrBit));
    (numeric, rr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sealed(index: u32, charge: f64) -> SealedWindow {
        let mut totals = QueryTotals::new_numeric(-4, 4);
        totals.absorb_value(i64::from(index) - 1);
        let mut ledger = BudgetLedger::new();
        ledger.record(charge);
        let mut accountant = CompositionLedger::new();
        accountant.record(charge);
        let audit_ok = ledger.audit(&accountant).is_ok();
        SealedWindow {
            index,
            epoch_lo: index * 2,
            epoch_hi: index * 2 + 2,
            totals: vec![totals],
            ledger,
            charges: vec![charge],
            seal: EpochSeal::evaluate(2, 2, 0.9),
            stats: IngestStats {
                accepted: 1,
                ..IngestStats::default()
            },
            audit_ok,
        }
    }

    #[test]
    fn lifecycle_happy_path() {
        let mut w = Window::open(0, 0, 2);
        assert_eq!(w.phase(), WindowPhase::Open);
        w.mark_accumulating().unwrap();
        w.mark_accumulating().unwrap(); // idempotent while accumulating
        w.begin_seal().unwrap();
        w.seal(SealStatus::Full).unwrap();
        assert_eq!(w.phase(), WindowPhase::Sealed(SealStatus::Full));
        w.compact().unwrap();
        assert_eq!(w.phase(), WindowPhase::Compacted);
    }

    #[test]
    fn empty_window_seals_directly_from_open() {
        let mut w = Window::open(3, 6, 8);
        w.begin_seal().unwrap();
        w.seal(SealStatus::Degraded { coverage: 0.0 }).unwrap();
    }

    #[test]
    fn illegal_transitions_are_typed_errors() {
        let mut w = Window::open(1, 2, 4);
        // Cannot seal or compact before the watermark passes.
        assert!(w.seal(SealStatus::Full).is_err());
        assert!(w.compact().is_err());
        w.begin_seal().unwrap();
        // A sealing window accepts no more batches and cannot re-seal.
        let err = w.mark_accumulating().unwrap_err();
        assert_eq!(err.from, "Sealing");
        assert_eq!(err.to, "Accumulating");
        assert!(w.begin_seal().is_err());
        w.seal(SealStatus::Full).unwrap();
        // Sealed windows never reopen.
        assert!(w.mark_accumulating().is_err());
        assert!(w.begin_seal().is_err());
        w.compact().unwrap();
        assert!(w.compact().is_err());
        assert_eq!(
            w.compact().unwrap_err().to_string(),
            "window 1 cannot move Compacted -> Compacted"
        );
    }

    #[test]
    fn rollup_rejects_duplicates_and_shape_mismatches() {
        let mut r = Rollup::new();
        r.absorb(sealed(0, 0.5)).unwrap();
        assert_eq!(
            r.absorb(sealed(0, 0.5)),
            Err(RollupError::DuplicateWindow(0))
        );
        let mut two_queries = sealed(1, 0.5);
        two_queries.totals.push(QueryTotals::default());
        assert_eq!(r.absorb(two_queries), Err(RollupError::QueryShapeMismatch));
    }

    #[test]
    fn finalize_is_independent_of_absorption_order() {
        let windows: Vec<SealedWindow> = (0..5)
            .map(|i| sealed(i, 0.5 + f64::from(i) * 0.125))
            .collect();
        let mut forward = Rollup::new();
        for w in &windows {
            forward.absorb(w.clone()).unwrap();
        }
        let mut reverse = Rollup::new();
        for w in windows.iter().rev() {
            reverse.absorb(w.clone()).unwrap();
        }
        let a = forward.finalize(0.9);
        let b = reverse.finalize(0.9);
        assert_eq!(a.totals, b.totals);
        assert_eq!(a.ledger.total().to_bits(), b.ledger.total().to_bits());
        assert_eq!(a.digest, b.digest);
        assert!(a.audit_ok && b.audit_ok);
        assert_eq!(a.epoch_lo, 0);
        assert_eq!(a.epoch_hi, 10);
        assert_eq!(a.stats.accepted, 5);
    }

    #[test]
    fn window_spans_cover_the_epoch_axis() {
        assert_eq!(window_spans(8, 2), vec![(0, 2), (2, 4), (4, 6), (6, 8)]);
        assert_eq!(window_spans(5, 2), vec![(0, 2), (2, 4), (4, 5)]);
        assert_eq!(window_spans(1, 4), vec![(0, 1)]);
    }
}
