//! The simulated-fleet driver: N DP-Box devices streaming into a collector.
//!
//! Each device is a full [`dp_box::DpBox`] instance — FSM, budget ledger,
//! URNG health monitor — not a shortcut around the device model. The driver
//!
//! 1. draws a population of sensor values from a dataset spec (via
//!    [`ldp_eval::GroundTruth`], the shared ground-truth preparation);
//! 2. boots every device through the hardware command sequence, running the
//!    power-on URNG self-test first so devices with degraded bit sources
//!    fail safe *before emitting a single report* (a value-independent
//!    exclusion, hence unbiased);
//! 3. streams epochs of wire-encoded reports through a sharded
//!    [`Collector`];
//! 4. folds every device's budget ledger into one auditable fleet ledger;
//! 5. returns debiased estimates next to the included-population ground
//!    truth.
//!
//! # Determinism
//!
//! Every random stream is seeded by [`ulp_rng::stream_seed`] from
//! `(master seed, device id, role)`, device simulation fans out over
//! [`ulp_par::par_map`] in fixed-size chunks, and the collector's shard
//! partition hashes device ids — so the outcome is a pure function of the
//! configuration, bit-identical at any thread count and shard count.

use core::fmt;

use dp_box::{
    Command, DeviceArray, DeviceArrayConfig, DpBox, DpBoxConfig, DpBoxError, HealthConfig,
    LaneOutcome, Phase,
};
use ldp_core::{BudgetLedger, CompositionLedger, LdpError, RandomizedResponse};
use ldp_datasets::DatasetSpec;
use ldp_eval::GroundTruth;
use ulp_obs::{parse_env, Counter, EnvError, SpanTimer};
use ulp_rng::{stream_seed, CorrelatedBits, RandomBits, Taus88};

use crate::chaos::{ChaosConfig, DeviceChaos, MAX_DELAY_ROUNDS};
use crate::collector::{
    Collector, EpochSeal, IngestPath, IngestStats, QueryConfig, QueryKind, SealStatus,
};
use crate::estimator::{Estimate, NoiseModel};
use crate::service::{FleetService, ServiceConfig, ServiceSnapshot};
use crate::window::window_spans;
use crate::wire::{Payload, Report};

/// Devices booted, process-wide.
static DEVICES: Counter = Counter::new("fleet.devices.simulated");
/// Devices excluded by the power-on URNG self-test — recorded at every
/// metrics level: a fleet silently dropping devices must be visible.
static EXCLUDED: Counter = Counter::new("fleet.devices.excluded");
/// Wall-clock of each streamed epoch (simulation + ingest).
static EPOCH_SPAN: SpanTimer = SpanTimer::new("fleet.driver.epoch");
/// Wall-clock of the device-simulation fan-out (boot + noising + framing,
/// before any collector ingest).
static SIM_SPAN: SpanTimer = SpanTimer::new("fleet.driver.simulate");

/// Nanoseconds spent in device simulation process-wide (recorded at
/// metrics level `full` only — the hook `bench_fleet` splits per-cell wall
/// time with).
pub fn sim_phase_ns() -> u64 {
    SIM_SPAN.total_ns()
}

/// Environment variable selecting the per-device simulation engine.
pub const DEVICE_ENGINE_ENV: &str = "ULP_DEVICE_ENGINE";

/// Which engine [`FleetDriver::run`] simulates devices with. The two
/// engines produce **bit-identical** outcomes, ledgers, and digests for
/// every configuration — the reference engine steps one [`DpBox`] FSM per
/// device and exists for differential testing; the batch engine advances a
/// [`DeviceArray`] per chunk for throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeviceEngine {
    /// Struct-of-arrays lockstep simulation (the default): one
    /// [`DeviceArray`] per chunk, faulty-URNG devices on a scalar sidecar.
    #[default]
    Batch,
    /// One full [`DpBox`] FSM per device.
    Reference,
}

impl DeviceEngine {
    /// Parses a raw value: `batch` or `reference` (case-insensitive).
    /// `None` (unset) selects [`DeviceEngine::Batch`] — the documented
    /// default.
    ///
    /// # Errors
    ///
    /// [`EnvError`] for anything else — a misspelling must never silently
    /// select an engine (the `ULP_SAMPLER_PATH` strictness rule).
    pub fn parse(raw: Option<&str>) -> Result<Self, EnvError> {
        let Some(raw) = raw else {
            return Ok(DeviceEngine::Batch);
        };
        match raw.trim().to_ascii_lowercase().as_str() {
            "batch" => Ok(DeviceEngine::Batch),
            "reference" => Ok(DeviceEngine::Reference),
            _ => Err(EnvError {
                var: DEVICE_ENGINE_ENV,
                value: raw.to_string(),
                expected: "batch | reference",
            }),
        }
    }

    /// Reads the engine from [`DEVICE_ENGINE_ENV`] (unset selects
    /// [`DeviceEngine::Batch`]).
    ///
    /// # Errors
    ///
    /// [`EnvError`] on a set-but-unrecognized value — never a silent
    /// fallback.
    pub fn from_env() -> Result<Self, EnvError> {
        Ok(parse_env(DEVICE_ENGINE_ENV, "batch | reference", |s| {
            DeviceEngine::parse(Some(s)).ok()
        })?
        .unwrap_or_default())
    }
}

/// Wire query id carrying fixed-point noised values.
pub const VALUE_QUERY: u16 = 0;
/// Wire query id carrying randomized-response threshold bits.
pub const RR_QUERY: u16 = 1;

/// Fleet simulation parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Population size (devices).
    pub devices: usize,
    /// Reporting epochs to stream.
    pub epochs: u32,
    /// Master seed every per-device stream derives from.
    pub seed: u64,
    /// Collector shard count.
    pub shards: usize,
    /// Dataset the sensor values are drawn from (`entries` is overridden
    /// by `devices`).
    pub spec: DatasetSpec,
    /// Privacy shift `n_m` (per-report ε = 2^−n_m).
    pub eps_shift: u8,
    /// ADC resolution in bits (codes span `[0, 2^adc_bits]`).
    pub adc_bits: u8,
    /// URNG width `Bu`.
    pub bu: u8,
    /// Datapath word width.
    pub word_bits: u8,
    /// Per-device privacy budget, in raw grid units of nats (loaded with
    /// the initialization-phase `SetEpsilon` overload).
    pub budget_raw: i64,
    /// Devices per thousand whose URNG is wired through a correlated-bits
    /// fault (they must fail the power-on self-test and be excluded).
    pub faulty_per_mille: u32,
    /// RR threshold: each device reports `RR(x ≥ threshold_code)`.
    pub threshold_code: i64,
    /// Devices per parallel simulation chunk.
    pub chunk: usize,
    /// Budget-control segment multiples.
    pub multiples: Vec<f64>,
    /// Transport fault injection between devices and collector (`None` =
    /// perfect wire).
    pub chaos: Option<ChaosConfig>,
    /// Retransmissions a device may attempt per unacked report (beyond
    /// the first send), under exponential backoff. Retries replay the
    /// *cached* report bytes verbatim — never a fresh randomization.
    pub retry_budget: u32,
    /// Coverage threshold below which the run's seal is marked
    /// [`SealStatus::Degraded`].
    pub quorum: f64,
    /// Planted adversarial senders (ids above the population) emitting
    /// checksum-valid frames for an unregistered query every epoch — the
    /// quarantine latch must catch them.
    pub malformed_senders: usize,
}

impl FleetConfig {
    /// The paper's operating point (`Bu = 17`, 8-bit ADC, 20-bit word,
    /// ε = ½) on a statlog-heart population, 5‰ faulty devices.
    pub fn paper_default(devices: usize, epochs: u32, seed: u64) -> Self {
        FleetConfig {
            devices,
            epochs,
            seed,
            shards: 4,
            spec: ldp_datasets::statlog_heart(),
            eps_shift: 1,
            adc_bits: 8,
            bu: 17,
            word_bits: 20,
            budget_raw: 1 << 18,
            faulty_per_mille: 5,
            threshold_code: 128,
            chunk: 1024,
            multiples: vec![1.5, 2.0, 2.5, 3.0],
            chaos: None,
            retry_budget: 2,
            quorum: 0.9,
            malformed_senders: 0,
        }
    }
}

/// Why a fleet run could not be carried out.
#[derive(Debug)]
pub enum FleetError {
    /// A configuration field failed validation.
    Config(&'static str),
    /// A device rejected the boot command sequence.
    Device(DpBoxError),
    /// Noise-model or mechanism construction failed.
    Privacy(LdpError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Config(msg) => write!(f, "invalid fleet config: {msg}"),
            FleetError::Device(e) => write!(f, "device error: {e}"),
            FleetError::Privacy(e) => write!(f, "privacy configuration error: {e}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Config(_) => None,
            FleetError::Device(e) => Some(e),
            FleetError::Privacy(e) => Some(e),
        }
    }
}

impl From<DpBoxError> for FleetError {
    fn from(e: DpBoxError) -> Self {
        FleetError::Device(e)
    }
}

impl From<LdpError> for FleetError {
    fn from(e: LdpError) -> Self {
        FleetError::Privacy(e)
    }
}

/// A device's bit source: healthy Tausworthe, or the same wrapped in a
/// lag-1 correlated-bits fault that the power-on self-test must catch.
#[derive(Debug, Clone)]
enum FleetUrng {
    Healthy(Taus88),
    Faulty(CorrelatedBits<Taus88>),
}

impl RandomBits for FleetUrng {
    fn next_u32(&mut self) -> u32 {
        match self {
            FleetUrng::Healthy(r) => r.next_u32(),
            FleetUrng::Faulty(r) => r.next_u32(),
        }
    }
}

/// Everything one fleet run produces.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Devices booted (the configured population).
    pub devices_simulated: usize,
    /// Devices the power-on URNG self-test excluded before any report.
    pub devices_excluded: usize,
    /// Devices that stopped reporting mid-stream (budget exhaustion or a
    /// runtime health trip — expected 0 under the default configuration).
    pub devices_dropped: usize,
    /// Collector ingest totals over the whole run.
    pub ingest: IngestStats,
    /// Debiased population-mean estimate, in ADC codes.
    pub mean: Option<Estimate>,
    /// Debiased population-variance estimate, in codes².
    pub variance: Option<Estimate>,
    /// Report-distribution median, in codes.
    pub median: Option<Estimate>,
    /// Debiased fraction of devices at or above the RR threshold.
    pub rr_frequency: Option<Estimate>,
    /// Debiased count of devices at or above the RR threshold.
    pub rr_count: Option<Estimate>,
    /// True mean (codes) over the *included* devices.
    pub truth_mean: f64,
    /// True variance (codes², biased `/n`) over the included devices.
    pub truth_variance: f64,
    /// True median (codes) over the included devices.
    pub truth_median: f64,
    /// True fraction of included devices at or above the RR threshold.
    pub truth_fraction: f64,
    /// Total privacy loss recorded across the fleet ledger, in nats.
    pub ledger_total: f64,
    /// Charges recorded in the fleet ledger (one per fresh device output).
    pub ledger_entries: usize,
    /// Whether the merged fleet ledger audits clean against the
    /// independently folded composition accountant.
    pub audit_ok: bool,
    /// FNV-1a digest over every `(device, epoch, charge)` fresh-spend
    /// record, in device order. Chaos acts only on cached frame bytes, so
    /// this digest is **bitwise identical with and without transport
    /// faults** — the retry-path ε-spend witness.
    pub ledger_digest: u64,
    /// `(device, epoch)` keys that recorded two fresh-randomization
    /// charges (expected 0: retries replay cached bytes, never
    /// re-randomize).
    pub double_spends: u64,
    /// Retransmissions attempted fleet-wide (beyond each first send).
    pub retry_attempts: u64,
    /// Reports whose retry budget ran out without an ack (the report may
    /// still have been delivered — only the confirmation was lost).
    pub reports_unacked: u64,
    /// Coverage seal over the whole run (expected vs accepted reports,
    /// graded against the configured quorum).
    pub seal: EpochSeal,
    /// Senders the collector latched into quarantine, ascending.
    pub quarantined: Vec<u32>,
    /// The thresholding window bound `n_th` (codes) the devices ran with.
    pub n_th_k: i64,
}

impl FleetOutcome {
    /// Canonical rendering of every schedule-independent field — the text
    /// the determinism digest is computed over. Exact float bits are
    /// rendered via [`f64::to_bits`] so "close" never passes for "equal".
    pub fn canonical_text(&self) -> String {
        fn est(e: &Option<Estimate>) -> String {
            match e {
                None => "none".to_string(),
                Some(e) => format!(
                    "{:016x}:{:016x}:{}:{:016x}",
                    e.value.to_bits(),
                    e.stderr.to_bits(),
                    e.n,
                    e.bias_bound.to_bits()
                ),
            }
        }
        let seal = match self.seal.status {
            SealStatus::Full => "full".to_string(),
            SealStatus::Degraded { coverage } => format!("degraded:{:016x}", coverage.to_bits()),
        };
        let quarantined = {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for d in &self.quarantined {
                for b in d.to_le_bytes() {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
            }
            h
        };
        format!(
            "devices={} excluded={} dropped={} accepted={} rejected={}\n\
             duplicates={} stale={} corrupt_frames={} resyncs={} \
             quarantine_dropped={} quarantine_latched={}\n\
             mean={} variance={} median={} rr_frequency={} rr_count={}\n\
             truth_mean={:016x} truth_variance={:016x} truth_median={:016x} truth_fraction={:016x}\n\
             ledger_total={:016x} ledger_entries={} audit_ok={} ledger_digest={:016x} \
             double_spends={}\n\
             retry_attempts={} reports_unacked={} seal={} seal_expected={} seal_accepted={} \
             quarantined={}:{:016x} n_th_k={}\n",
            self.devices_simulated,
            self.devices_excluded,
            self.devices_dropped,
            self.ingest.accepted,
            self.ingest.rejected,
            self.ingest.duplicates,
            self.ingest.stale,
            self.ingest.corrupt_frames,
            self.ingest.resyncs,
            self.ingest.quarantine_dropped,
            self.ingest.quarantine_latched,
            est(&self.mean),
            est(&self.variance),
            est(&self.median),
            est(&self.rr_frequency),
            est(&self.rr_count),
            self.truth_mean.to_bits(),
            self.truth_variance.to_bits(),
            self.truth_median.to_bits(),
            self.truth_fraction.to_bits(),
            self.ledger_total.to_bits(),
            self.ledger_entries,
            self.audit_ok,
            self.ledger_digest,
            self.double_spends,
            self.retry_attempts,
            self.reports_unacked,
            seal,
            self.seal.expected,
            self.seal.accepted,
            self.quarantined.len(),
            quarantined,
            self.n_th_k,
        )
    }

    /// FNV-1a 64-bit digest of [`FleetOutcome::canonical_text`]: equal
    /// digests witness bit-identical outcomes across thread counts, shard
    /// counts, and chunk sizes.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in self.canonical_text().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Ground-truth population statistics over the included devices.
struct Truths {
    mean: f64,
    variance: f64,
    median: f64,
    fraction: f64,
}

/// What one [`FleetDriver::run_service`] streaming run produced: the
/// per-window seals and digests, the live snapshot served at end of run,
/// the multi-epoch rollup, and the fleet-wide audits — everything
/// schedule-independent, plus wall-clock seal timings kept strictly
/// outside the digest.
#[derive(Debug, Clone)]
pub struct ServiceOutcome {
    /// Devices booted (the configured population).
    pub devices_simulated: usize,
    /// Devices the power-on URNG self-test excluded before any report.
    pub devices_excluded: usize,
    /// Devices that stopped reporting mid-stream.
    pub devices_dropped: usize,
    /// Windows sealed over the run (every window, by construction).
    pub windows_sealed: usize,
    /// Each sealed window's canonical digest, ascending window index.
    pub window_digests: Vec<u64>,
    /// Each sealed window's coverage seal, ascending window index.
    pub window_seals: Vec<EpochSeal>,
    /// The live snapshot taken after the last seal: debiased per-window
    /// estimates exactly as a query client would have read them.
    pub snapshot: ServiceSnapshot,
    /// Debiased mean over the rollup's merged accumulators.
    pub rollup_mean: Option<Estimate>,
    /// Debiased variance over the rollup's merged accumulators.
    pub rollup_variance: Option<Estimate>,
    /// Median over the rollup's merged sketch.
    pub rollup_median: Option<Estimate>,
    /// Debiased RR frequency over the rollup's merged bits.
    pub rollup_rr_frequency: Option<Estimate>,
    /// Total privacy loss in the rollup's merged ledger, in nats.
    pub rollup_ledger_total: f64,
    /// Entries in the rollup's merged ledger.
    pub rollup_ledger_entries: usize,
    /// Coverage seal over the whole rollup.
    pub rollup_seal: EpochSeal,
    /// The rollup's order-canonical digest.
    pub rollup_digest: u64,
    /// Whether every per-window audit AND the merged-ledger audit passed
    /// bitwise.
    pub audit_ok: bool,
    /// Service-lifetime ingest totals (including `late` arrivals).
    pub stats: IngestStats,
    /// Batches refused with typed backpressure (each was retried after a
    /// drain — refusal never loses reports).
    pub backpressure_rejections: u64,
    /// Largest staged frame count any single drain folded.
    pub max_drain_frames: usize,
    /// FNV-1a digest over every `(device, epoch, charge)` fresh-spend
    /// record — bitwise identical to the batch driver's for the same
    /// configuration, windowed or not.
    pub ledger_digest: u64,
    /// `(device, epoch)` keys that recorded two fresh-randomization
    /// charges (expected 0).
    pub double_spends: u64,
    /// Retransmissions attempted fleet-wide.
    pub retry_attempts: u64,
    /// Reports whose retry budget expired without an ack.
    pub reports_unacked: u64,
    /// True mean (codes) over the included devices.
    pub truth_mean: f64,
    /// True variance (codes²) over the included devices.
    pub truth_variance: f64,
    /// True median (codes) over the included devices.
    pub truth_median: f64,
    /// True fraction of included devices at or above the RR threshold.
    pub truth_fraction: f64,
    /// Senders the collector latched into quarantine, ascending.
    pub quarantined: Vec<u32>,
    /// The thresholding window bound `n_th` (codes).
    pub n_th_k: i64,
    /// Wall-clock nanoseconds per seal — observability only, **never**
    /// rendered into [`ServiceOutcome::canonical_text`].
    pub seal_ns: Vec<u64>,
}

impl ServiceOutcome {
    /// Canonical rendering of every schedule-independent field — the text
    /// the service determinism digest is computed over. Exact float bits
    /// are rendered via [`f64::to_bits`]; wall-clock timings are excluded.
    pub fn canonical_text(&self) -> String {
        fn est(e: &Option<Estimate>) -> String {
            match e {
                None => "none".to_string(),
                Some(e) => format!(
                    "{:016x}:{:016x}:{}:{:016x}",
                    e.value.to_bits(),
                    e.stderr.to_bits(),
                    e.n,
                    e.bias_bound.to_bits()
                ),
            }
        }
        fn seal(s: &EpochSeal) -> String {
            let status = match s.status {
                SealStatus::Full => "full".to_string(),
                SealStatus::Degraded { coverage } => {
                    format!("degraded:{:016x}", coverage.to_bits())
                }
            };
            format!("{status}:{}:{}", s.expected, s.accepted)
        }
        let mut out = format!(
            "devices={} excluded={} dropped={} windows={}\n",
            self.devices_simulated,
            self.devices_excluded,
            self.devices_dropped,
            self.windows_sealed,
        );
        for (i, (digest, s)) in self
            .window_digests
            .iter()
            .zip(&self.window_seals)
            .enumerate()
        {
            out.push_str(&format!("window[{i}]={digest:016x} seal={}\n", seal(s)));
        }
        for w in &self.snapshot.windows {
            out.push_str(&format!(
                "snapshot[{}] mean={} variance={} median={} rr_frequency={}\n",
                w.index,
                est(&w.mean),
                est(&w.variance),
                est(&w.median),
                est(&w.rr_frequency),
            ));
        }
        out.push_str(&format!(
            "rollup mean={} variance={} median={} rr_frequency={}\n\
             rollup_ledger_total={:016x} rollup_ledger_entries={} rollup_seal={} \
             rollup_digest={:016x} audit_ok={}\n",
            est(&self.rollup_mean),
            est(&self.rollup_variance),
            est(&self.rollup_median),
            est(&self.rollup_rr_frequency),
            self.rollup_ledger_total.to_bits(),
            self.rollup_ledger_entries,
            seal(&self.rollup_seal),
            self.rollup_digest,
            self.audit_ok,
        ));
        let quarantined = {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for d in &self.quarantined {
                for b in d.to_le_bytes() {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
            }
            h
        };
        out.push_str(&format!(
            "accepted={} rejected={} duplicates={} stale={} late={} corrupt_frames={} \
             resyncs={} quarantine_dropped={} quarantine_latched={}\n\
             backpressure_rejections={} max_drain_frames={}\n\
             ledger_digest={:016x} double_spends={} retry_attempts={} reports_unacked={}\n\
             truth_mean={:016x} truth_variance={:016x} truth_median={:016x} truth_fraction={:016x}\n\
             quarantined={}:{:016x} n_th_k={}\n",
            self.stats.accepted,
            self.stats.rejected,
            self.stats.duplicates,
            self.stats.stale,
            self.stats.late,
            self.stats.corrupt_frames,
            self.stats.resyncs,
            self.stats.quarantine_dropped,
            self.stats.quarantine_latched,
            self.backpressure_rejections,
            self.max_drain_frames,
            self.ledger_digest,
            self.double_spends,
            self.retry_attempts,
            self.reports_unacked,
            self.truth_mean.to_bits(),
            self.truth_variance.to_bits(),
            self.truth_median.to_bits(),
            self.truth_fraction.to_bits(),
            self.quarantined.len(),
            quarantined,
            self.n_th_k,
        ));
        out
    }

    /// FNV-1a 64-bit digest of [`ServiceOutcome::canonical_text`]: equal
    /// digests witness bit-identical service runs across thread counts
    /// and device engines.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in self.canonical_text().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Per-chunk simulation result, folded on the main thread in chunk order.
struct ChunkResult {
    /// `frames[round]` holds the chunk's delivered wire bytes for that
    /// round (a round is an epoch plus the backoff/delay slack after the
    /// last epoch).
    frames: Vec<Vec<u8>>,
    /// The chunk's device ledgers, merged in device order.
    ledger: BudgetLedger,
    /// Every charge in `ledger`, in record order (for the accountant fold).
    charges: Vec<f64>,
    /// Every fresh randomization as `(device, epoch, charge)`, in device
    /// order — the keyed double-spend audit and ε-spend digest input.
    /// Chaos never touches this: it is produced by the device simulation
    /// alone.
    spends: Vec<(u32, u32, f64)>,
    excluded: Vec<u32>,
    dropped: Vec<u32>,
    /// Retransmissions attempted (beyond each report's first send).
    retry_attempts: u64,
    /// Reports whose retry budget expired without an ack.
    reports_unacked: u64,
}

/// Delivered-frame buckets for one chunk: reordered frames are staged
/// per-frame and appended after the round's in-order bytes in *reverse*
/// arrival order — the displacement the dedup window must be insensitive
/// to.
struct RoundBuckets {
    normal: Vec<Vec<u8>>,
    displaced: Vec<Vec<Vec<u8>>>,
}

impl RoundBuckets {
    fn new(rounds: usize) -> RoundBuckets {
        RoundBuckets {
            normal: vec![Vec::new(); rounds],
            displaced: vec![Vec::new(); rounds],
        }
    }

    fn deliver(&mut self, round: usize, bytes: &[u8], displaced: bool) {
        if displaced {
            self.displaced[round].push(bytes.to_vec());
        } else {
            self.normal[round].extend_from_slice(bytes);
        }
    }

    fn finalize(self) -> Vec<Vec<u8>> {
        self.normal
            .into_iter()
            .zip(self.displaced)
            .map(|(mut n, d)| {
                for frame in d.into_iter().rev() {
                    n.extend_from_slice(&frame);
                }
                n
            })
            .collect()
    }
}

/// The simulated fleet: configuration plus the derived noise model.
#[derive(Debug, Clone)]
pub struct FleetDriver {
    cfg: FleetConfig,
    model: NoiseModel,
    max_code: i64,
    /// Device-side simulation engine, from `ULP_DEVICE_ENGINE`:
    /// [`DeviceEngine::Batch`] (default) advances one [`DeviceArray`] per
    /// chunk in lockstep; [`DeviceEngine::Reference`] steps a full
    /// [`DpBox`] FSM per device. The two engines are bit-identical — every
    /// RNG stream, report byte, ledger entry, and digest matches — so the
    /// choice is purely a throughput/differential-testing knob.
    engine: DeviceEngine,
    /// Collector-side ingest pipeline, from `ULP_FLEET_INGEST_PATH`:
    /// [`IngestPath::Columnar`] (default) or [`IngestPath::Reference`].
    /// Unlike the sampler path, the two ingest paths are byte-identical —
    /// totals, digests, and the ledger do not depend on this choice.
    ingest_path: IngestPath,
}

impl FleetDriver {
    /// Validates the configuration and builds the collector-side noise
    /// model for it.
    ///
    /// # Errors
    ///
    /// [`FleetError::Config`] for empty populations/epochs/shards/chunks or
    /// an out-of-range threshold; [`FleetError::Privacy`] if the noise
    /// model cannot be built.
    pub fn new(cfg: FleetConfig) -> Result<Self, FleetError> {
        if cfg.devices == 0 {
            return Err(FleetError::Config("population must be non-empty"));
        }
        if cfg.epochs == 0 {
            return Err(FleetError::Config("need at least one epoch"));
        }
        if cfg.shards == 0 {
            return Err(FleetError::Config("need at least one shard"));
        }
        if cfg.chunk == 0 {
            return Err(FleetError::Config("chunk size must be positive"));
        }
        if cfg
            .devices
            .checked_add(cfg.malformed_senders)
            .is_none_or(|n| n > u32::MAX as usize)
        {
            return Err(FleetError::Config(
                "device ids (population + malformed senders) must fit in u32",
            ));
        }
        if cfg.retry_budget > 6 {
            return Err(FleetError::Config("retry budget must be at most 6"));
        }
        if !(cfg.quorum.is_finite() && (0.0..=1.0).contains(&cfg.quorum)) {
            return Err(FleetError::Config("quorum must be in [0, 1]"));
        }
        if let Some(chaos) = &cfg.chaos {
            chaos
                .validate()
                .map_err(|_| FleetError::Config("chaos fault class out of range"))?;
        }
        let max_code = 1i64 << cfg.adc_bits;
        if !(0..=max_code).contains(&cfg.threshold_code) {
            return Err(FleetError::Config("RR threshold outside the ADC range"));
        }
        let model = NoiseModel::for_device(
            cfg.bu,
            cfg.word_bits,
            cfg.eps_shift,
            0,
            max_code,
            &cfg.multiples,
        )?;
        let engine = DeviceEngine::from_env().map_err(LdpError::from)?;
        let ingest_path = IngestPath::from_env().map_err(LdpError::from)?;
        Ok(FleetDriver {
            cfg,
            model,
            max_code,
            engine,
            ingest_path,
        })
    }

    /// Overrides the environment-selected device engine (differential-test
    /// and benchmark hook).
    pub fn with_engine(mut self, engine: DeviceEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The device engine this driver simulates with.
    pub fn engine(&self) -> DeviceEngine {
        self.engine
    }

    /// The collector-side noise model (estimators, window, RR mechanism).
    pub fn model(&self) -> &NoiseModel {
        &self.model
    }

    /// Runs the full simulation: boot, stream, collect, estimate, audit.
    ///
    /// # Errors
    ///
    /// Propagates device-boot and mechanism-construction failures. Devices
    /// excluded by the self-test or dropped mid-stream are *not* errors —
    /// they are the fail-safe path working as designed, and are reported in
    /// the outcome.
    pub fn run(&self) -> Result<FleetOutcome, FleetError> {
        let cfg = &self.cfg;
        let truth = self.prepare_truth()?;
        let rr = self.model.rr()?;
        let chunks = self.simulate_fleet(&truth.codes_k, rr)?;

        // Stream epochs through the collector, fold ledgers chunk-major.
        let mut collector = self.fresh_collector();
        let malformed = self.malformed_rounds();

        // One concatenated batch per round (chunk order, malformed senders
        // last): the round's whole traffic reaches the collector as a
        // single stream, so the batch decoder sees realistic fan-in instead
        // of per-chunk slivers. Concatenation order is schedule-independent,
        // so determinism is unchanged.
        let rounds = self.rounds();
        let mut ingest = IngestStats::default();
        let mut round_bytes = Vec::new();
        for round in 0..rounds {
            let _span = EPOCH_SPAN.enter();
            round_bytes.clear();
            for chunk in &chunks {
                round_bytes.extend_from_slice(&chunk.frames[round]);
            }
            if let Some(bytes) = malformed.get(round) {
                round_bytes.extend_from_slice(bytes);
            }
            if !round_bytes.is_empty() {
                ingest.absorb(collector.ingest_frames(&round_bytes));
            }
        }

        let mut fleet_ledger = BudgetLedger::new();
        let mut accountant = CompositionLedger::new();
        let mut excluded: Vec<u32> = Vec::new();
        let mut dropped = 0usize;
        let mut retry_attempts = 0u64;
        let mut reports_unacked = 0u64;
        // The keyed replay: every fresh randomization, re-recorded under
        // its (device, epoch) key. A retry path that re-privatized would
        // charge one key twice and surface here as a typed DoubleSpend —
        // never as silent extra accumulation.
        let mut keyed = BudgetLedger::new();
        let mut double_spends = 0u64;
        let mut ledger_digest: u64 = 0xCBF2_9CE4_8422_2325;
        for chunk in &chunks {
            fleet_ledger.merge(&chunk.ledger);
            for &c in &chunk.charges {
                accountant.record(c);
            }
            for &(device, epoch, charge) in &chunk.spends {
                if keyed
                    .record_spend(u64::from(device), u64::from(epoch), charge)
                    .is_err()
                {
                    double_spends += 1;
                }
                for b in device
                    .to_le_bytes()
                    .into_iter()
                    .chain(epoch.to_le_bytes())
                    .chain(charge.to_bits().to_le_bytes())
                {
                    ledger_digest ^= u64::from(b);
                    ledger_digest = ledger_digest.wrapping_mul(0x0000_0100_0000_01B3);
                }
            }
            excluded.extend_from_slice(&chunk.excluded);
            dropped += chunk.dropped.len();
            retry_attempts += chunk.retry_attempts;
            reports_unacked += chunk.reports_unacked;
        }
        let audit_ok = fleet_ledger.audit(&accountant).is_ok();
        DEVICES.add(cfg.devices as u64);
        EXCLUDED.record_always(excluded.len() as u64);

        let truths = self.included_truths(&truth.codes_k, &excluded);

        // Coverage seal: expected is what a perfect transport would have
        // delivered from the included population; estimators downstream
        // already use realized counts, so a shortfall widens SE instead of
        // breaking anything — the seal just grades it.
        let expected = 2 * cfg.epochs as u64 * (cfg.devices - excluded.len()) as u64;
        let seal = EpochSeal::evaluate(expected, ingest.accepted, cfg.quorum);

        let values = collector.totals(VALUE_QUERY);
        let bits = collector.totals(RR_QUERY);
        Ok(FleetOutcome {
            devices_simulated: cfg.devices,
            devices_excluded: excluded.len(),
            devices_dropped: dropped,
            ingest,
            mean: self.model.mean(&values),
            variance: self.model.variance(&values),
            median: self.model.median(&values),
            rr_frequency: self.model.rr_frequency(&bits)?,
            rr_count: self.model.rr_count(&bits)?,
            truth_mean: truths.mean,
            truth_variance: truths.variance,
            truth_median: truths.median,
            truth_fraction: truths.fraction,
            ledger_total: fleet_ledger.total(),
            ledger_entries: fleet_ledger.len(),
            audit_ok,
            ledger_digest,
            double_spends,
            retry_attempts,
            reports_unacked,
            seal,
            quarantined: collector.quarantined_devices(),
            n_th_k: self.model.n_th_k(),
        })
    }

    /// Runs the simulation through the streaming service instead of the
    /// one-shot collector fold: the same deterministic device traffic is
    /// offered round-by-round to a [`FleetService`] (one ingest lane per
    /// simulation chunk plus one for the planted malformed senders),
    /// windows seal as the watermark passes, live snapshots are served
    /// from sealed windows, and every sealed window folds into an
    /// order-canonicalized rollup.
    ///
    /// Backpressure follows the service contract: a [`crate::Busy`]
    /// refusal triggers a drain and a same-round retry of the *same*
    /// bytes, so no admitted report is ever dropped and the outcome stays
    /// a pure function of the configuration — bit-identical at any thread
    /// count and with either device engine.
    ///
    /// # Errors
    ///
    /// Propagates device-boot and mechanism-construction failures, as
    /// [`FleetDriver::run`] does.
    pub fn run_service(&self, svc: &ServiceConfig) -> Result<ServiceOutcome, FleetError> {
        let cfg = &self.cfg;
        let truth = self.prepare_truth()?;
        let rr = self.model.rr()?;
        let chunks = self.simulate_fleet(&truth.codes_k, rr)?;
        let malformed = self.malformed_rounds();

        // Global ε-spend witness and keyed double-spend audit, identical
        // to the batch driver's: chaos and windowing act only on delivered
        // bytes, so this digest is invariant across both.
        let mut excluded: Vec<u32> = Vec::new();
        let mut dropped = 0usize;
        let mut retry_attempts = 0u64;
        let mut reports_unacked = 0u64;
        let mut keyed = BudgetLedger::new();
        let mut double_spends = 0u64;
        let mut ledger_digest: u64 = 0xCBF2_9CE4_8422_2325;
        for chunk in &chunks {
            for &(device, epoch, charge) in &chunk.spends {
                if keyed
                    .record_spend(u64::from(device), u64::from(epoch), charge)
                    .is_err()
                {
                    double_spends += 1;
                }
                for b in device
                    .to_le_bytes()
                    .into_iter()
                    .chain(epoch.to_le_bytes())
                    .chain(charge.to_bits().to_le_bytes())
                {
                    ledger_digest ^= u64::from(b);
                    ledger_digest = ledger_digest.wrapping_mul(0x0000_0100_0000_01B3);
                }
            }
            excluded.extend_from_slice(&chunk.excluded);
            dropped += chunk.dropped.len();
            retry_attempts += chunk.retry_attempts;
            reports_unacked += chunk.reports_unacked;
        }
        DEVICES.add(cfg.devices as u64);
        EXCLUDED.record_always(excluded.len() as u64);

        // Each window's share of the privacy ledger: the fresh spends
        // whose epoch falls inside the window, replayed in (chunk, device,
        // epoch) order — the canonical order the rollup audit re-folds.
        let spans = window_spans(cfg.epochs, svc.window_epochs);
        let mut window_ledgers: Vec<BudgetLedger> =
            spans.iter().map(|_| BudgetLedger::new()).collect();
        let mut window_charges: Vec<Vec<f64>> = spans.iter().map(|_| Vec::new()).collect();
        for chunk in &chunks {
            for &(device, epoch, charge) in &chunk.spends {
                let w = (epoch / svc.window_epochs) as usize;
                if window_ledgers[w]
                    .record_spend(u64::from(device), u64::from(epoch), charge)
                    .is_ok()
                {
                    window_charges[w].push(charge);
                }
            }
        }
        let reports_per_window = |w: usize| {
            let (lo, hi) = spans[w];
            2 * u64::from(hi - lo) * (cfg.devices - excluded.len()) as u64
        };

        let lanes = chunks.len() + 1;
        let malformed_lane = chunks.len();
        let mut service = FleetService::new(self.fresh_collector(), svc.clone(), lanes, cfg.epochs);
        let rounds = self.rounds();
        let mut next_seal = 0usize;
        let mut seal_window = |service: &mut FleetService, next_seal: &mut usize| {
            let w = *next_seal;
            service
                .seal_active(
                    std::mem::take(&mut window_ledgers[w]),
                    std::mem::take(&mut window_charges[w]),
                    reports_per_window(w),
                )
                .expect("windows seal in order");
            *next_seal += 1;
        };
        for round in 0..rounds {
            let _span = EPOCH_SPAN.enter();
            for (lane, chunk) in chunks.iter().enumerate() {
                let bytes = &chunk.frames[round];
                if service.offer(lane, bytes).is_err() {
                    // Typed backpressure: drain, then retry the same
                    // bytes — an empty lane always admits.
                    service.drain();
                    service.offer(lane, bytes).expect("drained lane admits");
                }
            }
            if let Some(bytes) = malformed.get(round) {
                if service.offer(malformed_lane, bytes).is_err() {
                    service.drain();
                    service
                        .offer(malformed_lane, bytes)
                        .expect("drained lane admits");
                }
            }
            let completed = round as u32 + 1;
            while service.seal_due(completed) {
                seal_window(&mut service, &mut next_seal);
            }
        }
        // Flush-seal windows whose watermark sits past the last round
        // (delivery is over, so the grace can't admit anything more).
        while service.active_window().is_some() {
            seal_window(&mut service, &mut next_seal);
        }
        // Deliveries staged after the last seal (backoff/delay slack under
        // a strict watermark) still get classified — as the typed `late`
        // outcome, never a silent drop of admitted bytes.
        service.drain();

        let snapshot = service.snapshot(&self.model)?;
        let rollup = service.rollup().finalize(svc.quorum);
        let truths = self.included_truths(&truth.codes_k, &excluded);
        let (numeric, rr_role) = crate::window::query_roles(service.collector().queries());
        let rollup_values = numeric.map(|q| &rollup.totals[q]);
        let rollup_bits = rr_role.map(|q| &rollup.totals[q]);
        Ok(ServiceOutcome {
            devices_simulated: cfg.devices,
            devices_excluded: excluded.len(),
            devices_dropped: dropped,
            windows_sealed: service.sealed_windows().len(),
            window_digests: service
                .sealed_windows()
                .iter()
                .map(|w| w.digest())
                .collect(),
            window_seals: service.sealed_windows().iter().map(|w| w.seal).collect(),
            snapshot,
            rollup_mean: rollup_values.and_then(|t| self.model.mean(t)),
            rollup_variance: rollup_values.and_then(|t| self.model.variance(t)),
            rollup_median: rollup_values.and_then(|t| self.model.median(t)),
            rollup_rr_frequency: match rollup_bits {
                Some(t) => self.model.rr_frequency(t)?,
                None => None,
            },
            rollup_ledger_total: rollup.ledger.total(),
            rollup_ledger_entries: rollup.ledger.len(),
            rollup_seal: rollup.seal,
            rollup_digest: rollup.digest,
            audit_ok: rollup.audit_ok,
            stats: service.stats(),
            backpressure_rejections: service.backpressure_rejections(),
            max_drain_frames: service.max_drain_frames(),
            ledger_digest,
            double_spends,
            retry_attempts,
            reports_unacked,
            truth_mean: truths.mean,
            truth_variance: truths.variance,
            truth_median: truths.median,
            truth_fraction: truths.fraction,
            quarantined: service.collector().quarantined_devices(),
            n_th_k: self.model.n_th_k(),
            seal_ns: service.seal_ns().to_vec(),
        })
    }

    /// Draws the population's ground-truth sensor codes from the dataset
    /// spec (shared by the batch and service drivers).
    fn prepare_truth(&self) -> Result<GroundTruth, FleetError> {
        let cfg = &self.cfg;
        Ok(GroundTruth::prepare(
            &DatasetSpec {
                entries: cfg.devices,
                ..cfg.spec.clone()
            },
            2f64.powi(-i32::from(cfg.eps_shift)),
            cfg.seed,
        )?)
    }

    /// Simulates every device in fixed-size chunks; `par_map` returns
    /// chunk results in chunk order regardless of schedule.
    fn simulate_fleet(
        &self,
        codes_k: &[i64],
        rr: RandomizedResponse,
    ) -> Result<Vec<ChunkResult>, FleetError> {
        let cfg = &self.cfg;
        let chunk_starts: Vec<u32> = (0..cfg.devices as u32).step_by(cfg.chunk).collect();
        let chunk_results: Vec<Result<ChunkResult, FleetError>> = {
            let _span = SIM_SPAN.enter();
            ulp_par::par_map(&chunk_starts, |&start| {
                let end = (start as usize + cfg.chunk).min(cfg.devices) as u32;
                match self.engine {
                    DeviceEngine::Batch => self.simulate_chunk_batch(start, end, codes_k, rr),
                    DeviceEngine::Reference => self.simulate_chunk(start, end, codes_k, rr),
                }
            })
        };
        let mut chunks = Vec::with_capacity(chunk_results.len());
        for r in chunk_results {
            chunks.push(r?);
        }
        Ok(chunks)
    }

    /// A fresh collector registered for the fleet's two queries.
    fn fresh_collector(&self) -> Collector {
        let cfg = &self.cfg;
        Collector::new(
            cfg.shards,
            &[
                QueryConfig {
                    id: VALUE_QUERY,
                    kind: QueryKind::Numeric {
                        sketch_min_k: self.model.window_lo(),
                        sketch_max_k: self.model.window_hi(),
                    },
                },
                QueryConfig {
                    id: RR_QUERY,
                    kind: QueryKind::RrBit,
                },
            ],
        )
        .with_ingest_path(self.ingest_path)
        // Every id the fleet mints (population + planted malformed
        // senders) takes the flat accumulate route; only forged ids
        // recovered from corrupted bytes fall back to the hash maps.
        .with_device_capacity((cfg.devices + cfg.malformed_senders) as u32)
    }

    /// Planted malformed senders: checksum-valid frames for an
    /// unregistered query, enough per epoch to trip the default strike
    /// limit in the very first batch. Their ids sit above the population,
    /// so they touch no truth and no ledger.
    fn malformed_rounds(&self) -> Vec<Vec<u8>> {
        let cfg = &self.cfg;
        (0..cfg.epochs)
            .map(|epoch| {
                let mut bytes = Vec::new();
                for m in 0..cfg.malformed_senders {
                    let id = (cfg.devices + m) as u32;
                    for burst in 0..4 {
                        Report {
                            device: id,
                            query: 0x7FFF,
                            epoch,
                            payload: Payload::Value(burst),
                        }
                        .encode_into(&mut bytes);
                    }
                }
                bytes
            })
            .collect()
    }

    /// Included-population ground truth: exclusion happens before any
    /// value-dependent computation, so this is an unbiased subsample.
    fn included_truths(&self, codes_k: &[i64], excluded: &[u32]) -> Truths {
        let excluded_set: std::collections::HashSet<u32> = excluded.iter().copied().collect();
        let included: Vec<i64> = codes_k
            .iter()
            .enumerate()
            .filter(|(i, _)| !excluded_set.contains(&(*i as u32)))
            .map(|(_, &k)| k)
            .collect();
        let n = included.len().max(1) as f64;
        let mean = included.iter().map(|&k| k as f64).sum::<f64>() / n;
        let variance = included
            .iter()
            .map(|&k| (k as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        let median = {
            let mut sorted = included.clone();
            sorted.sort_unstable();
            sorted
                .get(sorted.len().saturating_sub(1) / 2)
                .map_or(f64::NAN, |&k| k as f64)
        };
        let fraction = included
            .iter()
            .filter(|&&k| k >= self.cfg.threshold_code)
            .count() as f64
            / n;
        Truths {
            mean,
            variance,
            median,
            fraction,
        }
    }

    /// Delivery rounds per run: the configured epochs plus, under chaos,
    /// the slack the last epoch's backoff and delivery delays can reach
    /// into.
    fn rounds(&self) -> usize {
        let cfg = &self.cfg;
        let slack = if cfg.chaos.is_some() {
            (1usize << cfg.retry_budget) - 1 + MAX_DELAY_ROUNDS as usize
        } else {
            0
        };
        cfg.epochs as usize + slack
    }

    /// Sends one cached report through the uplink: the first attempt plus
    /// up to `retry_budget` retransmissions of the *same bytes* under
    /// exponential backoff (attempt `a` departs at `epoch + 2^a − 1`).
    /// Returns `(extra_attempts, acked)`.
    fn transmit(
        &self,
        chaos: Option<&mut DeviceChaos>,
        frame: &[u8; crate::wire::FRAME_LEN],
        epoch: usize,
        buckets: &mut RoundBuckets,
    ) -> (u64, bool) {
        let Some(chaos) = chaos else {
            // Perfect wire: one attempt, delivered in its own epoch.
            buckets.deliver(epoch, frame, false);
            return (0, true);
        };
        let mut extra = 0u64;
        for attempt in 0..=self.cfg.retry_budget {
            if attempt > 0 {
                extra += 1;
            }
            let send_round = epoch + (1usize << attempt) - 1;
            let outcome = chaos.attempt(frame);
            if let Some(d) = outcome.delivery {
                buckets.deliver(send_round + d.delay_rounds as usize, &d.bytes, d.displaced);
            }
            if outcome.acked {
                return (extra, true);
            }
        }
        (extra, false)
    }

    /// Simulates devices `[start, end)`: boot each through the hardware
    /// command sequence, privatize **at most once** per `(query, epoch)`,
    /// and push the cached report bytes through the (possibly chaotic)
    /// uplink.
    fn simulate_chunk(
        &self,
        start: u32,
        end: u32,
        codes_k: &[i64],
        rr: RandomizedResponse,
    ) -> Result<ChunkResult, FleetError> {
        let rounds = self.rounds();
        let mut buckets = RoundBuckets::new(rounds);
        let mut out = ChunkResult {
            frames: Vec::new(),
            ledger: BudgetLedger::new(),
            charges: Vec::new(),
            spends: Vec::new(),
            excluded: Vec::new(),
            dropped: Vec::new(),
            retry_attempts: 0,
            reports_unacked: 0,
        };
        for id in start..end {
            self.simulate_device_scalar(id, codes_k[id as usize], rr, &mut buckets, &mut out)?;
        }
        out.frames = buckets.finalize();
        Ok(out)
    }

    /// One device's full scalar simulation — a [`DpBox`] FSM booted,
    /// stepped one `noise_value` per epoch, and its cached report bytes
    /// pushed through the uplink. Shared by the reference engine (every
    /// device) and the batch engine (faulty-URNG sidecar).
    fn simulate_device_scalar(
        &self,
        id: u32,
        x_code: i64,
        rr: RandomizedResponse,
        buckets: &mut RoundBuckets,
        out: &mut ChunkResult,
    ) -> Result<(), FleetError> {
        let cfg = &self.cfg;
        let epochs = cfg.epochs as usize;
        {
            let faulty = Self::is_faulty(cfg, id);
            let urng = if faulty {
                FleetUrng::Faulty(CorrelatedBits::new(
                    Taus88::from_seed(stream_seed(cfg.seed, &[u64::from(id), 1])),
                    1,
                    230,
                ))
            } else {
                FleetUrng::Healthy(Taus88::from_seed(stream_seed(
                    cfg.seed,
                    &[u64::from(id), 0],
                )))
            };
            let mut dev = DpBox::with_urng(
                DpBoxConfig {
                    word_bits: cfg.word_bits,
                    frac_bits: 0,
                    bu: cfg.bu,
                    cordic_iterations: 24,
                    segment_multiples: cfg.multiples.clone(),
                    seed: 0, // ignored: the URNG is caller-supplied
                },
                urng,
            )?;
            // Power-on self-test: a short APT window keeps the startup
            // draw cheap while the lag-correlation test still catches the
            // wired fault deterministically.
            dev.set_health_config(
                HealthConfig::new(40, 64, 4).map_err(|e| FleetError::Device(DpBoxError::Rng(e)))?,
            );
            dev.issue(Command::ResetHealth, 0)?;
            if dev.phase() == Phase::HealthFault {
                out.excluded.push(id);
                return Ok(());
            }
            // Initialization phase: budget, then freeze into waiting.
            dev.issue(Command::SetEpsilon, cfg.budget_raw)?;
            dev.issue(Command::StartNoising, 0)?;
            // Waiting phase: per-reading privacy level, range, mode.
            dev.issue(Command::SetEpsilon, i64::from(cfg.eps_shift))?;
            dev.issue(Command::SetSensorRangeLower, 0)?;
            dev.issue(Command::SetSensorRangeUpper, self.max_code)?;
            dev.issue(Command::SetThreshold, 0)?; // resampling → thresholding
            let mut rr_rng = Taus88::from_seed(stream_seed(cfg.seed, &[u64::from(id), 2]));
            let above = x_code >= cfg.threshold_code;
            // The transport state is per-device and seeded from the chaos
            // seed alone, so the fault pattern is independent of chunk
            // partition and thread schedule.
            let mut chaos = cfg.chaos.as_ref().map(|c| DeviceChaos::new(c, id));
            for epoch in 0..epochs {
                // Privatize AT MOST ONCE per (query, epoch): the encoded
                // frames below are the cached bytes every retransmission
                // replays verbatim. A fresh ledger charge is keyed by
                // (device, epoch) for the double-spend audit.
                let before = dev.ledger().len();
                let value_frame = match dev.noise_value(x_code) {
                    Ok((y, _cycles)) => Report {
                        device: id,
                        query: VALUE_QUERY,
                        epoch: epoch as u32,
                        payload: Payload::Value(y as i32),
                    }
                    .encode(),
                    // Fail-safe paths (runtime health trip, budget halt):
                    // the device stops reporting; the fleet records it.
                    Err(DpBoxError::UrngHealthFault(_)) | Err(DpBoxError::BudgetExhausted) => {
                        out.dropped.push(id);
                        break;
                    }
                    Err(e) => return Err(e.into()),
                };
                if dev.ledger().len() > before {
                    let entry = dev.ledger().entries()[before];
                    out.spends.push((id, epoch as u32, entry.charge));
                }
                let rr_frame = Report {
                    device: id,
                    query: RR_QUERY,
                    epoch: epoch as u32,
                    payload: Payload::RrBit(rr.privatize(above, &mut rr_rng)),
                }
                .encode();
                for frame in [&value_frame, &rr_frame] {
                    let (extra, acked) = self.transmit(chaos.as_mut(), frame, epoch, buckets);
                    out.retry_attempts += extra;
                    out.reports_unacked += u64::from(!acked);
                }
            }
            out.charges.extend(dev.accountant().losses());
            out.ledger.merge(dev.ledger());
        }
        Ok(())
    }

    /// Whether `id`'s URNG is wired through the correlated-bits fault — a
    /// pure function of `(seed, id)`, identical in both engines.
    fn is_faulty(cfg: &FleetConfig, id: u32) -> bool {
        stream_seed(cfg.seed, &[u64::from(id), 7]) % 1000 < u64::from(cfg.faulty_per_mille)
    }

    /// The batch engine: identical power-on self-tests, RNG streams,
    /// noising dataflow, frame bytes, and ledger records as
    /// [`FleetDriver::simulate_chunk`] — proven bit-for-bit by the
    /// differential test matrix — but the chunk's healthy-URNG devices
    /// advance in lockstep as one [`DeviceArray`] (vectorized startup
    /// self-test, memoized CORDIC, no per-device FSM allocation). Devices
    /// wired through the correlated-bits fault keep the scalar [`DpBox`]
    /// sidecar: they exist to exercise the full fault-latch machinery.
    ///
    /// Frames are emitted in device-id order from the precomputed lane
    /// outcomes, so every round's byte stream — and therefore every ingest
    /// stat, estimate, and digest — matches the reference engine exactly.
    fn simulate_chunk_batch(
        &self,
        start: u32,
        end: u32,
        codes_k: &[i64],
        rr: RandomizedResponse,
    ) -> Result<ChunkResult, FleetError> {
        let cfg = &self.cfg;
        let epochs = cfg.epochs as usize;
        let rounds = self.rounds();
        let mut buckets = RoundBuckets::new(rounds);
        let mut out = ChunkResult {
            frames: Vec::new(),
            ledger: BudgetLedger::new(),
            charges: Vec::new(),
            spends: Vec::new(),
            excluded: Vec::new(),
            dropped: Vec::new(),
            retry_attempts: 0,
            reports_unacked: 0,
        };
        // Partition the chunk: healthy devices become array lanes (their
        // RNG streams are independent, so lockstep advance is safe);
        // faulty devices take the scalar sidecar during emission.
        let n = (end - start) as usize;
        let mut lane_of: Vec<Option<u32>> = vec![None; n];
        let mut seeds = Vec::with_capacity(n);
        for id in start..end {
            if !Self::is_faulty(cfg, id) {
                lane_of[(id - start) as usize] = Some(seeds.len() as u32);
                seeds.push(stream_seed(cfg.seed, &[u64::from(id), 0]));
            }
        }
        let array_cfg = DeviceArrayConfig {
            word_bits: cfg.word_bits,
            frac_bits: 0,
            bu: cfg.bu,
            cordic_iterations: 24,
            segment_multiples: cfg.multiples.clone(),
            // The same short-window power-on self-test the scalar boot
            // configures via `set_health_config`.
            health: HealthConfig::new(40, 64, 4)
                .map_err(|e| FleetError::Device(DpBoxError::Rng(e)))?,
            budget_raw: cfg.budget_raw,
            eps_shift: cfg.eps_shift,
            range_lower: 0,
            range_upper: self.max_code,
        };
        let mut array = DeviceArray::new(&array_cfg, &seeds)?;
        let mut xs = vec![0i64; seeds.len()];
        for id in start..end {
            if let Some(lane) = lane_of[(id - start) as usize] {
                xs[lane as usize] = codes_k[id as usize];
            }
        }
        // Advance every lane through all epochs, column-wise.
        let matrix: Vec<Vec<LaneOutcome>> = array.step_epochs(&xs, epochs);
        // Emission in device-id order: the exact per-device frame, spend,
        // and ledger sequence the reference engine produces.
        for id in start..end {
            let Some(lane) = lane_of[(id - start) as usize] else {
                self.simulate_device_scalar(id, codes_k[id as usize], rr, &mut buckets, &mut out)?;
                continue;
            };
            let lane = lane as usize;
            if array.is_excluded(lane) {
                out.excluded.push(id);
                continue;
            }
            let x_code = codes_k[id as usize];
            let mut rr_rng = Taus88::from_seed(stream_seed(cfg.seed, &[u64::from(id), 2]));
            let above = x_code >= cfg.threshold_code;
            let mut chaos = cfg.chaos.as_ref().map(|c| DeviceChaos::new(c, id));
            for (epoch, col) in matrix.iter().enumerate() {
                let y = match col[lane] {
                    LaneOutcome::Fresh { y, charge } => {
                        out.spends.push((id, epoch as u32, charge));
                        out.ledger.record(charge);
                        out.charges.push(charge);
                        y
                    }
                    LaneOutcome::Cached { y } => y,
                    LaneOutcome::Dropped => {
                        out.dropped.push(id);
                        break;
                    }
                };
                let value_frame = Report {
                    device: id,
                    query: VALUE_QUERY,
                    epoch: epoch as u32,
                    payload: Payload::Value(y as i32),
                }
                .encode();
                let rr_frame = Report {
                    device: id,
                    query: RR_QUERY,
                    epoch: epoch as u32,
                    payload: Payload::RrBit(rr.privatize(above, &mut rr_rng)),
                }
                .encode();
                for frame in [&value_frame, &rr_frame] {
                    let (extra, acked) = self.transmit(chaos.as_mut(), frame, epoch, &mut buckets);
                    out.retry_attempts += extra;
                    out.reports_unacked += u64::from(!acked);
                }
            }
        }
        out.frames = buckets.finalize();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(devices: usize) -> FleetConfig {
        FleetConfig {
            chunk: 64,
            ..FleetConfig::paper_default(devices, 2, 99)
        }
    }

    #[test]
    fn config_validation_rejects_degenerate_fleets() {
        for (mutate, msg) in [
            (
                Box::new(|c: &mut FleetConfig| c.devices = 0) as Box<dyn Fn(&mut FleetConfig)>,
                "population",
            ),
            (Box::new(|c: &mut FleetConfig| c.epochs = 0), "epoch"),
            (Box::new(|c: &mut FleetConfig| c.shards = 0), "shard"),
            (Box::new(|c: &mut FleetConfig| c.chunk = 0), "chunk"),
            (
                Box::new(|c: &mut FleetConfig| c.threshold_code = 1 << 12),
                "threshold",
            ),
        ] {
            let mut cfg = small_cfg(10);
            mutate(&mut cfg);
            // `expect_err` needs `FleetDriver: Debug`, which it doesn't carry.
            let Err(err) = FleetDriver::new(cfg).map(|_| ()) else {
                panic!("expected a config error mentioning {msg:?}");
            };
            assert!(err.to_string().contains(msg), "{err} missing {msg:?}");
        }
    }

    #[test]
    fn small_fleet_runs_audits_and_reports() {
        let driver = FleetDriver::new(small_cfg(200)).unwrap();
        let out = driver.run().unwrap();
        assert_eq!(out.devices_simulated, 200);
        assert_eq!(out.devices_dropped, 0);
        assert!(out.audit_ok, "fleet ledger must audit clean");
        assert_eq!(out.ingest.rejected, 0);
        // Every included device reports one value + one bit per epoch.
        let included = 200 - out.devices_excluded as u64;
        assert_eq!(out.ingest.accepted, included * 2 * 2);
        assert_eq!(out.ledger_entries as u64, included * 2);
        let mean = out.mean.unwrap();
        assert!(mean.value.is_finite() && mean.stderr > 0.0);
        assert!(out.rr_frequency.unwrap().value >= 0.0);
        assert!(out.median.is_some() && out.variance.is_some());
    }

    #[test]
    fn faulty_devices_are_excluded_before_reporting() {
        // Every device faulty: the self-test must exclude the whole fleet.
        let cfg = FleetConfig {
            faulty_per_mille: 1000,
            ..small_cfg(50)
        };
        let out = FleetDriver::new(cfg).unwrap().run().unwrap();
        assert_eq!(out.devices_excluded, 50);
        assert_eq!(out.ingest.accepted, 0);
        assert_eq!(out.ledger_entries, 0);
        assert!(out.mean.is_none());
    }

    #[test]
    fn clean_runs_seal_full_with_no_retries() {
        let out = FleetDriver::new(small_cfg(200)).unwrap().run().unwrap();
        assert!(out.seal.is_full());
        assert_eq!(out.seal.coverage, 1.0);
        assert_eq!(out.retry_attempts, 0);
        assert_eq!(out.reports_unacked, 0);
        assert_eq!(out.double_spends, 0);
        assert!(out.quarantined.is_empty());
    }

    #[test]
    fn chaos_preserves_the_ledger_digest_bitwise() {
        use crate::chaos::{ChaosConfig, FaultClass};
        let quiet = FleetDriver::new(small_cfg(300)).unwrap().run().unwrap();
        let chaotic = FleetDriver::new(FleetConfig {
            chaos: Some(ChaosConfig {
                drop: FaultClass::bursty(0.1, 4.0),
                duplicate: FaultClass::flat(0.1),
                corrupt: FaultClass::flat(0.05),
                reorder: FaultClass::flat(0.05),
                delay: FaultClass::flat(0.05),
                truncate: FaultClass::flat(0.02),
                ..ChaosConfig::quiet(0xC0FFEE)
            }),
            ..small_cfg(300)
        })
        .unwrap()
        .run()
        .unwrap();
        // Retries replay cached bytes: ε-spend is bitwise identical with
        // and without transport faults.
        assert_eq!(quiet.ledger_digest, chaotic.ledger_digest);
        assert_eq!(quiet.ledger_total.to_bits(), chaotic.ledger_total.to_bits());
        assert_eq!(quiet.ledger_entries, chaotic.ledger_entries);
        assert_eq!(chaotic.double_spends, 0);
        assert!(chaotic.audit_ok);
        // The faults actually fired and the dedup window folded the
        // retransmissions away.
        assert!(chaotic.retry_attempts > 0);
        assert!(chaotic.ingest.duplicates > 0);
        assert!(chaotic.ingest.corrupt_frames > 0);
        // Truths are transport-independent.
        assert_eq!(quiet.truth_mean.to_bits(), chaotic.truth_mean.to_bits());
        assert_eq!(quiet.devices_excluded, chaotic.devices_excluded);
    }

    #[test]
    fn malformed_senders_are_latched_without_touching_estimates() {
        let clean = FleetDriver::new(small_cfg(200)).unwrap().run().unwrap();
        let out = FleetDriver::new(FleetConfig {
            malformed_senders: 3,
            ..small_cfg(200)
        })
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(out.quarantined, vec![200, 201, 202]);
        assert_eq!(out.ingest.quarantine_latched, 3);
        // Their garbage never reaches an accumulator: every estimate is
        // bit-identical to the clean run.
        assert_eq!(clean.mean, out.mean);
        assert_eq!(clean.rr_frequency, out.rr_frequency);
        assert_eq!(clean.ingest.accepted, out.ingest.accepted);
    }

    #[test]
    fn heavy_loss_degrades_the_seal_instead_of_panicking() {
        use crate::chaos::{ChaosConfig, FaultClass};
        let out = FleetDriver::new(FleetConfig {
            chaos: Some(ChaosConfig {
                drop: FaultClass::bursty(0.5, 8.0),
                ..ChaosConfig::quiet(13)
            }),
            retry_budget: 0,
            ..small_cfg(300)
        })
        .unwrap()
        .run()
        .unwrap();
        assert!(!out.seal.is_full(), "50% drop with no retries must degrade");
        let SealStatus::Degraded { coverage } = out.seal.status else {
            panic!("expected a degraded seal");
        };
        assert!(coverage < 0.9 && coverage > 0.2, "coverage {coverage}");
        // Estimates still come out, debiased, with SE from realized counts.
        let mean = out.mean.expect("estimates survive degraded coverage");
        assert!(mean.value.is_finite() && mean.stderr > 0.0);
    }

    #[test]
    fn device_engine_parses_strictly() {
        assert_eq!(DeviceEngine::parse(None), Ok(DeviceEngine::Batch));
        assert_eq!(DeviceEngine::parse(Some("batch")), Ok(DeviceEngine::Batch));
        assert_eq!(
            DeviceEngine::parse(Some(" Reference ")),
            Ok(DeviceEngine::Reference)
        );
        let err = DeviceEngine::parse(Some("fast")).unwrap_err();
        assert_eq!(err.var, DEVICE_ENGINE_ENV);
        assert_eq!(err.expected, "batch | reference");
    }

    #[test]
    fn batch_engine_matches_reference_bit_for_bit() {
        let cfg = FleetConfig {
            malformed_senders: 2,
            shards: 3,
            ..small_cfg(300)
        };
        let batch = FleetDriver::new(cfg.clone())
            .unwrap()
            .with_engine(DeviceEngine::Batch)
            .run()
            .unwrap();
        let reference = FleetDriver::new(cfg)
            .unwrap()
            .with_engine(DeviceEngine::Reference)
            .run()
            .unwrap();
        // The full canonical outcome — estimates, ingest stats, truths,
        // ledger, seal, quarantine — must be byte-identical.
        assert_eq!(batch.canonical_text(), reference.canonical_text());
        assert_eq!(batch.digest(), reference.digest());
        assert_eq!(batch.ledger_digest, reference.ledger_digest);
        assert!(batch.devices_excluded > 0, "the 5‰ fault plant must fire");
    }

    #[test]
    fn batch_engine_matches_reference_under_chaos() {
        use crate::chaos::{ChaosConfig, FaultClass};
        let cfg = FleetConfig {
            chaos: Some(ChaosConfig {
                drop: FaultClass::bursty(0.1, 4.0),
                duplicate: FaultClass::flat(0.1),
                corrupt: FaultClass::flat(0.05),
                reorder: FaultClass::flat(0.05),
                delay: FaultClass::flat(0.05),
                truncate: FaultClass::flat(0.02),
                ..ChaosConfig::quiet(0xBEEF)
            }),
            ..small_cfg(300)
        };
        let batch = FleetDriver::new(cfg.clone())
            .unwrap()
            .with_engine(DeviceEngine::Batch)
            .run()
            .unwrap();
        let reference = FleetDriver::new(cfg)
            .unwrap()
            .with_engine(DeviceEngine::Reference)
            .run()
            .unwrap();
        assert_eq!(batch.canonical_text(), reference.canonical_text());
        assert_eq!(batch.ledger_digest, reference.ledger_digest);
        assert!(batch.retry_attempts > 0, "chaos must actually fire");
    }

    #[test]
    fn outcome_is_identical_at_any_thread_and_shard_count() {
        let base = FleetDriver::new(small_cfg(300)).unwrap().run().unwrap();
        let resharded = FleetDriver::new(FleetConfig {
            shards: 7,
            chunk: 17,
            ..small_cfg(300)
        })
        .unwrap()
        .run()
        .unwrap();
        // Different shard/chunk partitions, same reports: every estimate
        // matches exactly.
        assert_eq!(base.mean, resharded.mean);
        assert_eq!(base.variance, resharded.variance);
        assert_eq!(base.median, resharded.median);
        assert_eq!(base.rr_frequency, resharded.rr_frequency);
        assert_eq!(base.ledger_total, resharded.ledger_total);
        assert_eq!(base.devices_excluded, resharded.devices_excluded);
    }

    #[test]
    fn service_mode_matches_the_batch_driver() {
        let driver = FleetDriver::new(small_cfg(200)).unwrap();
        let batch = driver.run().unwrap();
        let svc = driver.run_service(&ServiceConfig::new(1, 1 << 20)).unwrap();
        // One window per epoch, all full: the windowed fold accepts the
        // exact same reports and charges the exact same ε-spends.
        assert_eq!(svc.windows_sealed, 2);
        assert!(svc.window_seals.iter().all(|s| s.is_full()));
        assert_eq!(svc.stats.accepted, batch.ingest.accepted);
        assert_eq!(svc.stats.late, 0);
        assert_eq!(svc.ledger_digest, batch.ledger_digest);
        assert_eq!(svc.double_spends, 0);
        assert!(svc.audit_ok, "rollup ledger must audit clean");
        assert_eq!(svc.backpressure_rejections, 0);
        // The rollup merges the windows back into the whole-run totals,
        // so its estimates are bit-equal to the batch driver's.
        assert_eq!(svc.rollup_mean, batch.mean);
        assert_eq!(svc.rollup_variance, batch.variance);
        assert_eq!(svc.rollup_median, batch.median);
        assert_eq!(svc.rollup_rr_frequency, batch.rr_frequency);
        // The live snapshot served one estimate set per sealed window.
        assert_eq!(svc.snapshot.windows_sealed, 2);
        assert!(svc.snapshot.windows[0].mean.is_some());
    }

    #[test]
    fn service_outcome_is_engine_invariant() {
        let cfg = FleetConfig {
            epochs: 4,
            ..small_cfg(200)
        };
        let svc_cfg = ServiceConfig::new(2, 1 << 20);
        let batch = FleetDriver::new(cfg.clone())
            .unwrap()
            .with_engine(DeviceEngine::Batch)
            .run_service(&svc_cfg)
            .unwrap();
        let reference = FleetDriver::new(cfg)
            .unwrap()
            .with_engine(DeviceEngine::Reference)
            .run_service(&svc_cfg)
            .unwrap();
        assert_eq!(batch.canonical_text(), reference.canonical_text());
        assert_eq!(batch.digest(), reference.digest());
        assert_eq!(batch.windows_sealed, 2);
    }

    #[test]
    fn undersized_queues_backpressure_without_losing_reports() {
        // One 2-epoch window: no seal-drain between the two rounds, so an
        // 8-frame lane must refuse the second round's 128-frame batch.
        let driver = FleetDriver::new(small_cfg(200)).unwrap();
        let roomy = driver.run_service(&ServiceConfig::new(2, 1 << 20)).unwrap();
        let squeezed = driver.run_service(&ServiceConfig::new(2, 8)).unwrap();
        assert!(
            squeezed.backpressure_rejections > 0,
            "an 8-frame queue must refuse 128-frame rounds"
        );
        // Refusal + retry-after-drain loses nothing: the accepted totals,
        // window digests, and estimates are identical to the roomy run.
        assert_eq!(squeezed.stats.accepted, roomy.stats.accepted);
        assert_eq!(squeezed.window_digests, roomy.window_digests);
        assert_eq!(squeezed.rollup_mean, roomy.rollup_mean);
        assert_eq!(squeezed.rollup_digest, roomy.rollup_digest);
    }

    #[test]
    fn service_under_chaos_respects_the_watermark_grace() {
        use crate::chaos::{ChaosConfig, FaultClass};
        let cfg = FleetConfig {
            chaos: Some(ChaosConfig {
                drop: FaultClass::bursty(0.1, 4.0),
                duplicate: FaultClass::flat(0.1),
                corrupt: FaultClass::flat(0.05),
                reorder: FaultClass::flat(0.05),
                truncate: FaultClass::flat(0.02),
                delay: FaultClass::flat(0.05),
                seed: 7,
            }),
            ..small_cfg(300)
        };
        let driver = FleetDriver::new(cfg.clone()).unwrap();
        let batch = driver.run().unwrap();
        let slack = (driver.rounds() - cfg.epochs as usize) as u32;
        // With the grace covering the full backoff/delay slack, every
        // delayed frame lands before its window seals: nothing is late and
        // the service accepts exactly what the batch driver accepted.
        let graced = driver
            .run_service(&ServiceConfig::new(1, 1 << 20).with_watermark_lag(slack))
            .unwrap();
        assert_eq!(graced.stats.late, 0);
        assert_eq!(graced.stats.accepted, batch.ingest.accepted);
        assert_eq!(graced.ledger_digest, batch.ledger_digest);
        assert!(graced.audit_ok);
        // With no grace, the same delayed frames surface as the typed
        // `late` outcome instead of vanishing (chaos run at these rates
        // reliably delays frames past their epoch).
        let strict = driver
            .run_service(&ServiceConfig::new(1, 1 << 20).with_quorum(0.5))
            .unwrap();
        assert!(strict.stats.late > 0, "delays must surface as late");
        // Late frames are refusals, not absorptions: the strict run
        // accepts a subset of the batch driver's reports, and every
        // missing acceptance is covered by at least one late-counted
        // delivery (a report can also go late *more* than once via
        // post-seal redeliveries).
        assert!(strict.stats.accepted < batch.ingest.accepted);
        assert!(strict.stats.accepted + strict.stats.late >= batch.ingest.accepted);
        assert_eq!(strict.ledger_digest, batch.ledger_digest);
    }
}
