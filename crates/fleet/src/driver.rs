//! The simulated-fleet driver: N DP-Box devices streaming into a collector.
//!
//! Each device is a full [`dp_box::DpBox`] instance — FSM, budget ledger,
//! URNG health monitor — not a shortcut around the device model. The driver
//!
//! 1. draws a population of sensor values from a dataset spec (via
//!    [`ldp_eval::GroundTruth`], the shared ground-truth preparation);
//! 2. boots every device through the hardware command sequence, running the
//!    power-on URNG self-test first so devices with degraded bit sources
//!    fail safe *before emitting a single report* (a value-independent
//!    exclusion, hence unbiased);
//! 3. streams epochs of wire-encoded reports through a sharded
//!    [`Collector`];
//! 4. folds every device's budget ledger into one auditable fleet ledger;
//! 5. returns debiased estimates next to the included-population ground
//!    truth.
//!
//! # Determinism
//!
//! Every random stream is seeded by [`ulp_rng::stream_seed`] from
//! `(master seed, device id, role)`, device simulation fans out over
//! [`ulp_par::par_map`] in fixed-size chunks, and the collector's shard
//! partition hashes device ids — so the outcome is a pure function of the
//! configuration, bit-identical at any thread count and shard count.

use core::fmt;

use dp_box::{Command, DpBox, DpBoxConfig, DpBoxError, HealthConfig, Phase};
use ldp_core::{BudgetLedger, CompositionLedger, LdpError, RandomizedResponse};
use ldp_datasets::DatasetSpec;
use ldp_eval::GroundTruth;
use ulp_obs::{Counter, SpanTimer};
use ulp_rng::{stream_seed, CorrelatedBits, RandomBits, Taus88};

use crate::collector::{Collector, IngestStats, QueryConfig, QueryKind};
use crate::estimator::{Estimate, NoiseModel};
use crate::wire::{Payload, Report};

/// Devices booted, process-wide.
static DEVICES: Counter = Counter::new("fleet.devices.simulated");
/// Devices excluded by the power-on URNG self-test — recorded at every
/// metrics level: a fleet silently dropping devices must be visible.
static EXCLUDED: Counter = Counter::new("fleet.devices.excluded");
/// Wall-clock of each streamed epoch (simulation + ingest).
static EPOCH_SPAN: SpanTimer = SpanTimer::new("fleet.driver.epoch");

/// Wire query id carrying fixed-point noised values.
pub const VALUE_QUERY: u16 = 0;
/// Wire query id carrying randomized-response threshold bits.
pub const RR_QUERY: u16 = 1;

/// Fleet simulation parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Population size (devices).
    pub devices: usize,
    /// Reporting epochs to stream.
    pub epochs: u32,
    /// Master seed every per-device stream derives from.
    pub seed: u64,
    /// Collector shard count.
    pub shards: usize,
    /// Dataset the sensor values are drawn from (`entries` is overridden
    /// by `devices`).
    pub spec: DatasetSpec,
    /// Privacy shift `n_m` (per-report ε = 2^−n_m).
    pub eps_shift: u8,
    /// ADC resolution in bits (codes span `[0, 2^adc_bits]`).
    pub adc_bits: u8,
    /// URNG width `Bu`.
    pub bu: u8,
    /// Datapath word width.
    pub word_bits: u8,
    /// Per-device privacy budget, in raw grid units of nats (loaded with
    /// the initialization-phase `SetEpsilon` overload).
    pub budget_raw: i64,
    /// Devices per thousand whose URNG is wired through a correlated-bits
    /// fault (they must fail the power-on self-test and be excluded).
    pub faulty_per_mille: u32,
    /// RR threshold: each device reports `RR(x ≥ threshold_code)`.
    pub threshold_code: i64,
    /// Devices per parallel simulation chunk.
    pub chunk: usize,
    /// Budget-control segment multiples.
    pub multiples: Vec<f64>,
}

impl FleetConfig {
    /// The paper's operating point (`Bu = 17`, 8-bit ADC, 20-bit word,
    /// ε = ½) on a statlog-heart population, 5‰ faulty devices.
    pub fn paper_default(devices: usize, epochs: u32, seed: u64) -> Self {
        FleetConfig {
            devices,
            epochs,
            seed,
            shards: 4,
            spec: ldp_datasets::statlog_heart(),
            eps_shift: 1,
            adc_bits: 8,
            bu: 17,
            word_bits: 20,
            budget_raw: 1 << 18,
            faulty_per_mille: 5,
            threshold_code: 128,
            chunk: 1024,
            multiples: vec![1.5, 2.0, 2.5, 3.0],
        }
    }
}

/// Why a fleet run could not be carried out.
#[derive(Debug)]
pub enum FleetError {
    /// A configuration field failed validation.
    Config(&'static str),
    /// A device rejected the boot command sequence.
    Device(DpBoxError),
    /// Noise-model or mechanism construction failed.
    Privacy(LdpError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Config(msg) => write!(f, "invalid fleet config: {msg}"),
            FleetError::Device(e) => write!(f, "device error: {e}"),
            FleetError::Privacy(e) => write!(f, "privacy configuration error: {e}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Config(_) => None,
            FleetError::Device(e) => Some(e),
            FleetError::Privacy(e) => Some(e),
        }
    }
}

impl From<DpBoxError> for FleetError {
    fn from(e: DpBoxError) -> Self {
        FleetError::Device(e)
    }
}

impl From<LdpError> for FleetError {
    fn from(e: LdpError) -> Self {
        FleetError::Privacy(e)
    }
}

/// A device's bit source: healthy Tausworthe, or the same wrapped in a
/// lag-1 correlated-bits fault that the power-on self-test must catch.
#[derive(Debug, Clone)]
enum FleetUrng {
    Healthy(Taus88),
    Faulty(CorrelatedBits<Taus88>),
}

impl RandomBits for FleetUrng {
    fn next_u32(&mut self) -> u32 {
        match self {
            FleetUrng::Healthy(r) => r.next_u32(),
            FleetUrng::Faulty(r) => r.next_u32(),
        }
    }
}

/// Everything one fleet run produces.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Devices booted (the configured population).
    pub devices_simulated: usize,
    /// Devices the power-on URNG self-test excluded before any report.
    pub devices_excluded: usize,
    /// Devices that stopped reporting mid-stream (budget exhaustion or a
    /// runtime health trip — expected 0 under the default configuration).
    pub devices_dropped: usize,
    /// Collector ingest totals over the whole run.
    pub ingest: IngestStats,
    /// Debiased population-mean estimate, in ADC codes.
    pub mean: Option<Estimate>,
    /// Debiased population-variance estimate, in codes².
    pub variance: Option<Estimate>,
    /// Report-distribution median, in codes.
    pub median: Option<Estimate>,
    /// Debiased fraction of devices at or above the RR threshold.
    pub rr_frequency: Option<Estimate>,
    /// Debiased count of devices at or above the RR threshold.
    pub rr_count: Option<Estimate>,
    /// True mean (codes) over the *included* devices.
    pub truth_mean: f64,
    /// True variance (codes², biased `/n`) over the included devices.
    pub truth_variance: f64,
    /// True median (codes) over the included devices.
    pub truth_median: f64,
    /// True fraction of included devices at or above the RR threshold.
    pub truth_fraction: f64,
    /// Total privacy loss recorded across the fleet ledger, in nats.
    pub ledger_total: f64,
    /// Charges recorded in the fleet ledger (one per fresh device output).
    pub ledger_entries: usize,
    /// Whether the merged fleet ledger audits clean against the
    /// independently folded composition accountant.
    pub audit_ok: bool,
    /// The thresholding window bound `n_th` (codes) the devices ran with.
    pub n_th_k: i64,
}

impl FleetOutcome {
    /// Canonical rendering of every schedule-independent field — the text
    /// the determinism digest is computed over. Exact float bits are
    /// rendered via [`f64::to_bits`] so "close" never passes for "equal".
    pub fn canonical_text(&self) -> String {
        fn est(e: &Option<Estimate>) -> String {
            match e {
                None => "none".to_string(),
                Some(e) => format!(
                    "{:016x}:{:016x}:{}:{:016x}",
                    e.value.to_bits(),
                    e.stderr.to_bits(),
                    e.n,
                    e.bias_bound.to_bits()
                ),
            }
        }
        format!(
            "devices={} excluded={} dropped={} accepted={} rejected={}\n\
             mean={} variance={} median={} rr_frequency={} rr_count={}\n\
             truth_mean={:016x} truth_variance={:016x} truth_median={:016x} truth_fraction={:016x}\n\
             ledger_total={:016x} ledger_entries={} audit_ok={} n_th_k={}\n",
            self.devices_simulated,
            self.devices_excluded,
            self.devices_dropped,
            self.ingest.accepted,
            self.ingest.rejected,
            est(&self.mean),
            est(&self.variance),
            est(&self.median),
            est(&self.rr_frequency),
            est(&self.rr_count),
            self.truth_mean.to_bits(),
            self.truth_variance.to_bits(),
            self.truth_median.to_bits(),
            self.truth_fraction.to_bits(),
            self.ledger_total.to_bits(),
            self.ledger_entries,
            self.audit_ok,
            self.n_th_k,
        )
    }

    /// FNV-1a 64-bit digest of [`FleetOutcome::canonical_text`]: equal
    /// digests witness bit-identical outcomes across thread counts, shard
    /// counts, and chunk sizes.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in self.canonical_text().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Per-chunk simulation result, folded on the main thread in chunk order.
struct ChunkResult {
    /// `frames[epoch]` holds the chunk's wire bytes for that epoch.
    frames: Vec<Vec<u8>>,
    /// The chunk's device ledgers, merged in device order.
    ledger: BudgetLedger,
    /// Every charge in `ledger`, in record order (for the accountant fold).
    charges: Vec<f64>,
    excluded: Vec<u32>,
    dropped: Vec<u32>,
}

/// The simulated fleet: configuration plus the derived noise model.
#[derive(Debug, Clone)]
pub struct FleetDriver {
    cfg: FleetConfig,
    model: NoiseModel,
    max_code: i64,
}

impl FleetDriver {
    /// Validates the configuration and builds the collector-side noise
    /// model for it.
    ///
    /// # Errors
    ///
    /// [`FleetError::Config`] for empty populations/epochs/shards/chunks or
    /// an out-of-range threshold; [`FleetError::Privacy`] if the noise
    /// model cannot be built.
    pub fn new(cfg: FleetConfig) -> Result<Self, FleetError> {
        if cfg.devices == 0 {
            return Err(FleetError::Config("population must be non-empty"));
        }
        if cfg.epochs == 0 {
            return Err(FleetError::Config("need at least one epoch"));
        }
        if cfg.shards == 0 {
            return Err(FleetError::Config("need at least one shard"));
        }
        if cfg.chunk == 0 {
            return Err(FleetError::Config("chunk size must be positive"));
        }
        if cfg.devices > u32::MAX as usize {
            return Err(FleetError::Config("device ids must fit in u32"));
        }
        let max_code = 1i64 << cfg.adc_bits;
        if !(0..=max_code).contains(&cfg.threshold_code) {
            return Err(FleetError::Config("RR threshold outside the ADC range"));
        }
        let model = NoiseModel::for_device(
            cfg.bu,
            cfg.word_bits,
            cfg.eps_shift,
            0,
            max_code,
            &cfg.multiples,
        )?;
        Ok(FleetDriver {
            cfg,
            model,
            max_code,
        })
    }

    /// The collector-side noise model (estimators, window, RR mechanism).
    pub fn model(&self) -> &NoiseModel {
        &self.model
    }

    /// Runs the full simulation: boot, stream, collect, estimate, audit.
    ///
    /// # Errors
    ///
    /// Propagates device-boot and mechanism-construction failures. Devices
    /// excluded by the self-test or dropped mid-stream are *not* errors —
    /// they are the fail-safe path working as designed, and are reported in
    /// the outcome.
    pub fn run(&self) -> Result<FleetOutcome, FleetError> {
        let cfg = &self.cfg;
        let truth = GroundTruth::prepare(
            &DatasetSpec {
                entries: cfg.devices,
                ..cfg.spec.clone()
            },
            2f64.powi(-i32::from(cfg.eps_shift)),
            cfg.seed,
        )?;
        let rr = self.model.rr()?;

        // Simulate in fixed-size chunks; par_map returns chunk results in
        // chunk order regardless of schedule.
        let chunk_starts: Vec<u32> = (0..cfg.devices as u32).step_by(cfg.chunk).collect();
        let chunk_results: Vec<Result<ChunkResult, FleetError>> =
            ulp_par::par_map(&chunk_starts, |&start| {
                let end = (start as usize + cfg.chunk).min(cfg.devices) as u32;
                self.simulate_chunk(start, end, &truth.codes_k, rr)
            });

        // Stream epochs through the collector, fold ledgers chunk-major.
        let mut collector = Collector::new(
            cfg.shards,
            &[
                QueryConfig {
                    id: VALUE_QUERY,
                    kind: QueryKind::Numeric {
                        sketch_min_k: self.model.window_lo(),
                        sketch_max_k: self.model.window_hi(),
                    },
                },
                QueryConfig {
                    id: RR_QUERY,
                    kind: QueryKind::RrBit,
                },
            ],
        );
        let mut chunks = Vec::with_capacity(chunk_results.len());
        for r in chunk_results {
            chunks.push(r?);
        }
        let mut ingest = IngestStats::default();
        for epoch in 0..cfg.epochs as usize {
            let _span = EPOCH_SPAN.enter();
            for chunk in &chunks {
                let stats = collector.ingest_frames(&chunk.frames[epoch]);
                ingest.accepted += stats.accepted;
                ingest.rejected += stats.rejected;
            }
        }

        let mut fleet_ledger = BudgetLedger::new();
        let mut accountant = CompositionLedger::new();
        let mut excluded: Vec<u32> = Vec::new();
        let mut dropped = 0usize;
        for chunk in &chunks {
            fleet_ledger.merge(&chunk.ledger);
            for &c in &chunk.charges {
                accountant.record(c);
            }
            excluded.extend_from_slice(&chunk.excluded);
            dropped += chunk.dropped.len();
        }
        let audit_ok = fleet_ledger.audit(&accountant).is_ok();
        DEVICES.add(cfg.devices as u64);
        EXCLUDED.record_always(excluded.len() as u64);

        // Included-population ground truth: exclusion happens before any
        // value-dependent computation, so this is an unbiased subsample.
        let excluded_set: std::collections::HashSet<u32> = excluded.iter().copied().collect();
        let included: Vec<i64> = truth
            .codes_k
            .iter()
            .enumerate()
            .filter(|(i, _)| !excluded_set.contains(&(*i as u32)))
            .map(|(_, &k)| k)
            .collect();
        let n = included.len().max(1) as f64;
        let truth_mean = included.iter().map(|&k| k as f64).sum::<f64>() / n;
        let truth_variance = included
            .iter()
            .map(|&k| (k as f64 - truth_mean).powi(2))
            .sum::<f64>()
            / n;
        let truth_median = {
            let mut sorted = included.clone();
            sorted.sort_unstable();
            sorted
                .get(sorted.len().saturating_sub(1) / 2)
                .map_or(f64::NAN, |&k| k as f64)
        };
        let truth_fraction = included
            .iter()
            .filter(|&&k| k >= cfg.threshold_code)
            .count() as f64
            / n;

        let values = collector.totals(VALUE_QUERY);
        let bits = collector.totals(RR_QUERY);
        Ok(FleetOutcome {
            devices_simulated: cfg.devices,
            devices_excluded: excluded.len(),
            devices_dropped: dropped,
            ingest,
            mean: self.model.mean(&values),
            variance: self.model.variance(&values),
            median: self.model.median(&values),
            rr_frequency: self.model.rr_frequency(&bits)?,
            rr_count: self.model.rr_count(&bits)?,
            truth_mean,
            truth_variance,
            truth_median,
            truth_fraction,
            ledger_total: fleet_ledger.total(),
            ledger_entries: fleet_ledger.len(),
            audit_ok,
            n_th_k: self.model.n_th_k(),
        })
    }

    /// Simulates devices `[start, end)`: boot each through the hardware
    /// command sequence and emit its per-epoch wire frames.
    fn simulate_chunk(
        &self,
        start: u32,
        end: u32,
        codes_k: &[i64],
        rr: RandomizedResponse,
    ) -> Result<ChunkResult, FleetError> {
        let cfg = &self.cfg;
        let epochs = cfg.epochs as usize;
        let mut out = ChunkResult {
            frames: vec![Vec::new(); epochs],
            ledger: BudgetLedger::new(),
            charges: Vec::new(),
            excluded: Vec::new(),
            dropped: Vec::new(),
        };
        for id in start..end {
            let x_code = codes_k[id as usize];
            let faulty =
                stream_seed(cfg.seed, &[u64::from(id), 7]) % 1000 < u64::from(cfg.faulty_per_mille);
            let urng = if faulty {
                FleetUrng::Faulty(CorrelatedBits::new(
                    Taus88::from_seed(stream_seed(cfg.seed, &[u64::from(id), 1])),
                    1,
                    230,
                ))
            } else {
                FleetUrng::Healthy(Taus88::from_seed(stream_seed(
                    cfg.seed,
                    &[u64::from(id), 0],
                )))
            };
            let mut dev = DpBox::with_urng(
                DpBoxConfig {
                    word_bits: cfg.word_bits,
                    frac_bits: 0,
                    bu: cfg.bu,
                    cordic_iterations: 24,
                    segment_multiples: cfg.multiples.clone(),
                    seed: 0, // ignored: the URNG is caller-supplied
                },
                urng,
            )?;
            // Power-on self-test: a short APT window keeps the startup
            // draw cheap while the lag-correlation test still catches the
            // wired fault deterministically.
            dev.set_health_config(
                HealthConfig::new(40, 64, 4).map_err(|e| FleetError::Device(DpBoxError::Rng(e)))?,
            );
            dev.issue(Command::ResetHealth, 0)?;
            if dev.phase() == Phase::HealthFault {
                out.excluded.push(id);
                continue;
            }
            // Initialization phase: budget, then freeze into waiting.
            dev.issue(Command::SetEpsilon, cfg.budget_raw)?;
            dev.issue(Command::StartNoising, 0)?;
            // Waiting phase: per-reading privacy level, range, mode.
            dev.issue(Command::SetEpsilon, i64::from(cfg.eps_shift))?;
            dev.issue(Command::SetSensorRangeLower, 0)?;
            dev.issue(Command::SetSensorRangeUpper, self.max_code)?;
            dev.issue(Command::SetThreshold, 0)?; // resampling → thresholding
            let mut rr_rng = Taus88::from_seed(stream_seed(cfg.seed, &[u64::from(id), 2]));
            let above = x_code >= cfg.threshold_code;
            for epoch in 0..epochs {
                match dev.noise_value(x_code) {
                    Ok((y, _cycles)) => {
                        Report {
                            device: id,
                            query: VALUE_QUERY,
                            epoch: epoch as u32,
                            payload: Payload::Value(y as i32),
                        }
                        .encode_into(&mut out.frames[epoch]);
                    }
                    // Fail-safe paths (runtime health trip, budget halt):
                    // the device stops reporting; the fleet records it.
                    Err(DpBoxError::UrngHealthFault(_)) | Err(DpBoxError::BudgetExhausted) => {
                        out.dropped.push(id);
                        break;
                    }
                    Err(e) => return Err(e.into()),
                }
                Report {
                    device: id,
                    query: RR_QUERY,
                    epoch: epoch as u32,
                    payload: Payload::RrBit(rr.privatize(above, &mut rr_rng)),
                }
                .encode_into(&mut out.frames[epoch]);
            }
            out.charges.extend(dev.accountant().losses());
            out.ledger.merge(dev.ledger());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(devices: usize) -> FleetConfig {
        FleetConfig {
            chunk: 64,
            ..FleetConfig::paper_default(devices, 2, 99)
        }
    }

    #[test]
    fn config_validation_rejects_degenerate_fleets() {
        for (mutate, msg) in [
            (
                Box::new(|c: &mut FleetConfig| c.devices = 0) as Box<dyn Fn(&mut FleetConfig)>,
                "population",
            ),
            (Box::new(|c: &mut FleetConfig| c.epochs = 0), "epoch"),
            (Box::new(|c: &mut FleetConfig| c.shards = 0), "shard"),
            (Box::new(|c: &mut FleetConfig| c.chunk = 0), "chunk"),
            (
                Box::new(|c: &mut FleetConfig| c.threshold_code = 1 << 12),
                "threshold",
            ),
        ] {
            let mut cfg = small_cfg(10);
            mutate(&mut cfg);
            // `expect_err` needs `FleetDriver: Debug`, which it doesn't carry.
            let Err(err) = FleetDriver::new(cfg).map(|_| ()) else {
                panic!("expected a config error mentioning {msg:?}");
            };
            assert!(err.to_string().contains(msg), "{err} missing {msg:?}");
        }
    }

    #[test]
    fn small_fleet_runs_audits_and_reports() {
        let driver = FleetDriver::new(small_cfg(200)).unwrap();
        let out = driver.run().unwrap();
        assert_eq!(out.devices_simulated, 200);
        assert_eq!(out.devices_dropped, 0);
        assert!(out.audit_ok, "fleet ledger must audit clean");
        assert_eq!(out.ingest.rejected, 0);
        // Every included device reports one value + one bit per epoch.
        let included = 200 - out.devices_excluded as u64;
        assert_eq!(out.ingest.accepted, included * 2 * 2);
        assert_eq!(out.ledger_entries as u64, included * 2);
        let mean = out.mean.unwrap();
        assert!(mean.value.is_finite() && mean.stderr > 0.0);
        assert!(out.rr_frequency.unwrap().value >= 0.0);
        assert!(out.median.is_some() && out.variance.is_some());
    }

    #[test]
    fn faulty_devices_are_excluded_before_reporting() {
        // Every device faulty: the self-test must exclude the whole fleet.
        let cfg = FleetConfig {
            faulty_per_mille: 1000,
            ..small_cfg(50)
        };
        let out = FleetDriver::new(cfg).unwrap().run().unwrap();
        assert_eq!(out.devices_excluded, 50);
        assert_eq!(out.ingest.accepted, 0);
        assert_eq!(out.ledger_entries, 0);
        assert!(out.mean.is_none());
    }

    #[test]
    fn outcome_is_identical_at_any_thread_and_shard_count() {
        let base = FleetDriver::new(small_cfg(300)).unwrap().run().unwrap();
        let resharded = FleetDriver::new(FleetConfig {
            shards: 7,
            chunk: 17,
            ..small_cfg(300)
        })
        .unwrap()
        .run()
        .unwrap();
        // Different shard/chunk partitions, same reports: every estimate
        // matches exactly.
        assert_eq!(base.mean, resharded.mean);
        assert_eq!(base.variance, resharded.variance);
        assert_eq!(base.median, resharded.median);
        assert_eq!(base.rr_frequency, resharded.rr_frequency);
        assert_eq!(base.ledger_total, resharded.ledger_total);
        assert_eq!(base.devices_excluded, resharded.devices_excluded);
    }
}
