//! The sharded, batch-ingesting collector.
//!
//! The collector is the untrusted aggregator of the LDP model: it sees only
//! wire-encoded privatized reports and folds them into per-query moment
//! accumulators (count, Σy, Σy², Σy³, Σy⁴, RR tally, exact quantile
//! sketch). Estimators debias these aggregates downstream.
//!
//! # Determinism
//!
//! Ingest is parallel but *partitioned*, never racy:
//!
//! 1. a batch of frames is decoded in fixed-size chunks via [`ulp_par`]
//!    (chunk boundaries depend only on the byte count);
//! 2. each shard then scans the decoded reports, accepting only devices
//!    that hash to it (`FNV-1a(device) mod shards` — a property of the
//!    report, not of the executing thread);
//! 3. [`Collector::totals`] folds shards in index order.
//!
//! Accumulator updates are exact integer additions, which are associative
//! and commutative, so the folded totals are **bit-identical for any thread
//! count and any shard count** — the same discipline (results are a pure
//! function of the data, never of the schedule) the `stream_seed` seeding
//! rules give the evaluation sweeps.

use ulp_obs::{Counter, Histogram, SpanTimer};

use crate::sketch::GridSketch;
use crate::wire::{Payload, Report, WireError, FRAME_LEN};

/// Reports accepted into shard accumulators, process-wide.
static INGESTED: Counter = Counter::new("fleet.reports.ingested");
/// Frames rejected by the wire decoder — recorded at every metrics level:
/// silent data loss at the collector edge must never be invisible.
static REJECTED: Counter = Counter::new("fleet.frames.rejected");
/// Shard accumulator folds performed by [`Collector::totals`].
static SHARD_MERGES: Counter = Counter::new("fleet.shard.merges");
/// Wall-clock of each ingested batch.
static INGEST_SPAN: SpanTimer = SpanTimer::new("fleet.collector.ingest");
/// Reports per ingested batch.
static BATCH_SIZE: Histogram = Histogram::new("fleet.collector.batch_reports", "reports");

/// What a query aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Fixed-point noised values; moments plus an exact quantile sketch
    /// over `[sketch_min_k, sketch_max_k]` (the device output window).
    Numeric {
        /// Lowest sketch bin (grid units).
        sketch_min_k: i64,
        /// Highest sketch bin (grid units).
        sketch_max_k: i64,
    },
    /// Randomized-response bits; a ones tally.
    RrBit,
}

/// One registered aggregation stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryConfig {
    /// Wire query id this stream accepts.
    pub id: u16,
    /// Payload type and sketch bounds.
    pub kind: QueryKind,
}

/// Exact aggregates for one query (one shard's share, or the fold of all
/// shards).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTotals {
    /// Reports accumulated.
    pub count: u64,
    /// Σ payload (numeric queries; RR bits contribute to `ones` instead).
    pub sum: i128,
    /// Σ payload².
    pub sum2: i128,
    /// Σ payload³.
    pub sum3: i128,
    /// Σ payload⁴.
    pub sum4: i128,
    /// RR `true` reports.
    pub ones: u64,
    /// Exact quantile sketch (numeric queries only).
    pub sketch: Option<GridSketch>,
}

impl Default for QueryTotals {
    /// Tally-only totals (no sketch) — the RR-query shape.
    fn default() -> Self {
        QueryTotals::new(QueryKind::RrBit)
    }
}

impl QueryTotals {
    fn new(kind: QueryKind) -> Self {
        let sketch = match kind {
            QueryKind::Numeric {
                sketch_min_k,
                sketch_max_k,
            } => Some(GridSketch::new(sketch_min_k, sketch_max_k)),
            QueryKind::RrBit => None,
        };
        QueryTotals {
            count: 0,
            sum: 0,
            sum2: 0,
            sum3: 0,
            sum4: 0,
            ones: 0,
            sketch,
        }
    }

    /// Empty totals for a numeric query sketching `[min_k, max_k]`.
    pub fn new_numeric(sketch_min_k: i64, sketch_max_k: i64) -> Self {
        QueryTotals::new(QueryKind::Numeric {
            sketch_min_k,
            sketch_max_k,
        })
    }

    /// Absorbs one numeric report value (grid units).
    pub fn absorb_value(&mut self, v: i64) {
        self.count += 1;
        let w = i128::from(v);
        self.sum += w;
        self.sum2 += w * w;
        self.sum3 += w * w * w;
        self.sum4 += w * w * w * w;
        if let Some(s) = self.sketch.as_mut() {
            s.record(v);
        }
    }

    /// Absorbs one randomized-response bit.
    pub fn absorb_bit(&mut self, b: bool) {
        self.count += 1;
        self.ones += u64::from(b);
    }

    fn absorb(&mut self, payload: Payload) {
        match payload {
            Payload::Value(v) => self.absorb_value(i64::from(v)),
            Payload::RrBit(b) => self.absorb_bit(b),
        }
    }

    fn merge(&mut self, other: &QueryTotals) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum2 += other.sum2;
        self.sum3 += other.sum3;
        self.sum4 += other.sum4;
        self.ones += other.ones;
        match (self.sketch.as_mut(), other.sketch.as_ref()) {
            (Some(a), Some(b)) => a.merge(b),
            (None, None) => {}
            _ => unreachable!("same query kind implies same sketch presence"),
        }
    }
}

/// Outcome of one [`Collector::ingest_frames`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestStats {
    /// Reports accepted into shard accumulators.
    pub accepted: u64,
    /// Frames rejected (decode failure, unknown query, or payload kind
    /// mismatching the query's registration).
    pub rejected: u64,
}

/// Hash-sharded per-query accumulators over privatized report batches.
#[derive(Debug, Clone)]
pub struct Collector {
    queries: Vec<QueryConfig>,
    /// `shard_accs[shard][query_index]`.
    shard_accs: Vec<Vec<QueryTotals>>,
    ingested: u64,
    rejected: u64,
    first_error: Option<WireError>,
}

/// FNV-1a of the device id — the shard assignment hash. A property of the
/// report alone, so the shard partition is independent of thread schedule.
fn device_hash(device: u32) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in device.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl Collector {
    /// Creates a collector with `shards` accumulator partitions for the
    /// given query streams.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero, `queries` is empty, or query ids repeat.
    pub fn new(shards: usize, queries: &[QueryConfig]) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(!queries.is_empty(), "need at least one query");
        for (i, q) in queries.iter().enumerate() {
            assert!(
                queries[..i].iter().all(|p| p.id != q.id),
                "duplicate query id {}",
                q.id
            );
        }
        let shard_accs = (0..shards)
            .map(|_| queries.iter().map(|q| QueryTotals::new(q.kind)).collect())
            .collect();
        Collector {
            queries: queries.to_vec(),
            shard_accs,
            ingested: 0,
            rejected: 0,
            first_error: None,
        }
    }

    /// Number of accumulator shards.
    pub fn shards(&self) -> usize {
        self.shard_accs.len()
    }

    /// Reports accepted over the collector's lifetime.
    pub fn reports_ingested(&self) -> u64 {
        self.ingested
    }

    /// Frames rejected over the collector's lifetime.
    pub fn frames_rejected(&self) -> u64 {
        self.rejected
    }

    /// The first wire error seen (kept for diagnostics; `None` if every
    /// rejection was a query/kind mismatch rather than a decode failure).
    pub fn first_error(&self) -> Option<WireError> {
        self.first_error
    }

    fn query_index(&self, report: &Report) -> Option<usize> {
        let idx = self.queries.iter().position(|q| q.id == report.query)?;
        let kind_matches = matches!(
            (self.queries[idx].kind, report.payload),
            (QueryKind::Numeric { .. }, Payload::Value(_)) | (QueryKind::RrBit, Payload::RrBit(_))
        );
        kind_matches.then_some(idx)
    }

    /// Ingests a batch of concatenated wire frames.
    ///
    /// `bytes` is split at [`FRAME_LEN`] boundaries; each slot decodes to a
    /// report or a rejection (trailing bytes shorter than one frame are
    /// rejected as one truncated frame). Decoding fans out over [`ulp_par`]
    /// in fixed-size chunks, then every shard scans the decoded batch for
    /// its devices — see the module docs for why this is schedule-proof.
    pub fn ingest_frames(&mut self, bytes: &[u8]) -> IngestStats {
        let _span = INGEST_SPAN.enter();
        let whole = bytes.len() / FRAME_LEN;
        let tail = bytes.len() % FRAME_LEN;

        // Phase 1: decode, in parallel over fixed-size chunks.
        const DECODE_CHUNK: usize = 16 * 1024;
        let chunks: Vec<&[u8]> = bytes[..whole * FRAME_LEN]
            .chunks(DECODE_CHUNK * FRAME_LEN)
            .collect();
        let decoded: Vec<Vec<Result<Report, WireError>>> = ulp_par::par_map(&chunks, |chunk| {
            chunk.chunks(FRAME_LEN).map(Report::decode).collect()
        });

        let mut stats = IngestStats::default();
        let mut reports: Vec<(usize, Report)> = Vec::with_capacity(whole);
        for item in decoded.into_iter().flatten() {
            match item {
                Ok(report) => match self.query_index(&report) {
                    Some(q) => reports.push((q, report)),
                    None => stats.rejected += 1,
                },
                Err(e) => {
                    stats.rejected += 1;
                    self.first_error.get_or_insert(e);
                }
            }
        }
        if tail != 0 {
            stats.rejected += 1;
            self.first_error
                .get_or_insert(WireError::Truncated { got: tail });
        }
        stats.accepted = reports.len() as u64;

        // Phase 2: shard accumulation. Each shard owns its accumulators and
        // scans the whole decoded batch for its devices.
        let shards = self.shards() as u64;
        let shard_ids: Vec<u64> = (0..shards).collect();
        let mut fresh: Vec<Vec<QueryTotals>> = ulp_par::par_map(&shard_ids, |&shard| {
            let mut accs: Vec<QueryTotals> = self
                .queries
                .iter()
                .map(|q| QueryTotals::new(q.kind))
                .collect();
            for (q, report) in &reports {
                if device_hash(report.device) % shards == shard {
                    accs[*q].absorb(report.payload);
                }
            }
            accs
        });
        for (acc, new) in self.shard_accs.iter_mut().zip(&mut fresh) {
            for (a, b) in acc.iter_mut().zip(new.iter()) {
                a.merge(b);
            }
        }

        self.ingested += stats.accepted;
        self.rejected += stats.rejected;
        INGESTED.add(stats.accepted);
        REJECTED.record_always(stats.rejected);
        BATCH_SIZE.record(stats.accepted);
        stats
    }

    /// Folds every shard's accumulators (in shard-index order) into the
    /// query's lifetime totals.
    ///
    /// # Panics
    ///
    /// Panics if `query_id` was not registered.
    pub fn totals(&self, query_id: u16) -> QueryTotals {
        let idx = self
            .queries
            .iter()
            .position(|q| q.id == query_id)
            .unwrap_or_else(|| panic!("query {query_id} not registered"));
        let mut folded = QueryTotals::new(self.queries[idx].kind);
        for shard in &self.shard_accs {
            folded.merge(&shard[idx]);
            SHARD_MERGES.inc();
        }
        folded
    }

    /// The registered query streams.
    pub fn queries(&self) -> &[QueryConfig] {
        &self.queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NUMERIC: QueryConfig = QueryConfig {
        id: 0,
        kind: QueryKind::Numeric {
            sketch_min_k: -64,
            sketch_max_k: 64,
        },
    };
    const RR: QueryConfig = QueryConfig {
        id: 1,
        kind: QueryKind::RrBit,
    };

    fn frames(reports: &[Report]) -> Vec<u8> {
        let mut out = Vec::new();
        for r in reports {
            r.encode_into(&mut out);
        }
        out
    }

    fn value(device: u32, v: i32) -> Report {
        Report {
            device,
            query: 0,
            epoch: 0,
            payload: Payload::Value(v),
        }
    }

    #[test]
    fn accumulates_exact_moments_and_tallies() {
        let mut c = Collector::new(2, &[NUMERIC, RR]);
        let batch = frames(&[
            value(1, 3),
            value(2, -4),
            Report {
                device: 3,
                query: 1,
                epoch: 0,
                payload: Payload::RrBit(true),
            },
            Report {
                device: 4,
                query: 1,
                epoch: 0,
                payload: Payload::RrBit(false),
            },
        ]);
        let stats = c.ingest_frames(&batch);
        assert_eq!(
            stats,
            IngestStats {
                accepted: 4,
                rejected: 0
            }
        );
        let t = c.totals(0);
        assert_eq!(
            (t.count, t.sum, t.sum2, t.sum3, t.sum4),
            (2, -1, 25, -37, 337)
        );
        assert_eq!(t.sketch.as_ref().unwrap().total(), 2);
        let rr = c.totals(1);
        assert_eq!((rr.count, rr.ones), (2, 1));
    }

    #[test]
    fn shard_count_does_not_change_totals() {
        let reports: Vec<Report> = (0..500).map(|i| value(i, (i as i32 % 41) - 20)).collect();
        let batch = frames(&reports);
        let mut one = Collector::new(1, &[NUMERIC]);
        let mut eight = Collector::new(8, &[NUMERIC]);
        one.ingest_frames(&batch);
        eight.ingest_frames(&batch);
        assert_eq!(one.totals(0), eight.totals(0));
    }

    #[test]
    fn split_batches_equal_one_batch() {
        let reports: Vec<Report> = (0..100).map(|i| value(i, i as i32)).collect();
        let mut whole = Collector::new(4, &[NUMERIC]);
        whole.ingest_frames(&frames(&reports));
        let mut split = Collector::new(4, &[NUMERIC]);
        split.ingest_frames(&frames(&reports[..37]));
        split.ingest_frames(&frames(&reports[37..]));
        assert_eq!(whole.totals(0), split.totals(0));
        assert_eq!(whole.reports_ingested(), split.reports_ingested());
    }

    #[test]
    fn corrupt_unknown_and_trailing_frames_are_rejected() {
        let mut c = Collector::new(2, &[NUMERIC]);
        let mut batch = frames(&[value(1, 5)]);
        // Corrupt frame.
        let mut bad = value(2, 6).encode();
        bad[6] ^= 0xFF;
        batch.extend_from_slice(&bad);
        // Unknown query id.
        Report {
            device: 3,
            query: 9,
            epoch: 0,
            payload: Payload::Value(1),
        }
        .encode_into(&mut batch);
        // Kind mismatch: RR bit on the numeric query.
        Report {
            device: 4,
            query: 0,
            epoch: 0,
            payload: Payload::RrBit(true),
        }
        .encode_into(&mut batch);
        // Trailing partial frame.
        batch.extend_from_slice(&[0xD9, 0x01]);
        let stats = c.ingest_frames(&batch);
        assert_eq!(
            stats,
            IngestStats {
                accepted: 1,
                rejected: 4
            }
        );
        assert_eq!(c.frames_rejected(), 4);
        assert!(matches!(
            c.first_error(),
            Some(WireError::ChecksumMismatch { .. })
        ));
        assert_eq!(c.totals(0).count, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate query id")]
    fn duplicate_query_ids_panic() {
        Collector::new(1, &[RR, RR]);
    }
}
