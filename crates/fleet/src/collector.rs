//! The sharded, batch-ingesting, fault-tolerant collector.
//!
//! The collector is the untrusted aggregator of the LDP model: it sees only
//! wire-encoded privatized reports and folds them into per-query moment
//! accumulators (count, Σy, Σy², Σy³, Σy⁴, RR tally, exact quantile
//! sketch). Estimators debias these aggregates downstream.
//!
//! Unlike a lab-bench pipeline, the ingest path assumes a *lossy* transport
//! and *imperfect* senders:
//!
//! * **Stream resync** — a corrupt or truncated frame is counted and
//!   skipped, scanning forward for the next magic byte whose checksum
//!   verifies, instead of aborting the batch
//!   (`fleet.wire.corrupt_frames` / `fleet.wire.resyncs`);
//! * **Idempotent ingest** — a per-device, per-query dedup window (two
//!   64-epoch blocks) folds duplicated and reordered frames to the totals
//!   of the clean stream (`fleet.dedup.duplicates` / `fleet.dedup.stale`);
//! * **Quarantine** — senders that repeatedly emit attributable protocol
//!   violations (sequence drift, unknown kinds/queries, out-of-range RR
//!   payloads) are latched out, mirroring the device-side `HealthFault`
//!   latch (`fleet.quarantine.latched` / `fleet.quarantine.dropped`).
//!   In-flight corruption is *never* attributed: pre-checksum errors carry
//!   no trustworthy device id, so a healthy device behind a noisy link
//!   cannot be quarantined;
//! * **Degraded sealing** — [`EpochSeal::evaluate`] grades realized
//!   coverage against a quorum threshold, marking the seal
//!   [`SealStatus::Degraded`] instead of panicking; estimators already
//!   compute SE from realized (not assumed) response counts.
//!
//! # Determinism
//!
//! Ingest is parallel but *partitioned*, never racy:
//!
//! 1. a batch of frames is decoded in fixed-size chunks via [`ulp_par`]
//!    (chunk boundaries depend only on the byte count); if any frame fails,
//!    the batch is re-decoded by the sequential resync scanner, whose
//!    output is a pure function of the bytes;
//! 2. each shard then scans the decoded items in stream order, handling
//!    only devices that hash to it (`FNV-1a(device) mod shards` — a
//!    property of the report, not of the executing thread). Dedup windows,
//!    strike counts, and quarantine latches live *inside* the owning shard,
//!    so their evolution is also schedule-free;
//! 3. [`Collector::totals`] folds shards in index order.
//!
//! Accumulator updates are exact integer additions, which are associative
//! and commutative, so the folded totals are **bit-identical for any thread
//! count and any shard count** — the same discipline (results are a pure
//! function of the data, never of the schedule) the `stream_seed` seeding
//! rules give the evaluation sweeps.

use std::collections::HashMap;

use ulp_obs::{parse_env, Counter, EnvError, Histogram, SpanTimer};

use crate::sketch::GridSketch;
use crate::wire::{decode_stream, ColumnarBatch, Payload, Report, WireError, FRAME_LEN};

/// Reports accepted into shard accumulators, process-wide.
static INGESTED: Counter = Counter::new("fleet.reports.ingested");
/// Frames rejected by the wire decoder — recorded at every metrics level:
/// silent data loss at the collector edge must never be invisible.
static REJECTED: Counter = Counter::new("fleet.frames.rejected");
/// Corruption events skipped by the stream scanner.
static CORRUPT_FRAMES: Counter = Counter::new("fleet.wire.corrupt_frames");
/// Times the scanner recovered alignment at a non-adjacent offset.
static RESYNCS: Counter = Counter::new("fleet.wire.resyncs");
/// Frames folded away as retransmissions of an already-counted report.
static DUPLICATES: Counter = Counter::new("fleet.dedup.duplicates");
/// Frames older than the dedup window, rejected as unverifiable.
static STALE: Counter = Counter::new("fleet.dedup.stale");
/// Frames that arrived after their window's watermark sealed it.
static LATE: Counter = Counter::new("fleet.window.late");
/// Senders latched into quarantine — recorded at every metrics level:
/// excluding a sender is a fleet-integrity event, like a failed audit.
static QUARANTINE_LATCHED: Counter = Counter::new("fleet.quarantine.latched");
/// Frames dropped because their sender is quarantined.
static QUARANTINE_DROPPED: Counter = Counter::new("fleet.quarantine.dropped");
/// Shard accumulator folds performed by [`Collector::totals`].
static SHARD_MERGES: Counter = Counter::new("fleet.shard.merges");
/// Wall-clock of each ingested batch.
static INGEST_SPAN: SpanTimer = SpanTimer::new("fleet.collector.ingest");
/// Wall-clock of the decode phase of each batch.
static DECODE_SPAN: SpanTimer = SpanTimer::new("fleet.collector.decode");
/// Wall-clock of the accumulate (shard pass) phase of each batch.
static ACCUMULATE_SPAN: SpanTimer = SpanTimer::new("fleet.collector.accumulate");
/// Wall-clock of each [`Collector::totals`] shard fold.
static FOLD_SPAN: SpanTimer = SpanTimer::new("fleet.collector.fold");
/// Reports per ingested batch.
static BATCH_SIZE: Histogram = Histogram::new("fleet.collector.batch_reports", "reports");

/// Cumulative process-wide ingest phase timings, read via
/// [`ingest_phase_totals`]. Spans record only at `ULP_METRICS=full`;
/// below that every field stays zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestPhaseTotals {
    /// Nanoseconds decoding wire bytes into reports/columns.
    pub decode_ns: u64,
    /// Nanoseconds in the shard pass (shuffle + dedup + absorb).
    pub accumulate_ns: u64,
    /// Nanoseconds folding shard accumulators in [`Collector::totals`].
    pub fold_ns: u64,
}

/// Snapshots the cumulative ingest phase timers. Benchmarks subtract two
/// snapshots to attribute a region's decode/accumulate/fold split.
pub fn ingest_phase_totals() -> IngestPhaseTotals {
    IngestPhaseTotals {
        decode_ns: DECODE_SPAN.total_ns(),
        accumulate_ns: ACCUMULATE_SPAN.total_ns(),
        fold_ns: FOLD_SPAN.total_ns(),
    }
}

/// Typed per-class wire-error counters (the `fleet.wire.err.*` family).
static ERR_TRUNCATED: Counter = Counter::new("fleet.wire.err.truncated");
static ERR_BAD_MAGIC: Counter = Counter::new("fleet.wire.err.bad_magic");
static ERR_UNSUPPORTED_VERSION: Counter = Counter::new("fleet.wire.err.unsupported_version");
static ERR_UNKNOWN_KIND: Counter = Counter::new("fleet.wire.err.unknown_kind");
static ERR_NON_ZERO_RESERVED: Counter = Counter::new("fleet.wire.err.non_zero_reserved");
static ERR_CHECKSUM_MISMATCH: Counter = Counter::new("fleet.wire.err.checksum_mismatch");
static ERR_SEQ_MISMATCH: Counter = Counter::new("fleet.wire.err.seq_mismatch");
static ERR_PAYLOAD_OUT_OF_RANGE: Counter = Counter::new("fleet.wire.err.payload_out_of_range");

/// What a query aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Fixed-point noised values; moments plus an exact quantile sketch
    /// over `[sketch_min_k, sketch_max_k]` (the device output window).
    Numeric {
        /// Lowest sketch bin (grid units).
        sketch_min_k: i64,
        /// Highest sketch bin (grid units).
        sketch_max_k: i64,
    },
    /// Randomized-response bits; a ones tally.
    RrBit,
}

/// One registered aggregation stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryConfig {
    /// Wire query id this stream accepts.
    pub id: u16,
    /// Payload type and sketch bounds.
    pub kind: QueryKind,
}

/// Exact aggregates for one query (one shard's share, or the fold of all
/// shards).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTotals {
    /// Reports accumulated.
    pub count: u64,
    /// Σ payload (numeric queries; RR bits contribute to `ones` instead).
    pub sum: i128,
    /// Σ payload².
    pub sum2: i128,
    /// Σ payload³.
    pub sum3: i128,
    /// Σ payload⁴.
    pub sum4: i128,
    /// RR `true` reports.
    pub ones: u64,
    /// Exact quantile sketch (numeric queries only).
    pub sketch: Option<GridSketch>,
}

impl Default for QueryTotals {
    /// Tally-only totals (no sketch) — the RR-query shape.
    fn default() -> Self {
        QueryTotals::new(QueryKind::RrBit)
    }
}

impl QueryTotals {
    pub(crate) fn new(kind: QueryKind) -> Self {
        let sketch = match kind {
            QueryKind::Numeric {
                sketch_min_k,
                sketch_max_k,
            } => Some(GridSketch::new(sketch_min_k, sketch_max_k)),
            QueryKind::RrBit => None,
        };
        QueryTotals {
            count: 0,
            sum: 0,
            sum2: 0,
            sum3: 0,
            sum4: 0,
            ones: 0,
            sketch,
        }
    }

    /// Empty totals for a numeric query sketching `[min_k, max_k]`.
    pub fn new_numeric(sketch_min_k: i64, sketch_max_k: i64) -> Self {
        QueryTotals::new(QueryKind::Numeric {
            sketch_min_k,
            sketch_max_k,
        })
    }

    /// Absorbs one numeric report value (grid units).
    pub fn absorb_value(&mut self, v: i64) {
        self.count += 1;
        let w = i128::from(v);
        self.sum += w;
        self.sum2 += w * w;
        self.sum3 += w * w * w;
        self.sum4 += w * w * w * w;
        if let Some(s) = self.sketch.as_mut() {
            s.record(v);
        }
    }

    /// Absorbs one randomized-response bit.
    pub fn absorb_bit(&mut self, b: bool) {
        self.count += 1;
        self.ones += u64::from(b);
    }

    fn absorb(&mut self, payload: Payload) {
        match payload {
            Payload::Value(v) => self.absorb_value(i64::from(v)),
            Payload::RrBit(b) => self.absorb_bit(b),
        }
    }

    pub(crate) fn merge(&mut self, other: &QueryTotals) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum2 += other.sum2;
        self.sum3 += other.sum3;
        self.sum4 += other.sum4;
        self.ones += other.ones;
        match (self.sketch.as_mut(), other.sketch.as_ref()) {
            (Some(a), Some(b)) => a.merge(b),
            (None, None) => {}
            _ => unreachable!("same query kind implies same sketch presence"),
        }
    }
}

/// Per-class tallies of the typed wire errors seen by this collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireErrorTally {
    /// [`WireError::Truncated`] count.
    pub truncated: u64,
    /// [`WireError::BadMagic`] count.
    pub bad_magic: u64,
    /// [`WireError::UnsupportedVersion`] count.
    pub unsupported_version: u64,
    /// [`WireError::UnknownKind`] count.
    pub unknown_kind: u64,
    /// [`WireError::NonZeroReserved`] count.
    pub non_zero_reserved: u64,
    /// [`WireError::ChecksumMismatch`] count.
    pub checksum_mismatch: u64,
    /// [`WireError::SeqMismatch`] count.
    pub seq_mismatch: u64,
    /// [`WireError::PayloadOutOfRange`] count.
    pub payload_out_of_range: u64,
}

impl WireErrorTally {
    fn count(&mut self, e: &WireError) {
        match e {
            WireError::Truncated { .. } => {
                self.truncated += 1;
                ERR_TRUNCATED.inc();
            }
            WireError::BadMagic { .. } => {
                self.bad_magic += 1;
                ERR_BAD_MAGIC.inc();
            }
            WireError::UnsupportedVersion { .. } => {
                self.unsupported_version += 1;
                ERR_UNSUPPORTED_VERSION.inc();
            }
            WireError::UnknownKind { .. } => {
                self.unknown_kind += 1;
                ERR_UNKNOWN_KIND.inc();
            }
            WireError::NonZeroReserved { .. } => {
                self.non_zero_reserved += 1;
                ERR_NON_ZERO_RESERVED.inc();
            }
            WireError::ChecksumMismatch { .. } => {
                self.checksum_mismatch += 1;
                ERR_CHECKSUM_MISMATCH.inc();
            }
            WireError::SeqMismatch { .. } => {
                self.seq_mismatch += 1;
                ERR_SEQ_MISMATCH.inc();
            }
            WireError::PayloadOutOfRange { .. } => {
                self.payload_out_of_range += 1;
                ERR_PAYLOAD_OUT_OF_RANGE.inc();
            }
        }
    }
}

/// Outcome of one [`Collector::ingest_frames`] call (or, via
/// [`IngestStats::absorb`], a fold over many).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestStats {
    /// Reports accepted into shard accumulators (first copies only).
    pub accepted: u64,
    /// Frames rejected: decode failures, unknown queries, kind mismatches,
    /// stale epochs, and quarantine drops. Duplicates are *not* rejections
    /// (they fold to the clean-stream totals) and are counted separately.
    pub rejected: u64,
    /// Retransmitted copies folded away by the dedup window.
    pub duplicates: u64,
    /// Frames older than the dedup window (counted in `rejected` too).
    pub stale: u64,
    /// Frames whose epoch predates the collector's window floor — late
    /// arrivals for an already-sealed window under the service's watermark
    /// policy (counted in `rejected` too). Always zero while the floor
    /// stays at its default of epoch 0 (the batch path).
    pub late: u64,
    /// Corruption events the stream scanner skipped.
    pub corrupt_frames: u64,
    /// Times the scanner re-acquired alignment at a non-adjacent offset.
    pub resyncs: u64,
    /// Frames dropped because their sender is quarantined (in `rejected`).
    pub quarantine_dropped: u64,
    /// Senders newly latched into quarantine during this batch.
    pub quarantine_latched: u64,
}

impl IngestStats {
    /// Folds another stats record into this one (the per-epoch → per-run
    /// accumulation path).
    pub fn absorb(&mut self, other: IngestStats) {
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.duplicates += other.duplicates;
        self.stale += other.stale;
        self.late += other.late;
        self.corrupt_frames += other.corrupt_frames;
        self.resyncs += other.resyncs;
        self.quarantine_dropped += other.quarantine_dropped;
        self.quarantine_latched += other.quarantine_latched;
    }
}

/// How many epochs one dedup block covers (window = two blocks).
const DEDUP_BLOCK: u32 = 64;
/// Attributable protocol violations before a sender is latched out.
pub const DEFAULT_QUARANTINE_STRIKES: u32 = 3;

/// Environment variable selecting the collector ingest path.
pub const INGEST_PATH_ENV: &str = "ULP_FLEET_INGEST_PATH";

/// Which ingest implementation [`Collector::ingest_frames`] runs. The two
/// paths produce **byte-identical** totals, stats, and digests for every
/// input — the reference path exists for differential testing, the
/// columnar path for throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestPath {
    /// Columnar batch pipeline (the default): parallel struct-of-arrays
    /// decode with sequential fallback for structurally-broken chunks,
    /// then per-shard bucketed accumulation in canonical chunk order.
    #[default]
    Columnar,
    /// The scalar pipeline: per-frame decode (parallel only when the whole
    /// batch is clean), then every shard filter-scans the full item list.
    Reference,
}

impl IngestPath {
    /// Parses a raw value: `columnar` or `reference` (case-insensitive).
    /// `None` (unset) selects [`IngestPath::Columnar`] — the documented
    /// default.
    ///
    /// # Errors
    ///
    /// [`EnvError`] for anything else — a misspelling must never silently
    /// select a path (the `ULP_SAMPLER_PATH` strictness rule).
    pub fn parse(raw: Option<&str>) -> Result<Self, EnvError> {
        let Some(raw) = raw else {
            return Ok(IngestPath::Columnar);
        };
        match raw.trim().to_ascii_lowercase().as_str() {
            "columnar" => Ok(IngestPath::Columnar),
            "reference" => Ok(IngestPath::Reference),
            _ => Err(EnvError {
                var: INGEST_PATH_ENV,
                value: raw.to_string(),
                expected: "columnar | reference",
            }),
        }
    }

    /// Reads the path from [`INGEST_PATH_ENV`] (unset selects
    /// [`IngestPath::Columnar`]).
    ///
    /// # Errors
    ///
    /// [`EnvError`] on a set-but-unrecognized value — never a silent
    /// fallback.
    pub fn from_env() -> Result<Self, EnvError> {
        Ok(parse_env(INGEST_PATH_ENV, "columnar | reference", |s| {
            IngestPath::parse(Some(s)).ok()
        })?
        .unwrap_or_default())
    }
}

/// What the dedup window decided about a report.
enum Admit {
    Fresh,
    Duplicate,
    Stale,
}

/// The dedup window for one `(device, query)` stream: two 64-epoch blocks
/// of seen-bits. Any interleaving of duplicates and reorderings whose
/// epochs span at most two blocks folds to the clean stream; epochs older
/// than both retained blocks are rejected as stale (they can no longer be
/// distinguished from replays).
#[derive(Debug, Clone, Copy, Default)]
struct DedupSlot {
    blocks: [(u32, u64); 2],
    used: u8,
}

impl DedupSlot {
    fn admit(&mut self, epoch: u32) -> Admit {
        let block = epoch / DEDUP_BLOCK;
        let bit = 1u64 << (epoch % DEDUP_BLOCK);
        for i in 0..usize::from(self.used) {
            if self.blocks[i].0 == block {
                if self.blocks[i].1 & bit != 0 {
                    return Admit::Duplicate;
                }
                self.blocks[i].1 |= bit;
                return Admit::Fresh;
            }
        }
        if usize::from(self.used) < 2 {
            self.blocks[usize::from(self.used)] = (block, bit);
            self.used += 1;
            return Admit::Fresh;
        }
        // Both blocks resident: evict the older one, or reject the report
        // as stale if it predates both.
        let older = usize::from(self.blocks[1].0 < self.blocks[0].0);
        if block < self.blocks[older].0 {
            return Admit::Stale;
        }
        self.blocks[older] = (block, bit);
        Admit::Fresh
    }
}

/// One shard's persistent state: accumulators plus the per-device dedup
/// and quarantine records for the devices that hash to it.
///
/// Device ids below `flat_cap` index directly into the flat tables —
/// the accumulate inner loop then touches no hash map at all. Ids at or
/// above the cap (forged ids recovered from a corrupted stream, or a
/// collector built without [`Collector::with_device_capacity`]) take the
/// hash-map fallback. Both routes run the identical admit/strike/latch
/// logic, so which route a device takes is unobservable in the stats,
/// totals, and quarantine state.
#[derive(Debug, Clone)]
struct ShardState {
    accs: Vec<QueryTotals>,
    /// Per device, one [`DedupSlot`] per registered query.
    dedup: HashMap<u32, Vec<DedupSlot>>,
    /// Attributable-violation strike counts for unlatched devices.
    strikes: HashMap<u32, u32>,
    /// Latched (quarantined) senders — permanent, like `HealthFault`.
    latched: std::collections::HashSet<u32>,
    /// Device ids below this take the flat-table route (0 = never).
    flat_cap: u32,
    /// `flat_cap × nq` dedup windows, row-major by device.
    flat_dedup: Vec<DedupSlot>,
    /// Strike counts for unlatched devices below the cap.
    flat_strikes: Vec<u32>,
    /// Latch flags for devices below the cap.
    flat_latched: Vec<bool>,
}

/// A decoded batch item, in stream order. Strikes ride alongside accepted
/// candidates so each shard sees its devices' violations and reports in
/// their original interleaving.
#[derive(Clone, Copy)]
enum Item {
    /// A well-formed report for registered query index `q`.
    Report { q: usize, report: Report },
    /// An attributable protocol violation by `device`.
    Strike { device: u32 },
}

impl Item {
    fn device(&self) -> u32 {
        match self {
            Item::Report { report, .. } => report.device,
            Item::Strike { device } => *device,
        }
    }
}

/// Per-shard result of one batch pass (summed over shards afterwards).
#[derive(Default, Clone, Copy)]
struct ShardBatch {
    accepted: u64,
    duplicates: u64,
    stale: u64,
    late: u64,
    quarantine_dropped: u64,
    quarantine_latched: u64,
}

/// Seal grade for one collection round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SealStatus {
    /// Coverage met the quorum threshold.
    Full,
    /// Coverage fell below quorum; estimates are still debiased and their
    /// SE already reflects the realized counts, but consumers should treat
    /// the round as partial.
    Degraded {
        /// Realized coverage (accepted / expected).
        coverage: f64,
    },
}

/// Coverage accounting for one sealed collection round. Built by
/// [`EpochSeal::evaluate`] — sealing **grades** a shortfall instead of
/// panicking on it, because the estimators downstream compute stderr and
/// bias bounds from realized response counts and remain valid (just wider)
/// under partial coverage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochSeal {
    /// Reports the round would have produced under a perfect transport.
    pub expected: u64,
    /// Reports actually accepted.
    pub accepted: u64,
    /// `accepted / expected` (`1.0` for an empty expectation).
    pub coverage: f64,
    /// The seal grade against the quorum threshold.
    pub status: SealStatus,
}

impl EpochSeal {
    /// Grades realized coverage against a quorum threshold in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `quorum` is not a finite value in `[0, 1]`.
    pub fn evaluate(expected: u64, accepted: u64, quorum: f64) -> EpochSeal {
        assert!(
            quorum.is_finite() && (0.0..=1.0).contains(&quorum),
            "quorum must be in [0, 1], got {quorum}"
        );
        let coverage = if expected == 0 {
            1.0
        } else {
            accepted as f64 / expected as f64
        };
        let status = if coverage >= quorum {
            SealStatus::Full
        } else {
            SealStatus::Degraded { coverage }
        };
        EpochSeal {
            expected,
            accepted,
            coverage,
            status,
        }
    }

    /// Whether the round met quorum.
    pub fn is_full(&self) -> bool {
        matches!(self.status, SealStatus::Full)
    }
}

/// Hash-sharded per-query accumulators over privatized report batches,
/// with idempotent (dedup-windowed) ingest and sender quarantine.
#[derive(Debug, Clone)]
pub struct Collector {
    queries: Vec<QueryConfig>,
    shard_states: Vec<ShardState>,
    strike_limit: u32,
    ingest_path: IngestPath,
    /// Reports with `epoch < window_floor` are late arrivals for a window
    /// the service already sealed; `0` (the default) disables the check.
    window_floor: u32,
    ingested: u64,
    rejected: u64,
    wire_errors: WireErrorTally,
    first_error: Option<WireError>,
}

/// FNV-1a of the device id — the shard assignment hash. A property of the
/// report alone, so the shard partition is independent of thread schedule.
fn device_hash(device: u32) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in device.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl Collector {
    /// Creates a collector with `shards` accumulator partitions for the
    /// given query streams, latching senders out after
    /// [`DEFAULT_QUARANTINE_STRIKES`] attributable violations.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero, `queries` is empty, or query ids repeat.
    pub fn new(shards: usize, queries: &[QueryConfig]) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(!queries.is_empty(), "need at least one query");
        for (i, q) in queries.iter().enumerate() {
            assert!(
                queries[..i].iter().all(|p| p.id != q.id),
                "duplicate query id {}",
                q.id
            );
        }
        let shard_states = (0..shards)
            .map(|_| ShardState {
                accs: queries.iter().map(|q| QueryTotals::new(q.kind)).collect(),
                dedup: HashMap::new(),
                strikes: HashMap::new(),
                latched: std::collections::HashSet::new(),
                flat_cap: 0,
                flat_dedup: Vec::new(),
                flat_strikes: Vec::new(),
                flat_latched: Vec::new(),
            })
            .collect();
        Collector {
            queries: queries.to_vec(),
            shard_states,
            strike_limit: DEFAULT_QUARANTINE_STRIKES,
            ingest_path: IngestPath::default(),
            window_floor: 0,
            ingested: 0,
            rejected: 0,
            wire_errors: WireErrorTally::default(),
            first_error: None,
        }
    }

    /// Overrides the quarantine strike limit (violations before latch).
    ///
    /// # Panics
    ///
    /// Panics if `strikes` is zero (a zero limit would quarantine every
    /// sender preemptively).
    pub fn with_quarantine_strikes(mut self, strikes: u32) -> Self {
        assert!(strikes > 0, "strike limit must be positive");
        self.strike_limit = strikes;
        self
    }

    /// Pre-sizes a flat device-indexed fast path for the per-device dedup,
    /// strike, and quarantine state covering ids below `cap`.
    ///
    /// The accumulate inner loop is dominated by per-(device, query) hash
    /// lookups once populations reach ~10⁶ devices; ids below the cap
    /// index straight into flat per-shard tables allocated here instead.
    /// Ids at or above the cap (e.g. forged ids recovered from a corrupted
    /// stream) fall back to the hash maps. Both routes run the same
    /// admit/strike/latch code, so stats, totals, `Duplicate`/`Stale`
    /// counters, and quarantine state are byte-identical at any `cap` —
    /// only the lookup cost changes.
    ///
    /// # Panics
    ///
    /// Panics if any frames were already ingested (the fresh flat tables
    /// would shadow accumulated per-device state).
    pub fn with_device_capacity(mut self, cap: u32) -> Self {
        assert!(
            self.ingested == 0 && self.rejected == 0,
            "device capacity must be set before the first ingest"
        );
        let nq = self.queries.len();
        for st in &mut self.shard_states {
            st.flat_cap = cap;
            st.flat_dedup = vec![DedupSlot::default(); cap as usize * nq];
            st.flat_strikes = vec![0; cap as usize];
            st.flat_latched = vec![false; cap as usize];
        }
        self
    }

    /// Overrides the ingest path (default [`IngestPath::Columnar`]). Both
    /// paths produce byte-identical results; the reference path exists for
    /// differential testing.
    pub fn with_ingest_path(mut self, path: IngestPath) -> Self {
        self.ingest_path = path;
        self
    }

    /// The ingest path this collector runs.
    pub fn ingest_path(&self) -> IngestPath {
        self.ingest_path
    }

    /// Number of accumulator shards.
    pub fn shards(&self) -> usize {
        self.shard_states.len()
    }

    /// Reports accepted over the collector's lifetime.
    pub fn reports_ingested(&self) -> u64 {
        self.ingested
    }

    /// Frames rejected over the collector's lifetime.
    pub fn frames_rejected(&self) -> u64 {
        self.rejected
    }

    /// Per-class tallies of every typed wire error seen.
    pub fn wire_errors(&self) -> WireErrorTally {
        self.wire_errors
    }

    /// The senders currently latched into quarantine, ascending.
    pub fn quarantined_devices(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .shard_states
            .iter()
            .flat_map(|s| s.latched.iter().copied())
            .collect();
        for s in &self.shard_states {
            out.extend(
                s.flat_latched
                    .iter()
                    .enumerate()
                    .filter(|&(_, &latched)| latched)
                    .map(|(d, _)| d as u32),
            );
        }
        out.sort_unstable();
        out
    }

    /// The first wire error seen (kept for diagnostics; `None` if every
    /// rejection was a query/kind mismatch rather than a decode failure).
    pub fn first_error(&self) -> Option<WireError> {
        self.first_error
    }

    fn query_index(&self, report: &Report) -> Option<usize> {
        let idx = self.queries.iter().position(|q| q.id == report.query)?;
        let kind_matches = matches!(
            (self.queries[idx].kind, report.payload),
            (QueryKind::Numeric { .. }, Payload::Value(_)) | (QueryKind::RrBit, Payload::RrBit(_))
        );
        kind_matches.then_some(idx)
    }

    /// Ingests a batch of concatenated wire frames.
    ///
    /// Decode recovers from corruption (the stream resync rules of
    /// [`decode_stream`]), then each decoded report passes, inside its
    /// owning shard and in stream order, through the quarantine latch and
    /// the dedup window before being absorbed — so duplicated and
    /// reordered deliveries fold to byte-identical accumulator totals, and
    /// persistently-malformed senders are latched out after `strike_limit`
    /// attributable violations.
    ///
    /// Runs the pipeline selected by [`Collector::with_ingest_path`]: the
    /// columnar batch path (default) or the scalar reference path. The two
    /// produce **byte-identical** stats, totals, and quarantine state for
    /// every input.
    pub fn ingest_frames(&mut self, bytes: &[u8]) -> IngestStats {
        let _span = INGEST_SPAN.enter();
        let stats = match self.ingest_path {
            IngestPath::Columnar => self.ingest_columnar(bytes),
            IngestPath::Reference => self.ingest_reference(bytes),
        };
        self.ingested += stats.accepted;
        self.rejected += stats.rejected;
        INGESTED.add(stats.accepted);
        REJECTED.record_always(stats.rejected);
        CORRUPT_FRAMES.add(stats.corrupt_frames);
        RESYNCS.add(stats.resyncs);
        DUPLICATES.add(stats.duplicates);
        STALE.add(stats.stale);
        LATE.add(stats.late);
        QUARANTINE_DROPPED.add(stats.quarantine_dropped);
        QUARANTINE_LATCHED.record_always(stats.quarantine_latched);
        BATCH_SIZE.record(stats.accepted);
        stats
    }

    /// Classifies decoded items into shard-pass items in stream order,
    /// tallying decode errors and unknown-query rejections. Shared by both
    /// ingest paths — the strike/report interleaving each shard sees is
    /// produced here, so the paths cannot diverge on it.
    fn classify(
        &mut self,
        items_raw: impl IntoIterator<Item = Result<Report, WireError>>,
        stats: &mut IngestStats,
    ) -> Vec<Item> {
        let mut items: Vec<Item> = Vec::new();
        for raw in items_raw {
            match raw {
                Ok(report) => match self.query_index(&report) {
                    Some(q) => items.push(Item::Report { q, report }),
                    None => {
                        // Unknown query id or kind/query mismatch: the
                        // frame decoded (checksum-valid), so the sender is
                        // known and the violation is attributable.
                        stats.rejected += 1;
                        items.push(Item::Strike {
                            device: report.device,
                        });
                    }
                },
                Err(e) => {
                    stats.rejected += 1;
                    self.wire_errors.count(&e);
                    self.first_error.get_or_insert(e);
                    if let Some(device) = e.attributable_device() {
                        items.push(Item::Strike { device });
                    }
                }
            }
        }
        items
    }

    /// Applies one item to its owning shard: the quarantine latch, strike
    /// counting, the watermark (late-arrival) check, the dedup window, and
    /// accumulator absorption. The single definition of per-item semantics
    /// — both ingest paths route every item through here, in the same
    /// per-shard order.
    fn apply_item(
        st: &mut ShardState,
        strike_limit: u32,
        window_floor: u32,
        item: &Item,
        batch: &mut ShardBatch,
    ) {
        let device = item.device();
        if device < st.flat_cap {
            // Flat route: direct indexing, no hashing. Mirrors the
            // fallback arm below statement-for-statement.
            let d = device as usize;
            match item {
                Item::Strike { .. } => {
                    if st.flat_latched[d] {
                        return;
                    }
                    st.flat_strikes[d] += 1;
                    if st.flat_strikes[d] >= strike_limit {
                        st.flat_strikes[d] = 0;
                        st.flat_latched[d] = true;
                        batch.quarantine_latched += 1;
                    }
                }
                Item::Report { q, report } => {
                    if st.flat_latched[d] {
                        batch.quarantine_dropped += 1;
                        return;
                    }
                    if report.epoch < window_floor {
                        batch.late += 1;
                        return;
                    }
                    let nq = st.accs.len();
                    match st.flat_dedup[d * nq + *q].admit(report.epoch) {
                        Admit::Fresh => {
                            st.accs[*q].absorb(report.payload);
                            batch.accepted += 1;
                        }
                        Admit::Duplicate => batch.duplicates += 1,
                        Admit::Stale => batch.stale += 1,
                    }
                }
            }
            return;
        }
        match item {
            Item::Strike { .. } => {
                if st.latched.contains(&device) {
                    return;
                }
                let strikes = st.strikes.entry(device).or_insert(0);
                *strikes += 1;
                if *strikes >= strike_limit {
                    st.strikes.remove(&device);
                    st.latched.insert(device);
                    batch.quarantine_latched += 1;
                }
            }
            Item::Report { q, report } => {
                if st.latched.contains(&device) {
                    batch.quarantine_dropped += 1;
                    return;
                }
                if report.epoch < window_floor {
                    batch.late += 1;
                    return;
                }
                let nq = st.accs.len();
                let slots = st
                    .dedup
                    .entry(device)
                    .or_insert_with(|| vec![DedupSlot::default(); nq]);
                match slots[*q].admit(report.epoch) {
                    Admit::Fresh => {
                        st.accs[*q].absorb(report.payload);
                        batch.accepted += 1;
                    }
                    Admit::Duplicate => batch.duplicates += 1,
                    Admit::Stale => batch.stale += 1,
                }
            }
        }
    }

    /// Folds per-shard batch results into the call's stats.
    fn fold_shard_batches(stats: &mut IngestStats, batches: Vec<ShardBatch>) {
        for b in batches {
            stats.accepted += b.accepted;
            stats.duplicates += b.duplicates;
            stats.stale += b.stale;
            stats.late += b.late;
            stats.quarantine_dropped += b.quarantine_dropped;
            stats.quarantine_latched += b.quarantine_latched;
        }
        // Stale, late, and quarantined frames were delivered but not
        // folded.
        stats.rejected += stats.stale + stats.late + stats.quarantine_dropped;
    }

    /// The scalar reference pipeline (kept selectable for differential
    /// testing): per-frame decode — parallel only when the whole batch is
    /// aligned and clean — then every shard filter-scans the full item
    /// list for its own devices.
    fn ingest_reference(&mut self, bytes: &[u8]) -> IngestStats {
        let mut stats = IngestStats::default();

        // Phase 1: decode. Parallel aligned fast path; sequential resync
        // scan the moment anything in the batch is off.
        let decode_span = DECODE_SPAN.enter();
        const DECODE_CHUNK: usize = 16 * 1024;
        let aligned = bytes.len().is_multiple_of(FRAME_LEN);
        let mut decoded: Option<Vec<Result<Report, WireError>>> = None;
        if aligned {
            let chunks: Vec<&[u8]> = bytes.chunks(DECODE_CHUNK * FRAME_LEN).collect();
            let parts: Vec<Vec<Result<Report, WireError>>> = ulp_par::par_map(&chunks, |chunk| {
                chunk.chunks(FRAME_LEN).map(Report::decode).collect()
            });
            let flat: Vec<Result<Report, WireError>> = parts.into_iter().flatten().collect();
            if flat.iter().all(Result::is_ok) {
                decoded = Some(flat);
            }
        }
        let items_raw = match decoded {
            Some(flat) => flat,
            None => {
                let stream = decode_stream(bytes);
                stats.corrupt_frames = stream.corrupt_frames;
                stats.resyncs = stream.resyncs;
                stream.items
            }
        };
        drop(decode_span);

        // Phase 1.5: classify into shard-pass items, tallying errors.
        let items = self.classify(items_raw, &mut stats);

        // Phase 2: shard pass. Each shard owns its accumulators, dedup
        // windows, and quarantine records, and walks the item sequence in
        // stream order for its own devices. The shard a device belongs to
        // is a pure function of its id, so this is schedule-free.
        let accumulate_span = ACCUMULATE_SPAN.enter();
        let shards = self.shard_states.len() as u64;
        let strike_limit = self.strike_limit;
        let window_floor = self.window_floor;
        let guards: Vec<std::sync::Mutex<(u64, &mut ShardState)>> = self
            .shard_states
            .iter_mut()
            .enumerate()
            .map(|(i, s)| std::sync::Mutex::new((i as u64, s)))
            .collect();
        let batches: Vec<ShardBatch> = ulp_par::par_map(&guards, |guard| {
            let mut locked = guard.lock().expect("shard guard poisoned");
            let (shard, ref mut st) = *locked;
            let mut batch = ShardBatch::default();
            for item in &items {
                if device_hash(item.device()) % shards != shard {
                    continue;
                }
                Self::apply_item(st, strike_limit, window_floor, item, &mut batch);
            }
            batch
        });
        drop(guards);
        drop(accumulate_span);
        Self::fold_shard_batches(&mut stats, batches);
        stats
    }

    /// The columnar pipeline: struct-of-arrays batch decode
    /// ([`ColumnarBatch::decode`] — parallel chunks, sequential fallback
    /// only around structural errors), then a parallel stable bucket
    /// shuffle partitioning items by owning shard, then contention-free
    /// per-shard accumulation.
    ///
    /// # Why the result is byte-identical to the reference path
    ///
    /// Decode produces the same item sequence, `corrupt_frames`, and
    /// `resyncs` as [`decode_stream`] for *any* bytes (see
    /// [`ColumnarBatch`]); classification is shared code; and the bucket
    /// shuffle is stable (chunk-major, stream order within a chunk), so
    /// the item subsequence each shard consumes — through the same
    /// [`Collector::apply_item`] — equals the reference path's filter
    /// scan. Every accumulator, dedup window, and quarantine latch
    /// therefore evolves through identical states.
    fn ingest_columnar(&mut self, bytes: &[u8]) -> IngestStats {
        let mut stats = IngestStats::default();

        // Phase 1: columnar decode.
        let decode_span = DECODE_SPAN.enter();
        let batch = ColumnarBatch::decode(bytes);
        stats.corrupt_frames = batch.corrupt_frames;
        stats.resyncs = batch.resyncs;
        drop(decode_span);

        // Phase 1.5: classify in stream order (shared with the reference
        // path).
        let items = self.classify(batch.iter(), &mut stats);

        // Phase 2a: stable bucket shuffle. Parallel over fixed item
        // chunks, each producing per-shard buckets; concatenating one
        // shard's buckets in chunk order reconstructs that shard's
        // stream-order subsequence. Pure function of the items — no
        // schedule dependence.
        let accumulate_span = ACCUMULATE_SPAN.enter();
        const BUCKET_CHUNK: usize = 16 * 1024;
        let shards = self.shard_states.len();
        let item_chunks: Vec<&[Item]> = items.chunks(BUCKET_CHUNK).collect();
        let bucketed: Vec<Vec<Vec<Item>>> = ulp_par::par_map(&item_chunks, |chunk| {
            let mut buckets: Vec<Vec<Item>> = vec![Vec::new(); shards];
            for item in *chunk {
                buckets[(device_hash(item.device()) % shards as u64) as usize].push(*item);
            }
            buckets
        });

        // Phase 2b: contention-free per-shard accumulation. Each shard
        // walks only its own buckets, in canonical shard-then-chunk order.
        let strike_limit = self.strike_limit;
        let window_floor = self.window_floor;
        let guards: Vec<std::sync::Mutex<(usize, &mut ShardState)>> = self
            .shard_states
            .iter_mut()
            .enumerate()
            .map(|(i, s)| std::sync::Mutex::new((i, s)))
            .collect();
        let batches: Vec<ShardBatch> = ulp_par::par_map(&guards, |guard| {
            let mut locked = guard.lock().expect("shard guard poisoned");
            let (shard, ref mut st) = *locked;
            let mut batch = ShardBatch::default();
            for chunk_buckets in &bucketed {
                for item in &chunk_buckets[shard] {
                    Self::apply_item(st, strike_limit, window_floor, item, &mut batch);
                }
            }
            batch
        });
        drop(guards);
        drop(accumulate_span);
        Self::fold_shard_batches(&mut stats, batches);
        stats
    }

    /// Folds every shard's accumulators (in shard-index order) into the
    /// query's lifetime totals.
    ///
    /// # Panics
    ///
    /// Panics if `query_id` was not registered.
    pub fn totals(&self, query_id: u16) -> QueryTotals {
        let _span = FOLD_SPAN.enter();
        let idx = self
            .queries
            .iter()
            .position(|q| q.id == query_id)
            .unwrap_or_else(|| panic!("query {query_id} not registered"));
        let mut folded = QueryTotals::new(self.queries[idx].kind);
        for shard in &self.shard_states {
            folded.merge(&shard.accs[idx]);
            SHARD_MERGES.inc();
        }
        folded
    }

    /// The registered query streams.
    pub fn queries(&self) -> &[QueryConfig] {
        &self.queries
    }

    /// The current watermark floor: reports with an older epoch are late
    /// arrivals for a window the service already sealed.
    pub fn window_floor(&self) -> u32 {
        self.window_floor
    }

    /// Raises the watermark floor to `floor` (the first epoch of the
    /// oldest still-open window). Called by the streaming service when it
    /// seals a window; every per-device dedup window, strike count, and
    /// quarantine latch is deliberately left intact so sender state
    /// carries across window boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `floor` would move the watermark backwards — a sealed
    /// window must never reopen.
    pub fn advance_window_floor(&mut self, floor: u32) {
        assert!(
            floor >= self.window_floor,
            "watermark cannot retreat: {} -> {floor}",
            self.window_floor
        );
        self.window_floor = floor;
    }

    /// Drains the accumulators of every registered query — the fold of
    /// [`Collector::totals`] over all queries, in registration order —
    /// and resets them to empty for the next window. Dedup windows,
    /// strikes, and quarantine latches persist; only the aggregates move
    /// out. The streaming service calls this at each window seal.
    pub fn take_window_totals(&mut self) -> Vec<QueryTotals> {
        let out: Vec<QueryTotals> = self.queries.iter().map(|q| self.totals(q.id)).collect();
        for st in &mut self.shard_states {
            st.accs = self
                .queries
                .iter()
                .map(|q| QueryTotals::new(q.kind))
                .collect();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::MAGIC;

    const NUMERIC: QueryConfig = QueryConfig {
        id: 0,
        kind: QueryKind::Numeric {
            sketch_min_k: -64,
            sketch_max_k: 64,
        },
    };
    const RR: QueryConfig = QueryConfig {
        id: 1,
        kind: QueryKind::RrBit,
    };

    fn frames(reports: &[Report]) -> Vec<u8> {
        let mut out = Vec::new();
        for r in reports {
            r.encode_into(&mut out);
        }
        out
    }

    fn value(device: u32, v: i32) -> Report {
        Report {
            device,
            query: 0,
            epoch: 0,
            payload: Payload::Value(v),
        }
    }

    fn value_at(device: u32, epoch: u32, v: i32) -> Report {
        Report {
            device,
            query: 0,
            epoch,
            payload: Payload::Value(v),
        }
    }

    #[test]
    fn accumulates_exact_moments_and_tallies() {
        let mut c = Collector::new(2, &[NUMERIC, RR]);
        let batch = frames(&[
            value(1, 3),
            value(2, -4),
            Report {
                device: 3,
                query: 1,
                epoch: 0,
                payload: Payload::RrBit(true),
            },
            Report {
                device: 4,
                query: 1,
                epoch: 0,
                payload: Payload::RrBit(false),
            },
        ]);
        let stats = c.ingest_frames(&batch);
        assert_eq!(
            stats,
            IngestStats {
                accepted: 4,
                ..IngestStats::default()
            }
        );
        let t = c.totals(0);
        assert_eq!(
            (t.count, t.sum, t.sum2, t.sum3, t.sum4),
            (2, -1, 25, -37, 337)
        );
        assert_eq!(t.sketch.as_ref().unwrap().total(), 2);
        let rr = c.totals(1);
        assert_eq!((rr.count, rr.ones), (2, 1));
    }

    #[test]
    fn shard_count_does_not_change_totals() {
        let reports: Vec<Report> = (0..500).map(|i| value(i, (i as i32 % 41) - 20)).collect();
        let batch = frames(&reports);
        let mut one = Collector::new(1, &[NUMERIC]);
        let mut eight = Collector::new(8, &[NUMERIC]);
        one.ingest_frames(&batch);
        eight.ingest_frames(&batch);
        assert_eq!(one.totals(0), eight.totals(0));
    }

    #[test]
    fn split_batches_equal_one_batch() {
        let reports: Vec<Report> = (0..100).map(|i| value(i, i as i32)).collect();
        let mut whole = Collector::new(4, &[NUMERIC]);
        whole.ingest_frames(&frames(&reports));
        let mut split = Collector::new(4, &[NUMERIC]);
        split.ingest_frames(&frames(&reports[..37]));
        split.ingest_frames(&frames(&reports[37..]));
        assert_eq!(whole.totals(0), split.totals(0));
        assert_eq!(whole.reports_ingested(), split.reports_ingested());
    }

    #[test]
    fn corrupt_frames_are_skipped_not_fatal_to_the_batch() {
        let mut c = Collector::new(2, &[NUMERIC]);
        let mut batch = frames(&[value(1, 5)]);
        // A checksum-corrupted frame in the middle of the stream...
        let mut bad = value(2, 6).encode();
        bad[6] ^= 0xFF;
        batch.extend_from_slice(&bad);
        // ...must not shadow the clean frames after it.
        batch.extend_from_slice(&value(3, 7).encode());
        batch.extend_from_slice(&value(4, 8).encode());
        let stats = c.ingest_frames(&batch);
        assert_eq!(stats.accepted, 3);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.corrupt_frames, 1);
        assert_eq!(stats.resyncs, 0, "aligned corruption needs no resync");
        assert!(matches!(
            c.first_error(),
            Some(WireError::ChecksumMismatch { .. })
        ));
        assert_eq!(c.wire_errors().checksum_mismatch, 1);
        assert_eq!(c.totals(0).count, 3);
    }

    #[test]
    fn truncated_mid_stream_frame_resyncs_on_the_next_magic() {
        let mut c = Collector::new(2, &[NUMERIC]);
        let mut batch = frames(&[value(1, 5)]);
        // Deliver only the first 11 bytes of one frame: everything after
        // it shifts off the 20-byte grid.
        batch.extend_from_slice(&value(2, 6).encode()[..11]);
        batch.extend_from_slice(&value(3, 7).encode());
        batch.extend_from_slice(&value(4, 8).encode());
        let stats = c.ingest_frames(&batch);
        assert_eq!(stats.accepted, 3, "frames after the cut must survive");
        assert_eq!(stats.corrupt_frames, 1);
        assert_eq!(stats.resyncs, 1, "misalignment requires a resync");
        assert_eq!(c.totals(0).count, 3);
    }

    #[test]
    fn trailing_partial_frame_is_one_truncated_rejection() {
        let mut c = Collector::new(2, &[NUMERIC]);
        let mut batch = frames(&[value(1, 5)]);
        batch.extend_from_slice(&[MAGIC, 0x01]);
        let stats = c.ingest_frames(&batch);
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(c.wire_errors().truncated, 1);
    }

    #[test]
    fn duplicates_and_reorderings_fold_to_the_clean_totals() {
        let clean: Vec<Report> = (0..4).map(|e| value_at(9, e, 10 + e as i32)).collect();
        let mut reference = Collector::new(2, &[NUMERIC]);
        reference.ingest_frames(&frames(&clean));

        // Reversed order, every frame delivered twice, one delivered four
        // times: the window must fold all of it away.
        let mut noisy: Vec<Report> = clean.iter().rev().copied().collect();
        noisy.extend(clean.iter().copied());
        noisy.push(clean[2]);
        noisy.push(clean[2]);
        let mut c = Collector::new(2, &[NUMERIC]);
        let stats = c.ingest_frames(&frames(&noisy));
        assert_eq!(stats.accepted, 4);
        assert_eq!(stats.duplicates, 6);
        assert_eq!(stats.rejected, 0, "duplicates are not rejections");
        assert_eq!(c.totals(0), reference.totals(0));
    }

    #[test]
    fn duplicates_across_batches_are_still_folded() {
        let mut c = Collector::new(2, &[NUMERIC]);
        c.ingest_frames(&frames(&[value_at(5, 0, 3)]));
        let stats = c.ingest_frames(&frames(&[value_at(5, 0, 3)]));
        assert_eq!((stats.accepted, stats.duplicates), (0, 1));
        assert_eq!(c.totals(0).count, 1);
    }

    #[test]
    fn epochs_older_than_the_window_are_stale() {
        let mut c = Collector::new(1, &[NUMERIC]);
        // Blocks 2 and 3 occupy the window; block 0 then predates both.
        c.ingest_frames(&frames(&[value_at(1, 128, 1), value_at(1, 192, 2)]));
        let stats = c.ingest_frames(&frames(&[value_at(1, 0, 3)]));
        assert_eq!((stats.accepted, stats.stale, stats.rejected), (0, 1, 1));
        assert_eq!(c.totals(0).count, 2);
    }

    #[test]
    fn persistent_protocol_violations_latch_the_sender() {
        let mut c = Collector::new(2, &[NUMERIC]);
        let unknown_query = |epoch: u32| Report {
            device: 66,
            query: 9,
            epoch,
            payload: Payload::Value(1),
        };
        // Three attributable violations (default strike limit) latch the
        // sender...
        let stats = c.ingest_frames(&frames(&[
            unknown_query(0),
            unknown_query(1),
            unknown_query(2),
        ]));
        assert_eq!(stats.quarantine_latched, 1);
        assert_eq!(stats.rejected, 3);
        assert_eq!(c.quarantined_devices(), vec![66]);
        // ...after which even its *valid* frames are dropped.
        let stats = c.ingest_frames(&frames(&[value(66, 5), value(67, 6)]));
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.quarantine_dropped, 1);
        assert_eq!(c.totals(0).count, 1);
    }

    #[test]
    fn in_flight_corruption_never_strikes_the_sender() {
        let mut c = Collector::new(2, &[NUMERIC]);
        // Ten corrupted frames from the same honest device: checksum
        // failures are not attributable, so it must never be latched.
        let mut batch = Vec::new();
        for e in 0..10 {
            let mut f = value_at(8, e, 3).encode();
            f[15] ^= 0x40;
            batch.extend_from_slice(&f);
        }
        c.ingest_frames(&batch);
        assert!(c.quarantined_devices().is_empty());
        // The device's clean frames still count.
        let stats = c.ingest_frames(&frames(&[value_at(8, 11, 3)]));
        assert_eq!(stats.accepted, 1);
    }

    #[test]
    fn sequence_drift_is_an_attributable_strike() {
        let mut c = Collector::new(2, &[NUMERIC]).with_quarantine_strikes(2);
        let mut batch = Vec::new();
        for epoch in 0..2u32 {
            let mut f = value_at(12, epoch, 1).encode();
            f[3] = f[3].wrapping_add(1); // a re-randomizing retrier drifts
            let sum = {
                // reseal so only the semantic violation remains
                let mut h: u32 = 0x811C_9DC5;
                for &b in &f[..18] {
                    h ^= u32::from(b);
                    h = h.wrapping_mul(0x0100_0193);
                }
                ((h >> 16) ^ (h & 0xFFFF)) as u16
            };
            f[18..20].copy_from_slice(&sum.to_le_bytes());
            batch.extend_from_slice(&f);
        }
        let stats = c.ingest_frames(&batch);
        assert_eq!(stats.quarantine_latched, 1);
        assert_eq!(c.wire_errors().seq_mismatch, 2);
        assert_eq!(c.quarantined_devices(), vec![12]);
    }

    #[test]
    fn seal_grades_coverage_against_quorum() {
        let full = EpochSeal::evaluate(100, 95, 0.9);
        assert!(full.is_full());
        assert_eq!(full.coverage, 0.95);
        let degraded = EpochSeal::evaluate(100, 70, 0.9);
        assert_eq!(degraded.status, SealStatus::Degraded { coverage: 0.70 });
        assert!(!degraded.is_full());
        // An empty expectation seals full by convention.
        assert!(EpochSeal::evaluate(0, 0, 0.9).is_full());
    }

    #[test]
    #[should_panic(expected = "duplicate query id")]
    fn duplicate_query_ids_panic() {
        Collector::new(1, &[RR, RR]);
    }

    /// A deliberately hostile stream: clean reports over several epochs,
    /// duplicates, stale epochs, unknown-query strikes (enough to latch),
    /// structural corruption forcing resyncs, and a truncated tail.
    fn hostile_stream() -> Vec<u8> {
        let mut batch = Vec::new();
        for epoch in 0..6u32 {
            for device in 0..300u32 {
                let r = if device % 5 == 0 {
                    Report {
                        device,
                        query: 1,
                        epoch,
                        payload: Payload::RrBit(device % 2 == 0),
                    }
                } else {
                    value_at(device, epoch, (device as i32 % 41) - 20)
                };
                r.encode_into(&mut batch);
                if device % 17 == 0 {
                    r.encode_into(&mut batch); // duplicate delivery
                }
            }
            // A persistent violator: unknown query id, checksum-valid.
            Report {
                device: 9000,
                query: 77,
                epoch,
                payload: Payload::Value(1),
            }
            .encode_into(&mut batch);
            // Out-of-window stale replay.
            value_at(3, 0, 5).encode_into(&mut batch);
        }
        // Structural damage: a smashed magic and a smashed checksum.
        batch[40 * FRAME_LEN] ^= 0xFF;
        let n = batch.len();
        batch[n - 50 * FRAME_LEN + 18] ^= 0x01;
        // Truncated tail.
        batch.extend_from_slice(&value_at(1, 5, 2).encode()[..7]);
        batch
    }

    #[test]
    fn columnar_and_reference_paths_are_byte_identical() {
        let batch = hostile_stream();
        for shards in [1usize, 3, 8] {
            let mut reference = Collector::new(shards, &[NUMERIC, RR])
                .with_quarantine_strikes(3)
                .with_ingest_path(IngestPath::Reference);
            let mut columnar = Collector::new(shards, &[NUMERIC, RR])
                .with_quarantine_strikes(3)
                .with_ingest_path(IngestPath::Columnar);
            // Split the stream mid-frame so state carries across calls on
            // both paths identically.
            let cut = batch.len() / 2 - 3;
            let r1 = reference.ingest_frames(&batch[..cut]);
            let c1 = columnar.ingest_frames(&batch[..cut]);
            assert_eq!(r1, c1);
            let r2 = reference.ingest_frames(&batch[cut..]);
            let c2 = columnar.ingest_frames(&batch[cut..]);
            assert_eq!(r2, c2);
            assert_eq!(reference.totals(0), columnar.totals(0));
            assert_eq!(reference.totals(1), columnar.totals(1));
            assert_eq!(reference.reports_ingested(), columnar.reports_ingested());
            assert_eq!(reference.frames_rejected(), columnar.frames_rejected());
            assert_eq!(reference.wire_errors(), columnar.wire_errors());
            assert_eq!(reference.first_error(), columnar.first_error());
            assert_eq!(
                reference.quarantined_devices(),
                columnar.quarantined_devices()
            );
            assert!(r1.accepted > 0, "hostile stream must still accept frames");
        }
    }

    #[test]
    fn flat_device_tables_match_the_hash_fallback() {
        let batch = hostile_stream();
        for path in [IngestPath::Columnar, IngestPath::Reference] {
            let mut hashed = Collector::new(3, &[NUMERIC, RR])
                .with_quarantine_strikes(3)
                .with_ingest_path(path);
            // Cap 512 covers the 300-device population but not the 9000
            // violator, so the flat route and the hash fallback run side
            // by side in the same pass.
            let mut flat = Collector::new(3, &[NUMERIC, RR])
                .with_quarantine_strikes(3)
                .with_ingest_path(path)
                .with_device_capacity(512);
            let cut = batch.len() / 2 - 3;
            assert_eq!(
                hashed.ingest_frames(&batch[..cut]),
                flat.ingest_frames(&batch[..cut])
            );
            assert_eq!(
                hashed.ingest_frames(&batch[cut..]),
                flat.ingest_frames(&batch[cut..])
            );
            assert_eq!(hashed.totals(0), flat.totals(0));
            assert_eq!(hashed.totals(1), flat.totals(1));
            assert_eq!(hashed.reports_ingested(), flat.reports_ingested());
            assert_eq!(hashed.frames_rejected(), flat.frames_rejected());
            assert_eq!(hashed.wire_errors(), flat.wire_errors());
            assert_eq!(hashed.quarantined_devices(), flat.quarantined_devices());
        }
        // A cap past every sender keeps the violator latch on the flat
        // route too.
        let mut all_flat = Collector::new(2, &[NUMERIC, RR])
            .with_quarantine_strikes(3)
            .with_device_capacity(10_000);
        all_flat.ingest_frames(&batch);
        assert!(all_flat.quarantined_devices().contains(&9000));
    }

    #[test]
    #[should_panic(expected = "device capacity must be set before the first ingest")]
    fn device_capacity_after_ingest_panics() {
        let mut c = Collector::new(1, &[NUMERIC]);
        c.ingest_frames(&frames(&[value(1, 2)]));
        let _ = c.with_device_capacity(16);
    }

    #[test]
    fn ingest_path_parses_strictly() {
        assert_eq!(IngestPath::parse(None), Ok(IngestPath::Columnar));
        assert_eq!(
            IngestPath::parse(Some("columnar")),
            Ok(IngestPath::Columnar)
        );
        assert_eq!(
            IngestPath::parse(Some(" Reference ")),
            Ok(IngestPath::Reference)
        );
        let err = IngestPath::parse(Some("fast")).unwrap_err();
        assert_eq!(err.var, INGEST_PATH_ENV);
        assert_eq!(err.expected, "columnar | reference");
    }
}
