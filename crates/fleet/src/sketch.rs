//! An exact streaming quantile sketch over the datapath grid.
//!
//! DP-Box outputs live on a small integer grid (the thresholding window is
//! a few thousand codes wide), so the collector does not need an
//! approximate mergeable sketch — a bounded histogram of `u64` counts *is*
//! the exact empirical distribution, merges by elementwise addition
//! (associative and commutative, hence byte-identical for any shard
//! arrangement), and answers any quantile exactly.

/// Exact quantile sketch: one counter per grid index in `[min_k, max_k]`,
/// out-of-range observations clamped to the edge bins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridSketch {
    min_k: i64,
    max_k: i64,
    counts: Vec<u64>,
    total: u64,
}

impl GridSketch {
    /// Creates an empty sketch over `[min_k, max_k]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is inverted or wider than 2²⁴ bins — fleet
    /// sketches cover a device output window, not an arbitrary i64 range.
    pub fn new(min_k: i64, max_k: i64) -> Self {
        assert!(min_k <= max_k, "inverted sketch range [{min_k}, {max_k}]");
        let bins = (max_k - min_k + 1) as u128;
        assert!(bins <= 1 << 24, "sketch range too wide: {bins} bins");
        GridSketch {
            min_k,
            max_k,
            counts: vec![0; bins as usize],
            total: 0,
        }
    }

    /// Lowest tracked grid index.
    pub fn min_k(&self) -> i64 {
        self.min_k
    }

    /// Highest tracked grid index.
    pub fn max_k(&self) -> i64 {
        self.max_k
    }

    /// Observations recorded so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records one observation, clamping to the tracked range.
    pub fn record(&mut self, k: i64) {
        let idx = (k.clamp(self.min_k, self.max_k) - self.min_k) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Count recorded at grid index `k` (0 outside the range).
    pub fn count(&self, k: i64) -> u64 {
        if k < self.min_k || k > self.max_k {
            return 0;
        }
        self.counts[(k - self.min_k) as usize]
    }

    /// Folds `other` into `self` by elementwise addition.
    ///
    /// # Panics
    ///
    /// Panics if the two sketches cover different ranges.
    pub fn merge(&mut self, other: &GridSketch) {
        assert!(
            self.min_k == other.min_k && self.max_k == other.max_k,
            "sketch range mismatch: [{}, {}] vs [{}, {}]",
            self.min_k,
            self.max_k,
            other.min_k,
            other.max_k
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// The exact `q`-quantile: the smallest grid index whose cumulative
    /// count reaches `⌈q·total⌉` (with a floor of one observation).
    /// Returns `None` for an empty sketch.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q <= 1`.
    pub fn quantile(&self, q: f64) -> Option<i64> {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1], got {q}");
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(self.min_k + i as i64);
            }
        }
        unreachable!("cumulative count reaches total")
    }

    /// Fraction of observations within `±w` grid units of `center` — the
    /// empirical density mass the median standard error is derived from.
    pub fn mass_within(&self, center: i64, w: i64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let lo = (center - w).clamp(self.min_k, self.max_k);
        let hi = (center + w).clamp(self.min_k, self.max_k);
        let sum: u64 = ((lo - self.min_k) as usize..=(hi - self.min_k) as usize)
            .map(|i| self.counts[i])
            .sum();
        sum as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_exact_order_statistics() {
        let mut s = GridSketch::new(0, 10);
        for k in [5, 1, 9, 3, 5, 7, 5] {
            s.record(k);
        }
        // Sorted: 1 3 5 5 5 7 9 — median is the 4th (rank ⌈0.5·7⌉ = 4).
        assert_eq!(s.quantile(0.5), Some(5));
        assert_eq!(s.quantile(1.0), Some(9));
        assert_eq!(s.quantile(1e-9), Some(1));
    }

    #[test]
    fn merge_equals_interleaved_recording() {
        let mut all = GridSketch::new(-5, 5);
        let mut a = GridSketch::new(-5, 5);
        let mut b = GridSketch::new(-5, 5);
        for (i, k) in [-5, 0, 3, 3, -2, 5, 1].iter().enumerate() {
            all.record(*k);
            if i % 2 == 0 { &mut a } else { &mut b }.record(*k);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn out_of_range_observations_clamp() {
        let mut s = GridSketch::new(0, 4);
        s.record(-100);
        s.record(100);
        assert_eq!(s.count(0), 1);
        assert_eq!(s.count(4), 1);
        assert_eq!(s.total(), 2);
    }

    #[test]
    fn empty_sketch_has_no_quantile() {
        assert_eq!(GridSketch::new(0, 1).quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "range mismatch")]
    fn merging_mismatched_ranges_panics() {
        GridSketch::new(0, 4).merge(&GridSketch::new(0, 5));
    }

    #[test]
    fn mass_within_counts_the_window() {
        let mut s = GridSketch::new(0, 10);
        for k in 0..=10 {
            s.record(k);
        }
        assert!((s.mass_within(5, 2) - 5.0 / 11.0).abs() < 1e-12);
        assert_eq!(s.mass_within(0, 10), 1.0);
    }
}
