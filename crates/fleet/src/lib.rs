//! # ulp-fleet — population-scale LDP aggregation for DP-Box devices
//!
//! The paper's device model ([`dp_box`]) certifies what *one* ultra-low-power
//! sensor may release; this crate builds the other half of the local-DP
//! deployment story: millions of such devices reporting to an **untrusted
//! collector** that must recover accurate population statistics from
//! privatized, window-clamped, occasionally-corrupted reports.
//!
//! The pipeline, stage by stage:
//!
//! * [`wire`] — a compact versioned report frame (magic, version, device,
//!   query, epoch, payload, checksum) with typed rejection of corrupt or
//!   truncated frames, plus a columnar struct-of-arrays batch decoder
//!   ([`ColumnarBatch`]) proven byte-equivalent to the sequential resync
//!   scanner on arbitrary input;
//! * [`collector`] — hash-sharded per-query moment accumulators plus an
//!   exact grid quantile [`sketch`], ingesting report batches through a
//!   columnar decode → stable bucket shuffle → contention-free per-shard
//!   accumulate pipeline with bit-identical totals at any thread or shard
//!   count (and vs the scalar reference path, `ULP_FLEET_INGEST_PATH`);
//! * [`estimator`] — debiased estimators (mean, variance, median, RR
//!   frequency and count) built on the sampler's *exact* output PMF, each
//!   returning an analytic standard error and, where proven, a
//!   deterministic bias envelope;
//! * [`driver`] — the simulated fleet: N full DP-Box devices (budget
//!   ledgers, URNG health self-tests, fail-safe exclusion) streaming epochs
//!   through a collector, with the per-device privacy ledgers folded into
//!   one auditable fleet ledger;
//! * [`sweep`] — the accuracy sweep gating `|estimate − truth|` against
//!   `3·SE + bias_bound` across population sizes;
//! * [`chaos`] — seeded, deterministic lossy-transport fault injection
//!   (drop, duplicate, reorder, corrupt, truncate, delay in correlated
//!   bursts), driving the replay-safe retry and idempotent-ingest paths;
//! * [`window`] — the epoch-window lifecycle (`Open → Accumulating →
//!   Sealing → Sealed → Compacted`), sealed-window records, and
//!   order-canonicalized multi-epoch [`Rollup`]s whose merged ledgers stay
//!   bitwise auditable;
//! * [`service`] — the long-running streaming aggregation service:
//!   bounded per-lane ingest queues with typed [`Busy`] backpressure,
//!   watermark-driven window sealing, live snapshot queries over sealed
//!   windows, and rollup folding.
//!
//! Everything is deterministic by construction: device streams are
//! [`ulp_rng::stream_seed`]-derived, parallelism partitions by data (never
//! by schedule), and accumulator folds are exact integer arithmetic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod collector;
pub mod driver;
pub mod estimator;
pub mod service;
pub mod sketch;
pub mod sweep;
pub mod window;
pub mod wire;

pub use chaos::{
    chaos_seed_from_env, Attempt, ChaosConfig, ChaosConfigError, Delivery, DeviceChaos, FaultClass,
    FaultKind, CHAOS_SEED_ENV, MAX_DELAY_ROUNDS,
};
pub use collector::{
    ingest_phase_totals, Collector, EpochSeal, IngestPath, IngestPhaseTotals, IngestStats,
    QueryConfig, QueryKind, QueryTotals, SealStatus, WireErrorTally, DEFAULT_QUARANTINE_STRIKES,
    INGEST_PATH_ENV,
};
pub use driver::{
    sim_phase_ns, DeviceEngine, FleetConfig, FleetDriver, FleetError, FleetOutcome, ServiceOutcome,
    DEVICE_ENGINE_ENV, RR_QUERY, VALUE_QUERY,
};
pub use estimator::{Estimate, NoiseModel};
pub use service::{
    Busy, FleetService, ServiceConfig, ServiceSnapshot, WindowEstimates, SERVICE_QUEUE_ENV,
    SERVICE_WINDOW_ENV,
};
pub use sketch::GridSketch;
pub use sweep::{fleet_sweep, render_sweep, FleetSweepRow, GateResult};
pub use window::{
    window_spans, Rollup, RollupError, RollupOutcome, SealedWindow, Window, WindowPhase,
    WindowStateError,
};
pub use wire::{
    decode_counter_totals, decode_stream, ColumnarBatch, DecodeCounterTotals, DecodedStream,
    Payload, Report, WireError, FRAME_LEN, MAGIC, VERSION, VERSION_LEGACY,
};
