//! The device→collector report wire format.
//!
//! Devices transmit privatized reports over untrusted, lossy transports, so
//! the encoding is an explicit versioned frame rather than an in-memory
//! struct: fixed 20 bytes, little-endian fields, and a 16-bit FNV-1a
//! checksum so corrupt or truncated frames are rejected with a typed error
//! instead of silently polluting an aggregate.
//!
//! Layout (offsets in bytes):
//!
//! | off | size | field |
//! |-----|------|-------|
//! | 0   | 1    | magic `0xD9` |
//! | 1   | 1    | version (`1`) |
//! | 2   | 1    | payload kind (`0` = FxP value, `1` = RR bit) |
//! | 3   | 1    | reserved, must be `0` |
//! | 4   | 4    | device id, u32 LE |
//! | 8   | 2    | query id, u16 LE |
//! | 10  | 4    | epoch, u32 LE |
//! | 14  | 4    | payload, i32 LE (RR frames: `0` or `1`) |
//! | 18  | 2    | checksum: FNV-1a of bytes `0..18`, folded to 16 bits, LE |

use core::fmt;

/// Frame magic byte (first byte of every report frame).
pub const MAGIC: u8 = 0xD9;
/// Current wire-format version.
pub const VERSION: u8 = 1;
/// Encoded size of one report frame, in bytes.
pub const FRAME_LEN: usize = 20;

/// The privatized content of one report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Payload {
    /// A fixed-point noised sensor reading, in datapath grid units.
    Value(i32),
    /// One randomized-response bit.
    RrBit(bool),
}

impl Payload {
    fn kind(self) -> u8 {
        match self {
            Payload::Value(_) => 0,
            Payload::RrBit(_) => 1,
        }
    }

    fn raw(self) -> i32 {
        match self {
            Payload::Value(v) => v,
            Payload::RrBit(b) => i32::from(b),
        }
    }
}

/// One decoded device report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Reporting device id.
    pub device: u32,
    /// Query (aggregation stream) this report belongs to.
    pub query: u16,
    /// Reporting epoch.
    pub epoch: u32,
    /// The privatized payload.
    pub payload: Payload,
}

/// Why a frame was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Fewer than [`FRAME_LEN`] bytes were available.
    Truncated {
        /// Bytes actually available.
        got: usize,
    },
    /// Byte 0 was not [`MAGIC`].
    BadMagic {
        /// The byte found instead.
        found: u8,
    },
    /// The version byte names a format this decoder does not speak.
    UnsupportedVersion {
        /// The version found.
        found: u8,
    },
    /// The kind byte names no known payload type.
    UnknownKind {
        /// The kind byte found.
        found: u8,
    },
    /// The reserved byte was non-zero (a forward-compatibility guard:
    /// current encoders always write `0`).
    NonZeroReserved {
        /// The byte found.
        found: u8,
    },
    /// The checksum did not match the frame body.
    ChecksumMismatch {
        /// Checksum carried by the frame.
        stored: u16,
        /// Checksum computed over bytes `0..18`.
        computed: u16,
    },
    /// An RR frame carried a payload other than `0`/`1`.
    PayloadOutOfRange {
        /// The payload found.
        found: i32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { got } => {
                write!(f, "truncated frame: {got} of {FRAME_LEN} bytes")
            }
            WireError::BadMagic { found } => {
                write!(f, "bad magic byte {found:#04x} (expected {MAGIC:#04x})")
            }
            WireError::UnsupportedVersion { found } => {
                write!(f, "unsupported wire version {found} (speak {VERSION})")
            }
            WireError::UnknownKind { found } => write!(f, "unknown payload kind {found}"),
            WireError::NonZeroReserved { found } => {
                write!(f, "reserved byte must be 0, got {found:#04x}")
            }
            WireError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: frame carries {stored:#06x}, body hashes to {computed:#06x}"
            ),
            WireError::PayloadOutOfRange { found } => {
                write!(f, "RR payload must be 0 or 1, got {found}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a over the frame body, folded to 16 bits (xor-fold of the 32-bit
/// hash) — cheap enough for a sensor MCU; corruption slips past the fold
/// with probability ≈ 2⁻¹⁶ per frame (an integrity check against faults,
/// not an authenticator).
fn checksum(body: &[u8]) -> u16 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in body {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    ((h >> 16) ^ (h & 0xFFFF)) as u16
}

impl Report {
    /// Encodes the report as one [`FRAME_LEN`]-byte frame.
    pub fn encode(&self) -> [u8; FRAME_LEN] {
        let mut frame = [0u8; FRAME_LEN];
        frame[0] = MAGIC;
        frame[1] = VERSION;
        frame[2] = self.payload.kind();
        frame[3] = 0;
        frame[4..8].copy_from_slice(&self.device.to_le_bytes());
        frame[8..10].copy_from_slice(&self.query.to_le_bytes());
        frame[10..14].copy_from_slice(&self.epoch.to_le_bytes());
        frame[14..18].copy_from_slice(&self.payload.raw().to_le_bytes());
        let sum = checksum(&frame[..18]);
        frame[18..20].copy_from_slice(&sum.to_le_bytes());
        frame
    }

    /// Appends the encoded frame to `out` (the batch-building path).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.encode());
    }

    /// Decodes one frame from the front of `bytes`.
    ///
    /// # Errors
    ///
    /// A typed [`WireError`] naming the first integrity violation found:
    /// truncation, magic, version, kind, reserved byte, checksum, or RR
    /// payload range, checked in that order.
    pub fn decode(bytes: &[u8]) -> Result<Report, WireError> {
        if bytes.len() < FRAME_LEN {
            return Err(WireError::Truncated { got: bytes.len() });
        }
        let frame = &bytes[..FRAME_LEN];
        if frame[0] != MAGIC {
            return Err(WireError::BadMagic { found: frame[0] });
        }
        if frame[1] != VERSION {
            return Err(WireError::UnsupportedVersion { found: frame[1] });
        }
        if frame[3] != 0 {
            return Err(WireError::NonZeroReserved { found: frame[3] });
        }
        let stored = u16::from_le_bytes([frame[18], frame[19]]);
        let computed = checksum(&frame[..18]);
        if stored != computed {
            return Err(WireError::ChecksumMismatch { stored, computed });
        }
        let raw = i32::from_le_bytes([frame[14], frame[15], frame[16], frame[17]]);
        let payload = match frame[2] {
            0 => Payload::Value(raw),
            1 => match raw {
                0 => Payload::RrBit(false),
                1 => Payload::RrBit(true),
                other => return Err(WireError::PayloadOutOfRange { found: other }),
            },
            other => return Err(WireError::UnknownKind { found: other }),
        };
        Ok(Report {
            device: u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]),
            query: u16::from_le_bytes([frame[8], frame[9]]),
            epoch: u32::from_le_bytes([frame[10], frame[11], frame[12], frame[13]]),
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Report {
        Report {
            device: 0xDEAD_BEEF,
            query: 7,
            epoch: 42,
            payload: Payload::Value(-1234),
        }
    }

    #[test]
    fn roundtrip_value_and_rr() {
        let r = report();
        assert_eq!(Report::decode(&r.encode()).unwrap(), r);
        for bit in [false, true] {
            let r = Report {
                payload: Payload::RrBit(bit),
                ..report()
            };
            assert_eq!(Report::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn truncated_frame_is_typed() {
        let frame = report().encode();
        assert_eq!(
            Report::decode(&frame[..FRAME_LEN - 1]),
            Err(WireError::Truncated { got: FRAME_LEN - 1 })
        );
        assert_eq!(Report::decode(&[]), Err(WireError::Truncated { got: 0 }));
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let frame = report().encode();
        for byte in 0..FRAME_LEN {
            for bit in 0..8 {
                let mut corrupt = frame;
                corrupt[byte] ^= 1 << bit;
                assert!(
                    Report::decode(&corrupt).is_err(),
                    "flip of byte {byte} bit {bit} must not decode"
                );
            }
        }
    }

    #[test]
    fn version_mismatch_is_rejected_before_checksum() {
        let mut frame = report().encode();
        frame[1] = VERSION + 1;
        assert_eq!(
            Report::decode(&frame),
            Err(WireError::UnsupportedVersion { found: VERSION + 1 })
        );
    }

    #[test]
    fn rr_payload_range_is_enforced() {
        let mut frame = Report {
            payload: Payload::RrBit(true),
            ..report()
        }
        .encode();
        // Forge payload = 2 and re-seal the checksum: the range check must
        // still reject it.
        frame[14..18].copy_from_slice(&2i32.to_le_bytes());
        let sum = checksum(&frame[..18]);
        frame[18..20].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            Report::decode(&frame),
            Err(WireError::PayloadOutOfRange { found: 2 })
        );
    }
}
