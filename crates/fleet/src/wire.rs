//! The device→collector report wire format.
//!
//! Devices transmit privatized reports over untrusted, lossy transports, so
//! the encoding is an explicit versioned frame rather than an in-memory
//! struct: fixed 20 bytes, little-endian fields, and a 16-bit FNV-1a
//! checksum so corrupt or truncated frames are rejected with a typed error
//! instead of silently polluting an aggregate.
//!
//! Layout (offsets in bytes):
//!
//! | off | size | field |
//! |-----|------|-------|
//! | 0   | 1    | magic `0xD9` |
//! | 1   | 1    | version (`1` legacy, `2` current) |
//! | 2   | 1    | payload kind (`0` = FxP value, `1` = RR bit) |
//! | 3   | 1    | v1: reserved, must be `0`; v2: sequence number |
//! | 4   | 4    | device id, u32 LE |
//! | 8   | 2    | query id, u16 LE |
//! | 10  | 4    | epoch, u32 LE |
//! | 14  | 4    | payload, i32 LE (RR frames: `0` or `1`) |
//! | 18  | 2    | checksum: FNV-1a of bytes `0..18`, folded to 16 bits, LE |
//!
//! # The v2 sequence number
//!
//! Version 2 turns the reserved byte into a per-query-stream **sequence
//! number**: the low 8 bits of the device's send counter for that stream,
//! which — because a device privatizes *at most once* per `(query, epoch)`
//! and retransmits cached bytes verbatim — is exactly `epoch mod 256`.
//! The decoder enforces that identity. A sender whose retry path
//! re-randomizes (re-privatizing and re-encoding instead of replaying the
//! cached frame) drifts its counter off the epoch and is flagged with a
//! typed, device-attributed [`WireError::SeqMismatch`] — the collector's
//! cheapest detector for the repeated-sampling privacy leak.
//!
//! Errors that occur *after* the checksum verifies (`SeqMismatch`,
//! `UnknownKind`, `PayloadOutOfRange`) carry the sender's device id: the
//! frame body is integrity-checked, so the id is trustworthy and the
//! collector can count strikes against that sender (the quarantine path).
//! Pre-checksum errors carry no id — a corrupt frame's device field is
//! noise.

use core::fmt;

use ulp_obs::{Counter, Histogram};

/// Frame magic byte (first byte of every report frame).
pub const MAGIC: u8 = 0xD9;
/// Current wire-format version (sequence-numbered frames).
pub const VERSION: u8 = 2;
/// The legacy wire version (reserved byte must be zero) still decoded.
pub const VERSION_LEGACY: u8 = 1;
/// Encoded size of one report frame, in bytes.
pub const FRAME_LEN: usize = 20;

/// The privatized content of one report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Payload {
    /// A fixed-point noised sensor reading, in datapath grid units.
    Value(i32),
    /// One randomized-response bit.
    RrBit(bool),
}

impl Payload {
    fn kind(self) -> u8 {
        match self {
            Payload::Value(_) => 0,
            Payload::RrBit(_) => 1,
        }
    }

    fn raw(self) -> i32 {
        match self {
            Payload::Value(v) => v,
            Payload::RrBit(b) => i32::from(b),
        }
    }
}

/// One decoded device report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Reporting device id.
    pub device: u32,
    /// Query (aggregation stream) this report belongs to.
    pub query: u16,
    /// Reporting epoch.
    pub epoch: u32,
    /// The privatized payload.
    pub payload: Payload,
}

impl Report {
    /// Builds a report for `(device, query, epoch)`; the v2 sequence
    /// number is derived from the epoch at encode time.
    pub fn new(device: u32, query: u16, epoch: u32, payload: Payload) -> Report {
        Report {
            device,
            query,
            epoch,
            payload,
        }
    }

    /// The sequence number a conforming privatize-once sender stamps on
    /// this report: the low 8 bits of its per-stream send counter, which
    /// equals `epoch mod 256`.
    pub fn seq(&self) -> u8 {
        (self.epoch & 0xFF) as u8
    }
}

/// Why a frame was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Fewer than [`FRAME_LEN`] bytes were available.
    Truncated {
        /// Bytes actually available.
        got: usize,
    },
    /// Byte 0 was not [`MAGIC`].
    BadMagic {
        /// The byte found instead.
        found: u8,
    },
    /// The version byte names a format this decoder does not speak.
    UnsupportedVersion {
        /// The version found.
        found: u8,
    },
    /// The kind byte names no known payload type. Post-checksum, so the
    /// sender id is trustworthy.
    UnknownKind {
        /// The kind byte found.
        found: u8,
        /// The sender (integrity-checked).
        device: u32,
    },
    /// A v1 frame's reserved byte was non-zero (a forward-compatibility
    /// guard: v1 encoders always write `0`).
    NonZeroReserved {
        /// The byte found.
        found: u8,
    },
    /// The checksum did not match the frame body.
    ChecksumMismatch {
        /// Checksum carried by the frame.
        stored: u16,
        /// Checksum computed over bytes `0..18`.
        computed: u16,
    },
    /// A v2 frame's sequence number disagrees with its epoch — the
    /// signature of a sender that regenerated a report instead of
    /// replaying its cached bytes. Post-checksum, so the sender id is
    /// trustworthy.
    SeqMismatch {
        /// Sequence number carried by the frame.
        seq: u8,
        /// Epoch carried by the frame (`seq` must equal `epoch mod 256`).
        epoch: u32,
        /// The sender (integrity-checked).
        device: u32,
    },
    /// An RR frame carried a payload other than `0`/`1`. Post-checksum,
    /// so the sender id is trustworthy.
    PayloadOutOfRange {
        /// The payload found.
        found: i32,
        /// The sender (integrity-checked).
        device: u32,
    },
}

impl WireError {
    /// The sender id, for errors found *after* the checksum verified —
    /// the frame body is integrity-checked, so the id can be trusted and
    /// strikes can be attributed (the quarantine path). `None` for
    /// pre-checksum errors, where the device field may itself be corrupt.
    pub fn attributable_device(&self) -> Option<u32> {
        match *self {
            WireError::UnknownKind { device, .. }
            | WireError::SeqMismatch { device, .. }
            | WireError::PayloadOutOfRange { device, .. } => Some(device),
            _ => None,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { got } => {
                write!(f, "truncated frame: {got} of {FRAME_LEN} bytes")
            }
            WireError::BadMagic { found } => {
                write!(f, "bad magic byte {found:#04x} (expected {MAGIC:#04x})")
            }
            WireError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported wire version {found} (speak {VERSION_LEGACY} and {VERSION})"
                )
            }
            WireError::UnknownKind { found, device } => {
                write!(f, "unknown payload kind {found} from device {device}")
            }
            WireError::NonZeroReserved { found } => {
                write!(f, "reserved byte must be 0 in v1 frames, got {found:#04x}")
            }
            WireError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: frame carries {stored:#06x}, body hashes to {computed:#06x}"
            ),
            WireError::SeqMismatch { seq, epoch, device } => write!(
                f,
                "sequence {seq} disagrees with epoch {epoch} (mod 256) from device {device}: \
                 sender is not replaying cached reports"
            ),
            WireError::PayloadOutOfRange { found, device } => {
                write!(
                    f,
                    "RR payload must be 0 or 1, got {found} from device {device}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a over the frame body, folded to 16 bits (xor-fold of the 32-bit
/// hash) — cheap enough for a sensor MCU; corruption slips past the fold
/// with probability ≈ 2⁻¹⁶ per frame (an integrity check against faults,
/// not an authenticator).
fn checksum(body: &[u8]) -> u16 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in body {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    ((h >> 16) ^ (h & 0xFFFF)) as u16
}

impl Report {
    /// Encodes the report as one [`FRAME_LEN`]-byte v2 frame.
    pub fn encode(&self) -> [u8; FRAME_LEN] {
        let mut frame = [0u8; FRAME_LEN];
        frame[0] = MAGIC;
        frame[1] = VERSION;
        frame[2] = self.payload.kind();
        frame[3] = self.seq();
        frame[4..8].copy_from_slice(&self.device.to_le_bytes());
        frame[8..10].copy_from_slice(&self.query.to_le_bytes());
        frame[10..14].copy_from_slice(&self.epoch.to_le_bytes());
        frame[14..18].copy_from_slice(&self.payload.raw().to_le_bytes());
        let sum = checksum(&frame[..18]);
        frame[18..20].copy_from_slice(&sum.to_le_bytes());
        frame
    }

    /// Appends the encoded frame to `out` (the batch-building path).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.encode());
    }

    /// Decodes one frame from the front of `bytes`.
    ///
    /// # Errors
    ///
    /// A typed [`WireError`] naming the first integrity violation found:
    /// truncation, magic, version, reserved byte (v1), checksum, sequence
    /// (v2), kind, or RR payload range, checked in that order.
    pub fn decode(bytes: &[u8]) -> Result<Report, WireError> {
        if bytes.len() < FRAME_LEN {
            return Err(WireError::Truncated { got: bytes.len() });
        }
        let frame = &bytes[..FRAME_LEN];
        if frame[0] != MAGIC {
            return Err(WireError::BadMagic { found: frame[0] });
        }
        if frame[1] != VERSION && frame[1] != VERSION_LEGACY {
            return Err(WireError::UnsupportedVersion { found: frame[1] });
        }
        if frame[1] == VERSION_LEGACY && frame[3] != 0 {
            return Err(WireError::NonZeroReserved { found: frame[3] });
        }
        let stored = u16::from_le_bytes([frame[18], frame[19]]);
        let computed = checksum(&frame[..18]);
        if stored != computed {
            return Err(WireError::ChecksumMismatch { stored, computed });
        }
        // The body is integrity-checked from here on: the device id is
        // trustworthy and errors below can be attributed to the sender.
        let device = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        let epoch = u32::from_le_bytes([frame[10], frame[11], frame[12], frame[13]]);
        if frame[1] == VERSION && frame[3] != (epoch & 0xFF) as u8 {
            return Err(WireError::SeqMismatch {
                seq: frame[3],
                epoch,
                device,
            });
        }
        let raw = i32::from_le_bytes([frame[14], frame[15], frame[16], frame[17]]);
        let payload = match frame[2] {
            0 => Payload::Value(raw),
            1 => match raw {
                0 => Payload::RrBit(false),
                1 => Payload::RrBit(true),
                other => {
                    return Err(WireError::PayloadOutOfRange {
                        found: other,
                        device,
                    })
                }
            },
            other => {
                return Err(WireError::UnknownKind {
                    found: other,
                    device,
                })
            }
        };
        Ok(Report {
            device,
            query: u16::from_le_bytes([frame[8], frame[9]]),
            epoch,
            payload,
        })
    }
}

/// Reports decoded through clean parallel chunks (the columnar fast path).
static BATCH_FRAMES: Counter = Counter::new("fleet.decode.batch_frames");
/// Chunks containing a structural error, handed to the resync scanner.
static FALLBACK_CHUNKS: Counter = Counter::new("fleet.decode.fallback_chunks");
/// Stream items (frames + errors) per columnar decode call.
static DECODE_BATCH_SIZE: Histogram = Histogram::new("fleet.decode.batch_size", "frames");

/// Frames per parallel decode chunk (`× FRAME_LEN` bytes each).
const DECODE_CHUNK_FRAMES: usize = 16 * 1024;

/// Cumulative columnar-decode counters, read via [`decode_counter_totals`].
/// Counters record at `ULP_METRICS=counters` and above.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeCounterTotals {
    /// Frames decoded through clean parallel chunks.
    pub batch_frames: u64,
    /// Chunks handed to the sequential resync scanner.
    pub fallback_chunks: u64,
}

/// Snapshots the columnar-decode counters. Benchmarks subtract two
/// snapshots to attribute a region's fast-path/fallback split.
pub fn decode_counter_totals() -> DecodeCounterTotals {
    DecodeCounterTotals {
        batch_frames: BATCH_FRAMES.get(),
        fallback_chunks: FALLBACK_CHUNKS.get(),
    }
}

/// Whether `bytes` starts a plausible frame: magic matches and the carried
/// checksum verifies over the body. This is the resync predicate — a
/// random offset inside a corrupt region passes with probability ≈ 2⁻¹⁶
/// per candidate, so the scanner re-acquires the true frame boundary.
pub fn is_sync_point(bytes: &[u8]) -> bool {
    if bytes.len() < FRAME_LEN || bytes[0] != MAGIC {
        return false;
    }
    !matches!(
        Report::decode(bytes),
        Err(WireError::Truncated { .. }
            | WireError::BadMagic { .. }
            | WireError::UnsupportedVersion { .. }
            | WireError::NonZeroReserved { .. }
            | WireError::ChecksumMismatch { .. })
    )
}

/// Output of the sequential resync scanner ([`decode_stream`]).
pub struct DecodedStream {
    /// Every decode outcome, in stream order.
    pub items: Vec<Result<Report, WireError>>,
    /// Corruption events (structural errors) the scanner skipped.
    pub corrupt_frames: u64,
    /// Times the scanner re-acquired alignment at a non-adjacent offset.
    pub resyncs: u64,
}

/// Whether this error breaks stream alignment (the frame's magic or
/// checksum failed, so its length cannot be trusted). Semantic errors —
/// bad version/kind/sequence/payload on a checksum-valid body — keep the
/// 20-byte grid.
fn is_structural(e: &WireError) -> bool {
    matches!(
        e,
        WireError::BadMagic { .. } | WireError::ChecksumMismatch { .. }
    )
}

/// One resync-scanner step at `pos` (which must be `< bytes.len()`):
/// decodes the next frame or corrupt region, appends the item to `out`,
/// and returns the next scan position (`None` ends the scan). Both
/// [`decode_stream`] and the [`ColumnarBatch`] fallback walk are built on
/// this single step, so the two decoders cannot diverge on dirty input.
fn scan_step(bytes: &[u8], pos: usize, out: &mut DecodedStream) -> Option<usize> {
    if bytes.len() - pos < FRAME_LEN {
        out.items.push(Err(WireError::Truncated {
            got: bytes.len() - pos,
        }));
        out.corrupt_frames += 1;
        return None;
    }
    match Report::decode(&bytes[pos..]) {
        Ok(r) => {
            out.items.push(Ok(r));
            Some(pos + FRAME_LEN)
        }
        Err(e) => {
            out.items.push(Err(e));
            if !is_structural(&e) {
                // The frame carried a valid magic and (for semantic
                // errors) a valid checksum: alignment is intact.
                return Some(pos + FRAME_LEN);
            }
            out.corrupt_frames += 1;
            let next = (pos + 1..bytes.len().saturating_sub(FRAME_LEN - 1))
                .find(|&j| bytes[j] == MAGIC && is_sync_point(&bytes[j..]));
            match next {
                Some(j) => {
                    if j != pos + FRAME_LEN {
                        out.resyncs += 1;
                    }
                    Some(j)
                }
                // No recoverable frame remains.
                None => None,
            }
        }
    }
}

/// Decodes a byte stream frame by frame, recovering from corruption: a
/// structurally broken region (bad magic, failed checksum, truncation) is
/// counted as one corruption event and the scanner hunts forward for the
/// next offset satisfying [`is_sync_point`]. Semantically invalid but
/// well-formed frames (bad version/kind/sequence/payload) keep alignment
/// and are stepped over normally. Pure function of the bytes.
pub fn decode_stream(bytes: &[u8]) -> DecodedStream {
    let mut out = DecodedStream {
        items: Vec::with_capacity(bytes.len() / FRAME_LEN),
        corrupt_frames: 0,
        resyncs: 0,
    };
    let mut pos = 0usize;
    while pos < bytes.len() {
        match scan_step(bytes, pos, &mut out) {
            Some(p) => pos = p,
            None => break,
        }
    }
    out
}

/// One parallel chunk's columns, or `None` if the chunk holds a structural
/// error and must be re-walked sequentially.
struct ChunkColumns {
    devices: Vec<u32>,
    queries: Vec<u16>,
    epochs: Vec<u32>,
    kinds: Vec<u8>,
    payloads: Vec<i32>,
    /// Semantic decode errors as `(intra-chunk item index, error)`.
    errors: Vec<(usize, WireError)>,
    total_items: usize,
}

/// Decodes one frame-aligned chunk into columns. Returns `None` on the
/// first structural error: such a chunk cannot be trusted to stay on the
/// 20-byte grid, so the sequential scanner owns it.
fn decode_chunk(chunk: &[u8]) -> Option<ChunkColumns> {
    let frames = chunk.len() / FRAME_LEN;
    let mut cols = ChunkColumns {
        devices: Vec::with_capacity(frames),
        queries: Vec::with_capacity(frames),
        epochs: Vec::with_capacity(frames),
        kinds: Vec::with_capacity(frames),
        payloads: Vec::with_capacity(frames),
        errors: Vec::new(),
        total_items: 0,
    };
    for frame in chunk.chunks(FRAME_LEN) {
        match Report::decode(frame) {
            Ok(r) => {
                cols.devices.push(r.device);
                cols.queries.push(r.query);
                cols.epochs.push(r.epoch);
                cols.kinds.push(r.payload.kind());
                cols.payloads.push(r.payload.raw());
            }
            Err(e) if is_structural(&e) => return None,
            Err(e) => cols.errors.push((cols.total_items, e)),
        }
        cols.total_items += 1;
    }
    Some(cols)
}

/// A decoded batch in struct-of-arrays form: one column entry per
/// well-formed frame (stream order), with decode errors kept sparse as
/// `(stream item index, error)` so the exact stream-order interleaving of
/// reports and errors is reconstructible ([`ColumnarBatch::iter`]).
///
/// Built by [`ColumnarBatch::decode`]: fixed frame-aligned chunks are
/// validated (magic/version/checksum) and split into columns in parallel;
/// only chunks containing a *structural* error — plus any region a resync
/// hunt lands the scanner mid-chunk in — fall back to the sequential
/// scanner, one [`scan_step`] at a time. For every input the item
/// sequence, `corrupt_frames`, and `resyncs` are byte-identical to
/// [`decode_stream`] over the same bytes.
#[derive(Default)]
pub struct ColumnarBatch {
    /// Device-id column.
    pub devices: Vec<u32>,
    /// Query-id column.
    pub queries: Vec<u16>,
    /// Epoch column.
    pub epochs: Vec<u32>,
    /// Payload-kind column (`0` = FxP value, `1` = RR bit).
    pub kinds: Vec<u8>,
    /// Raw payload column (RR frames: `0`/`1`).
    pub payloads: Vec<i32>,
    /// Decode errors as `(stream item index, error)`, ascending.
    pub errors: Vec<(usize, WireError)>,
    /// Total stream items (column entries + errors).
    pub total_items: usize,
    /// Corruption events the fallback scanner skipped.
    pub corrupt_frames: u64,
    /// Times the fallback scanner resynced at a non-adjacent offset.
    pub resyncs: u64,
}

impl ColumnarBatch {
    /// Decodes `bytes` into columns, in parallel chunks with sequential
    /// fallback. See the type docs for the exact fallback rules.
    pub fn decode(bytes: &[u8]) -> ColumnarBatch {
        let mut out = ColumnarBatch::default();
        let chunk_bytes = DECODE_CHUNK_FRAMES * FRAME_LEN;
        // Parallel phase over the frame-aligned prefix; a trailing partial
        // frame (and anything after a mid-stream misalignment) belongs to
        // the sequential scanner.
        let prefix = bytes.len() - bytes.len() % FRAME_LEN;
        let chunks: Vec<&[u8]> = bytes[..prefix].chunks(chunk_bytes).collect();
        let decoded: Vec<Option<ChunkColumns>> =
            ulp_par::par_map(&chunks, |chunk| decode_chunk(chunk));
        let fallback_chunks = decoded.iter().filter(|c| c.is_none()).count() as u64;

        // Sequential splice: whenever the scan position sits exactly on a
        // clean chunk's start, its precomputed columns are appended
        // wholesale; everywhere else (dirty chunks, resync landings inside
        // a chunk, the unaligned tail) the scanner advances one step at a
        // time with the very same logic `decode_stream` runs.
        let mut batch_frames = 0u64;
        let mut seq = DecodedStream {
            items: Vec::new(),
            corrupt_frames: 0,
            resyncs: 0,
        };
        let mut pos = 0usize;
        while pos < bytes.len() {
            if pos < prefix && pos.is_multiple_of(chunk_bytes) {
                if let Some(cols) = &decoded[pos / chunk_bytes] {
                    batch_frames += cols.devices.len() as u64;
                    out.splice(cols);
                    pos += chunks[pos / chunk_bytes].len();
                    continue;
                }
            }
            match scan_step(bytes, pos, &mut seq) {
                Some(p) => pos = p,
                None => {
                    for item in seq.items.drain(..) {
                        out.push_item(item);
                    }
                    break;
                }
            }
            for item in seq.items.drain(..) {
                out.push_item(item);
            }
        }
        out.corrupt_frames = seq.corrupt_frames;
        out.resyncs = seq.resyncs;
        BATCH_FRAMES.add(batch_frames);
        FALLBACK_CHUNKS.add(fallback_chunks);
        DECODE_BATCH_SIZE.record(out.total_items as u64);
        out
    }

    /// Well-formed frames in the batch.
    pub fn frames(&self) -> usize {
        self.devices.len()
    }

    /// Whether the batch holds no items at all.
    pub fn is_empty(&self) -> bool {
        self.total_items == 0
    }

    /// The report at column index `col` (not stream index).
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn report(&self, col: usize) -> Report {
        Report {
            device: self.devices[col],
            query: self.queries[col],
            epoch: self.epochs[col],
            payload: match self.kinds[col] {
                0 => Payload::Value(self.payloads[col]),
                _ => Payload::RrBit(self.payloads[col] != 0),
            },
        }
    }

    /// Iterates decode outcomes in stream order, reconstructing the
    /// report/error interleaving from the sparse error list.
    pub fn iter(&self) -> ColumnarIter<'_> {
        ColumnarIter {
            batch: self,
            idx: 0,
            col: 0,
            err: 0,
        }
    }

    fn splice(&mut self, cols: &ChunkColumns) {
        self.devices.extend_from_slice(&cols.devices);
        self.queries.extend_from_slice(&cols.queries);
        self.epochs.extend_from_slice(&cols.epochs);
        self.kinds.extend_from_slice(&cols.kinds);
        self.payloads.extend_from_slice(&cols.payloads);
        self.errors
            .extend(cols.errors.iter().map(|&(i, e)| (self.total_items + i, e)));
        self.total_items += cols.total_items;
    }

    fn push_item(&mut self, item: Result<Report, WireError>) {
        match item {
            Ok(r) => {
                self.devices.push(r.device);
                self.queries.push(r.query);
                self.epochs.push(r.epoch);
                self.kinds.push(r.payload.kind());
                self.payloads.push(r.payload.raw());
            }
            Err(e) => self.errors.push((self.total_items, e)),
        }
        self.total_items += 1;
    }
}

/// Stream-order iterator over a [`ColumnarBatch`]'s decode outcomes.
pub struct ColumnarIter<'a> {
    batch: &'a ColumnarBatch,
    idx: usize,
    col: usize,
    err: usize,
}

impl Iterator for ColumnarIter<'_> {
    type Item = Result<Report, WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.idx >= self.batch.total_items {
            return None;
        }
        let item = match self.batch.errors.get(self.err) {
            Some(&(at, e)) if at == self.idx => {
                self.err += 1;
                Err(e)
            }
            _ => {
                let r = self.batch.report(self.col);
                self.col += 1;
                Ok(r)
            }
        };
        self.idx += 1;
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;
    use proptest::prop_oneof;

    use super::*;

    fn report() -> Report {
        Report {
            device: 0xDEAD_BEEF,
            query: 7,
            epoch: 42,
            payload: Payload::Value(-1234),
        }
    }

    /// Re-seals bytes `0..18` with a fresh checksum (forging helper).
    fn reseal(frame: &mut [u8; FRAME_LEN]) {
        let sum = checksum(&frame[..18]);
        frame[18..20].copy_from_slice(&sum.to_le_bytes());
    }

    #[test]
    fn roundtrip_value_and_rr() {
        let r = report();
        assert_eq!(Report::decode(&r.encode()).unwrap(), r);
        for bit in [false, true] {
            let r = Report {
                payload: Payload::RrBit(bit),
                ..report()
            };
            assert_eq!(Report::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn encoder_stamps_epoch_low_byte_as_sequence() {
        for epoch in [0u32, 1, 255, 256, 300, 0xFFFF_FFFF] {
            let r = Report { epoch, ..report() };
            let frame = r.encode();
            assert_eq!(frame[1], VERSION);
            assert_eq!(frame[3], (epoch & 0xFF) as u8);
            assert_eq!(Report::decode(&frame).unwrap(), r);
        }
    }

    #[test]
    fn legacy_v1_frames_still_decode() {
        let r = report();
        let mut frame = r.encode();
        frame[1] = VERSION_LEGACY;
        frame[3] = 0; // v1 reserved byte
        reseal(&mut frame);
        assert_eq!(Report::decode(&frame).unwrap(), r);
        // ... but a non-zero reserved byte is rejected before the checksum.
        frame[3] = 5;
        assert_eq!(
            Report::decode(&frame),
            Err(WireError::NonZeroReserved { found: 5 })
        );
    }

    #[test]
    fn sequence_epoch_disagreement_is_attributed_to_the_sender() {
        let mut frame = report().encode();
        frame[3] = frame[3].wrapping_add(1); // a re-randomizing sender's drift
        reseal(&mut frame);
        let err = Report::decode(&frame).unwrap_err();
        assert_eq!(
            err,
            WireError::SeqMismatch {
                seq: 43,
                epoch: 42,
                device: 0xDEAD_BEEF
            }
        );
        assert_eq!(err.attributable_device(), Some(0xDEAD_BEEF));
    }

    #[test]
    fn truncated_frame_is_typed() {
        let frame = report().encode();
        assert_eq!(
            Report::decode(&frame[..FRAME_LEN - 1]),
            Err(WireError::Truncated { got: FRAME_LEN - 1 })
        );
        assert_eq!(Report::decode(&[]), Err(WireError::Truncated { got: 0 }));
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let frame = report().encode();
        for byte in 0..FRAME_LEN {
            for bit in 0..8 {
                let mut corrupt = frame;
                corrupt[byte] ^= 1 << bit;
                let err = Report::decode(&corrupt).expect_err("bit flip must not decode");
                // In-flight corruption is never attributed to the sender:
                // only post-checksum (sender-authored) violations carry an
                // id, and a flipped bit always fails before or at the
                // checksum.
                assert_eq!(
                    err.attributable_device(),
                    None,
                    "flip of byte {byte} bit {bit} must not be attributable"
                );
            }
        }
    }

    #[test]
    fn version_mismatch_is_rejected_before_checksum() {
        let mut frame = report().encode();
        frame[1] = VERSION + 1;
        assert_eq!(
            Report::decode(&frame),
            Err(WireError::UnsupportedVersion { found: VERSION + 1 })
        );
    }

    #[test]
    fn rr_payload_range_is_enforced() {
        let mut frame = Report {
            payload: Payload::RrBit(true),
            ..report()
        }
        .encode();
        // Forge payload = 2 and re-seal the checksum: the range check must
        // still reject it, and — being sender-authored — attribute it.
        frame[14..18].copy_from_slice(&2i32.to_le_bytes());
        reseal(&mut frame);
        assert_eq!(
            Report::decode(&frame),
            Err(WireError::PayloadOutOfRange {
                found: 2,
                device: 0xDEAD_BEEF
            })
        );
    }

    /// Asserts the columnar decoder reproduces the sequential scanner's
    /// exact item sequence, corruption count, and resync count.
    fn assert_columnar_matches_sequential(bytes: &[u8]) {
        let seq = decode_stream(bytes);
        let col = ColumnarBatch::decode(bytes);
        assert_eq!(col.total_items, seq.items.len());
        assert_eq!(col.frames(), seq.items.iter().filter(|i| i.is_ok()).count());
        let col_items: Vec<Result<Report, WireError>> = col.iter().collect();
        assert_eq!(col_items, seq.items);
        assert_eq!(col.corrupt_frames, seq.corrupt_frames);
        assert_eq!(col.resyncs, seq.resyncs);
    }

    fn frame_for(device: u32, epoch: u32, value: i32) -> [u8; FRAME_LEN] {
        Report {
            device,
            query: (device % 3) as u16,
            epoch,
            payload: if device.is_multiple_of(2) {
                Payload::Value(value)
            } else {
                Payload::RrBit(value & 1 == 1)
            },
        }
        .encode()
    }

    #[test]
    fn columnar_decode_matches_sequential_on_clean_multi_chunk_stream() {
        // Enough frames to span several parallel decode chunks, so the
        // splice path (not just the fallback walk) is exercised.
        let mut bytes = Vec::new();
        for i in 0..3 * super::DECODE_CHUNK_FRAMES as u32 + 17 {
            bytes.extend_from_slice(&frame_for(i, i % 5, i as i32 - 7));
        }
        assert_columnar_matches_sequential(&bytes);
        let col = ColumnarBatch::decode(&bytes);
        assert_eq!(col.frames(), col.total_items);
        assert!(col.errors.is_empty());
    }

    #[test]
    fn columnar_decode_matches_sequential_on_semantic_errors() {
        // Semantic errors (checksum-valid, bad content) keep alignment:
        // the chunk stays columnar with a sparse error list.
        let mut bytes = Vec::new();
        for i in 0u32..100 {
            let mut frame = frame_for(i, 4, 9);
            if i % 7 == 0 {
                // Sender-authored sequence drift: SeqMismatch.
                frame[3] = frame[3].wrapping_add(1);
                reseal(&mut frame);
            }
            bytes.extend_from_slice(&frame);
        }
        assert_columnar_matches_sequential(&bytes);
        let col = ColumnarBatch::decode(&bytes);
        assert_eq!(col.total_items, 100);
        assert_eq!(col.errors.len(), 15);
        assert_eq!(col.corrupt_frames, 0);
    }

    #[test]
    fn columnar_decode_matches_sequential_on_structural_corruption() {
        let mut bytes = Vec::new();
        for i in 0u32..400 {
            bytes.extend_from_slice(&frame_for(i, 1, 3));
        }
        // Smash one frame's magic and another's checksum: both chunks the
        // scanner must re-walk sequentially and resync out of.
        bytes[37 * FRAME_LEN] ^= 0xFF;
        bytes[200 * FRAME_LEN + 18] ^= 0x01;
        assert_columnar_matches_sequential(&bytes);
        // And with a truncated tail on top.
        bytes.truncate(bytes.len() - 3);
        assert_columnar_matches_sequential(&bytes);
    }

    #[test]
    fn columnar_decode_matches_sequential_on_garbage() {
        assert_columnar_matches_sequential(&[]);
        assert_columnar_matches_sequential(&[0x00; 64]);
        assert_columnar_matches_sequential(&[MAGIC; 64]);
        let ramp: Vec<u8> = (0..=255).collect();
        assert_columnar_matches_sequential(&ramp);
    }

    fn arb_segment() -> impl Strategy<Value = Vec<u8>> {
        prop_oneof![
            // A well-formed frame.
            4 => (any::<u32>(), any::<u16>(), any::<u32>(), any::<i32>(), any::<bool>()).prop_map(
                |(device, query, epoch, raw, rr)| {
                    let payload = if rr {
                        Payload::RrBit(raw & 1 == 1)
                    } else {
                        Payload::Value(raw)
                    };
                    Report { device, query, epoch, payload }.encode().to_vec()
                }
            ),
            // A frame with one flipped bit (structural or semantic).
            2 => (any::<u32>(), any::<u32>(), 0..FRAME_LEN * 8).prop_map(|(device, epoch, flip)| {
                let mut frame = frame_for(device, epoch, 11);
                frame[flip / 8] ^= 1 << (flip % 8);
                frame.to_vec()
            }),
            // Raw garbage, MAGIC-rich so resync hunts find false syncs.
            1 => proptest::collection::vec(
                prop_oneof![2 => Just(MAGIC), 3 => any::<u8>()],
                0..2 * FRAME_LEN
            ),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The tentpole equivalence: for arbitrary byte soup — valid
        /// frames, bit-flipped frames, magic-rich garbage, truncated
        /// tails — the columnar batch decoder and the sequential resync
        /// scanner agree item-for-item, including corruption/resync
        /// counters.
        #[test]
        fn columnar_decode_equals_sequential_scan(
            segments in proptest::collection::vec(arb_segment(), 0..48),
            cut in 0usize..FRAME_LEN,
        ) {
            let mut bytes: Vec<u8> = segments.concat();
            bytes.truncate(bytes.len().saturating_sub(cut));
            assert_columnar_matches_sequential(&bytes);
        }
    }
}
