//! The device→collector report wire format.
//!
//! Devices transmit privatized reports over untrusted, lossy transports, so
//! the encoding is an explicit versioned frame rather than an in-memory
//! struct: fixed 20 bytes, little-endian fields, and a 16-bit FNV-1a
//! checksum so corrupt or truncated frames are rejected with a typed error
//! instead of silently polluting an aggregate.
//!
//! Layout (offsets in bytes):
//!
//! | off | size | field |
//! |-----|------|-------|
//! | 0   | 1    | magic `0xD9` |
//! | 1   | 1    | version (`1` legacy, `2` current) |
//! | 2   | 1    | payload kind (`0` = FxP value, `1` = RR bit) |
//! | 3   | 1    | v1: reserved, must be `0`; v2: sequence number |
//! | 4   | 4    | device id, u32 LE |
//! | 8   | 2    | query id, u16 LE |
//! | 10  | 4    | epoch, u32 LE |
//! | 14  | 4    | payload, i32 LE (RR frames: `0` or `1`) |
//! | 18  | 2    | checksum: FNV-1a of bytes `0..18`, folded to 16 bits, LE |
//!
//! # The v2 sequence number
//!
//! Version 2 turns the reserved byte into a per-query-stream **sequence
//! number**: the low 8 bits of the device's send counter for that stream,
//! which — because a device privatizes *at most once* per `(query, epoch)`
//! and retransmits cached bytes verbatim — is exactly `epoch mod 256`.
//! The decoder enforces that identity. A sender whose retry path
//! re-randomizes (re-privatizing and re-encoding instead of replaying the
//! cached frame) drifts its counter off the epoch and is flagged with a
//! typed, device-attributed [`WireError::SeqMismatch`] — the collector's
//! cheapest detector for the repeated-sampling privacy leak.
//!
//! Errors that occur *after* the checksum verifies (`SeqMismatch`,
//! `UnknownKind`, `PayloadOutOfRange`) carry the sender's device id: the
//! frame body is integrity-checked, so the id is trustworthy and the
//! collector can count strikes against that sender (the quarantine path).
//! Pre-checksum errors carry no id — a corrupt frame's device field is
//! noise.

use core::fmt;

/// Frame magic byte (first byte of every report frame).
pub const MAGIC: u8 = 0xD9;
/// Current wire-format version (sequence-numbered frames).
pub const VERSION: u8 = 2;
/// The legacy wire version (reserved byte must be zero) still decoded.
pub const VERSION_LEGACY: u8 = 1;
/// Encoded size of one report frame, in bytes.
pub const FRAME_LEN: usize = 20;

/// The privatized content of one report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Payload {
    /// A fixed-point noised sensor reading, in datapath grid units.
    Value(i32),
    /// One randomized-response bit.
    RrBit(bool),
}

impl Payload {
    fn kind(self) -> u8 {
        match self {
            Payload::Value(_) => 0,
            Payload::RrBit(_) => 1,
        }
    }

    fn raw(self) -> i32 {
        match self {
            Payload::Value(v) => v,
            Payload::RrBit(b) => i32::from(b),
        }
    }
}

/// One decoded device report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Reporting device id.
    pub device: u32,
    /// Query (aggregation stream) this report belongs to.
    pub query: u16,
    /// Reporting epoch.
    pub epoch: u32,
    /// The privatized payload.
    pub payload: Payload,
}

impl Report {
    /// Builds a report for `(device, query, epoch)`; the v2 sequence
    /// number is derived from the epoch at encode time.
    pub fn new(device: u32, query: u16, epoch: u32, payload: Payload) -> Report {
        Report {
            device,
            query,
            epoch,
            payload,
        }
    }

    /// The sequence number a conforming privatize-once sender stamps on
    /// this report: the low 8 bits of its per-stream send counter, which
    /// equals `epoch mod 256`.
    pub fn seq(&self) -> u8 {
        (self.epoch & 0xFF) as u8
    }
}

/// Why a frame was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Fewer than [`FRAME_LEN`] bytes were available.
    Truncated {
        /// Bytes actually available.
        got: usize,
    },
    /// Byte 0 was not [`MAGIC`].
    BadMagic {
        /// The byte found instead.
        found: u8,
    },
    /// The version byte names a format this decoder does not speak.
    UnsupportedVersion {
        /// The version found.
        found: u8,
    },
    /// The kind byte names no known payload type. Post-checksum, so the
    /// sender id is trustworthy.
    UnknownKind {
        /// The kind byte found.
        found: u8,
        /// The sender (integrity-checked).
        device: u32,
    },
    /// A v1 frame's reserved byte was non-zero (a forward-compatibility
    /// guard: v1 encoders always write `0`).
    NonZeroReserved {
        /// The byte found.
        found: u8,
    },
    /// The checksum did not match the frame body.
    ChecksumMismatch {
        /// Checksum carried by the frame.
        stored: u16,
        /// Checksum computed over bytes `0..18`.
        computed: u16,
    },
    /// A v2 frame's sequence number disagrees with its epoch — the
    /// signature of a sender that regenerated a report instead of
    /// replaying its cached bytes. Post-checksum, so the sender id is
    /// trustworthy.
    SeqMismatch {
        /// Sequence number carried by the frame.
        seq: u8,
        /// Epoch carried by the frame (`seq` must equal `epoch mod 256`).
        epoch: u32,
        /// The sender (integrity-checked).
        device: u32,
    },
    /// An RR frame carried a payload other than `0`/`1`. Post-checksum,
    /// so the sender id is trustworthy.
    PayloadOutOfRange {
        /// The payload found.
        found: i32,
        /// The sender (integrity-checked).
        device: u32,
    },
}

impl WireError {
    /// The sender id, for errors found *after* the checksum verified —
    /// the frame body is integrity-checked, so the id can be trusted and
    /// strikes can be attributed (the quarantine path). `None` for
    /// pre-checksum errors, where the device field may itself be corrupt.
    pub fn attributable_device(&self) -> Option<u32> {
        match *self {
            WireError::UnknownKind { device, .. }
            | WireError::SeqMismatch { device, .. }
            | WireError::PayloadOutOfRange { device, .. } => Some(device),
            _ => None,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { got } => {
                write!(f, "truncated frame: {got} of {FRAME_LEN} bytes")
            }
            WireError::BadMagic { found } => {
                write!(f, "bad magic byte {found:#04x} (expected {MAGIC:#04x})")
            }
            WireError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported wire version {found} (speak {VERSION_LEGACY} and {VERSION})"
                )
            }
            WireError::UnknownKind { found, device } => {
                write!(f, "unknown payload kind {found} from device {device}")
            }
            WireError::NonZeroReserved { found } => {
                write!(f, "reserved byte must be 0 in v1 frames, got {found:#04x}")
            }
            WireError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: frame carries {stored:#06x}, body hashes to {computed:#06x}"
            ),
            WireError::SeqMismatch { seq, epoch, device } => write!(
                f,
                "sequence {seq} disagrees with epoch {epoch} (mod 256) from device {device}: \
                 sender is not replaying cached reports"
            ),
            WireError::PayloadOutOfRange { found, device } => {
                write!(
                    f,
                    "RR payload must be 0 or 1, got {found} from device {device}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a over the frame body, folded to 16 bits (xor-fold of the 32-bit
/// hash) — cheap enough for a sensor MCU; corruption slips past the fold
/// with probability ≈ 2⁻¹⁶ per frame (an integrity check against faults,
/// not an authenticator).
fn checksum(body: &[u8]) -> u16 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in body {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    ((h >> 16) ^ (h & 0xFFFF)) as u16
}

impl Report {
    /// Encodes the report as one [`FRAME_LEN`]-byte v2 frame.
    pub fn encode(&self) -> [u8; FRAME_LEN] {
        let mut frame = [0u8; FRAME_LEN];
        frame[0] = MAGIC;
        frame[1] = VERSION;
        frame[2] = self.payload.kind();
        frame[3] = self.seq();
        frame[4..8].copy_from_slice(&self.device.to_le_bytes());
        frame[8..10].copy_from_slice(&self.query.to_le_bytes());
        frame[10..14].copy_from_slice(&self.epoch.to_le_bytes());
        frame[14..18].copy_from_slice(&self.payload.raw().to_le_bytes());
        let sum = checksum(&frame[..18]);
        frame[18..20].copy_from_slice(&sum.to_le_bytes());
        frame
    }

    /// Appends the encoded frame to `out` (the batch-building path).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.encode());
    }

    /// Decodes one frame from the front of `bytes`.
    ///
    /// # Errors
    ///
    /// A typed [`WireError`] naming the first integrity violation found:
    /// truncation, magic, version, reserved byte (v1), checksum, sequence
    /// (v2), kind, or RR payload range, checked in that order.
    pub fn decode(bytes: &[u8]) -> Result<Report, WireError> {
        if bytes.len() < FRAME_LEN {
            return Err(WireError::Truncated { got: bytes.len() });
        }
        let frame = &bytes[..FRAME_LEN];
        if frame[0] != MAGIC {
            return Err(WireError::BadMagic { found: frame[0] });
        }
        if frame[1] != VERSION && frame[1] != VERSION_LEGACY {
            return Err(WireError::UnsupportedVersion { found: frame[1] });
        }
        if frame[1] == VERSION_LEGACY && frame[3] != 0 {
            return Err(WireError::NonZeroReserved { found: frame[3] });
        }
        let stored = u16::from_le_bytes([frame[18], frame[19]]);
        let computed = checksum(&frame[..18]);
        if stored != computed {
            return Err(WireError::ChecksumMismatch { stored, computed });
        }
        // The body is integrity-checked from here on: the device id is
        // trustworthy and errors below can be attributed to the sender.
        let device = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        let epoch = u32::from_le_bytes([frame[10], frame[11], frame[12], frame[13]]);
        if frame[1] == VERSION && frame[3] != (epoch & 0xFF) as u8 {
            return Err(WireError::SeqMismatch {
                seq: frame[3],
                epoch,
                device,
            });
        }
        let raw = i32::from_le_bytes([frame[14], frame[15], frame[16], frame[17]]);
        let payload = match frame[2] {
            0 => Payload::Value(raw),
            1 => match raw {
                0 => Payload::RrBit(false),
                1 => Payload::RrBit(true),
                other => {
                    return Err(WireError::PayloadOutOfRange {
                        found: other,
                        device,
                    })
                }
            },
            other => {
                return Err(WireError::UnknownKind {
                    found: other,
                    device,
                })
            }
        };
        Ok(Report {
            device,
            query: u16::from_le_bytes([frame[8], frame[9]]),
            epoch,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Report {
        Report {
            device: 0xDEAD_BEEF,
            query: 7,
            epoch: 42,
            payload: Payload::Value(-1234),
        }
    }

    /// Re-seals bytes `0..18` with a fresh checksum (forging helper).
    fn reseal(frame: &mut [u8; FRAME_LEN]) {
        let sum = checksum(&frame[..18]);
        frame[18..20].copy_from_slice(&sum.to_le_bytes());
    }

    #[test]
    fn roundtrip_value_and_rr() {
        let r = report();
        assert_eq!(Report::decode(&r.encode()).unwrap(), r);
        for bit in [false, true] {
            let r = Report {
                payload: Payload::RrBit(bit),
                ..report()
            };
            assert_eq!(Report::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn encoder_stamps_epoch_low_byte_as_sequence() {
        for epoch in [0u32, 1, 255, 256, 300, 0xFFFF_FFFF] {
            let r = Report { epoch, ..report() };
            let frame = r.encode();
            assert_eq!(frame[1], VERSION);
            assert_eq!(frame[3], (epoch & 0xFF) as u8);
            assert_eq!(Report::decode(&frame).unwrap(), r);
        }
    }

    #[test]
    fn legacy_v1_frames_still_decode() {
        let r = report();
        let mut frame = r.encode();
        frame[1] = VERSION_LEGACY;
        frame[3] = 0; // v1 reserved byte
        reseal(&mut frame);
        assert_eq!(Report::decode(&frame).unwrap(), r);
        // ... but a non-zero reserved byte is rejected before the checksum.
        frame[3] = 5;
        assert_eq!(
            Report::decode(&frame),
            Err(WireError::NonZeroReserved { found: 5 })
        );
    }

    #[test]
    fn sequence_epoch_disagreement_is_attributed_to_the_sender() {
        let mut frame = report().encode();
        frame[3] = frame[3].wrapping_add(1); // a re-randomizing sender's drift
        reseal(&mut frame);
        let err = Report::decode(&frame).unwrap_err();
        assert_eq!(
            err,
            WireError::SeqMismatch {
                seq: 43,
                epoch: 42,
                device: 0xDEAD_BEEF
            }
        );
        assert_eq!(err.attributable_device(), Some(0xDEAD_BEEF));
    }

    #[test]
    fn truncated_frame_is_typed() {
        let frame = report().encode();
        assert_eq!(
            Report::decode(&frame[..FRAME_LEN - 1]),
            Err(WireError::Truncated { got: FRAME_LEN - 1 })
        );
        assert_eq!(Report::decode(&[]), Err(WireError::Truncated { got: 0 }));
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let frame = report().encode();
        for byte in 0..FRAME_LEN {
            for bit in 0..8 {
                let mut corrupt = frame;
                corrupt[byte] ^= 1 << bit;
                let err = Report::decode(&corrupt).expect_err("bit flip must not decode");
                // In-flight corruption is never attributed to the sender:
                // only post-checksum (sender-authored) violations carry an
                // id, and a flipped bit always fails before or at the
                // checksum.
                assert_eq!(
                    err.attributable_device(),
                    None,
                    "flip of byte {byte} bit {bit} must not be attributable"
                );
            }
        }
    }

    #[test]
    fn version_mismatch_is_rejected_before_checksum() {
        let mut frame = report().encode();
        frame[1] = VERSION + 1;
        assert_eq!(
            Report::decode(&frame),
            Err(WireError::UnsupportedVersion { found: VERSION + 1 })
        );
    }

    #[test]
    fn rr_payload_range_is_enforced() {
        let mut frame = Report {
            payload: Payload::RrBit(true),
            ..report()
        }
        .encode();
        // Forge payload = 2 and re-seal the checksum: the range check must
        // still reject it, and — being sender-authored — attribute it.
        frame[14..18].copy_from_slice(&2i32.to_le_bytes());
        reseal(&mut frame);
        assert_eq!(
            Report::decode(&frame),
            Err(WireError::PayloadOutOfRange {
                found: 2,
                device: 0xDEAD_BEEF
            })
        );
    }
}
