//! Privacy-preserving SVM training (Table VI, Section VI-F).
//!
//! A synthetic binary-classification dataset separable by a halfspace is
//! generated; a linear SVM is trained with the Pegasos stochastic
//! subgradient solver on either clean features or features noised by the
//! thresholded DP-Box mechanism. Test accuracy (on clean data) is reported
//! as a function of training-set size and privacy parameter ε — smaller ε
//! needs more data for the same accuracy, which is the cost of privacy.

use ldp_core::{LdpError, Mechanism};
use ldp_datasets::{DatasetSpec, Shape};
use ulp_obs::{Counter, SpanTimer};
use ulp_rng::{stream_seed, RandomBits, Taus88};

use crate::setup::ExperimentSetup;

/// A labelled sample with features in `[-1, 1]^dim`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Feature vector.
    pub x: Vec<f64>,
    /// Label in `{-1, +1}`.
    pub y: f64,
}

/// Generates a halfspace-separable dataset: labels are the sign of `w*·x`
/// for a fixed hidden hyperplane through the origin, with a margin (points
/// too close to the plane are rejected) so that clean training approaches
/// 100% accuracy.
///
/// The hyperplane passes through the origin so the classes are balanced;
/// training on feature-noised data then has to recover only the *direction*
/// of `w*`, which transfers to the clean test distribution. (With a biased
/// hyperplane, the intercept a classifier learns on the wide noised
/// distribution does not transfer to clean data — no linear method can
/// bridge that gap, so the paper's setup must be the balanced one.)
pub fn halfspace_dataset(n: usize, dim: usize, margin: f64, seed: u64) -> Vec<Sample> {
    assert!(dim >= 1, "need at least one feature");
    let mut rng = Taus88::from_seed(seed ^ 0x0005_FEA7);
    // Hidden hyperplane: fixed direction through the origin.
    let w_star: Vec<f64> = (0..dim)
        .map(|i| if i % 2 == 0 { 1.0 } else { -0.5 })
        .collect();
    let norm: f64 = w_star.iter().map(|w| w * w).sum::<f64>().sqrt();
    let b_star = 0.0;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let x: Vec<f64> = (0..dim)
            .map(|_| (rng.bits(32) as f64 / u32::MAX as f64) * 2.0 - 1.0)
            .collect();
        let score: f64 = (w_star.iter().zip(&x).map(|(w, xi)| w * xi).sum::<f64>() + b_star) / norm;
        if score.abs() < margin {
            continue;
        }
        out.push(Sample {
            x,
            y: score.signum(),
        });
    }
    out
}

/// A linear SVM `sign(w·x + b)` trained with Pegasos.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvm {
    /// Weight vector.
    pub w: Vec<f64>,
    /// Bias term.
    pub b: f64,
}

impl LinearSvm {
    /// Trains with the Pegasos stochastic subgradient method, returning the
    /// iterate average over the second half of training (averaged SGD is
    /// markedly more stable when the features carry heavy LDP noise).
    ///
    /// # Panics
    ///
    /// Panics if the training set is empty or `epochs` is zero.
    pub fn train(data: &[Sample], lambda: f64, epochs: usize, seed: u64) -> Self {
        assert!(!data.is_empty(), "empty training set");
        assert!(epochs > 0, "need at least one epoch");
        let dim = data[0].x.len();
        let mut w = vec![0.0f64; dim];
        let mut b = 0.0f64;
        let mut w_avg = vec![0.0f64; dim];
        let mut b_avg = 0.0f64;
        let mut avg_count = 0u64;
        let mut rng = Taus88::from_seed(seed ^ 0x0007_EAC4);
        let total = (epochs * data.len()) as u64;
        let mut t: u64 = 0;
        for _ in 0..epochs {
            for _ in 0..data.len() {
                t += 1;
                let i = (rng.bits(32) as usize) % data.len();
                let s = &data[i];
                let eta = 1.0 / (lambda * t as f64);
                let margin = s.y * (dot(&w, &s.x) + b);
                for wj in w.iter_mut() {
                    *wj *= 1.0 - eta * lambda;
                }
                if margin < 1.0 {
                    for (wj, xj) in w.iter_mut().zip(&s.x) {
                        *wj += eta * s.y * xj;
                    }
                    b += eta * s.y;
                }
                if t > total / 2 {
                    avg_count += 1;
                    for (aj, wj) in w_avg.iter_mut().zip(&w) {
                        *aj += wj;
                    }
                    b_avg += b;
                }
            }
        }
        if avg_count > 0 {
            for aj in w_avg.iter_mut() {
                *aj /= avg_count as f64;
            }
            b_avg /= avg_count as f64;
            LinearSvm { w: w_avg, b: b_avg }
        } else {
            LinearSvm { w, b }
        }
    }

    /// Predicts a label in `{-1, +1}`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        if dot(&self.w, x) + self.b >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Fraction of correctly classified samples.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn accuracy(&self, data: &[Sample]) -> f64 {
        assert!(!data.is_empty(), "empty test set");
        let correct = data.iter().filter(|s| self.predict(&s.x) == s.y).count();
        correct as f64 / data.len() as f64
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Privacy level for Table VI columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SvmPrivacy {
    /// Features noised with the thresholded FxP mechanism at ε per feature.
    Eps(f64),
    /// Clean features ("No DP" row).
    NoDp,
}

/// One Table VI cell: accuracy for a training size and privacy level.
///
/// # Errors
///
/// Mechanism-construction errors propagate.
pub fn svm_accuracy(
    train_size: usize,
    privacy: SvmPrivacy,
    test: &[Sample],
    seed: u64,
) -> Result<f64, LdpError> {
    let dim = test.first().map_or(2, |s| s.x.len());
    let train = halfspace_dataset(train_size, dim, 0.05, seed);
    let noised = match privacy {
        SvmPrivacy::NoDp => train,
        SvmPrivacy::Eps(eps) => {
            // Features live in [-1, 1]; reuse the DP-Box pipeline per
            // feature (each record spends ε per feature dimension).
            let spec = DatasetSpec::new(
                "svm-feature",
                train_size.max(2),
                -1.0,
                1.0,
                0.0,
                0.5,
                Shape::Uniform,
            );
            let setup = ExperimentSetup::paper_default(&spec, eps)?;
            let mech = setup.thresholding(2.0)?;
            let adc = setup.adc;
            let mut rng = Taus88::from_seed(seed ^ 0xD9);
            train
                .into_iter()
                .map(|s| Sample {
                    x: s.x
                        .iter()
                        .map(|&xi| {
                            let code = adc.encode(xi) as f64;
                            // Thresholding has no redraw loop, so privatize
                            // cannot fail.
                            let out = mech.privatize(code, &mut rng).expect("thresholding");
                            adc.decode(out.value.round() as i64)
                        })
                        .collect(),
                    y: s.y,
                })
                .collect()
        }
    };
    // Average over a few training runs: a single Pegasos pass on heavily
    // noised features has high variance.
    let runs = 3;
    let mut acc_sum = 0.0;
    for r in 0..runs {
        let svm = LinearSvm::train(&noised, 0.05, 15, seed ^ (r as u64) << 8);
        acc_sum += svm.accuracy(test);
    }
    Ok(acc_sum / runs as f64)
}

/// The full Table VI grid: accuracy for every `(privacy, size)` cell,
/// averaged over `reps` independent data/noising seeds per cell.
///
/// Every cell is an independent unit of work whose seeds derive only from
/// `(seed, privacy index, size index, rep)` via [`stream_seed`], so the
/// cells fan out over [`ulp_par`] and the grid is byte-identical at any
/// thread count. Returns one row per entry of `privacies`, one column per
/// entry of `sizes`.
///
/// # Errors
///
/// Propagates [`svm_accuracy`] errors.
pub fn svm_grid(
    privacies: &[SvmPrivacy],
    sizes: &[usize],
    test: &[Sample],
    reps: u64,
    seed: u64,
) -> Result<Vec<Vec<f64>>, LdpError> {
    assert!(reps > 0, "need at least one repetition per cell");
    static SWEEP: SpanTimer = SpanTimer::new("eval.svm_grid");
    static CELLS: Counter = Counter::new("eval.svm.cells");
    let _span = SWEEP.enter();
    let cells: Vec<(usize, usize)> = (0..privacies.len())
        .flat_map(|p| (0..sizes.len()).map(move |s| (p, s)))
        .collect();
    CELLS.add(cells.len() as u64);
    let accs: Vec<f64> = ulp_par::par_map(&cells, |&(p, s)| -> Result<f64, LdpError> {
        let mut acc = 0.0;
        for r in 0..reps {
            acc += svm_accuracy(
                sizes[s],
                privacies[p],
                test,
                stream_seed(seed, &[p as u64, s as u64, r]),
            )?;
        }
        Ok(acc / reps as f64)
    })
    .into_iter()
    .collect::<Result<_, _>>()?;
    Ok(accs.chunks(sizes.len()).map(<[f64]>::to_vec).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halfspace_data_is_separable() {
        let data = halfspace_dataset(2_000, 2, 0.05, 1);
        assert_eq!(data.len(), 2_000);
        let svm = LinearSvm::train(&data, 1e-3, 10, 2);
        assert!(svm.accuracy(&data) > 0.97, "{}", svm.accuracy(&data));
    }

    #[test]
    fn clean_training_generalizes() {
        let test = halfspace_dataset(2_000, 2, 0.05, 99);
        let acc = svm_accuracy(3_000, SvmPrivacy::NoDp, &test, 3).unwrap();
        assert!(acc > 0.95, "clean accuracy {acc}");
    }

    #[test]
    fn noised_training_still_learns() {
        let test = halfspace_dataset(2_000, 2, 0.05, 100);
        let acc = svm_accuracy(3_000, SvmPrivacy::Eps(2.0), &test, 4).unwrap();
        assert!(acc > 0.7, "ε=2 accuracy {acc}");
    }

    #[test]
    fn stronger_privacy_needs_more_data() {
        // Table VI trend: at fixed size, accuracy grows with ε; noised
        // training is below clean training.
        let test = halfspace_dataset(2_000, 2, 0.05, 101);
        let acc_05 = svm_accuracy(4_000, SvmPrivacy::Eps(0.5), &test, 5).unwrap();
        let acc_2 = svm_accuracy(4_000, SvmPrivacy::Eps(2.0), &test, 5).unwrap();
        let acc_clean = svm_accuracy(4_000, SvmPrivacy::NoDp, &test, 5).unwrap();
        assert!(
            acc_05 <= acc_2 + 0.03,
            "ε=0.5 ({acc_05}) should not beat ε=2 ({acc_2})"
        );
        assert!(
            acc_2 <= acc_clean + 0.02,
            "ε=2 {acc_2} vs clean {acc_clean}"
        );
    }

    #[test]
    fn grid_shape_matches_inputs() {
        let test = halfspace_dataset(500, 2, 0.05, 103);
        let grid = svm_grid(
            &[SvmPrivacy::NoDp, SvmPrivacy::Eps(2.0)],
            &[300, 600],
            &test,
            1,
            7,
        )
        .unwrap();
        assert_eq!(grid.len(), 2);
        assert!(grid.iter().all(|r| r.len() == 2));
        assert!(grid[0][1] > 0.9, "clean 600-sample cell: {}", grid[0][1]);
    }

    #[test]
    fn more_data_helps_under_noise() {
        let test = halfspace_dataset(2_000, 2, 0.05, 102);
        let small = svm_accuracy(500, SvmPrivacy::Eps(1.0), &test, 6).unwrap();
        let large = svm_accuracy(8_000, SvmPrivacy::Eps(1.0), &test, 6).unwrap();
        assert!(
            large >= small - 0.02,
            "8k-sample accuracy {large} vs 500-sample {small}"
        );
    }
}
