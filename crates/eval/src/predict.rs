//! Analytic utility prediction from exact PMFs.
//!
//! The measured tables come from simulation; these predictors derive the
//! same quantities from the exact noise distribution, giving a second,
//! independent path to the utility results (and a fast way to size
//! experiments: how many sensors does a deployment need for a target
//! accuracy?).

use ldp_core::{conditional, LimitMode};

use crate::setup::ExperimentSetup;

/// Noise standard deviation (in *physical* units) of a window-limited
/// mechanism for a mid-range input, from the exact conditional
/// distribution.
pub fn noise_sigma(setup: &ExperimentSetup, mode: LimitMode, n_th_k: Option<i64>) -> f64 {
    let mid = (setup.range.min_k() + setup.range.max_k()) / 2;
    let dist = conditional(&setup.pmf, setup.range, mode, n_th_k, mid);
    let norm = dist.norm() as f64;
    let mut mean = 0.0;
    let mut m2 = 0.0;
    for (y, w) in dist.iter() {
        let v = (y - mid) as f64;
        let p = w as f64 / norm;
        mean += v * p;
        m2 += v * v * p;
    }
    (m2 - mean * mean).sqrt() * setup.adc.lsb()
}

/// Predicted MAE of the **mean query** over `n` sensors: the sample mean of
/// i.i.d. noise is asymptotically normal, so `E|error| = √(2/π)·σ/√n`.
pub fn predict_mean_mae(
    setup: &ExperimentSetup,
    mode: LimitMode,
    n_th_k: Option<i64>,
    n: usize,
) -> f64 {
    let sigma = noise_sigma(setup, mode, n_th_k);
    (2.0 / std::f64::consts::PI).sqrt() * sigma / (n as f64).sqrt()
}

/// Sensors needed for a target mean-query MAE (inverse of
/// [`predict_mean_mae`]), rounded up.
pub fn sensors_for_mean_mae(
    setup: &ExperimentSetup,
    mode: LimitMode,
    n_th_k: Option<i64>,
    target_mae: f64,
) -> usize {
    assert!(target_mae > 0.0, "target MAE must be positive");
    let sigma = noise_sigma(setup, mode, n_th_k);
    let n = (2.0 / std::f64::consts::PI) * (sigma / target_mae).powi(2);
    n.ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::Mechanism;
    use ldp_datasets::{evaluate_query, DatasetSpec, Query, Shape};
    use ulp_rng::Taus88;

    fn setup() -> ExperimentSetup {
        let spec = DatasetSpec::new(
            "predict-test",
            5_000,
            0.0,
            100.0,
            50.0,
            20.0,
            Shape::TruncatedGaussian,
        );
        ExperimentSetup::paper_default(&spec, 0.5).unwrap()
    }

    #[test]
    fn sigma_matches_unclipped_laplace_for_naive() {
        let s = setup();
        let sigma = noise_sigma(&s, LimitMode::Thresholding, None);
        // Lap(λ): σ = √2·λ; λ_physical = λ_code · lsb.
        let want = std::f64::consts::SQRT_2 * s.cfg.lambda() * s.adc.lsb();
        assert!((sigma / want - 1.0).abs() < 0.01, "{sigma} vs {want}");
    }

    #[test]
    fn clipping_reduces_sigma() {
        let s = setup();
        let full = noise_sigma(&s, LimitMode::Thresholding, None);
        let clipped = noise_sigma(&s, LimitMode::Thresholding, Some(300));
        assert!(clipped < full);
    }

    #[test]
    fn prediction_matches_simulation() {
        let s = setup();
        let mech = s.thresholding(2.0).unwrap();
        let n_th = mech.threshold().n_th_k;
        let data = ldp_datasets::generate(&s.spec, 3);
        let mut rng = Taus88::from_seed(5);
        let adc = s.adc;
        let measured = evaluate_query(
            &data,
            |x| {
                let code = adc.encode(x) as f64;
                adc.decode(mech.privatize(code, &mut rng).unwrap().value.round() as i64)
            },
            Query::Mean,
            60,
            1.0,
        )
        .mae;
        let predicted = predict_mean_mae(&s, LimitMode::Thresholding, Some(n_th), data.len());
        assert!(
            (measured / predicted - 1.0).abs() < 0.35,
            "measured {measured} vs predicted {predicted}"
        );
    }

    #[test]
    fn sensors_for_target_inverts_prediction() {
        let s = setup();
        let n = sensors_for_mean_mae(&s, LimitMode::Thresholding, Some(300), 0.5);
        let back = predict_mean_mae(&s, LimitMode::Thresholding, Some(300), n);
        assert!(back <= 0.5 + 1e-9);
        // One fewer sensor would miss the target.
        if n > 1 {
            let worse = predict_mean_mae(&s, LimitMode::Thresholding, Some(300), n - 1);
            assert!(worse > 0.5 - 1e-2);
        }
    }

    #[test]
    #[should_panic(expected = "target MAE must be positive")]
    fn zero_target_rejected() {
        let s = setup();
        sensors_for_mean_mae(&s, LimitMode::Thresholding, None, 0.0);
    }
}
