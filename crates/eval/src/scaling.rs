//! Utility sensitivity to dataset size and RNG resolution (Fig. 15).
//!
//! For queries whose error averages out (mean), MAE → 0 as the number of
//! entries grows — *if* the RNG has enough output bits `By`. With a small
//! output word the feasible limiting window is capped by what the word can
//! represent; the noise distribution is heavily clipped (biased per input)
//! and the MAE hits a floor that no amount of data removes (Fig. 15(b)).

use ldp_core::{LdpError, Mechanism};
use ldp_datasets::{evaluate_query_batched, DatasetSpec, Query, Shape};
use ulp_obs::{Counter, SpanTimer};
use ulp_rng::Taus88;

use crate::setup::{GroundTruth, MechKind};

/// MAE of the mean query at one dataset size, all four settings.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// Number of data entries.
    pub n: usize,
    /// `(setting, mae_relative_to_range)` in [`MechKind::all`] order.
    pub mae: Vec<(MechKind, f64)>,
}

/// Sweeps dataset sizes for a synthetic Gaussian sensor at the given RNG
/// output resolution `by` (Fig. 15 uses a large and a small one).
///
/// # Errors
///
/// Mechanism-construction errors propagate.
pub fn scaling_curve(
    sizes: &[usize],
    by: u8,
    eps: f64,
    multiple: f64,
    trials: usize,
    seed: u64,
) -> Result<Vec<ScalingPoint>, LdpError> {
    static SWEEP: SpanTimer = SpanTimer::new("eval.scaling_curve");
    static CELLS: Counter = Counter::new("eval.scaling.points");
    let _span = SWEEP.enter();
    CELLS.add(sizes.len() as u64);
    // Every size's RNG streams are seeded from `(seed, kind, n)` only, so
    // the parallel sweep is byte-identical to the serial one.
    ulp_par::par_map(sizes, |&n| -> Result<ScalingPoint, LdpError> {
        let spec = DatasetSpec::new(
            "scaling-synthetic",
            n,
            0.0,
            100.0,
            55.0,
            18.0,
            Shape::TruncatedGaussian,
        );
        // Shared prep (generate + encode) from the hoisted `GroundTruth`;
        // same `(spec, seed ^ n)` inputs, so the realization is unchanged.
        let gt = GroundTruth::with_output_bits(&spec, eps, 17, by, 8, seed ^ n as u64)?;
        let setup = &gt.setup;
        let mut mae = Vec::with_capacity(4);
        for kind in MechKind::all() {
            let mech: Box<dyn Mechanism> = match kind {
                MechKind::Ideal => Box::new(setup.ideal()?),
                MechKind::Baseline => Box::new(setup.baseline()?),
                MechKind::Resampling => Box::new(setup.resampling(multiple)?),
                MechKind::Thresholding => Box::new(setup.thresholding(multiple)?),
            };
            let mut rng = Taus88::from_seed(seed ^ ((kind as u64) << 24) ^ n as u64);
            let adc = setup.adc;
            // Pre-hoisted encodings + one batched pass per trial
            // (reference-path draw order matches the old per-entry loop
            // exactly).
            let codes = &gt.codes;
            let mut noised = vec![0.0f64; codes.len()];
            let result = evaluate_query_batched(
                &gt.data,
                |out: &mut [f64]| -> Result<(), LdpError> {
                    mech.privatize_batch(codes, &mut rng, &mut noised)?;
                    for (slot, &v) in out.iter_mut().zip(noised.iter()) {
                        *slot = adc.decode(v.round() as i64);
                    }
                    Ok(())
                },
                Query::Mean,
                trials,
                spec.range_length(),
                0.0,
            )?;
            mae.push((kind, result.relative));
        }
        Ok(ScalingPoint { n, mae })
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(pt: &ScalingPoint, kind: MechKind) -> f64 {
        pt.mae.iter().find(|(k, _)| *k == kind).unwrap().1
    }

    #[test]
    fn high_resolution_error_decays_with_n() {
        // Fig. 15(a): By = 20 → all four settings improve with data size.
        let pts = scaling_curve(&[100, 1_000, 10_000], 20, 0.5, 2.0, 25, 1).unwrap();
        for kind in MechKind::all() {
            let first = rel(&pts[0], kind);
            let last = rel(&pts[2], kind);
            assert!(
                last < first / 2.0,
                "{kind:?}: {first} → {last} should shrink"
            );
        }
    }

    #[test]
    fn low_resolution_limited_mechanisms_hit_a_floor() {
        // Fig. 15(b): with a small output word the feasible windows are
        // capped and the limited mechanisms' noise is so clipped that MAE
        // stops improving, while the (non-private) baseline keeps decaying.
        // 80k entries push the baseline's 1/√n decay well below the
        // clipping floor, so the 3× separation holds with margin for any
        // sampler-path realization of the noise stream.
        let pts = scaling_curve(&[100, 1_000, 80_000], 10, 0.5, 2.0, 25, 2).unwrap();
        let last = &pts[2];
        let baseline = rel(last, MechKind::Baseline);
        let thresholding = rel(last, MechKind::Thresholding);
        let resampling = rel(last, MechKind::Resampling);
        assert!(
            thresholding > 3.0 * baseline,
            "thresholding floor {thresholding} vs baseline {baseline}"
        );
        assert!(
            resampling > 3.0 * baseline,
            "resampling floor {resampling} vs baseline {baseline}"
        );
        // And the floor persists: going from 1k to 20k barely helps.
        let th_mid = rel(&pts[1], MechKind::Thresholding);
        assert!(
            thresholding > th_mid / 2.0,
            "no meaningful decay expected: {th_mid} → {thresholding}"
        );
    }
}
