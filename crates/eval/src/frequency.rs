//! LDP distribution estimation: a frequency oracle over binned sensor
//! values.
//!
//! Mean/median/variance tell the aggregator one number; many IoT analytics
//! want the *shape* of the population (e.g. the bimodal sonar readings of
//! the robot dataset). The standard LDP tool is a frequency oracle: bin the
//! sensor range, have each device report its bin through k-ary randomized
//! response, and debias the counts. This module composes the workspace's
//! [`KaryRandomizedResponse`] with the dataset plumbing to do exactly that.

use ldp_core::{KaryRandomizedResponse, LdpError};
use ulp_rng::RandomBits;

/// An LDP histogram estimator over `bins` equal-width bins of `[min, max]`.
///
/// # Examples
///
/// ```
/// use ldp_eval::FrequencyOracle;
/// use ulp_rng::Taus88;
///
/// let oracle = FrequencyOracle::new(0.0, 10.0, 5, 2.0)?;
/// let mut rng = Taus88::from_seed(1);
/// let data: Vec<f64> = (0..10_000).map(|i| (i % 10) as f64).collect();
/// let est = oracle.estimate(&data, &mut rng);
/// assert_eq!(est.len(), 5);
/// // Uniform data → roughly equal bin shares.
/// assert!(est.iter().all(|&f| (f - 0.2).abs() < 0.05));
/// # Ok::<(), ldp_core::LdpError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyOracle {
    min: f64,
    max: f64,
    bins: usize,
    rr: KaryRandomizedResponse,
}

impl FrequencyOracle {
    /// Creates an oracle with per-report privacy `ε`.
    ///
    /// # Errors
    ///
    /// [`LdpError::InvalidEpsilon`] for bad ε; [`LdpError::InvalidRange`]
    /// for an empty range or fewer than 2 bins.
    pub fn new(min: f64, max: f64, bins: usize, eps: f64) -> Result<Self, LdpError> {
        if !(min.is_finite() && max.is_finite() && min < max) || bins < 2 {
            return Err(LdpError::InvalidRange {
                min_k: 0,
                max_k: bins as i64,
            });
        }
        Ok(FrequencyOracle {
            min,
            max,
            bins,
            rr: KaryRandomizedResponse::with_epsilon(bins, eps)?,
        })
    }

    /// Number of bins.
    pub fn bins(self) -> usize {
        self.bins
    }

    /// The per-report privacy parameter.
    pub fn epsilon(self) -> f64 {
        self.rr.epsilon()
    }

    /// The bin index of a value (clamped into range).
    pub fn bin_of(self, x: f64) -> usize {
        let w = (self.max - self.min) / self.bins as f64;
        (((x - self.min) / w) as usize).min(self.bins - 1)
    }

    /// The centre of bin `i`.
    pub fn bin_center(self, i: usize) -> f64 {
        let w = (self.max - self.min) / self.bins as f64;
        self.min + (i as f64 + 0.5) * w
    }

    /// One device's private report: its bin, passed through k-RR.
    pub fn report<R: RandomBits + ?Sized>(self, x: f64, rng: &mut R) -> usize {
        self.rr
            .privatize(self.bin_of(x.clamp(self.min, self.max)), rng)
    }

    /// Collects reports from an entire population and returns the debiased
    /// bin-share estimates (summing to 1).
    pub fn estimate<R: RandomBits + ?Sized>(self, data: &[f64], rng: &mut R) -> Vec<f64> {
        let mut counts = vec![0u64; self.bins];
        for &x in data {
            counts[self.report(x, rng)] += 1;
        }
        self.rr.estimate_frequencies(&counts)
    }

    /// True (non-private) bin shares, for error measurement.
    pub fn true_shares(self, data: &[f64]) -> Vec<f64> {
        let mut counts = vec![0u64; self.bins];
        for &x in data {
            counts[self.bin_of(x.clamp(self.min, self.max))] += 1;
        }
        counts
            .into_iter()
            .map(|c| c as f64 / data.len() as f64)
            .collect()
    }
}

/// Total variation distance between two share vectors — the headline error
/// metric for distribution estimation.
///
/// # Panics
///
/// Panics if the vectors' lengths differ.
pub fn total_variation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "share vectors must align");
    0.5 * a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_datasets::{generate, robot_sensors};
    use ulp_rng::Taus88;

    #[test]
    fn validation() {
        assert!(FrequencyOracle::new(1.0, 1.0, 4, 1.0).is_err());
        assert!(FrequencyOracle::new(0.0, 1.0, 1, 1.0).is_err());
        assert!(FrequencyOracle::new(0.0, 1.0, 4, 0.0).is_err());
        assert!(FrequencyOracle::new(0.0, 1.0, 4, 1.0).is_ok());
    }

    #[test]
    fn bins_tile_the_range() {
        let o = FrequencyOracle::new(0.0, 10.0, 5, 1.0).unwrap();
        assert_eq!(o.bin_of(0.0), 0);
        assert_eq!(o.bin_of(9.99), 4);
        assert_eq!(o.bin_of(10.0), 4); // top edge clamps into the last bin
        assert_eq!(o.bin_of(4.999), 2);
        assert!((o.bin_center(2) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn recovers_the_bimodal_shape_of_robot_sonar() {
        // The headline use-case: mean/median can't see bimodality; the
        // frequency oracle can, privately.
        let spec = robot_sensors();
        let data = generate(&spec, 21);
        let o = FrequencyOracle::new(spec.min, spec.max, 10, 2.0).unwrap();
        let mut rng = Taus88::from_seed(22);
        let est = o.estimate(&data, &mut rng);
        let truth = o.true_shares(&data);
        let tv = total_variation(&est, &truth);
        assert!(tv < 0.06, "total variation {tv}");
        // Both modes visible: the near-wall bins and the far bins outweigh
        // the trough between them.
        let trough = est[5];
        assert!(
            est[1] > trough && est[8] > trough,
            "bimodality lost: {est:?}"
        );
    }

    #[test]
    fn stronger_privacy_means_larger_estimation_error() {
        let spec = robot_sensors();
        let data = generate(&spec, 23);
        let mut rng = Taus88::from_seed(24);
        let tv_of = |eps: f64, rng: &mut Taus88| {
            let o = FrequencyOracle::new(spec.min, spec.max, 8, eps).unwrap();
            total_variation(&o.estimate(&data, rng), &o.true_shares(&data))
        };
        let weak = tv_of(4.0, &mut rng);
        let strong = tv_of(0.25, &mut rng);
        assert!(strong > weak, "ε=0.25 TV {strong} vs ε=4 TV {weak}");
    }

    #[test]
    fn total_variation_properties() {
        let a = [0.5, 0.5];
        let b = [1.0, 0.0];
        assert!((total_variation(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(total_variation(&a, &a), 0.0);
    }
}
