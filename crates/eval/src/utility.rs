//! Utility evaluation (Tables II–V): MAE of aggregate queries over noised
//! data, for each dataset × mechanism.
//!
//! Cells are mutually independent — each derives its own seeded RNG stream
//! from `(seed, kind)` — so rows fan out over [`ulp_par`] and the table is
//! byte-identical for any thread count.

use ldp_core::{LdpError, Mechanism};
use ldp_datasets::{evaluate_query_batched, DatasetSpec, MaeResult, Query};
use ulp_obs::{Counter, SpanTimer};
use ulp_rng::Taus88;

use crate::setup::{GroundTruth, MechKind};

/// One cell of a utility table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilityCell {
    /// Which mechanism setting this cell evaluates.
    pub kind: MechKind,
    /// MAE ± std and relative error.
    pub result: MaeResult,
    /// Whether the mechanism carries an LDP guarantee (the "LDP?" flag of
    /// Tables II–V).
    pub ldp: bool,
}

/// One row of a utility table: a dataset evaluated under all four settings.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilityRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Cells in [`MechKind::all`] order.
    pub cells: Vec<UtilityCell>,
}

/// Evaluates one dataset under all four mechanism settings.
///
/// `trials` privatization passes are made per mechanism; `multiple` is the
/// loss target (`n` in `n·ε`) used for resampling/thresholding.
///
/// # Errors
///
/// Mechanism construction and threshold-solver errors propagate.
pub fn utility_row(
    spec: &DatasetSpec,
    query: Query,
    eps: f64,
    multiple: f64,
    trials: usize,
    seed: u64,
) -> Result<UtilityRow, LdpError> {
    // Shared dataset realization and encodings (hoisted; generation is a
    // pure function of `(spec, seed)` so cell RNG streams are untouched).
    let gt = GroundTruth::prepare(spec, eps, seed)?;
    let setup = &gt.setup;
    let data = &gt.data;
    let scale = query.error_scale(spec.range_length(), spec.entries);
    // Each cell owns its RNG stream (seeded from `(seed, kind)` only), so
    // evaluating the four settings concurrently reproduces the serial bytes.
    let kinds = MechKind::all();
    let cells: Result<Vec<UtilityCell>, LdpError> =
        ulp_par::par_map(&kinds, |&kind| -> Result<UtilityCell, LdpError> {
            let mech: Box<dyn Mechanism> = match kind {
                MechKind::Ideal => Box::new(setup.ideal()?),
                MechKind::Baseline => Box::new(setup.baseline()?),
                MechKind::Resampling => Box::new(setup.resampling(multiple)?),
                MechKind::Thresholding => Box::new(setup.thresholding(multiple)?),
            };
            let mut rng = Taus88::from_seed(seed ^ (kind as u64) << 32 ^ 0xCE11);
            let adc = setup.adc;
            // Encodings come pre-hoisted from the shared `GroundTruth`;
            // each trial is one batched privatization pass. The grid fast
            // path (`privatize_index_batch`) takes the pre-quantized
            // indices; on the reference path it declines (`Ok(None)`) and
            // the f64 fallback below runs the exact pre-existing draw
            // sequence, so reference digests are unchanged.
            let codes = &gt.codes;
            let range = setup.range;
            let xs_k = &gt.codes_k;
            let mut y_k = vec![0i64; codes.len()];
            let mut noised = vec![0.0f64; codes.len()];
            let (dec_min, dec_lsb) = (adc.decode(0), adc.lsb());
            let fill = |out: &mut [f64]| -> Result<(), LdpError> {
                if mech
                    .privatize_index_batch(xs_k, &mut rng, &mut y_k)?
                    .is_some()
                {
                    if range.delta() == 1.0 {
                        // Unit grid (every `ExperimentSetup`): the index is
                        // the ADC code, so decoding is one fused mul-add.
                        for (slot, &y) in out.iter_mut().zip(y_k.iter()) {
                            *slot = dec_min + y as f64 * dec_lsb;
                        }
                    } else {
                        for (slot, &y) in out.iter_mut().zip(y_k.iter()) {
                            *slot = dec_min + range.to_value(y).round() * dec_lsb;
                        }
                    }
                    return Ok(());
                }
                mech.privatize_batch(codes, &mut rng, &mut noised)?;
                for (slot, &v) in out.iter_mut().zip(noised.iter()) {
                    *slot = adc.decode(v.round() as i64);
                }
                Ok(())
            };
            // The noise distribution is public, so the variance aggregator
            // subtracts the advertised noise variance 2λ² (in physical
            // units). The residual error of the window-limited mechanisms —
            // whose true noise variance is slightly below 2λ² because of
            // clipping — is exactly the distribution-shape effect Section
            // VI-B discusses.
            let debias = match query {
                Query::Variance => {
                    let lambda_phys = setup.cfg.lambda() * adc.lsb();
                    2.0 * lambda_phys * lambda_phys
                }
                _ => 0.0,
            };
            let result = evaluate_query_batched(data, fill, query, trials, scale, debias)?;
            Ok(UtilityCell {
                kind,
                result,
                ldp: mech.guarantee().bound().is_some(),
            })
        })
        .into_iter()
        .collect();
    Ok(UtilityRow {
        dataset: spec.name,
        cells: cells?,
    })
}

/// Runs a full utility table over a list of datasets.
///
/// # Errors
///
/// Propagates [`utility_row`] errors.
pub fn utility_table(
    specs: &[DatasetSpec],
    query: Query,
    eps: f64,
    multiple: f64,
    trials: usize,
    seed: u64,
) -> Result<Vec<UtilityRow>, LdpError> {
    static SWEEP: SpanTimer = SpanTimer::new("eval.utility_table");
    static CELLS: Counter = Counter::new("eval.utility.rows");
    let _span = SWEEP.enter();
    CELLS.add(specs.len() as u64);
    ulp_par::par_map(specs, |s| {
        utility_row(s, query, eps, multiple, trials, seed)
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_datasets::statlog_heart;

    fn row(query: Query) -> UtilityRow {
        utility_row(&statlog_heart(), query, 0.5, 2.0, 30, 7).unwrap()
    }

    #[test]
    fn ldp_flags_match_the_paper() {
        // Ideal: Y, baseline: N, resampling: Y, thresholding: Y.
        let r = row(Query::Mean);
        let flags: Vec<bool> = r.cells.iter().map(|c| c.ldp).collect();
        assert_eq!(flags, vec![true, false, true, true]);
    }

    #[test]
    fn baseline_matches_ideal_utility() {
        // Section VI-B: "FxP hardware baseline always shows almost
        // identical utility results with ideal distribution".
        let r = row(Query::Mean);
        let ideal = r.cells[0].result.mae;
        let baseline = r.cells[1].result.mae;
        // Same order of magnitude, ratio within 2× (MAE is itself noisy at
        // 30 trials).
        assert!(
            baseline < 2.0 * ideal + 1.0 && ideal < 2.0 * baseline + 1.0,
            "ideal {ideal}, baseline {baseline}"
        );
    }

    #[test]
    fn fixed_mechanisms_stay_close_to_ideal() {
        for query in [Query::Mean, Query::Median] {
            let r = row(query);
            let ideal = r.cells[0].result.mae;
            for cell in &r.cells[2..] {
                assert!(
                    cell.result.mae < 3.0 * ideal + 1.0,
                    "{query}: {:?} mae {} vs ideal {ideal}",
                    cell.kind,
                    cell.result.mae
                );
            }
        }
    }

    #[test]
    fn relative_error_uses_query_scale() {
        let r = row(Query::Mean);
        for cell in &r.cells {
            let expected = cell.result.mae / statlog_heart().range_length();
            assert!((cell.result.relative - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn table_covers_all_requested_datasets() {
        let specs = vec![statlog_heart()];
        let t = utility_table(&specs, Query::Variance, 0.5, 2.0, 5, 1).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].cells.len(), 4);
    }
}
