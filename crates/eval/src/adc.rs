//! Sensor ADC model: physical values ↔ fixed-point codes.
//!
//! The DP-Box "requires no knowledge of the sensors, except for the sensor
//! range" (Section IV): a deployment maps the physical range `[min, max]`
//! onto `q`-bit ADC codes `0..=2^q` and the privacy pipeline runs entirely
//! in code space (`Δ = 1` code). This module is that mapping.

/// A linear analog-to-digital conversion of a sensor range onto `q`-bit
/// codes.
///
/// # Examples
///
/// ```
/// use ldp_eval::Adc;
///
/// let adc = Adc::new(94.0, 200.0, 8);
/// let code = adc.encode(131.3);
/// assert!((0..=256).contains(&code));
/// let back = adc.decode(code);
/// assert!((back - 131.3).abs() <= adc.lsb() / 2.0 + 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adc {
    min: f64,
    max: f64,
    bits: u8,
}

impl Adc {
    /// Creates an ADC for `[min, max]` with `bits`-bit resolution
    /// (codes `0..=2^bits`).
    ///
    /// # Panics
    ///
    /// Panics unless `min < max` and `1 ≤ bits ≤ 16` (the paper's DP-Box
    /// supports sensors up to 13 bits).
    pub fn new(min: f64, max: f64, bits: u8) -> Self {
        assert!(min < max, "empty ADC range");
        assert!((1..=16).contains(&bits), "ADC resolution out of range");
        Adc { min, max, bits }
    }

    /// Number of resolution bits.
    pub fn bits(self) -> u8 {
        self.bits
    }

    /// Top code value, `2^bits`.
    pub fn max_code(self) -> i64 {
        1i64 << self.bits
    }

    /// Physical value of one LSB.
    pub fn lsb(self) -> f64 {
        (self.max - self.min) / self.max_code() as f64
    }

    /// Quantizes a physical value to a code, clamping into range.
    pub fn encode(self, x: f64) -> i64 {
        let code = ((x - self.min) / self.lsb()).round() as i64;
        code.clamp(0, self.max_code())
    }

    /// Converts a code (possibly outside `0..=2^bits`, e.g. a noised
    /// output) back to physical units by linear extension.
    pub fn decode(self, code: i64) -> f64 {
        self.min + code as f64 * self.lsb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_clamps_out_of_range_values() {
        let adc = Adc::new(0.0, 10.0, 4);
        assert_eq!(adc.encode(-5.0), 0);
        assert_eq!(adc.encode(50.0), 16);
    }

    #[test]
    fn roundtrip_error_is_half_lsb() {
        let adc = Adc::new(-1.0, 1.0, 8);
        for i in 0..100 {
            let x = -1.0 + 0.02 * i as f64;
            let err = (adc.decode(adc.encode(x)) - x).abs();
            assert!(err <= adc.lsb() / 2.0 + 1e-12);
        }
    }

    #[test]
    fn decode_extends_beyond_range() {
        let adc = Adc::new(0.0, 10.0, 4);
        // A noised code below zero decodes below the physical minimum.
        assert!(adc.decode(-8) < 0.0);
    }

    #[test]
    #[should_panic(expected = "empty ADC range")]
    fn rejects_empty_range() {
        Adc::new(1.0, 1.0, 8);
    }

    #[test]
    #[should_panic(expected = "resolution out of range")]
    fn rejects_wild_resolution() {
        Adc::new(0.0, 1.0, 40);
    }
}
