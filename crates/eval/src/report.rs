//! Plain-text table rendering for the regeneration binaries.

use core::fmt;

/// A column-aligned text table.
///
/// # Examples
///
/// ```
/// use ldp_eval::TextTable;
///
/// let mut t = TextTable::new(vec!["dataset", "MAE"]);
/// t.row(vec!["statlog-heart".into(), "7.3".into()]);
/// let text = t.to_string();
/// assert!(text.contains("statlog-heart"));
/// assert!(text.lines().count() >= 3); // header, rule, one row
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for i in 0..cols {
                widths[i] = widths[i].max(row[i].len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        write_row(f, &rule)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats `mae ± std` with sensible precision.
pub fn fmt_mae(mae: f64, std: f64) -> String {
    if mae >= 100.0 {
        format!("{mae:.0}±{std:.0}")
    } else if mae >= 1.0 {
        format!("{mae:.1}±{std:.1}")
    } else {
        format!("{mae:.3}±{std:.3}")
    }
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align() {
        let mut t = TextTable::new(vec!["a", "bb"]);
        t.row(vec!["xxxx".into(), "y".into()]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().map(|l| l.trim_end()).collect();
        assert_eq!(lines.len(), 3);
        // The second column starts at the same offset in every line.
        let off = lines[0].find("bb").unwrap();
        assert_eq!(lines[2].find('y').unwrap(), off);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        TextTable::new(vec!["a"]).row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn mae_formatting_scales() {
        assert_eq!(fmt_mae(1234.6, 67.8), "1235±68");
        assert_eq!(fmt_mae(7.31, 1.62), "7.3±1.6");
        assert_eq!(fmt_mae(0.0612, 0.0081), "0.061±0.008");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(fmt_pct(0.086), "8.6%");
    }

    #[test]
    fn empty_and_len() {
        let mut t = TextTable::new(vec!["a"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }
}
