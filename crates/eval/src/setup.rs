//! Per-dataset experiment setup: ADC, noise configuration, mechanisms.
//!
//! Everything downstream (utility tables, latency, figures) builds on this:
//! the dataset's physical range is mapped onto `q`-bit ADC codes, the
//! privacy pipeline runs in code space (`Δ = 1` code), and the four
//! evaluated mechanisms are constructed from one shared noise
//! configuration.

use ldp_core::{
    exact_threshold_cached, FxpBaseline, IdealLaplaceMechanism, LdpError, LimitMode,
    QuantizedRange, ResamplingMechanism, SamplerPath, ThresholdingMechanism,
};
use ldp_datasets::{generate, DatasetSpec};
use ulp_rng::{cached_pmf, FxpLaplace, FxpLaplaceConfig, FxpNoisePmf};

use crate::adc::Adc;

/// A dataset realization prepared for evaluation: the setup plus the
/// generated values and their deterministic encodings.
///
/// Every sweep used to repeat the same three steps per cell — build an
/// [`ExperimentSetup`], call [`ldp_datasets::generate`], and encode the
/// values to ADC codes. This hoists that block so the utility, latency,
/// adversary, and fleet sweeps all share one copy (and one definition of
/// "ground truth") instead of each keeping their own.
///
/// Generation and encoding are pure functions of `(spec, seed)`, so
/// preparing a `GroundTruth` consumes no RNG stream shared with any
/// mechanism: sweeps rewired through it reproduce their previous bytes
/// exactly.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// The configured experiment (ADC, range, noise PMF, mechanisms).
    pub setup: ExperimentSetup,
    /// The generated physical sensor values.
    pub data: Vec<f64>,
    /// `data` encoded to ADC codes, as `f64` (the batched-privatization
    /// input format).
    pub codes: Vec<f64>,
    /// `data` encoded to ADC codes, as grid indices (the index-batch /
    /// device input format).
    pub codes_k: Vec<i64>,
}

impl GroundTruth {
    /// Prepares a dataset realization under the paper's default operating
    /// point (`Bu = 17`, 8-bit ADC).
    ///
    /// # Errors
    ///
    /// See [`ExperimentSetup::new`].
    pub fn prepare(spec: &DatasetSpec, eps: f64, seed: u64) -> Result<Self, LdpError> {
        Ok(Self::from_setup(
            ExperimentSetup::paper_default(spec, eps)?,
            seed,
        ))
    }

    /// Prepares a realization with explicit RNG widths (the Fig. 15 sweep
    /// varies `By`).
    ///
    /// # Errors
    ///
    /// See [`ExperimentSetup::with_output_bits`].
    pub fn with_output_bits(
        spec: &DatasetSpec,
        eps: f64,
        bu: u8,
        by: u8,
        adc_bits: u8,
        seed: u64,
    ) -> Result<Self, LdpError> {
        Ok(Self::from_setup(
            ExperimentSetup::with_output_bits(spec, eps, bu, by, adc_bits)?,
            seed,
        ))
    }

    /// Generates and encodes the dataset for an already-built setup.
    pub fn from_setup(setup: ExperimentSetup, seed: u64) -> Self {
        let data = generate(&setup.spec, seed);
        let adc = setup.adc;
        let codes_k: Vec<i64> = data.iter().map(|&x| adc.encode(x)).collect();
        let codes: Vec<f64> = codes_k.iter().map(|&k| k as f64).collect();
        GroundTruth {
            setup,
            data,
            codes,
            codes_k,
        }
    }

    /// Number of entries in the realization.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the realization is empty (a zero-entry spec).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True population mean, in ADC codes.
    pub fn mean_code(&self) -> f64 {
        self.codes_k.iter().map(|&k| k as f64).sum::<f64>() / self.len().max(1) as f64
    }

    /// True population variance (biased, `/n`), in squared ADC codes.
    pub fn variance_code(&self) -> f64 {
        let m = self.mean_code();
        self.codes_k
            .iter()
            .map(|&k| {
                let d = k as f64 - m;
                d * d
            })
            .sum::<f64>()
            / self.len().max(1) as f64
    }

    /// True fraction of entries at or above `threshold_k` codes — the
    /// ground truth for the RR-backed count/frequency queries.
    pub fn fraction_at_or_above(&self, threshold_k: i64) -> f64 {
        self.codes_k.iter().filter(|&&k| k >= threshold_k).count() as f64 / self.len().max(1) as f64
    }
}

/// Which of the paper's four evaluated settings a mechanism instance is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MechKind {
    /// Continuous double-precision Laplace (the mathematical ideal).
    Ideal,
    /// Naive fixed-point implementation (no privacy guarantee).
    Baseline,
    /// Fixed-point with resampling.
    Resampling,
    /// Fixed-point with thresholding.
    Thresholding,
}

impl MechKind {
    /// All four settings in the tables' column order.
    pub fn all() -> [MechKind; 4] {
        [
            MechKind::Ideal,
            MechKind::Baseline,
            MechKind::Resampling,
            MechKind::Thresholding,
        ]
    }

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            MechKind::Ideal => "Ideal Local DP",
            MechKind::Baseline => "FxP HW Baseline",
            MechKind::Resampling => "Resampling",
            MechKind::Thresholding => "Thresholding",
        }
    }
}

/// A fully configured experiment for one dataset at one privacy level.
#[derive(Debug, Clone)]
pub struct ExperimentSetup {
    /// The dataset specification.
    pub spec: DatasetSpec,
    /// The ADC mapping physical values to codes.
    pub adc: Adc,
    /// The sensor range in code space.
    pub range: QuantizedRange,
    /// The fixed-point noise configuration (`Δ = 1` code).
    pub cfg: FxpLaplaceConfig,
    /// The exact output PMF of the noise RNG.
    pub pmf: FxpNoisePmf,
    /// The privacy parameter ε.
    pub eps: f64,
    /// Which sampler datapath batched privatization uses (read from the
    /// `ULP_SAMPLER_PATH` environment variable; see
    /// [`SamplerPath::from_env`]). Single draws always stay on the
    /// cycle-faithful reference path.
    pub sampler_path: SamplerPath,
}

impl ExperimentSetup {
    /// Builds a setup: `q`-bit ADC, `Bu`-bit URNG, scale `λ = 2^q/ε` codes,
    /// 20-bit output word.
    ///
    /// # Errors
    ///
    /// [`LdpError::InvalidEpsilon`] for a non-positive ε; RNG configuration
    /// errors propagate.
    pub fn new(spec: &DatasetSpec, eps: f64, bu: u8, adc_bits: u8) -> Result<Self, LdpError> {
        Self::with_output_bits(spec, eps, bu, 20, adc_bits)
    }

    /// Builds a setup with an explicit RNG output word width `By` — Fig. 15
    /// sweeps this to show the low-resolution utility floor.
    ///
    /// # Errors
    ///
    /// [`LdpError::InvalidEpsilon`] for a non-positive ε;
    /// [`LdpError::InvalidEnv`] for an unrecognized `ULP_SAMPLER_PATH`
    /// value; RNG configuration errors propagate.
    pub fn with_output_bits(
        spec: &DatasetSpec,
        eps: f64,
        bu: u8,
        by: u8,
        adc_bits: u8,
    ) -> Result<Self, LdpError> {
        if !(eps.is_finite() && eps > 0.0) {
            return Err(LdpError::InvalidEpsilon(eps));
        }
        let adc = Adc::new(spec.min, spec.max, adc_bits);
        let range = QuantizedRange::new(0, adc.max_code(), 1.0)?;
        let lambda = adc.max_code() as f64 / eps;
        let cfg = FxpLaplaceConfig::new(bu, by, 1.0, lambda)?;
        // Memoized: structurally identical to `FxpNoisePmf::closed_form(cfg)`
        // but shared across the thousands of setups a sweep constructs.
        let pmf = (*cached_pmf(cfg)).clone();
        Ok(ExperimentSetup {
            spec: spec.clone(),
            adc,
            range,
            cfg,
            pmf,
            eps,
            sampler_path: SamplerPath::from_env()?,
        })
    }

    /// Overrides the sampler path for every mechanism this setup builds.
    pub fn with_sampler_path(mut self, path: SamplerPath) -> Self {
        self.sampler_path = path;
        self
    }

    /// The paper's default operating point: `Bu = 17`, 8-bit ADC.
    ///
    /// # Errors
    ///
    /// See [`ExperimentSetup::new`].
    pub fn paper_default(spec: &DatasetSpec, eps: f64) -> Result<Self, LdpError> {
        Self::new(spec, eps, 17, 8)
    }

    /// The ideal continuous mechanism.
    ///
    /// # Errors
    ///
    /// Propagates constructor validation.
    pub fn ideal(&self) -> Result<IdealLaplaceMechanism, LdpError> {
        Ok(IdealLaplaceMechanism::new(self.range, self.eps)?.with_sampler_path(self.sampler_path))
    }

    /// The naive fixed-point baseline.
    ///
    /// # Errors
    ///
    /// Propagates constructor validation.
    pub fn baseline(&self) -> Result<FxpBaseline, LdpError> {
        Ok(
            FxpBaseline::new(FxpLaplace::analytic(self.cfg), self.range)?
                .with_sampler_path(self.sampler_path),
        )
    }

    /// The resampling mechanism at loss target `multiple · ε`.
    ///
    /// # Errors
    ///
    /// Threshold-solver errors propagate.
    pub fn resampling(&self, multiple: f64) -> Result<ResamplingMechanism, LdpError> {
        let spec = exact_threshold_cached(self.cfg, self.range, multiple, LimitMode::Resampling)?;
        Ok(
            ResamplingMechanism::new(FxpLaplace::analytic(self.cfg), self.range, spec)?
                .with_sampler_path(self.sampler_path),
        )
    }

    /// The thresholding mechanism at loss target `multiple · ε`.
    ///
    /// # Errors
    ///
    /// Threshold-solver errors propagate.
    pub fn thresholding(&self, multiple: f64) -> Result<ThresholdingMechanism, LdpError> {
        let spec = exact_threshold_cached(self.cfg, self.range, multiple, LimitMode::Thresholding)?;
        Ok(
            ThresholdingMechanism::new(FxpLaplace::analytic(self.cfg), self.range, spec)?
                .with_sampler_path(self.sampler_path),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::Mechanism;
    use ldp_datasets::statlog_heart;
    use ulp_rng::Taus88;

    #[test]
    fn paper_default_builds_all_mechanisms() {
        let setup = ExperimentSetup::paper_default(&statlog_heart(), 0.5).unwrap();
        assert_eq!(setup.adc.bits(), 8);
        assert_eq!(setup.range.span_k(), 256);
        let mut rng = Taus88::from_seed(1);
        for mech in [
            Box::new(setup.ideal().unwrap()) as Box<dyn Mechanism>,
            Box::new(setup.baseline().unwrap()),
            Box::new(setup.resampling(2.0).unwrap()),
            Box::new(setup.thresholding(2.0).unwrap()),
        ] {
            let out = mech.privatize(131.0_f64.round(), &mut rng).unwrap();
            assert!(out.value.is_finite());
        }
    }

    #[test]
    fn lambda_scales_with_adc_resolution() {
        let s8 = ExperimentSetup::new(&statlog_heart(), 0.5, 17, 8).unwrap();
        let s10 = ExperimentSetup::new(&statlog_heart(), 0.5, 17, 10).unwrap();
        assert_eq!(s8.cfg.lambda(), 512.0);
        assert_eq!(s10.cfg.lambda(), 2048.0);
    }

    #[test]
    fn rejects_bad_epsilon() {
        assert!(ExperimentSetup::paper_default(&statlog_heart(), 0.0).is_err());
        assert!(ExperimentSetup::paper_default(&statlog_heart(), f64::NAN).is_err());
    }

    #[test]
    fn ground_truth_matches_manual_prep() {
        let spec = statlog_heart();
        let gt = GroundTruth::prepare(&spec, 0.5, 7).unwrap();
        let data = ldp_datasets::generate(&spec, 7);
        assert_eq!(gt.data, data);
        let codes: Vec<f64> = data
            .iter()
            .map(|&x| gt.setup.adc.encode(x) as f64)
            .collect();
        assert_eq!(gt.codes, codes);
        // The i64 encodings equal the `quantize` path the sweeps used
        // before the hoist (unit grid, min_k = 0).
        let xs_k: Vec<i64> = codes.iter().map(|&c| gt.setup.range.quantize(c)).collect();
        assert_eq!(gt.codes_k, xs_k);
        assert_eq!(gt.len(), spec.entries);
        assert!(!gt.is_empty());
    }

    #[test]
    fn ground_truth_statistics_are_exact() {
        let spec = statlog_heart();
        let gt = GroundTruth::prepare(&spec, 0.5, 11).unwrap();
        let n = gt.len() as f64;
        let mean = gt.codes_k.iter().map(|&k| k as f64).sum::<f64>() / n;
        assert_eq!(gt.mean_code(), mean);
        let var = gt
            .codes_k
            .iter()
            .map(|&k| (k as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        assert!((gt.variance_code() - var).abs() < 1e-9);
        // Thresholding at the extremes brackets every entry.
        assert_eq!(gt.fraction_at_or_above(0), 1.0);
        assert_eq!(gt.fraction_at_or_above(gt.setup.adc.max_code() + 1), 0.0);
        let mid = gt.fraction_at_or_above(128);
        assert!(mid > 0.0 && mid < 1.0, "mid-range threshold splits: {mid}");
    }

    #[test]
    fn mech_kind_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            MechKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
