//! Evaluation harness for the DP-Box reproduction: everything needed to
//! regenerate the paper's tables and figures.
//!
//! | Paper artifact | Module |
//! |---|---|
//! | Tables II–V (query MAE per dataset × mechanism) | [`utility_table`] |
//! | Fig. 4 / Fig. 12 (output histograms, distinguishability) | [`Histogram`], [`distinguishing_bins`] |
//! | Fig. 11 (noising latency per dataset) | [`latency_row`], [`latency_table`] |
//! | Fig. 13 (averaging adversary vs budget control) | [`averaging_attack`], [`adversary_curves`] |
//! | Fig. 14 (randomized-response accuracy vs n) | [`rr_curve`] |
//! | Fig. 15 (MAE vs dataset size and RNG resolution) | [`scaling_curve`] |
//! | Table VI (privacy-preserving SVM) | [`svm_accuracy`], [`svm_grid`] |
//! | URNG fault-injection campaign (robustness extension) | [`inject_fault`], [`pre_detection_loss`], [`healthy_alarm_count`] |
//!
//! The shared experiment plumbing lives in [`ExperimentSetup`] (one dataset
//! plus privacy level, giving the ADC mapping, noise configuration, and all
//! four mechanisms) and [`Adc`] (physical values to sensor codes).
//! [`TextTable`] renders the regeneration binaries' output.
//!
//! Every sweep fans its independent cells out over [`ulp_par`]; each cell
//! seeds its own RNG stream from the cell coordinates alone, so results are
//! byte-identical at any thread count (including `ULP_PAR_THREADS=1`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adc;
mod adversary;
mod fault_campaign;
mod frequency;
mod histogram;
mod latency;
mod predict;
mod report;
mod rr_eval;
mod scaling;
mod setup;
mod svm;
mod utility;

pub use adc::Adc;
pub use adversary::{adversary_curves, averaging_attack, AdversaryPoint};
pub use fault_campaign::{
    campaign_row, default_fault_suite, healthy_alarm_count, inject_fault, pre_detection_loss,
    CampaignConfig, CampaignRow, FaultInjection, FaultKind, PreDetectionLoss,
};
pub use frequency::{total_variation, FrequencyOracle};
pub use histogram::{
    certified_distinguishing_outputs, distinguishing_bins, sample_histogram, Histogram,
};
pub use latency::{latency_row, latency_table, tail_mass_outside, LatencyRow, BASE_CYCLES};
pub use predict::{noise_sigma, predict_mean_mae, sensors_for_mean_mae};
pub use report::{fmt_mae, fmt_pct, TextTable};
pub use rr_eval::{rr_curve, RrPoint};
pub use scaling::{scaling_curve, ScalingPoint};
pub use setup::{ExperimentSetup, GroundTruth, MechKind};
pub use svm::{halfspace_dataset, svm_accuracy, svm_grid, LinearSvm, Sample, SvmPrivacy};
pub use utility::{utility_row, utility_table, UtilityCell, UtilityRow};
