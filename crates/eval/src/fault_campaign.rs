//! Fault-injection campaign for the URNG health monitor and fail-safe
//! pipeline.
//!
//! The ε-LDP guarantee has two legs: a *structural* window bound that holds
//! for any bit source, and a *distributional* bound that holds only while
//! the Tausworthe URNG is actually uniform. The campaign quantifies what
//! the continuous health tests buy when the second leg breaks:
//!
//! * [`inject_fault`] — one device run with a fault switched on mid-mission
//!   ([`ulp_rng::OnsetBits`]), measuring detection latency in URNG words and
//!   device cycles, and collecting the outputs released between onset and
//!   alarm;
//! * [`healthy_alarm_count`] — the false-positive side: alarms raised over a
//!   long healthy [`Taus88`] run (the acceptance bar is zero over ≥10⁷ words
//!   at the default cutoffs);
//! * [`pre_detection_loss`] — the privacy exposure of the detection window:
//!   empirical conditional output distributions at the two extreme inputs,
//!   built from pre-detection outputs across many trials and compared via
//!   the exact machinery in `ldp_core::loss`
//!   ([`ConditionalDist::from_weights`]).

use std::collections::BTreeMap;

use dp_box::{
    Command, DpBox, DpBoxConfig, DpBoxError, HealthAlarm, HealthConfig, Phase, UrngHealth,
};
use ldp_core::{worst_case_loss_extremes, ConditionalDist, LimitMode, QuantizedRange};
use ulp_obs::{Counter, SpanTimer};
use ulp_rng::{
    BiasedBits, CorrelatedBits, FxpNoisePmf, OnsetBits, RandomBits, StuckAtBits, Taus88,
};

/// One injectable URNG fault model, with its severity parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// One output bit wedged at a constant level ([`StuckAtBits`]).
    StuckAt {
        /// Bit position (31 is the sign bit the noise pipeline consumes).
        bit: u8,
        /// The constant level.
        value: bool,
    },
    /// Every bit independently forced to 1 with probability
    /// `extra_256 / 256` on top of the fair coin ([`BiasedBits`]).
    Biased {
        /// Bias strength in 1/256ths.
        extra_256: u8,
    },
    /// Every bit copies the bit `lag` words earlier with probability
    /// `rho_256 / 256` ([`CorrelatedBits`]).
    Correlated {
        /// Correlation lag in words.
        lag: u8,
        /// Copy probability in 1/256ths.
        rho_256: u8,
    },
}

impl FaultKind {
    /// Short human-readable label for campaign tables.
    pub fn label(&self) -> String {
        match self {
            FaultKind::StuckAt { bit, value } => {
                format!("stuck-at bit {bit} = {}", u8::from(*value))
            }
            FaultKind::Biased { extra_256 } => {
                format!("biased +{:.1}% ones", f64::from(*extra_256) / 256.0 * 50.0)
            }
            FaultKind::Correlated { lag, rho_256 } => {
                format!(
                    "correlated lag {lag} rho {:.2}",
                    f64::from(*rho_256) / 256.0
                )
            }
        }
    }

    /// Wraps a seeded healthy generator in this fault.
    fn wrap(self, seed: u64) -> Box<dyn RandomBits> {
        let inner = Taus88::from_seed(seed);
        match self {
            FaultKind::StuckAt { bit, value } => Box::new(StuckAtBits::new(inner, bit, value)),
            FaultKind::Biased { extra_256 } => Box::new(BiasedBits::new(inner, extra_256)),
            FaultKind::Correlated { lag, rho_256 } => {
                Box::new(CorrelatedBits::new(inner, lag, rho_256))
            }
        }
    }
}

/// A representative severity sweep: the faults the paper's deployment
/// hazard discussion motivates, at strengths the default cutoffs must
/// catch. (Milder severities than these sit below the Hoeffding cutoffs by
/// design — the monitor trades them for a ≈2⁻⁴⁰ per-decision false-positive
/// rate.)
pub fn default_fault_suite() -> Vec<FaultKind> {
    vec![
        FaultKind::StuckAt {
            bit: 31,
            value: true,
        }, // wedged sign bit
        FaultKind::StuckAt {
            bit: 13,
            value: false,
        }, // wedged magnitude bit
        FaultKind::Biased { extra_256: 16 }, // +3.1% ones
        FaultKind::Biased { extra_256: 64 }, // +12.5% ones
        FaultKind::Correlated {
            lag: 1,
            rho_256: 128,
        },
        FaultKind::Correlated {
            lag: 4,
            rho_256: 192,
        },
    ]
}

/// Shared experiment parameters for one injection run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Sensor range upper code (range is `[0, span]` grid units).
    pub span: i64,
    /// ε exponent: the device noises at `ε = 2^-n_m` per release.
    pub n_m: i64,
    /// URNG word index at which the fault switches on.
    pub onset_word: u64,
    /// Give up (fault undetected) after this many noising requests.
    pub max_noisings: u64,
}

impl Default for CampaignConfig {
    /// The quickstart operating point: `[0, 320]` codes (= `[0, 10.0]` at
    /// Δ = 1/32), ε = 2⁻¹, fault onset at word 256.
    fn default() -> Self {
        CampaignConfig {
            span: 320,
            n_m: 1,
            onset_word: 256,
            max_noisings: 4096,
        }
    }
}

/// Outcome of one fault-injection run ([`inject_fault`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjection {
    /// The injected fault.
    pub fault: FaultKind,
    /// Whether the health monitor tripped within the noising budget.
    pub detected: bool,
    /// The alarm that latched, if any.
    pub alarm: Option<HealthAlarm>,
    /// Words consumed between fault onset and the alarm (inclusive of the
    /// tripping word).
    pub latency_words: Option<u64>,
    /// Device cycles elapsed between the first post-onset noising request
    /// and the alarm.
    pub latency_cycles: Option<u64>,
    /// Outputs released from samples drawn at least partly after onset but
    /// before the alarm — the privacy-relevant exposure window.
    pub pre_detection_outputs: Vec<i64>,
    /// Whether every pre-detection output stayed inside the structural
    /// window `[−n_th, span + n_th]`.
    pub contained: bool,
}

fn configure<R: RandomBits>(dev: &mut DpBox<R>, cc: &CampaignConfig) -> Result<(), DpBoxError> {
    dev.issue(Command::StartNoising, 0)?; // leave initialization
    dev.issue(Command::SetEpsilon, cc.n_m)?;
    dev.issue(Command::SetSensorRangeLower, 0)?;
    dev.issue(Command::SetSensorRangeUpper, cc.span)?;
    dev.issue(Command::SetThreshold, 0)?; // toggle to thresholding
    Ok(())
}

/// Runs one mission with `fault` switching on at `cc.onset_word`, noising
/// the fixed sensor code `x_code` until the monitor trips (or the noising
/// budget runs out).
///
/// # Errors
///
/// Device configuration errors propagate; [`DpBoxError::UrngHealthFault`]
/// is the expected detection outcome and is *not* an error here.
///
/// # Panics
///
/// Panics if `x_code` lies outside `[0, cc.span]`.
pub fn inject_fault(
    fault: FaultKind,
    cc: &CampaignConfig,
    x_code: i64,
    seed: u64,
) -> Result<FaultInjection, DpBoxError> {
    assert!(
        (0..=cc.span).contains(&x_code),
        "x_code {x_code} outside [0, {}]",
        cc.span
    );
    let faulty = fault.wrap(seed ^ 0xFA17_FA17_FA17_FA17);
    let source = OnsetBits::new(Taus88::from_seed(seed), faulty, cc.onset_word, None);
    let mut dev = DpBox::with_urng(DpBoxConfig::default(), source)?;
    configure(&mut dev, cc)?;
    // The noising context (and with it the threshold) is built lazily on
    // the first request, so `n_th` is read after the first release.
    let mut n_th: Option<i64> = None;

    let mut pre_detection_outputs = Vec::new();
    let mut contained = true;
    // Device cycle count when the first post-onset request started;
    // recorded conservatively at the request boundary.
    let mut onset_cycles: Option<u64> = None;
    for _ in 0..cc.max_noisings {
        let cycles_before = dev.cycles();
        let result = dev.noise_value(x_code);
        if let Some(alarm) = dev.health_alarm() {
            // `word_index` is zero-based, so `word_index + 1` words were
            // consumed when the alarm latched.
            let latency_words = (alarm.word_index + 1).saturating_sub(cc.onset_word);
            let latency_cycles = dev.cycles() - onset_cycles.unwrap_or(cycles_before);
            debug_assert_eq!(dev.phase(), Phase::HealthFault);
            dev.audit()
                .expect("device ledger must match the composition accountant");
            return Ok(FaultInjection {
                fault,
                detected: true,
                alarm: Some(alarm),
                latency_words: Some(latency_words),
                latency_cycles: Some(latency_cycles),
                pre_detection_outputs,
                contained,
            });
        }
        let (y, _) = result?;
        if n_th.is_none() {
            n_th = dev.threshold_k();
        }
        let n_th = n_th.expect("thresholding context built after first release");
        let words_after = dev.health().map_or(0, UrngHealth::words);
        if words_after > cc.onset_word {
            // This release consumed at least one post-onset word: its
            // distributional certificate is void, so it counts as exposure.
            if onset_cycles.is_none() {
                onset_cycles = Some(cycles_before);
            }
            pre_detection_outputs.push(y);
            if y < -n_th || y > cc.span + n_th {
                contained = false;
            }
        }
    }
    dev.audit()
        .expect("device ledger must match the composition accountant");
    Ok(FaultInjection {
        fault,
        detected: false,
        alarm: None,
        latency_words: None,
        latency_cycles: None,
        pre_detection_outputs,
        contained,
    })
}

/// Aggregated detection statistics for one fault across `trials` seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRow {
    /// The injected fault.
    pub fault: FaultKind,
    /// Trials run.
    pub trials: u64,
    /// Trials in which the monitor tripped.
    pub detected: u64,
    /// Mean detection latency in URNG words over detected trials.
    pub mean_latency_words: Option<f64>,
    /// Worst detection latency in URNG words over detected trials.
    pub max_latency_words: Option<u64>,
    /// Worst detection latency in device cycles over detected trials.
    pub max_latency_cycles: Option<u64>,
    /// Mean number of outputs released inside the exposure window.
    pub mean_pre_detection_outputs: f64,
    /// Whether every pre-detection output in every trial stayed inside the
    /// structural window.
    pub contained: bool,
}

/// Runs `trials` independent injections of `fault` and aggregates the
/// detection metrics.
///
/// # Errors
///
/// Device configuration errors propagate.
pub fn campaign_row(
    fault: FaultKind,
    cc: &CampaignConfig,
    trials: u64,
    seed: u64,
) -> Result<CampaignRow, DpBoxError> {
    static SWEEP: SpanTimer = SpanTimer::new("eval.campaign_row");
    static CELLS: Counter = Counter::new("eval.campaign.trials");
    let _span = SWEEP.enter();
    CELLS.add(trials);
    // Every trial seeds its own device and fault wrapper from `(seed, t)`,
    // so trials fan out over `ulp_par` and aggregate in trial order —
    // byte-identical to the serial loop.
    let trial_ids: Vec<u64> = (0..trials).collect();
    let runs: Vec<FaultInjection> = ulp_par::par_map(&trial_ids, |&t| {
        let s = seed
            .wrapping_add(t)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(1);
        inject_fault(fault, cc, cc.span / 2, s)
    })
    .into_iter()
    .collect::<Result<_, _>>()?;
    let mut detected = 0u64;
    let mut sum_words = 0u64;
    let mut max_words: Option<u64> = None;
    let mut max_cycles: Option<u64> = None;
    let mut sum_outputs = 0u64;
    let mut contained = true;
    for run in runs {
        contained &= run.contained;
        sum_outputs += run.pre_detection_outputs.len() as u64;
        if run.detected {
            detected += 1;
            let w = run.latency_words.expect("detected runs report latency");
            sum_words += w;
            max_words = Some(max_words.map_or(w, |m| m.max(w)));
            let c = run.latency_cycles.expect("detected runs report cycles");
            max_cycles = Some(max_cycles.map_or(c, |m| m.max(c)));
        }
    }
    Ok(CampaignRow {
        fault,
        trials,
        detected,
        mean_latency_words: (detected > 0).then(|| sum_words as f64 / detected as f64),
        max_latency_words: max_words,
        max_latency_cycles: max_cycles,
        mean_pre_detection_outputs: sum_outputs as f64 / trials.max(1) as f64,
        contained,
    })
}

/// Feeds `words` healthy [`Taus88`] words through a standalone
/// [`UrngHealth`] monitor, resetting after any alarm, and returns the
/// number of alarms raised — the campaign's false-positive measurement.
/// At the default α = 2⁻⁴⁰ cutoffs the expected count over 10⁷ words is
/// ≈3·10⁻⁴, so the acceptance bar is exactly zero.
pub fn healthy_alarm_count(words: u64, cfg: HealthConfig, seed: u64) -> u64 {
    let mut monitor = UrngHealth::new(cfg);
    let mut rng = Taus88::from_seed(seed);
    let mut alarms = 0u64;
    for _ in 0..words {
        if monitor.observe(rng.next_u32()).is_err() {
            alarms += 1;
            monitor.reset();
        }
    }
    alarms
}

/// The privacy exposure of the detection window for one fault.
#[derive(Debug, Clone, PartialEq)]
pub struct PreDetectionLoss {
    /// The injected fault.
    pub fault: FaultKind,
    /// Trials per extreme input.
    pub trials: u64,
    /// Pre-detection outputs collected at `x = 0` across all trials.
    pub samples_lo: u64,
    /// Pre-detection outputs collected at `x = span` across all trials.
    pub samples_hi: u64,
    /// Worst empirical loss over the common support of the two observed
    /// output histograms (`None` if either histogram is empty or the
    /// supports are disjoint).
    pub empirical_loss: Option<f64>,
    /// Larger of the two disjoint-support masses — the evidence the
    /// common-support comparison cannot see.
    pub disjoint_mass: f64,
    /// The exact certified worst-case loss of the *healthy* thresholding
    /// mechanism at this operating point, for comparison.
    pub certified_loss: Option<f64>,
    /// Whether every pre-detection output stayed inside the structural
    /// window (this must hold regardless of the fault).
    pub contained: bool,
}

/// Measures the empirical privacy loss of pre-detection outputs: runs
/// `trials` injections at each extreme input, accumulates the observed
/// output histograms, and compares them through the exact
/// [`ConditionalDist`] machinery against the certified healthy bound.
///
/// # Errors
///
/// Device configuration and range-construction errors propagate.
pub fn pre_detection_loss(
    fault: FaultKind,
    cc: &CampaignConfig,
    trials: u64,
    seed: u64,
) -> Result<PreDetectionLoss, DpBoxError> {
    // Each trial's pair of runs (x = 0 and x = span) is seeded from
    // `(seed, t, x)` only, so trials fan out over `ulp_par` and the
    // histograms merge in trial order — identical to the serial loop.
    let trial_ids: Vec<u64> = (0..trials).collect();
    let per_trial: Vec<(Vec<i64>, Vec<i64>, bool)> = ulp_par::par_map(&trial_ids, |&t| {
        let s = seed
            .wrapping_add(t)
            .wrapping_mul(0xD134_2543_DE82_EF95)
            .wrapping_add(1);
        let mut outputs = [Vec::new(), Vec::new()];
        let mut contained = true;
        for (slot, x) in [(0usize, 0i64), (1, cc.span)] {
            let run = inject_fault(fault, cc, x, s ^ (x as u64) << 32)?;
            contained &= run.contained;
            outputs[slot] = run.pre_detection_outputs;
        }
        let [lo, hi] = outputs;
        Ok::<_, DpBoxError>((lo, hi, contained))
    })
    .into_iter()
    .collect::<Result<_, _>>()?;
    let mut lo_counts: BTreeMap<i64, u128> = BTreeMap::new();
    let mut hi_counts: BTreeMap<i64, u128> = BTreeMap::new();
    let mut contained = true;
    for (lo, hi, trial_contained) in per_trial {
        contained &= trial_contained;
        for y in lo {
            *lo_counts.entry(y).or_insert(0) += 1;
        }
        for y in hi {
            *hi_counts.entry(y).or_insert(0) += 1;
        }
    }
    let samples_lo: u64 = lo_counts.values().map(|&w| w as u64).sum();
    let samples_hi: u64 = hi_counts.values().map(|&w| w as u64).sum();
    let d_lo = ConditionalDist::from_weights(lo_counts);
    let d_hi = ConditionalDist::from_weights(hi_counts);
    let (empirical_loss, disjoint_mass) = match (&d_lo, &d_hi) {
        (Some(a), Some(b)) => (
            a.worst_common_support_loss(b),
            a.disjoint_mass(b).max(b.disjoint_mass(a)),
        ),
        _ => (None, 1.0),
    };

    // The certified healthy bound at the same operating point, from the
    // exact PMF — what the distributional leg guarantees while the URNG is
    // uniform.
    let mut reference = DpBox::new(DpBoxConfig::default())?;
    configure(&mut reference, cc)?;
    let _ = reference.noise_value(0)?; // force lazy context construction
    let lap = reference.laplace_config().expect("context built");
    let n_th = reference.threshold_k().expect("context built");
    let pmf = FxpNoisePmf::closed_form(lap);
    let range = QuantizedRange::new(0, cc.span, lap.delta())
        .map_err(|_| DpBoxError::InvalidConfig("campaign range"))?;
    let certified_loss =
        worst_case_loss_extremes(&pmf, range, LimitMode::Thresholding, Some(n_th)).finite();

    Ok(PreDetectionLoss {
        fault,
        trials,
        samples_lo,
        samples_hi,
        empirical_loss,
        disjoint_mass,
        certified_loss,
        contained,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_box::HealthTest;

    const CC: CampaignConfig = CampaignConfig {
        span: 320,
        n_m: 1,
        onset_word: 256,
        max_noisings: 4096,
    };

    #[test]
    fn stuck_sign_bit_is_detected_quickly() {
        let fault = FaultKind::StuckAt {
            bit: 31,
            value: true,
        };
        let run = inject_fault(fault, &CC, 160, 0xC0FFEE).unwrap();
        assert!(run.detected, "stuck sign bit must trip the monitor");
        let alarm = run.alarm.unwrap();
        assert!(
            matches!(alarm.test, HealthTest::RepetitionCount { bit: 31, .. }),
            "expected RCT on bit 31, got {alarm}"
        );
        // RCT cutoff is 41 at the default α = 2⁻⁴⁰; a constant bit trips
        // within ~2 cutoffs of onset (the pre-onset run can only help).
        assert!(
            run.latency_words.unwrap() <= 96,
            "latency {:?} words",
            run.latency_words
        );
        assert!(run.contained, "structural bound must hold pre-detection");
    }

    #[test]
    fn biased_and_correlated_faults_are_detected() {
        for fault in [
            FaultKind::Biased { extra_256: 64 },
            FaultKind::Correlated {
                lag: 1,
                rho_256: 128,
            },
        ] {
            let run = inject_fault(fault, &CC, 160, 0xBEEF).unwrap();
            assert!(run.detected, "{} must trip the monitor", fault.label());
            // Windowed tests close at most two windows after onset.
            assert!(
                run.latency_words.unwrap() <= 2 * 1024 + 64,
                "{}: latency {:?} words",
                fault.label(),
                run.latency_words
            );
            assert!(run.contained);
        }
    }

    #[test]
    fn campaign_row_aggregates_detections() {
        let fault = FaultKind::StuckAt {
            bit: 31,
            value: true,
        };
        let row = campaign_row(fault, &CC, 3, 7).unwrap();
        assert_eq!(row.trials, 3);
        assert_eq!(row.detected, 3);
        assert!(row.mean_latency_words.unwrap() <= 96.0);
        assert!(row.max_latency_words.unwrap() >= 1);
        assert!(row.max_latency_cycles.is_some());
        assert!(row.contained);
    }

    #[test]
    fn healthy_taus88_raises_no_alarms_over_two_million_words() {
        // The binary runs the full ≥10⁷-word acceptance check; this keeps
        // the debug-profile suite fast while still far above the expected
        // chance-alarm count (≈6·10⁻⁵ over 2·10⁶ words at α = 2⁻⁴⁰).
        let alarms = healthy_alarm_count(2_000_000, HealthConfig::default(), 0x5EED);
        assert_eq!(alarms, 0);
    }

    #[test]
    fn pre_detection_loss_reports_contained_exposure() {
        let fault = FaultKind::Biased { extra_256: 64 };
        let report = pre_detection_loss(fault, &CC, 2, 0xABCD).unwrap();
        assert!(report.contained, "outputs must stay inside the window");
        assert!(report.samples_lo > 0 && report.samples_hi > 0);
        // The certified healthy bound exists and is finite at this
        // operating point; the empirical common-support loss is a finite
        // number whenever the histograms overlap.
        assert!(report.certified_loss.is_some());
        if let Some(l) = report.empirical_loss {
            assert!(l.is_finite() && l >= 0.0);
        }
    }

    #[test]
    fn default_suite_covers_all_three_fault_families() {
        let suite = default_fault_suite();
        assert!(suite.iter().any(|f| matches!(f, FaultKind::StuckAt { .. })));
        assert!(suite.iter().any(|f| matches!(f, FaultKind::Biased { .. })));
        assert!(suite
            .iter()
            .any(|f| matches!(f, FaultKind::Correlated { .. })));
    }
}
