//! The averaging adversary and budget-control effectiveness (Fig. 13).
//!
//! An adversary who can request the same sensor value repeatedly averages
//! the noised outputs — the maximum-likelihood estimate of the true value.
//! Without budget control the error decays like `1/√n`; with a finite
//! budget, the DP-Box starts replaying its cached output and the estimate's
//! accuracy is capped.

use ldp_core::{segment_table_cached, BudgetController, LdpError, LimitMode, SamplerPath};
use ulp_obs::{Counter, SpanTimer};
use ulp_rng::{FxpLaplace, Taus88};

use crate::setup::ExperimentSetup;

/// One point on the adversary's learning curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdversaryPoint {
    /// Number of requests made so far.
    pub requests: u64,
    /// Relative error of the running-mean estimate, `|mean − x| / d`.
    pub relative_error: f64,
}

/// Simulates the averaging attack against one sensor value.
///
/// `budget` of `None` disables budget control (unbounded loss). Points are
/// reported at the request counts in `checkpoints`.
///
/// # Errors
///
/// Segment/controller construction errors propagate.
///
/// # Panics
///
/// Panics if `checkpoints` is empty or unsorted.
pub fn averaging_attack(
    setup: &ExperimentSetup,
    x: f64,
    budget: Option<f64>,
    multiples: &[f64],
    checkpoints: &[u64],
    seed: u64,
) -> Result<Vec<AdversaryPoint>, LdpError> {
    assert!(!checkpoints.is_empty(), "need at least one checkpoint");
    assert!(
        checkpoints.windows(2).all(|w| w[0] < w[1]),
        "checkpoints must be ascending"
    );
    // Memoized build: structurally identical to `SegmentTable::build` with
    // the same inputs, shared across the sweep's many attack runs.
    let table = segment_table_cached(setup.cfg, setup.range, multiples, LimitMode::Thresholding)?;
    // Effectively-infinite budget models the "no control" case.
    let mut ctrl = BudgetController::new(table, setup.range, budget.unwrap_or(1e18))?;
    let sampler = FxpLaplace::analytic(setup.cfg);
    let mut rng = Taus88::from_seed(seed ^ 0x0ADE_5A47);
    let fast = setup.sampler_path == SamplerPath::Fast;
    let x_code = setup.adc.encode(x) as f64;
    let d_codes = setup.range.span_k() as f64;
    let mut sum = 0.0f64;
    let mut n = 0u64;
    let mut points = Vec::with_capacity(checkpoints.len());
    let total = *checkpoints.last().expect("nonempty");
    let mut next_cp = 0usize;
    while n < total {
        let y = if fast {
            ctrl.respond_alias(x_code, &sampler, &mut rng)?
        } else {
            ctrl.respond(x_code, &sampler, &mut rng)?
        };
        sum += y;
        n += 1;
        if next_cp < checkpoints.len() && n == checkpoints[next_cp] {
            let mean = sum / n as f64;
            points.push(AdversaryPoint {
                requests: n,
                relative_error: (mean - x_code).abs() / d_codes,
            });
            next_cp += 1;
        }
    }
    // Invariant check: the controller's append-only ledger must agree
    // bitwise with its sequential-composition accountant (counted into the
    // `ldp.ledger.*` metrics).
    ctrl.audit()
        .expect("budget ledger must match the composition accountant");
    Ok(points)
}

/// Runs [`averaging_attack`] for several budget settings concurrently
/// (Fig. 13's three curves). Each run re-seeds its own RNG stream from
/// `seed`, so the result equals mapping [`averaging_attack`] serially over
/// `budgets`.
///
/// # Errors
///
/// Propagates [`averaging_attack`] errors.
///
/// # Panics
///
/// Panics if `checkpoints` is empty or unsorted.
pub fn adversary_curves(
    setup: &ExperimentSetup,
    x: f64,
    budgets: &[Option<f64>],
    multiples: &[f64],
    checkpoints: &[u64],
    seed: u64,
) -> Result<Vec<Vec<AdversaryPoint>>, LdpError> {
    static SWEEP: SpanTimer = SpanTimer::new("eval.adversary_curves");
    static CELLS: Counter = Counter::new("eval.adversary.curves");
    let _span = SWEEP.enter();
    CELLS.add(budgets.len() as u64);
    ulp_par::par_map(budgets, |&b| {
        averaging_attack(setup, x, b, multiples, checkpoints, seed)
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_datasets::statlog_heart;

    fn setup() -> ExperimentSetup {
        ExperimentSetup::paper_default(&statlog_heart(), 0.5).unwrap()
    }

    const CHECKPOINTS: [u64; 7] = [1, 10, 100, 1_000, 5_000, 20_000, 200_000];

    #[test]
    fn unbounded_adversary_converges() {
        let s = setup();
        let pts = averaging_attack(&s, 131.0, None, &[1.5, 2.0, 3.0], &CHECKPOINTS, 1).unwrap();
        let first = pts.first().unwrap().relative_error;
        let last = pts.last().unwrap().relative_error;
        assert!(
            last < first / 5.0,
            "error should shrink: first {first}, last {last}"
        );
        // The mean of N Laplace draws has relative std ≈ 2.8/√N here, so
        // the 0.02 bound is > 3σ at the 200k checkpoint — robust to any
        // sampler-path realization of the noise stream.
        assert!(last < 0.02, "200k averaged requests pin the value: {last}");
    }

    #[test]
    fn budget_caps_the_adversary() {
        let s = setup();
        let pts =
            averaging_attack(&s, 131.0, Some(20.0), &[1.5, 2.0, 3.0], &CHECKPOINTS, 2).unwrap();
        // After exhaustion the cached value dominates the average, so the
        // error stops shrinking; compare with the unbounded run.
        let unbounded =
            averaging_attack(&s, 131.0, None, &[1.5, 2.0, 3.0], &CHECKPOINTS, 2).unwrap();
        let last_b = pts.last().unwrap().relative_error;
        let last_u = unbounded.last().unwrap().relative_error;
        assert!(
            last_b > 2.0 * last_u,
            "budgeted error {last_b} should stay above unbounded {last_u}"
        );
    }

    #[test]
    fn smaller_budget_gives_larger_floor() {
        let s = setup();
        let tight = averaging_attack(&s, 131.0, Some(5.0), &[1.5, 2.0, 3.0], &CHECKPOINTS, 3)
            .unwrap()
            .last()
            .unwrap()
            .relative_error;
        let loose = averaging_attack(&s, 131.0, Some(100.0), &[1.5, 2.0, 3.0], &CHECKPOINTS, 3)
            .unwrap()
            .last()
            .unwrap()
            .relative_error;
        // More budget → more fresh samples → better (smaller) estimate
        // error for the adversary.
        assert!(
            tight >= loose,
            "tight-budget floor {tight} vs loose {loose}"
        );
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_checkpoints_panic() {
        let s = setup();
        let _ = averaging_attack(&s, 131.0, None, &[2.0], &[10, 5], 1);
    }
}
