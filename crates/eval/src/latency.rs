//! Noising latency (Fig. 11): average DP-Box cycles per request, per
//! dataset, for resampling vs thresholding.
//!
//! Thresholding always takes the 2-cycle base (load + noise). Resampling
//! adds one cycle per redraw; the redraw probability depends on where the
//! sensor value sits in the range, so latency is data-dependent and is
//! averaged over the dataset.

use ldp_core::{LdpError, Mechanism};
use ldp_datasets::DatasetSpec;
use ulp_obs::{Counter, SpanTimer};
use ulp_rng::{FxpNoisePmf, Taus88};

use crate::setup::{ExperimentSetup, GroundTruth};

/// Base noising latency in cycles (Section V: load + noise).
pub const BASE_CYCLES: f64 = 2.0;

/// Latency results for one dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Average cycles per noising with resampling (measured).
    pub resampling_cycles: f64,
    /// Analytic expectation for resampling from the exact PMF.
    pub resampling_cycles_analytic: f64,
    /// Cycles with thresholding (always the base).
    pub thresholding_cycles: f64,
}

/// Expected resampling latency from the exact PMF: for input `x`, the
/// acceptance probability is `Z(x) = Pr[x + n ∈ window]` and the expected
/// number of draws is `1/Z(x)`, i.e. `2 + (1/Z − 1)` cycles.
fn analytic_cycles(setup: &ExperimentSetup, n_th_k: i64, data_codes: &[i64]) -> f64 {
    let pmf = &setup.pmf;
    let total = pmf.total_weight() as f64;
    let mean_extra: f64 = data_codes
        .iter()
        .map(|&x| {
            let lo = setup.range.min_k() - n_th_k - x;
            let hi = setup.range.max_k() + n_th_k - x;
            let mut z: u128 = 0;
            for k in lo.max(-pmf.support_max_k())..=hi.min(pmf.support_max_k()) {
                z += pmf.weight(k);
            }
            let z = z as f64 / total;
            1.0 / z - 1.0
        })
        .sum::<f64>()
        / data_codes.len() as f64;
    BASE_CYCLES + mean_extra
}

/// Measures average noising latency for one dataset.
///
/// `trials` passes over the dataset are simulated (capped internally so
/// huge datasets stay tractable; the paper uses 500 passes).
///
/// # Errors
///
/// Mechanism-construction errors propagate.
pub fn latency_row(
    spec: &DatasetSpec,
    eps: f64,
    multiple: f64,
    trials: usize,
    seed: u64,
) -> Result<LatencyRow, LdpError> {
    // Shared prep (setup + generate + encode) from the hoisted
    // `GroundTruth`; realization and draw order are unchanged.
    let gt = GroundTruth::prepare(spec, eps, seed)?;
    let setup = &gt.setup;
    let resampling = setup.resampling(multiple)?;
    // Cap total privatizations at ~200k to keep the harness responsive.
    let trials = trials.max(1).min((200_000 / gt.len()).max(1));
    let mut rng = Taus88::from_seed(seed ^ 0x1A7E);
    let mut total_resamples: u64 = 0;
    let mut count: u64 = 0;
    for _ in 0..trials {
        for &code in &gt.codes {
            // Single `privatize` is always cycle-faithful regardless of the
            // sampler path: latency models the hardware redraw loop.
            total_resamples += resampling.privatize(code, &mut rng)?.resamples as u64;
            count += 1;
        }
    }
    let measured = BASE_CYCLES + total_resamples as f64 / count as f64;
    let analytic = analytic_cycles(setup, resampling.threshold().n_th_k, &gt.codes_k);
    Ok(LatencyRow {
        dataset: spec.name,
        resampling_cycles: measured,
        resampling_cycles_analytic: analytic,
        thresholding_cycles: BASE_CYCLES,
    })
}

/// [`latency_row`] over a list of datasets, fanned out over [`ulp_par`] —
/// each row's RNG stream depends only on `(seed, spec)`, so the parallel
/// table is byte-identical to mapping [`latency_row`] serially.
///
/// # Errors
///
/// Propagates [`latency_row`] errors.
pub fn latency_table(
    specs: &[DatasetSpec],
    eps: f64,
    multiple: f64,
    trials: usize,
    seed: u64,
) -> Result<Vec<LatencyRow>, LdpError> {
    static SWEEP: SpanTimer = SpanTimer::new("eval.latency_table");
    static CELLS: Counter = Counter::new("eval.latency.rows");
    let _span = SWEEP.enter();
    CELLS.add(specs.len() as u64);
    ulp_par::par_map(specs, |spec| latency_row(spec, eps, multiple, trials, seed))
        .into_iter()
        .collect()
}

/// The expected fraction of noise mass outside a centred window of
/// half-width `w_k` — a quick bound on how often resampling triggers.
pub fn tail_mass_outside(pmf: &FxpNoisePmf, w_k: i64) -> f64 {
    if w_k >= pmf.support_max_k() {
        return 0.0;
    }
    2.0 * pmf.tail_prob_ge(w_k + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_datasets::{auto_mpg, statlog_heart};

    #[test]
    fn resampling_latency_is_small_but_above_base() {
        let row = latency_row(&statlog_heart(), 0.5, 2.0, 20, 3).unwrap();
        assert!(row.resampling_cycles >= BASE_CYCLES);
        // Fig. 11: resampling never adds more than ~1 cycle on average.
        assert!(
            row.resampling_cycles < BASE_CYCLES + 1.0,
            "cycles {}",
            row.resampling_cycles
        );
        assert_eq!(row.thresholding_cycles, BASE_CYCLES);
    }

    #[test]
    fn measured_matches_analytic_expectation() {
        let row = latency_row(&auto_mpg(), 0.5, 2.0, 100, 4).unwrap();
        assert!(
            (row.resampling_cycles - row.resampling_cycles_analytic).abs() < 0.05,
            "measured {} vs analytic {}",
            row.resampling_cycles,
            row.resampling_cycles_analytic
        );
    }

    #[test]
    fn tail_mass_shrinks_with_window() {
        let setup = ExperimentSetup::paper_default(&statlog_heart(), 0.5).unwrap();
        let near = tail_mass_outside(&setup.pmf, 100);
        let far = tail_mass_outside(&setup.pmf, 2000);
        assert!(near > far);
        assert_eq!(
            tail_mass_outside(&setup.pmf, setup.pmf.support_max_k()),
            0.0
        );
    }
}
